#!/usr/bin/env bash
# Multi-process sharding smoke test.
#
# Spawns, as real OS processes: three backend servers, one warm-spare
# replica of backend 0, a router fronting all three, and a single-node
# reference server. Drives identical SQL through the router and the
# reference and requires byte-identical answers (the equality gate),
# then SIGKILLs backend 0 and requires reads to fail over to the
# replica, losing at most the rows that were never flushed+synced.
#
#   scripts/cluster_smoke.sh [workdir]
#
# Logs land in <workdir>/logs and are dumped on failure.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

WORK="${1:-$(mktemp -d /tmp/lt-cluster-smoke.XXXXXX)}"
LOGS="$WORK/logs"
mkdir -p "$LOGS"

dune build bin/littletable_server.exe bin/littletable_shell.exe
SERVER=_build/default/bin/littletable_server.exe
SHELL_EXE=_build/default/bin/littletable_shell.exe

BASE=$((20000 + RANDOM % 20000))
P0=$BASE P1=$((BASE + 1)) P2=$((BASE + 2))
PSPARE=$((BASE + 3)) PROUTER=$((BASE + 4)) PREF=$((BASE + 5))
PMETRICS=$((BASE + 6))

PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
}
dump_logs() {
  echo "=== cluster smoke FAILED; process logs follow ===" >&2
  for f in "$LOGS"/*.log; do
    echo "--- $f ---" >&2
    cat "$f" >&2
  done
}
trap cleanup EXIT
trap dump_logs ERR

start() { # name, args...
  local name=$1
  shift
  "$SERVER" "$@" >"$LOGS/$name.log" 2>&1 &
  PIDS+=($!)
  disown $! # keep bash from reporting the deliberate SIGKILL later
}

wait_port() { # port
  for _ in $(seq 1 50); do
    if "$SHELL_EXE" --port "$1" -e ".cluster" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "server on port $1 never came up" >&2
  return 1
}

sql() { # port, statement
  "$SHELL_EXE" --port "$1" -e "$2"
}

start b0 --dir "$WORK/b0" --port "$P0" --maintenance-period 0.5
start b1 --dir "$WORK/b1" --port "$P1" --maintenance-period 0.5
start b2 --dir "$WORK/b2" --port "$P2" --maintenance-period 0.5
start ref --dir "$WORK/ref" --port "$PREF" --maintenance-period 0.5
for p in "$P0" "$P1" "$P2" "$PREF"; do wait_port "$p"; done
BACKEND0_PID=${PIDS[0]}

start spare --spare-of "$WORK/b0" --dir "$WORK/spare" --sync-period 1 --port "$PSPARE"
start router --router \
  --backends "127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2" \
  --replicas "0=127.0.0.1:$PSPARE" --port "$PROUTER" \
  --metrics-port "$PMETRICS"
wait_port "$PSPARE"
wait_port "$PROUTER"

echo "== router placement =="
sql "$PROUTER" ".cluster"

CREATE="CREATE TABLE usage (network INT64, device INT64, ts TIMESTAMP, bytes INT64 DEFAULT 0, PRIMARY KEY (network, device, ts));"
sql "$PROUTER" "$CREATE"
sql "$PREF" "$CREATE"

# 60 rows spread over 6 networks: every shard owns some of them.
for net in 1 2 3 4 5 6; do
  VALUES=""
  for dev in 1 2; do
    for ts in 1 2 3 4 5; do
      VALUES="$VALUES, ($net, $dev, $ts, $((net * 100 + dev * 10 + ts)))"
    done
  done
  INSERT="INSERT INTO usage (network, device, ts, bytes) VALUES ${VALUES#, };"
  sql "$PROUTER" "$INSERT"
  sql "$PREF" "$INSERT"
done

echo "== equality gate: router vs single node =="
sql "$PROUTER" "SELECT * FROM usage;" >"$WORK/router.rows"
sql "$PREF" "SELECT * FROM usage;" >"$WORK/ref.rows"
diff -u "$WORK/ref.rows" "$WORK/router.rows"
sql "$PROUTER" "SELECT network, COUNT(*) FROM usage GROUP BY network;" >"$WORK/router.agg"
sql "$PREF" "SELECT network, COUNT(*) FROM usage GROUP BY network;" >"$WORK/ref.agg"
diff -u "$WORK/ref.agg" "$WORK/router.agg"
echo "identical ($(wc -l <"$WORK/router.rows") lines)"

echo "== federated metrics: router /metrics merges every shard =="
curl -sf "http://127.0.0.1:$PMETRICS/metrics" >"$LOGS/federated.metrics"
for s in 0 1 2 router; do
  grep -q "shard=\"$s\"" "$LOGS/federated.metrics" ||
    { echo "missing shard=\"$s\" series in federated /metrics" >&2; false; }
done
grep -q 'lt_rows_inserted_total{table="usage"} 60' "$LOGS/federated.metrics" ||
  { echo "federated insert counter did not sum to 60" >&2; false; }
echo "per-shard + aggregate series present ($(wc -l <"$LOGS/federated.metrics") lines)"

echo "== distributed trace: fan-out query profiled and reassembled =="
printf '.profile on\nSELECT * FROM usage WHERE ts <= 3;\n.trace last\n' |
  "$SHELL_EXE" --port "$PROUTER" >"$LOGS/trace.log" 2>&1
grep -q 'profile: total' "$LOGS/trace.log" ||
  { echo "no per-query profile in shell output" >&2; false; }
grep -q 'trace [0-9a-f]' "$LOGS/trace.log" ||
  { echo "no trace header from .trace last" >&2; false; }
for op in request route backend query; do
  grep -q "$op" "$LOGS/trace.log" ||
    { echo "trace tree is missing a '$op' span" >&2; false; }
done
echo "trace tree spans: $(grep -cE '\+[0-9]+\.[0-9]+ms' "$LOGS/trace.log")"

# Make everything durable and give the spare a sync period to copy it.
sql "$PROUTER" ".flush usage"
sleep 3

# Rows arriving after the sync are the §3.4.1 bounded-loss window.
LATE="INSERT INTO usage (network, device, ts, bytes) VALUES (1, 9, 999, 1), (2, 9, 999, 1), (3, 9, 999, 1), (4, 9, 999, 1), (5, 9, 999, 1), (6, 9, 999, 1);"
sql "$PROUTER" "$LATE"
sql "$PREF" "$LATE"

echo "== failover: SIGKILL backend 0 =="
kill -9 "$BACKEND0_PID"

# Reads must fail over to the replica; every flushed+synced row survives.
sql "$PROUTER" "SELECT * FROM usage WHERE ts <= 100;" >"$WORK/router.after"
sql "$PREF" "SELECT * FROM usage WHERE ts <= 100;" >"$WORK/ref.after"
diff -u "$WORK/ref.after" "$WORK/router.after"
sql "$PROUTER" ".cluster"

echo "cluster smoke OK (work dir: $WORK)"
