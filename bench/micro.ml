(* Bechamel wall-clock microbenchmarks: one Test.make per paper
   table/figure counterpart, measuring the CPU side of each hot path
   (the disk side is the cost model's job in the figure benches):

   - headline row path: key encode, row encode/decode (table of §5.1.2);
   - Figure 2 counterpart: single-batch insert into a table;
   - Figure 3 counterpart: block build + LZ compression (flush path);
   - Figure 5/6 counterpart: cursor merge step and block binary search;
   - §3.4.5: bloom add/mem; §4.1.2: HLL add. *)

open Bechamel
open Littletable

let schema = Support.row_schema ()

let sample_row =
  let rng = Lt_util.Xorshift.create 1L in
  Support.make_row rng ~ts:1_000_000L ~row_size:128

let sample_key = Key_codec.encode_key schema sample_row

let sample_value = Row_codec.encode_value schema sample_row

let block_64k =
  let rng = Lt_util.Xorshift.create 2L in
  let b = Block.builder () in
  let i = ref 0 in
  while Block.raw_size b < 64 * 1024 do
    (* Ascending keys: fix the leading key column to the row index. *)
    let row = Support.make_row rng ~ts:(Int64.of_int !i) ~row_size:128 in
    row.(0) <- Value.Int64 (Int64.of_int !i);
    Block.add b ~key:(Key_codec.encode_key schema row)
      ~value:(Row_codec.encode_value schema row);
    incr i
  done;
  Block.finish b

let compressible_64k =
  String.concat "" (List.init 1024 (fun i -> Printf.sprintf "row-%06d-padding-data-here...............\n" (i mod 97)))

let test_key_encode =
  Test.make ~name:"key_codec.encode (6 cols)"
    (Staged.stage (fun () -> ignore (Key_codec.encode_key schema sample_row)))

let test_row_decode =
  Test.make ~name:"row_codec.decode (128 B row)"
    (Staged.stage (fun () ->
         ignore (Row_codec.decode schema ~key:sample_key ~value:sample_value)))

let test_memtable_insert =
  Test.make ~name:"memtable insert (1k rows)"
    (Staged.stage (fun () ->
         let rng = Lt_util.Xorshift.create 3L in
         let mt =
           Memtable.create ~id:1
             ~period:{ Period.start = 0L; cls = Period.Week }
             ~created_at:0L
         in
         for i = 0 to 999 do
           let row = Support.make_row rng ~ts:(Int64.of_int i) ~row_size:128 in
           ignore (Memtable.insert mt ~key:(Key_codec.encode_key schema row) ~ts:(Int64.of_int i) row)
         done))

let test_block_decode_search =
  let blk = Block.decode block_64k in
  Test.make ~name:"block binary search"
    (Staged.stage (fun () -> ignore (Block.search_geq blk sample_key)))

let test_lz_compress =
  Test.make ~name:"lz compress (64 kB text)"
    (Staged.stage (fun () -> ignore (Lt_lz.Lz.compress compressible_64k)))

let test_lz_roundtrip =
  let c = Lt_lz.Lz.compress compressible_64k in
  let n = String.length compressible_64k in
  Test.make ~name:"lz decompress (64 kB text)"
    (Staged.stage (fun () -> ignore (Lt_lz.Lz.decompress ~raw_len:n c)))

let test_bloom =
  let bloom = Lt_bloom.Bloom.create ~expected_keys:10_000 () in
  Lt_bloom.Bloom.add bloom sample_key;
  Test.make ~name:"bloom mem"
    (Staged.stage (fun () -> ignore (Lt_bloom.Bloom.mem bloom sample_key)))

let test_hll =
  let hll = Lt_hll.Hll.create () in
  Test.make ~name:"hll add"
    (Staged.stage (fun () -> Lt_hll.Hll.add hll sample_key))

let test_table_insert_batch =
  Test.make ~name:"table insert (512-row batch)"
    (Staged.stage
       (let env = Support.make_env () in
        let table = Db.create_table env.Support.db "micro" schema ~ttl:None in
        let rng = Lt_util.Xorshift.create 4L in
        fun () ->
          Table.insert table
            (Support.make_batch rng ~clock:env.Support.clock ~n:512 ~row_size:128);
          Lt_util.Clock.advance env.Support.clock 512L))

let test_query_point =
  Test.make ~name:"table point query"
    (Staged.stage
       (let env = Support.make_env () in
        let table = Db.create_table env.Support.db "microq" schema ~ttl:None in
        let rng = Lt_util.Xorshift.create 5L in
        let rows = Support.make_batch rng ~clock:env.Support.clock ~n:4096 ~row_size:128 in
        Table.insert table rows;
        Table.flush_all table;
        let target = List.nth rows 2048 in
        let prefix =
          [ target.(0); target.(1); target.(2); target.(3); target.(4) ]
        in
        fun () -> ignore (Table.query table (Query.prefix prefix))))

let all_tests =
  Test.make_grouped ~name:"littletable"
    [
      test_key_encode; test_row_decode; test_memtable_insert;
      test_block_decode_search; test_lz_compress; test_lz_roundtrip;
      test_bloom; test_hll; test_table_insert_batch; test_query_point;
    ]

let run () =
  Support.header "Microbenchmarks (bechamel, wall clock)";
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
  in
  Support.table_header [ ("benchmark", 44); ("ns/op", 14); ("ops/s", 14) ];
  List.iter
    (fun (name, ns) ->
      Support.metric ~name ~value:ns ~unit:"ns/op";
      Printf.printf "%-44s  %-14.1f  %-14.0f\n" name ns (1e9 /. ns))
    (List.sort compare rows)
