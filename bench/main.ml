(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5). See DESIGN.md for the experiment index and
   EXPERIMENTS.md for recorded paper-vs-measured results.

     dune exec bench/main.exe            run everything (scaled volumes)
     dune exec bench/main.exe -- fig5    run one experiment
     dune exec bench/main.exe -- --full  paper-scale volumes (slow)
     dune exec bench/main.exe -- --json  also write BENCH_<name>.json

   Experiments: headline fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
   fleet tablet-bounds ablation-bloom ablation-cache ablation-obs
   ablation-parallel ablation-columnar micro *)

let mib = Support.mib

let experiments ~full =
  let v_fig2 = if full then 500 * mib else 16 * mib in
  let v_fig3 = if full then 16 * 1024 * mib else 512 * mib in
  let v_fig4 = if full then 500 * mib else 4 * mib in
  let v_fig5 = if full then 2048 * mib else 64 * mib in
  let v_fig6_tablet = if full then 16 * mib else 2 * mib in
  let v_head = if full then 512 * mib else 48 * mib in
  [
    ("headline", fun () -> Fig_headline.run ~volume:v_head ());
    ("fig2", fun () -> Fig2.run ~volume:v_fig2 ());
    ("fig3", fun () -> Fig3.run ~volume:v_fig3 ());
    ("fig4", fun () -> Fig4.run ~per_writer:v_fig4 ());
    ("fig5", fun () -> Fig5.run ~total_bytes:v_fig5 ());
    ("fig6", fun () -> Fig6.run ~tablet_bytes:v_fig6_tablet ());
    ("fig7", Fleet.fig7);
    ("fig8", Fleet.fig8);
    ("fig9", Fig9.run);
    ("fig10", Fleet.fig10);
    ("fleet", Fleet.router_smoke);
    ("tablet-bounds", Tablet_bounds.run);
    ("ablation-bloom", Ablation_bloom.run);
    ("ablation-cache", fun () -> Ablation_cache.run ~quick:(not full) ());
    ("ablation-obs", fun () -> Ablation_obs.run ~quick:(not full) ());
    ("ablation-parallel", fun () -> Ablation_parallel.run ~quick:(not full) ());
    ("ablation-columnar", Ablation_columnar.run);
    ("micro", Micro.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let json = List.mem "--json" args in
  let selected = List.filter (fun a -> a <> "--full" && a <> "--json") args in
  let experiments = experiments ~full in
  let to_run =
    match selected with
    | [] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S; known: %s\n" n
                  (String.concat " " (List.map fst experiments));
                exit 2)
          names
  in
  Printf.printf "LittleTable benchmark harness (%s volumes)\n"
    (if full then "paper-scale" else "scaled");
  let t0 = Support.wall () in
  List.iter
    (fun (name, f) ->
      Support.begin_metrics ();
      let e0 = Support.wall () in
      f ();
      if json then
        Support.write_json ~name ~wall_s:(Support.wall () -. e0))
    to_run;
  Printf.printf "\ntotal bench wall time: %.1f s\n" (Support.wall () -. t0)
