(* Ablation: observability overhead on the insert hot path.

   The obs layer (lib/obs) times every insert, flush, query, merge and
   block stage; its acceptance bar is <3% overhead on insert throughput.
   This experiment runs the same deterministic insert workload twice —
   registry enabled (the default) and disabled (Config.obs_enabled =
   false, which turns every instrumentation site into a single boolean
   load) — and reports the delta. Best-of-N wall time per side, since
   we are measuring a small CPU difference under scheduler noise. *)

open Littletable
open Support

let row_size = 128

let rows_per_batch = 512

let insert_once ~obs_enabled ~batches =
  let config = Config.make ~obs_enabled () in
  let env = make_env ~config () in
  let table = Db.create_table env.db "obs_ablation" (row_schema ()) ~ttl:None in
  let rng = Lt_util.Xorshift.create 7L in
  let t0 = wall () in
  for _ = 1 to batches do
    Table.insert table
      (make_batch rng ~clock:env.clock ~n:rows_per_batch ~row_size);
    Lt_util.Clock.advance env.clock (Lt_util.Clock.usec rows_per_batch)
  done;
  Table.flush_all table;
  let dt = wall () -. t0 in
  Db.close env.db;
  dt

let best ~trials f =
  let t = ref infinity in
  for _ = 1 to trials do
    t := Float.min !t (f ())
  done;
  !t

(* FNV-1a over the printed cells: order-sensitive, so any difference in
   row content or ordering between the two runs changes the digest. *)
let fnv_prime = 0x100000001b3L

let fnv_add h s =
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  h := Int64.mul (Int64.logxor !h 0x1fL) fnv_prime

(* The ?profile wire flag must not perturb results: run the same query
   mix through a server twice, profiling off then on, and compare
   digests of every returned row. *)
let profile_identity () =
  let config = Config.make ~obs_enabled:true () in
  let db = Db.open_ ~config ~vfs:(Lt_vfs.Vfs.memory ()) ~dir:"ablation" () in
  let server = Lt_net.Server.start ~maintenance_period_s:0.0 ~db ~port:0 () in
  let c = Lt_net.Client.connect ~port:(Lt_net.Server.port server) () in
  Fun.protect
    ~finally:(fun () ->
      Lt_net.Client.close c;
      Lt_net.Server.stop server)
    (fun () ->
      Lt_net.Client.create_table c "usage" (usage_schema_like ()) ~ttl:None;
      let rng = Lt_util.Xorshift.create 99L in
      for net = 1 to 8 do
        let batch =
          List.init 64 (fun i ->
              [| Value.Int64 (Int64.of_int net);
                 Value.Int64 (Int64.of_int (i mod 4));
                 Value.Timestamp (Int64.of_int (i + 1));
                 Value.Int64 (Lt_util.Xorshift.next rng);
                 Value.Double (Lt_util.Xorshift.float rng) |])
        in
        Lt_net.Client.insert c "usage" batch
      done;
      let queries =
        Query.all
        :: Query.with_limit 17 Query.all
        :: List.init 8 (fun i ->
               Query.between ~ts_min:5L
                 (Query.prefix [ Value.Int64 (Int64.of_int (i + 1)) ]))
      in
      let digest ~profile =
        let h = ref 0xcbf29ce484222325L and rows = ref 0 in
        List.iter
          (fun q ->
            let page = Lt_net.Client.query_page ~profile c "usage" q in
            List.iter
              (fun row ->
                incr rows;
                Array.iter (fun v -> fnv_add h (Value.to_string v)) row)
              page.Lt_net.Client.rows)
          queries;
        (!h, !rows)
      in
      let d_off, n_off = digest ~profile:false in
      let d_on, n_on = digest ~profile:true in
      if d_off <> d_on || n_off <> n_on then
        failwith
          (Printf.sprintf
             "profiling changed query results (rows %d vs %d, digest %Lx vs %Lx)"
             n_off n_on d_off d_on);
      note "profiling on/off byte-identity: %d rows, digest %016Lx on both sides."
        n_off d_off;
      n_off)

let run ?(quick = true) () =
  header "Ablation: observability overhead on inserts (obs on vs off)";
  let batches = if quick then 128 else 1024 in
  let trials = if quick then 3 else 5 in
  let rows = batches * rows_per_batch in
  note "%d batches of %d x %d B rows, best of %d runs per side." batches
    rows_per_batch row_size trials;
  (* Warm up allocators and code paths before timing either side. *)
  ignore (insert_once ~obs_enabled:true ~batches:(max 1 (batches / 8)));
  let on_s = best ~trials (fun () -> insert_once ~obs_enabled:true ~batches) in
  let off_s = best ~trials (fun () -> insert_once ~obs_enabled:false ~batches) in
  let rate s = float_of_int rows /. s in
  let overhead_pct = (on_s -. off_s) /. off_s *. 100.0 in
  table_header [ ("obs", 8); ("wall s", 10); ("rows/s", 12) ];
  Printf.printf "%-8s  %-10.3f  %-12.0f\n" "off" off_s (rate off_s);
  Printf.printf "%-8s  %-10.3f  %-12.0f\n" "on" on_s (rate on_s);
  Printf.printf "\nmetrics+tracing overhead: %+.2f%% (target < 3%%)\n"
    overhead_pct;
  metric ~name:"insert_rows_per_s_obs_off" ~value:(rate off_s) ~unit:"rows/s";
  metric ~name:"insert_rows_per_s_obs_on" ~value:(rate on_s) ~unit:"rows/s";
  metric ~name:"obs_overhead_pct" ~value:overhead_pct ~unit:"%";
  let identical_rows = profile_identity () in
  metric ~name:"profile_identity_rows" ~value:(float_of_int identical_rows)
    ~unit:"rows"
