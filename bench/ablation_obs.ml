(* Ablation: observability overhead on the insert hot path.

   The obs layer (lib/obs) times every insert, flush, query, merge and
   block stage; its acceptance bar is <3% overhead on insert throughput.
   This experiment runs the same deterministic insert workload twice —
   registry enabled (the default) and disabled (Config.obs_enabled =
   false, which turns every instrumentation site into a single boolean
   load) — and reports the delta. Best-of-N wall time per side, since
   we are measuring a small CPU difference under scheduler noise. *)

open Littletable
open Support

let row_size = 128

let rows_per_batch = 512

let insert_once ~obs_enabled ~batches =
  let config = Config.make ~obs_enabled () in
  let env = make_env ~config () in
  let table = Db.create_table env.db "obs_ablation" (row_schema ()) ~ttl:None in
  let rng = Lt_util.Xorshift.create 7L in
  let t0 = wall () in
  for _ = 1 to batches do
    Table.insert table
      (make_batch rng ~clock:env.clock ~n:rows_per_batch ~row_size);
    Lt_util.Clock.advance env.clock (Lt_util.Clock.usec rows_per_batch)
  done;
  Table.flush_all table;
  let dt = wall () -. t0 in
  Db.close env.db;
  dt

let best ~trials f =
  let t = ref infinity in
  for _ = 1 to trials do
    t := Float.min !t (f ())
  done;
  !t

let run ?(quick = true) () =
  header "Ablation: observability overhead on inserts (obs on vs off)";
  let batches = if quick then 128 else 1024 in
  let trials = if quick then 3 else 5 in
  let rows = batches * rows_per_batch in
  note "%d batches of %d x %d B rows, best of %d runs per side." batches
    rows_per_batch row_size trials;
  (* Warm up allocators and code paths before timing either side. *)
  ignore (insert_once ~obs_enabled:true ~batches:(max 1 (batches / 8)));
  let on_s = best ~trials (fun () -> insert_once ~obs_enabled:true ~batches) in
  let off_s = best ~trials (fun () -> insert_once ~obs_enabled:false ~batches) in
  let rate s = float_of_int rows /. s in
  let overhead_pct = (on_s -. off_s) /. off_s *. 100.0 in
  table_header [ ("obs", 8); ("wall s", 10); ("rows/s", 12) ];
  Printf.printf "%-8s  %-10.3f  %-12.0f\n" "off" off_s (rate off_s);
  Printf.printf "%-8s  %-10.3f  %-12.0f\n" "on" on_s (rate on_s);
  Printf.printf "\nmetrics+tracing overhead: %+.2f%% (target < 3%%)\n"
    overhead_pct;
  metric ~name:"insert_rows_per_s_obs_off" ~value:(rate off_s) ~unit:"rows/s";
  metric ~name:"insert_rows_per_s_obs_on" ~value:(rate on_s) ~unit:"rows/s";
  metric ~name:"obs_overhead_pct" ~value:overhead_pct ~unit:"%"
