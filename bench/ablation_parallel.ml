(* Ablation: parallel tablet scans over a multi-spindle modeled disk.

   §3.5's full-table scans pay one pass over every live tablet. The
   sequential path interleaves the k-way merge's reads across all
   tablets from a single issuer, so on the modeled disk every tablet
   switch is a seek and the device runs one request at a time. With
   query_domains > 0 each tablet is drained by a pool worker on its own
   issuing channel: per-tablet reads stay sequential, and tablets that
   landed on distinct spindles transfer concurrently, so modeled disk
   time becomes the makespan instead of the sum.

   Setup: [tablets] 1 KiB-row tablets (random keys, so every tablet
   participates in the merge throughout) on an 8-spindle model, block
   cache off and the drive cache dropped before each scan — every run
   pays full modeled I/O. Each domain count rebuilds an identical
   database from the same seed; an FNV-1a hash over the merged
   (key, payload-length) stream proves parallel results byte-identical
   to sequential before any throughput number is reported. *)

open Littletable
open Support

let tablets = 16

let spindles = 8

let row_size = 1024

let build ~domains ~rows_per_tablet =
  let config =
    Config.make ~query_domains:domains ~cache_bytes:0 ~flush_size:max_int
      ~merge_delay:(Int64.mul 1000L Lt_util.Clock.day)
      ()
  in
  (* Modest readahead: the sequential interleave then pays a seek per
     tablet switch, as a real drive would between k cold streams. *)
  let env = make_env ~config ~readahead:(16 * 1024) ~spindles () in
  let table = Db.create_table env.db "scan" (row_schema ()) ~ttl:None in
  let rng = Lt_util.Xorshift.create 0x9a8a11e1L in
  for _ = 1 to tablets do
    Table.insert table
      (make_batch rng ~clock:env.clock ~n:rows_per_tablet ~row_size);
    Table.flush_all table;
    Lt_util.Clock.advance env.clock (Lt_util.Clock.sec rows_per_tablet)
  done;
  (env, table)

(* FNV-1a over the merged stream: order-sensitive, so any reordering or
   dropped/torn row between the sequential and parallel paths changes
   the digest. *)
let fnv_prime = 0x100000001b3L

let fnv_add h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let scan_digest table =
  let src = Table.query_iter table Query.all in
  let h = ref 0xcbf29ce484222325L in
  let rows = ref 0 in
  let rec go () =
    match src () with
    | Some (key, row) ->
        incr rows;
        h := fnv_add !h key;
        (match row.(Array.length row - 1) with
        | Value.Blob b ->
            h :=
              Int64.mul
                (Int64.logxor !h (Int64.of_int (String.length b)))
                fnv_prime
        | _ -> ());
        go ()
    | None -> ()
  in
  go ();
  (!h, !rows)

let run ?(quick = true) () =
  header "Ablation: parallel tablet scans (query_domains sweep)";
  let rows_per_tablet = if quick then 512 else 4096 in
  let volume = tablets * rows_per_tablet * row_size in
  note "%d tablets x %d rows of %d B (%s) on %d modeled spindles," tablets
    rows_per_tablet row_size (human_bytes volume) spindles;
  note "block cache off, drive cache dropped before every scan.";
  let results =
    List.map
      (fun domains ->
        let env, table = build ~domains ~rows_per_tablet in
        (* Warm pass: open readers and load footers, then pay full data
           I/O per measured scan. *)
        ignore (scan_digest table);
        Disk_model.clear_cache env.model;
        let digest = ref 0L and rows = ref 0 in
        let m =
          measure env ~bytes:volume (fun () ->
              let h, n = scan_digest table in
              digest := h;
              rows := n)
        in
        Db.close env.db;
        (domains, m, !digest, !rows))
      [ 0; 1; 2; 4; 8 ]
  in
  let _, _, digest0, rows0 = List.hd results in
  List.iter
    (fun (domains, _, digest, rows) ->
      if digest <> digest0 || rows <> rows0 then
        failwith
          (Printf.sprintf
             "ablation-parallel: query_domains=%d diverged from sequential \
              (rows %d vs %d, digest %Lx vs %Lx)"
             domains rows rows0 digest digest0))
    results;
  metric ~name:"parallel_equality_ok" ~value:1.0 ~unit:"bool";
  table_header
    [ ("domains", 8); ("cpu s", 8); ("disk s", 8); ("rows/s", 10);
      ("MB/s", 8); ("speedup", 8) ];
  let throughput m = float_of_int rows0 /. Float.max m.cpu_s m.disk_s in
  let base = throughput (let _, m, _, _ = List.hd results in m) in
  List.iter
    (fun (domains, m, _, _) ->
      let rps = throughput m in
      Printf.printf "%-8d  %-8.3f  %-8.3f  %-10.0f  %-8.1f  %-8s\n" domains
        m.cpu_s m.disk_s rps (effective_mb_s m)
        (if domains = 0 then "1.0x"
         else Printf.sprintf "%.1fx" (rps /. base));
      metric
        ~name:(Printf.sprintf "scan_rows_per_s_domains_%d" domains)
        ~value:rps ~unit:"rows/s")
    results;
  (match List.find_opt (fun (d, _, _, _) -> d = 4) results with
  | Some (_, m, _, _) ->
      let speedup = throughput m /. base in
      metric ~name:"parallel_speedup_4_domains" ~value:speedup ~unit:"x";
      note "";
      note "query_domains=4 scans %.1fx faster than the sequential path."
        speedup
  | None -> ())
