(* Ablation: columnar tablet layout vs row-major, same data.

   The HTAP layout split: merge outputs older than [Config.columnar_age]
   are rewritten column-major, with per-column LZ runs, default-elision
   bitmaps, and per-block min/max/count/sum footer stats. Two databases
   ingest identical aged data — one with the columnar rewrite enabled
   ([columnar_age = 0]), one with it off ([max_int], the default) — and
   answer the same aggregate, projected-scan, and full-scan workloads on
   a cold modeled disk.

   Three gates precede any throughput number:
   - an FNV-1a digest over the merged full-scan stream (keys + canonical
     value encodings) must be byte-identical between layouts;
   - the projected scan's digest must match too;
   - on the columnar side, the aggregate query's profile must show every
     block answered from footer stats and zero column sections decoded —
     the pushdown read no data at all. *)

open Littletable
open Support

let networks = 40

let devices = 5

let periods = 60

let total_rows = networks * devices * periods

let payload_bytes = 160

(* The usage schema widened by an incompressible payload blob (think
   per-sample detail records): the column a projection gets to skip.
   Row-major scans must read and decode it for every row; columnar
   scans touch its section only when the query asks for it. *)
let bench_schema () =
  let col name ctype default = { Schema.name; ctype; default } in
  Schema.create
    ~columns:
      [
        col "network" Value.T_int64 (Value.Int64 0L);
        col "device" Value.T_int64 (Value.Int64 0L);
        col "ts" Value.T_timestamp (Value.Timestamp 0L);
        col "bytes" Value.T_int64 (Value.Int64 0L);
        col "rate" Value.T_double (Value.Double 0.0);
        col "payload" Value.T_blob (Value.Blob "");
      ]
    ~pkey:[ "network"; "device"; "ts" ]

(* Canonical cell bytes for each row: layout cannot leak through the
   value encodings the way it could through float formatting. *)
let fnv_prime = 0x100000001b3L

let fnv_add h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* [cols = None] hashes the whole canonical value encoding; a projected
   scan hashes only the projected cells — everything outside the
   projection is contractually unspecified (the columnar reader leaves
   schema defaults there, the row reader decodes what it already has). *)
let scan_digest ?cols schema table q =
  let src = Table.query_iter table q in
  let h = ref 0xcbf29ce484222325L in
  let rows = ref 0 in
  let rec go () =
    match src () with
    | Some (key, row) ->
        incr rows;
        h := fnv_add !h key;
        (match cols with
        | None -> h := fnv_add !h (Row_codec.encode_value schema row)
        | Some cs ->
            List.iter (fun c -> h := fnv_add !h (Value.to_string row.(c))) cs);
        go ()
    | None -> ()
  in
  go ();
  (!h, !rows)

let agg_specs =
  [|
    { Agg.a_fn = Agg.Count; a_col = None };
    { Agg.a_fn = Agg.Sum; a_col = Some 3 };
    { Agg.a_fn = Agg.Min; a_col = Some 3 };
    { Agg.a_fn = Agg.Max; a_col = Some 3 };
    { Agg.a_fn = Agg.Avg; a_col = Some 3 };
  |]

let build ~columnar =
  let config =
    Config.make ~cache_bytes:0 ~merge_delay:0L ~rollover_spread:0.0
      ~columnar_age:(if columnar then 0L else Int64.max_int)
      ()
  in
  let env = make_env ~config () in
  let schema = bench_schema () in
  let table = Db.create_table env.db "usage" schema ~ttl:None in
  (* A day-old slab of usage rows: already past [columnar_age = 0], so
     every merge output on the columnar side is rewritten. Payloads are
     log-like repetitive text — LZ-friendly, as real detail records are.
     A block is the unit of disk read on both sides, so what projection
     saves is exactly the payload run's decompression and decoding; an
     incompressible payload would leave both sides disk-bound and hide
     that. *)
  let base = Int64.sub (Lt_util.Clock.now env.clock) Lt_util.Clock.day in
  let payload net dev p =
    let line =
      Printf.sprintf "net=%d dev=%d period=%d status=ok latency=%dus " net dev
        p
        ((net * 31) + p)
    in
    let b = Buffer.create payload_bytes in
    while Buffer.length b < payload_bytes do
      Buffer.add_string b line
    done;
    Buffer.sub b 0 payload_bytes
  in
  for p = 0 to periods - 1 do
    let batch =
      List.concat_map
        (fun net ->
          List.init devices (fun dev ->
              [|
                Value.Int64 (Int64.of_int net);
                Value.Int64 (Int64.of_int dev);
                Value.Timestamp (Int64.add base (Int64.of_int p));
                Value.Int64 (Int64.of_int ((net * 7919) + (dev * 131) + p));
                Value.Double (float_of_int ((net * 13) + p) /. 8.);
                Value.Blob (payload net dev p);
              |])
        )
        (List.init networks Fun.id)
    in
    Table.insert table batch
  done;
  Table.flush_all table;
  let fuel = ref 64 in
  while Table.merge_step table && !fuel > 0 do
    decr fuel
  done;
  let col_tablets =
    List.length
      (List.filter
         (fun (m : Descriptor.tablet_meta) -> m.Descriptor.columnar)
         (Table.tablets table))
  in
  if columnar && col_tablets = 0 then
    failwith "ablation-columnar: columnar build produced no columnar tablets";
  if (not columnar) && col_tablets > 0 then
    failwith "ablation-columnar: row build produced columnar tablets";
  (env, schema, table)

type side = {
  s_agg : measurement;
  s_proj : measurement;
  s_scan : measurement;
  s_aggs : Value.t array;
  s_proj_digest : int64;
  s_scan_digest : int64;
  s_rows : int;
  s_footer_blocks : int;
  s_cols_decoded : int;
}

let run_side ~columnar =
  let env, schema, table = build ~columnar in
  let reps = 20 in
  let row_bytes = total_rows * (50 + payload_bytes) in
  let cold f =
    Disk_model.clear_cache env.model;
    measure env ~bytes:row_bytes f
  in
  (* Aggregates: count/sum/min/max/avg over the int64 [bytes] column. *)
  let aggs = ref [||] in
  let prof = ref None in
  let s_agg =
    cold (fun () ->
        for _ = 2 to reps do
          ignore (Table.query_agg table Query.all ~specs:agg_specs)
        done;
        let r, p = Table.query_agg ~profile:true table Query.all ~specs:agg_specs in
        aggs := r;
        prof := p)
  in
  (* Projected scan: only the [bytes] column is referenced. *)
  let proj_digest = ref 0L and proj_rows = ref 0 in
  let s_proj =
    cold (fun () ->
        let h, n =
          scan_digest ~cols:[ 3 ] schema table
            (Query.with_projection [ 3 ] Query.all)
        in
        proj_digest := h;
        proj_rows := n)
  in
  (* Full-width scan: the byte-identity gate between layouts. *)
  let scan_digest_v = ref 0L and scan_rows = ref 0 in
  let s_scan =
    cold (fun () ->
        let h, n = scan_digest schema table Query.all in
        scan_digest_v := h;
        scan_rows := n)
  in
  let p = Option.get !prof in
  Db.close env.db;
  {
    s_agg;
    s_proj;
    s_scan;
    s_aggs = !aggs;
    s_proj_digest = !proj_digest;
    s_scan_digest = !scan_digest_v;
    s_rows = !scan_rows;
    s_footer_blocks = p.Lt_obs.Profile.p_blocks_footer_answered;
    s_cols_decoded = p.Lt_obs.Profile.p_columns_decoded;
  }

let eff m = Float.max m.cpu_s m.disk_s

let run () =
  header "Ablation: columnar tablet layout (aggregate/projection pushdown)";
  note "%d aged rows (%d networks x %d devices x %d periods), cache off,"
    total_rows networks devices periods;
  note "drive cache dropped before every pass; merges rewrite the columnar";
  note "side column-major before measuring.";
  let row = run_side ~columnar:false in
  let col = run_side ~columnar:true in
  (* Byte-identity gates. *)
  if row.s_rows <> col.s_rows || row.s_scan_digest <> col.s_scan_digest then
    failwith
      (Printf.sprintf
         "ablation-columnar: full-scan divergence (rows %d vs %d, digest %Lx \
          vs %Lx)"
         row.s_rows col.s_rows row.s_scan_digest col.s_scan_digest);
  if row.s_proj_digest <> col.s_proj_digest then
    failwith "ablation-columnar: projected scan diverged between layouts";
  if row.s_aggs <> col.s_aggs then
    failwith "ablation-columnar: aggregate results diverged between layouts";
  metric ~name:"layout_equality_ok" ~value:1.0 ~unit:"bool";
  (* Pushdown gate: the columnar aggregate pass read no column data. *)
  if col.s_footer_blocks = 0 then
    failwith "ablation-columnar: no block was footer-answered";
  if col.s_cols_decoded <> 0 then
    failwith
      (Printf.sprintf
         "ablation-columnar: aggregate pass decoded %d column sections"
         col.s_cols_decoded);
  metric ~name:"footer_zero_decode_ok" ~value:1.0 ~unit:"bool";
  metric ~name:"footer_blocks_answered"
    ~value:(float_of_int col.s_footer_blocks)
    ~unit:"blocks";
  table_header
    [ ("pass", 10); ("row cpu", 8); ("row disk", 8); ("col cpu", 8);
      ("col disk", 8); ("speedup", 8) ];
  let line name a b =
    let s = eff a /. Float.max 1e-9 (eff b) in
    Printf.printf "%-10s  %-8.4f  %-8.4f  %-8.4f  %-8.4f  %-8s\n" name a.cpu_s
      a.disk_s b.cpu_s b.disk_s
      (Printf.sprintf "%.1fx" s);
    s
  in
  let agg_speedup = line "aggregate" row.s_agg col.s_agg in
  let proj_speedup = line "projected" row.s_proj col.s_proj in
  let scan_speedup = line "full scan" row.s_scan col.s_scan in
  metric ~name:"agg_speedup" ~value:agg_speedup ~unit:"x";
  metric ~name:"projection_speedup" ~value:proj_speedup ~unit:"x";
  metric ~name:"full_scan_speedup" ~value:scan_speedup ~unit:"x";
  metric ~name:"agg_row_s" ~value:(eff row.s_agg) ~unit:"s";
  metric ~name:"agg_col_s" ~value:(eff col.s_agg) ~unit:"s";
  metric ~name:"projection_row_s" ~value:(eff row.s_proj) ~unit:"s";
  metric ~name:"projection_col_s" ~value:(eff col.s_proj) ~unit:"s";
  note "";
  note "aggregates answered from block footers alone (%d blocks, 0 sections"
    col.s_footer_blocks;
  note "decoded); projected scans decompress only the referenced column."
