(* Shared infrastructure for the benchmark harness.

   Every experiment runs the real engine against an in-memory filesystem
   wrapped in the spinning-disk cost model (see lib/vfs/disk_model.mli and
   DESIGN.md): wall-clock measures the CPU side, the model measures the
   disk side of the paper's testbed. Where the paper's number is the
   combination (e.g. insert throughput), we report
   bytes / max(cpu seconds, modeled disk seconds). *)

open Littletable
module Clock = Lt_util.Clock
module Vfs = Lt_vfs.Vfs
module Disk_model = Lt_vfs.Disk_model

let mib = 1024 * 1024

(* The paper's disk: 8 ms seek, 120 MB/s sequential (§5.1.1). *)
let disk_seq_mb_s = 120.0

type env = {
  db : Db.t;
  clock : Clock.t;
  vfs : Vfs.t;
  model : Disk_model.t;
}

let make_env ?(config = Config.default) ?(readahead = 128 * 1024)
    ?(spindles = 1) () =
  let model =
    Disk_model.create ~config:(Disk_model.config ~readahead ~spindles ()) ()
  in
  let vfs = Vfs.with_model model (Vfs.memory ()) in
  let clock = Clock.manual ~start:1_720_000_000_000_000L () in
  let db = Db.open_ ~config ~clock ~vfs ~dir:"bench" () in
  { db; clock; vfs; model }

(* ------------------------------------------------------------------ *)
(* The 128-byte-row workload of §5.1.2: six key columns (five int64
   keys plus ts) and a filler blob bringing the stored row size to the
   requested size. Generated with xorshift so the LZ codec cannot
   shrink it, as in the paper. *)
(* ------------------------------------------------------------------ *)

let row_schema () =
  let col name ctype default = { Schema.name; ctype; default } in
  Schema.create
    ~columns:
      [
        col "k1" Value.T_int64 (Value.Int64 0L);
        col "k2" Value.T_int64 (Value.Int64 0L);
        col "k3" Value.T_int64 (Value.Int64 0L);
        col "k4" Value.T_int64 (Value.Int64 0L);
        col "k5" Value.T_int64 (Value.Int64 0L);
        col "ts" Value.T_timestamp (Value.Timestamp 0L);
        col "payload" Value.T_blob (Value.Blob "");
      ]
    ~pkey:[ "k1"; "k2"; "k3"; "k4"; "k5"; "ts" ]

(* Fixed overhead of the six key columns (5 x 8 + 8 key bytes) plus the
   blob length prefix; the payload fills the row to [row_size]. *)
let payload_size ~row_size = max 0 (row_size - 50)

let make_row rng ~ts ~row_size =
  let open Lt_util in
  [|
    Value.Int64 (Xorshift.next rng);
    Value.Int64 (Xorshift.next rng);
    Value.Int64 (Xorshift.next rng);
    Value.Int64 (Xorshift.next rng);
    Value.Int64 (Xorshift.next rng);
    Value.Timestamp ts;
    Value.Blob (Xorshift.bytes rng (payload_size ~row_size));
  |]

(* A batch of [n] rows with consecutive current timestamps. *)
let make_batch rng ~clock ~n ~row_size =
  let now = Clock.now clock in
  List.init n (fun i -> make_row rng ~ts:(Int64.add now (Int64.of_int i)) ~row_size)

(* The Figure-1 usage schema: key (network, device, ts). *)
let usage_schema_like () =
  let col name ctype default = { Schema.name; ctype; default } in
  Schema.create
    ~columns:
      [
        col "network" Value.T_int64 (Value.Int64 0L);
        col "device" Value.T_int64 (Value.Int64 0L);
        col "ts" Value.T_timestamp (Value.Timestamp 0L);
        col "bytes" Value.T_int64 (Value.Int64 0L);
        col "rate" Value.T_double (Value.Double 0.0);
      ]
    ~pkey:[ "network"; "device"; "ts" ]

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let wall () =
  Lt_util.Clock.(to_float_s (now system))

type measurement = {
  cpu_s : float;  (** wall-clock of the engine work *)
  disk_s : float;  (** modeled disk-busy time *)
  bytes : int;  (** logical row bytes moved *)
}

(* Effective throughput: the device and the CPU overlap, so the slower
   side bounds the pipeline. *)
let effective_mb_s m =
  let t = Float.max m.cpu_s m.disk_s in
  if t <= 0.0 then Float.infinity
  else float_of_int m.bytes /. 1e6 /. t

let disk_mb_s m =
  if m.disk_s <= 0.0 then Float.infinity
  else float_of_int m.bytes /. 1e6 /. m.disk_s

let measure env ~bytes f =
  Disk_model.reset env.model;
  let t0 = wall () in
  f ();
  let cpu_s = wall () -. t0 in
  { cpu_s; disk_s = Disk_model.elapsed_s env.model; bytes }

(* ------------------------------------------------------------------ *)
(* Output helpers                                                      *)
(* ------------------------------------------------------------------ *)

let header title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let note fmt = Printf.printf (fmt ^^ "\n")

let table_header cols =
  Printf.printf "%s\n" (String.concat "  " (List.map (fun (n, w) -> Printf.sprintf "%-*s" w n) cols));
  Printf.printf "%s\n"
    (String.concat "  " (List.map (fun (_, w) -> String.make w '-') cols))

let human_bytes n =
  if n >= 1 lsl 30 then Printf.sprintf "%.1f GiB" (float_of_int n /. float_of_int (1 lsl 30))
  else if n >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (float_of_int n /. float_of_int (1 lsl 20))
  else if n >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.0)
  else Printf.sprintf "%d B" n

(* Scale factors: full paper volumes take hours through a bytecode-ish
   single-core container, so each figure runs a scaled volume by default
   and notes it. *)
let scaled ~default_full ~scale = default_full / scale

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json)                                   *)
(* ------------------------------------------------------------------ *)

(* Experiments record headline numbers with {!metric}; when the harness
   runs with --json it drains them into BENCH_<name>.json after each
   experiment so CI and regression tooling can diff runs. *)
let recorded : (string * float * string) list ref = ref []

let begin_metrics () = recorded := []

let metric ~name ~value ~unit = recorded := (name, value, unit) :: !recorded

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | ic ->
      let rev = try input_line ic with End_of_file -> "" in
      ignore (Unix.close_process_in ic);
      if rev = "" then "unknown" else rev
  | exception Unix.Unix_error _ -> "unknown"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~name ~wall_s =
  let file = Printf.sprintf "BENCH_%s.json" name in
  (* JSON has no NaN/Infinity literals; drop non-finite samples. *)
  let metrics =
    List.filter (fun (_, v, _) -> Float.is_finite v) (List.rev !recorded)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"name\": \"%s\",\n" (json_escape name);
  Printf.bprintf buf "  \"git_rev\": \"%s\",\n" (json_escape (git_rev ()));
  Printf.bprintf buf "  \"wall_s\": %.3f,\n" wall_s;
  Buffer.add_string buf "  \"metrics\": [";
  List.iteri
    (fun i (m, v, u) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "\n    { \"metric\": \"%s\", \"value\": %.6g, \"unit\": \"%s\" }"
        (json_escape m) v (json_escape u))
    metrics;
  Buffer.add_string buf (if metrics = [] then "]" else "\n  ]");
  Buffer.add_string buf "\n}\n";
  (Out_channel.with_open_text file (fun oc ->
       Out_channel.output_string oc (Buffer.contents buf))
  [@lint.allow
    "vfs-discipline: the bench report lands on the operator's filesystem, \
     not in database state, so the torture harness has no stake in it"]);
  Printf.printf "wrote %s (%d metrics)\n" file (List.length metrics)
