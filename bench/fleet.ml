(* Figures 7, 8 and 10: production-metrics CDFs.

   These figures are measurements of Meraki's production fleet, which we
   cannot query; per the substitution rule (DESIGN.md) we regenerate them
   from a synthetic fleet whose distributions are calibrated to the
   statistics the paper states:

   - Fig. 7: LittleTable totals 320 TB across shards (largest 6.7 TB);
     PostgreSQL totals 14 TB (largest 341 GB) — shards split when
     PostgreSQL outgrows RAM or LittleTable fills disks, so sizes are
     roughly log-normal with a ~20x ratio between the two systems.
   - Fig. 8: per-table median key 45 B (all < 128 B); median value 61 B,
     91% <= 1 kB, tail to 75 kB (HLL blobs).
   - Fig. 10: >90% of queries look back <= 1 week; TTLs cluster at a
     year or more, cut off by disk space. *)

open Lt_util

let shards = 300

let gen_shard_sizes rng =
  (* Log-normal LittleTable sizes, clipped to the stated max, then scaled
     so the fleet total matches 320 TB. *)
  let raw =
    List.init shards (fun _ ->
        Float.min 6.7 (Xorshift.log_normal rng ~mu:(-0.2) ~sigma:0.85))
  in
  let total = List.fold_left ( +. ) 0.0 raw in
  let scale = 320.0 /. total in
  let lt = List.map (fun s -> Float.min 6.7 (s *. scale)) raw in
  (* PostgreSQL sizes: ~1/20 of LittleTable with its own spread. *)
  let pg =
    List.map
      (fun l ->
        Float.min 0.341
          (l /. 20.0 *. (0.5 +. Xorshift.float rng) *. 2.0 /. 1.5))
      lt
  in
  (lt, pg)

let fig7 () =
  Support.header "Figure 7: distribution of PostgreSQL and LittleTable sizes";
  Support.note "paper: LittleTable total 320 TB (max 6.7 TB/shard); PostgreSQL";
  Support.note "total 14 TB (max 341 GB/shard) -- a ~20x ratio.";
  let rng = Xorshift.create 77L in
  let lt, pg = gen_shard_sizes rng in
  let lt_cdf = Cdf.of_samples lt and pg_cdf = Cdf.of_samples (List.map (fun x -> x *. 1000.0) pg) in
  Format.printf "%a@." (Cdf.pp_series ~label:"LittleTable size per shard" ~unit:"TB") lt_cdf;
  Format.printf "%a@." (Cdf.pp_series ~label:"PostgreSQL size per shard" ~unit:"GB") pg_cdf;
  Printf.printf "fleet totals: LittleTable %.0f TB, PostgreSQL %.1f TB (ratio %.0fx)\n"
    (List.fold_left ( +. ) 0.0 lt)
    (List.fold_left ( +. ) 0.0 pg)
    (List.fold_left ( +. ) 0.0 lt /. List.fold_left ( +. ) 0.0 pg)

let fig8 () =
  Support.header "Figure 8: distribution of key and value sizes per table";
  Support.note "paper: median key 45 B, all keys < 128 B; median value 61 B,";
  Support.note "91%% of tables <= 1 kB average value, tail to 75 kB (HLL sets).";
  let rng = Xorshift.create 88L in
  let tables = 270 in
  let keys =
    List.init tables (fun _ ->
        Float.min 127.0 (8.0 +. Xorshift.log_normal rng ~mu:3.6 ~sigma:0.45))
  in
  let values =
    List.init tables (fun _ ->
        (* 91% small (log-normal around 61 B), 9% large probabilistic
           set representations up to 75 kB. *)
        if Xorshift.float rng < 0.91 then
          Float.min 1024.0 (Xorshift.log_normal rng ~mu:4.1 ~sigma:0.8)
        else Float.min 75_000.0 (Xorshift.log_normal rng ~mu:8.5 ~sigma:1.0))
  in
  Format.printf "%a@." (Cdf.pp_series ~label:"average key size per table" ~unit:"bytes") (Cdf.of_samples keys);
  Format.printf "%a@." (Cdf.pp_series ~label:"average value size per table" ~unit:"bytes") (Cdf.of_samples values);
  let kcdf = Cdf.of_samples keys and vcdf = Cdf.of_samples values in
  Printf.printf "medians: key %.0f B (paper 45), value %.0f B (paper 61); value <= 1 kB: %.0f%% (paper 91%%)\n"
    (Cdf.quantile kcdf 0.5) (Cdf.quantile vcdf 0.5)
    (Cdf.fraction_below vcdf 1024.0 *. 100.0)

let fig10 () =
  Support.header "Figure 10: query lookback vs row TTL";
  Support.note "paper: >90%% of queries look back <= 1 week, yet most tables";
  Support.note "retain a year or more -- the opportunity 2-D clustering exploits.";
  let rng = Xorshift.create 1010L in
  let day = 1.0 and week = 7.0 in
  (* Lookback mixture (days): hour-ish/day/week dominate; a long tail of
     forensics and year-end reporting. *)
  let lookbacks =
    List.init 5000 (fun _ ->
        let u = Xorshift.float rng in
        if u < 0.38 then day /. 24.0 *. (1.0 +. Xorshift.float rng)
        else if u < 0.68 then day *. (1.0 +. Xorshift.float rng)
        else if u < 0.92 then week *. (0.3 +. (0.7 *. Xorshift.float rng))
        else if u < 0.97 then 30.0 *. (1.0 +. (2.0 *. Xorshift.float rng))
        else 180.0 +. (215.0 *. Xorshift.float rng))
  in
  (* TTLs (days): a few short-lived debug tables; most a year or more. *)
  let ttls =
    List.init 270 (fun _ ->
        let u = Xorshift.float rng in
        if u < 0.08 then 7.0 +. (21.0 *. Xorshift.float rng)
        else if u < 0.25 then 90.0 +. (90.0 *. Xorshift.float rng)
        else if u < 0.75 then 365.0 +. (30.0 *. Xorshift.float rng)
        else 395.0 +. (395.0 *. Xorshift.float rng))
  in
  Format.printf "%a@." (Cdf.pp_series ~label:"query lookback" ~unit:"days") (Cdf.of_samples lookbacks);
  Format.printf "%a@." (Cdf.pp_series ~label:"row TTL per table" ~unit:"days") (Cdf.of_samples ttls);
  let lb = Cdf.of_samples lookbacks and tt = Cdf.of_samples ttls in
  Printf.printf "lookback <= 1 week: %.0f%% (paper >90%%); TTL >= 1 year: %.0f%%\n"
    (Cdf.fraction_below lb 7.0 *. 100.0)
    ((1.0 -. Cdf.fraction_below tt 364.9) *. 100.0)

(* ---- Fleet through the router ----------------------------------------- *)

(* Smoke-scale version of the deployment the figures above describe: the
   fleet is many shards behind a placement layer. Three in-process
   backend servers (memory VFS) sit behind one router; the workload
   measures insert throughput and per-request latency through the full
   client -> router -> shard -> merge path. *)

(* FNV-1a over the returned cells: order-sensitive, so any difference in
   row content or ordering between the two ingest paths changes the
   digest (same gate as the ablation benches). *)
let fnv_prime = 0x100000001b3L

let fnv_add h s =
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  h := Int64.mul (Int64.logxor !h 0x1fL) fnv_prime

let percentile_ms samples q =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else a.(min (n - 1) (int_of_float (Float.of_int n *. q))) *. 1000.0

let fleet_schema () =
  Littletable.(
    Schema.create
      ~columns:
        [ { Schema.name = "network"; ctype = Value.T_int64; default = Value.Int64 0L };
          { Schema.name = "device"; ctype = Value.T_int64; default = Value.Int64 0L };
          { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
          { Schema.name = "bytes"; ctype = Value.T_int64; default = Value.Int64 0L } ]
      ~pkey:[ "network"; "device"; "ts" ])

let router_smoke () =
  Support.header "fleet: insert/query through the sharding router (3 shards)";
  Support.note "smoke-scale stand-in for the fleet above: every request";
  Support.note "crosses client -> router -> owning shard(s) -> merge.";
  let module Server = Lt_net.Server in
  let module Client = Lt_net.Client in
  let open Lt_cluster in
  let shards = 3 in
  let backends =
    List.init shards (fun i ->
        let db =
          Littletable.Db.open_ ~vfs:(Lt_vfs.Vfs.memory ())
            ~dir:(Printf.sprintf "shard%d" i) ()
        in
        (db, Server.start ~maintenance_period_s:0.0 ~db ~port:0 ()))
  in
  let nodes = List.map snd backends in
  let obs = Lt_obs.Obs.create ~clock:Clock.system () in
  let cluster =
    Cluster_client.create ~obs
      ~backends:
        (List.map
           (fun s -> { Cluster_client.host = "127.0.0.1"; port = Server.port s })
           nodes)
      ()
  in
  let placement =
    Placement.create ~shards ~policy:(Placement.Hash { vnodes = 64 })
  in
  let router = Router.create ~obs ~placement ~cluster () in
  let rserver = Server.start_custom ~backend:(Router.backend router) ~port:0 () in
  let c = Client.connect ~batch_rows:1000 ~port:(Server.port rserver) () in
  Fun.protect
    ~finally:(fun () ->
      Client.close c;
      Server.stop rserver;
      List.iter Server.stop nodes)
    (fun () ->
      let networks = 60 and devices = 5 and periods = 40 in
      let open Littletable in
      (* Inserts: one batch per period, each spanning every shard, fed
         through the buffered client — rows leave as gathered
         [Insert_batch] frames that the router forwards shard by shard
         without decoding the payload (the batched hot path). Each
         recorded latency covers one period's [buffered_insert] call,
         which is an append except when it trips the flush. The whole
         12k-row pass takes tens of milliseconds, so a single scheduler
         stall on a shared box can halve the apparent rate: the
         throughput figure is the best of five identical reps (each
         into its own table), with latencies pooled across reps. *)
      let insert_lat = ref [] in
      let run_ingest table =
        Client.create_table c table (fleet_schema ()) ~ttl:None;
        let t0 = Support.wall () in
        for ts = 1 to periods do
          let batch =
            List.concat_map
              (fun net ->
                List.map
                  (fun dev ->
                    [| Value.Int64 (Int64.of_int net);
                       Value.Int64 (Int64.of_int dev);
                       Value.Timestamp (Int64.of_int ts);
                       Value.Int64
                         (Int64.of_int ((net * 1000) + (dev * 10) + ts)) |])
                  (List.init devices (fun d -> d + 1)))
              (List.init networks (fun n -> n + 1))
          in
          let b0 = Support.wall () in
          Client.buffered_insert c table batch;
          insert_lat := (Support.wall () -. b0) :: !insert_lat
        done;
        Client.flush c;
        Support.wall () -. t0
      in
      let reps =
        List.map run_ingest [ "usage"; "rep2"; "rep3"; "rep4"; "rep5" ]
      in
      let insert_s = List.fold_left Float.min Float.max_float reps in
      let total_rows = networks * devices * periods in
      (* Queries: entity-pinned lookbacks (one shard) mixed with open
         scans (full fan-out + merge), the Fig. 10 shape. *)
      let query_lat = ref [] in
      let q0 = Support.wall () in
      let queries = 300 in
      for i = 1 to queries do
        let q =
          if i mod 10 = 0 then Query.with_limit 50 Query.all
          else
            Query.between
              ~ts_min:(Int64.of_int (periods - 7))
              (Query.prefix [ Value.Int64 (Int64.of_int ((i mod networks) + 1)) ])
        in
        let b0 = Support.wall () in
        ignore (Client.query_page c "usage" q);
        query_lat := (Support.wall () -. b0) :: !query_lat
      done;
      let query_s = Support.wall () -. q0 in
      let rows_per_s = Float.of_int total_rows /. insert_s in
      let ip99 = percentile_ms !insert_lat 0.99 in
      let qp99 = percentile_ms !query_lat 0.99 in
      let fanout = Lt_obs.Obs.router_fanout_hist obs in
      let mean_fanout =
        let n = Lt_obs.Metrics.Histogram.count fanout in
        if n = 0 then 0.0
        else Lt_obs.Metrics.Histogram.sum fanout /. Float.of_int n
      in
      Printf.printf
        "inserted %d rows in %.2f s (%.0f rows/s, best of 5 reps); p99 batch \
         insert %.2f ms\n"
        total_rows insert_s rows_per_s ip99;
      Printf.printf
        "%d queries in %.2f s (%.0f q/s); p99 query %.2f ms; mean fanout %.2f shards\n"
        queries query_s
        (Float.of_int queries /. query_s)
        qp99 mean_fanout;
      (* Per-stage breakdown, from the wire-level query profiles: where
         a routed query's time goes (route planning, shard scans, merge
         stalls, and the residual network + merge cost). *)
      let module Profile = Lt_obs.Profile in
      let prof_queries = 60 in
      let profs = ref [] in
      for i = 1 to prof_queries do
        let q =
          if i mod 10 = 0 then Query.with_limit 50 Query.all
          else
            Query.between
              ~ts_min:(Int64.of_int (periods - 7))
              (Query.prefix [ Value.Int64 (Int64.of_int ((i mod networks) + 1)) ])
        in
        match (Client.query_page ~profile:true c "usage" q).Client.profile with
        | Some p -> profs := p :: !profs
        | None -> ()
      done;
      let agg = Profile.aggregate !profs in
      let n = Float.of_int (max 1 (List.length !profs)) in
      let mean_ms v = Int64.to_float v /. 1000.0 /. n in
      let plan_ms = mean_ms agg.Profile.p_plan_us in
      let scan_ms = mean_ms agg.Profile.p_scan_us in
      let stall_ms = mean_ms agg.Profile.p_stall_us in
      let total_ms = mean_ms agg.Profile.p_total_us in
      let route_ms =
        Float.max 0.0 (total_ms -. plan_ms -. scan_ms -. stall_ms)
      in
      Printf.printf
        "query stages (mean over %d profiled): plan %.3f ms, shard scan %.3f \
         ms, merge stall %.3f ms, route+merge %.3f ms, total %.3f ms\n"
        (List.length !profs) plan_ms scan_ms stall_ms route_ms total_ms;
      (* Insert stages, from the backends' engine histograms: in-memory
         append vs. flush work. *)
      let sum_hist f =
        List.fold_left
          (fun (s, c) (db, _) ->
            let h =
              f
                (Lt_obs.Obs.table_instruments (Littletable.Db.obs db)
                   ~table:"usage")
            in
            ( s +. Lt_obs.Metrics.Histogram.sum h,
              c + Lt_obs.Metrics.Histogram.count h ))
          (0.0, 0) backends
      in
      let mean_stage_ms f =
        let s, c = sum_hist f in
        if c = 0 then 0.0 else s /. Float.of_int c *. 1000.0
      in
      let append_ms = mean_stage_ms (fun ti -> ti.Lt_obs.Obs.h_insert) in
      let flush_ms = mean_stage_ms (fun ti -> ti.Lt_obs.Obs.h_flush) in
      Printf.printf
        "insert stages (mean per op): memtable append %.3f ms, flush %.3f ms\n"
        append_ms flush_ms;
      (* Batched vs row-at-a-time ingest through the same router: the
         client-side buffer turns N request round trips into one
         gathered [Insert_batch] frame per flush, the router forwards
         per-shard sub-batches in parallel, and concurrent backend
         commits share fsync rounds. The FNV gate proves both paths
         stored byte-identical data. *)
      let inets = 20 and idevs = 10 and iperiods = 20 in
      let ingest_rows = inets * idevs * iperiods in
      let mk_row net dev ts =
        [| Value.Int64 (Int64.of_int net);
           Value.Int64 (Int64.of_int dev);
           Value.Timestamp (Int64.of_int ts);
           Value.Int64 (Int64.of_int ((net * 1000) + (dev * 10) + ts)) |]
      in
      let feed insert =
        for ts = 1 to iperiods do
          for net = 1 to inets do
            for dev = 1 to idevs do
              insert (mk_row net dev ts)
            done
          done
        done
      in
      Client.create_table c "ingest_row" (fleet_schema ()) ~ttl:None;
      Client.create_table c "ingest_batch" (fleet_schema ()) ~ttl:None;
      let r0 = Support.wall () in
      feed (fun r -> Client.insert c "ingest_row" [ r ]);
      let rowwise_s = Support.wall () -. r0 in
      let b0 = Support.wall () in
      feed (fun r -> Client.buffered_insert c "ingest_batch" [ r ]);
      Client.flush c;
      let batched_s = Support.wall () -. b0 in
      let digest tbl =
        let h = ref 0xcbf29ce484222325L in
        List.iter
          (fun row -> Array.iter (fun v -> fnv_add h (Value.to_string v)) row)
          (Client.query_all c tbl Query.all);
        !h
      in
      let d_row = digest "ingest_row" and d_batch = digest "ingest_batch" in
      if d_row <> d_batch then
        failwith
          (Printf.sprintf
             "batched ingest changed stored data (digest %016Lx vs %016Lx)"
             d_batch d_row);
      let rowwise_rps = Float.of_int ingest_rows /. rowwise_s in
      let batched_rps = Float.of_int ingest_rows /. batched_s in
      Printf.printf
        "ingest ablation (%d rows): row-at-a-time %.0f rows/s, batched %.0f \
         rows/s (%.1fx); digest %016Lx on both paths\n"
        ingest_rows rowwise_rps batched_rps
        (batched_rps /. rowwise_rps)
        d_batch;
      Support.metric ~name:"insert_rows_per_s" ~value:rows_per_s ~unit:"rows/s";
      (* Per-rep rates plus their median: the best-of-5 headline hides
         run-to-run spread, so record the raw distribution too. *)
      let rep_rates =
        List.map (fun rep_s -> Float.of_int total_rows /. rep_s) reps
      in
      List.iteri
        (fun i rps ->
          Support.metric
            ~name:(Printf.sprintf "insert_rows_per_s_rep_%d" (i + 1))
            ~value:rps ~unit:"rows/s")
        rep_rates;
      let median =
        let sorted = List.sort Float.compare rep_rates in
        List.nth sorted (List.length sorted / 2)
      in
      Support.metric ~name:"insert_rows_per_s_median" ~value:median
        ~unit:"rows/s";
      Support.metric ~name:"ingest_rowwise_rows_per_s" ~value:rowwise_rps
        ~unit:"rows/s";
      Support.metric ~name:"ingest_batched_rows_per_s" ~value:batched_rps
        ~unit:"rows/s";
      Support.metric ~name:"ingest_batched_speedup"
        ~value:(batched_rps /. rowwise_rps)
        ~unit:"x";
      Support.metric ~name:"insert_p99_ms" ~value:ip99 ~unit:"ms";
      Support.metric ~name:"query_p99_ms" ~value:qp99 ~unit:"ms";
      Support.metric ~name:"query_mean_fanout" ~value:mean_fanout ~unit:"shards";
      Support.metric ~name:"insert_append_ms_mean" ~value:append_ms ~unit:"ms";
      Support.metric ~name:"insert_flush_ms_mean" ~value:flush_ms ~unit:"ms";
      Support.metric ~name:"query_plan_ms_mean" ~value:plan_ms ~unit:"ms";
      Support.metric ~name:"query_shard_scan_ms_mean" ~value:scan_ms ~unit:"ms";
      Support.metric ~name:"query_merge_stall_ms_mean" ~value:stall_ms ~unit:"ms";
      Support.metric ~name:"query_route_merge_ms_mean" ~value:route_ms ~unit:"ms";
      Support.metric ~name:"query_profiled_total_ms_mean" ~value:total_ms
        ~unit:"ms";
      Support.metric ~name:"shards" ~value:(Float.of_int shards) ~unit:"shards";
      Support.metric ~name:"query_domains"
        ~value:
          (Float.of_int Littletable.Config.default.Littletable.Config.query_domains)
        ~unit:"domains")
