(* Ablation: the process-wide block cache on repeated dashboard queries.

   The paper leans on the OS page cache: "the first row is returned in
   well under a second ... subsequent queries for the same data are
   served from cache" (§3.5, Figure 6 measures the uncached case). Our
   engine runs on a Vfs where the only page-cache stand-in is
   lib/cache's scan-resistant block cache; this ablation measures what
   it buys.

   Setup: a usage-style table spread over several weekly tablets. A
   dashboard working set of devices is queried over and over (rounds x
   devices), with the modeled drive cache dropped before every query —
   the worst case Figure 6 measures, where only the process cache can
   absorb the re-reads. With the cache off every round pays the full
   seek + transfer cost; with it on, only the first round misses.

   A second phase checks scan resistance end to end: one full-table
   scan (far larger than the cache) runs between hot rounds, and the
   hot set must still be served from memory afterwards. *)

open Littletable
open Support

let weeks = 8

let devices_per_week = 384

let pad = 256

let hot_devices = 32

let build ?block_size ~cache_bytes () =
  let config =
    Config.make ?block_size ~flush_size:max_int
      ~merge_delay:(Int64.mul 1000L Lt_util.Clock.day)
      ~cache_bytes ()
  in
  let env = make_env ~config () in
  let schema =
    let col name ctype default = { Schema.name; ctype; default } in
    Schema.create
      ~columns:
        [
          col "network" Value.T_int64 (Value.Int64 0L);
          col "device" Value.T_int64 (Value.Int64 0L);
          col "ts" Value.T_timestamp (Value.Timestamp 0L);
          col "bytes" Value.T_int64 (Value.Int64 0L);
          col "pad" Value.T_blob (Value.Blob "");
        ]
      ~pkey:[ "network"; "device"; "ts" ]
  in
  let table = Db.create_table env.db "usage" schema ~ttl:None in
  let now = Lt_util.Clock.now env.clock in
  let pad_rng = Lt_util.Xorshift.create 23L in
  for week = 0 to weeks - 1 do
    let base =
      Int64.sub now (Int64.mul (Int64.of_int (weeks - week)) Lt_util.Clock.week)
    in
    let rows =
      List.init devices_per_week (fun d ->
          [|
            Value.Int64 1L;
            Value.Int64 (Int64.of_int d);
            Value.Timestamp (Int64.add base (Int64.of_int d));
            Value.Int64 (Int64.of_int (week + d));
            (* Incompressible pad so tablets span multiple blocks. *)
            Value.Blob (Lt_util.Xorshift.bytes pad_rng pad);
          |])
    in
    Table.insert table rows;
    Table.flush_all table
  done;
  (env, table)

(* The dashboard working set: every device appears in every weekly
   tablet, so one prefix query touches blocks of all [weeks] tablets. *)
let hot_query table device =
  let q = Query.prefix [ Value.Int64 1L; Value.Int64 (Int64.of_int device) ] in
  let r = Table.query table q in
  if List.length r.Table.rows <> weeks then failwith "ablation: bad row count"

let run_rounds env table ~rounds =
  Disk_model.reset env.model;
  let t0 = wall () in
  for _ = 1 to rounds do
    for d = 0 to hot_devices - 1 do
      (* Cold drive cache per query: only the process cache can help. *)
      Disk_model.clear_cache env.model;
      hot_query table d
    done
  done;
  let cpu = wall () -. t0 in
  let n = float_of_int (rounds * hot_devices) in
  ( Disk_model.elapsed_s env.model /. n *. 1000.0,
    float_of_int (Disk_model.seeks env.model) /. n,
    Disk_model.bytes_read env.model,
    cpu /. n *. 1000.0 )

let hit_ratio db =
  match Db.block_cache db with
  | None -> 0.0
  | Some c ->
      let k = Lt_cache.Block_cache.counters c in
      let total = k.Lt_cache.Block_cache.hits + k.Lt_cache.Block_cache.misses in
      if total = 0 then 0.0
      else float_of_int k.Lt_cache.Block_cache.hits /. float_of_int total

let scan_resistance_check env table =
  (* Warm + promote the hot set, scan the world, re-query hot. *)
  for _ = 1 to 2 do
    for d = 0 to hot_devices - 1 do
      Disk_model.clear_cache env.model;
      hot_query table d
    done
  done;
  let cache = Option.get (Db.block_cache env.db) in
  Disk_model.clear_cache env.model;
  let scanned = List.length (Table.query table Query.all).Table.rows in
  let before = Lt_cache.Block_cache.counters cache in
  for d = 0 to hot_devices - 1 do
    Disk_model.clear_cache env.model;
    hot_query table d
  done;
  let after = Lt_cache.Block_cache.counters cache in
  let new_misses =
    after.Lt_cache.Block_cache.misses - before.Lt_cache.Block_cache.misses
  in
  (scanned, before.Lt_cache.Block_cache.evictions, new_misses)

let run ?(quick = true) () =
  header "Ablation: scan-resistant block cache on repeated queries";
  note "dashboard working set of %d devices x %d weekly tablets," hot_devices weeks;
  note "drive cache dropped before every query (the Figure 6 cold case).";
  let rounds = if quick then 6 else 20 in
  let cache_capacity = 8 * mib in
  let results =
    List.map
      (fun cache_bytes ->
        let env, table = build ~cache_bytes () in
        (* One pass to open readers and load footers, so the measured
           rounds isolate data-block reads. *)
        for d = 0 to hot_devices - 1 do
          hot_query table d
        done;
        (match Db.block_cache env.db with
        | Some c -> Lt_cache.Block_cache.reset_counters c
        | None -> ());
        let disk_ms, seeks, bytes_read, cpu_ms = run_rounds env table ~rounds in
        let hits = hit_ratio env.db in
        Db.close env.db;
        (cache_bytes, disk_ms, seeks, bytes_read, cpu_ms, hits))
      [ 0; cache_capacity ]
  in
  table_header
    [ ("cache", 8); ("disk ms/query", 14); ("seeks/query", 12);
      ("disk read", 10); ("cpu ms/query", 13); ("hit ratio", 9) ];
  List.iter
    (fun (cache_bytes, disk_ms, seeks, bytes_read, cpu_ms, hits) ->
      Printf.printf "%-8s  %-14.2f  %-12.2f  %-10s  %-13.3f  %-9s\n"
        (if cache_bytes = 0 then "off" else human_bytes cache_bytes)
        disk_ms seeks
        (human_bytes bytes_read)
        cpu_ms
        (if cache_bytes = 0 then "-" else Printf.sprintf "%.0f%%" (hits *. 100.0)))
    results;
  (match results with
  | [ (_, off_ms, off_seeks, off_read, _, _); (_, on_ms, on_seeks, on_read, _, _) ]
    ->
      if on_seeks = 0.0 && on_read = 0 then
        Printf.printf
          "\ncache absorbs every repeated read: %.1f seeks and %.1f ms of disk\n\
           per query down to zero (%s read off-cache vs none on)\n"
          off_seeks off_ms (human_bytes off_read)
      else
        Printf.printf
          "\ncache cuts modeled seeks %.1fx, disk latency %.1fx, bytes read %.1fx\n"
          (off_seeks /. Float.max on_seeks 1e-9)
          (off_ms /. Float.max on_ms 1e-9)
          (float_of_int off_read /. Float.max (float_of_int on_read) 1.0)
  | _ -> ());
  (* Scan resistance, end to end: small blocks and a cache well under
     the table size, so the scan must churn it. *)
  let env, table = build ~block_size:8192 ~cache_bytes:(384 * 1024) () in
  let scanned, scan_evictions, new_misses = scan_resistance_check env table in
  Db.close env.db;
  note "";
  note "scan resistance: a %d-row whole-table scan (%d cache evictions)" scanned
    scan_evictions;
  note "left the hot set resident: %d misses on the next hot round%s" new_misses
    (if new_misses = 0 then " (perfect)" else "")
