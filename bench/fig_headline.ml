(* The paper's headline microbenchmark numbers (§1, §5):

   - first matching row from an uncached table of 128-byte rows: 31 ms;
   - scan thereafter: 500,000 rows/second, about 50% of the disk's peak
     throughput;
   - inserts of 512x128-byte batches: 42% of the disk's peak. *)

open Littletable
open Support

let run ~volume () =
  header "Headline: first-row latency, scan rate, insert rate (128 B rows)";
  note "paper: 31 ms to first row; 500k rows/s (~50%% of disk peak);";
  note "inserts at 42%% of disk peak in 512-row batches.";
  let row_size = 128 in
  (* Bloom filters are our implementation of the paper's *proposed*
     extension; the system the paper measured had none, so the headline
     numbers are reproduced without them. *)
  let config = Config.make ~bloom_bits_per_key:0 () in
  let env = make_env ~config () in
  let table = Db.create_table env.db "head" (row_schema ()) ~ttl:None in
  let rng = Lt_util.Xorshift.create 5L in

  (* Load the table in the paper's insert configuration and measure. *)
  let rows_per_batch = 512 in
  let batches = volume / (rows_per_batch * row_size) in
  let m_insert =
    measure env ~bytes:(batches * rows_per_batch * row_size) (fun () ->
        for _ = 1 to batches do
          Table.insert table
            (make_batch rng ~clock:env.clock ~n:rows_per_batch ~row_size);
          Lt_util.Clock.advance env.clock (Lt_util.Clock.usec rows_per_batch)
        done;
        Table.flush_all table)
  in
  Printf.printf "\ninsert (512-row batches): %.1f MB/s effective = %.0f%% of disk peak\n"
    (effective_mb_s m_insert)
    (effective_mb_s m_insert /. disk_seq_mb_s *. 100.0);
  metric ~name:"insert_effective_mb_s" ~value:(effective_mb_s m_insert)
    ~unit:"MB/s";
  Printf.printf "  (cpu-side %.1f MB/s, disk-side %.1f MB/s)\n"
    (float_of_int m_insert.bytes /. 1e6 /. m_insert.cpu_s)
    (disk_mb_s m_insert);

  (* Merge the flushed tablets down (the steady state the paper's table
     is in: "most tables in our system contain half a dozen or so
     tablets per period" after merging). *)
  Lt_util.Clock.advance env.clock (Lt_util.Clock.sec 120);
  while Table.merge_step table do () done;
  Printf.printf "after merging: %d tablet(s)\n" (Table.tablet_count table);

  (* Uncached first-row latency: reopen + cold caches. *)
  let reopened =
    Table.open_ env.vfs ~clock:env.clock ~config
      ~dir:(Filename.concat "bench" "head") ~name:"head"
  in
  Disk_model.clear_cache env.model;
  Disk_model.reset env.model;
  let q = Query.with_limit 1 Query.all in
  ignore (Table.query reopened q);
  let first_row_ms = Disk_model.elapsed_s env.model *. 1000.0 in
  Printf.printf "\nfirst row from an uncached table: %.1f ms (paper: 31 ms)\n"
    first_row_ms;
  metric ~name:"first_row_uncached_ms" ~value:first_row_ms ~unit:"ms";

  (* Scan throughput thereafter. *)
  Disk_model.reset env.model;
  let t0 = wall () in
  let src = Table.query_iter reopened Query.all in
  let rows = ref 0 in
  let rec go () = match src () with Some _ -> incr rows; go () | None -> () in
  go ();
  let cpu_s = wall () -. t0 in
  let disk_s = Disk_model.elapsed_s env.model in
  let eff_s = Float.max cpu_s disk_s in
  let rows_per_s = float_of_int !rows /. eff_s in
  Printf.printf
    "scan: %.0f rows/s effective (%.0f cpu-side, %.0f disk-side) = %.0f%% of disk peak\n"
    rows_per_s
    (float_of_int !rows /. cpu_s)
    (float_of_int !rows /. disk_s)
    (rows_per_s *. float_of_int row_size /. 1e6 /. disk_seq_mb_s *. 100.0);
  metric ~name:"scan_rows_per_s" ~value:rows_per_s ~unit:"rows/s";
  Table.close reopened;
  Db.close env.db
