open Littletable
open Lt_util

let schema () =
  Schema.create
    ~columns:
      [
        { Schema.name = "network"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "device"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
        { Schema.name = "event_id"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "body"; ctype = Value.T_string; default = Value.String "" };
      ]
    ~pkey:[ "network"; "device"; "ts" ]

let create_table db ?ttl name = Db.create_table db name (schema ()) ~ttl

let sentinel_body = "@sentinel"

type t = {
  table : Table.t;
  clock : Clock.t;
  sentinel_every : int;
  cache : (int64 * int64, int64) Hashtbl.t;  (** device -> latest event id *)
  mutable polls : int;
}

let create ?(sentinel_every = 0) ~table ~clock () =
  { table; clock; sentinel_every; cache = Hashtbl.create 256; polls = 0 }

let crash t = Hashtbl.reset t.cache

let cached_id t ~network ~device = Hashtbl.find_opt t.cache (network, device)

let event_row ~network ~device ~ts ~id ~body =
  [|
    Value.Int64 network;
    Value.Int64 device;
    Value.Timestamp ts;
    Value.Int64 id;
    Value.String body;
  |]

let poll t devices =
  t.polls <- t.polls + 1;
  let inserted = ref 0 in
  List.iter
    (fun dev ->
      let network = Device.network dev and device = Device.device_id dev in
      let after = Hashtbl.find_opt t.cache (network, device) in
      match Device.fetch_events_after dev after with
      | None -> ()
      | Some events ->
          let rows =
            List.map
              (fun ev ->
                event_row ~network ~device ~ts:ev.Device.event_ts
                  ~id:ev.Device.event_id ~body:ev.Device.body)
              events
          in
          (match List.rev events with
          | last :: _ -> Hashtbl.replace t.cache (network, device) last.Device.event_id
          | [] -> ());
          (* Sentinel: a tiny row carrying the latest id so restart
             recovery never needs to search past one sentinel period. *)
          let rows =
            match Hashtbl.find_opt t.cache (network, device) with
            | Some latest
              when t.sentinel_every > 0 && t.polls mod t.sentinel_every = 0 ->
                rows
                @ [
                    event_row ~network ~device ~ts:(Clock.now t.clock) ~id:latest
                      ~body:sentinel_body;
                  ]
            | _ -> rows
          in
          if rows <> [] then begin
            (try Table.insert t.table rows
             with Table.Duplicate_key _ ->
               (* A crashed grabber can re-fetch events already stored
                  (at-least-once); keyed on (device, ts) they collide and
                  are already present — drop them row by row. *)
               List.iter
                 (fun row ->
                   try Table.insert t.table [ row ]
                   with Table.Duplicate_key _ -> ())
                 rows);
            inserted := !inserted + List.length rows
          end)
    devices;
  !inserted

let recover t ~devices ~lookback =
  Hashtbl.reset t.cache;
  let now = Clock.now t.clock in
  let horizon = Int64.sub now lookback in
  (* Pass 1: one window scan per device over recent rows. *)
  List.iter
    (fun dev ->
      let network = Device.network dev and device = Device.device_id dev in
      let q =
        Query.with_direction Query.Desc
          (Query.between ~ts_min:horizon
             (Query.prefix [ Value.Int64 network; Value.Int64 device ]))
      in
      let best = ref None in
      List.iter
        (fun row ->
          match row.(3) with
          | Value.Int64 id -> (
              match !best with
              | Some b when b >= id -> ()
              | _ -> best := Some id)
          | _ -> ())
        (Table.query t.table q).Table.rows;
      match !best with
      | Some id -> Hashtbl.replace t.cache (network, device) id
      | None -> ())
    devices;
  (* Pass 2: devices with no recent rows. Ask the device for its oldest
     retained event; its timestamp bounds how far back the table search
     must go (§4.2). *)
  List.iter
    (fun dev ->
      let network = Device.network dev and device = Device.device_id dev in
      if not (Hashtbl.mem t.cache (network, device)) then begin
        match Device.fetch_events_after dev None with
        | None | Some [] -> ()
        | Some (oldest :: _) -> (
            let q =
              Query.with_direction Query.Desc
                (Query.between ~ts_min:oldest.Device.event_ts
                   (Query.prefix [ Value.Int64 network; Value.Int64 device ]))
            in
            let best = ref None in
            List.iter
              (fun row ->
                match row.(3) with
                | Value.Int64 id -> (
                    match !best with Some b when b >= id -> () | _ -> best := Some id)
                | _ -> ())
              (Table.query t.table q).Table.rows;
            match !best with
            | Some id -> Hashtbl.replace t.cache (network, device) id
            | None -> ())
      end)
    devices

let device_events table ~network ~device ~ts_min ~ts_max =
  let q =
    Query.between ~ts_min ~ts_max
      (Query.prefix [ Value.Int64 network; Value.Int64 device ])
  in
  List.filter_map
    (fun row ->
      match (row.(2), row.(3), row.(4)) with
      | Value.Timestamp ts, Value.Int64 id, Value.String body
        when body <> sentinel_body ->
          Some (ts, id, body)
      | _ -> None)
    (Table.query table q).Table.rows

let contains_substring ~pattern s =
  let pn = String.length pattern and sn = String.length s in
  if pn = 0 then true
  else begin
    let rec go i = i + pn <= sn && (String.sub s i pn = pattern || go (i + 1)) in
    go 0
  end

let search table ~network ~pattern ~ts_min ~ts_max ~limit =
  let q =
    Query.with_direction Query.Desc
      (Query.between ~ts_min ~ts_max (Query.prefix [ Value.Int64 network ]))
  in
  let src = Table.query_iter table q in
  let out = ref [] and n = ref 0 in
  let rec go () =
    if !n < limit then begin
      match src () with
      | None -> ()
      | Some (_, row) ->
          (match (row.(1), row.(2), row.(3), row.(4)) with
          | Value.Int64 device, Value.Timestamp ts, Value.Int64 id, Value.String body
            when body <> sentinel_body && contains_substring ~pattern body ->
              out := (device, ts, id, body) :: !out;
              incr n
          | _ -> ());
          go ()
    end
  in
  go ();
  List.rev !out
