(** EventsGrabber (§4.2).

    Devices assign each log event "a unique id from a monotonically
    increasing counter"; the grabber caches the most recent id fetched
    from each device, supplies it on every poll, and inserts the newer
    events into a table keyed (network, device, ts) with the id and
    contents as values.

    Recovery reproduced from the paper:
    - after a restart, a query over a fixed recent window rebuilds the
      id cache for active devices;
    - for a device absent from that window, the grabber fetches with no
      id, receives the device's {e oldest} retained event, and uses its
      timestamp to bound a deeper search for the device's latest stored
      row ({!Littletable.Table.latest});
    - optional sentinel rows carrying the latest id cap how far back
      that search ever needs to go. *)

open Littletable

(** Key (network, device, ts); values [event_id int64], [body string].
    A sentinel row has [event_id] = latest id and [body] = ["@sentinel"]. *)
val schema : unit -> Schema.t

val create_table : Db.t -> ?ttl:int64 -> string -> Table.t

val sentinel_body : string

type t

(** [sentinel_every] inserts a sentinel row for each device every N
    polls (0 disables, the default). *)
val create :
  ?sentinel_every:int -> table:Table.t -> clock:Lt_util.Clock.t -> unit -> t

(** Fetch new events from every online device; returns rows inserted
    (sentinels included). *)
val poll : t -> Device.t list -> int

val crash : t -> unit

(** Rebuild the id cache: scan the last [lookback] of rows; for devices
    not seen there, consult the device's oldest event and search the
    table backwards. *)
val recover : t -> devices:Device.t list -> lookback:int64 -> unit

val cached_id : t -> network:int64 -> device:int64 -> int64 option

(** {1 Dashboard-side reads} *)

(** Events for a device over a range, oldest first: [(ts, id, body)].
    Sentinel rows are filtered out. *)
val device_events :
  Table.t -> network:int64 -> device:int64 -> ts_min:int64 -> ts_max:int64 ->
  (int64 * int64 * string) list

(** Substring search over a network's events (forensics / debugging,
    §4.2), newest first, capped at [limit]. *)
val search :
  Table.t -> network:int64 -> pattern:string -> ts_min:int64 -> ts_max:int64 ->
  limit:int -> (int64 * int64 * int64 * string) list
