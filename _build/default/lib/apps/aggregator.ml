open Littletable
open Lt_util

let rollup_schema () =
  Schema.create
    ~columns:
      [
        { Schema.name = "network"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
        { Schema.name = "bytes"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "devices"; ctype = Value.T_blob; default = Value.Blob "" };
      ]
    ~pkey:[ "network"; "ts" ]

let tag_schema () =
  Schema.create
    ~columns:
      [
        { Schema.name = "tag"; ctype = Value.T_string; default = Value.String "" };
        { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
        { Schema.name = "bytes"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "devices"; ctype = Value.T_blob; default = Value.Blob "" };
      ]
    ~pkey:[ "tag"; "ts" ]

type durability = Safety_lag of int64 | Flush_command

type t = {
  source : Table.t;
  dest : Table.t;
  clock : Clock.t;
  period : int64;
  durability : durability;
  tags : Config_store.t option;
  mutable next_period : int64 option;
}

let create ?(period = Int64.mul 10L Clock.minute)
    ?(durability = Safety_lag (Int64.mul 20L Clock.minute)) ?tags ~source ~dest
    ~clock () =
  { source; dest; clock; period; durability; tags; next_period = None }

let position t = t.next_period

let crash t = t.next_period <- None

let align t ts = Period.align ts ~unit_len:t.period

(* Does the destination hold any row with ts >= p (and <= hi)? *)
let dest_has_row_from t ~p ~hi =
  let q = Query.with_limit 1 (Query.between ~ts_min:p ~ts_max:hi Query.all) in
  (Table.query t.dest q).Table.rows <> []

(* The paper's recovery dance: exponential lookback to find *some*
   destination row, then binary search for the most recent period. *)
let recover t =
  let now = Clock.now t.clock in
  let hi = now in
  (* Exponential lookback: 1, 2, 4, ... periods into the past. *)
  let rec widen k =
    let span = Int64.mul (Int64.of_int (1 lsl k)) t.period in
    let lo = Int64.sub now span in
    if dest_has_row_from t ~p:lo ~hi then Some lo
    else if lo <= 0L then None (* the window covers all representable time *)
    else if k >= 40 then None
    else widen (k + 1)
  in
  match widen 0 with
  | None -> t.next_period <- None
  | Some window_lo ->
      (* Largest aligned p such that a row with ts >= p exists. *)
      let lo = ref (align t window_lo) and hip = ref (align t now) in
      while !lo < !hip do
        (* Round the midpoint up so the loop always narrows. *)
        let steps = Int64.div (Int64.sub !hip !lo) t.period in
        let mid = Int64.add !lo (Int64.mul (Int64.div (Int64.add steps 1L) 2L) t.period) in
        if dest_has_row_from t ~p:mid ~hi then lo := mid else hip := Int64.sub mid t.period
      done;
      (* Re-process the period of the row we found and everything after
         (§4.1.2); existing destination rows are skipped on re-insert. *)
      t.next_period <- Some !lo

(* Find where to begin when the destination has never been written: the
   period of the oldest source row. *)
let initial_position t =
  let q = Query.with_limit 1 Query.all in
  match (Table.query t.source q).Table.rows with
  | [] -> None
  | rows ->
      (* The first row in key order is not necessarily the oldest in
         time; scan the whole first-period candidates cheaply by asking
         every tablet's metadata instead. *)
      let min_ts =
        List.fold_left
          (fun acc m -> Int64.min acc m.Descriptor.min_ts)
          (Schema.row_ts (Table.schema t.source) (List.hd rows))
          (Table.tablets t.source)
      in
      Some (align t min_ts)

type group_acc = { mutable bytes : float; hll : Lt_hll.Hll.t }

let aggregate_period t ~p =
  let p_end = Int64.add p t.period in
  let q = Query.between ~ts_min:p ~ts_max:(Int64.sub p_end 1L) Query.all in
  let groups : (Value.t, group_acc) Hashtbl.t = Hashtbl.create 32 in
  let touch key =
    match Hashtbl.find_opt groups key with
    | Some acc -> acc
    | None ->
        let acc = { bytes = 0.0; hll = Lt_hll.Hll.create ~precision:10 () } in
        Hashtbl.add groups key acc;
        acc
  in
  let src = Table.query_iter t.source q in
  let rec consume () =
    match src () with
    | None -> ()
    | Some (_, row) ->
        (match (row.(0), row.(1), row.(2), row.(3), row.(5)) with
        | ( Value.Int64 network,
            Value.Int64 device,
            Value.Timestamp t2,
            Value.Timestamp t1,
            Value.Double rate ) ->
            let seconds = Int64.to_float (Int64.sub t2 t1) /. 1e6 in
            let bytes = rate *. seconds in
            let dev_tag = Printf.sprintf "%Ld/%Ld" network device in
            let feed key =
              let acc = touch key in
              acc.bytes <- acc.bytes +. bytes;
              Lt_hll.Hll.add acc.hll dev_tag
            in
            (match t.tags with
            | None -> feed (Value.Int64 network)
            | Some store ->
                List.iter
                  (fun tag -> feed (Value.String tag))
                  (Config_store.device_tags store ~network ~device))
        | _ -> ());
        consume ()
  in
  consume ();
  (* Skip groups already present (recovery re-processes the last,
     possibly partially written, period). *)
  let existing =
    List.filter_map
      (fun row -> Some row.(0))
      (Table.query t.dest
         (Query.between ~ts_min:p ~ts_max:p Query.all)).Table.rows
  in
  let rows =
    Hashtbl.fold
      (fun key acc rows ->
        if List.exists (Value.equal key) existing then rows
        else
          [|
            key;
            Value.Timestamp p;
            Value.Int64 (Int64.of_float acc.bytes);
            Value.Blob (Lt_hll.Hll.serialize acc.hll);
          |]
          :: rows)
      groups []
  in
  (* Rows of one aggregation period insert in ascending key order, the
     pattern the §3.4.4 uniqueness fast path is designed for. *)
  let rows =
    List.sort
      (fun a b -> Value.compare a.(0) b.(0))
      rows
  in
  if rows <> [] then Table.insert t.dest rows

let run_once t =
  let now = Clock.now t.clock in
  let durable_hi =
    match t.durability with
    | Safety_lag lag -> Int64.sub now lag
    | Flush_command ->
        (* The proposed flush command (§4.1.2): after it returns, every
           source row with ts <= now is durable. *)
        Table.flush_before t.source ~ts:now;
        now
  in
  (match t.next_period with
  | Some _ -> ()
  | None -> (
      recover t;
      match t.next_period with
      | Some _ -> ()
      | None -> t.next_period <- initial_position t));
  match t.next_period with
  | None -> 0
  | Some start ->
      let p = ref start and done_count = ref 0 in
      while Int64.add !p t.period <= durable_hi do
        aggregate_period t ~p:!p;
        p := Int64.add !p t.period;
        incr done_count
      done;
      t.next_period <- Some !p;
      !done_count

let read_rollup dest ~key ~ts_min ~ts_max =
  let q = Query.between ~ts_min ~ts_max (Query.prefix [ key ]) in
  List.map
    (fun row ->
      match (row.(1), row.(2), row.(3)) with
      | Value.Timestamp ts, Value.Int64 bytes, Value.Blob hll ->
          let devices =
            if hll = "" then 0.0
            else Lt_hll.Hll.estimate (Lt_hll.Hll.deserialize hll)
          in
          (ts, bytes, devices)
      | _ -> (0L, 0L, 0.0))
    (Table.query dest q).Table.rows
