open Lt_util

type event = { event_id : int64; event_ts : int64; body : string }

type motion_event = { motion_ts : int64; word : int32; duration : int64 }

(* Bounded flash: devices retain only the most recent entries. *)
let event_flash_capacity = 4096

let motion_flash_capacity = 8192

type t = {
  network : int64;
  device : int64;
  clock : Clock.t;
  rng : Xorshift.t;
  mutable online : bool;
  mutable last_step : int64;
  (* Byte counter. *)
  mutable counter : int64;
  mutable rate : float;  (** bytes per second, random walk *)
  (* Event log. *)
  mutable next_event_id : int64;
  mutable events : event list;  (** newest first, bounded *)
  mutable events_emitted : int;
  (* Motion. *)
  mutable motion : motion_event list;  (** newest first, bounded *)
  mutable motion_emitted : int;
  mutable active_cell : (int * int * int32 * int64) option;
      (** (row, col, accumulated bits, since_ts): coalescing state for
          motion in the same coarse cell across successive frames (§4.3) *)
}

let create ~seed ~network ~device ~clock () =
  let rng = Xorshift.create (Int64.add seed (Int64.mul 31L (Int64.add network device))) in
  {
    network;
    device;
    clock;
    rng;
    online = true;
    last_step = Clock.now clock;
    counter = 0L;
    rate = 1000.0 +. (Xorshift.float rng *. 100_000.0);
    next_event_id = 1L;
    events = [];
    events_emitted = 0;
    motion = [];
    motion_emitted = 0;
    active_cell = None;
  }

let network t = t.network

let device_id t = t.device

let set_online t b = t.online <- b

let is_online t = t.online

let reboot t =
  t.counter <- 0L;
  t.active_cell <- None

let events_emitted t = t.events_emitted

let motion_emitted t = t.motion_emitted

let truncate n xs =
  let rec go i = function
    | [] -> []
    | _ when i = n -> []
    | x :: tl -> x :: go (i + 1) tl
  in
  go 0 xs

let push_event t ts body =
  let ev = { event_id = t.next_event_id; event_ts = ts; body } in
  t.next_event_id <- Int64.add t.next_event_id 1L;
  t.events <- truncate event_flash_capacity (ev :: t.events);
  t.events_emitted <- t.events_emitted + 1

let event_bodies = [| "assoc"; "disassoc"; "dhcp_lease"; "8021x_auth"; "dfs_event" |]

let random_mac rng =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (Xorshift.int rng 256)
    (Xorshift.int rng 256) (Xorshift.int rng 256) (Xorshift.int rng 256)
    (Xorshift.int rng 256) (Xorshift.int rng 256)

(* Coarse grid (§4.3): a 960x540 frame is 60x34 16x16-pixel macroblocks;
   coarse cells of 6x4 macroblocks give a 10x9 grid, so row and column
   each fit a nibble and the 24 macroblocks fill the rest of the word. *)
let coarse_cols = 10

let coarse_rows = 9

let make_word ~row ~col ~blocks =
  Int32.logor
    (Int32.shift_left (Int32.of_int ((row lsl 4) lor col)) 24)
    (Int32.logand (Int32.of_int blocks) 0xFFFFFFl)

let finish_motion t end_ts =
  match t.active_cell with
  | None -> ()
  | Some (row, col, bits, since) ->
      let ev =
        {
          motion_ts = since;
          word = make_word ~row ~col ~blocks:(Int32.to_int bits);
          duration = Int64.max 0L (Int64.sub end_ts since);
        }
      in
      t.motion <- truncate motion_flash_capacity (ev :: t.motion);
      t.motion_emitted <- t.motion_emitted + 1;
      t.active_cell <- None

(* Advance one simulated second. *)
let tick t now =
  (* Random-walk the transfer rate within [100 B/s, 1 MB/s]. *)
  t.rate <- t.rate *. (0.95 +. (Xorshift.float t.rng *. 0.1));
  t.rate <- Float.max 100.0 (Float.min 1.0e6 t.rate);
  t.counter <- Int64.add t.counter (Int64.of_float t.rate);
  (* Events: roughly one every 30 simulated seconds. *)
  if Xorshift.int t.rng 30 = 0 then begin
    let body =
      Printf.sprintf "%s client=%s"
        event_bodies.(Xorshift.int t.rng (Array.length event_bodies))
        (random_mac t.rng)
    in
    push_event t now body
  end;
  (* Motion: bursts; while a burst is active the same coarse cell keeps
     accumulating macroblock bits, coalescing into one event (§4.3). *)
  match t.active_cell with
  | Some (row, col, bits, since) ->
      if Xorshift.int t.rng 4 = 0 then finish_motion t now
      else begin
        let more = Int32.of_int (Xorshift.int t.rng 0x1000000) in
        t.active_cell <- Some (row, col, Int32.logor bits more, since)
      end
  | None ->
      if Xorshift.int t.rng 20 = 0 then begin
        let row = Xorshift.int t.rng coarse_rows in
        let col = Xorshift.int t.rng coarse_cols in
        let bits = Int32.of_int (1 lsl Xorshift.int t.rng 24) in
        t.active_cell <- Some (row, col, bits, now)
      end

let step t =
  let now = Clock.now t.clock in
  (* Walk forward in one-second increments (bounded work per step: cap
     at an hour of catch-up, enough for any grabber cadence). *)
  let second = Clock.sec 1 in
  let steps =
    Int64.to_int (Int64.min 3600L (Int64.div (Int64.sub now t.last_step) second))
  in
  for i = 1 to steps do
    tick t (Int64.add t.last_step (Int64.mul (Int64.of_int i) second))
  done;
  if steps > 0 then t.last_step <- Int64.add t.last_step (Int64.mul (Int64.of_int steps) second)

let read_counter t =
  if not t.online then None else Some (Clock.now t.clock, t.counter)

let fetch_events_after t after =
  if not t.online then None
  else begin
    let keep ev =
      match after with None -> true | Some id -> ev.event_id > id
    in
    Some (List.rev (List.filter keep t.events))
  end

let fetch_motion_after t ts =
  if not t.online then None
  else Some (List.rev (List.filter (fun m -> m.motion_ts > ts) t.motion))
