lib/apps/config_store.mli:
