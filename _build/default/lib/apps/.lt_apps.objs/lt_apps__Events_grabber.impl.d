lib/apps/events_grabber.ml: Array Clock Db Device Hashtbl Int64 List Littletable Lt_util Query Schema String Table Value
