lib/apps/shard.ml: Aggregator Config Db Device Events_grabber Int64 List Littletable Lt_util Lt_vfs Stats Table Usage_grabber Value
