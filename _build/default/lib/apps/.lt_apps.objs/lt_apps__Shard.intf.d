lib/apps/shard.mli: Config Db Littletable Lt_util Lt_vfs Table
