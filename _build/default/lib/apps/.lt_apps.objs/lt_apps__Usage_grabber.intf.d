lib/apps/usage_grabber.mli: Db Device Littletable Lt_util Schema Table
