lib/apps/config_store.ml: Hashtbl List Option Printf
