lib/apps/device.ml: Array Clock Float Int32 Int64 List Lt_util Printf Xorshift
