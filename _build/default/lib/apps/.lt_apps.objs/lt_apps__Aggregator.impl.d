lib/apps/aggregator.ml: Array Clock Config_store Descriptor Hashtbl Int64 List Littletable Lt_hll Lt_util Period Printf Query Schema Table Value
