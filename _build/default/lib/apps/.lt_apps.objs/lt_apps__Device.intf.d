lib/apps/device.mli: Lt_util
