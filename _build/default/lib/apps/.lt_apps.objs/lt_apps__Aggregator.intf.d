lib/apps/aggregator.mli: Config_store Littletable Lt_util Schema Table Value
