lib/apps/motion.ml: Array Clock Db Device Hashtbl Int32 Int64 List Littletable Lt_util Option Query Schema Table Value
