lib/apps/motion.mli: Db Device Littletable Lt_util Schema Table
