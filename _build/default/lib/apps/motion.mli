(** Video motion search (§4.3).

    Meraki cameras store video locally; Dashboard stores only compact
    motion metadata in LittleTable so users can "select any rectangular
    area of interest in a camera's video frame and search backwards in
    time for motion events within that area", and to draw heatmaps.

    A 960x540 frame is a 60x34 grid of 16x16-pixel macroblocks, grouped
    into coarse cells of 6x4 macroblocks (a 10x9 coarse grid). A motion
    event is one 32-bit word: "a nibble each for the row and column of
    the coarse cell within the frame, and a bit each to indicate the
    presence or absence of motion in the 24 macroblocks"; motion in the
    same cell across successive frames coalesces into one event with a
    duration. *)

open Littletable

(** {1 Motion words} *)

(** Macroblock-grid geometry. *)
val frame_cols : int  (** 60 *)

val frame_rows : int  (** 34 (the last coarse row is clipped) *)

val cell_cols : int  (** 6 macroblocks per coarse cell, horizontally *)

val cell_rows : int  (** 4 macroblocks per coarse cell, vertically *)

val coarse_cols : int  (** 10 *)

val coarse_rows : int  (** 9 *)

(** [word ~row ~col ~blocks] packs a coarse-cell position (row/col
    nibbles) and a 24-bit macroblock mask.
    @raise Invalid_argument when out of range. *)
val word : row:int -> col:int -> blocks:int -> int32

val word_row : int32 -> int
val word_col : int32 -> int
val word_blocks : int32 -> int

(** Macroblock coordinates (x, y in the 60x34 grid) with motion. *)
val word_macroblocks : int32 -> (int * int) list

(** {1 Storage} *)

(** Key (camera, ts); values [word int32], [duration int64]. *)
val schema : unit -> Schema.t

val create_table : Db.t -> ?ttl:int64 -> string -> Table.t

(** {1 MotionGrabber} *)

type t

val create : table:Table.t -> clock:Lt_util.Clock.t -> unit -> t

(** Fetch new motion events from each online camera; returns rows
    inserted. *)
val poll : t -> Device.t list -> int

val crash : t -> unit

(** Rebuild per-camera fetch positions from the newest stored row. *)
val recover : t -> cameras:Device.t list -> lookback:int64 -> unit

(** {1 Search and heatmaps} *)

type rect = { x0 : int; y0 : int; x1 : int; y1 : int }
(** Inclusive macroblock-coordinate rectangle, 0 <= x < 60, 0 <= y < 34. *)

(** Motion events for [camera] intersecting [rect], newest first
    (searching "backwards in time", §4.3): [(ts, word, duration)]. *)
val search :
  Table.t -> camera:int64 -> rect:rect -> ts_min:int64 -> ts_max:int64 ->
  limit:int -> (int64 * int32 * int64) list

(** Per-macroblock motion-event counts over a range: a 60x34 matrix
    indexed [.(y).(x)]. *)
val heatmap :
  Table.t -> camera:int64 -> ts_min:int64 -> ts_max:int64 -> int array array
