type t = {
  network_names : (int64, string) Hashtbl.t;
  device_info : (int64 * int64, string list) Hashtbl.t;
}

let create () =
  { network_names = Hashtbl.create 16; device_info = Hashtbl.create 64 }

let add_network t ~id ~name = Hashtbl.replace t.network_names id name

let add_device t ~network ~device ~tags =
  if not (Hashtbl.mem t.network_names network) then
    invalid_arg (Printf.sprintf "Config_store: unknown network %Ld" network);
  Hashtbl.replace t.device_info (network, device) tags

let network_name t id = Hashtbl.find_opt t.network_names id

let device_tags t ~network ~device =
  Option.value ~default:[] (Hashtbl.find_opt t.device_info (network, device))

let devices t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.device_info [])

let devices_in_network t network =
  List.sort compare
    (Hashtbl.fold
       (fun (n, d) _ acc -> if n = network then d :: acc else acc)
       t.device_info [])

let networks t =
  List.sort compare
    (Hashtbl.fold (fun id _ acc -> id :: acc) t.network_names [])

let all_tags t =
  List.sort_uniq compare
    (Hashtbl.fold (fun _ tags acc -> tags @ acc) t.device_info [])
