(** UsageGrabber (§4.1.1).

    Periodically fetches each device's byte counter, converts successive
    samples into average transfer rates, and stores them in a table keyed
    [(network, device, ts)] so Dashboard can chart either a whole network
    or one device from the same clustered table (Figure 1).

    Semantics reproduced from the paper:
    - the very first response from a device only seeds the in-memory
      cache; no row is written;
    - a sample after an unavailability longer than the threshold [T] is
      treated like a first response, so users see a gap rather than a
      fabricated steady rate;
    - cache entries older than [T] may be dropped at any time, which is
      also what makes crash recovery cheap: {!rebuild_cache} re-reads at
      most the last [T] of rows per device and resumes ("a LittleTable
      crash thus appears to customers as no more than temporary
      unreachability of their devices");
    - a counter that went backwards (device reboot) also reseeds. *)

open Littletable

(** Source-table schema: key (network, device, ts); values
    [t1 timestamp] (interval start), [counter int64], [rate double]
    (bytes/second over [\[t1, ts)]), exactly the paper's
    "(N, D, t2) -> (t1, c2, r)". *)
val schema : unit -> Schema.t

(** Create the usage table in [db]. *)
val create_table : Db.t -> ?ttl:int64 -> string -> Table.t

type t

(** [T] defaults to one hour, "subject to taste; Dashboard sets T to an
    hour". *)
val create : ?threshold:int64 -> table:Table.t -> clock:Lt_util.Clock.t -> unit -> t

(** Fetch every device once and store resulting rate rows. Offline
    devices are skipped. Returns the number of rows inserted. *)
val poll : t -> Device.t list -> int

(** Forget everything (simulates a grabber crash). *)
val crash : t -> unit

(** Rebuild the cache from the table after a crash: for each device,
    the newest row within the last [T] seeds (ts, counter). *)
val rebuild_cache : t -> devices:(int64 * int64) list -> unit

(** Drop cache entries older than [T]. *)
val prune_cache : t -> unit

val cache_size : t -> int

(** {1 Dashboard-side reads} *)

(** Average rate samples for one device over a time range, oldest first:
    [(ts, rate)]. *)
val device_rates :
  Table.t -> network:int64 -> device:int64 -> ts_min:int64 -> ts_max:int64 ->
  (int64 * float) list

(** Total bytes transferred per device of a network over a time range
    (integrating rate over each sample interval, clipped to the range). *)
val network_usage :
  Table.t -> network:int64 -> ts_min:int64 -> ts_max:int64 -> (int64 * int64) list
