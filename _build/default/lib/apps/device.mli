(** Simulated Meraki devices.

    The paper's applications pull time-series data from physical devices
    over mtunnel; we do not have those, so this module simulates the
    device-side behaviour the grabbers depend on (see DESIGN.md):

    - a monotonically increasing byte counter whose rate follows a
      bounded random walk (resetting on "reboot"),
    - an event log with ids "from a monotonically increasing counter"
      (§4.2), held in bounded flash so old events age out,
    - per-frame motion events encoded exactly as §4.3 describes
      (coalesced 32-bit words: coarse-cell row/col nibbles plus 24
      macroblock bits), also in bounded flash,
    - an availability model: devices go offline and online, and while
      offline they keep accumulating — "data recently inserted into
      LittleTable can generally be re-read from the devices themselves".

    Everything is deterministic given the seed and a manual clock.
    [step] advances internal state to the clock's current time; grabbers
    then fetch, exactly mirroring the poll-based production pipeline. *)

type t

val create :
  seed:int64 ->
  network:int64 ->
  device:int64 ->
  clock:Lt_util.Clock.t ->
  unit ->
  t

val network : t -> int64
val device_id : t -> int64

(** {1 Availability} *)

val set_online : t -> bool -> unit
val is_online : t -> bool

(** Simulate a device reboot: the byte counter resets to zero; the event
    log and its id counter survive (they live in flash). *)
val reboot : t -> unit

(** {1 Simulation} *)

(** Advance internal state to the clock's current time: accrue bytes,
    possibly emit events and motion. Call after advancing the clock. *)
val step : t -> unit

(** {1 Fetch interfaces} (what the grabbers call; [None] when offline) *)

(** Current (time, total bytes transferred). *)
val read_counter : t -> (int64 * int64) option

type event = { event_id : int64; event_ts : int64; body : string }

(** Events with ids strictly greater than the supplied id ([None] = from
    the oldest retained event), oldest first. *)
val fetch_events_after : t -> int64 option -> event list option

type motion_event = { motion_ts : int64; word : int32; duration : int64 }

(** Motion events with timestamps strictly greater than [ts], oldest
    first. *)
val fetch_motion_after : t -> int64 -> motion_event list option

(** {1 Introspection} (for tests) *)

val events_emitted : t -> int
val motion_emitted : t -> int
