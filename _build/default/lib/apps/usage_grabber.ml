open Littletable
open Lt_util

let schema () =
  Schema.create
    ~columns:
      [
        { Schema.name = "network"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "device"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
        { Schema.name = "t1"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
        { Schema.name = "counter"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "rate"; ctype = Value.T_double; default = Value.Double 0.0 };
      ]
    ~pkey:[ "network"; "device"; "ts" ]

let create_table db ?ttl name = Db.create_table db name (schema ()) ~ttl

type cached = { c_ts : int64; c_counter : int64 }

type t = {
  table : Table.t;
  clock : Clock.t;
  threshold : int64;
  cache : (int64 * int64, cached) Hashtbl.t;
}

let create ?(threshold = Clock.hour) ~table ~clock () =
  { table; clock; threshold; cache = Hashtbl.create 256 }

let cache_size t = Hashtbl.length t.cache

let crash t = Hashtbl.reset t.cache

let row ~network ~device ~t2 ~t1 ~counter ~rate =
  [|
    Value.Int64 network;
    Value.Int64 device;
    Value.Timestamp t2;
    Value.Timestamp t1;
    Value.Int64 counter;
    Value.Double rate;
  |]

let poll t devices =
  let inserted = ref 0 in
  let batch = ref [] in
  List.iter
    (fun dev ->
      match Device.read_counter dev with
      | None -> ()
      | Some (t2, c2) ->
          let key = (Device.network dev, Device.device_id dev) in
          (match Hashtbl.find_opt t.cache key with
          | Some { c_ts = t1; c_counter = c1 }
            when Int64.sub t2 t1 <= t.threshold && c2 >= c1 && t2 > t1 ->
              let dt = Int64.to_float (Int64.sub t2 t1) /. 1e6 in
              let rate = Int64.to_float (Int64.sub c2 c1) /. dt in
              batch :=
                row ~network:(fst key) ~device:(snd key) ~t2 ~t1 ~counter:c2 ~rate
                :: !batch;
              incr inserted
          | Some _ | None ->
              (* First response, a gap longer than T, or a counter that
                 went backwards: seed the cache only. *)
              ());
          Hashtbl.replace t.cache key { c_ts = t2; c_counter = c2 })
    devices;
  if !batch <> [] then Table.insert t.table (List.rev !batch);
  !inserted

let prune_cache t =
  let now = Clock.now t.clock in
  let stale =
    Hashtbl.fold
      (fun key { c_ts; _ } acc ->
        if Int64.sub now c_ts > t.threshold then key :: acc else acc)
      t.cache []
  in
  List.iter (Hashtbl.remove t.cache) stale

let rebuild_cache t ~devices =
  Hashtbl.reset t.cache;
  let now = Clock.now t.clock in
  let horizon = Int64.sub now t.threshold in
  List.iter
    (fun (network, device) ->
      (* The newest row for this device within the last T. A bounded
         ts-range query (not [Table.latest]) keeps recovery O(T) per
         device — the paper sizes this at "under four seconds" for a
         30,000-device shard. *)
      let q =
        Query.with_limit 1
          (Query.with_direction Query.Desc
             (Query.between ~ts_min:horizon
                (Query.prefix [ Value.Int64 network; Value.Int64 device ])))
      in
      match (Table.query t.table q).Table.rows with
      | [ r ] ->
          let ts = match r.(2) with Value.Timestamp v -> v | _ -> assert false in
          let counter = match r.(4) with Value.Int64 v -> v | _ -> assert false in
          Hashtbl.replace t.cache (network, device) { c_ts = ts; c_counter = counter }
      | _ -> ())
    devices

let device_rates table ~network ~device ~ts_min ~ts_max =
  let q =
    Query.between ~ts_min ~ts_max
      (Query.prefix [ Value.Int64 network; Value.Int64 device ])
  in
  List.map
    (fun r ->
      match (r.(2), r.(5)) with
      | Value.Timestamp ts, Value.Double rate -> (ts, rate)
      | _ -> assert false)
    (Table.query table q).Table.rows

let network_usage table ~network ~ts_min ~ts_max =
  (* Rows sorted by (device, ts): accumulate per device in stream order.
     The key-sorted result stream is what lets the adaptor aggregate
     "without resorting the data" (§3.1). *)
  let q = Query.between ~ts_min ~ts_max (Query.prefix [ Value.Int64 network ]) in
  let totals = ref [] in
  let add device bytes =
    match !totals with
    | (d, acc) :: rest when d = device -> totals := (d, Int64.add acc bytes) :: rest
    | _ -> totals := (device, bytes) :: !totals
  in
  List.iter
    (fun r ->
      match (r.(1), r.(2), r.(3), r.(5)) with
      | Value.Int64 device, Value.Timestamp t2, Value.Timestamp t1, Value.Double rate ->
          (* Clip the sample interval to the requested range. *)
          let lo = Int64.max t1 ts_min and hi = Int64.min t2 ts_max in
          if hi > lo then begin
            let seconds = Int64.to_float (Int64.sub hi lo) /. 1e6 in
            add device (Int64.of_float (rate *. seconds))
          end
      | _ -> assert false)
    (Table.query table q).Table.rows;
  List.rev !totals
