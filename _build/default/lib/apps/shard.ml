open Littletable
module Clock = Lt_util.Clock

type t = {
  db : Db.t;
  clock : Clock.t;
  networks : int64 list;
  usage : Table.t;
  events : Table.t;
  rollup : Table.t;
  usage_grabber : Usage_grabber.t;
  events_grabber : Events_grabber.t;
  aggregator : Aggregator.t;
  devices : Device.t list;
}

let networks t = t.networks

let db t = t.db

let usage_table t = t.usage

let events_table t = t.events

let make_devices ~clock ~networks ~devices_per_network =
  List.concat_map
    (fun network ->
      List.init devices_per_network (fun i ->
          Device.create
            ~seed:(Int64.add (Int64.mul network 1000L) (Int64.of_int i))
            ~network
            ~device:(Int64.of_int (i + 1))
            ~clock ()))
    networks

let assemble ~db ~clock ~networks ~devices_per_network ~fresh =
  let usage =
    if fresh then Usage_grabber.create_table db "usage"
    else Db.table db "usage"
  in
  let events =
    if fresh then Events_grabber.create_table db "events"
    else Db.table db "events"
  in
  let rollup =
    if fresh then Db.create_table db "usage_10m" (Aggregator.rollup_schema ()) ~ttl:None
    else Db.table db "usage_10m"
  in
  let usage_grabber = Usage_grabber.create ~table:usage ~clock () in
  let events_grabber = Events_grabber.create ~sentinel_every:32 ~table:events ~clock () in
  let aggregator = Aggregator.create ~source:usage ~dest:rollup ~clock () in
  let devices = make_devices ~clock ~networks ~devices_per_network in
  let t =
    { db; clock; networks; usage; events; rollup; usage_grabber; events_grabber;
      aggregator; devices }
  in
  if not fresh then begin
    (* Post-crash/failover recovery, as the applications do (§4). *)
    Usage_grabber.rebuild_cache usage_grabber
      ~devices:(List.map (fun d -> (Device.network d, Device.device_id d)) devices);
    Events_grabber.recover events_grabber ~devices ~lookback:Clock.hour;
    Aggregator.recover aggregator
  end;
  t

let create ?(config = Config.default) ~vfs ~clock ~dir ~networks
    ~devices_per_network () =
  let db = Db.open_ ~config ~clock ~vfs ~dir () in
  assemble ~db ~clock ~networks ~devices_per_network ~fresh:true

let attach ?(config = Config.default) ~vfs ~clock ~dir ~networks
    ~devices_per_network () =
  let db = Db.open_ ~config ~clock ~vfs ~dir () in
  assemble ~db ~clock ~networks ~devices_per_network ~fresh:false

let tick t =
  List.iter Device.step t.devices;
  ignore (Usage_grabber.poll t.usage_grabber t.devices);
  ignore (Events_grabber.poll t.events_grabber t.devices);
  ignore (Aggregator.run_once t.aggregator);
  Db.maintenance t.db

let row_count t =
  List.fold_left
    (fun acc table -> acc + (Table.stats table).Stats.rows_inserted)
    0 [ t.usage; t.events; t.rollup ]

let archive_to_spare t ~spare_vfs ~spare_dir =
  Db.flush_all t.db;
  ignore
    (Lt_vfs.Sync.until_stable ~src:(Db.vfs t.db) ~src_dir:(Db.dir t.db)
       ~dst:spare_vfs ~dst_dir:spare_dir ())

let failover ?(config = Config.default) ~spare_vfs ~clock ~spare_dir ~networks
    ~devices_per_network () =
  attach ~config ~vfs:spare_vfs ~clock ~dir:spare_dir ~networks
    ~devices_per_network ()

let split ?(config = Config.default) t ~vfs ~left_dir ~right_dir
    ~devices_per_network () =
  Db.flush_all t.db;
  let n = List.length t.networks in
  let left_nets = List.filteri (fun i _ -> i < n / 2) t.networks in
  let right_nets = List.filteri (fun i _ -> i >= n / 2) t.networks in
  let clone dst_dir keep_nets =
    ignore
      (Lt_vfs.Sync.until_stable ~src:(Db.vfs t.db) ~src_dir:(Db.dir t.db)
         ~dst:vfs ~dst_dir ());
    let child =
      attach ~config ~vfs ~clock:t.clock ~dir:dst_dir ~networks:keep_nets
        ~devices_per_network ()
    in
    (* Purge the other half's customers from this child: the per-network
       bulk prefix delete of §7. *)
    let doomed = List.filter (fun net -> not (List.mem net keep_nets)) t.networks in
    List.iter
      (fun net ->
        ignore (Table.delete_prefix child.usage [ Value.Int64 net ]);
        ignore (Table.delete_prefix child.events [ Value.Int64 net ]);
        ignore (Table.delete_prefix child.rollup [ Value.Int64 net ]))
      doomed;
    child
  in
  (clone left_dir left_nets, clone right_dir right_nets)
