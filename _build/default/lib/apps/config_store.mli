(** A stand-in for the PostgreSQL configuration database.

    Dashboard stores device configuration in PostgreSQL; aggregators
    "join source data from LittleTable with dimension tables from our
    configuration data" — e.g. user-defined tags on access points, so a
    school can chart usage for "classrooms" vs "playing-fields"
    (§4.1.2). This module provides just those dimension rows: networks,
    devices, and their tags. *)

type t

val create : unit -> t

val add_network : t -> id:int64 -> name:string -> unit

(** @raise Invalid_argument if the network is unknown. *)
val add_device : t -> network:int64 -> device:int64 -> tags:string list -> unit

val network_name : t -> int64 -> string option

(** Tags of a device (empty when unknown). *)
val device_tags : t -> network:int64 -> device:int64 -> string list

(** All (network, device) pairs, sorted. *)
val devices : t -> (int64 * int64) list

val devices_in_network : t -> int64 -> int64 list

val networks : t -> int64 list

(** All distinct tags, sorted. *)
val all_tags : t -> string list
