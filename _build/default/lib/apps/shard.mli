(** Shards: the unit of Dashboard's horizontal scaling (§2).

    "Dashboard is implemented as a collection of mostly independent
    servers called shards, each of which implements the entirety of
    Dashboard's functionality for some subset of Meraki's customers and
    their devices." A shard bundles a LittleTable database with the
    grabber/aggregator pipeline of §4 over the customers (networks)
    assigned to it.

    Fault tolerance (§2.2): every shard has a warm spare kept consistent
    by continuous archival ({!archive_to_spare}, the §3.5 rsync loop);
    {!failover} brings the spare up as the new primary, losing only
    un-archived recent data, which the grabbers then re-fetch from the
    devices.

    Load balancing (§2.2): "to keep Dashboard responsive, the team
    splits overloaded shards by mapping roughly half of their customers
    to each of two new child shards." {!split} clones the shard onto two
    children and removes the other half's rows from each with the bulk
    prefix delete — the very capability §7 says Meraki built for data
    removal at customer granularity. *)

open Littletable

type t

(** [create ~vfs ~clock ~dir ~networks ~devices_per_network ()] builds a
    shard with its usage/events tables, grabbers, a 10-minute rollup
    aggregator, and simulated devices for each assigned network. *)
val create :
  ?config:Config.t ->
  vfs:Lt_vfs.Vfs.t ->
  clock:Lt_util.Clock.t ->
  dir:string ->
  networks:int64 list ->
  devices_per_network:int ->
  unit ->
  t

(** Open a shard over an existing database directory (after failover or
    split). Devices are re-attached from the network list; grabbers
    recover their caches from the tables, as after any crash (§4). *)
val attach :
  ?config:Config.t ->
  vfs:Lt_vfs.Vfs.t ->
  clock:Lt_util.Clock.t ->
  dir:string ->
  networks:int64 list ->
  devices_per_network:int ->
  unit ->
  t

val networks : t -> int64 list

val db : t -> Db.t

val usage_table : t -> Table.t

val events_table : t -> Table.t

(** One collection cycle: step devices, poll both grabbers, run the
    rollup aggregator, run maintenance. *)
val tick : t -> unit

(** Rows currently stored across the shard's tables. *)
val row_count : t -> int

(** {1 Fault tolerance} *)

(** One archival round to the spare directory (sync until stable). *)
val archive_to_spare :
  t -> spare_vfs:Lt_vfs.Vfs.t -> spare_dir:string -> unit

(** Bring a spare directory up as a shard. Equivalent to {!attach}; the
    grabbers rebuild their caches from the archived tables and re-fetch
    anything newer from the devices. *)
val failover :
  ?config:Config.t ->
  spare_vfs:Lt_vfs.Vfs.t ->
  clock:Lt_util.Clock.t ->
  spare_dir:string ->
  networks:int64 list ->
  devices_per_network:int ->
  unit ->
  t

(** {1 Load balancing} *)

(** [split t ~vfs ~left_dir ~right_dir] copies the shard's database to
    two children, assigns each half of the networks, and bulk-deletes
    the other half's rows from each child. Returns the two children.
    The parent is left untouched (decommission it after redirecting). *)
val split :
  ?config:Config.t ->
  t ->
  vfs:Lt_vfs.Vfs.t ->
  left_dir:string ->
  right_dir:string ->
  devices_per_network:int ->
  unit ->
  t * t
