open Littletable
open Lt_util

let frame_cols = 60

let frame_rows = 34

let cell_cols = 6

let cell_rows = 4

let coarse_cols = 10

let coarse_rows = 9

let word ~row ~col ~blocks =
  if row < 0 || row >= coarse_rows then invalid_arg "Motion.word: row";
  if col < 0 || col >= coarse_cols then invalid_arg "Motion.word: col";
  if blocks < 0 || blocks > 0xFFFFFF then invalid_arg "Motion.word: blocks";
  Int32.logor
    (Int32.shift_left (Int32.of_int ((row lsl 4) lor col)) 24)
    (Int32.of_int blocks)

let word_row w = (Int32.to_int (Int32.shift_right_logical w 28)) land 0xf

let word_col w = (Int32.to_int (Int32.shift_right_logical w 24)) land 0xf

let word_blocks w = Int32.to_int (Int32.logand w 0xFFFFFFl)

let word_macroblocks w =
  let row = word_row w and col = word_col w and blocks = word_blocks w in
  let base_x = col * cell_cols and base_y = row * cell_rows in
  let out = ref [] in
  (* Bit i covers macroblock (i mod 6, i / 6) within the cell. *)
  for i = 23 downto 0 do
    if blocks land (1 lsl i) <> 0 then begin
      let x = base_x + (i mod cell_cols) and y = base_y + (i / cell_cols) in
      if x < frame_cols && y < frame_rows then out := (x, y) :: !out
    end
  done;
  !out

let schema () =
  Schema.create
    ~columns:
      [
        { Schema.name = "camera"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
        { Schema.name = "word"; ctype = Value.T_int32; default = Value.Int32 0l };
        { Schema.name = "duration"; ctype = Value.T_int64; default = Value.Int64 0L };
      ]
    ~pkey:[ "camera"; "ts" ]

let create_table db ?ttl name = Db.create_table db name (schema ()) ~ttl

type t = {
  table : Table.t;
  clock : Clock.t;
  positions : (int64, int64) Hashtbl.t;  (** camera -> last fetched ts *)
}

let create ~table ~clock () =
  { table; clock; positions = Hashtbl.create 64 }

let crash t = Hashtbl.reset t.positions

let poll t cameras =
  let inserted = ref 0 in
  List.iter
    (fun cam ->
      let camera = Device.device_id cam in
      let after = Option.value ~default:0L (Hashtbl.find_opt t.positions camera) in
      match Device.fetch_motion_after cam after with
      | None | Some [] -> ()
      | Some events ->
          let rows =
            List.map
              (fun ev ->
                [|
                  Value.Int64 camera;
                  Value.Timestamp ev.Device.motion_ts;
                  Value.Int32 ev.Device.word;
                  Value.Int64 ev.Device.duration;
                |])
              events
          in
          (match List.rev events with
          | last :: _ -> Hashtbl.replace t.positions camera last.Device.motion_ts
          | [] -> ());
          (try Table.insert t.table rows
           with Table.Duplicate_key _ ->
             List.iter
               (fun row ->
                 try Table.insert t.table [ row ]
                 with Table.Duplicate_key _ -> ())
               rows);
          inserted := !inserted + List.length rows)
    cameras;
  !inserted

let recover t ~cameras ~lookback =
  Hashtbl.reset t.positions;
  let now = Clock.now t.clock in
  let horizon = Int64.sub now lookback in
  List.iter
    (fun cam ->
      let camera = Device.device_id cam in
      let q =
        Query.with_limit 1
          (Query.with_direction Query.Desc
             (Query.between ~ts_min:horizon (Query.prefix [ Value.Int64 camera ])))
      in
      match (Table.query t.table q).Table.rows with
      | [ row ] -> (
          match row.(1) with
          | Value.Timestamp ts -> Hashtbl.replace t.positions camera ts
          | _ -> ())
      | _ -> ())
    cameras

type rect = { x0 : int; y0 : int; x1 : int; y1 : int }

let word_intersects rect w =
  List.exists
    (fun (x, y) -> x >= rect.x0 && x <= rect.x1 && y >= rect.y0 && y <= rect.y1)
    (word_macroblocks w)

let search table ~camera ~rect ~ts_min ~ts_max ~limit =
  let q =
    Query.with_direction Query.Desc
      (Query.between ~ts_min ~ts_max (Query.prefix [ Value.Int64 camera ]))
  in
  let src = Table.query_iter table q in
  let out = ref [] and n = ref 0 in
  let rec go () =
    if !n < limit then begin
      match src () with
      | None -> ()
      | Some (_, row) ->
          (match (row.(1), row.(2), row.(3)) with
          | Value.Timestamp ts, Value.Int32 w, Value.Int64 duration
            when word_intersects rect w ->
              out := (ts, w, duration) :: !out;
              incr n
          | _ -> ());
          go ()
    end
  in
  go ();
  List.rev !out

let heatmap table ~camera ~ts_min ~ts_max =
  let grid = Array.make_matrix frame_rows frame_cols 0 in
  let q = Query.between ~ts_min ~ts_max (Query.prefix [ Value.Int64 camera ]) in
  let src = Table.query_iter table q in
  let rec go () =
    match src () with
    | None -> ()
    | Some (_, row) ->
        (match row.(2) with
        | Value.Int32 w ->
            List.iter
              (fun (x, y) -> grid.(y).(x) <- grid.(y).(x) + 1)
              (word_macroblocks w)
        | _ -> ());
        go ()
  in
  go ();
  grid
