(** Aggregators and rollups (§4.1.2).

    "Background processes within Dashboard aggregate this source table to
    a new table of cumulative bytes transferred per network over
    ten-minute periods" — turning a month-long graph from a four-million
    row scan into a few thousand rows. Aggregators run outside the
    database on purpose: Meraki "originally intended to build aggregation
    directly into LittleTable, in the style of rrdtool", but a separate
    process iterates faster and can join LittleTable source data with
    PostgreSQL dimension tables (here {!Config_store} tags) and keep
    HyperLogLog client sketches.

    Crash handling reproduced from the paper:
    - because rows flush in insertion order, finding any destination row
      for a period proves all earlier periods completed; {!recover}
      locates the newest destination row by querying "over exponentially
      longer periods in the past" and then binary-searching;
    - an aggregator must not consume source rows that may not be durable
      yet. Both of the paper's answers are available: assume data older
      than [safety_lag] (20 minutes) is on disk, or issue the proposed
      flush-before-timestamp command ([`Flush_command]). *)

open Littletable

(** Destination schema for the network rollup: key (network, ts); values
    [bytes int64] (total over the period), [devices blob] (serialized
    HyperLogLog of active devices). *)
val rollup_schema : unit -> Schema.t

(** Destination schema for the tag rollup: key (tag, ts); values
    [bytes int64], [devices blob] (HLL). *)
val tag_schema : unit -> Schema.t

type durability = Safety_lag of int64 | Flush_command

type t

(** [create ~source ~dest ~clock ()] aggregates the UsageGrabber table
    [source] into [dest] over [period] (default 10 minutes) windows.
    [tags] switches to per-tag aggregation using the config store. *)
val create :
  ?period:int64 ->
  ?durability:durability ->
  ?tags:Config_store.t ->
  source:Table.t ->
  dest:Table.t ->
  clock:Lt_util.Clock.t ->
  unit ->
  t

(** Aggregate every complete, durable period not yet done; returns the
    number of periods processed. *)
val run_once : t -> int

(** Forget the position (simulates an aggregator crash). *)
val crash : t -> unit

(** Re-derive the resume position from the destination table via
    exponential lookback + binary search. *)
val recover : t -> unit

(** The period start the next [run_once] will aggregate ([None] before
    the first run/recovery decides). Exposed for tests. *)
val position : t -> int64 option

(** {1 Dashboard-side reads} *)

(** [(period_start, bytes, distinct_devices)] rows for one group key
    (network id rendered as int64, or tag) over a range. *)
val read_rollup :
  Table.t -> key:Value.t -> ts_min:int64 -> ts_max:int64 ->
  (int64 * int64 * float) list
