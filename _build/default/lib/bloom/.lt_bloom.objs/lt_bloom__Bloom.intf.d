lib/bloom/bloom.mli: Buffer Lt_util
