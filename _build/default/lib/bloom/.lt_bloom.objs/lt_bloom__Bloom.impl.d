lib/bloom/bloom.ml: Binio Bytes Char Lt_util String
