(** Bloom filters over tablet keys.

    Section 3.4.5 of the paper proposes storing "with each on-disk tablet a
    Bloom filter summarizing the tablet's keys, as in bLSM", at a cost of
    10 bits per row, to skip ~99 % of tablets on latest-row-for-prefix
    queries and duplicate-key checks. We implement that extension: each
    tablet footer carries one filter built over the encoded primary keys
    {e and} every proper key prefix at column granularity, so prefix
    membership tests work too.

    Standard double-hashing construction: k index functions derived from
    two 64-bit hashes of the key. *)

type t

(** [create ~bits_per_key ~expected_keys] sizes a filter for
    [expected_keys] insertions at [bits_per_key] bits each (the paper's
    default is 10, giving ~1 % false positives). *)
val create : ?bits_per_key:int -> expected_keys:int -> unit -> t

val add : t -> string -> unit

(** [mem t key] is [false] only if [key] was never added; [true] may be a
    false positive. *)
val mem : t -> string -> bool

(** Number of bits in the filter. *)
val bit_count : t -> int

val hash_count : t -> int

(** {1 Serialization} (stored in the tablet footer) *)

val encode : Buffer.t -> t -> unit

val decode : Lt_util.Binio.cursor -> t
