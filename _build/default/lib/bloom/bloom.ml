open Lt_util

type t = { bits : Bytes.t; nbits : int; k : int }

(* FNV-1a over OCaml's 63-bit native int (unboxed — a boxed Int64
   multiply per input byte would dominate tablet flushes), with a seed
   mixed in so we get two independent hash streams. *)
let fnv1a seed s =
  let h = ref (0x3bf29ce484222325 lxor seed) in
  for i = 0 to String.length s - 1 do
    h := !h lxor Char.code (String.unsafe_get s i);
    h := !h * 0x100000001b3
  done;
  !h land max_int

let create ?(bits_per_key = 10) ~expected_keys () =
  let nbits = max 64 (bits_per_key * max 1 expected_keys) in
  (* Round up to a whole number of bytes. *)
  let nbytes = (nbits + 7) / 8 in
  let nbits = nbytes * 8 in
  (* Optimal k = ln 2 * bits/key, clamped to a sane range. *)
  let k = max 1 (min 16 (int_of_float (0.69 *. float_of_int bits_per_key))) in
  { bits = Bytes.make nbytes '\000'; nbits; k }

let indices t key f =
  let h1 = fnv1a 0 key in
  let h2 = fnv1a 0x1E3779B97F4A7C15 key in
  for i = 0 to t.k - 1 do
    let h = (h1 + (i * h2)) land max_int in
    f (h mod t.nbits)
  done

let set_bit t idx =
  let byte = idx lsr 3 and bit = idx land 7 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get_bit t idx =
  let byte = idx lsr 3 and bit = idx land 7 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

let add t key = indices t key (set_bit t)

let mem t key =
  let ok = ref true in
  indices t key (fun idx -> if not (get_bit t idx) then ok := false);
  !ok

let bit_count t = t.nbits

let hash_count t = t.k

let encode buf t =
  Binio.put_varint buf t.k;
  Binio.put_string buf (Bytes.to_string t.bits)

let decode cur =
  let k = Binio.get_varint cur in
  let bits = Binio.get_string cur in
  if k < 1 || k > 64 then raise (Binio.Corrupt "bloom: bad hash count");
  if bits = "" then raise (Binio.Corrupt "bloom: empty bit array");
  { bits = Bytes.of_string bits; nbits = String.length bits * 8; k }
