(** Query planner: SQL → the engine's two-dimensional bounding box.

    This performs the translation the paper's SQLite adaptor performs
    (§3.1/§3.2): equality constraints on a {e leading} run of primary-key
    columns become the key-prefix bound; comparisons on the timestamp
    column become the timespan bound; everything else stays as a residual
    filter evaluated per row. Because the server returns rows sorted by
    primary key, aggregation and GROUP BY run over the stream without
    re-sorting. *)

open Littletable

exception Plan_error of string

(** [coerce ~now ctype lit] converts a parse-time literal to a typed
    value ([L_now] becomes [Timestamp now]).
    @raise Plan_error when the literal cannot inhabit [ctype]. *)
val coerce : now:int64 -> Value.ctype -> Ast.lit -> Value.t

type residual = {
  r_col : int;  (** column index *)
  r_op : Ast.cmp_op;
  r_value : Value.t;
}

(** How one output column is computed. *)
type output =
  | Out_col of int  (** plain column, by index *)
  | Out_agg of Ast.agg * int option  (** aggregate over a column or * *)

type plan = {
  query : Query.t;  (** pushed-down bounding box, direction, limit *)
  residuals : residual list;  (** conjuncts evaluated per row *)
  group_cols : int list;  (** GROUP BY column indices *)
  outputs : (output * string) list;  (** with display names *)
  aggregated : bool;
  post_limit : int option;  (** applied after filtering/aggregation *)
}

(** @raise Plan_error on unknown columns, type mismatches, non-grouped
    plain columns in an aggregate query, or ORDER BY with GROUP BY. *)
val plan_select : Schema.t -> now:int64 -> Ast.select -> plan
