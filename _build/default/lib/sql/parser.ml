open Littletable

exception Syntax_error = Lexer.Syntax_error

let error fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.T_eof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: tl -> st.toks <- tl

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok what =
  let t = next st in
  if t <> tok then error "expected %s, got %a" what Lexer.pp_token t

let expect_kw st kw =
  match next st with
  | Lexer.T_ident w when w = kw -> ()
  | t -> error "expected %s, got %a" (String.uppercase_ascii kw) Lexer.pp_token t

let accept_kw st kw =
  match peek st with
  | Lexer.T_ident w when w = kw ->
      advance st;
      true
  | _ -> false

let ident st what =
  match next st with
  | Lexer.T_ident w -> w
  | t -> error "expected %s, got %a" what Lexer.pp_token t

let int_lit st what =
  match next st with
  | Lexer.T_int v -> v
  | t -> error "expected %s, got %a" what Lexer.pp_token t

let literal st =
  match next st with
  | Lexer.T_int v -> Ast.L_int v
  | Lexer.T_float v -> Ast.L_float v
  | Lexer.T_string s -> Ast.L_string s
  | Lexer.T_blob b -> Ast.L_blob b
  | Lexer.T_ident "now" -> Ast.L_now
  | t -> error "expected a literal, got %a" Lexer.pp_token t

let agg_of_name = function
  | "sum" -> Some Ast.Sum
  | "count" -> Some Ast.Count
  | "avg" -> Some Ast.Avg
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | _ -> None

let comma_sep st item =
  let rec go acc =
    let x = item st in
    if peek st = Lexer.T_comma then begin
      advance st;
      go (x :: acc)
    end
    else List.rev (x :: acc)
  in
  go []

(* ---- SELECT ---------------------------------------------------------- *)

let projection st =
  let expr =
    match peek st with
    | Lexer.T_ident name -> (
        advance st;
        match agg_of_name name with
        | Some agg when peek st = Lexer.T_lparen ->
            advance st;
            let arg =
              match next st with
              | Lexer.T_star -> None
              | Lexer.T_ident col -> Some col
              | t -> error "expected column or * in aggregate, got %a" Lexer.pp_token t
            in
            expect st Lexer.T_rparen ")";
            Ast.Agg (agg, arg)
        | _ -> Ast.Col name)
    | Lexer.T_int _ | Lexer.T_float _ | Lexer.T_string _ | Lexer.T_blob _ ->
        Ast.Lit (literal st)
    | t -> error "expected a projection, got %a" Lexer.pp_token t
  in
  let alias = if accept_kw st "as" then Some (ident st "alias") else None in
  (expr, alias)

let cmp_op st =
  match next st with
  | Lexer.T_eq -> Ast.Eq
  | Lexer.T_ne -> Ast.Ne
  | Lexer.T_lt -> Ast.Lt
  | Lexer.T_le -> Ast.Le
  | Lexer.T_gt -> Ast.Gt
  | Lexer.T_ge -> Ast.Ge
  | t -> error "expected a comparison operator, got %a" Lexer.pp_token t

let condition st =
  let col = ident st "column name" in
  let op = cmp_op st in
  let lit = literal st in
  { Ast.col; op; lit }

let parse_select st =
  let star, projections =
    if peek st = Lexer.T_star then begin
      advance st;
      (true, [])
    end
    else (false, comma_sep st projection)
  in
  expect_kw st "from";
  let table = ident st "table name" in
  let where =
    if accept_kw st "where" then begin
      let rec go acc =
        let c = condition st in
        if accept_kw st "and" then go (c :: acc) else List.rev (c :: acc)
      in
      go []
    end
    else []
  in
  let group_by =
    if accept_kw st "group" then begin
      expect_kw st "by";
      comma_sep st (fun st -> ident st "group column")
    end
    else []
  in
  let order =
    if accept_kw st "order" then begin
      expect_kw st "by";
      expect_kw st "key";
      if accept_kw st "desc" then Some Ast.Order_desc
      else begin
        ignore (accept_kw st "asc");
        Some Ast.Order_asc
      end
    end
    else None
  in
  let limit =
    if accept_kw st "limit" then Some (Int64.to_int (int_lit st "limit")) else None
  in
  Ast.Select { projections; star; table; where; group_by; order; limit }

(* ---- INSERT ---------------------------------------------------------- *)

let parse_insert st =
  expect_kw st "into";
  let insert_table = ident st "table name" in
  let insert_columns =
    if peek st = Lexer.T_lparen then begin
      advance st;
      let cols = comma_sep st (fun st -> ident st "column name") in
      expect st Lexer.T_rparen ")";
      Some cols
    end
    else None
  in
  expect_kw st "values";
  let tuple st =
    expect st Lexer.T_lparen "(";
    let vs = comma_sep st literal in
    expect st Lexer.T_rparen ")";
    vs
  in
  let values = comma_sep st tuple in
  Ast.Insert { insert_table; insert_columns; values }

(* ---- CREATE ---------------------------------------------------------- *)

let ctype_of_name = function
  | "int32" -> Some Value.T_int32
  | "int64" -> Some Value.T_int64
  | "double" -> Some Value.T_double
  | "timestamp" -> Some Value.T_timestamp
  | "string" | "text" -> Some Value.T_string
  | "blob" -> Some Value.T_blob
  | _ -> None

let ttl_unit = function
  | "second" | "seconds" -> Some 1_000_000L
  | "minute" | "minutes" -> Some 60_000_000L
  | "hour" | "hours" -> Some 3_600_000_000L
  | "day" | "days" -> Some 86_400_000_000L
  | "week" | "weeks" -> Some 604_800_000_000L
  | _ -> None

let parse_create st =
  expect_kw st "table";
  let create_table = ident st "table name" in
  expect st Lexer.T_lparen "(";
  let columns = ref [] and pkey = ref None in
  let rec body () =
    (match peek st with
    | Lexer.T_ident "primary" ->
        advance st;
        expect_kw st "key";
        expect st Lexer.T_lparen "(";
        let cols = comma_sep st (fun st -> ident st "key column") in
        expect st Lexer.T_rparen ")";
        if !pkey <> None then error "duplicate PRIMARY KEY clause";
        pkey := Some cols
    | _ ->
        let col_name = ident st "column name" in
        let tname = ident st "column type" in
        let col_type =
          match ctype_of_name tname with
          | Some t -> t
          | None -> error "unknown type %S" tname
        in
        let col_default =
          if accept_kw st "default" then Some (literal st) else None
        in
        columns := { Ast.col_name; col_type; col_default } :: !columns);
    if peek st = Lexer.T_comma then begin
      advance st;
      body ()
    end
  in
  body ();
  expect st Lexer.T_rparen ")";
  let ttl =
    if accept_kw st "ttl" then begin
      let n = int_lit st "TTL value" in
      let u = ident st "TTL unit" in
      match ttl_unit u with
      | Some unit -> Some (Int64.mul n unit)
      | None -> error "unknown TTL unit %S" u
    end
    else None
  in
  match !pkey with
  | None -> error "CREATE TABLE requires a PRIMARY KEY clause"
  | Some pkey ->
      Ast.Create { create_table; columns = List.rev !columns; pkey; ttl }

(* ---- DELETE ---------------------------------------------------------- *)

let parse_delete st =
  expect_kw st "from";
  let delete_table = ident st "table name" in
  let delete_where =
    if accept_kw st "where" then begin
      let rec go acc =
        let c = condition st in
        if accept_kw st "and" then go (c :: acc) else List.rev (c :: acc)
      in
      go []
    end
    else []
  in
  Ast.Delete { delete_table; delete_where }

(* ---- ALTER ------------------------------------------------------------ *)

let parse_ttl_value st =
  let n = int_lit st "TTL value" in
  let u = ident st "TTL unit" in
  match ttl_unit u with
  | Some unit -> Int64.mul n unit
  | None -> error "unknown TTL unit %S" u

let parse_alter st =
  expect_kw st "table";
  let alter_table = ident st "table name" in
  let action =
    match next st with
    | Lexer.T_ident "add" ->
        expect_kw st "column";
        let col_name = ident st "column name" in
        let tname = ident st "column type" in
        let col_type =
          match ctype_of_name tname with
          | Some t -> t
          | None -> error "unknown type %S" tname
        in
        let col_default =
          if accept_kw st "default" then Some (literal st) else None
        in
        Ast.Add_column { Ast.col_name; col_type; col_default }
    | Lexer.T_ident "widen" ->
        expect_kw st "column";
        Ast.Widen_column (ident st "column name")
    | Lexer.T_ident "set" ->
        expect_kw st "ttl";
        Ast.Set_ttl (Some (parse_ttl_value st))
    | Lexer.T_ident "clear" ->
        expect_kw st "ttl";
        Ast.Set_ttl None
    | t -> error "expected ADD, WIDEN, SET or CLEAR, got %a" Lexer.pp_token t
  in
  Ast.Alter { alter_table; action }

(* ---- Top level ------------------------------------------------------- *)

let parse_stmt st =
  match next st with
  | Lexer.T_ident "select" -> parse_select st
  | Lexer.T_ident "insert" -> parse_insert st
  | Lexer.T_ident "create" -> parse_create st
  | Lexer.T_ident "delete" -> parse_delete st
  | Lexer.T_ident "alter" -> parse_alter st
  | Lexer.T_ident "drop" ->
      expect_kw st "table";
      let if_exists =
        if accept_kw st "if" then begin
          expect_kw st "exists";
          true
        end
        else false
      in
      Ast.Drop { drop_table = ident st "table name"; if_exists }
  | Lexer.T_ident "show" ->
      expect_kw st "tables";
      Ast.Show_tables
  | Lexer.T_ident "describe" -> Ast.Describe (ident st "table name")
  | t -> error "expected a statement, got %a" Lexer.pp_token t

let parse input =
  let st = { toks = Lexer.tokenize input } in
  let stmt = parse_stmt st in
  if peek st = Lexer.T_semi then advance st;
  (match peek st with
  | Lexer.T_eof -> ()
  | t -> error "trailing input: %a" Lexer.pp_token t);
  stmt
