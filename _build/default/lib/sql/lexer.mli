(** SQL lexer.

    Keywords and identifiers are case-insensitive (identifiers are
    lowered); string literals use single quotes with [''] escaping; blob
    literals are [x'68656c6c6f']; line comments start with [--]. *)

exception Syntax_error of string

type token =
  | T_ident of string  (** lowercased *)
  | T_int of int64
  | T_float of float
  | T_string of string
  | T_blob of string
  | T_lparen
  | T_rparen
  | T_comma
  | T_star
  | T_semi
  | T_eq
  | T_ne
  | T_lt
  | T_le
  | T_gt
  | T_ge
  | T_eof

val tokenize : string -> token list

val pp_token : Format.formatter -> token -> unit
