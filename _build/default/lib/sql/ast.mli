(** Abstract syntax of the LittleTable SQL dialect.

    The paper's clients speak SQL through an SQLite virtual-table adaptor
    (§3.1); our from-scratch dialect covers what the paper's applications
    use: typed CREATE TABLE with a primary key and TTL, batched INSERT,
    and SELECT with column/aggregate projections, an AND-conjunction
    WHERE (from which the planner extracts the two-dimensional bounding
    box), GROUP BY, ORDER BY primary key, and LIMIT. *)

open Littletable

(** Literals are typeless at parse time; the planner coerces them to the
    column type they meet. *)
type lit =
  | L_int of int64
  | L_float of float
  | L_string of string
  | L_blob of string
  | L_now  (** the NOW keyword, a timestamp filled at execution time *)

type agg = Sum | Count | Avg | Min | Max

type expr =
  | Col of string
  | Lit of lit
  | Agg of agg * string option  (** [Agg (Count, None)] is [COUNT( * )] *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

(** One conjunct of the WHERE clause: [column op literal]. *)
type cond = { col : string; op : cmp_op; lit : lit }

type order = Order_asc | Order_desc

type select = {
  projections : (expr * string option) list;  (** with optional AS alias *)
  star : bool;
  table : string;
  where : cond list;  (** conjunction *)
  group_by : string list;
  order : order option;  (** ORDER BY KEY [ASC|DESC] *)
  limit : int option;
}

type column_def = {
  col_name : string;
  col_type : Value.ctype;
  col_default : lit option;
}

type create = {
  create_table : string;
  columns : column_def list;
  pkey : string list;
  ttl : int64 option;  (** microseconds *)
}

type alter_action =
  | Add_column of column_def
  | Widen_column of string
  | Set_ttl of int64 option  (** microseconds; [None] = CLEAR TTL *)

type insert = {
  insert_table : string;
  insert_columns : string list option;  (** None = all, in schema order *)
  values : lit list list;
}

type stmt =
  | Select of select
  | Insert of insert
  | Create of create
  | Drop of { drop_table : string; if_exists : bool }
  | Delete of { delete_table : string; delete_where : cond list }
      (** bulk delete by leading-key equalities (engine prefix delete) *)
  | Alter of { alter_table : string; action : alter_action }
  | Show_tables
  | Describe of string

val pp_lit : Format.formatter -> lit -> unit
val pp_stmt : Format.formatter -> stmt -> unit
