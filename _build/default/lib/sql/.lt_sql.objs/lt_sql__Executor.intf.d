lib/sql/executor.mli: Ast Cursor Db Format Littletable Query Schema Value
