lib/sql/planner.ml: Array Ast Format Int32 Int64 List Littletable Option Printf Query Schema Value
