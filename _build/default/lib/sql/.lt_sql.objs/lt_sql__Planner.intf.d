lib/sql/planner.mli: Ast Littletable Query Schema Value
