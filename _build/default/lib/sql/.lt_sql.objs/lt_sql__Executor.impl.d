lib/sql/executor.ml: Array Ast Cursor Db Format Fun Hashtbl Int32 Int64 List Littletable Lt_util Option Parser Planner Printf Query Schema String Table Value
