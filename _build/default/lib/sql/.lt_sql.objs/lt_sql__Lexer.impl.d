lib/sql/lexer.ml: Buffer Char Format Int64 List String
