lib/sql/ast.ml: Char Format List Littletable Printf String Value
