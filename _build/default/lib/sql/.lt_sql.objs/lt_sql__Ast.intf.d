lib/sql/ast.mli: Format Littletable Value
