open Littletable

type lit =
  | L_int of int64
  | L_float of float
  | L_string of string
  | L_blob of string
  | L_now

type agg = Sum | Count | Avg | Min | Max

type expr = Col of string | Lit of lit | Agg of agg * string option

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type cond = { col : string; op : cmp_op; lit : lit }

type order = Order_asc | Order_desc

type select = {
  projections : (expr * string option) list;
  star : bool;
  table : string;
  where : cond list;
  group_by : string list;
  order : order option;
  limit : int option;
}

type column_def = {
  col_name : string;
  col_type : Value.ctype;
  col_default : lit option;
}

type create = {
  create_table : string;
  columns : column_def list;
  pkey : string list;
  ttl : int64 option;
}

type alter_action =
  | Add_column of column_def
  | Widen_column of string
  | Set_ttl of int64 option  (** microseconds; [None] = CLEAR TTL *)

type insert = {
  insert_table : string;
  insert_columns : string list option;
  values : lit list list;
}

type stmt =
  | Select of select
  | Insert of insert
  | Create of create
  | Drop of { drop_table : string; if_exists : bool }
  | Delete of { delete_table : string; delete_where : cond list }
      (** bulk delete by leading-key equalities (engine prefix delete) *)
  | Alter of { alter_table : string; action : alter_action }
  | Show_tables
  | Describe of string

let pp_lit ppf = function
  | L_int i -> Format.fprintf ppf "%Ld" i
  | L_float f -> Format.fprintf ppf "%g" f
  | L_string s -> Format.fprintf ppf "'%s'" s
  | L_blob s -> Format.fprintf ppf "x'%s'"
      (String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                           (List.init (String.length s) (String.get s))))
  | L_now -> Format.fprintf ppf "NOW"

let agg_name = function
  | Sum -> "SUM"
  | Count -> "COUNT"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let op_name = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_expr ppf = function
  | Col c -> Format.pp_print_string ppf c
  | Lit l -> pp_lit ppf l
  | Agg (a, Some c) -> Format.fprintf ppf "%s(%s)" (agg_name a) c
  | Agg (a, None) -> Format.fprintf ppf "%s(*)" (agg_name a)

let pp_stmt ppf = function
  | Select s ->
      Format.fprintf ppf "SELECT %s FROM %s"
        (if s.star then "*"
         else
           String.concat ", "
             (List.map (fun (e, _) -> Format.asprintf "%a" pp_expr e) s.projections))
        s.table;
      if s.where <> [] then
        Format.fprintf ppf " WHERE %s"
          (String.concat " AND "
             (List.map
                (fun c ->
                  Format.asprintf "%s %s %a" c.col (op_name c.op) pp_lit c.lit)
                s.where));
      if s.group_by <> [] then
        Format.fprintf ppf " GROUP BY %s" (String.concat ", " s.group_by);
      (match s.order with
      | Some Order_asc -> Format.fprintf ppf " ORDER BY KEY ASC"
      | Some Order_desc -> Format.fprintf ppf " ORDER BY KEY DESC"
      | None -> ());
      (match s.limit with
      | Some n -> Format.fprintf ppf " LIMIT %d" n
      | None -> ())
  | Insert i ->
      Format.fprintf ppf "INSERT INTO %s (%d rows)" i.insert_table
        (List.length i.values)
  | Create c -> Format.fprintf ppf "CREATE TABLE %s" c.create_table
  | Drop { drop_table; if_exists = _ } ->
      Format.fprintf ppf "DROP TABLE %s" drop_table
  | Delete { delete_table; delete_where } ->
      Format.fprintf ppf "DELETE FROM %s (%d conditions)" delete_table
        (List.length delete_where)
  | Alter { alter_table; action } ->
      Format.fprintf ppf "ALTER TABLE %s %s" alter_table
        (match action with
        | Add_column d -> Printf.sprintf "ADD COLUMN %s" d.col_name
        | Widen_column c -> Printf.sprintf "WIDEN COLUMN %s" c
        | Set_ttl (Some _) -> "SET TTL"
        | Set_ttl None -> "CLEAR TTL")
  | Show_tables -> Format.fprintf ppf "SHOW TABLES"
  | Describe t -> Format.fprintf ppf "DESCRIBE %s" t
