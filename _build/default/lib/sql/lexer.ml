exception Syntax_error of string

let error fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

type token =
  | T_ident of string
  | T_int of int64
  | T_float of float
  | T_string of string
  | T_blob of string
  | T_lparen
  | T_rparen
  | T_comma
  | T_star
  | T_semi
  | T_eq
  | T_ne
  | T_lt
  | T_le
  | T_gt
  | T_ge
  | T_eof

let pp_token ppf = function
  | T_ident s -> Format.fprintf ppf "%s" s
  | T_int i -> Format.fprintf ppf "%Ld" i
  | T_float f -> Format.fprintf ppf "%g" f
  | T_string s -> Format.fprintf ppf "'%s'" s
  | T_blob _ -> Format.fprintf ppf "x'...'"
  | T_lparen -> Format.fprintf ppf "("
  | T_rparen -> Format.fprintf ppf ")"
  | T_comma -> Format.fprintf ppf ","
  | T_star -> Format.fprintf ppf "*"
  | T_semi -> Format.fprintf ppf ";"
  | T_eq -> Format.fprintf ppf "="
  | T_ne -> Format.fprintf ppf "!="
  | T_lt -> Format.fprintf ppf "<"
  | T_le -> Format.fprintf ppf "<="
  | T_gt -> Format.fprintf ppf ">"
  | T_ge -> Format.fprintf ppf ">="
  | T_eof -> Format.fprintf ppf "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error "bad hex digit %C" c

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some input.[!i + k] else None in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && peek 1 = Some '-' then begin
      (* Line comment. *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.lowercase_ascii (String.sub input start (!i - start)) in
      (* Blob literal: x'...' *)
      if word = "x" && !i < n && input.[!i] = '\'' then begin
        incr i;
        let b = Buffer.create 16 in
        let fin = ref false in
        while not !fin do
          if !i >= n then error "unterminated blob literal";
          if input.[!i] = '\'' then begin
            incr i;
            fin := true
          end
          else begin
            if !i + 1 >= n then error "odd-length blob literal";
            Buffer.add_char b
              (Char.chr ((hex_val input.[!i] * 16) + hex_val input.[!i + 1]));
            i := !i + 2
          end
        done;
        emit (T_blob (Buffer.contents b))
      end
      else emit (T_ident word)
    end
    else if is_digit c || (c = '-' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      let is_float = ref false in
      if !i < n && input.[!i] = '.' then begin
        is_float := true;
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      if !i < n && (input.[!i] = 'e' || input.[!i] = 'E') then begin
        is_float := true;
        incr i;
        if !i < n && (input.[!i] = '+' || input.[!i] = '-') then incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      let text = String.sub input start (!i - start) in
      if !is_float then emit (T_float (float_of_string text))
      else begin
        match Int64.of_string_opt text with
        | Some v -> emit (T_int v)
        | None -> error "integer literal out of range: %s" text
      end
    end
    else if c = '\'' then begin
      incr i;
      let b = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then error "unterminated string literal";
        if input.[!i] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char b '\'';
            i := !i + 2
          end
          else begin
            incr i;
            fin := true
          end
        else begin
          Buffer.add_char b input.[!i];
          incr i
        end
      done;
      emit (T_string (Buffer.contents b))
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "!=" | "<>" ->
          emit T_ne;
          i := !i + 2
      | "<=" ->
          emit T_le;
          i := !i + 2
      | ">=" ->
          emit T_ge;
          i := !i + 2
      | _ -> (
          (match c with
          | '(' -> emit T_lparen
          | ')' -> emit T_rparen
          | ',' -> emit T_comma
          | '*' -> emit T_star
          | ';' -> emit T_semi
          | '=' -> emit T_eq
          | '<' -> emit T_lt
          | '>' -> emit T_gt
          | c -> error "unexpected character %C" c);
          incr i)
    end
  done;
  emit T_eof;
  List.rev !tokens
