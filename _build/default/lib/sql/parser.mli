(** Recursive-descent parser for the LittleTable SQL dialect.

    Grammar (keywords case-insensitive):

    {v
    stmt    := select | insert | create | drop | delete | alter
             | SHOW TABLES | DESCRIBE ident
    delete  := DELETE FROM ident [WHERE cond (AND cond)*]
               (conditions must be equalities on a leading run of
                primary-key columns; maps to the engine prefix delete)
    alter   := ALTER TABLE ident
               ( ADD COLUMN ident type [DEFAULT literal]
               | WIDEN COLUMN ident
               | SET TTL int unit
               | CLEAR TTL )
    select  := SELECT proj (',' proj)* FROM ident
               [WHERE cond (AND cond)*]
               [GROUP BY ident (',' ident)*]
               [ORDER BY KEY [ASC|DESC]]
               [LIMIT int]
    proj    := '*' | expr [AS ident]
    expr    := ident | literal | agg '(' (ident|'*') ')'
    agg     := SUM | COUNT | AVG | MIN | MAX
    cond    := ident op literal      op := = != <> < <= > >=
    insert  := INSERT INTO ident ['(' ident,* ')']
               VALUES tuple (',' tuple)*
    create  := CREATE TABLE [IF NOT EXISTS] ident
               '(' coldef,* ',' PRIMARY KEY '(' ident,* ')' ')'
               [TTL int unit]        unit := SECONDS|MINUTES|HOURS|DAYS|WEEKS
    coldef  := ident type [DEFAULT literal]
    type    := INT32|INT64|DOUBLE|TIMESTAMP|STRING|TEXT|BLOB
    drop    := DROP TABLE [IF EXISTS] ident
    literal := int | float | 'string' | x'hex' | NOW
    v} *)

exception Syntax_error of string
(** Re-exported from {!Lexer}. *)

(** Parse a single statement (a trailing [';'] is allowed). *)
val parse : string -> Ast.stmt
