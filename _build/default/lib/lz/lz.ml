exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let min_match = 4

(* Matches may not start within the final [mf_limit] bytes; the last
   sequence is literal-only. This mirrors the end-of-block conditions of
   other codecs in this family and keeps the decoder's copy loops simple. *)
let mf_limit = 12

let hash_log = 13

let hash_size = 1 lsl hash_log

(* Multiplicative hash of the 4 bytes at [i]. *)
let hash4 s i =
  let w =
    Char.code (String.unsafe_get s i)
    lor (Char.code (String.unsafe_get s (i + 1)) lsl 8)
    lor (Char.code (String.unsafe_get s (i + 2)) lsl 16)
    lor (Char.code (String.unsafe_get s (i + 3)) lsl 24)
  in
  (w * 2654435761) lsr (32 - hash_log) land (hash_size - 1)

let max_compressed_len n = n + (n / 255) + 16

(* Append a literal-length / match-length pair in token format. *)
let put_length b extra =
  let rec go n =
    if n >= 255 then begin
      Buffer.add_char b '\xff';
      go (n - 255)
    end
    else Buffer.add_char b (Char.chr n)
  in
  go extra

let emit_sequence b src ~lit_start ~lit_len ~match_len ~offset =
  let lit_token = if lit_len >= 15 then 15 else lit_len in
  let match_token =
    match match_len with
    | None -> 0
    | Some ml -> if ml - min_match >= 15 then 15 else ml - min_match
  in
  Buffer.add_char b (Char.chr ((lit_token lsl 4) lor match_token));
  if lit_len >= 15 then put_length b (lit_len - 15);
  Buffer.add_substring b src lit_start lit_len;
  match match_len with
  | None -> ()
  | Some ml ->
      Buffer.add_char b (Char.chr (offset land 0xff));
      Buffer.add_char b (Char.chr ((offset lsr 8) land 0xff));
      if ml - min_match >= 15 then put_length b (ml - min_match - 15)

let compress src =
  let n = String.length src in
  if n = 0 then ""
  else if n < mf_limit + min_match then begin
    (* Too short for any match: one literal-only sequence. *)
    let b = Buffer.create (n + 3) in
    emit_sequence b src ~lit_start:0 ~lit_len:n ~match_len:None ~offset:0;
    Buffer.contents b
  end
  else begin
    let b = Buffer.create (n / 2) in
    let table = Array.make hash_size (-1) in
    let match_limit = n - mf_limit in
    let anchor = ref 0 in
    let i = ref 0 in
    while !i < match_limit do
      let h = hash4 src !i in
      let cand = table.(h) in
      table.(h) <- !i;
      if
        cand >= 0
        && !i - cand <= 0xffff
        && String.unsafe_get src cand = String.unsafe_get src !i
        && String.unsafe_get src (cand + 1) = String.unsafe_get src (!i + 1)
        && String.unsafe_get src (cand + 2) = String.unsafe_get src (!i + 2)
        && String.unsafe_get src (cand + 3) = String.unsafe_get src (!i + 3)
      then begin
        (* Extend the match forward, staying clear of the tail. *)
        let limit = n - 5 in
        let ml = ref min_match in
        while
          !i + !ml < limit
          && String.unsafe_get src (cand + !ml) = String.unsafe_get src (!i + !ml)
        do
          incr ml
        done;
        emit_sequence b src ~lit_start:!anchor ~lit_len:(!i - !anchor)
          ~match_len:(Some !ml) ~offset:(!i - cand);
        i := !i + !ml;
        anchor := !i;
        (* Seed the table inside the match so nearby repeats are found. *)
        if !i < match_limit then table.(hash4 src (!i - 2)) <- !i - 2
      end
      else incr i
    done;
    emit_sequence b src ~lit_start:!anchor ~lit_len:(n - !anchor)
      ~match_len:None ~offset:0;
    Buffer.contents b
  end

let decompress ~raw_len src =
  if raw_len < 0 then corrupt "negative raw length %d" raw_len;
  if raw_len = 0 then begin
    if src <> "" then corrupt "nonempty block for empty output";
    ""
  end
  else begin
    let n = String.length src in
    let out = Bytes.create raw_len in
    let op = ref 0 (* output position *) in
    let ip = ref 0 (* input position *) in
    let read_byte () =
      if !ip >= n then corrupt "truncated block at input offset %d" !ip;
      let c = Char.code (String.unsafe_get src !ip) in
      incr ip;
      c
    in
    let read_length base =
      if base <> 15 then base
      else begin
        let total = ref base in
        let continue = ref true in
        while !continue do
          let c = read_byte () in
          total := !total + c;
          if c <> 255 then continue := false
        done;
        !total
      end
    in
    let finished = ref false in
    while not !finished do
      let token = read_byte () in
      let lit_len = read_length (token lsr 4) in
      if !ip + lit_len > n then corrupt "literal run overruns input";
      if !op + lit_len > raw_len then corrupt "literal run overruns output";
      Bytes.blit_string src !ip out !op lit_len;
      ip := !ip + lit_len;
      op := !op + lit_len;
      if !ip = n then begin
        (* Last sequence: literals only. *)
        if token land 0x0f <> 0 then corrupt "final sequence declares a match";
        finished := true
      end
      else begin
        let o1 = read_byte () in
        let o2 = read_byte () in
        let offset = o1 lor (o2 lsl 8) in
        if offset = 0 || offset > !op then
          corrupt "bad match offset %d at output %d" offset !op;
        let match_len = min_match + read_length (token land 0x0f) in
        if !op + match_len > raw_len then corrupt "match overruns output";
        (* Byte-wise copy: overlapping matches (offset < len) are valid. *)
        let from = !op - offset in
        for k = 0 to match_len - 1 do
          Bytes.unsafe_set out (!op + k) (Bytes.unsafe_get out (from + k))
        done;
        op := !op + match_len
      end
    done;
    if !op <> raw_len then
      corrupt "block decoded to %d bytes, expected %d" !op raw_len;
    Bytes.unsafe_to_string out
  end
