(** Byte-oriented LZ77 block compression.

    LittleTable compresses tablet blocks and footers with a fast,
    low-ratio codec — the paper uses LZO1X-1 (§3.5). This module is a
    from-scratch equivalent in the same family: a single-pass greedy LZ77
    with a hash table over 4-byte windows, 16-bit match offsets, and a
    token format in the LZ4 style (high nibble literal length, low nibble
    match length, 255-extension bytes).

    Properties the engine relies on:
    - exact round trip: [decompress (compress s) = s] for every [s];
    - incompressible input (e.g. the xorshift benchmark data) expands by
      at most ~0.5 % plus a small constant;
    - compression never reads outside the input and decompression never
      writes outside the declared output size, raising {!Corrupt} on any
      malformed block. *)

exception Corrupt of string

(** [compress s] is the compressed representation of [s]. The empty
    string compresses to the empty string. *)
val compress : string -> string

(** [decompress ~raw_len s] inflates [s], which must decode to exactly
    [raw_len] bytes.
    @raise Corrupt if [s] is not a valid block or decodes to a different
    length. *)
val decompress : raw_len:int -> string -> string

(** [max_compressed_len n] is an upper bound on [String.length (compress s)]
    for any [s] with [String.length s = n]. *)
val max_compressed_len : int -> int
