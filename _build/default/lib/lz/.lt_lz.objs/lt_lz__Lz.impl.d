lib/lz/lz.ml: Array Buffer Bytes Char Format String
