lib/lz/lz.mli:
