lib/net/protocol.mli: Buffer Littletable Lt_util Query Schema Stats Unix Value
