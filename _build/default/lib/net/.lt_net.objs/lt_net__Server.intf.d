lib/net/server.mli: Littletable
