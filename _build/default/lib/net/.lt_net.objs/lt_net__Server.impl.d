lib/net/server.ml: Condition Db List Littletable Logs Lt_util Lt_vfs Mutex Printexc Printf Protocol Schema Table Thread Unix
