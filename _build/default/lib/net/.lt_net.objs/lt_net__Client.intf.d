lib/net/client.mli: Littletable Lt_sql Query Schema Stats Value
