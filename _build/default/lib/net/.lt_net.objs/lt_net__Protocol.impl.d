lib/net/protocol.ml: Array Binio Buffer Bytes Format List Littletable Lt_util Query Schema Stats String Unix Value
