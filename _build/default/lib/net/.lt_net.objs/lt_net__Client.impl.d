lib/net/client.ml: Array Fun Hashtbl List Littletable Lt_sql Lt_util Mutex Option Printf Protocol Query Schema Unix Value
