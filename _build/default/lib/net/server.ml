open Littletable

let log = Logs.Src.create "lt.server" ~doc:"LittleTable server"

module Log = (val Logs.src_log log)

type t = {
  db : Db.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  mutable running : bool;
  mutable threads : (Thread.t * Unix.file_descr) list;
  accept_thread : Thread.t option ref;
  maint_thread : Thread.t option ref;
  mutex : Mutex.t;
  stopped : Condition.t;
}

let port t = t.bound_port

let handle_request db req =
  let open Protocol in
  match req with
  | Hello v ->
      if v <> Protocol.version then
        Error (Printf.sprintf "unsupported protocol version %d" v)
      else Hello_ok Protocol.version
  | Ping -> Pong
  | List_tables -> Tables (Db.table_names db)
  | Get_table name -> (
      match Db.find_table db name with
      | Some tbl -> Table_info { schema = Table.schema tbl; ttl = Table.ttl tbl }
      | None -> Error (Printf.sprintf "no such table %S" name))
  | Create_table { table; schema; ttl } -> (
      match Db.create_table db table schema ~ttl with
      | (_ : Table.t) -> Ok
      | exception Invalid_argument msg -> Error msg)
  | Drop_table name -> (
      match Db.drop_table db name with
      | () -> Ok
      | exception Not_found -> Error (Printf.sprintf "no such table %S" name))
  | Insert { table; rows } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.insert tbl rows with
          | () -> Insert_ok (List.length rows)
          | exception Table.Duplicate_key k ->
              Error (Printf.sprintf "duplicate key (%s)" k)
          | exception Schema.Invalid msg -> Error msg))
  | Query { table; query } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl ->
          let r = Table.query tbl query in
          Row_batch
            {
              rows = r.Table.rows;
              more_available = r.Table.more_available;
              scanned = r.Table.scanned;
            })
  | Latest { table; prefix } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.latest tbl prefix with
          | row -> Latest_row row
          | exception Schema.Invalid msg -> Error msg))
  | Flush_before { table; ts } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl ->
          Table.flush_before tbl ~ts;
          Ok)
  | Get_stats table -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> Stats_resp (Table.stats tbl))
  | Delete_prefix { table; prefix } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.delete_prefix tbl prefix with
          | n -> Deleted n
          | exception Schema.Invalid msg -> Error msg))
  | Add_column { table; column } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.add_column tbl column with
          | () -> Ok
          | exception Schema.Invalid msg -> Error msg))
  | Widen_column { table; column } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.widen_column tbl column with
          | () -> Ok
          | exception Schema.Invalid msg -> Error msg))
  | Set_ttl { table; ttl } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl ->
          Table.set_ttl tbl ttl;
          Ok)

let client_loop t fd =
  let finished = ref false in
  while t.running && not !finished do
    match Protocol.recv_request fd with
    | req ->
        let resp =
          try handle_request t.db req with
          | Protocol.Protocol_error msg | Lt_util.Binio.Corrupt msg ->
              Protocol.Error msg
          | Lt_vfs.Vfs.Io_error msg -> Protocol.Error ("io error: " ^ msg)
          | Invalid_argument msg -> Protocol.Error msg
        in
        (try Protocol.send_response fd resp
         with Unix.Unix_error _ -> finished := true)
    | exception (End_of_file | Unix.Unix_error _) -> finished := true
    | exception Protocol.Protocol_error msg ->
        Log.warn (fun m -> m "malformed frame: %s" msg);
        finished := true
  done;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  (* Poll with a timeout rather than blocking in accept: a thread stuck
     in accept(2) is not reliably woken when another thread closes the
     listening socket, so [stop] could hang on the join. *)
  while t.running do
    match Unix.select [ t.listen_fd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ ->
            Mutex.lock t.mutex;
            t.threads <- (Thread.create (client_loop t) fd, fd) :: t.threads;
            Mutex.unlock t.mutex
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let maintenance_loop t period =
  while t.running do
    (* Sleep in small slices so [stop] is prompt. *)
    let slept = ref 0.0 in
    while t.running && !slept < period do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done;
    if t.running then
      try Db.maintenance t.db
      with exn ->
        Log.err (fun m -> m "maintenance failed: %s" (Printexc.to_string exn))
  done

let start ?(maintenance_period_s = 1.0) ~db ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let t =
    {
      db;
      listen_fd = fd;
      bound_port;
      running = true;
      threads = [];
      accept_thread = ref None;
      maint_thread = ref None;
      mutex = Mutex.create ();
      stopped = Condition.create ();
    }
  in
  t.accept_thread := Some (Thread.create accept_loop t);
  if maintenance_period_s > 0.0 then
    t.maint_thread := Some (Thread.create (fun () -> maintenance_loop t maintenance_period_s) ());
  Log.info (fun m -> m "listening on 127.0.0.1:%d" bound_port);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match !(t.accept_thread) with Some th -> Thread.join th | None -> ());
    (match !(t.maint_thread) with Some th -> Thread.join th | None -> ());
    let threads =
      Mutex.lock t.mutex;
      let ths = t.threads in
      t.threads <- [];
      Mutex.unlock t.mutex;
      ths
    in
    (* Unblock handlers waiting in recv, then join them. *)
    List.iter
      (fun (_, fd) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      threads;
    List.iter (fun (th, _) -> Thread.join th) threads;
    Db.flush_all t.db;
    Mutex.lock t.mutex;
    Condition.broadcast t.stopped;
    Mutex.unlock t.mutex
  end

let wait t =
  Mutex.lock t.mutex;
  while t.running do
    Condition.wait t.stopped t.mutex
  done;
  Mutex.unlock t.mutex
