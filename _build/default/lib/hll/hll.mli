(** HyperLogLog cardinality sketches.

    Several Dashboard features "track clients using HyperLogLog, a
    fixed-size, probabilistic representation of a set that permits unions
    and provides cardinality estimates with bounded relative error"
    (§4.1.2). Aggregators store these sketches as blob values in
    LittleTable; this module is that substrate.

    Flajolet–Fusy–Gandouet–Meunier estimator with the standard small-range
    (linear counting) and large-range corrections. Relative standard error
    is about [1.04 / sqrt (2^precision)]. *)

type t

(** [create ~precision ()] with [4 <= precision <= 16]; [2^precision]
    one-byte registers. Default precision 12 (4096 B, ~1.6 % error). *)
val create : ?precision:int -> unit -> t

val copy : t -> t

(** Add an element, identified by its string representation. *)
val add : t -> string -> unit

(** Estimated number of distinct elements added. *)
val estimate : t -> float

(** In-place union: afterwards [a] summarizes both sets. The two sketches
    must share a precision. @raise Invalid_argument otherwise. *)
val merge_into : t -> t -> unit

val precision : t -> int

(** {1 Serialization} (sketches are stored as LittleTable blob values) *)

val serialize : t -> string

val deserialize : string -> t
(** @raise Lt_util.Binio.Corrupt on malformed input. *)
