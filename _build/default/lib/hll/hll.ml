open Lt_util

type t = { precision : int; registers : Bytes.t }

let create ?(precision = 12) () =
  if precision < 4 || precision > 16 then
    invalid_arg "Hll.create: precision must be in [4, 16]";
  { precision; registers = Bytes.make (1 lsl precision) '\000' }

let copy t = { t with registers = Bytes.copy t.registers }

let precision t = t.precision

(* FNV-1a with a murmur-style fmix64 finalizer: plain FNV diffuses its
   low bits poorly, which skews the leading-zero statistic HLL relies
   on. *)
let fmix64 h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let hash s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  fmix64 !h

(* Number of leading zeros of [x] within its low [width] bits, plus one. *)
let rho x width =
  let rec go i =
    if i >= width then width + 1
    else if Int64.logand (Int64.shift_right_logical x (width - 1 - i)) 1L = 1L
    then i + 1
    else go (i + 1)
  in
  go 0

let add t s =
  let h = hash s in
  let m = 1 lsl t.precision in
  let idx = Int64.to_int (Int64.logand h (Int64.of_int (m - 1))) in
  let rest = Int64.shift_right_logical h t.precision in
  let r = rho rest (64 - t.precision) in
  if r > Char.code (Bytes.get t.registers idx) then
    Bytes.set t.registers idx (Char.chr r)

let alpha m =
  match m with
  | 16 -> 0.673
  | 32 -> 0.697
  | 64 -> 0.709
  | _ -> 0.7213 /. (1.0 +. (1.079 /. float_of_int m))

let estimate t =
  let m = 1 lsl t.precision in
  let sum = ref 0.0 and zeros = ref 0 in
  for i = 0 to m - 1 do
    let r = Char.code (Bytes.get t.registers i) in
    if r = 0 then incr zeros;
    sum := !sum +. (1.0 /. float_of_int (1 lsl r))
  done;
  let mf = float_of_int m in
  let raw = alpha m *. mf *. mf /. !sum in
  if raw <= 2.5 *. mf && !zeros > 0 then
    (* Small-range correction: linear counting. *)
    mf *. log (mf /. float_of_int !zeros)
  else begin
    let two_64 = 1.8446744073709552e19 in
    if raw > two_64 /. 30.0 then -.two_64 *. log (1.0 -. (raw /. two_64))
    else raw
  end

let merge_into a b =
  if a.precision <> b.precision then
    invalid_arg "Hll.merge_into: precision mismatch";
  for i = 0 to Bytes.length a.registers - 1 do
    if Bytes.get b.registers i > Bytes.get a.registers i then
      Bytes.set a.registers i (Bytes.get b.registers i)
  done

let serialize t =
  let b = Buffer.create (Bytes.length t.registers + 4) in
  Binio.put_u8 b t.precision;
  Buffer.add_bytes b t.registers;
  Buffer.contents b

let deserialize s =
  let cur = Binio.cursor s in
  let precision = Binio.get_u8 cur in
  if precision < 4 || precision > 16 then
    raise (Binio.Corrupt "hll: bad precision");
  let regs = Binio.get_bytes cur (1 lsl precision) in
  Binio.expect_end cur;
  { precision; registers = Bytes.of_string regs }
