lib/hll/hll.mli:
