lib/hll/hll.ml: Binio Buffer Bytes Char Int64 Lt_util String
