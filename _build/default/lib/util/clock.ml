type micros = int64

type t = System | Manual of micros ref

let system = System

let manual ?(start = 0L) () = Manual (ref start)

let of_float_s s = Int64.of_float (s *. 1e6)

let to_float_s m = Int64.to_float m /. 1e6

let now = function
  | System -> of_float_s (Unix.gettimeofday ())
  | Manual r -> !r

let advance t d =
  match t with
  | System -> invalid_arg "Clock.advance: system clock"
  | Manual r ->
      if d < 0L then invalid_arg "Clock.advance: negative";
      r := Int64.add !r d

let set t v =
  match t with
  | System -> invalid_arg "Clock.set: system clock"
  | Manual r ->
      if v < !r then invalid_arg "Clock.set: time must be monotone";
      r := v

let usec n = Int64.of_int n

let msec n = Int64.of_int (n * 1000)

let sec n = Int64.of_int (n * 1_000_000)

let minute = sec 60

let hour = sec 3600

let day = sec 86400

let week = Int64.mul 7L day
