type t = int32

(* Reflected CRC-32C, polynomial 0x1EDC6F41 (reversed: 0x82F63B78).
   The hot loop works on native ints: OCaml's int32 is boxed, and a
   per-byte boxed operation would dominate the flush path. *)
let poly = 0x82F63B78

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           let lsb = !c land 1 in
           c := !c lsr 1;
           if lsb <> 0 then c := !c lxor poly
         done;
         !c))

let empty = 0l

let mask32 = 0xFFFFFFFF

let update crc s off len =
  let table = Lazy.force table in
  let c = ref (Int32.to_int (Int32.lognot crc) land mask32) in
  for i = off to off + len - 1 do
    let idx = (!c lxor Char.code (String.unsafe_get s i)) land 0xff in
    c := (!c lsr 8) lxor Array.unsafe_get table idx
  done;
  Int32.lognot (Int32.of_int !c)

let string ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32c.string: bad substring";
  update empty s off len

let bytes ?off ?len b = string ?off ?len (Bytes.unsafe_to_string b)
