type t = { sorted : float array }

let of_samples xs =
  let arr = Array.of_list xs in
  Array.sort compare arr;
  { sorted = arr }

let count t = Array.length t.sorted

let check_nonempty t =
  if Array.length t.sorted = 0 then invalid_arg "Cdf: empty"

let quantile t q =
  check_nonempty t;
  if q < 0.0 || q > 1.0 then invalid_arg "Cdf.quantile: out of range";
  let n = Array.length t.sorted in
  if n = 1 then t.sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    t.sorted.(lo) +. (frac *. (t.sorted.(hi) -. t.sorted.(lo)))
  end

let min t =
  check_nonempty t;
  t.sorted.(0)

let max t =
  check_nonempty t;
  t.sorted.(Array.length t.sorted - 1)

let mean t =
  check_nonempty t;
  Array.fold_left ( +. ) 0.0 t.sorted /. float_of_int (Array.length t.sorted)

let fraction_below t x =
  let n = Array.length t.sorted in
  if n = 0 then 0.0
  else begin
    (* Binary search for the number of samples <= x. *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.sorted.(mid) <= x then lo := mid + 1 else hi := mid
    done;
    float_of_int !lo /. float_of_int n
  end

let series t ~points =
  check_nonempty t;
  let points = Stdlib.max 2 points in
  List.init points (fun i ->
      let q = float_of_int i /. float_of_int (points - 1) in
      (quantile t q, q))

let pp_series ~label ~unit ppf t =
  Format.fprintf ppf "@[<v># CDF: %s@," label;
  Format.fprintf ppf "# %-16s cumulative_fraction@," unit;
  List.iter
    (fun (v, q) -> Format.fprintf ppf "%-18.6g %.3f@," v q)
    (series t ~points:21);
  Format.fprintf ppf "@]"
