(** Deterministic xorshift64* pseudorandom number generator.

    The paper's microbenchmarks generate input data "using a xorshift
    pseudorandom number generator" (§5.1.1) specifically so that the data is
    incompressible; we use the same family for benchmark inputs, simulated
    devices, and randomized tests. *)

type t

(** [create seed] makes a generator; [seed] must be non-zero (0 is mapped to
    a fixed non-zero constant). *)
val create : int64 -> t

val copy : t -> t

(** Raw next value, uniform over all 64-bit patterns. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)]; [bound > 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** [bytes t n] is [n] incompressible random bytes. *)
val bytes : t -> int -> string

(** Exponentially distributed float with the given mean. *)
val exponential : t -> mean:float -> float

(** Log-normal sample given the mean and sigma of the underlying normal. *)
val log_normal : t -> mu:float -> sigma:float -> float
