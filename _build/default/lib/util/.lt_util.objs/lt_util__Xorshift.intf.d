lib/util/xorshift.mli:
