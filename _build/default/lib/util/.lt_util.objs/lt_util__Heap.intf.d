lib/util/heap.mli:
