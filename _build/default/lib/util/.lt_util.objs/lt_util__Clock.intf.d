lib/util/clock.mli:
