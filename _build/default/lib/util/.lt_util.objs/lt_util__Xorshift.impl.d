lib/util/xorshift.ml: Bytes Char Float Int64
