lib/util/binio.ml: Buffer Char Format Int32 Int64 String
