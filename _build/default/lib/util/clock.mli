(** Time source abstraction.

    All engine timestamps are [int64] microseconds since the Unix epoch.
    Components take a {!t} rather than calling [Unix.gettimeofday] directly
    so that tests, the device simulator, and the disk-model benchmarks can
    drive time deterministically. *)

type micros = int64

type t

(** Wall-clock time from [Unix.gettimeofday]. *)
val system : t

(** A manually advanced clock, for tests and simulations. *)
val manual : ?start:micros -> unit -> t

val now : t -> micros

(** [advance t d] moves a manual clock forward by [d] microseconds.
    @raise Invalid_argument on the system clock or negative [d]. *)
val advance : t -> micros -> unit

(** [set t v] jumps a manual clock to [v] (monotone: [v >= now t]). *)
val set : t -> micros -> unit

(** {1 Unit helpers} *)

val usec : int -> micros
val msec : int -> micros
val sec : int -> micros
val minute : micros
val hour : micros
val day : micros
val week : micros

val of_float_s : float -> micros
val to_float_s : micros -> float
