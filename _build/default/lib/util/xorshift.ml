type t = { mutable state : int64 }

let create seed =
  { state = (if seed = 0L then 0x9E3779B97F4A7C15L else seed) }

let copy t = { state = t.state }

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = ref (next t) in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.unsafe_set b (!i + j) (Char.unsafe_chr (Int64.to_int !v land 0xff));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + k
  done;
  Bytes.unsafe_to_string b

let exponential t ~mean =
  let u = 1.0 -. float t in
  -. mean *. log u

(* Box-Muller. *)
let normal t =
  let u1 = 1.0 -. float t and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let log_normal t ~mu ~sigma = exp (mu +. (sigma *. normal t))
