(** A mutable binary min-heap, used for the k-way merge of tablet cursors. *)

type 'a t

(** [create ~cmp] makes an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

(** Smallest element, or [None] when empty. Does not remove. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element. @raise Not_found when empty. *)
val pop : 'a t -> 'a

(** [replace_min t v] is [pop] followed by [add v] but with a single
    sift — the hot operation of a merge cursor. @raise Not_found when empty. *)
val replace_min : 'a t -> 'a -> unit
