(** CRC-32C (Castagnoli), the checksum used to protect tablet blocks and
    footers on disk. Table-driven, byte-at-a-time implementation. *)

type t = int32

(** [string ?off ?len s] is the CRC-32C of the given substring of [s]
    (defaults: the whole string). *)
val string : ?off:int -> ?len:int -> string -> t

val bytes : ?off:int -> ?len:int -> bytes -> t

(** Incremental interface: [update crc s off len] extends [crc]. Start from
    {!empty}. *)
val empty : t

val update : t -> string -> int -> int -> t
