type 'a t = { cmp : 'a -> 'a -> int; mutable arr : 'a array; mutable len : int }

let create ~cmp = { cmp; arr = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t v =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    let ncap = max 8 (cap * 2) in
    let narr = Array.make ncap v in
    Array.blit t.arr 0 narr 0 t.len;
    t.arr <- narr
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.arr.(i) t.arr.(parent) < 0 then begin
      let tmp = t.arr.(i) in
      t.arr.(i) <- t.arr.(parent);
      t.arr.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp t.arr.(l) t.arr.(!smallest) < 0 then smallest := l;
  if r < t.len && t.cmp t.arr.(r) t.arr.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.arr.(i) in
    t.arr.(i) <- t.arr.(!smallest);
    t.arr.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t v =
  grow t v;
  t.arr.(t.len) <- v;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.arr.(0)

let pop t =
  if t.len = 0 then raise Not_found;
  let top = t.arr.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.arr.(0) <- t.arr.(t.len);
    sift_down t 0
  end;
  top

let replace_min t v =
  if t.len = 0 then raise Not_found;
  t.arr.(0) <- v;
  sift_down t 0
