(** Empirical cumulative distribution functions, used by the production-
    metrics benchmarks (Figures 7–10) to report the same CDF series the
    paper plots. *)

type t

(** Build from raw samples. *)
val of_samples : float list -> t

val count : t -> int

(** [quantile t q] with [0 <= q <= 1]; linear interpolation between order
    statistics. @raise Invalid_argument on an empty CDF or q out of range. *)
val quantile : t -> float -> float

val min : t -> float
val max : t -> float
val mean : t -> float

(** [fraction_below t x] is the empirical P(X <= x). *)
val fraction_below : t -> float -> float

(** [series t ~points] samples the CDF at [points] evenly spaced quantiles,
    returning (value, cumulative fraction) pairs suitable for printing a
    plot series. *)
val series : t -> points:int -> (float * float) list

(** Render [series] rows as aligned text, one "value fraction" row per
    line, with a label header. *)
val pp_series : label:string -> unit:string -> Format.formatter -> t -> unit
