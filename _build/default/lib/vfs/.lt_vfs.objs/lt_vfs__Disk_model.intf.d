lib/vfs/disk_model.mli:
