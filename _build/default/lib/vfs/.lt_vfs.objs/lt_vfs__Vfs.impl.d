lib/vfs/vfs.ml: Array Bytes Disk_model Filename Format Fun Hashtbl List Mutex String Sys Unix
