lib/vfs/sync.ml: Filename Fun List String Vfs
