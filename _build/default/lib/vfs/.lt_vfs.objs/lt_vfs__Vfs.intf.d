lib/vfs/vfs.mli: Disk_model
