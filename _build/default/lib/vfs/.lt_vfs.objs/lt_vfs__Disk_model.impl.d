lib/vfs/disk_model.ml: Fun Hashtbl Mutex Option Queue
