lib/vfs/sync.mli: Vfs
