(** Virtual filesystem.

    Every byte the storage engine reads or writes goes through this
    interface, which exists for three reasons:

    - the disk-model benchmarks wrap a filesystem with {!with_model} so the
      cost model sees the engine's exact I/O pattern;
    - tests run against {!memory}, which supports {!crash}: all data not
      made durable by [fsync] (or an atomic [rename]) disappears, letting
      property tests validate the paper's prefix-durability guarantee;
    - {!faulty} injects I/O errors to exercise recovery paths.

    Offsets and sizes are [int]: a 63-bit int comfortably addresses any
    tablet. All operations raise {!Io_error} on failure. *)

exception Io_error of string

type t

(** An open file handle. Handles are safe to share across threads. *)
type file

(** {1 Implementations} *)

(** Direct [Unix] filesystem access. *)
val real : unit -> t

(** An in-memory filesystem with durability tracking. *)
val memory : unit -> t

(** [with_model model inner] forwards everything to [inner] and notifies
    [model] of each operation. *)
val with_model : Disk_model.t -> t -> t

(** [faulty ~should_fail inner] raises [Io_error] whenever
    [should_fail ~op ~path] is true; [op] is the operation name
    (["append"], ["fsync"], ["rename"], ...). *)
val faulty : should_fail:(op:string -> path:string -> bool) -> t -> t

(** {1 Operations} *)

val open_read : t -> string -> file
val create : t -> string -> file

(** [pread t f ~off ~len] reads exactly [len] bytes at [off].
    @raise Io_error if the range lies outside the file. *)
val pread : t -> file -> off:int -> len:int -> string

val append : t -> file -> string -> unit
val file_size : t -> file -> int
val fsync : t -> file -> unit
val close : t -> file -> unit

(** Atomic replace; the destination is durable with its pre-rename
    content after a crash. *)
val rename : t -> src:string -> dst:string -> unit

val delete : t -> string -> unit
val exists : t -> string -> bool

(** Names (not paths) of directory entries, sorted. *)
val readdir : t -> string -> string list

val mkdir_p : t -> string -> unit

(** Read a whole file. *)
val read_all : t -> string -> string

(** {1 Crash simulation} (memory filesystem only) *)

(** Simulate a machine crash: every file reverts to its last durable
    content. @raise Invalid_argument on other implementations. *)
val crash : t -> unit
