(** Differential directory synchronization — the continuous-archival
    mechanism of §3.5:

    "To implement continuous archival of LittleTable data, every 10
    minutes Dashboard runs rsync from shard to spare repeatedly until a
    sync completes without copying any files, indicating that shard and
    spare have identical contents. This approach works because an rsync
    that copies no files is quick relative to the rate of new tablets
    being written to disk."

    {!pass} is one rsync: it copies every file that is missing or
    differs (by size, then content) from source to destination and
    deletes destination files absent from the source, returning how many
    files changed. {!until_stable} repeats passes until one copies
    nothing. Within a pass, tablet files are copied before descriptors,
    so a descriptor never lands on the spare ahead of a tablet it
    references; the repeat-until-stable loop then handles files that
    changed mid-pass, exactly as in the paper.

    Works across any two {!Vfs.t} implementations (e.g. a live in-memory
    shard to a second in-memory "spare", or a real directory tree). *)

type stats = { copied : int; deleted : int; bytes : int }

(** [pass ~src ~src_dir ~dst ~dst_dir ()] performs one differential sync
    of the directory tree rooted at [src_dir]. *)
val pass :
  src:Vfs.t -> src_dir:string -> dst:Vfs.t -> dst_dir:string -> unit -> stats

(** Repeat {!pass} until a pass copies and deletes nothing (or
    [max_passes], default 10, is hit); returns the cumulative stats and
    whether stability was reached. *)
val until_stable :
  ?max_passes:int ->
  src:Vfs.t ->
  src_dir:string ->
  dst:Vfs.t ->
  dst_dir:string ->
  unit ->
  stats * bool
