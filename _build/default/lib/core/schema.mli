(** Table schemas.

    "The schema of a table in LittleTable consists of a set of columns,
    each of which has a name, type, and default value. An ordered subset
    of these columns form the table's primary key. The final column in
    this subset must be of type timestamp and named 'ts'." (§3.1)

    Supported evolutions (§3.5): appending columns, widening int32
    columns to int64, and changing the TTL (the TTL lives in the table
    descriptor, not here). Each evolution bumps {!version}; tablet footers
    record the schema they were written with and readers translate rows
    forward with {!translate_row}. *)

type column = { name : string; ctype : Value.ctype; default : Value.t }

type t

exception Invalid of string

(** [create ~columns ~pkey] validates and builds a schema.
    @raise Invalid when: [columns] is empty or has duplicate names; a
    default does not match its column type; [pkey] is empty, names an
    unknown or duplicate column, or does not end with a [timestamp]
    column named ["ts"]. *)
val create : columns:column list -> pkey:string list -> t

val columns : t -> column array

(** Indices (into {!columns}) of the primary-key columns, in key order. *)
val pkey : t -> int array

(** Index of the row-timestamp column (the last primary-key column). *)
val ts_index : t -> int

val version : t -> int

val column_count : t -> int

val find_column : t -> string -> int option

val pkey_names : t -> string list

(** [is_pkey t i] holds when column [i] participates in the primary key. *)
val is_pkey : t -> int -> bool

(** [validate_row t row] checks arity and per-column types.
    @raise Invalid otherwise. *)
val validate_row : t -> Value.t array -> unit

(** Timestamp of a validated row (microseconds). *)
val row_ts : t -> Value.t array -> int64

(** {1 Evolution} *)

(** [add_column t col] appends a column (never to the key).
    @raise Invalid on a duplicate name or type/default mismatch. *)
val add_column : t -> column -> t

(** [widen_column t name] turns an int32 column into int64.
    @raise Invalid if [name] is unknown or not int32. *)
val widen_column : t -> string -> t

(** [translate_row ~from ~into row] rewrites a row written under schema
    [from] for reading under [into]: widened cells are promoted and
    missing columns take [into]'s defaults. Assumes [into] evolved from
    [from] by the supported operations. @raise Invalid otherwise. *)
val translate_row : from:t -> into:t -> Value.t array -> Value.t array

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Serialization} (descriptor files and tablet footers) *)

val encode : Buffer.t -> t -> unit

val decode : Lt_util.Binio.cursor -> t

(** Single-column codec (used by the wire protocol's ALTER message). *)
val encode_column : Buffer.t -> column -> unit

val decode_column : Lt_util.Binio.cursor -> column
