open Lt_util

type class_ = Four_hour | Day | Week

let class_length = function
  | Four_hour -> Int64.mul 4L Clock.hour
  | Day -> Clock.day
  | Week -> Clock.week

let class_name = function
  | Four_hour -> "4h"
  | Day -> "day"
  | Week -> "week"

type t = { start : int64; cls : class_ }

let length t = class_length t.cls

let stop t = Int64.add t.start (length t)

let align v ~unit_len =
  if v >= 0L then Int64.sub v (Int64.rem v unit_len)
  else begin
    (* Round toward negative infinity for pre-epoch timestamps. *)
    let r = Int64.rem v unit_len in
    if r = 0L then v else Int64.sub v (Int64.add r unit_len)
  end

let bin ~now ts =
  let day_start = align now ~unit_len:Clock.day in
  let week_start = align now ~unit_len:Clock.week in
  if ts >= day_start then
    { start = align ts ~unit_len:(class_length Four_hour); cls = Four_hour }
  else if ts >= week_start then
    { start = align ts ~unit_len:Clock.day; cls = Day }
  else { start = align ts ~unit_len:Clock.week; cls = Week }

let classify ~now ts = (bin ~now ts).cls

let pp ppf t =
  Format.fprintf ppf "%s@%Ld" (class_name t.cls) t.start
