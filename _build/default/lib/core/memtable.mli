(** In-memory (filling) tablets.

    A memtable accumulates freshly inserted rows for one time period,
    ordered by encoded primary key in a persistent AVL tree. When it
    reaches the configured size or age, the table freezes it and flushes
    it to disk as an on-disk tablet (§3.2). Because the tree is
    persistent, {!snapshot} hands queries an immutable view for free. *)

type t

(** [create ~id ~period ~created_at ()] — [id] becomes the tablet id of
    the on-disk tablet this memtable flushes into; [created_at] starts the
    age-based flush timer (§3.4.1: at most 10 minutes of data at risk). *)
val create : id:int -> period:Period.t -> created_at:int64 -> t

val id : t -> int

val period : t -> Period.t

val created_at : t -> int64

(** [insert t ~key ~ts row] adds a row under its encoded key.
    [`Duplicate] when the key is already present. *)
val insert : t -> key:string -> ts:int64 -> Value.t array -> [ `Ok | `Duplicate ]

val mem : t -> string -> bool

val row_count : t -> int

(** Approximate bytes of row data held (encoded key + value sizes). *)
val byte_size : t -> int

(** Row-timestamp range actually present ([None] when empty). *)
val ts_range : t -> (int64 * int64) option

val min_key : t -> string option
val max_key : t -> string option

(** An immutable snapshot of the current contents. *)
val snapshot : t -> Value.t array Avl.t

(** Record encoded bytes contributed by a row (called by the table with
    [Row_codec.stored_size]). Separated from {!insert} so the memtable
    does not need the schema. *)
val add_bytes : t -> int -> unit
