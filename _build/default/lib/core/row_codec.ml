open Lt_util

let encode_value schema row =
  let buf = Buffer.create 32 in
  Array.iteri
    (fun i v -> if not (Schema.is_pkey schema i) then Value.encode buf v)
    row;
  Buffer.contents buf

let decode schema ~key ~value =
  let cols = Schema.columns schema in
  let row = Array.make (Array.length cols) (Value.Int32 0l) in
  let kvs = Key_codec.decode_key schema key in
  Array.iteri (fun ki col -> row.(col) <- kvs.(ki)) (Schema.pkey schema);
  let cur = Binio.cursor value in
  Array.iteri
    (fun i col ->
      if not (Schema.is_pkey schema i) then
        row.(i) <- Value.decode col.Schema.ctype cur)
    cols;
  Binio.expect_end cur;
  row

let decode_translated ~from ~into ~key ~value =
  if Schema.version from = Schema.version into then decode into ~key ~value
  else begin
    let row = decode from ~key ~value in
    Schema.translate_row ~from ~into row
  end

let stored_size schema row =
  String.length (Key_codec.encode_key schema row)
  + String.length (encode_value schema row)
