type t = {
  id : int;
  period : Period.t;
  created_at : int64;
  mutable tree : Value.t array Avl.t;
  mutable bytes : int;
  mutable min_ts : int64;
  mutable max_ts : int64;
}

let create ~id ~period ~created_at =
  {
    id;
    period;
    created_at;
    tree = Avl.empty;
    bytes = 0;
    min_ts = Int64.max_int;
    max_ts = Int64.min_int;
  }

let id t = t.id

let period t = t.period

let created_at t = t.created_at

let insert t ~key ~ts row =
  match Avl.insert key row t.tree with
  | `Duplicate -> `Duplicate
  | `Ok tree ->
      t.tree <- tree;
      if ts < t.min_ts then t.min_ts <- ts;
      if ts > t.max_ts then t.max_ts <- ts;
      `Ok

let mem t key = Avl.mem key t.tree

let row_count t = Avl.length t.tree

let byte_size t = t.bytes

let ts_range t =
  if Avl.is_empty t.tree then None else Some (t.min_ts, t.max_ts)

let min_key t = Avl.min_key t.tree

let max_key t = Avl.max_key t.tree

let snapshot t = t.tree

let add_bytes t n = t.bytes <- t.bytes + n
