(** Per-table operation counters.

    These back the production-metrics figures: rows scanned vs rows
    returned (Figure 9, §5.2.4), insert/query rates (§5.2.3), flush and
    merge activity, and write amplification (§5.1.3). Counters are
    updated under the owning table's locks; reads are monotonic
    snapshots. *)

type t

val create : unit -> t

type snapshot = {
  rows_inserted : int;
  insert_batches : int;
  rows_returned : int;
  rows_scanned : int;
  queries : int;
  flushes : int;
  flushed_bytes : int;
  merges : int;
  merged_bytes_in : int;
  merged_bytes_out : int;
  tablets_expired : int;
  bytes_written : int;  (** flushes + merge output *)
}

val read : t -> snapshot

(** Rows scanned per row returned; 1.0 when nothing returned yet. *)
val scan_ratio : snapshot -> float

(** Bytes written to disk per byte of first-time flush; >= 1. *)
val write_amplification : snapshot -> float

val note_insert : t -> rows:int -> unit
val note_query : t -> scanned:int -> returned:int -> unit
val note_flush : t -> bytes:int -> unit
val note_merge : t -> bytes_in:int -> bytes_out:int -> unit
val note_expired : t -> tablets:int -> unit

val pp : Format.formatter -> snapshot -> unit
