module Int_set = Set.Make (Int)

(* deps.(a) = set of tablets that must flush before [a] (reverse edges). *)
type t = { deps : (int, Int_set.t) Hashtbl.t }

let create () = { deps = Hashtbl.create 16 }

let add_edge t ~before ~after =
  if before <> after then begin
    let cur =
      Option.value ~default:Int_set.empty (Hashtbl.find_opt t.deps after)
    in
    Hashtbl.replace t.deps after (Int_set.add before cur)
  end

let closure t id =
  let seen = ref (Int_set.singleton id) in
  let rec visit id =
    match Hashtbl.find_opt t.deps id with
    | None -> ()
    | Some preds ->
        Int_set.iter
          (fun p ->
            if not (Int_set.mem p !seen) then begin
              seen := Int_set.add p !seen;
              visit p
            end)
          preds
  in
  visit id;
  Int_set.elements !seen

let remove t ids =
  let doomed = Int_set.of_list ids in
  Int_set.iter (fun id -> Hashtbl.remove t.deps id) doomed;
  let updates =
    Hashtbl.fold
      (fun id preds acc ->
        let pruned = Int_set.diff preds doomed in
        if Int_set.equal pruned preds then acc else (id, pruned) :: acc)
      t.deps []
  in
  List.iter
    (fun (id, preds) ->
      if Int_set.is_empty preds then Hashtbl.remove t.deps id
      else Hashtbl.replace t.deps id preds)
    updates

let node_count t =
  let nodes = ref Int_set.empty in
  Hashtbl.iter
    (fun id preds -> nodes := Int_set.union (Int_set.add id !nodes) preds)
    t.deps;
  Int_set.cardinal !nodes
