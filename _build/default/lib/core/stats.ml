type t = {
  mutable rows_inserted : int;
  mutable insert_batches : int;
  mutable rows_returned : int;
  mutable rows_scanned : int;
  mutable queries : int;
  mutable flushes : int;
  mutable flushed_bytes : int;
  mutable merges : int;
  mutable merged_bytes_in : int;
  mutable merged_bytes_out : int;
  mutable tablets_expired : int;
}

type snapshot = {
  rows_inserted : int;
  insert_batches : int;
  rows_returned : int;
  rows_scanned : int;
  queries : int;
  flushes : int;
  flushed_bytes : int;
  merges : int;
  merged_bytes_in : int;
  merged_bytes_out : int;
  tablets_expired : int;
  bytes_written : int;
}

let create () =
  {
    rows_inserted = 0;
    insert_batches = 0;
    rows_returned = 0;
    rows_scanned = 0;
    queries = 0;
    flushes = 0;
    flushed_bytes = 0;
    merges = 0;
    merged_bytes_in = 0;
    merged_bytes_out = 0;
    tablets_expired = 0;
  }

let read (t : t) =
  {
    rows_inserted = t.rows_inserted;
    insert_batches = t.insert_batches;
    rows_returned = t.rows_returned;
    rows_scanned = t.rows_scanned;
    queries = t.queries;
    flushes = t.flushes;
    flushed_bytes = t.flushed_bytes;
    merges = t.merges;
    merged_bytes_in = t.merged_bytes_in;
    merged_bytes_out = t.merged_bytes_out;
    tablets_expired = t.tablets_expired;
    bytes_written = t.flushed_bytes + t.merged_bytes_out;
  }

let scan_ratio s =
  if s.rows_returned = 0 then 1.0
  else float_of_int s.rows_scanned /. float_of_int s.rows_returned

let write_amplification s =
  if s.flushed_bytes = 0 then 1.0
  else float_of_int s.bytes_written /. float_of_int s.flushed_bytes

let note_insert (t : t) ~rows =
  t.rows_inserted <- t.rows_inserted + rows;
  t.insert_batches <- t.insert_batches + 1

let note_query (t : t) ~scanned ~returned =
  t.queries <- t.queries + 1;
  t.rows_scanned <- t.rows_scanned + scanned;
  t.rows_returned <- t.rows_returned + returned

let note_flush (t : t) ~bytes =
  t.flushes <- t.flushes + 1;
  t.flushed_bytes <- t.flushed_bytes + bytes

let note_merge (t : t) ~bytes_in ~bytes_out =
  t.merges <- t.merges + 1;
  t.merged_bytes_in <- t.merged_bytes_in + bytes_in;
  t.merged_bytes_out <- t.merged_bytes_out + bytes_out

let note_expired (t : t) ~tablets =
  t.tablets_expired <- t.tablets_expired + tablets

let pp ppf s =
  Format.fprintf ppf
    "@[<v>inserted %d rows in %d batches; %d queries returned %d rows \
     (scanned %d, ratio %.2f); %d flushes (%d B), %d merges (%d B in, %d B \
     out), write amp %.2f; %d tablets expired@]"
    s.rows_inserted s.insert_batches s.queries s.rows_returned s.rows_scanned
    (scan_ratio s) s.flushes s.flushed_bytes s.merges s.merged_bytes_in
    s.merged_bytes_out (write_amplification s) s.tablets_expired
