type 'v t = Leaf | Node of { l : 'v t; k : string; v : 'v; r : 'v t; h : int; n : int }

let empty = Leaf

let is_empty = function Leaf -> true | Node _ -> false

let height = function Leaf -> 0 | Node { h; _ } -> h

let length = function Leaf -> 0 | Node { n; _ } -> n

let node l k v r =
  Node { l; k; v; r; h = 1 + max (height l) (height r); n = 1 + length l + length r }

(* Standard AVL rebalance of (l, k, v, r) where the inputs are themselves
   balanced and differ in height by at most two. *)
let balance l k v r =
  let hl = height l and hr = height r in
  if hl > hr + 1 then begin
    match l with
    | Leaf -> assert false
    | Node { l = ll; k = lk; v = lv; r = lr; _ } ->
        if height ll >= height lr then node ll lk lv (node lr k v r)
        else begin
          match lr with
          | Leaf -> assert false
          | Node { l = lrl; k = lrk; v = lrv; r = lrr; _ } ->
              node (node ll lk lv lrl) lrk lrv (node lrr k v r)
        end
  end
  else if hr > hl + 1 then begin
    match r with
    | Leaf -> assert false
    | Node { l = rl; k = rk; v = rv; r = rr; _ } ->
        if height rr >= height rl then node (node l k v rl) rk rv rr
        else begin
          match rl with
          | Leaf -> assert false
          | Node { l = rll; k = rlk; v = rlv; r = rlr; _ } ->
              node (node l k v rll) rlk rlv (node rlr rk rv rr)
        end
  end
  else node l k v r

exception Duplicate

let insert key value t =
  let rec go = function
    | Leaf -> node Leaf key value Leaf
    | Node { l; k; v; r; _ } ->
        let c = String.compare key k in
        if c = 0 then raise Duplicate
        else if c < 0 then balance (go l) k v r
        else balance l k v (go r)
  in
  match go t with tree -> `Ok tree | exception Duplicate -> `Duplicate

let rec find key = function
  | Leaf -> None
  | Node { l; k; v; r; _ } ->
      let c = String.compare key k in
      if c = 0 then Some v else if c < 0 then find key l else find key r

let mem key t = find key t <> None

let rec min_key = function
  | Leaf -> None
  | Node { l = Leaf; k; _ } -> Some k
  | Node { l; _ } -> min_key l

let rec max_key = function
  | Leaf -> None
  | Node { r = Leaf; k; _ } -> Some k
  | Node { r; _ } -> max_key r

let rec fold f t acc =
  match t with
  | Leaf -> acc
  | Node { l; k; v; r; _ } -> fold f r (f k v (fold f l acc))

(* Iterators are zippers: a stack of nodes still to visit. For the
   ascending direction, the stack holds nodes whose key and right subtree
   are pending, smallest on top. *)
type 'v frame = { fk : string; fv : 'v; rest : 'v t }

type 'v iter = {
  mutable stack : 'v frame list;
  dir_asc : bool;
  lo : string option;  (** inclusive *)
  hi : string option;  (** exclusive *)
}

let rec push_left_bounded lo stack = function
  | Leaf -> stack
  | Node { l; k; v; r; _ } -> (
      match lo with
      | Some b when String.compare k b < 0 ->
          (* Whole left subtree and this key are below the bound. *)
          push_left_bounded lo stack r
      | _ -> push_left_bounded lo ({ fk = k; fv = v; rest = r } :: stack) l)

let rec push_right_bounded hi stack = function
  | Leaf -> stack
  | Node { l; k; v; r; _ } -> (
      match hi with
      | Some b when String.compare k b >= 0 ->
          (* This key and the whole right subtree are at/above the bound. *)
          push_right_bounded hi stack l
      | _ -> push_right_bounded hi ({ fk = k; fv = v; rest = l } :: stack) r)

let iter_asc ?lo ?hi t =
  { stack = push_left_bounded lo [] t; dir_asc = true; lo; hi }

let iter_desc ?lo ?hi t =
  { stack = push_right_bounded hi [] t; dir_asc = false; lo; hi }

let next it =
  match it.stack with
  | [] -> None
  | { fk; fv; rest } :: tl ->
      if it.dir_asc then begin
        match it.hi with
        | Some hi when String.compare fk hi >= 0 ->
            it.stack <- [];
            None
        | _ ->
            it.stack <- push_left_bounded it.lo tl rest;
            Some (fk, fv)
      end
      else begin
        match it.lo with
        | Some lo when String.compare fk lo < 0 ->
            it.stack <- [];
            None
        | _ ->
            it.stack <- push_right_bounded it.hi tl rest;
            Some (fk, fv)
      end

let rec invariant_ok = function
  | Leaf -> true
  | Node { l; r; h; n; _ } ->
      abs (height l - height r) <= 1
      && h = 1 + max (height l) (height r)
      && n = 1 + length l + length r
      && invariant_ok l && invariant_ok r
