(** Application-driven time periods (§3.4.2).

    "LittleTable groups time into three ranges, each measured in even
    intervals from the Unix epoch: the six 4-hour periods of the most
    recent day, the seven days of the most recent week, and all the weeks
    previous to that." Rows are binned into filling tablets by these
    periods, and the merge policy never combines tablets from different
    periods, so tablet timespans stay aligned with the anthropocentric
    ranges queries ask for. *)

type class_ = Four_hour | Day | Week

(** Length of a period of the given class, in microseconds. *)
val class_length : class_ -> int64

val class_name : class_ -> string

(** A concrete period: a half-open interval [\[start, start + length)]
    aligned to its class. *)
type t = { start : int64; cls : class_ }

val length : t -> int64

(** Exclusive upper bound of the period. *)
val stop : t -> int64

(** [bin ~now ts] is the period into which a row with timestamp [ts]
    should be binned when the current time is [now]:
    the 4-hour period of [ts] when [ts] falls in the current (epoch-
    aligned) day or the future, the day of [ts] when it falls in the
    current week, and the week of [ts] otherwise. *)
val bin : now:int64 -> int64 -> t

(** [classify ~now ts] is just the class of [bin ~now ts] — used by the
    merge policy to group on-disk tablets by the period their data falls
    into {e now} (a 4-hour tablet ages into day and then week groups as
    time advances, making it mergeable with its new neighbours). *)
val classify : now:int64 -> int64 -> class_

(** [align v ~unit] rounds [v] down to a multiple of [unit]. *)
val align : int64 -> unit_len:int64 -> int64

val pp : Format.formatter -> t -> unit
