(** Flush-dependency graphs (§3.4.3).

    LittleTable guarantees that if a row survives a crash, every row
    inserted into the same table before it survives too. With several
    filling tablets, a client's inserts interleave between tablets, so the
    table "tracks for each table the tablet t that most recently received
    an insert. When it processes an insert to a different tablet t' ≠ t,
    it adds a flush dependency t → t', meaning t must be flushed before
    t'. ... Before flushing a tablet t, LittleTable first traverses this
    dependency graph to find the transitive closure of tablets that must
    be flushed first", flushing the whole closure in one atomic descriptor
    update. The graph may contain cycles; a cycle simply flushes
    together. *)

type t

val create : unit -> t

(** [add_edge t ~before ~after]: tablet [before] must flush no later than
    [after]. Self-edges are ignored. *)
val add_edge : t -> before:int -> after:int -> unit

(** [closure t id] is every tablet that must be flushed along with [id]
    (all nodes with a path to [id]), including [id] itself. *)
val closure : t -> int -> int list

(** Forget flushed tablets: drop the nodes and any edges touching them. *)
val remove : t -> int list -> unit

(** Number of nodes with at least one edge (for tests/stats). *)
val node_count : t -> int
