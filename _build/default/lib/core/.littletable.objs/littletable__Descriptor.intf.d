lib/core/descriptor.mli: Lt_vfs Schema
