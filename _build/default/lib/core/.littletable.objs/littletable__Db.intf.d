lib/core/db.mli: Config Lt_util Lt_vfs Schema Table
