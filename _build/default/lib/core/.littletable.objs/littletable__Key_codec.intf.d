lib/core/key_codec.mli: Buffer Lt_util Schema Value
