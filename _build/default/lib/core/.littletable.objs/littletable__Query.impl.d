lib/core/query.ml: Format Int64 Key_codec List Printf String Value
