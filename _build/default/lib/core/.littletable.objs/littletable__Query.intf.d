lib/core/query.mli: Format Schema Value
