lib/core/schema.ml: Array Binio Format Hashtbl List Lt_util Printf String Value
