lib/core/period.mli: Format
