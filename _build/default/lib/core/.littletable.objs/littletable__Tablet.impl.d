lib/core/tablet.ml: Array Binio Block Buffer Crc32c Int64 List Lt_bloom Lt_lz Lt_util Lt_vfs Option Printf Row_codec Schema String
