lib/core/schema.mli: Buffer Format Lt_util Value
