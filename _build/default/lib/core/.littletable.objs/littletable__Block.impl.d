lib/core/block.ml: Array Binio Buffer List Lt_util String
