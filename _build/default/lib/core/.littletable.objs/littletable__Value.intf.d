lib/core/value.mli: Buffer Format Lt_util
