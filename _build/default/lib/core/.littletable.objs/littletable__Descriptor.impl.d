lib/core/descriptor.ml: Binio Buffer Crc32c Filename Int Int64 List Lt_util Lt_vfs Printf Schema String
