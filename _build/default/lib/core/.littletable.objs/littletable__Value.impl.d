lib/core/value.ml: Binio Char Float Format Int32 Int64 List Lt_util Printf String
