lib/core/config.ml: Clock Int64 Lt_util
