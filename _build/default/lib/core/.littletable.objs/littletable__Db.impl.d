lib/core/db.ml: Clock Config Descriptor Filename Fun Hashtbl List Lt_util Lt_vfs Mutex Printf String Table
