lib/core/key_codec.ml: Array Binio Buffer Bytes Char Int32 Int64 List Lt_util Printf Schema String Value
