lib/core/cursor.mli: Value
