lib/core/config.mli:
