lib/core/tablet.mli: Lt_vfs Schema Value
