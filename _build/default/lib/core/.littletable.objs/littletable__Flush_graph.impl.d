lib/core/flush_graph.ml: Hashtbl Int List Option Set
