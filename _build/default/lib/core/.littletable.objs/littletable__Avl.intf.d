lib/core/avl.mli:
