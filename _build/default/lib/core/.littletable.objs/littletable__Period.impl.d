lib/core/period.ml: Clock Format Int64 Lt_util
