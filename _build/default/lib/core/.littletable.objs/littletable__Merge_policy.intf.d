lib/core/merge_policy.mli:
