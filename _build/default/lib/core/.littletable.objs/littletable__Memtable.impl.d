lib/core/memtable.ml: Avl Int64 Period Value
