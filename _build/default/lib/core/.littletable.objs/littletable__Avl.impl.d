lib/core/avl.ml: String
