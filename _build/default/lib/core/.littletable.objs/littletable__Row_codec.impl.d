lib/core/row_codec.ml: Array Binio Buffer Key_codec Lt_util Schema String Value
