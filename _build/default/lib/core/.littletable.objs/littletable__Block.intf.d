lib/core/block.mli:
