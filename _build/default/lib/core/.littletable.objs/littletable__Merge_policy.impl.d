lib/core/merge_policy.ml: Array Int Int64 List Period
