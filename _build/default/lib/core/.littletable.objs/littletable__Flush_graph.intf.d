lib/core/flush_graph.mli:
