lib/core/memtable.mli: Avl Period Value
