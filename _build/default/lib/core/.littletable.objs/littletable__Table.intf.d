lib/core/table.mli: Config Cursor Descriptor Lt_util Lt_vfs Query Schema Stats Value
