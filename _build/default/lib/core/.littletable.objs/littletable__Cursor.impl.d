lib/core/cursor.ml: Heap Int Key_codec List Lt_util String Value
