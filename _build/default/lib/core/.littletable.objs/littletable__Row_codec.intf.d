lib/core/row_codec.mli: Schema Value
