(** Row serialization for storage.

    A stored row is split into its encoded primary key (see {!Key_codec})
    and a compact value part holding the non-key columns in schema order;
    nothing is stored twice. Decoding recovers the full row in schema
    column order, translating forward when the tablet was written under an
    older schema version. *)

(** Non-key columns of a validated row, in schema order. *)
val encode_value : Schema.t -> Value.t array -> string

(** [decode schema ~key ~value] rebuilds the full row. *)
val decode : Schema.t -> key:string -> value:string -> Value.t array

(** [decode_translated ~from ~into ~key ~value] decodes a row written
    under schema [from] and translates it to [into] (§3.5: cells are
    widened or filled with defaults; on-disk tablets are never
    rewritten). *)
val decode_translated :
  from:Schema.t -> into:Schema.t -> key:string -> value:string -> Value.t array

(** Approximate stored size of a row in bytes (key + value encodings). *)
val stored_size : Schema.t -> Value.t array -> int
