open Lt_util

type entry = { key : string; value : string }

type builder = {
  mutable entries : entry list;  (** reversed *)
  mutable count : int;
  mutable payload_bytes : int;
  mutable first : string option;
  mutable last : string option;
}

let builder () =
  { entries = []; count = 0; payload_bytes = 0; first = None; last = None }

(* Upper bound on a varint length prefix for block-sized strings. *)
let len_overhead n = if n < 0x80 then 1 else if n < 0x4000 then 2 else 3

let add b ~key ~value =
  (match b.last with
  | Some last when String.compare key last <= 0 ->
      invalid_arg "Block.add: keys must be strictly ascending"
  | _ -> ());
  b.entries <- { key; value } :: b.entries;
  b.count <- b.count + 1;
  b.payload_bytes <-
    b.payload_bytes + String.length key + String.length value
    + len_overhead (String.length key)
    + len_overhead (String.length value);
  if b.first = None then b.first <- Some key;
  b.last <- Some key

let entry_count b = b.count

let raw_size b = b.payload_bytes + (4 * b.count) + 5

let last_key b = b.last

let first_key b = b.first

let finish b =
  let entries = List.rev b.entries in
  let payload = Buffer.create b.payload_bytes in
  let offsets =
    List.map
      (fun e ->
        let off = Buffer.length payload in
        Binio.put_string payload e.key;
        Binio.put_string payload e.value;
        off)
      entries
  in
  let out = Buffer.create (raw_size b) in
  Binio.put_varint out b.count;
  List.iter (fun off -> Binio.put_u32 out off) offsets;
  Buffer.add_buffer out payload;
  b.entries <- [];
  b.count <- 0;
  b.payload_bytes <- 0;
  b.first <- None;
  b.last <- None;
  Buffer.contents out

type t = { data : string; offsets : int array; payload_start : int }

let decode data =
  let cur = Binio.cursor data in
  let count = Binio.get_varint cur in
  if count < 0 || count > String.length data then
    raise (Binio.Corrupt "block: implausible row count");
  let offsets = Array.init count (fun _ -> Binio.get_u32 cur) in
  { data; offsets; payload_start = cur.Binio.pos }

let count t = Array.length t.offsets

let entry t i =
  let cur = Binio.cursor ~pos:(t.payload_start + t.offsets.(i)) t.data in
  let key = Binio.get_string cur in
  let value = Binio.get_string cur in
  { key; value }

let key t i =
  let cur = Binio.cursor ~pos:(t.payload_start + t.offsets.(i)) t.data in
  Binio.get_string cur

let search_geq t k =
  let lo = ref 0 and hi = ref (count t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (key t mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo
