(** Persistent AVL trees.

    "LittleTable places newly inserted rows into an in-memory tablet,
    implemented as a balanced binary tree" (§3.2). Ours is persistent:
    inserts build new roots, so a query can hold a snapshot of every
    in-memory tablet and scan it without locking against concurrent
    inserts — the engine's reader/writer isolation rests on this.

    Keys are byte strings compared with [String.compare] (encoded primary
    keys); insertion rejects duplicates, which is how primary-key
    uniqueness is enforced within a filling tablet. *)

type 'v t

val empty : 'v t

val is_empty : 'v t -> bool

val length : 'v t -> int

(** [insert k v t] is [`Duplicate] when [k] is already bound. *)
val insert : string -> 'v -> 'v t -> [ `Ok of 'v t | `Duplicate ]

val find : string -> 'v t -> 'v option

val mem : string -> 'v t -> bool

val min_key : 'v t -> string option

val max_key : 'v t -> string option

(** In-order fold over all bindings, ascending. *)
val fold : (string -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc

(** {1 Range iteration}

    Pull-based iterators for the merge cursor. Bounds are half open:
    ascending iterators yield keys in [\[lo, hi)]; descending iterators
    yield keys in [\[lo, hi)] in reverse. A missing bound is infinite. *)

type 'v iter

val iter_asc : ?lo:string -> ?hi:string -> 'v t -> 'v iter

val iter_desc : ?lo:string -> ?hi:string -> 'v t -> 'v iter

val next : 'v iter -> (string * 'v) option

(** Internal balance invariant check, exposed for property tests:
    height difference of every node's children is at most one. *)
val invariant_ok : 'v t -> bool
