(* Shards (§2): the full collection pipeline, warm-spare failover, and
   shard splitting. *)

open Littletable
open Lt_apps
module Clock = Lt_util.Clock

let config =
  Config.make ~block_size:1024 ~flush_size:(64 * 1024) ~merge_delay:0L
    ~rollover_spread:0.0 ()

let run_minutes shard clock n =
  for _ = 1 to n do
    Clock.advance clock Clock.minute;
    Shard.tick shard
  done

let usage_rows shard =
  (Table.query (Shard.usage_table shard) Query.all).Table.rows

let networks_present rows =
  List.sort_uniq compare (List.map (fun r -> Support.int64_of_cell r.(0)) rows)

let test_shard_pipeline () =
  let clock = Clock.manual ~start:Support.ts0 () in
  let vfs = Lt_vfs.Vfs.memory () in
  let shard =
    Shard.create ~config ~vfs ~clock ~dir:"shard" ~networks:[ 1L; 2L ]
      ~devices_per_network:3 ()
  in
  run_minutes shard clock 40;
  let rows = usage_rows shard in
  Alcotest.(check bool) "usage collected" true (List.length rows > 100);
  Alcotest.(check (list int64)) "both networks" [ 1L; 2L ] (networks_present rows);
  (* Events flow too. *)
  let events = (Table.query (Shard.events_table shard) Query.all).Table.rows in
  Alcotest.(check bool) "events collected" true (events <> []);
  (* The rollup aggregator produced periods once past the safety lag. *)
  run_minutes shard clock 30;
  let rollups =
    Aggregator.read_rollup (Db.table (Shard.db shard) "usage_10m")
      ~key:(Value.Int64 1L) ~ts_min:0L ~ts_max:Int64.max_int
  in
  Alcotest.(check bool) "rollups present" true (rollups <> [])

let test_shard_failover () =
  let clock = Clock.manual ~start:Support.ts0 () in
  let vfs = Lt_vfs.Vfs.memory () in
  let spare_vfs = Lt_vfs.Vfs.memory () in
  let shard =
    Shard.create ~config ~vfs ~clock ~dir:"shard" ~networks:[ 7L ]
      ~devices_per_network:2 ()
  in
  run_minutes shard clock 30;
  Shard.archive_to_spare shard ~spare_vfs ~spare_dir:"spare";
  let archived = List.length (usage_rows shard) in
  (* More data after the last archival round; then the shard "dies". *)
  run_minutes shard clock 10;
  let spare =
    Shard.failover ~config ~spare_vfs ~clock ~spare_dir:"spare" ~networks:[ 7L ]
      ~devices_per_network:2 ()
  in
  (* The spare starts from the archived state... *)
  Alcotest.(check int) "archived rows present" archived
    (List.length (usage_rows spare));
  (* ...and the pipeline continues: grabbers recovered their caches and
     resume fetching from the devices. *)
  run_minutes spare clock 10;
  Alcotest.(check bool) "spare collects new data" true
    (List.length (usage_rows spare) > archived)

let test_shard_split () =
  let clock = Clock.manual ~start:Support.ts0 () in
  let vfs = Lt_vfs.Vfs.memory () in
  let shard =
    Shard.create ~config ~vfs ~clock ~dir:"parent" ~networks:[ 1L; 2L; 3L; 4L ]
      ~devices_per_network:2 ()
  in
  run_minutes shard clock 30;
  let parent_rows = List.length (usage_rows shard) in
  let left, right =
    Shard.split ~config shard ~vfs ~left_dir:"child_l" ~right_dir:"child_r"
      ~devices_per_network:2 ()
  in
  Alcotest.(check (list int64)) "left networks" [ 1L; 2L ] (Shard.networks left);
  Alcotest.(check (list int64)) "right networks" [ 3L; 4L ] (Shard.networks right);
  let lrows = usage_rows left and rrows = usage_rows right in
  Alcotest.(check (list int64)) "left holds its customers only" [ 1L; 2L ]
    (networks_present lrows);
  Alcotest.(check (list int64)) "right holds its customers only" [ 3L; 4L ]
    (networks_present rrows);
  (* Nothing lost: the two children partition the parent's rows. *)
  Alcotest.(check int) "partition" parent_rows
    (List.length lrows + List.length rrows);
  (* Both children keep collecting for their own networks. *)
  run_minutes left clock 5;
  run_minutes right clock 5;
  Alcotest.(check (list int64)) "left stays partitioned" [ 1L; 2L ]
    (networks_present (usage_rows left));
  Alcotest.(check bool) "left grew" true (List.length (usage_rows left) > List.length lrows)

let suite =
  [
    ("pipeline end to end", `Quick, test_shard_pipeline);
    ("warm-spare failover", `Quick, test_shard_failover);
    ("shard split", `Quick, test_shard_split);
  ]
