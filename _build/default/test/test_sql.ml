open Littletable
open Lt_sql

let setup () =
  let db, clock, _ = Support.fresh_db () in
  let b = Executor.local_backend db in
  (b, db, clock)

let exec b sql = Executor.execute b sql

type row_set = { columns : string list; rows : Value.t array list }

let rows b sql =
  match exec b sql with
  | Executor.Rows { columns; rows } -> { columns; rows }
  | _ -> Alcotest.failf "expected rows from %s" sql

(* No TTL: the test rows use small timestamps near the epoch, which a
   TTL would filter out relative to the 2024 test clock. *)
let create_usage ?(ttl = "") b =
  ignore
    (exec b
       (Printf.sprintf
          "CREATE TABLE usage (network INT64, device INT64, ts TIMESTAMP, \
           bytes INT64 DEFAULT 0, rate DOUBLE, \
           PRIMARY KEY (network, device, ts))%s"
          ttl))

(* ---- Lexer ------------------------------------------------------------ *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a, SUM(b) FROM t WHERE x >= 10 -- c\n LIMIT 5;" in
  Alcotest.(check int) "token count" 17 (List.length toks);
  (match toks with
  | Lexer.T_ident "select" :: Lexer.T_ident "a" :: Lexer.T_comma :: _ -> ()
  | _ -> Alcotest.fail "unexpected prefix");
  (* Strings with escaped quotes; blobs. *)
  (match Lexer.tokenize "'it''s' x'6869'" with
  | [ Lexer.T_string "it's"; Lexer.T_blob "hi"; Lexer.T_eof ] -> ()
  | _ -> Alcotest.fail "string/blob lexing");
  (* Negative and float literals. *)
  (match Lexer.tokenize "-5 2.5 1e3" with
  | [ Lexer.T_int (-5L); Lexer.T_float 2.5; Lexer.T_float 1000.0; Lexer.T_eof ] -> ()
  | _ -> Alcotest.fail "numeric lexing");
  match Lexer.tokenize "a @ b" with
  | (_ : Lexer.token list) -> Alcotest.fail "bad char accepted"
  | exception Lexer.Syntax_error _ -> ()

(* ---- Parser ------------------------------------------------------------ *)

let test_parser_select () =
  match Parser.parse
          "SELECT device, SUM(bytes) AS total FROM usage \
           WHERE network = 7 AND ts >= 100 AND ts < 200 \
           GROUP BY device LIMIT 10"
  with
  | Ast.Select s ->
      Alcotest.(check string) "table" "usage" s.Ast.table;
      Alcotest.(check int) "projections" 2 (List.length s.Ast.projections);
      Alcotest.(check int) "conds" 3 (List.length s.Ast.where);
      Alcotest.(check (list string)) "group" [ "device" ] s.Ast.group_by;
      Alcotest.(check bool) "limit" true (s.Ast.limit = Some 10);
      (match s.Ast.projections with
      | [ (Ast.Col "device", None); (Ast.Agg (Ast.Sum, Some "bytes"), Some "total") ] -> ()
      | _ -> Alcotest.fail "projection shapes")
  | _ -> Alcotest.fail "not a select"

let test_parser_other_statements () =
  (match Parser.parse "SHOW TABLES" with Ast.Show_tables -> () | _ -> Alcotest.fail "show");
  (match Parser.parse "DESCRIBE usage;" with
  | Ast.Describe "usage" -> ()
  | _ -> Alcotest.fail "describe");
  (match Parser.parse "DROP TABLE IF EXISTS t" with
  | Ast.Drop { drop_table = "t"; if_exists = true } -> ()
  | _ -> Alcotest.fail "drop");
  (match Parser.parse "SELECT * FROM t ORDER BY KEY DESC" with
  | Ast.Select { star = true; order = Some Ast.Order_desc; _ } -> ()
  | _ -> Alcotest.fail "order desc");
  match Parser.parse "INSERT INTO t (a, ts) VALUES (1, NOW), (2, 5)" with
  | Ast.Insert { values = [ [ Ast.L_int 1L; Ast.L_now ]; [ Ast.L_int 2L; Ast.L_int 5L ] ]; _ } -> ()
  | _ -> Alcotest.fail "insert"

let test_parser_errors () =
  let bad sql =
    match Parser.parse sql with
    | (_ : Ast.stmt) -> Alcotest.failf "accepted: %s" sql
    | exception Lexer.Syntax_error _ -> ()
  in
  bad "SELECT FROM t";
  bad "SELECT * FROM";
  bad "CREATE TABLE t (a INT64)";
  (* no primary key *)
  bad "CREATE TABLE t (a WIBBLE, PRIMARY KEY (a))";
  bad "INSERT INTO t VALUES";
  bad "SELECT * FROM t WHERE a ~ 3";
  bad "SELECT * FROM t garbage"

(* ---- Planner ------------------------------------------------------------ *)

let test_planner_bounding_box () =
  let schema = Support.usage_schema () in
  let parse_select sql =
    match Parser.parse sql with Ast.Select s -> s | _ -> assert false
  in
  let plan sql = Planner.plan_select schema ~now:999L (parse_select sql) in
  (* Leading-equality prefix + ts range extracted; trailing filter residual. *)
  let p =
    plan
      "SELECT * FROM usage WHERE network = 1 AND device = 2 AND ts >= 10 \
       AND ts <= 20 AND bytes > 100"
  in
  Alcotest.(check bool) "prefix" true
    (p.Planner.query.Query.key_low = Query.Incl [ Value.Int64 1L; Value.Int64 2L ]);
  Alcotest.(check bool) "ts bounds" true
    (p.Planner.query.Query.ts_min = Some 10L && p.Planner.query.Query.ts_max = Some 20L);
  Alcotest.(check int) "one residual" 1 (List.length p.Planner.residuals);
  (* A gap in the equalities stops the prefix. *)
  let p = plan "SELECT * FROM usage WHERE device = 2" in
  Alcotest.(check bool) "no prefix" true
    (p.Planner.query.Query.key_low = Query.Unbounded);
  Alcotest.(check int) "residual" 1 (List.length p.Planner.residuals);
  (* Strict ts comparisons become inclusive bounds. *)
  let p = plan "SELECT * FROM usage WHERE ts > 10 AND ts < 20" in
  Alcotest.(check bool) "strict ts" true
    (p.Planner.query.Query.ts_min = Some 11L && p.Planner.query.Query.ts_max = Some 19L);
  (* NOW coerces in ts conditions. *)
  let p = plan "SELECT * FROM usage WHERE ts <= NOW" in
  Alcotest.(check bool) "now" true (p.Planner.query.Query.ts_max = Some 999L);
  (* LIMIT pushes down only without residuals. *)
  let p = plan "SELECT * FROM usage LIMIT 5" in
  Alcotest.(check bool) "pushed" true (p.Planner.query.Query.limit = Some 5);
  let p = plan "SELECT * FROM usage WHERE bytes = 1 LIMIT 5" in
  Alcotest.(check bool) "not pushed" true
    (p.Planner.query.Query.limit = None && p.Planner.post_limit = Some 5)

let test_planner_errors () =
  let schema = Support.usage_schema () in
  let bad sql =
    match Parser.parse sql with
    | Ast.Select s -> (
        match Planner.plan_select schema ~now:0L s with
        | (_ : Planner.plan) -> Alcotest.failf "planned: %s" sql
        | exception Planner.Plan_error _ -> ())
    | _ -> assert false
  in
  bad "SELECT nope FROM usage";
  bad "SELECT * FROM usage WHERE nope = 1";
  bad "SELECT * FROM usage WHERE network = 'string'";
  bad "SELECT device, SUM(bytes) FROM usage";
  (* device not grouped *)
  bad "SELECT SUM(rate) FROM usage ORDER BY KEY DESC";
  bad "SELECT * FROM usage GROUP BY device";
  bad "SELECT SUM(device2) FROM usage"

(* ---- End-to-end execution ---------------------------------------------- *)

let test_e2e_create_insert_select () =
  let b, _, _ = setup () in
  create_usage b;
  (match exec b "SHOW TABLES" with
  | Executor.Rows { rows = [ [| Value.String "usage" |] ]; _ } -> ()
  | _ -> Alcotest.fail "show tables");
  (match
     exec b
       "INSERT INTO usage (network, device, ts, bytes, rate) VALUES \
        (1, 1, 100, 500, 1.5), (1, 2, 110, 700, 2.5), (2, 1, 120, 900, 3.5)"
   with
  | Executor.Affected 3 -> ()
  | _ -> Alcotest.fail "insert count");
  let r = rows b "SELECT * FROM usage WHERE network = 1" in
  Alcotest.(check int) "two rows" 2 (List.length r.rows);
  Alcotest.(check (list string)) "columns"
    [ "network"; "device"; "ts"; "bytes"; "rate" ] r.columns;
  (* Projection subset + alias. *)
  let r = rows b "SELECT device AS d, bytes FROM usage WHERE network = 1" in
  Alcotest.(check (list string)) "aliased" [ "d"; "bytes" ] r.columns;
  (match r.rows with
  | [ [| Value.Int64 1L; Value.Int64 500L |]; [| Value.Int64 2L; Value.Int64 700L |] ] -> ()
  | _ -> Alcotest.fail "projected values")

let test_e2e_aggregates () =
  let b, _, _ = setup () in
  create_usage b;
  ignore
    (exec b
       "INSERT INTO usage (network, device, ts, bytes, rate) VALUES \
        (1, 1, 100, 10, 1.0), (1, 1, 101, 20, 2.0), (1, 2, 102, 30, 3.0), \
        (2, 1, 103, 40, 4.0)");
  (* Whole-table aggregates. *)
  let r = rows b "SELECT COUNT(*), SUM(bytes), AVG(rate), MIN(ts), MAX(ts) FROM usage" in
  (match r.rows with
  | [ [| Value.Int64 4L; Value.Int64 100L; Value.Double avg; Value.Timestamp 100L;
         Value.Timestamp 103L |] ] ->
      Alcotest.(check (float 1e-9)) "avg" 2.5 avg
  | _ -> Alcotest.fail "aggregate row");
  (* Grouped by device within a network — the Dashboard per-device graph. *)
  let r =
    rows b
      "SELECT device, SUM(bytes) FROM usage WHERE network = 1 GROUP BY device"
  in
  (match r.rows with
  | [ [| Value.Int64 1L; Value.Int64 30L |]; [| Value.Int64 2L; Value.Int64 30L |] ] -> ()
  | _ -> Alcotest.fail "grouped rows");
  (* Aggregate over an empty scan yields one zero row. *)
  let r = rows b "SELECT COUNT(*) FROM usage WHERE network = 99" in
  match r.rows with
  | [ [| Value.Int64 0L |] ] -> ()
  | _ -> Alcotest.fail "empty aggregate"

let test_e2e_defaults_and_now () =
  let b, _, clock = setup () in
  create_usage b;
  ignore (exec b "INSERT INTO usage (network, device, ts) VALUES (5, 5, NOW)");
  (* Omitted ts fills with now as well. *)
  ignore (exec b "INSERT INTO usage (network, device) VALUES (6, 6)");
  let now = Lt_util.Clock.now clock in
  let r = rows b "SELECT network, ts, bytes FROM usage" in
  (match r.rows with
  | [ [| Value.Int64 5L; Value.Timestamp t1; Value.Int64 0L |];
      [| Value.Int64 6L; Value.Timestamp t2; Value.Int64 0L |] ] ->
      Alcotest.(check int64) "now filled" now t1;
      Alcotest.(check int64) "omitted ts" now t2
  | _ -> Alcotest.fail "rows")

let test_e2e_order_and_limit () =
  let b, _, _ = setup () in
  create_usage b;
  ignore
    (exec b
       "INSERT INTO usage (network, device, ts) VALUES (1,1,1),(2,2,2),(3,3,3)");
  let r = rows b "SELECT network FROM usage ORDER BY KEY DESC LIMIT 2" in
  (match r.rows with
  | [ [| Value.Int64 3L |]; [| Value.Int64 2L |] ] -> ()
  | _ -> Alcotest.fail "desc limit");
  let r = rows b "SELECT network FROM usage WHERE ts != 2" in
  Alcotest.(check int) "ne residual" 2 (List.length r.rows)

let test_e2e_errors () =
  let b, _, _ = setup () in
  create_usage b;
  let expect_error sql =
    match exec b sql with
    | (_ : Executor.result) -> Alcotest.failf "accepted: %s" sql
    | exception (Executor.Exec_error _ | Planner.Plan_error _ | Lexer.Syntax_error _) -> ()
  in
  expect_error "SELECT * FROM missing";
  expect_error "INSERT INTO usage (network) VALUES (1, 2)";
  expect_error "INSERT INTO usage (nope, ts) VALUES (1, 2)";
  expect_error "CREATE TABLE usage (a INT64, ts TIMESTAMP, PRIMARY KEY (a, ts))";
  expect_error "DROP TABLE missing";
  (* Duplicate keys surface as errors. *)
  ignore (exec b "INSERT INTO usage (network, device, ts) VALUES (1, 1, 5)");
  expect_error "INSERT INTO usage (network, device, ts) VALUES (1, 1, 5)";
  (* IF EXISTS suppresses. *)
  match exec b "DROP TABLE IF EXISTS missing" with
  | Executor.Done _ -> ()
  | _ -> Alcotest.fail "if exists"

let test_e2e_describe_and_ttl () =
  let b, db, _ = setup () in
  create_usage ~ttl:" TTL 30 DAYS" b;
  let r = rows b "DESCRIBE usage" in
  Alcotest.(check int) "five columns" 5 (List.length r.rows);
  (* TTL parsed into the table. *)
  let t = Db.table db "usage" in
  Alcotest.(check bool) "ttl 30 days" true
    (Table.ttl t = Some (Int64.mul 30L Lt_util.Clock.day))

let test_pp_result () =
  let b, _, _ = setup () in
  create_usage b;
  ignore (exec b "INSERT INTO usage (network, device, ts) VALUES (1, 2, 3)");
  let out = Format.asprintf "%a" Executor.pp_result (exec b "SELECT network, device FROM usage") in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 7 = "network");
  let out2 = Format.asprintf "%a" Executor.pp_result (Executor.Affected 2) in
  Alcotest.(check string) "affected" "2 rows affected" out2

let suite =
  [
    ("lexer basics", `Quick, test_lexer_basics);
    ("parser: select", `Quick, test_parser_select);
    ("parser: other statements", `Quick, test_parser_other_statements);
    ("parser: errors", `Quick, test_parser_errors);
    ("planner: bounding box extraction", `Quick, test_planner_bounding_box);
    ("planner: errors", `Quick, test_planner_errors);
    ("e2e: create/insert/select", `Quick, test_e2e_create_insert_select);
    ("e2e: aggregates and group by", `Quick, test_e2e_aggregates);
    ("e2e: defaults and NOW", `Quick, test_e2e_defaults_and_now);
    ("e2e: order and limit", `Quick, test_e2e_order_and_limit);
    ("e2e: errors", `Quick, test_e2e_errors);
    ("e2e: describe and ttl", `Quick, test_e2e_describe_and_ttl);
    ("pp_result", `Quick, test_pp_result);
  ]
