open Lt_util

let test_binio_roundtrip () =
  let b = Buffer.create 64 in
  Binio.put_u8 b 0xab;
  Binio.put_u16 b 0xbeef;
  Binio.put_u32 b 0xdeadbeef;
  Binio.put_i32 b (-42l);
  Binio.put_i64 b Int64.min_int;
  Binio.put_double b 3.14159;
  Binio.put_varint b 0;
  Binio.put_varint b 127;
  Binio.put_varint b 128;
  Binio.put_varint b 300_000_000;
  Binio.put_string b "hello";
  Binio.put_string b "";
  let c = Binio.cursor (Buffer.contents b) in
  Alcotest.(check int) "u8" 0xab (Binio.get_u8 c);
  Alcotest.(check int) "u16" 0xbeef (Binio.get_u16 c);
  Alcotest.(check int) "u32" 0xdeadbeef (Binio.get_u32 c);
  Alcotest.(check int32) "i32" (-42l) (Binio.get_i32 c);
  Alcotest.(check int64) "i64" Int64.min_int (Binio.get_i64 c);
  Alcotest.(check (float 1e-12)) "double" 3.14159 (Binio.get_double c);
  Alcotest.(check int) "varint 0" 0 (Binio.get_varint c);
  Alcotest.(check int) "varint 127" 127 (Binio.get_varint c);
  Alcotest.(check int) "varint 128" 128 (Binio.get_varint c);
  Alcotest.(check int) "varint big" 300_000_000 (Binio.get_varint c);
  Alcotest.(check string) "string" "hello" (Binio.get_string c);
  Alcotest.(check string) "empty string" "" (Binio.get_string c);
  Binio.expect_end c

let test_binio_corrupt () =
  let raises f =
    match f () with
    | () -> Alcotest.fail "expected Binio.Corrupt"
    | exception Binio.Corrupt _ -> ()
  in
  raises (fun () -> ignore (Binio.get_u8 (Binio.cursor "")));
  raises (fun () -> ignore (Binio.get_i64 (Binio.cursor "abc")));
  raises (fun () -> ignore (Binio.get_string (Binio.cursor "\x05ab")));
  raises (fun () ->
      (* Varint of 10 continuation bytes overflows. *)
      ignore (Binio.get_varint (Binio.cursor "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")));
  raises (fun () -> Binio.expect_end (Binio.cursor "x"))

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound max_int)
    (fun n ->
      let b = Buffer.create 10 in
      Binio.put_varint b n;
      let c = Binio.cursor (Buffer.contents b) in
      let got = Binio.get_varint c in
      Binio.expect_end c;
      got = n)

let test_crc32c_vectors () =
  (* Standard CRC-32C test vector: "123456789" -> 0xE3069283. *)
  Alcotest.(check int32) "check vector" 0xE3069283l (Crc32c.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32c.string "");
  (* Incremental equals one-shot. *)
  let s = "the quick brown fox jumps over the lazy dog" in
  let a = Crc32c.string s in
  let b = Crc32c.update (Crc32c.update Crc32c.empty s 0 10) s 10 (String.length s - 10) in
  Alcotest.(check int32) "incremental" a b;
  (* Substring form. *)
  Alcotest.(check int32) "substring" (Crc32c.string "quick")
    (Crc32c.string ~off:4 ~len:5 s)

let test_xorshift_determinism () =
  let a = Xorshift.create 42L and b = Xorshift.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xorshift.next a) (Xorshift.next b)
  done;
  let c = Xorshift.create 43L in
  Alcotest.(check bool) "different seed differs" true
    (Xorshift.next a <> Xorshift.next c)

let test_xorshift_ranges () =
  let r = Xorshift.create 7L in
  for _ = 1 to 1000 do
    let v = Xorshift.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    let f = Xorshift.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done;
  Alcotest.(check int) "bytes length" 33 (String.length (Xorshift.bytes r 33))

let test_xorshift_bytes_incompressible () =
  let r = Xorshift.create 99L in
  let data = Xorshift.bytes r 65536 in
  let compressed = Lt_lz.Lz.compress data in
  Alcotest.(check bool) "no shrink on random data" true
    (String.length compressed >= String.length data - 16)

let test_heap_sorts () =
  let h = Heap.create ~cmp:Int.compare in
  let input = [ 5; 3; 8; 1; 9; 2; 7; 1; 0; 6 ] in
  List.iter (Heap.add h) input;
  Alcotest.(check int) "length" (List.length input) (Heap.length h);
  let rec drain acc =
    if Heap.is_empty h then List.rev acc else drain (Heap.pop h :: acc)
  in
  Alcotest.(check (list int)) "sorted" (List.sort compare input) (drain [])

let test_heap_replace_min () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.add h) [ 4; 2; 9 ];
  Heap.replace_min h 7;
  (* 2 replaced by 7: contents now 4 7 9 *)
  Alcotest.(check int) "min" 4 (Heap.pop h);
  Alcotest.(check int) "next" 7 (Heap.pop h);
  Alcotest.(check int) "last" 9 (Heap.pop h);
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop h))

let prop_heap_model =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.add h) xs;
      let rec drain acc =
        match Heap.peek h with
        | None -> List.rev acc
        | Some _ -> drain (Heap.pop h :: acc)
      in
      drain [] = List.sort compare xs)

let test_cdf () =
  let cdf = Cdf.of_samples [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check int) "count" 5 (Cdf.count cdf);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Cdf.quantile cdf 0.5);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Cdf.min cdf);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Cdf.max cdf);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Cdf.mean cdf);
  Alcotest.(check (float 1e-9)) "interp q0.25" 2.0 (Cdf.quantile cdf 0.25);
  Alcotest.(check (float 1e-9)) "below 3" 0.6 (Cdf.fraction_below cdf 3.0);
  Alcotest.(check (float 1e-9)) "below 0" 0.0 (Cdf.fraction_below cdf 0.0);
  Alcotest.(check (float 1e-9)) "below 99" 1.0 (Cdf.fraction_below cdf 99.0);
  Alcotest.(check int) "series points" 21 (List.length (Cdf.series cdf ~points:21))

let test_clock () =
  let c = Clock.manual ~start:100L () in
  Alcotest.(check int64) "start" 100L (Clock.now c);
  Clock.advance c 50L;
  Alcotest.(check int64) "advanced" 150L (Clock.now c);
  Clock.set c 1000L;
  Alcotest.(check int64) "set" 1000L (Clock.now c);
  Alcotest.check_raises "monotone" (Invalid_argument "Clock.set: time must be monotone")
    (fun () -> Clock.set c 1L);
  Alcotest.(check int64) "hour" 3_600_000_000L Clock.hour;
  Alcotest.(check int64) "week" 604_800_000_000L Clock.week;
  Alcotest.(check int64) "of_float" 1_500_000L (Clock.of_float_s 1.5)

let suite =
  [
    ("binio roundtrip", `Quick, test_binio_roundtrip);
    ("binio corrupt inputs", `Quick, test_binio_corrupt);
    ("crc32c vectors", `Quick, test_crc32c_vectors);
    ("xorshift determinism", `Quick, test_xorshift_determinism);
    ("xorshift ranges", `Quick, test_xorshift_ranges);
    ("xorshift incompressible", `Quick, test_xorshift_bytes_incompressible);
    ("heap sorts", `Quick, test_heap_sorts);
    ("heap replace_min", `Quick, test_heap_replace_min);
    ("cdf quantiles", `Quick, test_cdf);
    ("manual clock", `Quick, test_clock);
    Support.qcheck prop_varint_roundtrip;
    Support.qcheck prop_heap_model;
  ]
