(* Continuous archival to a warm spare (§2.2, §3.5): differential sync
   until stable, spare consistency, and failover. *)

open Littletable
open Lt_util
module Vfs = Lt_vfs.Vfs
module Sync = Lt_vfs.Sync

let config =
  Config.make ~block_size:1024 ~flush_size:(8 * 1024) ~merge_delay:0L
    ~rollover_spread:0.0 ()

let test_pass_copies_and_prunes () =
  let src = Vfs.memory () and dst = Vfs.memory () in
  let write vfs path data =
    Vfs.mkdir_p vfs (Filename.dirname path);
    let f = Vfs.create vfs path in
    Vfs.append vfs f data;
    Vfs.close vfs f
  in
  write src "shard/t1/000001.tab" "tablet-one";
  write src "shard/t1/DESCRIPTOR" "desc";
  write dst "spare/t1/000009.tab" "stale";
  let s = Sync.pass ~src ~src_dir:"shard" ~dst ~dst_dir:"spare" () in
  Alcotest.(check int) "copied" 2 s.Sync.copied;
  Alcotest.(check int) "pruned stale" 1 s.Sync.deleted;
  Alcotest.(check string) "content" "tablet-one" (Vfs.read_all dst "spare/t1/000001.tab");
  (* Second pass is a no-op. *)
  let s2 = Sync.pass ~src ~src_dir:"shard" ~dst ~dst_dir:"spare" () in
  Alcotest.(check int) "idempotent copy" 0 s2.Sync.copied;
  Alcotest.(check int) "idempotent delete" 0 s2.Sync.deleted;
  (* Same-size different-content files are detected (descriptors). *)
  write src "shard/t1/DESCRIPTOR" "DESC";
  let s3 = Sync.pass ~src ~src_dir:"shard" ~dst ~dst_dir:"spare" () in
  Alcotest.(check int) "content diff caught" 1 s3.Sync.copied

let test_until_stable () =
  let src = Vfs.memory () and dst = Vfs.memory () in
  let f = Vfs.create src "shard/x" in
  Vfs.append src f "data";
  Vfs.close src f;
  let stats, stable = Sync.until_stable ~src ~src_dir:"shard" ~dst ~dst_dir:"spare" () in
  Alcotest.(check bool) "stable" true stable;
  Alcotest.(check int) "one file" 1 stats.Sync.copied

(* The full §2.2 story: a live shard continuously archived to a spare;
   the shard dies; the spare takes over with a consistent database that
   holds a prefix of the shard's flushed state. *)
let test_failover_to_spare () =
  let clock = Clock.manual ~start:Support.ts0 () in
  let shard_vfs = Vfs.memory () and spare_vfs = Vfs.memory () in
  let db = Db.open_ ~config ~clock ~vfs:shard_vfs ~dir:"shard" () in
  let t = Db.create_table db "usage" (Support.usage_schema ()) ~ttl:None in
  let insert_batch base n =
    Table.insert t
      (List.init n (fun i ->
           Support.usage_row ~network:1L ~device:(Int64.of_int (base + i))
             ~ts:(Int64.add (Clock.now clock) (Int64.of_int (base + i)))
             ~bytes:(Int64.of_int (base + i)) ~rate:0.0))
  in
  (* Several rounds of inserts, flushes, merges, and archival passes. *)
  for round = 0 to 4 do
    insert_batch (round * 100) 50;
    Table.flush_all t;
    ignore (Table.merge_step t);
    let _, stable =
      Lt_vfs.Sync.until_stable ~src:shard_vfs ~src_dir:"shard" ~dst:spare_vfs
        ~dst_dir:"spare" ()
    in
    Alcotest.(check bool) "sync stabilized" true stable
  done;
  (* More inserts after the last archival: flushed on the shard but never
     synced — lost in the failover, like a crash's unflushed tail. *)
  insert_batch 900 25;
  Table.flush_all t;
  (* Shard dies. Spare takes over: open the database from the replica. *)
  let spare_db = Db.open_ ~config ~clock ~vfs:spare_vfs ~dir:"spare" () in
  let spare_t = Db.table spare_db "usage" in
  let rows = (Table.query spare_t Query.all).Table.rows in
  Alcotest.(check int) "all archived rows present" 250 (List.length rows);
  (* The spare holds exactly the archived rounds' devices: five blocks
     of 50 starting at multiples of 100, and none of the post-archival
     batch (900..924). *)
  let devices =
    List.sort compare (List.map (fun r -> Support.int64_of_cell r.(1)) rows)
  in
  let expected =
    List.concat_map
      (fun round -> List.init 50 (fun i -> Int64.of_int ((round * 100) + i)))
      [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "prefix" true (devices = expected);
  (* The spare is fully operational: writes and reads continue. *)
  Table.insert spare_t
    [ Support.usage_row ~network:2L ~device:1L ~ts:(Clock.now clock) ~bytes:0L ~rate:0.0 ];
  Alcotest.(check int) "spare accepts writes" 251
    (List.length (Table.query spare_t Query.all).Table.rows)

let test_sync_mid_merge_consistency () =
  (* Sync while the source keeps changing (merges delete tablets): the
     loop must converge and the spare must always be openable. *)
  let clock = Clock.manual ~start:Support.ts0 () in
  let shard_vfs = Vfs.memory () and spare_vfs = Vfs.memory () in
  let db = Db.open_ ~config ~clock ~vfs:shard_vfs ~dir:"shard" () in
  let t = Db.create_table db "usage" (Support.usage_schema ()) ~ttl:None in
  for round = 0 to 9 do
    Table.insert t
      (List.init 30 (fun i ->
           Support.usage_row ~network:1L ~device:(Int64.of_int ((round * 30) + i))
             ~ts:(Int64.add (Clock.now clock) (Int64.of_int ((round * 30) + i)))
             ~bytes:0L ~rate:0.0));
    Table.flush_all t;
    (* Interleave: one sync pass, then a merge (changing files), then
       sync until stable. *)
    ignore (Lt_vfs.Sync.pass ~src:shard_vfs ~src_dir:"shard" ~dst:spare_vfs ~dst_dir:"spare" ());
    while Table.merge_step t do () done;
    ignore
      (Lt_vfs.Sync.until_stable ~src:shard_vfs ~src_dir:"shard" ~dst:spare_vfs
         ~dst_dir:"spare" ())
  done;
  let spare_db = Db.open_ ~config ~clock ~vfs:spare_vfs ~dir:"spare" () in
  let spare_t = Db.table spare_db "usage" in
  Alcotest.(check int) "all rows on spare" 300
    (List.length (Table.query spare_t Query.all).Table.rows)

(* Random file trees: after until_stable, src and dst are identical. *)
let prop_sync_reaches_equality =
  QCheck.Test.make ~name:"sync: until_stable makes trees equal" ~count:100
    QCheck.(pair
              (list_of_size Gen.(int_bound 12)
                 (pair (int_bound 5) (string_gen_of_size Gen.(int_bound 40) Gen.printable)))
              (list_of_size Gen.(int_bound 12)
                 (pair (int_bound 5) (string_gen_of_size Gen.(int_bound 40) Gen.printable))))
    (fun (src_files, stale_files) ->
      let src = Vfs.memory () and dst = Vfs.memory () in
      let write vfs root (i, data) =
        let path = Printf.sprintf "%s/t%d/f%d" root (i mod 3) i in
        Vfs.mkdir_p vfs (Filename.dirname path);
        let f = Vfs.create vfs path in
        Vfs.append vfs f data;
        Vfs.close vfs f
      in
      List.iter (write src "s") src_files;
      List.iter (write dst "d") stale_files;
      let _, stable = Sync.until_stable ~src ~src_dir:"s" ~dst ~dst_dir:"d" () in
      if not stable then false
      else begin
        (* Every src file present with equal content; no extras. *)
        let rec walk vfs dir =
          List.concat_map
            (fun name ->
              let p = Filename.concat dir name in
              match walk vfs p with [] -> [ p ] | deeper -> deeper)
            (try Vfs.readdir vfs dir with Vfs.Io_error _ -> [])
        in
        let rel root p = String.sub p (String.length root + 1) (String.length p - String.length root - 1) in
        let src_list = List.sort compare (List.map (rel "s") (walk src "s")) in
        let dst_list = List.sort compare (List.map (rel "d") (walk dst "d")) in
        src_list = dst_list
        && List.for_all
             (fun r ->
               Vfs.read_all src (Filename.concat "s" r)
               = Vfs.read_all dst (Filename.concat "d" r))
             src_list
      end)

let suite =
  [
    ("pass copies and prunes", `Quick, test_pass_copies_and_prunes);
    ("until_stable", `Quick, test_until_stable);
    ("failover to warm spare", `Quick, test_failover_to_spare);
    ("sync during merges stays consistent", `Quick, test_sync_mid_merge_consistency);
    Support.qcheck prop_sync_reaches_equality;
  ]
