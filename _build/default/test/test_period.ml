open Littletable
open Lt_util

let day = Clock.day
let hour = Clock.hour
let week = Clock.week

(* A "now" on a Wednesday-ish, well inside a week: some arbitrary large
   epoch time plus offsets to avoid boundary coincidences. *)
let now = Int64.add (Int64.mul 2840L week) (Int64.add (Int64.mul 3L day) (Int64.mul 5L hour))

let test_class_lengths () =
  Alcotest.(check int64) "4h" (Int64.mul 4L hour) (Period.class_length Period.Four_hour);
  Alcotest.(check int64) "day" day (Period.class_length Period.Day);
  Alcotest.(check int64) "week" week (Period.class_length Period.Week)

let test_align () =
  Alcotest.(check int64) "exact" 100L (Period.align 100L ~unit_len:50L);
  Alcotest.(check int64) "down" 100L (Period.align 149L ~unit_len:50L);
  Alcotest.(check int64) "zero" 0L (Period.align 49L ~unit_len:50L);
  (* Pre-epoch rounds toward negative infinity. *)
  Alcotest.(check int64) "negative" (-50L) (Period.align (-1L) ~unit_len:50L)

let test_bin_today () =
  (* A timestamp in the current epoch-aligned day gets a 4-hour bin. *)
  let ts = Int64.add (Period.align now ~unit_len:day) (Int64.mul 2L hour) in
  let p = Period.bin ~now ts in
  Alcotest.(check bool) "class" true (p.Period.cls = Period.Four_hour);
  Alcotest.(check int64) "aligned" (Period.align ts ~unit_len:(Int64.mul 4L hour))
    p.Period.start;
  Alcotest.(check bool) "contains ts" true
    (ts >= p.Period.start && ts < Period.stop p)

let test_bin_this_week () =
  (* Yesterday (within the aligned week, before the aligned day). *)
  let ts = Int64.sub (Period.align now ~unit_len:day) (Int64.mul 3L hour) in
  let p = Period.bin ~now ts in
  Alcotest.(check bool) "class day" true (p.Period.cls = Period.Day);
  Alcotest.(check int64) "day aligned" (Period.align ts ~unit_len:day) p.Period.start

let test_bin_older () =
  let ts = Int64.sub now (Int64.mul 3L week) in
  let p = Period.bin ~now ts in
  Alcotest.(check bool) "class week" true (p.Period.cls = Period.Week);
  Alcotest.(check int64) "week aligned" (Period.align ts ~unit_len:week) p.Period.start

let test_bin_future () =
  (* Future timestamps land in 4-hour bins of their own. *)
  let ts = Int64.add now (Int64.mul 30L day) in
  let p = Period.bin ~now ts in
  Alcotest.(check bool) "future is 4h" true (p.Period.cls = Period.Four_hour);
  Alcotest.(check bool) "contains" true (ts >= p.Period.start && ts < Period.stop p)

let test_classify_ages () =
  (* The same timestamp reclassifies as now advances: 4h -> day -> week. *)
  let ts = Int64.add (Period.align now ~unit_len:day) hour in
  Alcotest.(check bool) "fresh: 4h" true (Period.classify ~now ts = Period.Four_hour);
  let later = Int64.add now (Int64.mul 2L day) in
  Alcotest.(check bool) "later: day" true (Period.classify ~now:later ts = Period.Day);
  let much_later = Int64.add now (Int64.mul 3L week) in
  Alcotest.(check bool) "much later: week" true
    (Period.classify ~now:much_later ts = Period.Week)

let prop_bin_contains_ts =
  QCheck.Test.make ~name:"bin always contains its timestamp" ~count:2000
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 2_000_000_000))
    (fun (now_s, ts_s) ->
      let now = Int64.mul (Int64.of_int now_s) 1_000_000L in
      let ts = Int64.mul (Int64.of_int ts_s) 1_000_000L in
      let p = Period.bin ~now ts in
      ts >= p.Period.start && ts < Period.stop p)

let prop_bins_partition =
  (* Two timestamps binned under the same [now] land in the same bin iff
     their bins' intervals intersect — bins of one class tile time. *)
  QCheck.Test.make ~name:"bins of equal class are disjoint or equal" ~count:2000
    QCheck.(triple (int_bound 1_000_000_000) (int_bound 2_000_000_000)
              (int_bound 2_000_000_000))
    (fun (now_s, a_s, b_s) ->
      let now = Int64.mul (Int64.of_int now_s) 1_000_000L in
      let a = Period.bin ~now (Int64.mul (Int64.of_int a_s) 1_000_000L) in
      let b = Period.bin ~now (Int64.mul (Int64.of_int b_s) 1_000_000L) in
      if a.Period.cls = b.Period.cls then
        a.Period.start = b.Period.start
        || Period.stop a <= b.Period.start
        || Period.stop b <= a.Period.start
      else true)

let suite =
  [
    ("class lengths", `Quick, test_class_lengths);
    ("align", `Quick, test_align);
    ("bin: today is 4h", `Quick, test_bin_today);
    ("bin: this week is day", `Quick, test_bin_this_week);
    ("bin: older is week", `Quick, test_bin_older);
    ("bin: future is 4h", `Quick, test_bin_future);
    ("classify ages with now", `Quick, test_classify_ages);
    Support.qcheck prop_bin_contains_ts;
    Support.qcheck prop_bins_partition;
  ]
