open Littletable

let drain it =
  let rec go acc =
    match Avl.next it with None -> List.rev acc | Some kv -> go (kv :: acc)
  in
  go []

let keys it = List.map fst (drain it)

let build kvs =
  List.fold_left
    (fun t (k, v) ->
      match Avl.insert k v t with `Ok t -> t | `Duplicate -> t)
    Avl.empty kvs

let test_basic () =
  let t = build [ ("b", 2); ("a", 1); ("c", 3) ] in
  Alcotest.(check int) "length" 3 (Avl.length t);
  Alcotest.(check bool) "find" true (Avl.find "b" t = Some 2);
  Alcotest.(check bool) "find missing" true (Avl.find "x" t = None);
  Alcotest.(check bool) "mem" true (Avl.mem "c" t);
  Alcotest.(check bool) "min" true (Avl.min_key t = Some "a");
  Alcotest.(check bool) "max" true (Avl.max_key t = Some "c");
  Alcotest.(check (list string)) "asc" [ "a"; "b"; "c" ] (keys (Avl.iter_asc t));
  Alcotest.(check (list string)) "desc" [ "c"; "b"; "a" ] (keys (Avl.iter_desc t))

let test_empty () =
  Alcotest.(check bool) "is_empty" true (Avl.is_empty Avl.empty);
  Alcotest.(check int) "length" 0 (Avl.length Avl.empty);
  Alcotest.(check bool) "min" true (Avl.min_key Avl.empty = None);
  Alcotest.(check (list string)) "iter" [] (keys (Avl.iter_asc Avl.empty))

let test_duplicate_rejected () =
  let t = build [ ("k", 1) ] in
  match Avl.insert "k" 2 t with
  | `Duplicate -> Alcotest.(check bool) "value untouched" true (Avl.find "k" t = Some 1)
  | `Ok _ -> Alcotest.fail "duplicate accepted"

let test_persistence () =
  let t1 = build [ ("a", 1) ] in
  let t2 = match Avl.insert "b" 2 t1 with `Ok t -> t | `Duplicate -> assert false in
  (* The old root still sees only its own contents. *)
  Alcotest.(check int) "old length" 1 (Avl.length t1);
  Alcotest.(check bool) "old misses b" false (Avl.mem "b" t1);
  Alcotest.(check int) "new length" 2 (Avl.length t2)

let test_range_bounds () =
  let t = build (List.init 10 (fun i -> (Printf.sprintf "k%02d" i, i))) in
  Alcotest.(check (list string)) "lo only" [ "k07"; "k08"; "k09" ]
    (keys (Avl.iter_asc ~lo:"k07" t));
  Alcotest.(check (list string)) "hi only" [ "k00"; "k01" ]
    (keys (Avl.iter_asc ~hi:"k02" t));
  Alcotest.(check (list string)) "both" [ "k03"; "k04" ]
    (keys (Avl.iter_asc ~lo:"k03" ~hi:"k05" t));
  Alcotest.(check (list string)) "desc both" [ "k04"; "k03" ]
    (keys (Avl.iter_desc ~lo:"k03" ~hi:"k05" t));
  Alcotest.(check (list string)) "empty range" []
    (keys (Avl.iter_asc ~lo:"k05" ~hi:"k05" t));
  Alcotest.(check (list string)) "lo between keys" [ "k04" ]
    (keys (Avl.iter_asc ~lo:"k035" ~hi:"k05" t))

let test_fold () =
  let t = build [ ("a", 1); ("b", 2); ("c", 4) ] in
  Alcotest.(check int) "sum" 7 (Avl.fold (fun _ v acc -> acc + v) t 0)

let kv_list_gen =
  QCheck.(list_of_size Gen.(int_bound 400)
            (pair (string_gen_of_size Gen.(int_bound 6) Gen.printable) small_int))

let prop_model_vs_map =
  QCheck.Test.make ~name:"avl behaves like Map" ~count:300 kv_list_gen
    (fun kvs ->
      let module M = Map.Make (String) in
      let avl = ref Avl.empty and map = ref M.empty in
      List.iter
        (fun (k, v) ->
          match Avl.insert k v !avl with
          | `Ok t ->
              if M.mem k !map then raise Exit;
              avl := t;
              map := M.add k v !map
          | `Duplicate -> if not (M.mem k !map) then raise Exit)
        kvs;
      Avl.invariant_ok !avl
      && Avl.length !avl = M.cardinal !map
      && drain (Avl.iter_asc !avl) = M.bindings !map
      && drain (Avl.iter_desc !avl) = List.rev (M.bindings !map))

let prop_range_vs_filter =
  QCheck.Test.make ~name:"avl range = filtered bindings" ~count:300
    QCheck.(triple kv_list_gen
              (string_gen_of_size Gen.(int_bound 6) Gen.printable)
              (string_gen_of_size Gen.(int_bound 6) Gen.printable))
    (fun (kvs, lo, hi) ->
      let t = build kvs in
      let all = drain (Avl.iter_asc t) in
      let expect =
        List.filter (fun (k, _) -> String.compare k lo >= 0 && String.compare k hi < 0) all
      in
      drain (Avl.iter_asc ~lo ~hi t) = expect
      && drain (Avl.iter_desc ~lo ~hi t) = List.rev expect)

let test_balanced_under_sequential_insert () =
  (* The adversarial case for unbalanced BSTs: sorted insertion. *)
  let t =
    List.fold_left
      (fun t i ->
        match Avl.insert (Printf.sprintf "%06d" i) i t with
        | `Ok t -> t
        | `Duplicate -> assert false)
      Avl.empty
      (List.init 10_000 Fun.id)
  in
  Alcotest.(check bool) "invariant" true (Avl.invariant_ok t);
  Alcotest.(check int) "length" 10_000 (Avl.length t)

let suite =
  [
    ("basic ops", `Quick, test_basic);
    ("empty tree", `Quick, test_empty);
    ("duplicate rejected", `Quick, test_duplicate_rejected);
    ("persistence (snapshots)", `Quick, test_persistence);
    ("range bounds", `Quick, test_range_bounds);
    ("fold", `Quick, test_fold);
    ("balanced under sorted insert", `Quick, test_balanced_under_sequential_insert);
    Support.qcheck prop_model_vs_map;
    Support.qcheck prop_range_vs_filter;
  ]
