open Littletable

let schema = Support.usage_schema ()

let key net dev ts =
  Key_codec.encode_key schema
    (Support.usage_row ~network:net ~device:dev ~ts ~bytes:0L ~rate:0.0)

let row tag = [| Value.Int64 tag |]

let source_of_list entries =
  let remaining = ref entries in
  fun () ->
    match !remaining with
    | [] -> None
    | kv :: tl ->
        remaining := tl;
        Some kv

let keys_of src = List.map fst (Cursor.to_list src)

let test_merge_interleaves () =
  let a = [ (key 1L 1L 1L, row 1L); (key 1L 3L 1L, row 3L) ] in
  let b = [ (key 1L 2L 1L, row 2L); (key 1L 4L 1L, row 4L) ] in
  let merged =
    Cursor.merge ~asc:true [ (1, source_of_list a); (2, source_of_list b) ]
  in
  Alcotest.(check (list string)) "sorted"
    [ key 1L 1L 1L; key 1L 2L 1L; key 1L 3L 1L; key 1L 4L 1L ]
    (keys_of merged)

let test_merge_desc () =
  let a = [ (key 1L 3L 1L, row 3L); (key 1L 1L 1L, row 1L) ] in
  let b = [ (key 1L 2L 1L, row 2L) ] in
  let merged =
    Cursor.merge ~asc:false [ (1, source_of_list a); (2, source_of_list b) ]
  in
  Alcotest.(check (list string)) "reverse sorted"
    [ key 1L 3L 1L; key 1L 2L 1L; key 1L 1L 1L ]
    (keys_of merged)

let test_merge_dedup_priority () =
  (* Same key in two sources: the higher-priority (newer tablet) wins. *)
  let k = key 1L 1L 1L in
  let old_src = [ (k, row 100L) ] and new_src = [ (k, row 200L) ] in
  let merged =
    Cursor.merge ~asc:true [ (1, source_of_list old_src); (9, source_of_list new_src) ]
  in
  (match Cursor.to_list merged with
  | [ (_, r) ] -> Alcotest.(check bool) "newer row" true (r = row 200L)
  | l -> Alcotest.failf "expected 1 row, got %d" (List.length l));
  (* Three-way duplicate. *)
  let merged =
    Cursor.merge ~asc:true
      [ (1, source_of_list [ (k, row 1L) ]);
        (3, source_of_list [ (k, row 3L) ]);
        (2, source_of_list [ (k, row 2L) ]) ]
  in
  match Cursor.to_list merged with
  | [ (_, r) ] -> Alcotest.(check bool) "highest priority" true (r = row 3L)
  | l -> Alcotest.failf "expected 1 row, got %d" (List.length l)

let test_merge_empty_sources () =
  Alcotest.(check int) "no sources" 0 (List.length (Cursor.to_list (Cursor.merge ~asc:true [])));
  let merged =
    Cursor.merge ~asc:true
      [ (1, source_of_list []); (2, source_of_list [ (key 1L 1L 1L, row 1L) ]) ]
  in
  Alcotest.(check int) "one empty source" 1 (List.length (Cursor.to_list merged))

let test_filter_ts () =
  let entries =
    [ (key 1L 1L 10L, row 1L); (key 1L 1L 20L, row 2L); (key 1L 1L 30L, row 3L) ]
  in
  let scanned = ref 0 in
  let src =
    Cursor.filter_ts ~scanned ~ts_min:15L ~ts_max:25L (source_of_list entries)
  in
  Alcotest.(check (list string)) "in window" [ key 1L 1L 20L ] (keys_of src);
  Alcotest.(check int) "scanned counts everything" 3 !scanned;
  (* Unbounded sides. *)
  let scanned = ref 0 in
  let src = Cursor.filter_ts ~scanned ~ts_min:20L (source_of_list entries) in
  Alcotest.(check int) "min only" 2 (List.length (Cursor.to_list src));
  let scanned = ref 0 in
  let src = Cursor.filter_ts ~scanned (source_of_list entries) in
  Alcotest.(check int) "no bounds" 3 (List.length (Cursor.to_list src))

let test_take () =
  let entries = List.init 10 (fun i -> (key 1L (Int64.of_int i) 1L, row (Int64.of_int i))) in
  Alcotest.(check int) "take 3" 3
    (List.length (Cursor.to_list (Cursor.take 3 (source_of_list entries))));
  Alcotest.(check int) "take 0" 0
    (List.length (Cursor.to_list (Cursor.take 0 (source_of_list entries))));
  Alcotest.(check int) "take beyond" 10
    (List.length (Cursor.to_list (Cursor.take 99 (source_of_list entries))))

let prop_merge_equals_sorted_union =
  QCheck.Test.make ~name:"merge = sorted union of disjoint sources" ~count:300
    QCheck.(pair (list (pair (int_bound 50) (int_bound 1000)))
              (list (pair (int_bound 50) (int_bound 1000))))
    (fun (xs, ys) ->
      (* Build disjoint key sets: evens from xs, odds from ys. *)
      let mk parity (d, ts) = (key 1L (Int64.of_int ((d * 2) + parity)) (Int64.of_int ts), row 0L) in
      let dedup l =
        List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) l
      in
      let a = dedup (List.map (mk 0) xs) and b = dedup (List.map (mk 1) ys) in
      let merged =
        Cursor.merge ~asc:true [ (1, source_of_list a); (2, source_of_list b) ]
      in
      let expect = List.map fst (List.sort compare (a @ b)) in
      keys_of merged = expect)

(* ---- Query compilation edge cases ------------------------------------ *)

let compile q = Query.compile schema q

let test_compile_prefix_ranges () =
  (* Inclusive prefix on both sides = byte-prefix range. *)
  let q = Query.prefix [ Value.Int64 5L ] in
  (match compile q with
  | Some c ->
      let enc = Key_codec.encode_prefix schema [ Value.Int64 5L ] in
      Alcotest.(check string) "lo" enc c.Query.lo;
      Alcotest.(check bool) "hi = succ" true (c.Query.hi = Key_codec.prefix_succ enc)
  | None -> Alcotest.fail "compilable");
  (* Unbounded both sides. *)
  (match compile Query.all with
  | Some c ->
      Alcotest.(check string) "lo empty" "" c.Query.lo;
      Alcotest.(check bool) "hi none" true (c.Query.hi = None)
  | None -> Alcotest.fail "all compiles")

let test_compile_empty_ranges () =
  (* lo > hi is provably empty. *)
  let q =
    { Query.all with
      Query.key_low = Query.Incl [ Value.Int64 9L ];
      Query.key_high = Query.Excl [ Value.Int64 3L ] }
  in
  Alcotest.(check bool) "empty range" true (compile q = None);
  (* Exclusive low of a prefix excludes the whole subtree. *)
  let q =
    { Query.all with
      Query.key_low = Query.Excl [ Value.Int64 5L ];
      Query.key_high = Query.Incl [ Value.Int64 5L ] }
  in
  Alcotest.(check bool) "excl kills incl of same prefix" true (compile q = None)

let test_compile_exclusive_bounds () =
  let q =
    { Query.all with
      Query.key_low = Query.Excl [ Value.Int64 5L ];
      Query.key_high = Query.Excl [ Value.Int64 7L ] }
  in
  match compile q with
  | Some c ->
      let e5 = Key_codec.encode_prefix schema [ Value.Int64 5L ] in
      let e7 = Key_codec.encode_prefix schema [ Value.Int64 7L ] in
      Alcotest.(check bool) "lo succ(5)" true (Some c.Query.lo = Key_codec.prefix_succ e5);
      Alcotest.(check bool) "hi = 7" true (c.Query.hi = Some e7)
  | None -> Alcotest.fail "compilable"

let test_query_builders () =
  let q = Query.between ~ts_min:10L ~ts_max:20L Query.all in
  Alcotest.(check bool) "bounds" true (q.Query.ts_min = Some 10L && q.Query.ts_max = Some 20L);
  (* Narrowing composes. *)
  let q = Query.between ~ts_min:15L ~ts_max:30L q in
  Alcotest.(check bool) "intersection" true (q.Query.ts_min = Some 15L && q.Query.ts_max = Some 20L);
  let q = Query.with_limit 5 (Query.with_direction Query.Desc q) in
  Alcotest.(check bool) "direction+limit" true
    (q.Query.direction = Query.Desc && q.Query.limit = Some 5);
  (* pp does not raise. *)
  Alcotest.(check bool) "pp" true (String.length (Format.asprintf "%a" Query.pp q) > 0)

let suite =
  [
    ("merge interleaves", `Quick, test_merge_interleaves);
    ("merge descending", `Quick, test_merge_desc);
    ("merge dedup by priority", `Quick, test_merge_dedup_priority);
    ("merge with empty sources", `Quick, test_merge_empty_sources);
    ("filter_ts", `Quick, test_filter_ts);
    ("take", `Quick, test_take);
    ("compile prefix ranges", `Quick, test_compile_prefix_ranges);
    ("compile empty ranges", `Quick, test_compile_empty_ranges);
    ("compile exclusive bounds", `Quick, test_compile_exclusive_bounds);
    ("query builders", `Quick, test_query_builders);
    Support.qcheck prop_merge_equals_sorted_union;
  ]
