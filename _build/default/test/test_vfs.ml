open Lt_vfs

let test_memory_basic () =
  let v = Vfs.memory () in
  let f = Vfs.create v "dir/a.txt" in
  Vfs.append v f "hello ";
  Vfs.append v f "world";
  Alcotest.(check int) "size" 11 (Vfs.file_size v f);
  Alcotest.(check string) "pread" "world" (Vfs.pread v f ~off:6 ~len:5);
  Alcotest.(check string) "read_all" "hello world" (Vfs.read_all v "dir/a.txt");
  Alcotest.(check bool) "exists" true (Vfs.exists v "dir/a.txt");
  Alcotest.(check bool) "missing" false (Vfs.exists v "dir/b.txt");
  Vfs.delete v "dir/a.txt";
  Alcotest.(check bool) "deleted" false (Vfs.exists v "dir/a.txt")

let test_memory_pread_bounds () =
  let v = Vfs.memory () in
  let f = Vfs.create v "x" in
  Vfs.append v f "abc";
  match Vfs.pread v f ~off:2 ~len:5 with
  | (_ : string) -> Alcotest.fail "expected Io_error"
  | exception Vfs.Io_error _ -> ()

let test_memory_readdir () =
  let v = Vfs.memory () in
  ignore (Vfs.create v "root/t1/DESCRIPTOR");
  ignore (Vfs.create v "root/t1/000001.tab");
  ignore (Vfs.create v "root/t2/DESCRIPTOR");
  ignore (Vfs.create v "root/top.txt");
  Alcotest.(check (list string)) "root entries" [ "t1"; "t2"; "top.txt" ]
    (Vfs.readdir v "root");
  Alcotest.(check (list string)) "table entries" [ "000001.tab"; "DESCRIPTOR" ]
    (Vfs.readdir v "root/t1")

let test_rename_replaces () =
  let v = Vfs.memory () in
  let f = Vfs.create v "a" in
  Vfs.append v f "new";
  let g = Vfs.create v "b" in
  Vfs.append v g "old";
  Vfs.rename v ~src:"a" ~dst:"b";
  Alcotest.(check string) "replaced" "new" (Vfs.read_all v "b");
  Alcotest.(check bool) "source gone" false (Vfs.exists v "a")

let test_crash_durability () =
  let v = Vfs.memory () in
  (* File 1: synced fully -> survives. *)
  let f1 = Vfs.create v "synced" in
  Vfs.append v f1 "durable";
  Vfs.fsync v f1;
  (* File 2: synced then appended more -> truncates to synced prefix. *)
  let f2 = Vfs.create v "partial" in
  Vfs.append v f2 "keep";
  Vfs.fsync v f2;
  Vfs.append v f2 "-lost";
  (* File 3: never synced -> disappears. *)
  let f3 = Vfs.create v "volatile" in
  Vfs.append v f3 "gone";
  (* File 4: published by rename -> durable at rename-time content. *)
  let f4 = Vfs.create v "tmp" in
  Vfs.append v f4 "renamed";
  Vfs.rename v ~src:"tmp" ~dst:"published";
  Vfs.crash v;
  Alcotest.(check string) "synced survives" "durable" (Vfs.read_all v "synced");
  Alcotest.(check string) "partial truncated" "keep" (Vfs.read_all v "partial");
  Alcotest.(check bool) "unsynced gone" false (Vfs.exists v "volatile");
  Alcotest.(check string) "renamed survives" "renamed" (Vfs.read_all v "published")

let test_faulty () =
  let armed = ref false in
  let v =
    Vfs.faulty
      ~should_fail:(fun ~op ~path:_ -> !armed && op = "append")
      (Vfs.memory ())
  in
  let f = Vfs.create v "x" in
  Vfs.append v f "ok";
  armed := true;
  (match Vfs.append v f "boom" with
  | () -> Alcotest.fail "expected Io_error"
  | exception Vfs.Io_error _ -> ());
  armed := false;
  Vfs.append v f "fine";
  Alcotest.(check string) "partial content" "okfine" (Vfs.read_all v "x")

let test_real_roundtrip () =
  let dir = Filename.temp_file "lt_vfs" "" in
  Sys.remove dir;
  let v = Vfs.real () in
  Vfs.mkdir_p v (Filename.concat dir "sub");
  let path = Filename.concat dir "sub/file.bin" in
  let f = Vfs.create v path in
  Vfs.append v f "0123456789";
  Vfs.fsync v f;
  Alcotest.(check string) "pread middle" "345" (Vfs.pread v f ~off:3 ~len:3);
  Vfs.close v f;
  Alcotest.(check string) "read_all" "0123456789" (Vfs.read_all v path);
  Vfs.rename v ~src:path ~dst:(Filename.concat dir "sub/renamed.bin");
  Alcotest.(check (list string)) "readdir" [ "renamed.bin" ]
    (Vfs.readdir v (Filename.concat dir "sub"));
  Vfs.delete v (Filename.concat dir "sub/renamed.bin");
  Unix.rmdir (Filename.concat dir "sub");
  Unix.rmdir dir

(* --- Disk model ------------------------------------------------------ *)

let model_vfs ?config () =
  let model = Disk_model.create ?config () in
  let v = Vfs.with_model model (Vfs.memory ()) in
  (model, v)

let test_model_sequential_write () =
  let model, v = model_vfs () in
  let f = Vfs.create v "seq" in
  (* 12 MB in 1 MB appends: head stays at end of file -> no seeks. *)
  let chunk = String.make (1 lsl 20) 'x' in
  for _ = 1 to 12 do
    Vfs.append v f chunk
  done;
  Alcotest.(check int) "no seeks" 0 (Disk_model.seeks model);
  let t = Disk_model.elapsed_s model in
  (* 12 MB at 120 MB/s = 0.1 s. *)
  if Float.abs (t -. 0.1) > 0.005 then Alcotest.failf "elapsed %.4f, want ~0.1" t

let test_model_seek_cost () =
  let model, v = model_vfs ~config:(Disk_model.config ~cache_bytes:0 ()) () in
  let f = Vfs.create v "f" in
  Vfs.append v f (String.make (1 lsl 20) 'y');
  Disk_model.reset model;
  (* Alternate between two far-apart offsets: every read seeks. *)
  for _ = 1 to 10 do
    ignore (Vfs.pread v f ~off:0 ~len:512);
    ignore (Vfs.pread v f ~off:900_000 ~len:512)
  done;
  Alcotest.(check int) "20 seeks" 20 (Disk_model.seeks model);
  let t = Disk_model.elapsed_s model in
  (* Dominated by 20 * 8 ms = 0.16 s. *)
  if t < 0.16 then Alcotest.failf "elapsed %.4f < seek floor" t

let test_model_readahead_serves_sequential () =
  let model, v = model_vfs () in
  let f = Vfs.create v "ra" in
  Vfs.append v f (String.make (1 lsl 20) 'z');
  Disk_model.reset model;
  Disk_model.clear_cache model;
  (* 64 KiB sequential reads within one 128 KiB readahead window: the
     second read of each pair is a cache hit. *)
  ignore (Vfs.pread v f ~off:0 ~len:65536);
  let seeks_after_first = Disk_model.seeks model in
  ignore (Vfs.pread v f ~off:65536 ~len:65536);
  Alcotest.(check int) "second read cached" seeks_after_first
    (Disk_model.seeks model);
  Alcotest.(check int) "bytes fetched = readahead" (128 * 1024)
    (Disk_model.bytes_read model)

let test_model_open_charges_inode_seek () =
  let model, v = model_vfs () in
  let f = Vfs.create v "file" in
  Vfs.append v f "data";
  Disk_model.reset model;
  ignore (Vfs.open_read v "file");
  Alcotest.(check int) "inode seek" 1 (Disk_model.seeks model)

let test_model_rename_keeps_extent () =
  let model, v = model_vfs () in
  let f = Vfs.create v "a" in
  Vfs.append v f (String.make 1024 'a');
  Vfs.rename v ~src:"a" ~dst:"b";
  Disk_model.reset model;
  Disk_model.clear_cache model;
  let g = Vfs.open_read v "b" in
  ignore (Vfs.pread v g ~off:0 ~len:1024);
  (* open (1 seek) + first read (1 seek): extent tracked under new name. *)
  Alcotest.(check int) "two seeks" 2 (Disk_model.seeks model)

let suite =
  [
    ("memory: basic ops", `Quick, test_memory_basic);
    ("memory: pread bounds", `Quick, test_memory_pread_bounds);
    ("memory: readdir", `Quick, test_memory_readdir);
    ("memory: rename replaces", `Quick, test_rename_replaces);
    ("memory: crash durability", `Quick, test_crash_durability);
    ("faulty wrapper", `Quick, test_faulty);
    ("real filesystem roundtrip", `Quick, test_real_roundtrip);
    ("model: sequential write", `Quick, test_model_sequential_write);
    ("model: seek cost", `Quick, test_model_seek_cost);
    ("model: readahead", `Quick, test_model_readahead_serves_sequential);
    ("model: open = inode seek", `Quick, test_model_open_charges_inode_seek);
    ("model: rename keeps extent", `Quick, test_model_rename_keeps_extent);
  ]
