(* Bulk delete (§7's planned privacy-compliance feature): engine, SQL,
   and wire-protocol layers. *)

open Littletable
open Lt_util

let schema () = Support.usage_schema ()

let config =
  Config.make ~block_size:1024 ~flush_size:(8 * 1024) ~merge_delay:0L
    ~rollover_spread:0.0 ()

let fresh () =
  let db, clock, vfs = Support.fresh_db ~config () in
  let t = Db.create_table db "usage" (schema ()) ~ttl:None in
  (db, clock, vfs, t)

let row net dev ts =
  Support.usage_row ~network:net ~device:dev ~ts ~bytes:0L ~rate:0.0

let all_tuples t = Support.usage_tuples (Table.query t Query.all).Table.rows

let populate t =
  (* Three networks x four devices, in memtable and on disk. *)
  List.iter
    (fun net ->
      Table.insert t (List.init 4 (fun d -> row net (Int64.of_int d) (Int64.of_int (d + 1)))))
    [ 1L; 2L; 3L ];
  Table.flush_all t;
  (* A second wave stays in memtables. *)
  List.iter
    (fun net ->
      Table.insert t (List.init 4 (fun d -> row net (Int64.of_int d) (Int64.of_int (d + 100)))))
    [ 1L; 2L; 3L ]

let test_delete_network () =
  let _, _, _, t = fresh () in
  populate t;
  Alcotest.(check int) "before" 24 (List.length (all_tuples t));
  let n = Table.delete_prefix t [ Value.Int64 2L ] in
  Alcotest.(check int) "deleted count" 8 n;
  let remaining = all_tuples t in
  Alcotest.(check int) "after" 16 (List.length remaining);
  Alcotest.(check bool) "network 2 gone" true
    (List.for_all (fun (net, _, _, _) -> net <> 2L) remaining);
  (* Keys can be reinserted after deletion (no tombstone residue). *)
  Table.insert_row t (row 2L 0L 1L);
  Alcotest.(check int) "reinsert ok" 17 (List.length (all_tuples t))

let test_delete_device () =
  let _, _, _, t = fresh () in
  populate t;
  let n = Table.delete_prefix t [ Value.Int64 1L; Value.Int64 2L ] in
  Alcotest.(check int) "one device, both waves" 2 n;
  Alcotest.(check bool) "device gone" true
    (List.for_all (fun (net, dev, _, _) -> not (net = 1L && dev = 2L)) (all_tuples t))

let test_delete_single_row () =
  let _, _, _, t = fresh () in
  populate t;
  let n =
    Table.delete_prefix t [ Value.Int64 1L; Value.Int64 0L; Value.Timestamp 1L ]
  in
  Alcotest.(check int) "exactly one" 1 n;
  Alcotest.(check int) "rest intact" 23 (List.length (all_tuples t))

let test_delete_everything () =
  let _, _, _, t = fresh () in
  populate t;
  let n = Table.delete_prefix t [] in
  Alcotest.(check int) "truncated" 24 n;
  Alcotest.(check int) "empty" 0 (List.length (all_tuples t));
  Alcotest.(check int) "no tablets" 0 (Table.tablet_count t)

let test_delete_absent_prefix () =
  let _, _, _, t = fresh () in
  populate t;
  Alcotest.(check int) "nothing deleted" 0 (Table.delete_prefix t [ Value.Int64 99L ]);
  Alcotest.(check int) "all intact" 24 (List.length (all_tuples t))

let test_delete_survives_reopen () =
  let _, clock, vfs, t = fresh () in
  populate t;
  ignore (Table.delete_prefix t [ Value.Int64 2L ]);
  Table.flush_all t;
  Table.close t;
  let t2 = Table.open_ vfs ~clock ~config ~dir:"dbroot/usage" ~name:"usage" in
  let remaining = Support.usage_tuples (Table.query t2 Query.all).Table.rows in
  Alcotest.(check bool) "durable" true
    (List.for_all (fun (net, _, _, _) -> net <> 2L) remaining);
  Alcotest.(check int) "count" 16 (List.length remaining)

let test_delete_type_mismatch () =
  let _, _, _, t = fresh () in
  match Table.delete_prefix t [ Value.String "oops" ] with
  | (_ : int) -> Alcotest.fail "bad prefix type accepted"
  | exception Schema.Invalid _ -> ()

let test_delete_then_latest_and_merge () =
  let _, _, _, t = fresh () in
  populate t;
  ignore (Table.delete_prefix t [ Value.Int64 1L ]);
  Alcotest.(check bool) "latest sees deletion" true
    (Table.latest t [ Value.Int64 1L ] = None);
  (* Merging after a delete keeps the deletion. *)
  while Table.merge_step t do () done;
  Alcotest.(check bool) "still gone after merge" true
    (List.for_all (fun (net, _, _, _) -> net <> 1L) (all_tuples t))

(* ---- SQL layer --------------------------------------------------------- *)

let sql_setup () =
  let db, _, _ = Support.fresh_db () in
  let b = Lt_sql.Executor.local_backend db in
  ignore
    (Lt_sql.Executor.execute b
       "CREATE TABLE usage (network INT64, device INT64, ts TIMESTAMP, \
        bytes INT64, PRIMARY KEY (network, device, ts))");
  ignore
    (Lt_sql.Executor.execute b
       "INSERT INTO usage (network, device, ts, bytes) VALUES \
        (1,1,10,5), (1,2,20,6), (2,1,30,7)");
  (b, db)

let test_sql_delete () =
  let b, _ = sql_setup () in
  (match Lt_sql.Executor.execute b "DELETE FROM usage WHERE network = 1" with
  | Lt_sql.Executor.Affected 2 -> ()
  | _ -> Alcotest.fail "expected 2 deleted");
  (match Lt_sql.Executor.execute b "SELECT COUNT(*) FROM usage" with
  | Lt_sql.Executor.Rows { rows = [ [| Value.Int64 1L |] ]; _ } -> ()
  | _ -> Alcotest.fail "one row left");
  (* Out-of-order equalities still form a prefix. *)
  (match
     Lt_sql.Executor.execute b "DELETE FROM usage WHERE device = 1 AND network = 2"
   with
  | Lt_sql.Executor.Affected 1 -> ()
  | _ -> Alcotest.fail "prefix in any order");
  (* Non-prefix or non-equality conditions are rejected. *)
  let bad sql =
    match Lt_sql.Executor.execute b sql with
    | (_ : Lt_sql.Executor.result) -> Alcotest.failf "accepted: %s" sql
    | exception Lt_sql.Executor.Exec_error _ -> ()
  in
  bad "DELETE FROM usage WHERE device = 1";
  bad "DELETE FROM usage WHERE network > 1";
  bad "DELETE FROM usage WHERE bytes = 5"

let test_sql_alter () =
  let b, db = sql_setup () in
  (match
     Lt_sql.Executor.execute b
       "ALTER TABLE usage ADD COLUMN errs INT32 DEFAULT -1"
   with
  | Lt_sql.Executor.Done _ -> ()
  | _ -> Alcotest.fail "add column");
  (match Lt_sql.Executor.execute b "SELECT errs FROM usage WHERE network = 1" with
  | Lt_sql.Executor.Rows { rows; _ } ->
      Alcotest.(check bool) "default visible" true
        (List.for_all (fun r -> r.(0) = Value.Int32 (-1l)) rows)
  | _ -> Alcotest.fail "select errs");
  (match Lt_sql.Executor.execute b "ALTER TABLE usage WIDEN COLUMN errs" with
  | Lt_sql.Executor.Done _ -> ()
  | _ -> Alcotest.fail "widen");
  (match Lt_sql.Executor.execute b "SELECT MAX(errs) FROM usage" with
  | Lt_sql.Executor.Rows { rows = [ [| Value.Int64 (-1L) |] ]; _ } -> ()
  | _ -> Alcotest.fail "widened type");
  (match Lt_sql.Executor.execute b "ALTER TABLE usage SET TTL 2 WEEKS" with
  | Lt_sql.Executor.Done _ -> ()
  | _ -> Alcotest.fail "set ttl");
  Alcotest.(check bool) "ttl applied" true
    (Table.ttl (Db.table db "usage") = Some (Int64.mul 2L Clock.week));
  (match Lt_sql.Executor.execute b "ALTER TABLE usage CLEAR TTL" with
  | Lt_sql.Executor.Done _ -> ()
  | _ -> Alcotest.fail "clear ttl");
  Alcotest.(check bool) "ttl cleared" true (Table.ttl (Db.table db "usage") = None)

(* ---- Wire protocol ------------------------------------------------------ *)

let test_net_delete_and_alter () =
  let dir = Filename.temp_file "lt_del_test" "" in
  Sys.remove dir;
  let db = Db.open_ ~dir () in
  let server = Lt_net.Server.start ~maintenance_period_s:0.0 ~db ~port:0 () in
  Fun.protect
    ~finally:(fun () ->
      Lt_net.Server.stop server;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let c = Lt_net.Client.connect ~port:(Lt_net.Server.port server) () in
      Lt_net.Client.create_table c "usage" (schema ()) ~ttl:None;
      Lt_net.Client.insert c "usage" [ row 1L 1L 1L; row 1L 2L 2L; row 2L 1L 3L ];
      Alcotest.(check int) "remote delete" 2
        (Lt_net.Client.delete_prefix c "usage" [ Value.Int64 1L ]);
      Alcotest.(check int) "one row remains" 1
        (List.length (Lt_net.Client.query_all c "usage" Query.all));
      (* Remote schema evolution; client cache invalidated. *)
      Lt_net.Client.add_column c "usage"
        { Schema.name = "flags"; ctype = Value.T_int32; default = Value.Int32 9l };
      let s, _ = Lt_net.Client.table_info c "usage" in
      Alcotest.(check int) "new arity" 6 (Schema.column_count s);
      Lt_net.Client.widen_column c "usage" ~column:"flags";
      Lt_net.Client.set_ttl c "usage" ~ttl:(Some Clock.week);
      let _, ttl = Lt_net.Client.table_info c "usage" in
      Alcotest.(check bool) "remote ttl" true (ttl = Some Clock.week);
      (* SQL over the wire drives the same paths. *)
      (match Lt_net.Client.sql c "DELETE FROM usage WHERE network = 2" with
      | Lt_sql.Executor.Affected 1 -> ()
      | _ -> Alcotest.fail "sql delete over wire");
      Lt_net.Client.close c)

(* Randomized inserts interleaved with prefix deletes, flushes, and
   merges, cross-checked against a hashtable reference model. *)
let prop_delete_matches_reference =
  QCheck.Test.make ~name:"delete matches reference model" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 80)
              (triple (int_bound 6) (int_bound 3) (int_bound 3)))
    (fun ops ->
      let _, _, _, t = fresh () in
      let reference = Hashtbl.create 64 in
      List.iteri
        (fun i (a, b, action) ->
          match action with
          | 0 | 1 ->
              (* Insert (net=a, dev=b, ts=i). *)
              let net = Int64.of_int a and dev = Int64.of_int b in
              let ts = Int64.of_int i in
              (try
                 Table.insert_row t (row net dev ts);
                 Hashtbl.replace reference (net, dev, ts) ()
               with Table.Duplicate_key _ -> ())
          | 2 ->
              (* Delete network a. *)
              let net = Int64.of_int a in
              ignore (Table.delete_prefix t [ Value.Int64 net ]);
              Hashtbl.iter
                (fun ((n, _, _) as k) () ->
                  if n = net then Hashtbl.remove reference k)
                (Hashtbl.copy reference)
          | _ ->
              if i mod 2 = 0 then Table.flush_all t
              else ignore (Table.merge_step t))
        ops;
      let got =
        List.map
          (fun (n, d, ts, _) -> (n, d, ts))
          (all_tuples t)
      in
      let expect =
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) reference [])
      in
      got = expect)

let suite =
  [
    ("delete a network", `Quick, test_delete_network);
    ("delete a device", `Quick, test_delete_device);
    ("delete a single row", `Quick, test_delete_single_row);
    ("delete everything (truncate)", `Quick, test_delete_everything);
    ("delete absent prefix", `Quick, test_delete_absent_prefix);
    ("delete survives reopen", `Quick, test_delete_survives_reopen);
    ("delete type mismatch", `Quick, test_delete_type_mismatch);
    ("delete then latest / merge", `Quick, test_delete_then_latest_and_merge);
    ("sql: DELETE", `Quick, test_sql_delete);
    ("sql: ALTER TABLE", `Quick, test_sql_alter);
    ("net: delete and alter over TCP", `Quick, test_net_delete_and_alter);
    Support.qcheck prop_delete_matches_reference;
  ]
