open Littletable

let sorted = List.sort compare

let test_closure_simple () =
  let g = Flush_graph.create () in
  (* 1 must flush before 2, 2 before 3. *)
  Flush_graph.add_edge g ~before:1 ~after:2;
  Flush_graph.add_edge g ~before:2 ~after:3;
  Alcotest.(check (list int)) "closure of 3" [ 1; 2; 3 ] (sorted (Flush_graph.closure g 3));
  Alcotest.(check (list int)) "closure of 2" [ 1; 2 ] (sorted (Flush_graph.closure g 2));
  Alcotest.(check (list int)) "closure of 1" [ 1 ] (Flush_graph.closure g 1)

let test_closure_no_deps () =
  let g = Flush_graph.create () in
  Alcotest.(check (list int)) "lone node" [ 7 ] (Flush_graph.closure g 7)

let test_self_edge_ignored () =
  let g = Flush_graph.create () in
  Flush_graph.add_edge g ~before:5 ~after:5;
  Alcotest.(check (list int)) "no self dep" [ 5 ] (Flush_graph.closure g 5)

let test_cycle () =
  (* Inserts alternating between two tablets create a cycle: they must
     flush together (§3.4.3). *)
  let g = Flush_graph.create () in
  Flush_graph.add_edge g ~before:1 ~after:2;
  Flush_graph.add_edge g ~before:2 ~after:1;
  Alcotest.(check (list int)) "cycle of 1" [ 1; 2 ] (sorted (Flush_graph.closure g 1));
  Alcotest.(check (list int)) "cycle of 2" [ 1; 2 ] (sorted (Flush_graph.closure g 2))

let test_diamond () =
  let g = Flush_graph.create () in
  Flush_graph.add_edge g ~before:1 ~after:2;
  Flush_graph.add_edge g ~before:1 ~after:3;
  Flush_graph.add_edge g ~before:2 ~after:4;
  Flush_graph.add_edge g ~before:3 ~after:4;
  Alcotest.(check (list int)) "diamond" [ 1; 2; 3; 4 ] (sorted (Flush_graph.closure g 4))

let test_remove () =
  let g = Flush_graph.create () in
  Flush_graph.add_edge g ~before:1 ~after:2;
  Flush_graph.add_edge g ~before:2 ~after:3;
  Flush_graph.remove g [ 1; 2 ];
  Alcotest.(check (list int)) "deps gone" [ 3 ] (Flush_graph.closure g 3);
  Alcotest.(check int) "graph emptied" 0 (Flush_graph.node_count g)

let test_remove_preserves_rest () =
  let g = Flush_graph.create () in
  Flush_graph.add_edge g ~before:1 ~after:2;
  Flush_graph.add_edge g ~before:3 ~after:4;
  Flush_graph.remove g [ 1; 2 ];
  Alcotest.(check (list int)) "other chain intact" [ 3; 4 ]
    (sorted (Flush_graph.closure g 4))

let prop_closure_is_transitive =
  (* If b is in closure(a) then closure(b) is a subset of closure(a). *)
  QCheck.Test.make ~name:"closure transitivity" ~count:200
    QCheck.(list_of_size Gen.(int_bound 30) (pair (int_bound 10) (int_bound 10)))
    (fun edges ->
      let g = Flush_graph.create () in
      List.iter (fun (b, a) -> Flush_graph.add_edge g ~before:b ~after:a) edges;
      List.for_all
        (fun (_, a) ->
          let ca = Flush_graph.closure g a in
          List.for_all
            (fun b ->
              let cb = Flush_graph.closure g b in
              List.for_all (fun x -> List.mem x ca) cb)
            ca)
        edges)

let suite =
  [
    ("closure: chain", `Quick, test_closure_simple);
    ("closure: lone node", `Quick, test_closure_no_deps);
    ("self edge ignored", `Quick, test_self_edge_ignored);
    ("cycle flushes together", `Quick, test_cycle);
    ("diamond", `Quick, test_diamond);
    ("remove", `Quick, test_remove);
    ("remove preserves rest", `Quick, test_remove_preserves_rest);
    Support.qcheck prop_closure_is_transitive;
  ]
