open Lt_hll

let estimate_error ~actual estimate =
  Float.abs (estimate -. float_of_int actual) /. float_of_int actual

let test_small_cardinalities () =
  let h = Hll.create () in
  Alcotest.(check (float 0.01)) "empty" 0.0 (Hll.estimate h);
  Hll.add h "only";
  let e = Hll.estimate h in
  if e < 0.5 || e > 1.5 then Alcotest.failf "estimate for 1 element: %f" e;
  (* Duplicates must not inflate the estimate. *)
  for _ = 1 to 1000 do
    Hll.add h "only"
  done;
  let e = Hll.estimate h in
  if e < 0.5 || e > 1.5 then Alcotest.failf "estimate after duplicates: %f" e

let test_accuracy () =
  (* Precision 12 -> ~1.6% standard error; assert within 6%. *)
  let h = Hll.create ~precision:12 () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    Hll.add h (Printf.sprintf "client-%d" i)
  done;
  let err = estimate_error ~actual:n (Hll.estimate h) in
  if err > 0.06 then Alcotest.failf "relative error %.4f too high" err

let test_merge () =
  let a = Hll.create ~precision:10 () and b = Hll.create ~precision:10 () in
  for i = 0 to 9_999 do
    Hll.add a (Printf.sprintf "x-%d" i)
  done;
  for i = 5_000 to 14_999 do
    Hll.add b (Printf.sprintf "x-%d" i)
  done;
  Hll.merge_into a b;
  (* The union has 15,000 distinct elements. Precision 10 -> ~3.3% SE. *)
  let err = estimate_error ~actual:15_000 (Hll.estimate a) in
  if err > 0.12 then Alcotest.failf "union error %.4f too high" err

let test_merge_precision_mismatch () =
  let a = Hll.create ~precision:10 () and b = Hll.create ~precision:12 () in
  match Hll.merge_into a b with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_serialization () =
  let h = Hll.create ~precision:8 () in
  for i = 0 to 999 do
    Hll.add h (string_of_int i)
  done;
  let h' = Hll.deserialize (Hll.serialize h) in
  Alcotest.(check int) "precision" (Hll.precision h) (Hll.precision h');
  Alcotest.(check (float 1e-9)) "estimate preserved" (Hll.estimate h)
    (Hll.estimate h');
  (* Corrupt payloads are rejected. *)
  (match Hll.deserialize "\x0cshort" with
  | (_ : Hll.t) -> Alcotest.fail "expected Corrupt"
  | exception Lt_util.Binio.Corrupt _ -> ());
  match Hll.deserialize "\x63" with
  | (_ : Hll.t) -> Alcotest.fail "expected Corrupt (bad precision)"
  | exception Lt_util.Binio.Corrupt _ -> ()

let test_copy_independent () =
  let a = Hll.create ~precision:6 () in
  Hll.add a "one";
  let b = Hll.copy a in
  for i = 0 to 999 do
    Hll.add b (string_of_int i)
  done;
  let ea = Hll.estimate a in
  if ea > 2.0 then Alcotest.failf "copy leaked back: %f" ea

let test_bad_precision () =
  (match Hll.create ~precision:3 () with
  | (_ : Hll.t) -> Alcotest.fail "precision 3 accepted"
  | exception Invalid_argument _ -> ());
  match Hll.create ~precision:17 () with
  | (_ : Hll.t) -> Alcotest.fail "precision 17 accepted"
  | exception Invalid_argument _ -> ()

let prop_monotone_under_union =
  QCheck.Test.make ~name:"hll: union estimate >= max of parts" ~count:50
    QCheck.(pair (list_of_size Gen.(int_range 1 200) small_string)
              (list_of_size Gen.(int_range 1 200) small_string))
    (fun (xs, ys) ->
      let a = Hll.create ~precision:10 () and b = Hll.create ~precision:10 () in
      List.iter (Hll.add a) xs;
      List.iter (Hll.add b) ys;
      let ea = Hll.estimate a and eb = Hll.estimate b in
      Hll.merge_into a b;
      Hll.estimate a >= Float.max ea eb -. 1e-9)

let suite =
  [
    ("small cardinalities", `Quick, test_small_cardinalities);
    ("accuracy at 100k", `Quick, test_accuracy);
    ("merge (union)", `Quick, test_merge);
    ("merge precision mismatch", `Quick, test_merge_precision_mismatch);
    ("serialization", `Quick, test_serialization);
    ("copy independence", `Quick, test_copy_independent);
    ("bad precision rejected", `Quick, test_bad_precision);
    Support.qcheck prop_monotone_under_union;
  ]
