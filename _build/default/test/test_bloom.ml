open Lt_bloom

let test_no_false_negatives () =
  let b = Bloom.create ~expected_keys:1000 () in
  let keys = List.init 1000 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter (Bloom.add b) keys;
  List.iter
    (fun k ->
      if not (Bloom.mem b k) then Alcotest.failf "false negative on %s" k)
    keys

let test_false_positive_rate () =
  (* 10 bits/key gives ~1% FPR; assert under 3% with margin. *)
  let n = 5000 in
  let b = Bloom.create ~bits_per_key:10 ~expected_keys:n () in
  for i = 0 to n - 1 do
    Bloom.add b (Printf.sprintf "member-%d" i)
  done;
  let fp = ref 0 in
  let probes = 10_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (Printf.sprintf "absent-%d" i) then incr fp
  done;
  let rate = float_of_int !fp /. float_of_int probes in
  if rate > 0.03 then Alcotest.failf "false positive rate %.4f too high" rate

let test_empty_filter () =
  let b = Bloom.create ~expected_keys:10 () in
  Alcotest.(check bool) "empty has nothing" false (Bloom.mem b "anything");
  Bloom.add b "";
  Alcotest.(check bool) "empty string key" true (Bloom.mem b "")

let test_serialization () =
  let b = Bloom.create ~expected_keys:100 () in
  List.iter (Bloom.add b) [ "a"; "bb"; "ccc"; "\x00\x01\xff" ];
  let buf = Buffer.create 64 in
  Bloom.encode buf b;
  let b' = Bloom.decode (Lt_util.Binio.cursor (Buffer.contents buf)) in
  Alcotest.(check int) "bits preserved" (Bloom.bit_count b) (Bloom.bit_count b');
  Alcotest.(check int) "k preserved" (Bloom.hash_count b) (Bloom.hash_count b');
  List.iter
    (fun k -> Alcotest.(check bool) k true (Bloom.mem b' k))
    [ "a"; "bb"; "ccc"; "\x00\x01\xff" ]

let test_sizing () =
  let b = Bloom.create ~bits_per_key:10 ~expected_keys:1000 () in
  Alcotest.(check bool) "at least 10 bits/key" true (Bloom.bit_count b >= 10_000);
  let tiny = Bloom.create ~expected_keys:0 () in
  Alcotest.(check bool) "minimum size" true (Bloom.bit_count tiny >= 64)

let prop_membership =
  QCheck.Test.make ~name:"bloom: added keys always member" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (string_gen_of_size Gen.(int_bound 30) Gen.char))
    (fun keys ->
      let b = Bloom.create ~expected_keys:(List.length keys) () in
      List.iter (Bloom.add b) keys;
      List.for_all (Bloom.mem b) keys)

let suite =
  [
    ("no false negatives", `Quick, test_no_false_negatives);
    ("false positive rate ~1%", `Quick, test_false_positive_rate);
    ("empty filter", `Quick, test_empty_filter);
    ("serialization roundtrip", `Quick, test_serialization);
    ("sizing", `Quick, test_sizing);
    Support.qcheck prop_membership;
  ]
