(* Crash-durability tests.

   The contract (§3.1): LittleTable "guarantees only that if it retains a
   particular row after a crash, it will also retain all rows that were
   inserted into the same table prior to that row" — relative to insertion
   order, not timestamps. We validate it by inserting rows carrying their
   insertion sequence number, crashing the in-memory filesystem at random
   points (dropping everything not fsynced/renamed), reopening, and
   checking that the surviving sequence numbers form a prefix. *)

open Littletable
open Lt_util

let schema = Support.usage_schema ()

let config =
  Config.make ~block_size:1024 ~flush_size:(4 * 1024) ~merge_delay:0L
    ~rollover_spread:0.0 ~enforce_unique:false ()

let survivors vfs clock =
  let t = Table.open_ vfs ~clock ~config ~dir:"dbroot/usage" ~name:"usage" in
  let rows = (Table.query t Query.all).Table.rows in
  Table.close t;
  List.sort compare (List.map (fun r -> Support.int64_of_cell r.(3)) rows)

let is_prefix seqs =
  List.for_all2 (fun got want -> got = want) seqs
    (List.init (List.length seqs) Int64.of_int)

let test_crash_loses_only_unflushed_suffix () =
  let db, clock, vfs = Support.fresh_db ~config () in
  let t = Db.create_table db "usage" schema ~ttl:None in
  let now = Clock.now clock in
  for i = 0 to 99 do
    Table.insert_row t
      (Support.usage_row ~network:1L ~device:(Int64.of_int i)
         ~ts:(Int64.add now (Int64.of_int i)) ~bytes:(Int64.of_int i) ~rate:0.0)
  done;
  Table.flush_all t;
  for i = 100 to 120 do
    Table.insert_row t
      (Support.usage_row ~network:1L ~device:(Int64.of_int i)
         ~ts:(Int64.add now (Int64.of_int i)) ~bytes:(Int64.of_int i) ~rate:0.0)
  done;
  Lt_vfs.Vfs.crash vfs;
  let seqs = survivors vfs clock in
  Alcotest.(check int) "flushed rows survive" 100 (List.length seqs);
  Alcotest.(check bool) "prefix" true (is_prefix seqs)

let test_crash_mid_flush_is_atomic () =
  (* Crash between tablet-file writes and the descriptor rename: the new
     tablets must be invisible (old descriptor) or fully visible. We
     simulate by crashing right after inserts with a failing rename. *)
  let fail_renames = ref false in
  let base = Lt_vfs.Vfs.memory () in
  let vfs =
    Lt_vfs.Vfs.faulty
      ~should_fail:(fun ~op ~path:_ -> !fail_renames && op = "rename")
      base
  in
  let clock = Clock.manual ~start:Support.ts0 () in
  let db = Db.open_ ~config ~clock ~vfs ~dir:"dbroot" () in
  let t = Db.create_table db "usage" schema ~ttl:None in
  let now = Clock.now clock in
  let insert i =
    Table.insert_row t
      (Support.usage_row ~network:1L ~device:(Int64.of_int i)
         ~ts:(Int64.add now (Int64.of_int i)) ~bytes:(Int64.of_int i) ~rate:0.0)
  in
  for i = 0 to 9 do insert i done;
  Table.flush_all t;
  for i = 10 to 19 do insert i done;
  fail_renames := true;
  (match Table.flush_all t with
  | () -> Alcotest.fail "flush should have failed"
  | exception Lt_vfs.Vfs.Io_error _ -> ());
  fail_renames := false;
  Lt_vfs.Vfs.crash base;
  let seqs = survivors base clock in
  (* The second flush never published: exactly the first ten rows. *)
  Alcotest.(check int) "first flush only" 10 (List.length seqs);
  Alcotest.(check bool) "prefix" true (is_prefix seqs)

(* Random interleaved-period workloads with a crash at a random point.
   Out-of-order timestamps spread inserts across filling tablets, so this
   exercises the flush-dependency closure logic (§3.4.3). *)
let prop_crash_prefix =
  QCheck.Test.make ~name:"crash always leaves an insertion-order prefix" ~count:60
    QCheck.(
      pair (int_range 1 150)
        (list_of_size (Gen.int_range 1 150) (int_bound 4)))
    (fun (crash_after, period_choices) ->
      let db, clock, vfs = Support.fresh_db ~config () in
      let t = Db.create_table db "usage" schema ~ttl:None in
      let now = Clock.now clock in
      (* Period offsets: now, yesterday, last week, a month back, future. *)
      let offsets =
        [| 0L; Int64.neg Clock.day; Int64.neg Clock.week;
           Int64.neg (Int64.mul 30L Clock.day); Clock.hour |]
      in
      List.iteri
        (fun i choice ->
          if i < crash_after then begin
            let ts =
              Int64.add (Int64.add now offsets.(choice)) (Int64.of_int i)
            in
            Table.insert_row t
              (Support.usage_row ~network:1L ~device:(Int64.of_int i) ~ts
                 ~bytes:(Int64.of_int i) ~rate:0.0)
          end)
        period_choices;
      Lt_vfs.Vfs.crash vfs;
      let seqs = survivors vfs clock in
      is_prefix seqs)

(* With size-triggered flushes (tiny flush_size), dependencies force
   multi-tablet atomic flushes; crash after every batch still yields a
   prefix. *)
let prop_crash_prefix_with_flushes =
  QCheck.Test.make ~name:"crash after size-triggered flushes leaves a prefix"
    ~count:40
    QCheck.(list_of_size (Gen.int_range 10 250) (int_bound 3))
    (fun period_choices ->
      let db, clock, vfs = Support.fresh_db ~config () in
      let t = Db.create_table db "usage" schema ~ttl:None in
      let now = Clock.now clock in
      let offsets =
        [| 0L; Int64.neg Clock.day; Int64.neg Clock.week;
           Int64.neg (Int64.mul 30L Clock.day) |]
      in
      List.iteri
        (fun i choice ->
          let ts = Int64.add (Int64.add now offsets.(choice)) (Int64.of_int i) in
          (* Large blob padding drives size-based freezes at 4 kB. *)
          Table.insert_row t
            (Support.usage_row ~network:1L ~device:(Int64.of_int i) ~ts
               ~bytes:(Int64.of_int i) ~rate:(float_of_int i)))
        period_choices;
      Lt_vfs.Vfs.crash vfs;
      let seqs = survivors vfs clock in
      is_prefix seqs)

let test_descriptor_crash_mid_save_keeps_old () =
  (* Crash with a .tmp descriptor written but not renamed: load sees the
     previous version. *)
  let vfs = Lt_vfs.Vfs.memory () in
  Lt_vfs.Vfs.mkdir_p vfs "tbl";
  Descriptor.save vfs ~dir:"tbl"
    Descriptor.{ schema; ttl = None; next_id = 5; tablets = [] };
  (* Simulate the partial second save: a temp file that never renamed. *)
  let f = Lt_vfs.Vfs.create vfs "tbl/DESCRIPTOR.tmp" in
  Lt_vfs.Vfs.append vfs f "garbage";
  Lt_vfs.Vfs.fsync vfs f;
  Lt_vfs.Vfs.crash vfs;
  let d = Descriptor.load vfs ~dir:"tbl" in
  Alcotest.(check int) "old version intact" 5 d.Descriptor.next_id

let suite =
  [
    ("crash loses only unflushed suffix", `Quick, test_crash_loses_only_unflushed_suffix);
    ("crash mid-flush is atomic", `Quick, test_crash_mid_flush_is_atomic);
    ("descriptor crash mid-save", `Quick, test_descriptor_crash_mid_save_keeps_old);
    Support.qcheck prop_crash_prefix;
    Support.qcheck prop_crash_prefix_with_flushes;
  ]
