(* Database-level behaviour: discovery, naming, maintenance, concurrency
   between writers / readers / maintenance, and I/O fault tolerance. *)

open Littletable
open Lt_util

let schema () = Support.usage_schema ()

let row net dev ts =
  Support.usage_row ~network:net ~device:dev ~ts ~bytes:0L ~rate:0.0

let test_discovery_on_open () =
  let clock = Clock.manual ~start:Support.ts0 () in
  let vfs = Lt_vfs.Vfs.memory () in
  let db = Db.open_ ~clock ~vfs ~dir:"root" () in
  let t1 = Db.create_table db "alpha" (schema ()) ~ttl:None in
  let _ = Db.create_table db "beta" (schema ()) ~ttl:(Some Clock.week) in
  Table.insert_row t1 (row 1L 1L 1L);
  Db.flush_all db;
  Db.close db;
  (* A fresh Db discovers both tables from their descriptors. *)
  let db2 = Db.open_ ~clock ~vfs ~dir:"root" () in
  Alcotest.(check (list string)) "discovered" [ "alpha"; "beta" ] (Db.table_names db2);
  Alcotest.(check bool) "ttl restored" true
    (Table.ttl (Db.table db2 "beta") = Some Clock.week);
  Alcotest.(check int) "data back" 1
    (List.length (Table.query (Db.table db2 "alpha") Query.all).Table.rows)

let test_bad_names_rejected () =
  let db, _, _ = Support.fresh_db () in
  let bad name =
    match Db.create_table db name (schema ()) ~ttl:None with
    | (_ : Table.t) -> Alcotest.failf "accepted %S" name
    | exception Invalid_argument _ -> ()
  in
  bad "";
  bad "a/b";
  bad "DESCRIPTOR";
  (* Duplicates rejected. *)
  ignore (Db.create_table db "x" (schema ()) ~ttl:None);
  match Db.create_table db "x" (schema ()) ~ttl:None with
  | (_ : Table.t) -> Alcotest.fail "duplicate accepted"
  | exception Invalid_argument _ -> ()

let test_db_maintenance_covers_tables () =
  let config = Config.make ~merge_delay:0L ~rollover_spread:0.0 () in
  let db, clock, _ = Support.fresh_db ~config () in
  let t1 = Db.create_table db "a" (schema ()) ~ttl:None in
  let t2 = Db.create_table db "b" (schema ()) ~ttl:(Some Clock.week) in
  Table.insert_row t1 (row 1L 1L (Clock.now clock));
  Table.insert_row t2 (row 1L 1L (Int64.sub (Clock.now clock) (Int64.mul 3L Clock.week)));
  Table.flush_all t2;
  (* Age-based flush for t1 and TTL expiry for t2, in one pass. *)
  Clock.advance clock (Int64.mul 11L Clock.minute);
  Db.maintenance db;
  Alcotest.(check int) "t1 flushed" 0 (Table.memtable_count t1);
  Alcotest.(check int) "t2 expired" 0 (Table.tablet_count t2)

(* Concurrent writer + readers + maintenance on one table: no lost rows,
   no crashes, queries always see a consistent (prefix-consistent)
   snapshot. *)
let test_concurrent_insert_query_maintenance () =
  let config =
    Config.make ~flush_size:(16 * 1024) ~merge_delay:0L ~rollover_spread:0.0 ()
  in
  (* System clock: threads advance in real time. *)
  let vfs = Lt_vfs.Vfs.memory () in
  let db = Db.open_ ~config ~vfs ~dir:"root" () in
  let t = Db.create_table db "hot" (schema ()) ~ttl:None in
  let writer_done = ref false in
  let failures = ref [] in
  let record_failure exn =
    failures := Printexc.to_string exn :: !failures
  in
  let writer =
    Thread.create
      (fun () ->
        try
          for i = 0 to 1999 do
            Table.insert_row t (row 1L (Int64.of_int i) (Int64.of_int (i + 1)))
          done;
          writer_done := true
        with exn -> record_failure exn)
      ()
  in
  let reader =
    Thread.create
      (fun () ->
        try
          while not !writer_done do
            let rows = (Table.query t Query.all).Table.rows in
            (* Devices must appear without gaps: insertion order is
               device order, and queries see a consistent snapshot. *)
            let devices = List.map (fun r -> Support.int64_of_cell r.(1)) rows in
            let sorted = List.sort compare devices in
            ignore
              (List.fold_left
                 (fun expect d ->
                   if d <> expect then
                     record_failure
                       (Failure (Printf.sprintf "gap: %Ld != %Ld" d expect));
                   Int64.add d 1L)
                 0L sorted);
            Thread.yield ()
          done
        with exn -> record_failure exn)
      ()
  in
  let maintainer =
    Thread.create
      (fun () ->
        try
          while not !writer_done do
            Table.maintenance t;
            Thread.yield ()
          done
        with exn -> record_failure exn)
      ()
  in
  Thread.join writer;
  Thread.join reader;
  Thread.join maintainer;
  Alcotest.(check (list string)) "no thread failures" [] !failures;
  Alcotest.(check int) "all rows present" 2000
    (List.length (Table.query t Query.all).Table.rows)

let test_concurrent_tables_isolated () =
  (* Paper §5.1.4: almost no shared state between tables. Writers to
     distinct tables run concurrently without interference. *)
  let db, _, _ = Support.fresh_db () in
  let tables =
    List.init 4 (fun i -> Db.create_table db (Printf.sprintf "w%d" i) (schema ()) ~ttl:None)
  in
  let failures = ref 0 in
  let threads =
    List.map
      (fun t ->
        Thread.create
          (fun () ->
            try
              for i = 0 to 499 do
                Table.insert_row t (row 1L (Int64.of_int i) (Int64.of_int (i + 1)))
              done
            with _ -> incr failures)
          ())
      tables
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "no failures" 0 !failures;
  List.iter
    (fun t ->
      Alcotest.(check int) "each table complete" 500
        (List.length (Table.query t Query.all).Table.rows))
    tables

(* I/O faults during flush must not corrupt the table: the failed flush
   raises, the data stays queryable from memory, and a retry after the
   fault clears succeeds. *)
let test_flush_fault_recovery () =
  let armed = ref false in
  let base = Lt_vfs.Vfs.memory () in
  let vfs =
    Lt_vfs.Vfs.faulty
      ~should_fail:(fun ~op ~path -> !armed && op = "append" && Filename.check_suffix path ".tab")
      base
  in
  let clock = Clock.manual ~start:Support.ts0 () in
  let db = Db.open_ ~clock ~vfs ~dir:"root" () in
  let t = Db.create_table db "f" (schema ()) ~ttl:None in
  Table.insert t (List.init 10 (fun i -> row 1L (Int64.of_int i) (Int64.of_int (i + 1))));
  armed := true;
  (match Table.flush_all t with
  | () -> Alcotest.fail "flush should fail"
  | exception Lt_vfs.Vfs.Io_error _ -> ());
  (* Data still readable from the memtable. *)
  Alcotest.(check int) "still queryable" 10
    (List.length (Table.query t Query.all).Table.rows);
  armed := false;
  Table.flush_all t;
  Alcotest.(check int) "flushed after retry" 10
    (List.length (Table.query t Query.all).Table.rows);
  Alcotest.(check bool) "on disk" true (Table.tablet_count t >= 1)

(* Regression: deleting every row of a memtable then flushing must not
   loop on the empty memtable. *)
let test_delete_all_then_flush () =
  let db, _, _ = Support.fresh_db () in
  let t = Db.create_table db "r" (schema ()) ~ttl:None in
  Table.insert t [ row 1L 1L 1L; row 1L 2L 2L ];
  Alcotest.(check int) "deleted" 2 (Table.delete_prefix t [ Value.Int64 1L ]);
  Table.flush_all t;
  (* Reaching here is the regression test; also nothing on disk. *)
  Alcotest.(check int) "nothing flushed" 0 (Table.tablet_count t);
  Alcotest.(check int) "no memtables" 0 (Table.memtable_count t)

let suite =
  [
    ("discovery on open", `Quick, test_discovery_on_open);
    ("bad names rejected", `Quick, test_bad_names_rejected);
    ("maintenance covers all tables", `Quick, test_db_maintenance_covers_tables);
    ("concurrent insert/query/maintenance", `Quick, test_concurrent_insert_query_maintenance);
    ("concurrent tables isolated", `Quick, test_concurrent_tables_isolated);
    ("flush fault recovery", `Quick, test_flush_fault_recovery);
    ("delete-all then flush (regression)", `Quick, test_delete_all_then_flush);
  ]
