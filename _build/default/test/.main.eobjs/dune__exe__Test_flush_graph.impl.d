test/test_flush_graph.ml: Alcotest Flush_graph Gen List Littletable QCheck Support
