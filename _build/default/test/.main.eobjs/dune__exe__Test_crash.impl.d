test/test_crash.ml: Alcotest Array Clock Config Db Descriptor Gen Int64 List Littletable Lt_util Lt_vfs QCheck Query Support Table
