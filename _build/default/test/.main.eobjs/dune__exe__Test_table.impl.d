test/test_table.ml: Alcotest Array Clock Config Db Descriptor Gen Hashtbl Int64 List Littletable Lt_util Period QCheck Query Schema Stats Support Table Value
