test/main.mli:
