test/test_cursor.ml: Alcotest Cursor Format Int64 Key_codec List Littletable QCheck Query String Support Value
