test/test_sql.ml: Alcotest Ast Db Executor Format Int64 Lexer List Littletable Lt_sql Lt_util Parser Planner Printf Query String Support Table Value
