test/test_merge_policy.ml: Alcotest Array Gen Int64 List Littletable Lt_util Merge_policy QCheck Support
