test/test_lz.ml: Alcotest Bytes Char Gen List Lt_lz Lt_util Lz Printf QCheck String Support
