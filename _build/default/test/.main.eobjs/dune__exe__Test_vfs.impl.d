test/test_vfs.ml: Alcotest Disk_model Filename Float Lt_vfs String Sys Unix Vfs
