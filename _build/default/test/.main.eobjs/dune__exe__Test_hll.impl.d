test/test_hll.ml: Alcotest Float Gen Hll List Lt_hll Lt_util Printf QCheck Support
