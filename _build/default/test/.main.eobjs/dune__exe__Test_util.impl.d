test/test_util.ml: Alcotest Binio Buffer Cdf Clock Crc32c Heap Int Int64 List Lt_lz Lt_util QCheck String Support Xorshift
