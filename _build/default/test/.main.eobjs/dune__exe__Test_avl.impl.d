test/test_avl.ml: Alcotest Avl Fun Gen List Littletable Map Printf QCheck String Support
