test/test_net.ml: Alcotest Array Buffer Client Db Filename Fun Gen Int64 List Littletable Lt_net Lt_sql Lt_util Printf Protocol QCheck Query Schema Server Stats Support Sys Thread Value
