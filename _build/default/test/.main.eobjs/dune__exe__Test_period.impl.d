test/test_period.ml: Alcotest Clock Int64 Littletable Lt_util Period QCheck Support
