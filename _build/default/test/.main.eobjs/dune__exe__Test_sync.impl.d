test/test_sync.ml: Alcotest Array Clock Config Db Filename Gen Int64 List Littletable Lt_util Lt_vfs Printf QCheck Query String Support Table
