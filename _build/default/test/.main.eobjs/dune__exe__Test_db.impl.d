test/test_db.ml: Alcotest Array Clock Config Db Filename Int64 List Littletable Lt_util Lt_vfs Printexc Printf Query Support Table Thread Value
