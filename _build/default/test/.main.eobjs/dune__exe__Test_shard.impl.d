test/test_shard.ml: Aggregator Alcotest Array Config Db Int64 List Littletable Lt_apps Lt_util Lt_vfs Query Shard Support Table Value
