test/test_apps.ml: Aggregator Alcotest Array Clock Config_store Db Device Events_grabber Int64 List Littletable Lt_apps Lt_util Motion Query String Support Table Usage_grabber Value
