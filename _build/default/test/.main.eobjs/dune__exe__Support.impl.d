test/support.ml: Alcotest Array Config Db List Littletable Lt_util Lt_vfs QCheck_alcotest Schema Table Value
