test/test_codec.ml: Alcotest Array Binio Buffer Float Gen Int32 Int64 Key_codec List Littletable Lt_util QCheck Row_codec Schema String Support Value
