test/test_delete.ml: Alcotest Array Clock Config Db Filename Fun Gen Hashtbl Int64 List Littletable Lt_net Lt_sql Lt_util Printf QCheck Query Schema Support Sys Table Value
