test/test_bloom.ml: Alcotest Bloom Buffer Gen List Lt_bloom Lt_util Printf QCheck Support
