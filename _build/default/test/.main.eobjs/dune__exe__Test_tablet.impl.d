test/test_tablet.ml: Alcotest Array Block Bytes Char Descriptor Int64 Key_codec List Littletable Lt_util Lt_vfs Printf Row_codec Schema String Support Tablet Value
