open Littletable
open Lt_util
open Lt_apps

let minute = Clock.minute

let setup () =
  let db, clock, vfs = Support.fresh_db () in
  (db, clock, vfs)

let mk_devices ~clock ~network n =
  List.init n (fun i ->
      Device.create ~seed:(Int64.of_int (100 + i)) ~network
        ~device:(Int64.of_int (i + 1)) ~clock ())

let advance_and_step clock devices d =
  Clock.advance clock d;
  List.iter Device.step devices

(* ---- Device simulator ------------------------------------------------- *)

let test_device_counter_monotone () =
  let _, clock, _ = setup () in
  let dev = Device.create ~seed:1L ~network:1L ~device:1L ~clock () in
  let last = ref 0L in
  for _ = 1 to 20 do
    Clock.advance clock minute;
    Device.step dev;
    match Device.read_counter dev with
    | Some (_, c) ->
        Alcotest.(check bool) "monotone" true (c >= !last);
        last := c
    | None -> Alcotest.fail "online device must answer"
  done;
  Alcotest.(check bool) "accrued traffic" true (!last > 0L);
  Device.reboot dev;
  (match Device.read_counter dev with
  | Some (_, c) -> Alcotest.(check int64) "reboot resets" 0L c
  | None -> Alcotest.fail "offline after reboot?");
  Device.set_online dev false;
  Alcotest.(check bool) "offline returns None" true (Device.read_counter dev = None)

let test_device_events_monotone_ids () =
  let _, clock, _ = setup () in
  let dev = Device.create ~seed:2L ~network:1L ~device:1L ~clock () in
  Clock.advance clock (Int64.mul 30L minute);
  Device.step dev;
  match Device.fetch_events_after dev None with
  | Some (first :: _ as events) ->
      Alcotest.(check bool) "has events" true (List.length events > 5);
      let ids = List.map (fun e -> e.Device.event_id) events in
      Alcotest.(check bool) "strictly increasing" true
        (List.for_all2 (fun a b -> b > a) (List.filteri (fun i _ -> i < List.length ids - 1) ids) (List.tl ids));
      (* Incremental fetch starts after the supplied id. *)
      (match Device.fetch_events_after dev (Some first.Device.event_id) with
      | Some rest ->
          Alcotest.(check int) "one less" (List.length events - 1) (List.length rest)
      | None -> Alcotest.fail "online")
  | _ -> Alcotest.fail "no events"

let test_device_motion_words_valid () =
  let _, clock, _ = setup () in
  let dev = Device.create ~seed:3L ~network:1L ~device:7L ~clock () in
  Clock.advance clock (Int64.mul 60L minute);
  Device.step dev;
  match Device.fetch_motion_after dev 0L with
  | Some (_ :: _ as events) ->
      List.iter
        (fun ev ->
          let w = ev.Device.word in
          Alcotest.(check bool) "row in range" true (Motion.word_row w < Motion.coarse_rows);
          Alcotest.(check bool) "col in range" true (Motion.word_col w < Motion.coarse_cols);
          Alcotest.(check bool) "some blocks" true (Motion.word_blocks w > 0);
          Alcotest.(check bool) "duration nonneg" true (ev.Device.duration >= 0L))
        events
  | _ -> Alcotest.fail "no motion"

(* ---- Config store ------------------------------------------------------ *)

let test_config_store () =
  let cs = Config_store.create () in
  Config_store.add_network cs ~id:1L ~name:"school";
  Config_store.add_device cs ~network:1L ~device:10L ~tags:[ "classrooms" ];
  Config_store.add_device cs ~network:1L ~device:11L ~tags:[ "classrooms"; "wing-b" ];
  Config_store.add_device cs ~network:1L ~device:12L ~tags:[];
  Alcotest.(check bool) "name" true (Config_store.network_name cs 1L = Some "school");
  Alcotest.(check (list string)) "tags" [ "classrooms"; "wing-b" ]
    (Config_store.device_tags cs ~network:1L ~device:11L);
  Alcotest.(check (list string)) "unknown device" []
    (Config_store.device_tags cs ~network:1L ~device:99L);
  Alcotest.(check int) "device count" 3 (List.length (Config_store.devices cs));
  Alcotest.(check (list string)) "all tags" [ "classrooms"; "wing-b" ]
    (Config_store.all_tags cs);
  match Config_store.add_device cs ~network:9L ~device:1L ~tags:[] with
  | () -> Alcotest.fail "unknown network accepted"
  | exception Invalid_argument _ -> ()

(* ---- UsageGrabber ------------------------------------------------------- *)

let test_usage_grabber_rates () =
  let db, clock, _ = setup () in
  let table = Usage_grabber.create_table db "usage" in
  let g = Usage_grabber.create ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 3 in
  (* First poll only seeds the cache. *)
  List.iter Device.step devices;
  Alcotest.(check int) "first poll writes nothing" 0 (Usage_grabber.poll g devices);
  Alcotest.(check int) "cache seeded" 3 (Usage_grabber.cache_size g);
  let t_lo = Clock.now clock in
  advance_and_step clock devices minute;
  Alcotest.(check int) "second poll writes all" 3 (Usage_grabber.poll g devices);
  advance_and_step clock devices minute;
  ignore (Usage_grabber.poll g devices);
  let t_hi = Clock.now clock in
  (* Rates are consistent with the counters (bytes/second > 0). *)
  let rates = Usage_grabber.device_rates table ~network:1L ~device:1L ~ts_min:t_lo ~ts_max:t_hi in
  Alcotest.(check int) "two samples" 2 (List.length rates);
  List.iter (fun (_, r) -> Alcotest.(check bool) "positive" true (r > 0.0)) rates;
  (* Network rollup sums across devices. *)
  let usage = Usage_grabber.network_usage table ~network:1L ~ts_min:t_lo ~ts_max:t_hi in
  Alcotest.(check int) "three devices" 3 (List.length usage);
  List.iter (fun (_, b) -> Alcotest.(check bool) "bytes > 0" true (b > 0L)) usage

let test_usage_grabber_gap_threshold () =
  let db, clock, _ = setup () in
  let table = Usage_grabber.create_table db "usage" in
  let g = Usage_grabber.create ~threshold:Clock.hour ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 1 in
  List.iter Device.step devices;
  ignore (Usage_grabber.poll g devices);
  (* Short unavailability (several minutes): proceed as normal. *)
  advance_and_step clock devices (Int64.mul 5L minute);
  Alcotest.(check int) "short gap writes" 1 (Usage_grabber.poll g devices);
  (* Long unavailability (> T): no fabricated steady rate; gap shown. *)
  advance_and_step clock devices (Int64.mul 3L Clock.hour);
  Alcotest.(check int) "long gap writes nothing" 0 (Usage_grabber.poll g devices);
  (* The next sample after the gap resumes. *)
  advance_and_step clock devices minute;
  Alcotest.(check int) "resumes" 1 (Usage_grabber.poll g devices)

let test_usage_grabber_counter_reset () =
  let db, clock, _ = setup () in
  let table = Usage_grabber.create_table db "usage" in
  let g = Usage_grabber.create ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 1 in
  List.iter Device.step devices;
  ignore (Usage_grabber.poll g devices);
  advance_and_step clock devices minute;
  ignore (Usage_grabber.poll g devices);
  (* Reboot: counter goes backwards; the grabber must reseed, not write
     a negative rate. *)
  List.iter Device.reboot devices;
  advance_and_step clock devices minute;
  Alcotest.(check int) "reset writes nothing" 0 (Usage_grabber.poll g devices);
  advance_and_step clock devices minute;
  Alcotest.(check int) "then resumes" 1 (Usage_grabber.poll g devices)

let test_usage_grabber_crash_recovery () =
  let db, clock, _ = setup () in
  let table = Usage_grabber.create_table db "usage" in
  let g = Usage_grabber.create ~threshold:Clock.hour ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 4 in
  List.iter Device.step devices;
  ignore (Usage_grabber.poll g devices);
  advance_and_step clock devices minute;
  ignore (Usage_grabber.poll g devices);
  (* Device 4 goes silent long before the crash. *)
  (match devices with
  | d :: _ -> Device.set_online d false
  | [] -> ());
  advance_and_step clock devices minute;
  ignore (Usage_grabber.poll g devices);
  (* Crash; rebuild from the table. *)
  Usage_grabber.crash g;
  Alcotest.(check int) "cache empty" 0 (Usage_grabber.cache_size g);
  Usage_grabber.rebuild_cache g
    ~devices:(List.map (fun d -> (Device.network d, Device.device_id d)) devices);
  (* All four devices had rows within T. *)
  Alcotest.(check int) "cache rebuilt" 4 (Usage_grabber.cache_size g);
  (* Resume: the next poll writes rows for online devices without
     re-seeding (no data loss beyond the crash gap). *)
  advance_and_step clock devices minute;
  Alcotest.(check int) "resume writes 3 (one offline)" 3 (Usage_grabber.poll g devices)

(* ---- Aggregator ---------------------------------------------------------- *)

let populate_usage ~db ~clock ~networks ~devices_per ~minutes =
  let table = Usage_grabber.create_table db "usage" in
  let g = Usage_grabber.create ~table ~clock () in
  let devices =
    List.concat_map
      (fun n -> mk_devices ~clock ~network:(Int64.of_int n) devices_per)
      (List.init networks (fun i -> i + 1))
  in
  List.iter Device.step devices;
  ignore (Usage_grabber.poll g devices);
  for _ = 1 to minutes do
    advance_and_step clock devices minute;
    ignore (Usage_grabber.poll g devices)
  done;
  (table, devices)

let test_aggregator_rollup () =
  let db, clock, _ = setup () in
  let source, _ = populate_usage ~db ~clock ~networks:2 ~devices_per:3 ~minutes:45 in
  let dest = Db.create_table db "usage_10m" (Aggregator.rollup_schema ()) ~ttl:None in
  let agg =
    Aggregator.create ~durability:(Aggregator.Safety_lag (Int64.mul 20L minute))
      ~source ~dest ~clock ()
  in
  let periods = Aggregator.run_once agg in
  Alcotest.(check bool) "aggregated some periods" true (periods >= 2);
  (* Dest rows: one per (network, period) with data. *)
  let rows = Aggregator.read_rollup dest ~key:(Value.Int64 1L) ~ts_min:0L ~ts_max:Int64.max_int in
  Alcotest.(check bool) "network 1 rollups" true (List.length rows >= 2);
  List.iter
    (fun (_, bytes, hll) ->
      Alcotest.(check bool) "bytes positive" true (bytes > 0L);
      (* 3 devices active; HLL estimate should be close. *)
      Alcotest.(check bool) "device estimate ~3" true (hll > 1.5 && hll < 4.5))
    rows;
  (* Idempotent: a second run adds nothing new for the same periods. *)
  let before = List.length rows in
  ignore (Aggregator.run_once agg);
  let after =
    List.length
      (Aggregator.read_rollup dest ~key:(Value.Int64 1L) ~ts_min:0L ~ts_max:Int64.max_int)
  in
  Alcotest.(check int) "idempotent" before after

let test_aggregator_crash_recovery () =
  let db, clock, _ = setup () in
  let source, devices = populate_usage ~db ~clock ~networks:1 ~devices_per:2 ~minutes:45 in
  let dest = Db.create_table db "usage_10m" (Aggregator.rollup_schema ()) ~ttl:None in
  let agg = Aggregator.create ~source ~dest ~clock () in
  ignore (Aggregator.run_once agg);
  let pos_before = Aggregator.position agg in
  (* Crash; recovery must find the same resume point (minus the one
     re-processed period). *)
  Aggregator.crash agg;
  Alcotest.(check bool) "position forgotten" true (Aggregator.position agg = None);
  Aggregator.recover agg;
  (match (Aggregator.position agg, pos_before) with
  | Some got, Some want ->
      Alcotest.(check int64) "recovered one period before" (Int64.sub want (Int64.mul 10L minute)) got
  | _ -> Alcotest.fail "no position");
  (* Continue aggregating new data; totals stay consistent (no dupes). *)
  let g = Usage_grabber.create ~table:source ~clock () in
  List.iter Device.step devices;
  ignore (Usage_grabber.poll g devices);
  for _ = 1 to 30 do
    advance_and_step clock devices minute;
    ignore (Usage_grabber.poll g devices)
  done;
  ignore (Aggregator.run_once agg);
  let rows = Aggregator.read_rollup dest ~key:(Value.Int64 1L) ~ts_min:0L ~ts_max:Int64.max_int in
  let tss = List.map (fun (ts, _, _) -> ts) rows in
  Alcotest.(check bool) "period starts unique" true
    (List.length tss = List.length (List.sort_uniq compare tss))

let test_aggregator_flush_command () =
  (* With the proposed flush command there is no 20-minute lag: periods
     right up to now are aggregatable. *)
  let db, clock, _ = setup () in
  let source, _ = populate_usage ~db ~clock ~networks:1 ~devices_per:2 ~minutes:25 in
  let dest = Db.create_table db "usage_10m" (Aggregator.rollup_schema ()) ~ttl:None in
  let lagged = Aggregator.create ~source ~dest ~clock () in
  let eager =
    Aggregator.create ~durability:Aggregator.Flush_command ~source
      ~dest:(Db.create_table db "usage_10m_eager" (Aggregator.rollup_schema ()) ~ttl:None)
      ~clock ()
  in
  let p_lagged = Aggregator.run_once lagged in
  let p_eager = Aggregator.run_once eager in
  Alcotest.(check bool) "flush command sees more periods" true (p_eager > p_lagged)

let test_tag_aggregator () =
  let db, clock, _ = setup () in
  let source, _ = populate_usage ~db ~clock ~networks:1 ~devices_per:3 ~minutes:35 in
  let cs = Config_store.create () in
  Config_store.add_network cs ~id:1L ~name:"school";
  Config_store.add_device cs ~network:1L ~device:1L ~tags:[ "classrooms" ];
  Config_store.add_device cs ~network:1L ~device:2L ~tags:[ "classrooms"; "playing-fields" ];
  Config_store.add_device cs ~network:1L ~device:3L ~tags:[ "playing-fields" ];
  let dest = Db.create_table db "usage_by_tag" (Aggregator.tag_schema ()) ~ttl:None in
  let agg = Aggregator.create ~tags:cs ~source ~dest ~clock () in
  let periods = Aggregator.run_once agg in
  Alcotest.(check bool) "aggregated" true (periods >= 1);
  let classrooms =
    Aggregator.read_rollup dest ~key:(Value.String "classrooms") ~ts_min:0L
      ~ts_max:Int64.max_int
  in
  let fields =
    Aggregator.read_rollup dest ~key:(Value.String "playing-fields") ~ts_min:0L
      ~ts_max:Int64.max_int
  in
  Alcotest.(check bool) "both tags present" true (classrooms <> [] && fields <> []);
  List.iter
    (fun (_, _, hll) -> Alcotest.(check bool) "~2 devices per tag" true (hll > 1.0 && hll < 3.5))
    classrooms

(* ---- EventsGrabber ------------------------------------------------------- *)

let test_events_grabber_basic () =
  let db, clock, _ = setup () in
  let table = Events_grabber.create_table db "events" in
  let g = Events_grabber.create ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 2 in
  advance_and_step clock devices (Int64.mul 30L minute);
  let n = Events_grabber.poll g devices in
  Alcotest.(check bool) "events stored" true (n > 5);
  (* Incremental: an immediate second poll adds nothing. *)
  Alcotest.(check int) "incremental" 0 (Events_grabber.poll g devices);
  advance_and_step clock devices (Int64.mul 30L minute);
  Alcotest.(check bool) "new events arrive" true (Events_grabber.poll g devices > 0);
  (* Reads come back in ts order with bodies. *)
  let evs =
    Events_grabber.device_events table ~network:1L ~device:1L ~ts_min:0L
      ~ts_max:Int64.max_int
  in
  Alcotest.(check bool) "some events" true (List.length evs > 2);
  let tss = List.map (fun (ts, _, _) -> ts) evs in
  Alcotest.(check bool) "sorted" true (List.sort compare tss = tss)

let test_events_grabber_crash_recovery () =
  let db, clock, _ = setup () in
  let table = Events_grabber.create_table db "events" in
  let g = Events_grabber.create ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 3 in
  advance_and_step clock devices (Int64.mul 30L minute);
  ignore (Events_grabber.poll g devices);
  let id_before = Events_grabber.cached_id g ~network:1L ~device:1L in
  Events_grabber.crash g;
  Events_grabber.recover g ~devices ~lookback:Clock.hour;
  Alcotest.(check bool) "cache rebuilt to same id" true
    (Events_grabber.cached_id g ~network:1L ~device:1L = id_before);
  (* No duplicates after resuming. *)
  advance_and_step clock devices (Int64.mul 10L minute);
  ignore (Events_grabber.poll g devices);
  let evs =
    Events_grabber.device_events table ~network:1L ~device:1L ~ts_min:0L
      ~ts_max:Int64.max_int
  in
  let ids = List.map (fun (_, id, _) -> id) evs in
  Alcotest.(check bool) "unique ids" true
    (List.length ids = List.length (List.sort_uniq compare ids))

let test_events_grabber_long_offline_device () =
  (* A device offline for a long period: recovery pass 2 uses the
     device's oldest retained event to bound the table search. *)
  let db, clock, _ = setup () in
  let table = Events_grabber.create_table db "events" in
  let g = Events_grabber.create ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 1 in
  advance_and_step clock devices (Int64.mul 60L minute);
  ignore (Events_grabber.poll g devices);
  let id_before = Events_grabber.cached_id g ~network:1L ~device:1L in
  (* Device keeps generating while the grabber is down for a day. *)
  Events_grabber.crash g;
  advance_and_step clock devices (Int64.mul 24L (Int64.mul 60L minute));
  (* Recovery with a short lookback misses the old rows in pass 1 and
     must use pass 2. *)
  Events_grabber.recover g ~devices ~lookback:(Int64.mul 30L minute);
  (match (Events_grabber.cached_id g ~network:1L ~device:1L, id_before) with
  | Some got, Some want -> Alcotest.(check int64) "found old id" want got
  | _ -> Alcotest.fail "no id recovered");
  (* Poll now fetches exactly the day's backlog, no duplicates. *)
  ignore (Events_grabber.poll g devices);
  let evs =
    Events_grabber.device_events table ~network:1L ~device:1L ~ts_min:0L
      ~ts_max:Int64.max_int
  in
  let ids = List.map (fun (_, id, _) -> id) evs in
  Alcotest.(check bool) "ids unique" true
    (List.length ids = List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "backlog landed" true (List.length ids > 20)

let test_events_grabber_sentinels () =
  let db, clock, _ = setup () in
  let table = Events_grabber.create_table db "events" in
  let g = Events_grabber.create ~sentinel_every:2 ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 1 in
  for _ = 1 to 4 do
    advance_and_step clock devices (Int64.mul 10L minute);
    ignore (Events_grabber.poll g devices)
  done;
  (* Sentinels present in raw storage but hidden from event reads. *)
  let raw = (Table.query table Query.all).Table.rows in
  let sentinels =
    List.filter
      (fun r -> r.(4) = Value.String Events_grabber.sentinel_body)
      raw
  in
  Alcotest.(check bool) "sentinels written" true (List.length sentinels >= 1);
  let evs =
    Events_grabber.device_events table ~network:1L ~device:1L ~ts_min:0L
      ~ts_max:Int64.max_int
  in
  Alcotest.(check bool) "reads hide sentinels" true
    (List.for_all (fun (_, _, body) -> body <> Events_grabber.sentinel_body) evs)

let test_events_search () =
  let db, clock, _ = setup () in
  let table = Events_grabber.create_table db "events" in
  let g = Events_grabber.create ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 2 in
  advance_and_step clock devices (Int64.mul 120L minute);
  ignore (Events_grabber.poll g devices);
  let hits =
    Events_grabber.search table ~network:1L ~pattern:"dhcp" ~ts_min:0L
      ~ts_max:Int64.max_int ~limit:10
  in
  Alcotest.(check bool) "found dhcp events" true (hits <> []);
  List.iter
    (fun (_, _, _, body) ->
      Alcotest.(check bool) "matches" true
        (String.length body >= 4))
    hits;
  (* Newest first. *)
  let tss = List.map (fun (_, ts, _, _) -> ts) hits in
  Alcotest.(check bool) "descending" true (List.rev (List.sort compare tss) = tss)

(* ---- Motion ---------------------------------------------------------------- *)

let test_motion_words () =
  let w = Motion.word ~row:3 ~col:7 ~blocks:0b101 in
  Alcotest.(check int) "row" 3 (Motion.word_row w);
  Alcotest.(check int) "col" 7 (Motion.word_col w);
  Alcotest.(check int) "blocks" 0b101 (Motion.word_blocks w);
  (* Bits 0 and 2: macroblocks (42,12) and (44,12) — cell base (42,12). *)
  Alcotest.(check bool) "macroblocks" true
    (Motion.word_macroblocks w = [ (42, 12); (44, 12) ]);
  (match Motion.word ~row:9 ~col:0 ~blocks:1 with
  | (_ : int32) -> Alcotest.fail "row 9 accepted"
  | exception Invalid_argument _ -> ());
  (* All 24 bits set covers the full 6x4 cell. *)
  let full = Motion.word ~row:0 ~col:0 ~blocks:0xFFFFFF in
  Alcotest.(check int) "24 macroblocks" 24 (List.length (Motion.word_macroblocks full))

let test_motion_grabber_and_search () =
  let db, clock, _ = setup () in
  let table = Motion.create_table db "motion" in
  let g = Motion.create ~table ~clock () in
  let cams = mk_devices ~clock ~network:1L 1 in
  advance_and_step clock cams (Int64.mul 120L minute);
  let n = Motion.poll g cams in
  Alcotest.(check bool) "motion stored" true (n > 5);
  Alcotest.(check int) "incremental" 0 (Motion.poll g cams);
  (* Whole-frame search returns everything; an empty rectangle far off
     the motion returns a subset. *)
  let all =
    Motion.search table ~camera:1L
      ~rect:{ Motion.x0 = 0; y0 = 0; x1 = 59; y1 = 33 }
      ~ts_min:0L ~ts_max:Int64.max_int ~limit:max_int
  in
  (* Events whose only set macroblocks fall in the clipped bottom slice
     of the last coarse row (y >= 34) are legitimately invisible. *)
  let visible =
    List.filter
      (fun r ->
        match r.(2) with
        | Value.Int32 w -> Motion.word_macroblocks w <> []
        | _ -> false)
      (Table.query table Query.all).Table.rows
  in
  Alcotest.(check int) "full-frame search finds all visible"
    (List.length visible) (List.length all);
  Alcotest.(check bool) "most events visible" true (List.length all > n / 2);
  let corner =
    Motion.search table ~camera:1L
      ~rect:{ Motion.x0 = 0; y0 = 0; x1 = 2; y1 = 2 }
      ~ts_min:0L ~ts_max:Int64.max_int ~limit:max_int
  in
  Alcotest.(check bool) "corner subset" true (List.length corner <= List.length all);
  (* Newest first. *)
  (match all with
  | (t1, _, _) :: (t2, _, _) :: _ -> Alcotest.(check bool) "desc" true (t1 >= t2)
  | _ -> ());
  (* Heatmap counts equal per-macroblock hits. *)
  let grid = Motion.heatmap table ~camera:1L ~ts_min:0L ~ts_max:Int64.max_int in
  let total = Array.fold_left (fun a row -> Array.fold_left ( + ) a row) 0 grid in
  Alcotest.(check bool) "heatmap populated" true (total > 0);
  (* Crash/recover: positions rebuilt, no duplicate inserts. *)
  Motion.crash g;
  Motion.recover g ~cameras:cams ~lookback:Clock.week;
  advance_and_step clock cams (Int64.mul 30L minute);
  ignore (Motion.poll g cams);
  let rows = (Table.query table Query.all).Table.rows in
  let keys = List.map (fun r -> (r.(0), r.(1))) rows in
  Alcotest.(check bool) "no duplicate (camera, ts)" true
    (List.length keys = List.length (List.sort_uniq compare keys))

(* Device churn: devices flapping offline/online mid-pipeline. Offline
   devices are skipped; gaps longer than T produce no fabricated rates;
   everything resumes cleanly. *)
let test_pipeline_with_device_churn () =
  let db, clock, _ = setup () in
  let table = Usage_grabber.create_table db "usage" in
  let g = Usage_grabber.create ~threshold:Clock.hour ~table ~clock () in
  let devices = mk_devices ~clock ~network:1L 4 in
  let rng = Lt_util.Xorshift.create 77L in
  List.iter Device.step devices;
  ignore (Usage_grabber.poll g devices);
  for _minute = 1 to 240 do
    advance_and_step clock devices minute;
    (* Random 5% chance each device flips availability. *)
    List.iter
      (fun d ->
        if Lt_util.Xorshift.int rng 20 = 0 then
          Device.set_online d (not (Device.is_online d)))
      devices;
    ignore (Usage_grabber.poll g devices)
  done;
  List.iter (fun d -> Device.set_online d true) devices;
  advance_and_step clock devices minute;
  ignore (Usage_grabber.poll g devices);
  (* All stored rates must be sane: positive and over intervals <= T. *)
  let rows = (Table.query table Query.all).Table.rows in
  Alcotest.(check bool) "rows collected" true (List.length rows > 50);
  List.iter
    (fun r ->
      match (r.(2), r.(3), r.(5)) with
      | Value.Timestamp t2, Value.Timestamp t1, Value.Double rate ->
          Alcotest.(check bool) "interval within T" true
            (Int64.sub t2 t1 <= Clock.hour && t2 > t1);
          Alcotest.(check bool) "rate sane" true (rate >= 0.0)
      | _ -> Alcotest.fail "bad row shape")
    rows

let suite =
  [
    ("device: counter monotone / reboot / offline", `Quick, test_device_counter_monotone);
    ("device: events have monotone ids", `Quick, test_device_events_monotone_ids);
    ("device: motion words valid", `Quick, test_device_motion_words_valid);
    ("config store", `Quick, test_config_store);
    ("usage grabber: rates", `Quick, test_usage_grabber_rates);
    ("usage grabber: gap threshold T", `Quick, test_usage_grabber_gap_threshold);
    ("usage grabber: counter reset", `Quick, test_usage_grabber_counter_reset);
    ("usage grabber: crash recovery", `Quick, test_usage_grabber_crash_recovery);
    ("aggregator: 10-minute rollup + HLL", `Quick, test_aggregator_rollup);
    ("aggregator: crash recovery (exp lookback)", `Quick, test_aggregator_crash_recovery);
    ("aggregator: flush command beats safety lag", `Quick, test_aggregator_flush_command);
    ("aggregator: tag join", `Quick, test_tag_aggregator);
    ("events grabber: basic + incremental", `Quick, test_events_grabber_basic);
    ("events grabber: crash recovery", `Quick, test_events_grabber_crash_recovery);
    ("events grabber: long-offline device", `Quick, test_events_grabber_long_offline_device);
    ("events grabber: sentinels", `Quick, test_events_grabber_sentinels);
    ("events search", `Quick, test_events_search);
    ("motion: word encoding", `Quick, test_motion_words);
    ("motion: grabber, search, heatmap", `Quick, test_motion_grabber_and_search);
    ("pipeline with device churn", `Quick, test_pipeline_with_device_churn);
  ]
