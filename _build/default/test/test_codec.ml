open Littletable
open Lt_util

(* ---- Value ---------------------------------------------------------- *)

let test_value_types () =
  Alcotest.(check string) "name" "int32" (Value.type_name Value.T_int32);
  Alcotest.(check bool) "of_name" true
    (Value.type_of_name "timestamp" = Some Value.T_timestamp);
  Alcotest.(check bool) "of_name unknown" true (Value.type_of_name "nope" = None);
  Alcotest.(check bool) "matches" true (Value.matches Value.T_blob (Value.Blob "x"));
  Alcotest.(check bool) "mismatch" false
    (Value.matches Value.T_int32 (Value.Int64 1L));
  Alcotest.(check bool) "zero" true (Value.zero Value.T_string = Value.String "")

let test_value_widen () =
  Alcotest.(check bool) "i32 -> i64" true
    (Value.widen ~from:Value.T_int32 ~into:Value.T_int64 (Value.Int32 (-7l))
    = Some (Value.Int64 (-7L)));
  Alcotest.(check bool) "same type" true
    (Value.widen ~from:Value.T_string ~into:Value.T_string (Value.String "s")
    = Some (Value.String "s"));
  Alcotest.(check bool) "i64 -> i32 refused" true
    (Value.widen ~from:Value.T_int64 ~into:Value.T_int32 (Value.Int64 1L) = None)

let test_value_compare () =
  Alcotest.(check bool) "ints" true (Value.compare (Value.Int32 1l) (Value.Int32 2l) < 0);
  Alcotest.(check bool) "equal" true (Value.equal (Value.Double 1.5) (Value.Double 1.5));
  match Value.compare (Value.Int32 1l) (Value.String "x") with
  | (_ : int) -> Alcotest.fail "cross-type compare accepted"
  | exception Invalid_argument _ -> ()

let value_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun i -> Value.Int32 (Int32.of_int i)) int;
      map (fun i -> Value.Int64 (Int64.of_int i)) int;
      map (fun f -> Value.Double f) float;
      map (fun i -> Value.Timestamp (Int64.of_int (abs i))) int;
      map (fun s -> Value.String s) (string_size (int_bound 40));
      map (fun s -> Value.Blob s) (string_size (int_bound 40));
    ]

let prop_value_roundtrip =
  QCheck.Test.make ~name:"value encode/decode roundtrip" ~count:1000
    (QCheck.make value_gen) (fun v ->
      let b = Buffer.create 16 in
      Value.encode b v;
      let cur = Binio.cursor (Buffer.contents b) in
      let v' = Value.decode (Value.type_of v) cur in
      Binio.expect_end cur;
      (* NaN-safe comparison via the bit pattern. *)
      match (v, v') with
      | Value.Double a, Value.Double b -> Int64.bits_of_float a = Int64.bits_of_float b
      | _ -> Value.equal v v')

(* ---- Schema --------------------------------------------------------- *)

let test_schema_validation () =
  let col name ctype default = { Schema.name; ctype; default } in
  let expect_invalid name f =
    match f () with
    | (_ : Schema.t) -> Alcotest.failf "%s: accepted" name
    | exception Schema.Invalid _ -> ()
  in
  expect_invalid "no columns" (fun () -> Schema.create ~columns:[] ~pkey:[]);
  expect_invalid "duplicate names" (fun () ->
      Schema.create
        ~columns:[ col "a" Value.T_int32 (Value.Int32 0l);
                   col "a" Value.T_int32 (Value.Int32 0l);
                   col "ts" Value.T_timestamp (Value.Timestamp 0L) ]
        ~pkey:[ "a"; "ts" ]);
  expect_invalid "default type mismatch" (fun () ->
      Schema.create
        ~columns:[ col "a" Value.T_int32 (Value.Int64 0L);
                   col "ts" Value.T_timestamp (Value.Timestamp 0L) ]
        ~pkey:[ "a"; "ts" ]);
  expect_invalid "empty pkey" (fun () ->
      Schema.create
        ~columns:[ col "ts" Value.T_timestamp (Value.Timestamp 0L) ]
        ~pkey:[]);
  expect_invalid "pkey not ending in ts" (fun () ->
      Schema.create
        ~columns:[ col "a" Value.T_int32 (Value.Int32 0l);
                   col "ts" Value.T_timestamp (Value.Timestamp 0L) ]
        ~pkey:[ "ts"; "a" ]);
  expect_invalid "ts wrong type" (fun () ->
      Schema.create
        ~columns:[ col "ts" Value.T_int64 (Value.Int64 0L) ]
        ~pkey:[ "ts" ]);
  expect_invalid "unknown key column" (fun () ->
      Schema.create
        ~columns:[ col "ts" Value.T_timestamp (Value.Timestamp 0L) ]
        ~pkey:[ "nope"; "ts" ])

let test_schema_accessors () =
  let s = Support.usage_schema () in
  Alcotest.(check int) "columns" 5 (Schema.column_count s);
  Alcotest.(check int) "ts index" 2 (Schema.ts_index s);
  Alcotest.(check bool) "find" true (Schema.find_column s "rate" = Some 4);
  Alcotest.(check bool) "find missing" true (Schema.find_column s "zz" = None);
  Alcotest.(check (list string)) "pkey names" [ "network"; "device"; "ts" ]
    (Schema.pkey_names s);
  Alcotest.(check bool) "is_pkey" true (Schema.is_pkey s 0);
  Alcotest.(check bool) "not pkey" false (Schema.is_pkey s 3);
  let row = Support.usage_row ~network:1L ~device:2L ~ts:42L ~bytes:0L ~rate:0.0 in
  Schema.validate_row s row;
  Alcotest.(check int64) "row_ts" 42L (Schema.row_ts s row)

let test_schema_evolution () =
  let s = Support.usage_schema () in
  let s2 =
    Schema.add_column s
      { Schema.name = "pkts"; ctype = Value.T_int32; default = Value.Int32 (-1l) }
  in
  Alcotest.(check int) "version bumped" 1 (Schema.version s2);
  Alcotest.(check int) "6 columns" 6 (Schema.column_count s2);
  let s3 = Schema.widen_column s2 "pkts" in
  Alcotest.(check int) "version 2" 2 (Schema.version s3);
  let old_row = Support.usage_row ~network:9L ~device:8L ~ts:7L ~bytes:6L ~rate:0.5 in
  let new_row = Schema.translate_row ~from:s ~into:s3 old_row in
  Alcotest.(check int) "translated arity" 6 (Array.length new_row);
  Alcotest.(check bool) "default filled (widened)" true
    (new_row.(5) = Value.Int64 (-1L));
  Alcotest.(check bool) "existing kept" true (new_row.(0) = Value.Int64 9L);
  (* Widening translates an int32 cell written under s2. *)
  let row2 = Array.append old_row [| Value.Int32 5l |] in
  let new_row2 = Schema.translate_row ~from:s2 ~into:s3 row2 in
  Alcotest.(check bool) "widened cell" true (new_row2.(5) = Value.Int64 5L);
  (match Schema.widen_column s "rate" with
  | (_ : Schema.t) -> Alcotest.fail "widened a double"
  | exception Schema.Invalid _ -> ());
  match Schema.add_column s { Schema.name = "rate"; ctype = Value.T_int32; default = Value.Int32 0l } with
  | (_ : Schema.t) -> Alcotest.fail "duplicate add accepted"
  | exception Schema.Invalid _ -> ()

let test_schema_serialization () =
  let s =
    Schema.widen_column
      (Schema.add_column (Support.event_schema ())
         { Schema.name = "flags"; ctype = Value.T_int32; default = Value.Int32 3l })
      "flags"
  in
  let b = Buffer.create 64 in
  Schema.encode b s;
  let s' = Schema.decode (Binio.cursor (Buffer.contents b)) in
  Alcotest.(check bool) "roundtrip" true (Schema.equal s s')

(* ---- Key codec ------------------------------------------------------ *)

let enc v =
  let b = Buffer.create 16 in
  Key_codec.encode_value b v;
  Buffer.contents b

let prop_key_order () =
  fun (a, b) ->
    let ea = enc a and eb = enc b in
    let c_val = Value.compare a b in
    let c_enc = String.compare ea eb in
    (c_val < 0) = (c_enc < 0) && (c_val = 0) = (c_enc = 0)

let prop_int64_order =
  QCheck.Test.make ~name:"key order: int64" ~count:2000
    QCheck.(pair (map Int64.of_int int) (map Int64.of_int int))
    (fun (a, b) -> prop_key_order () (Value.Int64 a, Value.Int64 b))

let prop_int32_order =
  QCheck.Test.make ~name:"key order: int32" ~count:2000
    QCheck.(pair int32 int32)
    (fun (a, b) -> prop_key_order () (Value.Int32 a, Value.Int32 b))

let prop_double_order =
  QCheck.Test.make ~name:"key order: double" ~count:2000
    QCheck.(pair float float)
    (fun (a, b) ->
      QCheck.assume (not (Float.is_nan a) && not (Float.is_nan b));
      prop_key_order () (Value.Double a, Value.Double b))

let prop_string_order =
  QCheck.Test.make ~name:"key order: string (with NULs)" ~count:2000
    QCheck.(pair (string_gen_of_size Gen.(int_bound 20) Gen.char)
              (string_gen_of_size Gen.(int_bound 20) Gen.char))
    (fun (a, b) -> prop_key_order () (Value.String a, Value.String b))

let prop_key_value_roundtrip =
  QCheck.Test.make ~name:"key codec roundtrip" ~count:1000
    (QCheck.make value_gen) (fun v ->
      QCheck.assume
        (match v with Value.Double f -> not (Float.is_nan f) | _ -> true);
      let cur = Binio.cursor (enc v) in
      let v' = Key_codec.decode_value (Value.type_of v) cur in
      Binio.expect_end cur;
      Value.equal v v')

let test_double_edge_order () =
  let vals =
    [ Float.neg_infinity; -1e308; -1.0; -1e-300; -0.0; 0.0; 1e-300; 1.0; 1e308;
      Float.infinity ]
  in
  let encs = List.map (fun f -> enc (Value.Double f)) vals in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if String.compare a b > 0 then Alcotest.fail "double order violated";
        check rest
    | _ -> ()
  in
  check encs;
  (* -0.0 sorts strictly before 0.0, matching Float.compare. *)
  Alcotest.(check bool) "-0 < 0" true
    (String.compare (enc (Value.Double (-0.0))) (enc (Value.Double 0.0)) < 0)

let test_full_key_and_prefix () =
  let s = Support.usage_schema () in
  let row = Support.usage_row ~network:5L ~device:77L ~ts:123456L ~bytes:1L ~rate:2.0 in
  let key = Key_codec.encode_key s row in
  Alcotest.(check int) "fixed width" 24 (String.length key);
  Alcotest.(check int64) "ts_of_key" 123456L (Key_codec.ts_of_key key);
  let p1 = Key_codec.encode_prefix s [ Value.Int64 5L ] in
  let p2 = Key_codec.encode_prefix s [ Value.Int64 5L; Value.Int64 77L ] in
  Alcotest.(check bool) "p1 prefix of key" true
    (String.length p1 < String.length key && String.sub key 0 (String.length p1) = p1);
  Alcotest.(check bool) "p2 prefix of key" true
    (String.sub key 0 (String.length p2) = p2);
  let decoded = Key_codec.decode_key s key in
  Alcotest.(check bool) "decode key" true
    (decoded = [| Value.Int64 5L; Value.Int64 77L; Value.Timestamp 123456L |]);
  let full, prefixes = Key_codec.encode_key_with_prefixes s row in
  Alcotest.(check string) "with_prefixes full" key full;
  Alcotest.(check bool) "proper prefixes" true (prefixes = [ p1; p2 ]);
  (* Type errors are rejected. *)
  match Key_codec.encode_prefix s [ Value.String "oops" ] with
  | (_ : string) -> Alcotest.fail "bad prefix type accepted"
  | exception Schema.Invalid _ -> ()

let test_string_keys_prefix_preserving () =
  let s = Support.event_schema () in
  let row ts net dev =
    [| Value.String net; Value.String dev; Value.Timestamp ts; Value.Int64 0L;
       Value.Blob "" |]
  in
  let k1 = Key_codec.encode_key s (row 1L "net" "dev") in
  let p = Key_codec.encode_prefix s [ Value.String "net" ] in
  Alcotest.(check bool) "prefix preserved" true
    (String.sub k1 0 (String.length p) = p);
  (* "net" as a prefix must NOT match network "netX". *)
  let k2 = Key_codec.encode_key s (row 1L "netX" "dev") in
  Alcotest.(check bool) "no false prefix" false
    (String.length k2 >= String.length p && String.sub k2 0 (String.length p) = p);
  (* Strings containing NUL and 0x01 roundtrip through full keys. *)
  let tricky = "a\x00b\x01c" in
  let k3 = Key_codec.encode_key s (row 2L tricky "d") in
  let dec = Key_codec.decode_key s k3 in
  Alcotest.(check bool) "tricky roundtrip" true (dec.(0) = Value.String tricky)

let test_prefix_succ () =
  Alcotest.(check bool) "simple" true (Key_codec.prefix_succ "abc" = Some "abd");
  Alcotest.(check bool) "carry" true (Key_codec.prefix_succ "a\xff\xff" = Some "b");
  Alcotest.(check bool) "all ff" true (Key_codec.prefix_succ "\xff\xff" = None);
  Alcotest.(check bool) "empty" true (Key_codec.prefix_succ "" = None)

let prop_prefix_succ_bounds =
  QCheck.Test.make ~name:"prefix_succ bounds the prefix range" ~count:1000
    QCheck.(pair (string_gen_of_size Gen.(int_bound 8) Gen.char)
              (string_gen_of_size Gen.(int_bound 8) Gen.char))
    (fun (p, tail) ->
      let full = p ^ tail in
      match Key_codec.prefix_succ p with
      | None -> true
      | Some succ ->
          String.compare full succ < 0 && String.compare p succ < 0)

(* ---- Row codec ------------------------------------------------------ *)

let test_row_roundtrip () =
  let s = Support.usage_schema () in
  let row = Support.usage_row ~network:3L ~device:4L ~ts:99L ~bytes:1234L ~rate:0.25 in
  let key = Key_codec.encode_key s row in
  let value = Row_codec.encode_value s row in
  let row' = Row_codec.decode s ~key ~value in
  Alcotest.(check bool) "roundtrip" true (row = row');
  Alcotest.(check int) "stored size" (String.length key + String.length value)
    (Row_codec.stored_size s row)

let test_row_translated_decode () =
  let s = Support.usage_schema () in
  let s2 =
    Schema.add_column s
      { Schema.name = "errors"; ctype = Value.T_int32; default = Value.Int32 9l }
  in
  let row = Support.usage_row ~network:3L ~device:4L ~ts:99L ~bytes:1234L ~rate:0.25 in
  let key = Key_codec.encode_key s row in
  let value = Row_codec.encode_value s row in
  let row' = Row_codec.decode_translated ~from:s ~into:s2 ~key ~value in
  Alcotest.(check int) "arity" 6 (Array.length row');
  Alcotest.(check bool) "default" true (row'.(5) = Value.Int32 9l)

let suite =
  [
    ("value types", `Quick, test_value_types);
    ("value widen", `Quick, test_value_widen);
    ("value compare", `Quick, test_value_compare);
    ("schema validation", `Quick, test_schema_validation);
    ("schema accessors", `Quick, test_schema_accessors);
    ("schema evolution", `Quick, test_schema_evolution);
    ("schema serialization", `Quick, test_schema_serialization);
    ("double edge ordering", `Quick, test_double_edge_order);
    ("full key and prefixes", `Quick, test_full_key_and_prefix);
    ("string keys prefix-preserving", `Quick, test_string_keys_prefix_preserving);
    ("prefix_succ", `Quick, test_prefix_succ);
    ("row codec roundtrip", `Quick, test_row_roundtrip);
    ("row codec translated decode", `Quick, test_row_translated_decode);
    Support.qcheck prop_value_roundtrip;
    Support.qcheck prop_int64_order;
    Support.qcheck prop_int32_order;
    Support.qcheck prop_double_order;
    Support.qcheck prop_string_order;
    Support.qcheck prop_key_value_roundtrip;
    Support.qcheck prop_prefix_succ_bounds;
  ]
