open Lt_lz

let roundtrip s =
  let c = Lz.compress s in
  Lz.decompress ~raw_len:(String.length s) c

let check_roundtrip name s =
  Alcotest.(check string) name s (roundtrip s)

let test_basic () =
  check_roundtrip "empty" "";
  check_roundtrip "one byte" "x";
  check_roundtrip "short" "hello";
  check_roundtrip "boundary 15" (String.make 15 'a');
  check_roundtrip "boundary 16" (String.make 16 'a');
  check_roundtrip "zeros" (String.make 100_000 '\000');
  check_roundtrip "alphabet repeat"
    (String.concat "" (List.init 5000 (fun _ -> "abcdefghij")))

let test_compresses_repetitive () =
  let s = String.concat "" (List.init 10_000 (fun _ -> "tick tock ")) in
  let c = Lz.compress s in
  Alcotest.(check bool) "ratio < 10%" true
    (String.length c * 10 < String.length s);
  Alcotest.(check string) "roundtrip" s (Lz.decompress ~raw_len:(String.length s) c)

let test_expansion_bound () =
  let r = Lt_util.Xorshift.create 5L in
  List.iter
    (fun n ->
      let s = Lt_util.Xorshift.bytes r n in
      let c = Lz.compress s in
      Alcotest.(check bool)
        (Printf.sprintf "bound at %d" n)
        true
        (String.length c <= Lz.max_compressed_len n);
      Alcotest.(check string) "roundtrip" s (Lz.decompress ~raw_len:n c))
    [ 0; 1; 12; 13; 16; 100; 4096; 65536; 1_000_000 ]

let test_long_matches () =
  (* Match length extensions: runs needing several 255-extension bytes. *)
  let s = String.make 2000 'q' ^ "tail" ^ String.make 600 'q' in
  check_roundtrip "long runs" s;
  (* Overlapping matches with offset 1. *)
  check_roundtrip "offset-1 overlap" ("z" ^ String.make 999 'z')

let test_far_matches () =
  (* A repeat beyond the 64 kB window must still roundtrip (emitted as
     literals or nearer matches). *)
  let blockb = Bytes.create 70_000 in
  let r = Lt_util.Xorshift.create 11L in
  for i = 0 to Bytes.length blockb - 1 do
    Bytes.set blockb i (Char.chr (Lt_util.Xorshift.int r 256))
  done;
  let block = Bytes.to_string blockb in
  check_roundtrip "far repeat" (block ^ block)

let test_corrupt_rejected () =
  let expect_corrupt name f =
    match f () with
    | (_ : string) -> Alcotest.failf "%s: expected Lz.Corrupt" name
    | exception Lz.Corrupt _ -> ()
  in
  expect_corrupt "truncated" (fun () ->
      let c = Lz.compress (String.make 1000 'a') in
      Lz.decompress ~raw_len:1000 (String.sub c 0 (String.length c - 3)));
  expect_corrupt "wrong raw_len short" (fun () ->
      Lz.decompress ~raw_len:5 (Lz.compress "hello world, hello world, hello"));
  expect_corrupt "wrong raw_len long" (fun () ->
      Lz.decompress ~raw_len:500 (Lz.compress "hi"));
  expect_corrupt "bad offset" (fun () ->
      (* token: 1 literal + match, offset 0 (invalid). *)
      Lz.decompress ~raw_len:10 "\x10a\x00\x00rest");
  expect_corrupt "nonempty for empty" (fun () -> Lz.decompress ~raw_len:0 "x")

let prop_roundtrip =
  QCheck.Test.make ~name:"lz roundtrip (arbitrary strings)" ~count:500
    QCheck.(string_gen_of_size Gen.(int_bound 2000) Gen.char)
    (fun s -> roundtrip s = s)

let prop_roundtrip_low_entropy =
  (* Strings over a 4-letter alphabet: many matches, exercises every
     match path. *)
  QCheck.Test.make ~name:"lz roundtrip (low entropy)" ~count:500
    QCheck.(string_gen_of_size Gen.(int_bound 5000) (Gen.oneofl [ 'a'; 'b'; 'c'; 'd' ]))
    (fun s -> roundtrip s = s)

let prop_decompress_never_crashes =
  (* Arbitrary bytes fed to the decoder either decode or raise Corrupt —
     never a crash or out-of-bounds write. *)
  QCheck.Test.make ~name:"lz decoder is total" ~count:1000
    QCheck.(pair small_nat (string_gen_of_size Gen.(int_bound 300) Gen.char))
    (fun (raw_len, junk) ->
      match Lz.decompress ~raw_len junk with
      | (_ : string) -> true
      | exception Lz.Corrupt _ -> true)

let suite =
  [
    ("basic roundtrips", `Quick, test_basic);
    ("compresses repetitive input", `Quick, test_compresses_repetitive);
    ("expansion bound on random input", `Quick, test_expansion_bound);
    ("long matches", `Quick, test_long_matches);
    ("matches beyond window", `Quick, test_far_matches);
    ("corrupt input rejected", `Quick, test_corrupt_rejected);
    Support.qcheck prop_roundtrip;
    Support.qcheck prop_roundtrip_low_entropy;
    Support.qcheck prop_decompress_never_crashes;
  ]
