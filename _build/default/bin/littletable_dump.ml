(* Offline inspection of LittleTable data directories — the sst_dump of
   this engine. Useful for debugging layouts and verifying archival
   copies without starting a server.

     littletable_dump --dir DB_DIR                    # database overview
     littletable_dump --dir DB_DIR --table usage      # per-tablet detail
     littletable_dump --dir DB_DIR --table usage --rows 20   # sample rows *)

open Littletable
module Vfs = Lt_vfs.Vfs

let human_bytes n =
  if n >= 1 lsl 30 then Printf.sprintf "%.1f GiB" (float_of_int n /. float_of_int (1 lsl 30))
  else if n >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (float_of_int n /. float_of_int (1 lsl 20))
  else if n >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.0)
  else Printf.sprintf "%d B" n

let pp_ts ts =
  let s = Int64.to_float ts /. 1e6 in
  let tm = Unix.gmtime s in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let dump_table vfs ~db_dir ~name ~rows =
  let dir = Filename.concat db_dir name in
  let desc = Descriptor.load vfs ~dir in
  Printf.printf "table %s\n" name;
  Format.printf "  %a@." Schema.pp desc.Descriptor.schema;
  (match desc.Descriptor.ttl with
  | Some ttl ->
      Printf.printf "  ttl: %.1f days\n" (Int64.to_float ttl /. 86_400e6)
  | None -> Printf.printf "  ttl: none\n");
  Printf.printf "  next tablet id: %d\n" desc.Descriptor.next_id;
  Printf.printf "  tablets: %d\n" (List.length desc.Descriptor.tablets);
  let total_rows = ref 0 and total_bytes = ref 0 in
  List.iter
    (fun (m : Descriptor.tablet_meta) ->
      total_rows := !total_rows + m.Descriptor.row_count;
      total_bytes := !total_bytes + m.Descriptor.size;
      Printf.printf "    %-14s %8d rows  %10s  [%s .. %s]\n" m.Descriptor.file
        m.Descriptor.row_count
        (human_bytes m.Descriptor.size)
        (pp_ts m.Descriptor.min_ts) (pp_ts m.Descriptor.max_ts);
      (* Footer-level detail from the tablet itself. *)
      match
        Tablet.open_reader vfs
          ~path:(Filename.concat dir m.Descriptor.file)
          ~into:desc.Descriptor.schema
      with
      | reader ->
          let stored = Tablet.stored_schema reader in
          Printf.printf "        blocks %d, schema v%d%s\n"
            (Tablet.block_count reader)
            (Schema.version stored)
            (if Tablet.may_contain_prefix reader "\xff\xff\xff\xff\xff\xff\xff"
               || Tablet.may_contain_prefix reader "\x00"
             then "" (* cannot tell without a bloom *)
             else "");
          Tablet.close reader
      | exception exn ->
          Printf.printf "        !! unreadable: %s\n" (Printexc.to_string exn))
    desc.Descriptor.tablets;
  Printf.printf "  total: %d rows, %s on disk\n" !total_rows (human_bytes !total_bytes);
  if rows > 0 then begin
    Printf.printf "  first %d rows:\n" rows;
    let clock = Lt_util.Clock.system in
    let table = Table.open_ vfs ~clock ~config:Config.default ~dir ~name in
    let result = Table.query table (Query.with_limit rows Query.all) in
    List.iter
      (fun row ->
        Printf.printf "    %s\n"
          (String.concat ", "
             (Array.to_list (Array.map Value.to_string row))))
      result.Table.rows;
    Table.close table
  end

let run db_dir table rows =
  let vfs = Vfs.real () in
  match table with
  | Some name -> dump_table vfs ~db_dir ~name ~rows
  | None ->
      let entries = try Vfs.readdir vfs db_dir with Vfs.Io_error _ -> [] in
      let tables =
        List.filter
          (fun name ->
            Descriptor.exists vfs ~dir:(Filename.concat db_dir name))
          entries
      in
      Printf.printf "database %s: %d table(s)\n" db_dir (List.length tables);
      List.iter
        (fun name ->
          let desc = Descriptor.load vfs ~dir:(Filename.concat db_dir name) in
          let bytes =
            List.fold_left
              (fun a (m : Descriptor.tablet_meta) -> a + m.Descriptor.size)
              0 desc.Descriptor.tablets
          in
          let nrows =
            List.fold_left
              (fun a (m : Descriptor.tablet_meta) -> a + m.Descriptor.row_count)
              0 desc.Descriptor.tablets
          in
          Printf.printf "  %-24s %3d tablets  %10d rows  %10s\n" name
            (List.length desc.Descriptor.tablets)
            nrows (human_bytes bytes))
        tables

open Cmdliner

let db_dir =
  let doc = "Database directory." in
  Arg.(required & opt (some string) None & info [ "d"; "dir" ] ~docv:"DIR" ~doc)

let table =
  let doc = "Inspect one table in detail." in
  Arg.(value & opt (some string) None & info [ "t"; "table" ] ~docv:"TABLE" ~doc)

let rows =
  let doc = "Also print the first N rows of the table." in
  Arg.(value & opt int 0 & info [ "rows" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Inspect LittleTable data directories offline" in
  Cmd.v (Cmd.info "littletable-dump" ~doc) Term.(const run $ db_dir $ table $ rows)

let () = exit (Cmd.eval cmd)
