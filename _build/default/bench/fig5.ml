(* Figure 5: query throughput vs number of tablets.

   Paper setup (§5.1.5): a 2 GB table of 128-byte rows split across
   1..128 tablets; one reader scans the whole table. Because the scan
   merge-sorts by key and the tablets interleave in key order, the disk
   arm seeks between tablets for every readahead window: throughput
   collapses from full streaming speed to ~24 MB/s at the default
   128 kB readahead and ~40 MB/s with 1 MB readahead.

   Construction: each tablet holds one row per key stripe at a distinct
   timestamp, so the k-way merge alternates across all tablets row by
   row — the worst case the figure measures. *)

open Littletable
open Support

let build_table env ~tablets ~total_bytes =
  let row_size = 128 in
  let rows_total = total_bytes / row_size in
  let rows_per_tablet = max 1 (rows_total / tablets) in
  let config_table =
    Db.create_table env.db "t5" (row_schema ()) ~ttl:None
  in
  let payload_rng = Lt_util.Xorshift.create 99L in
  let base = Lt_util.Clock.now env.clock in
  for t = 0 to tablets - 1 do
    let rows =
      List.init rows_per_tablet (fun i ->
          [|
            Value.Int64 (Int64.of_int i);
            Value.Int64 0L;
            Value.Int64 0L;
            Value.Int64 0L;
            Value.Int64 0L;
            Value.Timestamp (Int64.add base (Int64.of_int t));
            Value.Blob (Lt_util.Xorshift.bytes payload_rng (payload_size ~row_size:128));
          |])
    in
    Table.insert config_table rows;
    Table.flush_all config_table
  done;
  (config_table, rows_per_tablet * tablets * row_size)

let scan env table =
  let src = Table.query_iter table Query.all in
  let rows = ref 0 in
  let rec go () = match src () with Some _ -> incr rows; go () | None -> () in
  ignore env;
  go ();
  !rows

let run ~total_bytes () =
  header "Figure 5: query throughput vs number of tablets";
  note "paper: ~full disk speed at one tablet, collapsing to ~24 MB/s at";
  note "128 tablets with 128 kB readahead and ~40 MB/s with 1 MB readahead.";
  note "(table size: %s, scaled from 2 GB)" (human_bytes total_bytes);
  table_header
    [ ("tablets", 8); ("128k RA MB/s", 13); ("1M RA MB/s", 11) ];
  List.iter
    (fun tablets ->
      (* Keep memtables unbounded and merging off so the layout is the
         constructed one. *)
      let config =
        Config.make ~flush_size:max_int ~merge_delay:(Int64.mul 1000L Lt_util.Clock.day)
          ~bloom_bits_per_key:0 ()
      in
      let env = make_env ~config () in
      let table, bytes = build_table env ~tablets ~total_bytes in
      let throughput readahead =
        Disk_model.set_readahead env.model readahead;
        Disk_model.clear_cache env.model;
        Disk_model.reset env.model;
        ignore (scan env table);
        let disk_s = Disk_model.elapsed_s env.model in
        float_of_int bytes /. 1e6 /. disk_s
      in
      let t128 = throughput (128 * 1024) in
      let t1m = throughput (1024 * 1024) in
      Printf.printf "%-8d  %-13.1f  %-11.1f\n" tablets t128 t1m;
      Db.close env.db)
    [ 1; 2; 4; 8; 16; 32; 64; 128 ]
