(* Figure 3: insert throughput over time with active tablet merging.

   Paper setup (§5.1.3): 4 kB rows in 64 kB batches, 16 GB total; flushes
   at 16 MB; merged tablets capped at 128 MB; at most 100 tablets of
   flush backlog; merging begins 90 s after a tablet is written. Result:
   an initial CPU-limited burst, a disk-bound plateau (~70 MB/s), a drop
   when the merge thread wakes, and an equilibrium near half the
   disk-bound rate (write amplification 2).

   We run the same pipeline scaled down against the disk model.
   Simulated time is the modeled disk time: the figure is about flushes
   and merges competing for disk bandwidth, and the paper's server is
   never CPU-bound once the backlog fills (our OCaml per-row CPU is an
   order of magnitude above their C++'s, so including it would swamp the
   disk signal this figure exists to show). The manual clock follows
   simulated time so merge-delay eligibility fires as in the paper. *)

open Littletable
open Support

let run ~volume () =
  header "Figure 3: insert throughput with active tablet merging";
  note "paper: initial burst, disk-bound plateau, merge onset (impulses),";
  note "then equilibrium at roughly half the plateau (write amp 2).";
  note "(total volume: %s, scaled from 16 GB)" (human_bytes volume);
  let row_size = 4096 and batch_bytes = 64 * 1024 in
  let merge_delay_s = 2 in
  (* Scaled from the paper's 16 MB flushes / 128 MB tablets / 100-tablet
     backlog / 90 s merge delay, keeping the ratios. *)
  let config =
    Config.make ~flush_size:(2 * mib) ~max_tablet_size:(16 * mib)
      ~flush_backlog:16
      ~merge_delay:(Lt_util.Clock.sec merge_delay_s)
      ~rollover_spread:0.0 ~bloom_bits_per_key:0 ()
  in
  let env = make_env ~config () in
  let table = Db.create_table env.db "t3" (row_schema ()) ~ttl:None in
  let rng = Lt_util.Xorshift.create 7L in
  let rows_per_batch = batch_bytes / row_size in
  let batches = volume / batch_bytes in

  let sim_time = ref 0.0 in
  (* The flush path and the merge thread share the disk: the merge
     thread gets to consume about as much disk time as inserts do
     (50/50 interleaving of their I/O), so it cannot starve inserts
     when a backlog of eligible merges appears all at once. *)
  let merge_budget = ref 0.0 in
  let window = 1.0 in
  let window_start = ref 0.0 and window_bytes = ref 0 in
  let merge_events = ref [] in
  let series = ref [] in
  Disk_model.reset env.model;
  let flush_window () =
    let mb_s = float_of_int !window_bytes /. 1e6 /. window in
    series := (!window_start, mb_s) :: !series;
    window_start := !window_start +. window;
    window_bytes := 0
  in
  for _ = 1 to batches do
    let batch = make_batch rng ~clock:env.clock ~n:rows_per_batch ~row_size in
    Table.insert table batch;
    (* Advance simulated (disk) time by the new modeled disk work. *)
    let disk = Disk_model.elapsed_s env.model in
    Disk_model.reset env.model;
    sim_time := !sim_time +. disk;
    merge_budget := !merge_budget +. disk;
    Lt_util.Clock.set env.clock
      (Int64.add 1_720_000_000_000_000L (Lt_util.Clock.of_float_s !sim_time));
    window_bytes := !window_bytes + batch_bytes;
    while !sim_time >= !window_start +. window do
      flush_window ()
    done;
    (* The merge "thread": merge while it has bandwidth budget and the
       policy finds eligible work (merge disk time also advances the
       simulation). *)
    let continue_merging = ref (!merge_budget > 0.0) in
    while !continue_merging do
      if Table.merge_step table then begin
        merge_events := !sim_time :: !merge_events;
        let disk = Disk_model.elapsed_s env.model in
        Disk_model.reset env.model;
        sim_time := !sim_time +. disk;
        merge_budget := !merge_budget -. disk;
        Lt_util.Clock.set env.clock
          (Int64.add 1_720_000_000_000_000L (Lt_util.Clock.of_float_s !sim_time));
        continue_merging := !merge_budget > 0.0
      end
      else continue_merging := false
    done
  done;
  flush_window ();

  Printf.printf "\n";
  table_header [ ("sim time (s)", 12); ("insert MB/s", 12); ("", 42) ];
  let series = List.rev !series in
  let max_mb = List.fold_left (fun m (_, v) -> Float.max m v) 1.0 series in
  List.iter
    (fun (t, mb_s) ->
      let merges_in_window =
        List.length (List.filter (fun m -> m >= t && m < t +. window) !merge_events)
      in
      let bar_len = int_of_float (mb_s /. max_mb *. 38.0) in
      Printf.printf "%-12.0f  %-12.1f  %s%s\n" t mb_s (String.make bar_len '#')
        (if merges_in_window > 0 then Printf.sprintf " m%d" merges_in_window else ""))
    series;
  let s = Table.stats table in
  Printf.printf "\nmerges: %d; write amplification: %.2f (paper: 2 at this rate)\n"
    s.Stats.merges (Stats.write_amplification s);
  Printf.printf "merge onset at ~%d s of simulated time (delay setting)\n" merge_delay_s;
  Db.close env.db
