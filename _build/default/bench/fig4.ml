(* Figure 4: aggregate insert throughput vs number of writers.

   Paper setup (§5.1.4): each of 1..32 writers inserts 500 MB into its
   own table in 32-row (128-byte) batches. Because the server "shares
   almost no state between tables", small-batch inserts are CPU-bound
   and aggregate throughput climbs with writers until it approaches the
   disk's peak write rate (~75% at 32 writers).

   This container has one core, so parallel CPU cannot be measured
   directly; instead we run each writer's (real) engine work serially,
   take the slowest single writer's CPU time as the parallel critical
   path — the paper's writers are independent processes on a 12-core
   machine, far more cores than writers' CPU demand — and combine it
   with the shared disk model:

       aggregate = total bytes / max(max_i cpu_i, modeled disk time) *)

open Littletable
open Support

let run ~per_writer () =
  header "Figure 4: aggregate insert throughput vs number of writers";
  note "paper: rises from ~37 MB/s at one writer toward ~75%% of the";
  note "disk's peak with 32 writers.";
  note "(volume per writer: %s, scaled from 500 MB)" (human_bytes per_writer);
  let row_size = 128 in
  let rows_per_batch = 32 in
  table_header
    [ ("writers", 8); ("agg MB/s", 10); ("%% of disk peak", 14); ("max cpu s", 10); ("disk s", 8) ];
  List.iter
    (fun writers ->
      (* Small flushes keep per-writer heap bounded at this scale. *)
      let env = make_env ~config:(Config.make ~flush_size:(2 * mib) ()) () in
      let batches = per_writer / (rows_per_batch * row_size) in
      let cpu_times =
        List.init writers (fun w ->
            let rng = Lt_util.Xorshift.create (Int64.of_int (1000 + w)) in
            let table =
              Db.create_table env.db (Printf.sprintf "w%d" w) (row_schema ())
                ~ttl:None
            in
            let t0 = wall () in
            for _ = 1 to batches do
              Table.insert table
                (make_batch rng ~clock:env.clock ~n:rows_per_batch ~row_size);
              Lt_util.Clock.advance env.clock (Lt_util.Clock.usec rows_per_batch)
            done;
            Table.flush_all table;
            wall () -. t0)
      in
      let disk_s = Disk_model.elapsed_s env.model in
      let max_cpu = List.fold_left Float.max 0.0 cpu_times in
      let total_bytes = writers * batches * rows_per_batch * row_size in
      let agg = float_of_int total_bytes /. 1e6 /. Float.max max_cpu disk_s in
      Printf.printf "%-8d  %-10.1f  %-14.1f  %-10.2f  %-8.2f\n" writers agg
        (agg /. disk_seq_mb_s *. 100.0)
        max_cpu disk_s;
      Db.close env.db)
    [ 1; 2; 4; 8; 16; 32 ]
