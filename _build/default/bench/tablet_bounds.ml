(* Appendix ablation: the merge policy's logarithmic guarantees.

   The appendix proves that merging the first adjacent pair with
   |t_i| <= 2|t_{i+1}| (plus following tablets) keeps both the number of
   tablets and the number of times any row is rewritten logarithmic in
   the table size. This bench simulates the online process — flush a
   tablet, run the policy to a fixpoint, repeat — over thousands of
   flushes and prints measured values against the bounds, plus the write
   amplification a naive always-merge-into-one policy would pay. *)

open Littletable

type sim = {
  mutable tablets : (int * int) list;  (** (size, max per-row rewrite depth) *)
  mutable max_rewrites : int;
  mutable bytes_rewritten : int;
}

let merge_to_fixpoint ~max_tablet_size sim =
  let rec step () =
    let arr = Array.of_list sim.tablets in
    match Merge_policy.plan_sizes ~max_tablet_size (Array.map fst arr) with
    | None -> ()
    | Some (start, len) ->
        let size = ref 0 and depth = ref 0 in
        for i = start to start + len - 1 do
          size := !size + fst arr.(i);
          depth := max !depth (snd arr.(i))
        done;
        sim.bytes_rewritten <- sim.bytes_rewritten + !size;
        sim.max_rewrites <- max sim.max_rewrites (!depth + 1);
        let out = ref [] in
        Array.iteri
          (fun i t ->
            if i < start || i >= start + len then out := t :: !out
            else if i = start then out := (!size, !depth + 1) :: !out)
          arr;
        sim.tablets <- List.rev !out;
        step ()
  in
  step ()

let run () =
  Support.header "Appendix: merge policy keeps tablets and rewrites logarithmic";
  Support.note "online simulation: flush one tablet, merge to fixpoint, repeat.";
  Support.note "tablet-count bound: log2(T+1); rewrite bound: log1.5(T) + 2.";
  Support.table_header
    [ ("flushes", 8); ("total size", 11); ("tablets", 8); ("bound", 6);
      ("rewrites", 9); ("bound", 6); ("write amp", 10); ("naive amp", 10) ];
  let rng = Lt_util.Xorshift.create 123L in
  List.iter
    (fun n ->
      (* n flushes of ~16-unit tablets with jitter, arriving one at a
         time (newest timespan last). *)
      let sim = { tablets = []; max_rewrites = 0; bytes_rewritten = 0 } in
      let total = ref 0 in
      let naive_rewritten = ref 0 and naive_total = ref 0 in
      for _ = 1 to n do
        let size = 8 + Lt_util.Xorshift.int rng 16 in
        total := !total + size;
        (* Naive policy: every flush rewrites the whole table so far. *)
        if !naive_total > 0 then naive_rewritten := !naive_rewritten + !naive_total + size;
        naive_total := !naive_total + size;
        sim.tablets <- sim.tablets @ [ (size, 0) ];
        merge_to_fixpoint ~max_tablet_size:max_int sim
      done;
      let log2 x = log (float_of_int x) /. log 2.0 in
      let log15 x = log (float_of_int x) /. log 1.5 in
      Printf.printf "%-8d  %-11d  %-8d  %-6.0f  %-9d  %-6.0f  %-10.2f  %-10.2f\n" n
        !total (List.length sim.tablets)
        (log2 (!total + 1))
        sim.max_rewrites
        (log15 !total +. 2.0)
        (float_of_int (!total + sim.bytes_rewritten) /. float_of_int !total)
        (float_of_int (!total + !naive_rewritten) /. float_of_int !total))
    [ 16; 64; 256; 1024; 4096 ]
