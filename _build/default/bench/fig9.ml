(* Figure 9: rows scanned / rows returned per table.

   The paper measures this across a production day: "on average, queries
   are very efficient, scanning only 1.4 rows for every row they return,
   and 80% of tables see a ratio of 3.3 or less. A small minority ... are
   from applications looking for the latest value for a prefix of the
   primary key" and scan much more (§5.2.4).

   We regenerate the distribution by measurement, not synthesis: a mix of
   small tables with workload profiles drawn from the applications —
   well-clustered range reads (usage graphs), narrow time windows inside
   wide tablets, and latest-for-a-short-prefix queries — each run against
   the real engine, reading the ratio from the engine's own counters. *)

open Littletable
open Support

type profile = Graph_reads | Narrow_window | Latest_prefix

let build_and_query rng profile index env =
  let table =
    Db.create_table env.db (Printf.sprintf "t9_%d" index)
      (Support.row_schema ()) ~ttl:None
  in
  let base = Lt_util.Clock.now env.clock in
  let networks = 4 and devices = 8 and samples = 60 in
  let rows =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun d ->
            List.init samples (fun s ->
                [|
                  Value.Int64 (Int64.of_int n);
                  Value.Int64 (Int64.of_int d);
                  Value.Int64 0L; Value.Int64 0L; Value.Int64 0L;
                  Value.Timestamp
                    (Int64.add base (Lt_util.Clock.sec ((s * 60) + n + (d * 2))));
                  Value.Blob (Lt_util.Xorshift.bytes rng 32);
                |]))
          (List.init devices Fun.id))
      (List.init networks Fun.id)
  in
  let rows = List.sort (fun a b -> compare (a.(5), a.(0), a.(1)) (b.(5), b.(0), b.(1))) rows in
  List.iter (fun r -> Table.insert_row table r) rows;
  Table.flush_all table;
  let span = Lt_util.Clock.sec (samples * 60) in
  (match profile with
  | Graph_reads ->
      (* Dashboard graphs: mostly whole key ranges over the full span,
         with the occasional shorter window (a recent-day view), so the
         per-table ratio lands a little above 1. *)
      for n = 0 to networks - 1 do
        ignore (Table.query table (Query.prefix [ Value.Int64 (Int64.of_int n) ]))
      done;
      let frac = 50 + Lt_util.Xorshift.int rng 45 in
      let ts_min =
        Int64.add base (Int64.div (Int64.mul span (Int64.of_int frac)) 100L)
      in
      for n = 0 to networks - 1 do
        ignore
          (Table.query table
             (Query.between ~ts_min (Query.prefix [ Value.Int64 (Int64.of_int n) ])))
      done
  | Narrow_window ->
      (* Recent-hour views: a narrow ts slice of each device's range
         scans past out-of-window rows; window width varies by table. *)
      let width_s = 120 + Lt_util.Xorshift.int rng 1800 in
      for n = 0 to networks - 1 do
        for d = 0 to devices - 1 do
          let q =
            Query.between
              ~ts_min:(Int64.add base (Int64.div span 2L))
              ~ts_max:(Int64.add base (Int64.add (Int64.div span 2L) (Lt_util.Clock.sec width_s)))
              (Query.prefix [ Value.Int64 (Int64.of_int n); Value.Int64 (Int64.of_int d) ])
          in
          ignore (Table.query table q)
        done
      done
  | Latest_prefix ->
      (* The §3.4.5 pathology: latest row for a short prefix scans every
         row under the prefix. *)
      for n = 0 to networks - 1 do
        ignore (Table.latest table [ Value.Int64 (Int64.of_int n) ])
      done);
  let s = Table.stats table in
  Stats.scan_ratio s

let run () =
  header "Figure 9: rows scanned / rows returned, per table (measured)";
  note "paper: average ratio 1.4; 80%% of tables <= 3.3; a minority of";
  note "latest-for-prefix tables scan orders of magnitude more.";
  let rng = Lt_util.Xorshift.create 9L in
  let profiles =
    (* The production mix: most tables serve graph reads. *)
    List.concat
      [
        List.init 22 (fun _ -> Graph_reads);
        List.init 8 (fun _ -> Narrow_window);
        List.init 3 (fun _ -> Latest_prefix);
      ]
  in
  let env = make_env () in
  let ratios =
    List.mapi (fun i p -> build_and_query rng p i env) profiles
  in
  Db.close env.db;
  let cdf = Lt_util.Cdf.of_samples ratios in
  Format.printf "%a@."
    (Lt_util.Cdf.pp_series ~label:"rows scanned / rows returned per table"
       ~unit:"ratio")
    cdf;
  Printf.printf "median ratio %.2f; 80th percentile %.2f; max %.0f\n"
    (Lt_util.Cdf.quantile cdf 0.5)
    (Lt_util.Cdf.quantile cdf 0.8)
    (Lt_util.Cdf.max cdf)
