bench/fig4.ml: Config Db Disk_model Float Int64 List Littletable Lt_util Printf Support Table
