bench/fig9.ml: Array Db Format Fun Int64 List Littletable Lt_util Printf Query Stats Support Table Value
