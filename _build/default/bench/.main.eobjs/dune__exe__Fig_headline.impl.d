bench/fig_headline.ml: Config Db Disk_model Filename Float Littletable Lt_util Printf Query Support Table
