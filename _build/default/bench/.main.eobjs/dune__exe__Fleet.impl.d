bench/fleet.ml: Cdf Float Format List Lt_util Printf Support Xorshift
