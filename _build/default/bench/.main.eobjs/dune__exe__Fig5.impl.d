bench/fig5.ml: Config Db Disk_model Int64 List Littletable Lt_util Printf Query Support Table Value
