bench/fig6.ml: Config Db Disk_model Filename Int64 List Littletable Lt_util Printf Query Support Table Value
