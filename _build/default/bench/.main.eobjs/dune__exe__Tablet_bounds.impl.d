bench/tablet_bounds.ml: Array List Littletable Lt_util Merge_policy Printf Support
