bench/fig2.ml: Db List Littletable Lt_net Lt_util Printf Support Table
