bench/support.ml: Config Db Float Int64 List Littletable Lt_util Lt_vfs Printf Schema String Unix Value Xorshift
