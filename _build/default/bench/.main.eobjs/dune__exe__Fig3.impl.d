bench/fig3.ml: Config Db Disk_model Float Int64 List Littletable Lt_util Printf Stats String Support Table
