bench/main.mli:
