bench/main.ml: Ablation_bloom Array Fig2 Fig3 Fig4 Fig5 Fig6 Fig9 Fig_headline Fleet List Micro Printf String Support Sys Tablet_bounds Unix
