bench/ablation_bloom.ml: Config Db Disk_model Int64 List Littletable Lt_util Printf Schema Support Table Value
