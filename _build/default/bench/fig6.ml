(* Figure 6: first-row query latency vs number of tablets.

   Paper setup (§5.1.6): 128-byte rows, 16 MB tablets, queries for random
   keys; caches dropped before each pair of queries. The first query must
   read each tablet's footer (3 repositionings: inode, trailer, footer)
   plus one block: ~30.3 ms/tablet. The second query finds the footers
   cached in LittleTable's memory and pays ~one block read: ~8.3 ms/tablet.

   We reproduce the procedure: reopen the table (dropping the engine's
   footer cache), clear the modeled drive cache, run one random-key
   query, then a second to a different key, and report modeled latency. *)

open Littletable
open Support

let build env ~tablets ~tablet_bytes =
  let row_size = 128 in
  let rows_per_tablet = tablet_bytes / row_size in
  let table = Db.create_table env.db "t6" (row_schema ()) ~ttl:None in
  let payload_rng = Lt_util.Xorshift.create 3L in
  let base = Lt_util.Clock.now env.clock in
  for t = 0 to tablets - 1 do
    let rows =
      List.init rows_per_tablet (fun i ->
          [|
            Value.Int64 (Int64.of_int i);
            Value.Int64 0L; Value.Int64 0L; Value.Int64 0L; Value.Int64 0L;
            Value.Timestamp (Int64.add base (Int64.of_int t));
            Value.Blob (Lt_util.Xorshift.bytes payload_rng (payload_size ~row_size));
          |])
    in
    Table.insert table rows;
    Table.flush_all table
  done;
  (table, rows_per_tablet)

let first_row_latency env table ~key_space rng =
  let k = Lt_util.Xorshift.int rng key_space in
  Disk_model.reset env.model;
  let q =
    Query.with_limit 1
      { Query.all with
        Query.key_low = Query.Incl [ Value.Int64 (Int64.of_int k) ];
        Query.key_high = Query.Unbounded }
  in
  ignore (Table.query table q);
  Disk_model.elapsed_s env.model *. 1000.0

let run ~tablet_bytes () =
  header "Figure 6: first-row latency vs number of tablets";
  note "paper: linear in tablets; slopes ~30.3 ms/tablet (first query,";
  note "4 seeks) and ~8.3 ms/tablet (second query, footer cached, 1 seek).";
  note "(tablet size: %s, scaled from 16 MB)" (human_bytes tablet_bytes);
  table_header
    [ ("tablets", 8); ("first query ms", 15); ("second query ms", 16);
      ("ms/tablet 1st", 13); ("ms/tablet 2nd", 13) ];
  let rng = Lt_util.Xorshift.create 11L in
  List.iter
    (fun tablets ->
      let config =
        Config.make ~flush_size:max_int
          ~merge_delay:(Int64.mul 1000L Lt_util.Clock.day) ~bloom_bits_per_key:0 ()
      in
      let env = make_env ~config () in
      let _, key_space = build env ~tablets ~tablet_bytes in
      (* Drop the engine's footer cache (reopen) + the drive cache. *)
      let dir = Filename.concat "bench" "t6" in
      let reopened =
        Table.open_ env.vfs ~clock:env.clock ~config ~dir ~name:"t6"
      in
      Disk_model.clear_cache env.model;
      let first = first_row_latency env reopened ~key_space rng in
      Disk_model.clear_cache env.model;
      let second = first_row_latency env reopened ~key_space rng in
      Printf.printf "%-8d  %-15.1f  %-16.1f  %-13.1f  %-13.1f\n" tablets first
        second
        (first /. float_of_int tablets)
        (second /. float_of_int tablets);
      Table.close reopened;
      Db.close env.db)
    [ 1; 2; 4; 8; 16; 32 ]
