(* Figure 2: insert throughput vs batch size (solid line, 128-byte rows)
   and vs row size (dashed line, 64 kB batches).

   Paper result: throughput rises with batch size "as the relative
   fraction of per-command overhead and round-trip time decreases", and
   rises with row size (12% of disk peak at 32 B rows up to 63% at 4 kB)
   as per-row CPU cost amortizes.

   The batch-size sweep runs through the real client/server TCP path —
   the paper's setup — so each batch pays genuine command framing and a
   localhost round trip. The row-size sweep exercises the per-row engine
   cost in process. Reported throughput is bytes / max(cpu, modeled
   disk). *)

open Littletable
open Support

let insert_volume rng env table ~volume ~batch_bytes ~row_size =
  let rows_per_batch = max 1 (batch_bytes / row_size) in
  let batches = max 1 (volume / (rows_per_batch * row_size)) in
  measure env ~bytes:(batches * rows_per_batch * row_size) (fun () ->
      for _ = 1 to batches do
        let batch = make_batch rng ~clock:env.clock ~n:rows_per_batch ~row_size in
        Table.insert table batch;
        Lt_util.Clock.advance env.clock (Lt_util.Clock.usec rows_per_batch)
      done;
      Table.flush_all table)

let print_point ~label m =
  Printf.printf "%-10s  %-10.1f  %-10.1f  %-10.1f  %-14.1f\n" label
    (effective_mb_s m)
    (float_of_int m.bytes /. 1e6 /. m.cpu_s)
    (disk_mb_s m)
    (effective_mb_s m /. disk_seq_mb_s *. 100.0)

let run ~volume () =
  header "Figure 2: insert throughput vs batch size and row size";
  note "paper: solid line rises with batch size as per-command overhead";
  note "amortizes; dashed line rises with row size from ~12%% to ~63%% of";
  note "the disk's 120 MB/s peak.";
  note "(volume per point: %s)" (human_bytes volume);
  let rng = Lt_util.Xorshift.create 42L in

  (* Each batch is one client command. The command itself runs over the
     real TCP client/server path; because client and server share this
     one core, the measured loopback round trip (~6 us) is far below the
     cross-machine RTT that shapes the paper's solid line, so a modeled
     100 us round trip per command — the paper's small-batch asymptote
     (~2 MB/s at 256 B commands) — is added to the CPU side. *)
  let rtt_s = 100e-6 in
  Printf.printf "\n-- varying batch size (128-byte rows, over TCP + modeled RTT) --\n";
  table_header [ ("batch", 10); ("eff MB/s", 10); ("cpu MB/s", 10); ("disk MB/s", 10); ("%% of disk peak", 14) ];
  List.iteri
    (fun i batch_bytes ->
      let env = make_env () in
      let table = Db.create_table env.db (Printf.sprintf "t2a_%d" i) (row_schema ()) ~ttl:None in
      let server = Lt_net.Server.start ~maintenance_period_s:0.0 ~db:env.db ~port:0 () in
      let client = Lt_net.Client.connect ~port:(Lt_net.Server.port server) () in
      let row_size = 128 in
      let rows_per_batch = max 1 (batch_bytes / row_size) in
      (* Keep the wall time of tiny batches sane: enough commands to be
         steady-state, scaled down from the full volume. *)
      let batches = max 64 (min (volume / (rows_per_batch * row_size)) 20_000) in
      let m =
        measure env ~bytes:(batches * rows_per_batch * row_size) (fun () ->
            for _ = 1 to batches do
              let batch =
                make_batch rng ~clock:env.clock ~n:rows_per_batch ~row_size
              in
              Lt_net.Client.insert client (Table.name table) batch;
              Lt_util.Clock.advance env.clock (Lt_util.Clock.usec rows_per_batch)
            done;
            Table.flush_all table)
      in
      let m = { m with cpu_s = m.cpu_s +. (float_of_int batches *. rtt_s) } in
      print_point ~label:(human_bytes batch_bytes) m;
      Lt_net.Client.close client;
      Lt_net.Server.stop server;
      Db.close env.db)
    [ 256; 1024; 4096; 16 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024 ];

  Printf.printf "\n-- varying row size (64 kB batches) --\n";
  table_header [ ("row size", 10); ("eff MB/s", 10); ("cpu MB/s", 10); ("disk MB/s", 10); ("%% of disk peak", 14) ];
  List.iteri
    (fun i row_size ->
      let env = make_env () in
      let table = Db.create_table env.db (Printf.sprintf "t2b_%d" i) (row_schema ()) ~ttl:None in
      let m = insert_volume rng env table ~volume ~batch_bytes:(64 * 1024) ~row_size in
      print_point ~label:(human_bytes row_size) m;
      Db.close env.db)
    [ 64; 128; 256; 512; 1024; 4096; 16 * 1024 ]
