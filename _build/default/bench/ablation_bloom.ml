(* Ablation: per-tablet Bloom filters for latest-row-for-prefix queries.

   §3.4.5 proposes storing "with each on-disk tablet a Bloom filter
   summarizing the tablet's keys, as in bLSM. This change would eliminate
   the need to check 99% of the tablets that do not contain any matching
   key at a storage cost of only 10 bits per row."

   Setup: one tablet per simulated week, each holding rows for a
   disjoint set of devices (a device appears in exactly one tablet, like
   a decommissioned client). A latest-row query for such a device must,
   without filters, open a cursor on every tablet group walking
   backwards; with filters it touches only the one tablet whose filter
   passes (plus false positives). We run the same queries both ways and
   report modeled disk latency, seeks, and the per-tablet footer storage
   cost of the filters. *)

open Littletable
open Support

let weeks = 52

let devices_per_week = 256

let build ~bloom =
  let config =
    Config.make ~flush_size:max_int ~merge_delay:(Int64.mul 1000L Lt_util.Clock.day)
      ~bloom_bits_per_key:(if bloom then 10 else 0) ()
  in
  let env = make_env ~config () in
  let schema =
    let col name ctype default = { Schema.name; ctype; default } in
    Schema.create
      ~columns:
        [
          col "network" Value.T_int64 (Value.Int64 0L);
          col "device" Value.T_int64 (Value.Int64 0L);
          col "ts" Value.T_timestamp (Value.Timestamp 0L);
          col "bytes" Value.T_int64 (Value.Int64 0L);
          col "pad" Value.T_blob (Value.Blob "");
        ]
      ~pkey:[ "network"; "device"; "ts" ]
  in
  let table = Db.create_table env.db "ab" schema ~ttl:None in
  let now = Lt_util.Clock.now env.clock in
  let pad_rng = Lt_util.Xorshift.create 17L in
  for week = 0 to weeks - 1 do
    let base = Int64.sub now (Int64.mul (Int64.of_int (weeks - week)) Lt_util.Clock.week) in
    let rows =
      List.init devices_per_week (fun d ->
          let device = Int64.of_int ((week * devices_per_week) + d) in
          [|
            Value.Int64 1L;
            Value.Int64 device;
            Value.Timestamp (Int64.add base (Int64.of_int d));
            Value.Int64 device;
            (* Pad rows so each tablet spans several 64 kB blocks. *)
            Value.Blob (Lt_util.Xorshift.bytes pad_rng 512);
          |])
    in
    Table.insert table rows;
    Table.flush_all table
  done;
  (env, table)

let query_old_devices env table rng n =
  (* Warm the engine's footer caches so the measurement isolates the
     steady-state block reads the filters avoid. *)
  ignore (Table.latest table [ Value.Int64 1L; Value.Int64 0L ]);
  Disk_model.reset env.model;
  let t0 = wall () in
  for _ = 1 to n do
    (* Cold drive cache per query (the uncached dashboards this path
       serves); a device from one of the oldest five weeks is the worst
       case for the backwards walk. *)
    Disk_model.clear_cache env.model;
    let week = Lt_util.Xorshift.int rng 5 in
    let d = Lt_util.Xorshift.int rng devices_per_week in
    let device = Int64.of_int ((week * devices_per_week) + d) in
    match Table.latest table [ Value.Int64 1L; Value.Int64 device ] with
    | Some _ -> ()
    | None -> failwith "ablation: device should exist"
  done;
  let cpu = wall () -. t0 in
  (Disk_model.elapsed_s env.model /. float_of_int n *. 1000.0,
   float_of_int (Disk_model.seeks env.model) /. float_of_int n,
   cpu /. float_of_int n *. 1000.0)

let run () =
  header "Ablation (§3.4.5): Bloom filters on latest-row-for-prefix queries";
  note "paper: filters should eliminate ~99%% of tablet checks at 10";
  note "bits/row. %d weekly tablets, device present in exactly one." weeks;
  let rng = Lt_util.Xorshift.create 31L in
  let results =
    List.map
      (fun bloom ->
        let env, table = build ~bloom in
        let disk_ms, seeks, cpu_ms = query_old_devices env table (Lt_util.Xorshift.copy rng) 20 in
        let size = Table.disk_size table in
        Db.close env.db;
        (bloom, disk_ms, seeks, cpu_ms, size))
      [ false; true ]
  in
  table_header
    [ ("bloom", 6); ("disk ms/query", 14); ("seeks/query", 12); ("cpu ms/query", 13);
      ("table size", 11) ];
  List.iter
    (fun (bloom, disk_ms, seeks, cpu_ms, size) ->
      Printf.printf "%-6s  %-14.1f  %-12.1f  %-13.2f  %-11s\n"
        (if bloom then "on" else "off")
        disk_ms seeks cpu_ms (human_bytes size))
    results;
  match results with
  | [ (_, off_ms, off_seeks, _, off_size); (_, on_ms, on_seeks, _, on_size) ] ->
      Printf.printf
        "\nfilters cut modeled latency %.0fx and seeks %.0fx for %.1f%% more storage\n"
        (off_ms /. on_ms) (off_seeks /. on_seeks)
        (float_of_int (on_size - off_size) /. float_of_int off_size *. 100.0)
  | _ -> ()
