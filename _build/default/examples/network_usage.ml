(* Network usage pipeline (§4.1): simulated devices -> UsageGrabber ->
   LittleTable -> aggregator rollups -> Dashboard-style ASCII graphs.

     dune exec examples/network_usage.exe

   Runs a deterministic three-hour simulation of two networks of devices
   polled every minute, aggregates per-network 10-minute rollups with
   HyperLogLog device counts and a per-tag rollup joined against the
   config store, then renders the graphs Dashboard would draw. Includes
   a mid-run LittleTable "crash" to show the recovery story. *)

open Littletable
open Lt_apps
module Clock = Lt_util.Clock

let bar width value max_value =
  let n =
    if max_value <= 0.0 then 0
    else int_of_float (Float.min 1.0 (value /. max_value) *. float_of_int width)
  in
  String.make n '#' ^ String.make (width - n) ' '

let () =
  let clock = Clock.manual ~start:1_720_000_000_000_000L () in
  let vfs = Lt_vfs.Vfs.memory () in
  let db = Db.open_ ~clock ~vfs ~dir:"db" () in

  (* Networks, devices, and user-defined tags (the PostgreSQL side). *)
  let cs = Config_store.create () in
  Config_store.add_network cs ~id:1L ~name:"hq-campus";
  Config_store.add_network cs ~id:2L ~name:"branch";
  let devices =
    List.concat_map
      (fun (network, count) ->
        List.init count (fun i ->
            let device = Int64.of_int (i + 1) in
            let tags = if i mod 2 = 0 then [ "office" ] else [ "warehouse" ] in
            Config_store.add_device cs ~network ~device ~tags;
            Device.create ~seed:(Int64.of_int (i + 7)) ~network ~device ~clock ()))
      [ (1L, 4); (2L, 2) ]
  in

  let usage = Usage_grabber.create_table db "usage" in
  let grabber = Usage_grabber.create ~table:usage ~clock () in
  let rollup = Db.create_table db "usage_10m" (Aggregator.rollup_schema ()) ~ttl:None in
  let by_tag = Db.create_table db "usage_by_tag" (Aggregator.tag_schema ()) ~ttl:None in
  let agg = Aggregator.create ~source:usage ~dest:rollup ~clock () in
  let tag_agg = Aggregator.create ~tags:cs ~source:usage ~dest:by_tag ~clock () in

  let t0 = Clock.now clock in
  Printf.printf "simulating 3 hours of minute-by-minute polling...\n";
  for minute = 1 to 180 do
    Clock.advance clock Clock.minute;
    List.iter Device.step devices;
    ignore (Usage_grabber.poll grabber devices);

    (* A LittleTable crash 90 minutes in: unflushed rows vanish; the
       grabber rebuilds its cache from the surviving rows and resumes.
       Customers just see a brief gap (§4.1.1). *)
    if minute = 90 then begin
      Lt_vfs.Vfs.crash vfs;
      Usage_grabber.crash grabber;
      Usage_grabber.rebuild_cache grabber
        ~devices:(List.map (fun d -> (Device.network d, Device.device_id d)) devices);
      Printf.printf "  [minute 90] simulated crash + recovery (cache rebuilt: %d devices)\n"
        (Usage_grabber.cache_size grabber)
    end;
    (* Aggregators run every 10 minutes, as background processes would. *)
    if minute mod 10 = 0 then begin
      ignore (Aggregator.run_once agg);
      ignore (Aggregator.run_once tag_agg)
    end
  done;
  let t1 = Clock.now clock in

  (* Graph 1: total bytes per device on network 1 over the whole run —
     reads one contiguous key range of the source table. *)
  print_newline ();
  Printf.printf "bytes per device, network hq-campus (3 h):\n";
  let per_device = Usage_grabber.network_usage usage ~network:1L ~ts_min:t0 ~ts_max:t1 in
  let max_bytes =
    List.fold_left (fun m (_, b) -> Float.max m (Int64.to_float b)) 1.0 per_device
  in
  List.iter
    (fun (device, bytes) ->
      Printf.printf "  device %2Ld  %s %8.1f MB\n" device
        (bar 40 (Int64.to_float bytes) max_bytes)
        (Int64.to_float bytes /. 1.0e6))
    per_device;

  (* Graph 2: the 10-minute rollup per network — what a month-long graph
     would read instead of four million raw rows (§4.1.2). *)
  List.iter
    (fun network ->
      let name = Option.value ~default:"?" (Config_store.network_name cs network) in
      Printf.printf "\n10-minute rollup, network %s (bytes, ~devices):\n" name;
      let rows =
        Aggregator.read_rollup rollup ~key:(Value.Int64 network) ~ts_min:t0 ~ts_max:t1
      in
      let max_b =
        List.fold_left (fun m (_, b, _) -> Float.max m (Int64.to_float b)) 1.0 rows
      in
      List.iter
        (fun (ts, bytes, hll) ->
          let minutes = Int64.to_int (Int64.div (Int64.sub ts t0) Clock.minute) in
          Printf.printf "  +%3d min  %s %8.1f MB  (%.0f devices)\n" minutes
            (bar 32 (Int64.to_float bytes) max_b)
            (Int64.to_float bytes /. 1.0e6)
            hll)
        rows)
    [ 1L; 2L ];

  (* Graph 3: usage per user-defined tag, joining LittleTable data with
     the config store. *)
  Printf.printf "\nusage per tag (whole run):\n";
  List.iter
    (fun tag ->
      let rows =
        Aggregator.read_rollup by_tag ~key:(Value.String tag) ~ts_min:t0 ~ts_max:t1
      in
      let total = List.fold_left (fun a (_, b, _) -> Int64.add a b) 0L rows in
      Printf.printf "  %-10s %10.1f MB over %d periods\n" tag
        (Int64.to_float total /. 1.0e6)
        (List.length rows))
    (Config_store.all_tags cs);

  (* Engine-side numbers: the §5.2.4 efficiency metric. *)
  let s = Table.stats usage in
  Printf.printf
    "\nsource table: %d rows inserted, %d queries, scan ratio %.2f, %d tablets on disk\n"
    s.Stats.rows_inserted s.Stats.queries (Stats.scan_ratio s)
    (Table.tablet_count usage);
  Db.close db
