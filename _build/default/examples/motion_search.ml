(* Video motion search (§4.3): cameras -> MotionGrabber -> LittleTable ->
   rectangle search and a motion heatmap.

     dune exec examples/motion_search.exe

   Simulates two security cameras for a day, stores their coalesced
   32-bit motion words, then performs the Dashboard interactions: "a
   security incident occurred near the doorway — search that rectangle
   backwards in time", plus a motion-over-time heatmap of the full
   frame. *)

open Littletable
open Lt_apps
module Clock = Lt_util.Clock

let () =
  let clock = Clock.manual ~start:1_720_000_000_000_000L () in
  let db = Db.open_ ~clock ~vfs:(Lt_vfs.Vfs.memory ()) ~dir:"db" () in
  let table = Motion.create_table db "motion" in
  let grabber = Motion.create ~table ~clock () in
  let cameras =
    List.init 2 (fun i ->
        Device.create ~seed:(Int64.of_int (i + 5)) ~network:1L
          ~device:(Int64.of_int (i + 1)) ~clock ())
  in

  (* A day of 5-minute grabber polls. *)
  let t0 = Clock.now clock in
  for _ = 1 to 288 do
    Clock.advance clock (Int64.mul 5L Clock.minute);
    List.iter Device.step cameras;
    ignore (Motion.poll grabber cameras)
  done;
  let t1 = Clock.now clock in
  let rows = (Table.query table Query.all).Table.rows in
  Printf.printf "stored %d motion events from %d cameras over 24 h\n"
    (List.length rows) (List.length cameras);
  (* The paper's envelope: ~51,000 rows/camera/week searched at 500k
     rows/s ~ 100 ms; here the events table is smaller but the query
     path is identical. *)

  (* Rectangle search: the "doorway" occupies macroblocks x 10..21,
     y 8..15 — search camera 1 backwards in time. *)
  let doorway = { Motion.x0 = 10; y0 = 8; x1 = 21; y1 = 15 } in
  Printf.printf "\nmost recent motion in the doorway rectangle (camera 1):\n";
  let hits =
    Motion.search table ~camera:1L ~rect:doorway ~ts_min:t0 ~ts_max:t1 ~limit:5
  in
  List.iter
    (fun (ts, w, duration) ->
      let minutes_ago = Int64.to_int (Int64.div (Int64.sub t1 ts) Clock.minute) in
      Printf.printf "  %4d min ago: cell (row %d, col %d), %d macroblocks, %.1f s\n"
        minutes_ago (Motion.word_row w) (Motion.word_col w)
        (List.length (Motion.word_macroblocks w))
        (Int64.to_float duration /. 1.0e6))
    hits;

  (* Heatmap of the full frame over the day. *)
  Printf.printf "\nmotion heatmap, camera 1 (60x34 macroblocks, '.' to '9'):\n";
  let grid = Motion.heatmap table ~camera:1L ~ts_min:t0 ~ts_max:t1 in
  let max_count =
    Array.fold_left (fun m row -> Array.fold_left max m row) 1 grid
  in
  Array.iter
    (fun row ->
      let line =
        String.init (Array.length row) (fun x ->
            let v = row.(x) in
            if v = 0 then '.'
            else Char.chr (Char.code '0' + min 9 (v * 9 / max_count)))
      in
      Printf.printf "  %s\n" line)
    grid;

  let s = Table.stats table in
  Printf.printf "\nmotion table: %d rows inserted, %d queries, scan ratio %.2f\n"
    s.Stats.rows_inserted s.Stats.queries (Stats.scan_ratio s);
  Db.close db
