examples/shard_lifecycle.mli:
