examples/event_logs.ml: Array Db Device Events_grabber Filename Int64 List Littletable Lt_apps Lt_net Lt_sql Lt_util Printf Stats Sys Table Value
