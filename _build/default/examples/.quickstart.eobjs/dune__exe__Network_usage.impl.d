examples/network_usage.ml: Aggregator Config_store Db Device Float Int64 List Littletable Lt_apps Lt_util Lt_vfs Option Printf Stats String Table Usage_grabber Value
