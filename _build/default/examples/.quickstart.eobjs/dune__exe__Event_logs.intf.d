examples/event_logs.mli:
