examples/shard_lifecycle.ml: Array Config Int64 List Littletable Lt_apps Lt_util Lt_vfs Printf Query Shard String Table Value
