examples/quickstart.mli:
