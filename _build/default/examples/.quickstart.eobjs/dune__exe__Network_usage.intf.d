examples/network_usage.mli:
