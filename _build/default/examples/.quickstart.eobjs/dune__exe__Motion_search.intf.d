examples/motion_search.mli:
