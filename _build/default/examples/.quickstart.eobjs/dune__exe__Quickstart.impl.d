examples/quickstart.ml: Array Db Filename Format Int64 List Littletable Lt_sql Lt_util Printf Query Schema Sys Table Value
