examples/motion_search.ml: Array Char Db Device Int64 List Littletable Lt_apps Lt_util Lt_vfs Motion Printf Query Stats String Table
