(* Event logs (§4.2): devices -> EventsGrabber -> LittleTable -> browse
   and forensic search, over a real TCP server with the SQL shell's
   machinery.

     dune exec examples/event_logs.exe

   Starts an in-process LittleTable server, runs the events pipeline
   against simulated devices (including a grabber restart mid-run), then
   browses a device's log and searches a network's history over the
   wire. *)

open Littletable
open Lt_apps
module Clock = Lt_util.Clock

let () =
  (* Server side: an embedded Db served over TCP on an ephemeral port.
     (The grabber writes through the in-process handle; Dashboard-style
     reads below go over the wire.) *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "littletable-events" in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  let clock = Clock.system in
  let db = Db.open_ ~clock ~dir () in
  let server = Lt_net.Server.start ~maintenance_period_s:0.5 ~db ~port:0 () in
  Printf.printf "server on 127.0.0.1:%d\n" (Lt_net.Server.port server);

  let table = Events_grabber.create_table db "events" in
  let grabber = Events_grabber.create ~sentinel_every:16 ~table ~clock () in

  (* Device side: a simulated fleet on a fast manual clock feeding the
     same event stream shape. Devices use their own clock so the demo
     runs instantly while covering hours of simulated time. *)
  let dev_clock = Clock.manual ~start:(Clock.now clock) () in
  let devices =
    List.init 3 (fun i ->
        Device.create ~seed:(Int64.of_int (i + 42)) ~network:7L
          ~device:(Int64.of_int (i + 1)) ~clock:dev_clock ())
  in
  let poll_minutes n =
    for _ = 1 to n do
      Clock.advance dev_clock Clock.minute;
      List.iter Device.step devices;
      ignore (Events_grabber.poll grabber devices)
    done
  in
  poll_minutes 60;
  Printf.printf "after 1 simulated hour: %d cached devices\n"
    (List.length (List.filter (fun d ->
         Events_grabber.cached_id grabber ~network:7L ~device:(Device.device_id d) <> None)
         devices));

  (* Grabber restart: rebuild the id cache from recent rows, resume with
     no duplicates (§4.2). *)
  Events_grabber.crash grabber;
  Events_grabber.recover grabber ~devices ~lookback:Clock.hour;
  Printf.printf "grabber restarted and recovered its id cache\n";
  poll_minutes 60;

  (* Dashboard side, over TCP. *)
  let client = Lt_net.Client.connect ~port:(Lt_net.Server.port server) () in

  (* Browse one device's log via SQL. *)
  Printf.printf "\nlast events of device 1 (via SQL over the wire):\n";
  (match
     Lt_net.Client.sql client
       "SELECT ts, event_id, body FROM events WHERE network = 7 AND device = 1 \
        ORDER BY KEY DESC LIMIT 8"
   with
  | Lt_sql.Executor.Rows { rows; _ } ->
      List.iter
        (fun r ->
          match (r.(0), r.(1), r.(2)) with
          | Value.Timestamp ts, Value.Int64 id, Value.String body
            when body <> Events_grabber.sentinel_body ->
              Printf.printf "  #%-5Ld t=%Ld  %s\n" id ts body
          | _ -> ())
        rows
  | _ -> ());

  (* Forensics: search the whole network's history for DHCP activity. *)
  Printf.printf "\nforensic search for 'dhcp' across network 7:\n";
  let hits =
    Events_grabber.search table ~network:7L ~pattern:"dhcp" ~ts_min:0L
      ~ts_max:Int64.max_int ~limit:5
  in
  List.iter
    (fun (device, ts, id, body) ->
      Printf.printf "  device %Ld  #%-5Ld t=%Ld  %s\n" device id ts body)
    hits;

  let s = Table.stats table in
  Printf.printf "\nevents table: %d rows, scan ratio %.2f\n" s.Stats.rows_inserted
    (Stats.scan_ratio s);
  Lt_net.Client.close client;
  Lt_net.Server.stop server
