(* Quickstart: the embedded engine, the query API, and SQL.

     dune exec examples/quickstart.exe

   Creates a temporary database, defines the paper's usage table keyed
   (network, device, ts), inserts a few rows, and queries it three ways:
   the native bounding-box API, the latest-row helper, and SQL. *)

open Littletable

let () =
  (* 1. Open a database. Real filesystem in a temp dir; pass
     ~vfs:(Lt_vfs.Vfs.memory ()) for a RAM-only engine. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "littletable-quickstart" in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
  let db = Db.open_ ~dir () in

  (* 2. Define a schema. The primary key orders the clustering: rows for
     one network are contiguous, within it rows for one device, within
     that time-ordered — Figure 1 of the paper. The last key column must
     be the timestamp column "ts". *)
  let schema =
    Schema.create
      ~columns:
        [
          { Schema.name = "network"; ctype = Value.T_int64; default = Value.Int64 0L };
          { Schema.name = "device"; ctype = Value.T_int64; default = Value.Int64 0L };
          { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
          { Schema.name = "bytes"; ctype = Value.T_int64; default = Value.Int64 0L };
        ]
      ~pkey:[ "network"; "device"; "ts" ]
  in
  let table = Db.create_table db "usage" schema ~ttl:(Some (Int64.mul 400L Lt_util.Clock.day)) in

  (* 3. Insert a batch. Timestamps are int64 microseconds; they may lie
     in the past or the future. *)
  let now = Lt_util.Clock.now (Db.clock db) in
  let row network device minutes_ago bytes =
    [|
      Value.Int64 network;
      Value.Int64 device;
      Value.Timestamp (Int64.sub now (Int64.mul (Int64.of_int minutes_ago) Lt_util.Clock.minute));
      Value.Int64 bytes;
    |]
  in
  Table.insert table
    [
      row 1L 1L 3 5_000L; row 1L 1L 2 7_000L; row 1L 1L 1 6_000L;
      row 1L 2L 3 800L; row 1L 2L 1 1_200L;
      row 2L 1L 2 50_000L;
    ];
  Printf.printf "inserted 6 rows\n";

  (* 4. Query a bounding box: network 1, last two and a half minutes. *)
  let q =
    Query.between
      ~ts_min:(Int64.sub now (Int64.div (Int64.mul 5L Lt_util.Clock.minute) 2L))
      (Query.prefix [ Value.Int64 1L ])
  in
  let result = Table.query table q in
  Printf.printf "network 1, recent rows (scanned %d):\n" result.Table.scanned;
  List.iter
    (fun r ->
      Printf.printf "  device=%s ts=%s bytes=%s\n"
        (Value.to_string r.(1)) (Value.to_string r.(2)) (Value.to_string r.(3)))
    result.Table.rows;

  (* 5. Latest row for a key prefix (§3.4.5). *)
  (match Table.latest table [ Value.Int64 1L; Value.Int64 2L ] with
  | Some r ->
      Printf.printf "latest row for (network 1, device 2): bytes=%s\n"
        (Value.to_string r.(3))
  | None -> Printf.printf "no rows for that device\n");

  (* 6. The same table through SQL. *)
  let sql = Lt_sql.Executor.local_backend db in
  let result =
    Lt_sql.Executor.execute sql
      "SELECT device, SUM(bytes) AS total FROM usage WHERE network = 1 GROUP BY device"
  in
  Format.printf "SQL rollup:@.%a@." Lt_sql.Executor.pp_result result;

  (* 7. Durability is explicit: flush before shutdown; anything
     unflushed would be lost on a crash, by design. *)
  Table.flush_all table;
  Printf.printf "flushed; %d tablet(s) on disk under %s\n" (Table.tablet_count table) dir;
  Db.close db
