(* Shard lifecycle (§2): horizontal scaling, warm-spare fault tolerance,
   and load balancing by splitting.

     dune exec examples/shard_lifecycle.exe

   Simulates a shard hosting four customer networks through the full §4
   collection pipeline; archives it continuously to a warm spare; fails
   over after a "datacenter loss"; and finally splits the (now
   overloaded) shard into two children, each keeping half the customers
   via the §7 bulk prefix delete. *)

open Littletable
open Lt_apps
module Clock = Lt_util.Clock

let config =
  Config.make ~flush_size:(256 * 1024) ~merge_delay:(Clock.sec 60)
    ~rollover_spread:0.0 ()

let run_minutes label shard clock n =
  for _ = 1 to n do
    Clock.advance clock Clock.minute;
    Shard.tick shard
  done;
  let usage = (Table.query (Shard.usage_table shard) Query.all).Table.rows in
  Printf.printf "%-28s usage rows: %5d across networks %s\n" label
    (List.length usage)
    (String.concat ","
       (List.map Int64.to_string
          (List.sort_uniq compare
             (List.map (fun r -> match r.(0) with Value.Int64 n -> n | _ -> 0L) usage))))

let () =
  let clock = Clock.manual ~start:1_720_000_000_000_000L () in
  let vfs = Lt_vfs.Vfs.memory () in
  let spare_vfs = Lt_vfs.Vfs.memory () in

  Printf.printf "== creating shard with 4 customer networks ==\n";
  let shard =
    Shard.create ~config ~vfs ~clock ~dir:"shard1" ~networks:[ 1L; 2L; 3L; 4L ]
      ~devices_per_network:3 ()
  in
  run_minutes "after 30 min of collection" shard clock 30;

  Printf.printf "\n== continuous archival to the warm spare (§2.2, §3.5) ==\n";
  Shard.archive_to_spare shard ~spare_vfs ~spare_dir:"spare1";
  Printf.printf "archived; spare is consistent\n";
  run_minutes "10 more min (not archived)" shard clock 10;

  Printf.printf "\n== shard lost; failover to the spare ==\n";
  let shard =
    Shard.failover ~config ~spare_vfs ~clock ~spare_dir:"spare1"
      ~networks:[ 1L; 2L; 3L; 4L ] ~devices_per_network:3 ()
  in
  Printf.printf "spare promoted; the un-archived tail is gone, but the\n";
  Printf.printf "grabbers re-fetch recent data from the devices themselves:\n";
  run_minutes "after failover + 10 min" shard clock 10;

  Printf.printf "\n== shard overloaded; split into two children (§2.2) ==\n";
  let left, right =
    Shard.split ~config shard ~vfs:spare_vfs ~left_dir:"childA" ~right_dir:"childB"
      ~devices_per_network:3 ()
  in
  run_minutes "child A (networks 1,2)" left clock 5;
  run_minutes "child B (networks 3,4)" right clock 5;
  Printf.printf "\neach child now serves half the customers with all their history\n"
