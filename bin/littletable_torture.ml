(* Crash-point torture sweep runner for CI and local debugging.

     littletable_torture                       sweep default seeds
     littletable_torture --seed 42 --seed 43   sweep specific seeds
     littletable_torture --workload merge      restrict to one workload
     littletable_torture --replay merge:crash:42:17
                                               re-run one recorded point

   On failure, writes one line per failing (workload, mode, seed, point)
   to --out (default TORTURE_FAILURES.txt) and exits 1. *)

module Torture = Lt_torture.Torture

let default_seeds = [ 1L; 42L; 1337L ]

let parse_workload s =
  match
    List.find_opt
      (fun w -> Torture.workload_name w = s)
      Torture.all_workloads
  with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown workload %S; known: %s\n" s
        (String.concat " " (List.map Torture.workload_name Torture.all_workloads));
      exit 2

let parse_mode = function
  | "crash" -> Torture.Crash
  | "io-error" -> Torture.Io_err
  | s ->
      Printf.eprintf "unknown mode %S; known: crash io-error\n" s;
      exit 2

let replay spec =
  match String.split_on_char ':' spec with
  | [ w; m; seed; k ] -> (
      let w = parse_workload w in
      let m = parse_mode m in
      let seed = Int64.of_string seed in
      let k = int_of_string k in
      match Torture.replay ~seed w m k with
      | Ok () ->
          Printf.printf "replay %s: ok\n" spec;
          exit 0
      | Error reason ->
          Printf.printf "replay %s: FAIL: %s\n" spec reason;
          exit 1)
  | _ ->
      Printf.eprintf "bad replay spec %S (want workload:mode:seed:point)\n" spec;
      exit 2

let () =
  let seeds = ref [] in
  let workloads = ref [] in
  let out = ref "TORTURE_FAILURES.txt" in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
        seeds := Int64.of_string v :: !seeds;
        parse rest
    | "--workload" :: v :: rest ->
        workloads := parse_workload v :: !workloads;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--replay" :: v :: _ -> replay v
    | a :: _ ->
        Printf.eprintf
          "unknown argument %S; usage: [--seed N]* [--workload W]* [--out F] \
           [--replay W:M:SEED:K]\n"
          a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seeds = if !seeds = [] then default_seeds else List.rev !seeds in
  let workloads =
    if !workloads = [] then Torture.all_workloads else List.rev !workloads
  in
  let t0 = Lt_util.Clock.(to_float_s (now system)) in
  let total_runs = ref 0 in
  let failures =
    List.concat_map
      (fun seed ->
        let runs, fs = Torture.sweep ~workloads ~seed () in
        total_runs := !total_runs + runs;
        Printf.printf "seed %Ld: %d runs, %d failures\n%!" seed runs
          (List.length fs);
        fs)
      seeds
  in
  Printf.printf "torture sweep: %d runs, %d failures in %.1f s\n" !total_runs
    (List.length failures)
    (Lt_util.Clock.(to_float_s (now system)) -. t0);
  if failures <> [] then begin
    let oc =
      (open_out !out
      [@lint.allow
        "vfs-discipline: the failure report is operator output on the real \
         filesystem; routing it through Vfs would put it inside the \
         crash-injection blast radius"])
    in
    List.iter
      (fun f ->
        let line = Format.asprintf "%a" Torture.pp_failure f in
        Printf.printf "  %s\n" line;
        output_string oc (line ^ "\n"))
      failures;
    close_out oc;
    Printf.printf "failure list written to %s (re-run one with --replay)\n"
      !out;
    exit 1
  end
