(* The LittleTable server executable.

   Three modes:

   - default: serve a database directory over TCP
       dune exec bin/littletable_server.exe -- --dir /var/lib/littletable --port 7447

   - router: front a fleet of backend servers, speaking the same
     protocol to clients while sharding rows/queries by leading key
       littletable_server --router --backends 127.0.0.1:7501,127.0.0.1:7502,127.0.0.1:7503 \
         --replicas 0=127.0.0.1:7601 --port 7447

   - warm spare: continuously sync a primary's directory, promoting to
     a live server on the first data request after the primary dies
       littletable_server --spare-of /var/lib/littletable --dir /var/lib/littletable-spare *)

let setup_logging level =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "littletable-server: %s\n" msg;
      exit 2)
    fmt

let serve ~what server =
  Printf.printf "littletable: %s on 127.0.0.1:%d\n%!" what
    (Lt_net.Server.port server);
  (match Lt_net.Server.metrics_port server with
  | Some p ->
      Printf.printf "littletable: metrics on http://127.0.0.1:%d/metrics\n%!" p
  | None -> ());
  let stop _ =
    Printf.printf "littletable: shutting down\n%!";
    Lt_net.Server.stop server;
    exit 0
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Lt_net.Server.wait server

(* "HOST:PORT" or bare "PORT" (loopback). *)
let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> (
      match int_of_string_opt s with
      | Some port -> { Lt_cluster.Cluster_client.host = "127.0.0.1"; port }
      | None -> fail "bad endpoint %S (expected HOST:PORT or PORT)" s)
  | Some i -> (
      let host = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port -> { Lt_cluster.Cluster_client.host; port }
      | None -> fail "bad endpoint %S (expected HOST:PORT or PORT)" s)

let split_commas s =
  String.split_on_char ',' s |> List.filter (fun x -> String.trim x <> "")

(* "SHARD=HOST:PORT" *)
let parse_replica s =
  match String.index_opt s '=' with
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | Some shard ->
          (shard, parse_endpoint (String.sub s (i + 1) (String.length s - i - 1)))
      | None -> fail "bad replica %S (expected SHARD=HOST:PORT)" s)
  | None -> fail "bad replica %S (expected SHARD=HOST:PORT)" s

(* Split points for --placement range:v1,v2,...: int64 when the leading
   key column is numeric, otherwise the literal string. *)
let parse_point s =
  match Int64.of_string_opt s with
  | Some v -> Littletable.Value.Int64 v
  | None -> Littletable.Value.String s

let parse_placement ~shards spec =
  match String.index_opt spec ':' with
  | None when spec = "hash" ->
      Lt_cluster.Placement.Hash { vnodes = 64 }
  | None -> fail "bad placement %S (expected hash[:VNODES] or range:V1,V2,...)" spec
  | Some i -> (
      let kind = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match kind with
      | "hash" -> (
          match int_of_string_opt rest with
          | Some vnodes when vnodes > 0 -> Lt_cluster.Placement.Hash { vnodes }
          | _ -> fail "bad placement %S (hash:VNODES needs a positive count)" spec)
      | "range" ->
          let points = List.map parse_point (split_commas rest) in
          if List.length points <> shards - 1 then
            fail "range placement over %d backends needs %d split points, got %d"
              shards (shards - 1) (List.length points);
          Lt_cluster.Placement.Range points
      | _ -> fail "bad placement %S (expected hash[:VNODES] or range:...)" spec)

let run_router ~backends ~replicas ~placement_spec ~row_limit ~port
    ~metrics_port =
  let backends = List.map parse_endpoint (split_commas backends) in
  if backends = [] then fail "--router needs --backends";
  let replicas = List.map parse_replica replicas in
  let shards = List.length backends in
  let policy = parse_placement ~shards placement_spec in
  let placement = Lt_cluster.Placement.create ~shards ~policy in
  let obs =
    Lt_obs.Obs.create
      ~trace_capacity:Littletable.Config.default.Littletable.Config.trace_capacity
      ~clock:Lt_util.Clock.system ()
  in
  let cluster =
    Lt_cluster.Cluster_client.create ~obs ~connect_timeout:5.0 ~replicas
      ~backends ()
  in
  let router =
    Lt_cluster.Router.create ~obs ?row_limit ~placement ~cluster ()
  in
  let server =
    Lt_net.Server.start_custom ?metrics_port
      ~backend:(Lt_cluster.Router.backend router) ~port ()
  in
  serve ~what:(Printf.sprintf "routing %d shards" shards) server

let run_spare ~primary_dir ~dir ~sync_period ~port ~metrics_port =
  let vfs = Lt_vfs.Vfs.real () in
  let replica =
    Lt_cluster.Replica.start ~period_s:sync_period ~vfs ~primary_dir ~dir ()
  in
  let server =
    Lt_net.Server.start_custom ?metrics_port
      ~backend:(Lt_cluster.Replica.backend replica) ~port ()
  in
  serve ~what:(Printf.sprintf "warm spare of %s" primary_dir) server

let run_db ~dir ~port ~metrics_port ~maintenance ~query_domains =
  let config =
    match query_domains with
    | None -> Littletable.Config.default
    | Some n -> Littletable.Config.make ~query_domains:n ()
  in
  let db = Littletable.Db.open_ ~config ~dir () in
  let server =
    Lt_net.Server.start ~maintenance_period_s:maintenance ?metrics_port ~db
      ~port ()
  in
  serve ~what:(Printf.sprintf "serving %s" dir) server

let run dir port metrics_port maintenance query_domains level router backends
    replicas placement row_limit spare_of sync_period =
  setup_logging level;
  match (router, spare_of) with
  | true, Some _ -> fail "--router and --spare-of are mutually exclusive"
  | true, None ->
      run_router ~backends ~replicas ~placement_spec:placement ~row_limit
        ~port ~metrics_port
  | false, Some primary_dir ->
      run_spare ~primary_dir ~dir ~sync_period ~port ~metrics_port
  | false, None -> run_db ~dir ~port ~metrics_port ~maintenance ~query_domains

open Cmdliner

let dir =
  let doc = "Database directory (created if absent)." in
  Arg.(value & opt string "./littletable-data" & info [ "d"; "dir" ] ~docv:"DIR" ~doc)

let port =
  let doc = "TCP port to listen on (0 picks an ephemeral port)." in
  Arg.(value & opt int 7447 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let metrics_port =
  let doc =
    "Serve Prometheus metrics over HTTP at /metrics on this port (0 picks \
     an ephemeral port). Off when absent."
  in
  Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)

let maintenance =
  let doc = "Seconds between background maintenance passes." in
  Arg.(value & opt float 1.0 & info [ "maintenance-period" ] ~docv:"SECONDS" ~doc)

let query_domains =
  let doc =
    "Worker domains for parallel tablet scans, shared by all client \
     connections and sized once at startup. 0 forces sequential scans; \
     default: CPU count minus two, at least one."
  in
  Arg.(value & opt (some int) None & info [ "query-domains" ] ~docv:"N" ~doc)

let log_level =
  let doc = "Log verbosity: quiet, error, warning, info, debug." in
  Arg.(value & opt (enum [ ("quiet", None); ("error", Some Logs.Error);
                           ("warning", Some Logs.Warning); ("info", Some Logs.Info);
                           ("debug", Some Logs.Debug) ])
         (Some Logs.Info)
       & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let router =
  let doc =
    "Run as a sharding router over the --backends fleet instead of \
     serving a local directory."
  in
  Arg.(value & flag & info [ "router" ] ~doc)

let backends =
  let doc = "Comma-separated backend endpoints (HOST:PORT), in shard order." in
  Arg.(value & opt string "" & info [ "backends" ] ~docv:"ENDPOINTS" ~doc)

let replicas =
  let doc =
    "Warm-spare replica for a shard, as SHARD=HOST:PORT. Repeatable. \
     Reads fail over to the replica when the shard's primary dies."
  in
  Arg.(value & opt_all string [] & info [ "replicas" ] ~docv:"SHARD=HOST:PORT" ~doc)

let placement =
  let doc =
    "Placement policy over the leading primary-key column: hash \
     (consistent hashing, optionally hash:VNODES) or \
     range:V1,V2,... (N-1 ascending split points for N backends; \
     int64 or string literals)."
  in
  Arg.(value & opt string "hash" & info [ "placement" ] ~docv:"POLICY" ~doc)

let row_limit =
  let doc =
    "Router page cap behind the more-available flag. Must equal the \
     backends' server row limit for byte-identical paging; default: the \
     engine default."
  in
  Arg.(value & opt (some int) None & info [ "router-row-limit" ] ~docv:"N" ~doc)

let spare_of =
  let doc =
    "Run as a warm spare of the primary database at this directory: \
     continuously sync it into --dir and promote to a live server on \
     the first data request."
  in
  Arg.(value & opt (some string) None & info [ "spare-of" ] ~docv:"PRIMARY_DIR" ~doc)

let sync_period =
  let doc = "Seconds between spare sync passes (with --spare-of)." in
  Arg.(value & opt float 10.0 & info [ "sync-period" ] ~docv:"SECONDS" ~doc)

let cmd =
  let doc = "LittleTable time-series database server" in
  let info = Cmd.info "littletable-server" ~doc in
  Cmd.v info
    Term.(
      const run $ dir $ port $ metrics_port $ maintenance $ query_domains
      $ log_level $ router $ backends $ replicas $ placement $ row_limit
      $ spare_of $ sync_period)

let () = exit (Cmd.eval cmd)
