(* The LittleTable server executable.

   Serves a database directory over TCP:
     dune exec bin/littletable_server.exe -- --dir /var/lib/littletable --port 7447 *)

let setup_logging level =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let run dir port metrics_port maintenance query_domains level =
  setup_logging level;
  let config =
    match query_domains with
    | None -> Littletable.Config.default
    | Some n -> Littletable.Config.make ~query_domains:n ()
  in
  let db = Littletable.Db.open_ ~config ~dir () in
  let server =
    Lt_net.Server.start ~maintenance_period_s:maintenance ?metrics_port ~db
      ~port ()
  in
  Printf.printf "littletable: serving %s on 127.0.0.1:%d\n%!" dir
    (Lt_net.Server.port server);
  (match Lt_net.Server.metrics_port server with
  | Some p ->
      Printf.printf "littletable: metrics on http://127.0.0.1:%d/metrics\n%!" p
  | None -> ());
  let stop _ =
    Printf.printf "littletable: shutting down\n%!";
    Lt_net.Server.stop server;
    exit 0
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Lt_net.Server.wait server

open Cmdliner

let dir =
  let doc = "Database directory (created if absent)." in
  Arg.(value & opt string "./littletable-data" & info [ "d"; "dir" ] ~docv:"DIR" ~doc)

let port =
  let doc = "TCP port to listen on (0 picks an ephemeral port)." in
  Arg.(value & opt int 7447 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let metrics_port =
  let doc =
    "Serve Prometheus metrics over HTTP at /metrics on this port (0 picks \
     an ephemeral port). Off when absent."
  in
  Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)

let maintenance =
  let doc = "Seconds between background maintenance passes." in
  Arg.(value & opt float 1.0 & info [ "maintenance-period" ] ~docv:"SECONDS" ~doc)

let query_domains =
  let doc =
    "Worker domains for parallel tablet scans, shared by all client \
     connections and sized once at startup. 0 forces sequential scans; \
     default: CPU count minus two, at least one."
  in
  Arg.(value & opt (some int) None & info [ "query-domains" ] ~docv:"N" ~doc)

let log_level =
  let doc = "Log verbosity: quiet, error, warning, info, debug." in
  Arg.(value & opt (enum [ ("quiet", None); ("error", Some Logs.Error);
                           ("warning", Some Logs.Warning); ("info", Some Logs.Info);
                           ("debug", Some Logs.Debug) ])
         (Some Logs.Info)
       & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let cmd =
  let doc = "LittleTable time-series database server" in
  let info = Cmd.info "littletable-server" ~doc in
  Cmd.v info
    Term.(
      const run $ dir $ port $ metrics_port $ maintenance $ query_domains
      $ log_level)

let () = exit (Cmd.eval cmd)
