(* Interactive SQL shell against a LittleTable server.

     dune exec bin/littletable_shell.exe -- --port 7447
     littletable> SELECT device, SUM(bytes) FROM usage WHERE network = 7 GROUP BY device;

   Dot commands: .stats <table> prints the server-side operation and
   block-cache counters. Also runs one-shot statements with -e. *)

let show_stats client table =
  match Lt_net.Client.stats client table with
  | s -> Format.printf "%a@." Littletable.Stats.pp s
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

let execute_line client line =
  match String.trim line with
  | "" -> ()
  | ".quit" | ".exit" | "exit" | "quit" -> raise Exit
  | line when String.length line > 7 && String.sub line 0 7 = ".stats " ->
      show_stats client (String.trim (String.sub line 7 (String.length line - 7)))
  | ".stats" -> Format.printf "usage: .stats <table>@."
  | line -> (
      match Lt_net.Client.sql client line with
      | result -> Format.printf "%a@." Lt_sql.Executor.pp_result result
      | exception Lt_sql.Lexer.Syntax_error msg ->
          Format.printf "syntax error: %s@." msg
      | exception Lt_sql.Planner.Plan_error msg ->
          Format.printf "plan error: %s@." msg
      | exception Lt_sql.Executor.Exec_error msg -> Format.printf "error: %s@." msg
      | exception Lt_net.Client.Remote_error msg ->
          Format.printf "server error: %s@." msg)

let repl client =
  (try
     while true do
       print_string "littletable> ";
       flush stdout;
       match In_channel.input_line In_channel.stdin with
       | None -> raise Exit
       | Some line -> execute_line client line
     done
   with Exit -> ());
  print_newline ()

let run host port statement =
  match Lt_net.Client.connect ~host ~port () with
  | client -> (
      match statement with
      | Some stmt ->
          execute_line client stmt;
          Lt_net.Client.close client
      | None ->
          repl client;
          Lt_net.Client.close client)
  | exception Lt_net.Client.Remote_error msg ->
      Printf.eprintf "littletable-shell: %s\n" msg;
      exit 1

open Cmdliner

let host =
  let doc = "Server host." in
  Arg.(value & opt string "127.0.0.1" & info [ "h"; "host" ] ~docv:"HOST" ~doc)

let port =
  let doc = "Server port." in
  Arg.(value & opt int 7447 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let statement =
  let doc = "Execute one SQL statement and exit." in
  Arg.(value & opt (some string) None & info [ "e"; "execute" ] ~docv:"SQL" ~doc)

let cmd =
  let doc = "SQL shell for the LittleTable server" in
  Cmd.v (Cmd.info "littletable-shell" ~doc) Term.(const run $ host $ port $ statement)

let () = exit (Cmd.eval cmd)
