(* Interactive SQL shell against a LittleTable server.

     dune exec bin/littletable_shell.exe -- --port 7447
     littletable> SELECT device, SUM(bytes) FROM usage WHERE network = 7 GROUP BY device;

   Lines starting with '.' are dot commands (see .help); anything else
   is SQL. Also runs one-shot statements with -e. *)

let show_stats client table =
  match Lt_net.Client.stats client table with
  | s -> Format.printf "%a@." Littletable.Stats.pp s
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

let show_metrics client =
  match Lt_net.Client.metrics client with
  | text -> print_string text
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

let show_slow client n =
  match Lt_net.Client.slow_ops ?n client with
  | [] -> Format.printf "no slow operations recorded@."
  | spans ->
      List.iter
        (fun sp -> Format.printf "%a@." Lt_obs.Trace.pp_span sp)
        spans
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

let show_cluster client =
  match Lt_net.Client.placement client with
  | { Lt_net.Protocol.pl_epoch; pl_policy; pl_backends } -> (
      Format.printf "placement: %s (epoch %d)@." pl_policy pl_epoch;
      match pl_backends with
      | [] -> Format.printf "backends: none (single node)@."
      | eps ->
          List.iteri
            (fun i (host, port) ->
              Format.printf "  shard %d: %s:%d@." i host port)
            eps)
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

let do_flush client table ts =
  match Lt_net.Client.flush_before client table ~ts with
  | () -> Format.printf "flushed@."
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

(* Reassemble a distributed trace into a tree: spans are parented by
   [cx_parent] span id; spans whose parent is absent from the fetched
   set (or zero) render as roots. Offsets are relative to the earliest
   span so the indented timeline reads top to bottom. *)
let show_trace client arg =
  let module Trace = Lt_obs.Trace in
  let ids =
    match arg with
    | "last" -> Lt_net.Client.last_trace client
    | s -> Trace.parse_trace_id s
  in
  match ids with
  | None ->
      Format.printf
        "no trace id: expected a hex trace id or 'last' (run a query first)@."
  | Some (hi, lo) -> (
      match Lt_net.Client.trace client (hi, lo) with
      | [] -> Format.printf "no spans recorded for trace %016Lx%016Lx@." hi lo
      | spans ->
          let span_ids = Hashtbl.create 32 in
          List.iter
            (fun sp ->
              match sp.Trace.sp_ctx with
              | Some c -> Hashtbl.replace span_ids c.Trace.cx_span ()
              | None -> ())
            spans;
          let children = Hashtbl.create 32 in
          let roots = ref [] in
          List.iter
            (fun sp ->
              match sp.Trace.sp_ctx with
              | None -> ()
              | Some c ->
                  if
                    c.Trace.cx_parent <> 0L
                    && Hashtbl.mem span_ids c.Trace.cx_parent
                  then
                    Hashtbl.replace children c.Trace.cx_parent
                      (sp
                      :: Option.value ~default:[]
                           (Hashtbl.find_opt children c.Trace.cx_parent))
                  else roots := sp :: !roots)
            spans;
          let base =
            List.fold_left
              (fun acc sp -> Int64.min acc sp.Trace.sp_start_us)
              Int64.max_int spans
          in
          let by_start l =
            List.sort
              (fun a b -> Int64.compare a.Trace.sp_start_us b.Trace.sp_start_us)
              l
          in
          let rec emit depth sp =
            Format.printf "%s%-8s %-14s +%.3fms %.3fms%s@."
              (String.make (2 * depth) ' ')
              (Trace.op_name sp.Trace.sp_op)
              sp.Trace.sp_table
              (Int64.to_float (Int64.sub sp.Trace.sp_start_us base) /. 1000.)
              (Int64.to_float sp.Trace.sp_duration_us /. 1000.)
              (if sp.Trace.sp_scanned > 0 || sp.Trace.sp_returned > 0 then
                 Printf.sprintf " scanned=%d returned=%d" sp.Trace.sp_scanned
                   sp.Trace.sp_returned
               else "");
            match sp.Trace.sp_ctx with
            | None -> ()
            | Some c ->
                List.iter
                  (emit (depth + 1))
                  (by_start
                     (Option.value ~default:[]
                        (Hashtbl.find_opt children c.Trace.cx_span)))
          in
          Format.printf "trace %016Lx%016Lx (%d spans)@." hi lo
            (List.length spans);
          List.iter (emit 0) (by_start !roots)
      | exception Lt_net.Client.Remote_error msg ->
          Format.printf "server error: %s@." msg)

(* Dot commands: name, argument synopsis, help line, handler on the
   whitespace-separated arguments. *)
let rec dot_commands =
  [ (".help", "", "list available dot commands",
     fun _ _ ->
       List.iter
         (fun (name, args, help, _) ->
           Format.printf "  %-18s %s@."
             (if args = "" then name else name ^ " " ^ args)
             help)
         dot_commands);
    (".stats", "<table>", "server-side operation and block-cache counters",
     fun client args ->
       match args with
       | [ table ] -> show_stats client table
       | _ -> Format.printf "usage: .stats <table>@.");
    (".metrics", "", "Prometheus text exposition of the server's metrics",
     fun client args ->
       match args with
       | [] -> show_metrics client
       | _ -> Format.printf "usage: .metrics@.");
    (".slow", "[n]", "most recent slow operations (default 20)",
     fun client args ->
       match args with
       | [] -> show_slow client None
       | [ n ] -> (
           match int_of_string_opt n with
           | Some n when n >= 0 -> show_slow client (Some n)
           | _ -> Format.printf "usage: .slow [n]@.")
       | _ -> Format.printf "usage: .slow [n]@.");
    (".cluster", "", "placement policy, epoch, and backend shards",
     fun client args ->
       match args with
       | [] -> show_cluster client
       | _ -> Format.printf "usage: .cluster@.");
    (".flush", "<table> [ts]",
     "make rows with timestamp <= ts durable (default: all)",
     fun client args ->
       match args with
       | [ table ] -> do_flush client table Int64.max_int
       | [ table; ts ] -> (
           match Int64.of_string_opt ts with
           | Some ts -> do_flush client table ts
           | None -> Format.printf "usage: .flush <table> [ts]@.")
       | _ -> Format.printf "usage: .flush <table> [ts]@.");
    (".profile", "[on|off]", "per-query EXPLAIN ANALYZE breakdowns",
     fun client args ->
       match args with
       | [ "on" ] ->
           Lt_net.Client.set_profiling client true;
           Format.printf "profiling on@."
       | [ "off" ] ->
           Lt_net.Client.set_profiling client false;
           Format.printf "profiling off@."
       | [] ->
           Format.printf "profiling %s@."
             (if Lt_net.Client.profiling client then "on" else "off")
       | _ -> Format.printf "usage: .profile [on|off]@.");
    (".trace", "<id>|last", "reassembled cross-process span tree",
     fun client args ->
       match args with
       | [ arg ] -> show_trace client arg
       | _ -> Format.printf "usage: .trace <id>|last@.");
    (".quit", "", "leave the shell", fun _ _ -> raise Exit);
    (".exit", "", "leave the shell", fun _ _ -> raise Exit) ]

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let run_dot_command client line =
  match tokenize line with
  | [] -> ()
  | cmd :: args -> (
      match
        List.find_opt (fun (name, _, _, _) -> name = cmd) dot_commands
      with
      | Some (_, _, _, handler) -> handler client args
      | None ->
          Format.printf "unknown command %s (try .help)@." cmd)

let execute_line client line =
  match String.trim line with
  | "" -> ()
  | "exit" | "quit" -> raise Exit
  | line when line.[0] = '.' -> run_dot_command client line
  | line -> (
      match Lt_net.Client.sql client line with
      | result -> (
          Format.printf "%a@." Lt_sql.Executor.pp_result result;
          (* With [.profile on], every query page carried a profile;
             fold the statement's pages into one breakdown. *)
          match Lt_net.Client.take_profiles client with
          | [] -> ()
          | ps ->
              Format.printf "%a@." Lt_obs.Profile.pp
                (Lt_obs.Profile.aggregate ps))
      | exception Lt_sql.Lexer.Syntax_error msg ->
          Format.printf "syntax error: %s@." msg
      | exception Lt_sql.Planner.Plan_error msg ->
          Format.printf "plan error: %s@." msg
      | exception Lt_sql.Executor.Exec_error msg -> Format.printf "error: %s@." msg
      | exception Lt_net.Client.Remote_error msg ->
          Format.printf "server error: %s@." msg)

let repl client =
  (try
     while true do
       print_string "littletable> ";
       flush stdout;
       match In_channel.input_line In_channel.stdin with
       | None -> raise Exit
       | Some line -> execute_line client line
     done
   with Exit -> ());
  print_newline ()

let run host port statement =
  (* An enabled obs makes the shell a trace origin: every request goes
     out under a fresh root context, so [.trace last] can fetch the
     cross-process tree the previous statement produced. *)
  let obs = Lt_obs.Obs.create ~clock:Lt_util.Clock.system () in
  match Lt_net.Client.connect ~obs ~host ~port () with
  | client -> (
      match statement with
      | Some stmt ->
          execute_line client stmt;
          Lt_net.Client.close client
      | None ->
          repl client;
          Lt_net.Client.close client)
  | exception Lt_net.Client.Remote_error msg ->
      Printf.eprintf "littletable-shell: %s\n" msg;
      exit 1

open Cmdliner

let host =
  let doc = "Server host." in
  Arg.(value & opt string "127.0.0.1" & info [ "h"; "host" ] ~docv:"HOST" ~doc)

let port =
  let doc = "Server port." in
  Arg.(value & opt int 7447 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let statement =
  let doc = "Execute one SQL statement and exit." in
  Arg.(value & opt (some string) None & info [ "e"; "execute" ] ~docv:"SQL" ~doc)

let cmd =
  let doc = "SQL shell for the LittleTable server" in
  Cmd.v (Cmd.info "littletable-shell" ~doc) Term.(const run $ host $ port $ statement)

let () = exit (Cmd.eval cmd)
