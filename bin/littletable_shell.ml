(* Interactive SQL shell against a LittleTable server.

     dune exec bin/littletable_shell.exe -- --port 7447
     littletable> SELECT device, SUM(bytes) FROM usage WHERE network = 7 GROUP BY device;

   Lines starting with '.' are dot commands (see .help); anything else
   is SQL. Also runs one-shot statements with -e. *)

let show_stats client table =
  match Lt_net.Client.stats client table with
  | s -> Format.printf "%a@." Littletable.Stats.pp s
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

let show_metrics client =
  match Lt_net.Client.metrics client with
  | text -> print_string text
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

let show_slow client n =
  match Lt_net.Client.slow_ops ?n client with
  | [] -> Format.printf "no slow operations recorded@."
  | spans ->
      List.iter
        (fun sp -> Format.printf "%a@." Lt_obs.Trace.pp_span sp)
        spans
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

let show_cluster client =
  match Lt_net.Client.placement client with
  | { Lt_net.Protocol.pl_epoch; pl_policy; pl_backends } -> (
      Format.printf "placement: %s (epoch %d)@." pl_policy pl_epoch;
      match pl_backends with
      | [] -> Format.printf "backends: none (single node)@."
      | eps ->
          List.iteri
            (fun i (host, port) ->
              Format.printf "  shard %d: %s:%d@." i host port)
            eps)
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

let do_flush client table ts =
  match Lt_net.Client.flush_before client table ~ts with
  | () -> Format.printf "flushed@."
  | exception Lt_net.Client.Remote_error msg ->
      Format.printf "server error: %s@." msg

(* Dot commands: name, argument synopsis, help line, handler on the
   whitespace-separated arguments. *)
let rec dot_commands =
  [ (".help", "", "list available dot commands",
     fun _ _ ->
       List.iter
         (fun (name, args, help, _) ->
           Format.printf "  %-18s %s@."
             (if args = "" then name else name ^ " " ^ args)
             help)
         dot_commands);
    (".stats", "<table>", "server-side operation and block-cache counters",
     fun client args ->
       match args with
       | [ table ] -> show_stats client table
       | _ -> Format.printf "usage: .stats <table>@.");
    (".metrics", "", "Prometheus text exposition of the server's metrics",
     fun client args ->
       match args with
       | [] -> show_metrics client
       | _ -> Format.printf "usage: .metrics@.");
    (".slow", "[n]", "most recent slow operations (default 20)",
     fun client args ->
       match args with
       | [] -> show_slow client None
       | [ n ] -> (
           match int_of_string_opt n with
           | Some n when n >= 0 -> show_slow client (Some n)
           | _ -> Format.printf "usage: .slow [n]@.")
       | _ -> Format.printf "usage: .slow [n]@.");
    (".cluster", "", "placement policy, epoch, and backend shards",
     fun client args ->
       match args with
       | [] -> show_cluster client
       | _ -> Format.printf "usage: .cluster@.");
    (".flush", "<table> [ts]",
     "make rows with timestamp <= ts durable (default: all)",
     fun client args ->
       match args with
       | [ table ] -> do_flush client table Int64.max_int
       | [ table; ts ] -> (
           match Int64.of_string_opt ts with
           | Some ts -> do_flush client table ts
           | None -> Format.printf "usage: .flush <table> [ts]@.")
       | _ -> Format.printf "usage: .flush <table> [ts]@.");
    (".quit", "", "leave the shell", fun _ _ -> raise Exit);
    (".exit", "", "leave the shell", fun _ _ -> raise Exit) ]

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let run_dot_command client line =
  match tokenize line with
  | [] -> ()
  | cmd :: args -> (
      match
        List.find_opt (fun (name, _, _, _) -> name = cmd) dot_commands
      with
      | Some (_, _, _, handler) -> handler client args
      | None ->
          Format.printf "unknown command %s (try .help)@." cmd)

let execute_line client line =
  match String.trim line with
  | "" -> ()
  | "exit" | "quit" -> raise Exit
  | line when line.[0] = '.' -> run_dot_command client line
  | line -> (
      match Lt_net.Client.sql client line with
      | result -> Format.printf "%a@." Lt_sql.Executor.pp_result result
      | exception Lt_sql.Lexer.Syntax_error msg ->
          Format.printf "syntax error: %s@." msg
      | exception Lt_sql.Planner.Plan_error msg ->
          Format.printf "plan error: %s@." msg
      | exception Lt_sql.Executor.Exec_error msg -> Format.printf "error: %s@." msg
      | exception Lt_net.Client.Remote_error msg ->
          Format.printf "server error: %s@." msg)

let repl client =
  (try
     while true do
       print_string "littletable> ";
       flush stdout;
       match In_channel.input_line In_channel.stdin with
       | None -> raise Exit
       | Some line -> execute_line client line
     done
   with Exit -> ());
  print_newline ()

let run host port statement =
  match Lt_net.Client.connect ~host ~port () with
  | client -> (
      match statement with
      | Some stmt ->
          execute_line client stmt;
          Lt_net.Client.close client
      | None ->
          repl client;
          Lt_net.Client.close client)
  | exception Lt_net.Client.Remote_error msg ->
      Printf.eprintf "littletable-shell: %s\n" msg;
      exit 1

open Cmdliner

let host =
  let doc = "Server host." in
  Arg.(value & opt string "127.0.0.1" & info [ "h"; "host" ] ~docv:"HOST" ~doc)

let port =
  let doc = "Server port." in
  Arg.(value & opt int 7447 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let statement =
  let doc = "Execute one SQL statement and exit." in
  Arg.(value & opt (some string) None & info [ "e"; "execute" ] ~docv:"SQL" ~doc)

let cmd =
  let doc = "SQL shell for the LittleTable server" in
  Cmd.v (Cmd.info "littletable-shell" ~doc) Term.(const run $ host $ port $ statement)

let () = exit (Cmd.eval cmd)
