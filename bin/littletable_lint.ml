[@@@lint.allow
  "vfs-discipline: the linter writes its findings report straight into \
   the workspace for CI to upload; it is a build tool, not database \
   code, so Vfs interception does not apply"]

(* littletable_lint — run the project-invariant analyzer over source
   roots and exit non-zero on any finding. See lib/lint/lint.mli.

   A root may carry its own rule restriction as [path:rule1,rule2] —
   the CI invocation lints test/ for clock-discipline and no-stdout
   only, while lib/bin/bench get the full catalogue. *)

let usage =
  "littletable_lint [--typed] [--format=plain|github] [--only r1,r2]\n\
  \                 [--out FILE] [--rules] [--explain RULE] \
   DIR[:r1,r2]..."

let explain rule =
  match List.assoc_opt rule Lt_lint.Lint.rules_with_doc with
  | None ->
      Printf.eprintf "littletable_lint: unknown rule %S\n" rule;
      exit 2
  | Some doc ->
      Printf.printf "%s\n  %s\n" rule doc;
      (match Lt_lint.Lint.rule_example rule with
      | None -> ()
      | Some (bad, good) ->
          let indent s =
            String.split_on_char '\n' s
            |> List.map (fun l -> "    " ^ l)
            |> String.concat "\n"
          in
          Printf.printf "\n  bad:\n%s\n\n  good:\n%s\n" (indent bad)
            (indent good));
      exit 0

let parse_root spec =
  match String.index_opt spec ':' with
  | None -> Lt_lint.Lint.root spec
  | Some i ->
      let path = String.sub spec 0 i in
      let rules =
        String.sub spec (i + 1) (String.length spec - i - 1)
        |> String.split_on_char ','
        |> List.map String.trim
        |> List.filter (fun r -> r <> "")
      in
      Lt_lint.Lint.root ~only:rules path

let () =
  let format = ref `Plain in
  let only = ref None in
  let typed = ref false in
  let out = ref None in
  let list_rules = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol
          ( [ "plain"; "github" ],
            fun s -> format := if s = "github" then `Github else `Plain ),
        " output format (default plain)" );
      ( "--only",
        Arg.String
          (fun s ->
            only := Some (String.split_on_char ',' s |> List.map String.trim)),
        "r1,r2 restrict to a comma-separated subset of rules" );
      ( "--typed",
        Arg.Set typed,
        " also run the cmt-based rules (domain-race, blocking-under-lock, \
         atomic-discipline); needs the cmts built, e.g. dune build @check" );
      ( "--out",
        Arg.String (fun s -> out := Some s),
        "FILE also write the findings to FILE (for CI artifacts)" );
      ("--rules", Arg.Set list_rules, " print the rule catalogue and exit");
      ("--list-rules", Arg.Set list_rules, " alias of --rules");
      ( "--explain",
        Arg.String explain,
        "RULE print the rule's doc and a minimal bad/good example" );
    ]
  in
  Arg.parse spec (fun dir -> roots := dir :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (r, doc) -> Printf.printf "%-20s %s\n" r doc)
      Lt_lint.Lint.rules_with_doc;
    exit 0
  end;
  (match !only with
  | Some rs ->
      List.iter
        (fun r ->
          if not (List.mem r Lt_lint.Lint.rule_names) then begin
            Printf.eprintf "littletable_lint: unknown rule %S\n" r;
            exit 2
          end)
        rs
  | None -> ());
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench" ]
    | rs -> rs
  in
  let roots = List.map parse_root roots in
  let findings =
    Lt_lint.Lint.run ?rules:!only ~typed:!typed ~roots ()
  in
  let render f =
    match !format with
    | `Plain -> Lt_lint.Lint.to_plain f
    | `Github -> Lt_lint.Lint.to_github f
  in
  List.iter (fun f -> print_endline (render f)) findings;
  (match !out with
  | None -> ()
  | Some file ->
      Out_channel.with_open_text file (fun oc ->
          List.iter
            (fun f -> Out_channel.output_string oc (Lt_lint.Lint.to_plain f ^ "\n"))
            findings));
  match findings with
  | [] -> ()
  | fs ->
      Printf.eprintf "littletable_lint: %d finding(s)\n" (List.length fs);
      exit 1
