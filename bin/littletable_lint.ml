(* littletable_lint — run the project-invariant analyzer over source
   roots and exit non-zero on any finding. See lib/lint/lint.mli. *)

let usage = "littletable_lint [--format=plain|github] [--rules r1,r2] DIR..."

let () =
  let format = ref `Plain in
  let rules = ref None in
  let list_rules = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol
          ( [ "plain"; "github" ],
            fun s -> format := if s = "github" then `Github else `Plain ),
        " output format (default plain)" );
      ( "--rules",
        Arg.String
          (fun s ->
            rules := Some (String.split_on_char ',' s |> List.map String.trim)),
        "r1,r2 restrict to a comma-separated subset of rules" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun dir -> roots := dir :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun r -> Printf.printf "%-16s %s\n" r (Lt_lint.Lint.rule_doc r))
      Lt_lint.Lint.rule_names;
    exit 0
  end;
  (match !rules with
  | Some rs ->
      List.iter
        (fun r ->
          if not (List.mem r Lt_lint.Lint.rule_names) then begin
            Printf.eprintf "littletable_lint: unknown rule %S\n" r;
            exit 2
          end)
        rs
  | None -> ());
  let roots = match List.rev !roots with [] -> [ "lib"; "bin"; "bench" ] | rs -> rs in
  let findings = Lt_lint.Lint.run ?rules:!rules ~roots () in
  List.iter
    (fun f ->
      print_endline
        (match !format with
        | `Plain -> Lt_lint.Lint.to_plain f
        | `Github -> Lt_lint.Lint.to_github f))
    findings;
  match findings with
  | [] -> ()
  | fs ->
      Printf.eprintf "littletable_lint: %d finding(s)\n" (List.length fs);
      exit 1
