open Littletable

(* ---- plan_sizes: the appendix policy -------------------------------- *)

let unlimited = max_int

let test_no_candidates () =
  (* Strictly more-than-doubling sizes: nothing to merge. *)
  Alcotest.(check bool) "fixpoint" true
    (Merge_policy.plan_sizes ~max_tablet_size:unlimited [| 100; 49; 24; 11 |] = None);
  Alcotest.(check bool) "empty" true
    (Merge_policy.plan_sizes ~max_tablet_size:unlimited [||] = None);
  Alcotest.(check bool) "single" true
    (Merge_policy.plan_sizes ~max_tablet_size:unlimited [| 5 |] = None)

let test_first_eligible_pair () =
  (* 100 > 2*49 skips; 49 <= 2*30 seeds at index 1. *)
  Alcotest.(check bool) "pair at 1" true
    (Merge_policy.plan_sizes ~max_tablet_size:79 [| 100; 49; 30 |] = Some (1, 2))

let test_extension_up_to_cap () =
  (* Pair (10,10) extends to absorb the following tablets while under cap. *)
  Alcotest.(check bool) "extends" true
    (Merge_policy.plan_sizes ~max_tablet_size:35 [| 10; 10; 10; 10; 10 |]
    = Some (0, 3));
  Alcotest.(check bool) "extends all" true
    (Merge_policy.plan_sizes ~max_tablet_size:1000 [| 10; 10; 10; 10 |]
    = Some (0, 4))

let test_equal_pair () =
  Alcotest.(check bool) "equal sizes merge" true
    (Merge_policy.plan_sizes ~max_tablet_size:unlimited [| 8; 8 |] = Some (0, 2))

(* Run the policy to a fixpoint over a size list, counting how many times
   each original "row" (unit of size) is rewritten. Models the appendix
   proof obligations. *)
let run_to_fixpoint sizes =
  let tablets = ref (Array.to_list (Array.map (fun s -> (s, 1)) sizes)) in
  (* each tablet: (size, max rewrite count among its rows) *)
  let max_rewrites = ref 0 in
  let rec step () =
    let arr = Array.of_list !tablets in
    match
      Merge_policy.plan_sizes ~max_tablet_size:max_int (Array.map fst arr)
    with
    | None -> ()
    | Some (start, len) ->
        let merged_size = ref 0 and merged_depth = ref 0 in
        for i = start to start + len - 1 do
          merged_size := !merged_size + fst arr.(i);
          merged_depth := max !merged_depth (snd arr.(i))
        done;
        let depth = !merged_depth + 1 in
        max_rewrites := max !max_rewrites depth;
        let out = ref [] in
        Array.iteri
          (fun i t ->
            if i < start || i >= start + len then out := t :: !out
            else if i = start then out := (!merged_size, depth) :: !out)
          arr;
        tablets := List.rev !out;
        step ()
  in
  step ();
  (List.length !tablets, !max_rewrites)

let log2 x = log (float_of_int x) /. log 2.0

let prop_logarithmic_tablet_count =
  QCheck.Test.make ~name:"appendix: final tablet count is O(log T)" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 1 1000))
    (fun sizes ->
      let total = List.fold_left ( + ) 0 sizes in
      let count, _ = run_to_fixpoint (Array.of_list sizes) in
      (* The proof gives T >= 2^n - 1, i.e. n <= log2(T+1). *)
      float_of_int count <= log2 (total + 1) +. 1.0)

let prop_logarithmic_rewrites =
  QCheck.Test.make ~name:"appendix: per-row rewrites are O(log T)" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 1 1000))
    (fun sizes ->
      let total = List.fold_left ( + ) 0 sizes in
      let _, rewrites = run_to_fixpoint (Array.of_list sizes) in
      (* Each merge seeded at t_i grows the container by >= 3/2, giving a
         log_{1.5} bound; allow the additive constants of the proof. *)
      float_of_int rewrites <= (log (float_of_int (total + 1)) /. log 1.5) +. 2.0)

let prop_fixpoint_has_no_pair =
  QCheck.Test.make ~name:"fixpoint: every tablet > 2x its successor" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (int_range 1 1000))
    (fun sizes ->
      let tablets = ref (Array.of_list sizes) in
      let rec step () =
        match Merge_policy.plan_sizes ~max_tablet_size:max_int !tablets with
        | None -> ()
        | Some (start, len) ->
            let merged = Array.fold_left ( + ) 0 (Array.sub !tablets start len) in
            tablets :=
              Array.concat
                [ Array.sub !tablets 0 start; [| merged |];
                  Array.sub !tablets (start + len)
                    (Array.length !tablets - start - len) ];
            step ()
      in
      step ();
      let arr = !tablets in
      let ok = ref true in
      for i = 0 to Array.length arr - 2 do
        if arr.(i) <= 2 * arr.(i + 1) then ok := false
      done;
      !ok)

(* ---- plan: periods and eligibility ----------------------------------- *)

let now = 1_720_000_000_000_000L

let input ?(eligible_at = 0L) ?(stale_layout = false) ~id ~size ~min_ts
    ~max_ts () =
  Merge_policy.{ id; size; min_ts; max_ts; eligible_at; stale_layout }

let hour = Lt_util.Clock.hour
let week = Lt_util.Clock.week

let test_plan_simple () =
  (* Two same-period, same-size tablets merge. *)
  let ts = Int64.sub now (Int64.mul 10L week) in
  let inputs =
    [ input ~id:1 ~size:10 ~min_ts:ts ~max_ts:(Int64.add ts 1L) ();
      input ~id:2 ~size:10 ~min_ts:(Int64.add ts 2L) ~max_ts:(Int64.add ts 3L) () ]
  in
  match Merge_policy.plan ~now ~max_tablet_size:max_int inputs with
  | Some p -> Alcotest.(check (list int)) "both" [ 1; 2 ] p.Merge_policy.ids
  | None -> Alcotest.fail "expected a plan"

let test_plan_respects_periods () =
  (* Same sizes but in different weeks: never merged. *)
  let t1 = Int64.sub now (Int64.mul 10L week) in
  let t2 = Int64.sub now (Int64.mul 9L week) in
  let inputs =
    [ input ~id:1 ~size:10 ~min_ts:t1 ~max_ts:(Int64.add t1 hour) ();
      input ~id:2 ~size:10 ~min_ts:t2 ~max_ts:(Int64.add t2 hour) () ]
  in
  Alcotest.(check bool) "no cross-period merge" true
    (Merge_policy.plan ~now ~max_tablet_size:max_int inputs = None)

let test_plan_respects_eligibility () =
  let ts = Int64.sub now (Int64.mul 10L week) in
  let later = Int64.add now 1L in
  let inputs =
    [ input ~id:1 ~size:10 ~min_ts:ts ~max_ts:ts ~eligible_at:later ();
      input ~id:2 ~size:10 ~min_ts:(Int64.add ts 2L) ~max_ts:(Int64.add ts 2L) () ]
  in
  Alcotest.(check bool) "delayed tablet excluded" true
    (Merge_policy.plan ~now ~max_tablet_size:max_int inputs = None)

let test_plan_ineligible_breaks_adjacency () =
  (* Eligible tablets separated by an ineligible one must not merge
     around it (that would interleave timespans). *)
  let ts k = Int64.add (Int64.sub now (Int64.mul 10L week)) (Int64.of_int k) in
  let later = Int64.add now 1L in
  let inputs =
    [ input ~id:1 ~size:10 ~min_ts:(ts 0) ~max_ts:(ts 1) ();
      input ~id:2 ~size:10 ~min_ts:(ts 2) ~max_ts:(ts 3) ~eligible_at:later ();
      input ~id:3 ~size:10 ~min_ts:(ts 4) ~max_ts:(ts 5) () ]
  in
  Alcotest.(check bool) "no merge across ineligible" true
    (Merge_policy.plan ~now ~max_tablet_size:max_int inputs = None)

let test_plan_prefers_oldest_group () =
  let old_ts k = Int64.add (Int64.sub now (Int64.mul 20L week)) (Int64.of_int k) in
  let newer_ts k = Int64.add (Int64.sub now (Int64.mul 10L week)) (Int64.of_int k) in
  let inputs =
    [ input ~id:1 ~size:10 ~min_ts:(old_ts 0) ~max_ts:(old_ts 1) ();
      input ~id:2 ~size:10 ~min_ts:(old_ts 2) ~max_ts:(old_ts 3) ();
      input ~id:3 ~size:10 ~min_ts:(newer_ts 0) ~max_ts:(newer_ts 1) ();
      input ~id:4 ~size:10 ~min_ts:(newer_ts 2) ~max_ts:(newer_ts 3) () ]
  in
  match Merge_policy.plan ~now ~max_tablet_size:max_int inputs with
  | Some p -> Alcotest.(check (list int)) "oldest pair" [ 1; 2 ] p.Merge_policy.ids
  | None -> Alcotest.fail "expected a plan"

let suite =
  [
    ("plan_sizes: no candidates", `Quick, test_no_candidates);
    ("plan_sizes: first eligible pair", `Quick, test_first_eligible_pair);
    ("plan_sizes: extension up to cap", `Quick, test_extension_up_to_cap);
    ("plan_sizes: equal pair", `Quick, test_equal_pair);
    ("plan: simple merge", `Quick, test_plan_simple);
    ("plan: periods respected", `Quick, test_plan_respects_periods);
    ("plan: eligibility respected", `Quick, test_plan_respects_eligibility);
    ("plan: ineligible breaks adjacency", `Quick, test_plan_ineligible_breaks_adjacency);
    ("plan: oldest group first", `Quick, test_plan_prefers_oldest_group);
    Support.qcheck prop_logarithmic_tablet_count;
    Support.qcheck prop_logarithmic_rewrites;
    Support.qcheck prop_fixpoint_has_no_pair;
  ]
