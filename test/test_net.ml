open Littletable
open Lt_net

(* ---- Protocol roundtrips (no sockets) --------------------------------- *)

let roundtrip_request req =
  let b = Buffer.create 64 in
  Protocol.write_request b req;
  let cur = Lt_util.Binio.cursor (Buffer.contents b) in
  let req' = Protocol.read_request cur in
  Lt_util.Binio.expect_end cur;
  req'

let roundtrip_response resp =
  let b = Buffer.create 64 in
  Protocol.write_response b resp;
  let cur = Lt_util.Binio.cursor (Buffer.contents b) in
  let resp' = Protocol.read_response cur in
  Lt_util.Binio.expect_end cur;
  resp'

let test_protocol_requests () =
  let schema = Support.usage_schema () in
  let reqs =
    [
      Protocol.Hello 1;
      Protocol.List_tables;
      Protocol.Get_table "usage";
      Protocol.Create_table { table = "t"; schema; ttl = Some 42L };
      Protocol.Drop_table "t";
      Protocol.Insert
        {
          table = "t";
          rows =
            [
              [| Value.Int32 1l; Value.Double 2.5; Value.String "x\x00y";
                 Value.Blob "\xff"; Value.Timestamp 7L |];
            ];
        };
      Protocol.Query
        {
          table = "t";
          query =
            Query.with_limit 9
              (Query.with_direction Query.Desc
                 (Query.between ~ts_min:1L ~ts_max:2L
                    (Query.prefix [ Value.Int64 5L ])));
          profile = false;
        };
      Protocol.Query { table = "t"; query = Query.all; profile = true };
      Protocol.Latest { table = "t"; prefix = [ Value.Int64 1L; Value.String "d" ] };
      Protocol.Flush_before { table = "t"; ts = 123L };
      Protocol.Get_stats "t";
      Protocol.Get_metrics;
      Protocol.Get_metrics_snapshot;
      Protocol.Get_trace (0x0123456789abcdefL, -1L);
      Protocol.Get_slow_ops 25;
      Protocol.Get_placement;
      Protocol.Ping;
      Protocol.Insert_batch { groups = Protocol.Groups [] };
      Protocol.Insert_batch
        {
          groups =
            Protocol.Groups
              [
                ( "usage",
                  [
                    [| Value.Int64 1L; Value.Timestamp 2L |];
                    [| Value.Int64 3L; Value.Timestamp 4L |];
                  ] );
                ("events", [ [| Value.String "x\x00y"; Value.Blob "\xff" |] ]);
                ("empty", []);
              ];
        };
    ]
  in
  List.iter
    (fun req ->
      match (req, roundtrip_request req) with
      | ( Protocol.Create_table { table = t1; schema = s1; ttl = l1 },
          Protocol.Create_table { table = t2; schema = s2; ttl = l2 } ) ->
          Alcotest.(check bool) "create" true
            (t1 = t2 && Schema.equal s1 s2 && l1 = l2)
      | ( Protocol.Insert_batch { groups = g1 },
          Protocol.Insert_batch { groups = g2 } ) ->
          (* The reader deliberately captures the groups section raw
             (undecoded, for zero-copy forwarding); decoded groups must
             still match what was written. *)
          Alcotest.(check bool) "batch read back raw" true
            (match g2 with Protocol.Raw _ -> true | _ -> false);
          Alcotest.(check bool) "batch groups roundtrip" true
            (Protocol.groups_of_payload g1 = Protocol.groups_of_payload g2)
      | a, b -> Alcotest.(check bool) "request roundtrip" true (a = b))
    reqs

let sample_ctx =
  {
    Lt_obs.Trace.cx_trace_hi = 0x0123456789abcdefL;
    cx_trace_lo = -2L;
    cx_span = 77L;
    cx_parent = 3L;
  }

let sample_profile =
  {
    Lt_obs.Profile.p_plan_us = 12L;
    p_scan_us = 340L;
    p_stall_us = 5L;
    p_total_us = 400L;
    p_rows_scanned = 512;
    p_rows_returned = 8;
    p_tablets = 3;
    p_tablets_pruned = 2;
    p_bloom_skips = 0;
    p_cache_hits = 7;
    p_cache_misses = 1;
    p_blocks_footer_answered = 4;
    p_columns_decoded = 11;
    p_shards =
      [
        ("shard0", { Lt_obs.Profile.empty with Lt_obs.Profile.p_scan_us = 100L });
        ("shard1", { Lt_obs.Profile.empty with Lt_obs.Profile.p_rows_scanned = 9 });
      ];
  }

let test_protocol_responses () =
  let resps =
    [
      Protocol.Hello_ok 1;
      Protocol.Tables [ "a"; "b" ];
      Protocol.Ok;
      Protocol.Insert_ok 12;
      Protocol.Row_batch
        {
          rows = [ [| Value.Int64 1L |]; [| Value.String "s" |] ];
          more_available = true;
          scanned = 99;
          profile = None;
        };
      Protocol.Row_batch
        {
          rows = [];
          more_available = false;
          scanned = 0;
          profile = Some sample_profile;
        };
      Protocol.Latest_row None;
      Protocol.Latest_row (Some [| Value.Timestamp 5L |]);
      Protocol.Insert_partial { landed = []; message = "m" };
      Protocol.Insert_partial
        {
          landed = [ ("usage", 12); ("shard1/events", 0) ];
          message = "duplicate key (net=1)";
        };
      Protocol.Error "boom";
      Protocol.Pong;
      Protocol.Placement_info
        { pl_epoch = 0; pl_policy = "single"; pl_backends = [] };
      Protocol.Placement_info
        {
          pl_epoch = 7;
          pl_policy = "hash(vnodes=64)";
          pl_backends = [ ("127.0.0.1", 7501); ("10.1.2.3", 7502) ];
        };
      Protocol.Metrics_text "# TYPE lt_up gauge\nlt_up 1\n";
      Protocol.Slow_ops
        [
          {
            Lt_obs.Trace.sp_op = Lt_obs.Trace.Query;
            sp_table = "usage";
            sp_start_us = 17L;
            sp_duration_us = 250_000L;
            sp_scanned = 512;
            sp_returned = 3;
            sp_tablets = 4;
            sp_cache_hits = 9;
            sp_cache_misses = 2;
            sp_ctx = Some sample_ctx;
          };
          {
            Lt_obs.Trace.sp_op = Lt_obs.Trace.Merge;
            sp_table = "t2";
            sp_start_us = 0L;
            sp_duration_us = 0L;
            sp_scanned = 0;
            sp_returned = 0;
            sp_tablets = 0;
            sp_cache_hits = 0;
            sp_cache_misses = 0;
            sp_ctx = None;
          };
        ];
      Protocol.Trace_spans
        [
          {
            Lt_obs.Trace.sp_op = Lt_obs.Trace.Request;
            sp_table = "query";
            sp_start_us = 5L;
            sp_duration_us = 9L;
            sp_scanned = 1;
            sp_returned = 1;
            sp_tablets = 0;
            sp_cache_hits = 0;
            sp_cache_misses = 0;
            sp_ctx = Some sample_ctx;
          };
        ];
      Protocol.Trace_spans [];
      Protocol.Metrics_snapshot [];
      Protocol.Metrics_snapshot
        [
          {
            Lt_obs.Metrics.sn_name = "lt_rows_total";
            sn_help = "Rows.";
            sn_kind = Lt_obs.Metrics.K_counter;
            sn_bounds = [||];
            sn_children =
              [
                {
                  Lt_obs.Metrics.sn_labels = [ ("table", "usage") ];
                  sn_count = 0;
                  sn_fval = 42.;
                  sn_max = 0.;
                  sn_buckets = [||];
                };
              ];
          };
          {
            Lt_obs.Metrics.sn_name = "lt_q_seconds";
            sn_help = "Latency.";
            sn_kind = Lt_obs.Metrics.K_histogram;
            sn_bounds = [| 0.1; 1.0 |];
            sn_children =
              [
                {
                  Lt_obs.Metrics.sn_labels = [];
                  sn_count = 3;
                  sn_fval = 1.25;
                  sn_max = 1.0;
                  sn_buckets = [| 1; 1; 1 |];
                };
              ];
          };
        ];
    ]
  in
  List.iter
    (fun r -> Alcotest.(check bool) "response roundtrip" true (roundtrip_response r = r))
    resps

let test_protocol_rejects_garbage () =
  (match Protocol.read_request (Lt_util.Binio.cursor "\xee") with
  | (_ : Protocol.request) -> Alcotest.fail "bad tag accepted"
  | exception Protocol.Protocol_error _ -> ());
  match Protocol.read_response (Lt_util.Binio.cursor "\xee") with
  | (_ : Protocol.response) -> Alcotest.fail "bad tag accepted"
  | exception Protocol.Protocol_error _ -> ()

(* The trace context travels as a frame-level prefix ahead of the
   tagged request body, so any request type carries it unchanged and
   its absence decodes as [None]. *)
let test_ctx_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      Protocol.send_request ~ctx:sample_ctx a Protocol.Ping;
      (match Protocol.recv_request b with
      | Some c, Protocol.Ping ->
          Alcotest.(check bool) "ctx carried" true (c = sample_ctx)
      | _ -> Alcotest.fail "ctx lost in framing");
      Protocol.send_request a (Protocol.Get_table "t");
      match Protocol.recv_request b with
      | None, Protocol.Get_table t when t = "t" -> ()
      | _ -> Alcotest.fail "absent ctx must decode as None")

(* ---- End-to-end over TCP ----------------------------------------------- *)

let with_server f =
  let dir = Filename.temp_file "lt_net_test" "" in
  Sys.remove dir;
  let config = Littletable.Config.make ~server_row_limit:8 () in
  let db = Db.open_ ~config ~dir () in
  let server = Server.start ~maintenance_period_s:0.0 ~db ~port:0 () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f server)

let test_server_end_to_end () =
  with_server (fun server ->
      let c = Client.connect ~port:(Server.port server) () in
      Client.ping c;
      Alcotest.(check (list string)) "empty" [] (Client.list_tables c);
      let schema = Support.usage_schema () in
      Client.create_table c "usage" schema ~ttl:None;
      Alcotest.(check (list string)) "created" [ "usage" ] (Client.list_tables c);
      let got_schema, ttl = Client.table_info c "usage" in
      Alcotest.(check bool) "schema" true (Schema.equal schema got_schema);
      Alcotest.(check bool) "ttl" true (ttl = None);
      (* Insert 30 rows; server pages at 8. *)
      let rows =
        List.init 30 (fun i ->
            Support.usage_row ~network:1L ~device:(Int64.of_int i)
              ~ts:(Int64.of_int (i + 1)) ~bytes:(Int64.of_int (i * 2)) ~rate:0.0)
      in
      Client.insert c "usage" rows;
      let page = Client.query_page c "usage" Query.all in
      Alcotest.(check int) "page capped" 8 (List.length page.Client.rows);
      Alcotest.(check bool) "more" true page.Client.more_available;
      let all = Client.query_all c "usage" Query.all in
      Alcotest.(check int) "paged through" 30 (List.length all);
      Alcotest.(check bool) "ordered and complete" true
        (List.map (fun r -> Support.int64_of_cell r.(1)) all
        = List.init 30 Int64.of_int);
      (* Descending pagination too. *)
      let desc = Client.query_all c "usage" (Query.with_direction Query.Desc Query.all) in
      Alcotest.(check bool) "desc" true (desc = List.rev all);
      (* Client-side limit below a page. *)
      let limited = Client.query_all c "usage" (Query.with_limit 3 Query.all) in
      Alcotest.(check int) "limit 3" 3 (List.length limited);
      (* latest. *)
      (match Client.latest c "usage" [ Value.Int64 1L ] with
      | Some row -> Alcotest.(check int64) "latest ts" 30L (Support.ts_of_cell row.(2))
      | None -> Alcotest.fail "no latest");
      (* flush_before + stats. *)
      Client.flush_before c "usage" ~ts:100L;
      let s = Client.stats c "usage" in
      Alcotest.(check int) "rows inserted" 30 s.Stats.rows_inserted;
      Alcotest.(check bool) "flushed" true (s.Stats.flushes >= 1);
      (* errors. *)
      (match Client.insert c "usage" rows with
      | () -> Alcotest.fail "duplicate batch accepted"
      | exception Client.Remote_error _ -> ());
      (match Client.table_info c "missing" with
      | (_ : Schema.t * int64 option) -> Alcotest.fail "missing table"
      | exception Client.Remote_error _ -> ());
      Client.close c)

let test_server_sql_over_wire () =
  with_server (fun server ->
      let c = Client.connect ~port:(Server.port server) () in
      ignore
        (Client.sql c
           "CREATE TABLE ev (net STRING, dev STRING, ts TIMESTAMP, \
            id INT64, body STRING, PRIMARY KEY (net, dev, ts))");
      (match
         Client.sql c
           "INSERT INTO ev (net, dev, ts, id, body) VALUES \
            ('n1', 'd1', 10, 1, 'assoc'), ('n1', 'd1', 20, 2, 'dhcp'), \
            ('n1', 'd2', 30, 3, 'auth')"
       with
      | Lt_sql.Executor.Affected 3 -> ()
      | _ -> Alcotest.fail "insert");
      (match Client.sql c "SELECT COUNT(*) FROM ev WHERE net = 'n1' AND dev = 'd1'" with
      | Lt_sql.Executor.Rows { rows = [ [| Value.Int64 2L |] ]; _ } -> ()
      | _ -> Alcotest.fail "count");
      (match Client.sql c "SELECT dev, MAX(ts) FROM ev WHERE net = 'n1' GROUP BY dev" with
      | Lt_sql.Executor.Rows { rows; _ } -> Alcotest.(check int) "groups" 2 (List.length rows)
      | _ -> Alcotest.fail "group");
      Client.close c)

let test_multiple_clients () =
  with_server (fun server ->
      let schema = Support.usage_schema () in
      let c0 = Client.connect ~port:(Server.port server) () in
      Client.create_table c0 "usage" schema ~ttl:None;
      (* Paper §5.1.4: separate writers to separate tables; here several
         clients write to the same server concurrently. *)
      let clients = List.init 4 (fun _ -> Client.connect ~port:(Server.port server) ()) in
      let threads =
        List.mapi
          (fun w c ->
            Thread.create
              (fun () ->
                for i = 0 to 49 do
                  Client.insert c "usage"
                    [
                      Support.usage_row ~network:(Int64.of_int w)
                        ~device:(Int64.of_int i) ~ts:(Int64.of_int ((w * 1000) + i))
                        ~bytes:0L ~rate:0.0;
                    ]
                done)
              ())
          clients
      in
      List.iter Thread.join threads;
      let all = Client.query_all c0 "usage" Query.all in
      Alcotest.(check int) "all writers landed" 200 (List.length all);
      List.iter Client.close (c0 :: clients))

let test_reconnect_after_server_restart () =
  let dir = Filename.temp_file "lt_net_test" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let db = Db.open_ ~dir () in
      let server = Server.start ~maintenance_period_s:0.0 ~db ~port:0 () in
      let port = Server.port server in
      let c = Client.connect ~port () in
      Client.create_table c "usage" (Support.usage_schema ()) ~ttl:None;
      Client.insert c "usage"
        [ Support.usage_row ~network:1L ~device:1L ~ts:1L ~bytes:0L ~rate:0.0 ];
      (* Server goes down: the persistent connection detects it. *)
      Server.stop server;
      (match Client.ping c with
      | () -> Alcotest.fail "expected Disconnected"
      | exception Client.Disconnected -> ());
      (* Server comes back on the same port (flush happened at stop). *)
      let db2 = Db.open_ ~dir () in
      let server2 = Server.start ~maintenance_period_s:0.0 ~db:db2 ~port () in
      Client.reconnect c;
      let rows = Client.query_all c "usage" Query.all in
      Alcotest.(check int) "durable row back" 1 (List.length rows);
      Client.close c;
      Server.stop server2)

(* A v1 client hello against a v2 server must be refused at the door,
   not half-served with messages it cannot decode. *)
let test_mixed_version_hello_rejected () =
  with_server (fun server ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
          Protocol.send_request fd (Protocol.Hello 1);
          (match Protocol.recv_response fd with
          | Protocol.Error msg ->
              Alcotest.(check bool) "names the version" true
                (Support.contains ~sub:"version" msg)
          | _ -> Alcotest.fail "stale version accepted");
          (* The current version still gets through on the same socket. *)
          Protocol.send_request fd (Protocol.Hello Protocol.version);
          match Protocol.recv_response fd with
          | Protocol.Hello_ok v ->
              Alcotest.(check int) "hello_ok echoes version" Protocol.version v
          | _ -> Alcotest.fail "current version refused"))

(* Per-query profiles over the wire: explicit opt-in returns a
   breakdown, the default stays bare, and rows are identical either
   way; the sticky client-side flag accumulates for [take_profiles]. *)
let test_query_profile_over_wire () =
  with_server (fun server ->
      let c = Client.connect ~port:(Server.port server) () in
      Client.create_table c "usage" (Support.usage_schema ()) ~ttl:None;
      let rows =
        List.init 20 (fun i ->
            Support.usage_row ~network:1L ~device:(Int64.of_int i)
              ~ts:(Int64.of_int (i + 1)) ~bytes:0L ~rate:0.0)
      in
      Client.insert c "usage" rows;
      Client.flush_before c "usage" ~ts:100L;
      let page = Client.query_page ~profile:true c "usage" Query.all in
      (match page.Client.profile with
      | Some p ->
          Alcotest.(check int) "profiled rows returned" 8
            p.Lt_obs.Profile.p_rows_returned;
          Alcotest.(check bool) "profiled rows scanned" true
            (p.Lt_obs.Profile.p_rows_scanned >= 8)
      | None -> Alcotest.fail "profile requested but absent");
      let plain = Client.query_page c "usage" Query.all in
      Alcotest.(check bool) "no profile by default" true
        (plain.Client.profile = None);
      Alcotest.(check bool) "profiling leaves rows identical" true
        (plain.Client.rows = page.Client.rows);
      Client.set_profiling c true;
      let (_ : Value.t array list) = Client.query_all c "usage" Query.all in
      let ps = Client.take_profiles c in
      Alcotest.(check bool) "sticky profiling accumulates" true
        (List.length ps >= 1);
      Alcotest.(check int) "take_profiles drains" 0
        (List.length (Client.take_profiles c));
      Client.close c)

(* An obs-enabled client originates a trace per request; Get_trace on
   the server returns that request's spans — the single-node half of
   the cross-process trace tree. *)
let test_trace_fetch_over_wire () =
  with_server (fun server ->
      let obs = Lt_obs.Obs.create ~clock:Lt_util.Clock.system () in
      let c = Client.connect ~obs ~port:(Server.port server) () in
      Client.create_table c "usage" (Support.usage_schema ()) ~ttl:None;
      Client.insert c "usage"
        [ Support.usage_row ~network:1L ~device:1L ~ts:1L ~bytes:0L ~rate:0.0 ];
      let (_ : Value.t array list) = Client.query_all c "usage" Query.all in
      match Client.last_trace c with
      | None -> Alcotest.fail "an obs-enabled client must record its trace id"
      | Some (hi, lo) ->
          let spans = Client.trace c (hi, lo) in
          Alcotest.(check bool) "request span present" true
            (List.exists
               (fun sp -> sp.Lt_obs.Trace.sp_op = Lt_obs.Trace.Request)
               spans);
          Alcotest.(check bool) "engine query span joined the trace" true
            (List.exists
               (fun sp -> sp.Lt_obs.Trace.sp_op = Lt_obs.Trace.Query)
               spans);
          Alcotest.(check bool) "every span belongs to the trace" true
            (List.for_all
               (fun sp ->
                 match sp.Lt_obs.Trace.sp_ctx with
                 | Some cx -> Lt_obs.Trace.same_trace ~hi ~lo cx
                 | None -> false)
               spans);
          Client.close c)

(* A plain single-node server still answers Get_placement: one implicit
   shard, so router-aware clients degrade gracefully. *)
let test_single_node_placement () =
  with_server (fun server ->
      let c = Client.connect ~port:(Server.port server) () in
      let pl = Client.placement c in
      Alcotest.(check string) "policy" "single" pl.Protocol.pl_policy;
      Alcotest.(check int) "epoch" 0 pl.Protocol.pl_epoch;
      Alcotest.(check int) "no explicit backends" 0
        (List.length pl.Protocol.pl_backends);
      Client.close c)

(* ---- Batched / buffered inserts ---------------------------------------- *)

let urow i =
  Support.usage_row ~network:1L ~device:(Int64.of_int i)
    ~ts:(Int64.of_int (i + 1)) ~bytes:(Int64.of_int i) ~rate:0.0

(* Client-side buffering: rows accumulate without a round trip and go
   out as one [Insert_batch] when the row threshold trips; an explicit
   [flush] drains the remainder. *)
let test_buffered_insert_flush_on_size () =
  with_server (fun server ->
      let c =
        Client.connect ~batch_rows:10 ~batch_interval_ms:60_000
          ~port:(Server.port server) ()
      in
      Client.create_table c "usage" (Support.usage_schema ()) ~ttl:None;
      for i = 0 to 24 do
        Client.buffered_insert c "usage" [ urow i ]
      done;
      (* Thresholds tripped at rows 10 and 20; five rows still pending. *)
      Alcotest.(check int) "pending below threshold" 5 (Client.pending c);
      Alcotest.(check int) "two batches landed" 20
        (List.length (Client.query_all c "usage" Query.all));
      Client.flush c;
      Alcotest.(check int) "drained" 0 (Client.pending c);
      Client.flush c (* no-op on empty *);
      Alcotest.(check int) "all rows in" 25
        (List.length (Client.query_all c "usage" Query.all));
      Client.close c)

(* Flush-on-interval, timed by the injected clock (never the ambient
   wall clock): the deadline is set when the buffer becomes non-empty
   and checked on each call. *)
let test_buffered_insert_flush_on_interval () =
  with_server (fun server ->
      let clock = Lt_util.Clock.manual () in
      let c =
        Client.connect ~clock ~batch_rows:1_000 ~batch_interval_ms:50
          ~port:(Server.port server) ()
      in
      Client.create_table c "usage" (Support.usage_schema ()) ~ttl:None;
      Client.buffered_insert c "usage" [ urow 0 ];
      Client.buffered_insert c "usage" [ urow 1 ];
      Alcotest.(check int) "interval not up" 2 (Client.pending c);
      Lt_util.Clock.advance clock (Lt_util.Clock.msec 60);
      Client.buffered_insert c "usage" [ urow 2 ];
      Alcotest.(check int) "interval flush" 0 (Client.pending c);
      Alcotest.(check int) "all three in" 3
        (List.length (Client.query_all c "usage" Query.all));
      Client.close c)

(* The single-node partial-commit bugfix: a mid-batch duplicate leaves
   the leading rows committed, and the answer must say how many —
   previously a plain [Error] left the client unable to tell what to
   resend. *)
let test_partial_insert_reports_landed () =
  with_server (fun server ->
      let c = Client.connect ~port:(Server.port server) () in
      Client.create_table c "usage" (Support.usage_schema ()) ~ttl:None;
      Client.insert c "usage" [ urow 0; urow 1; urow 2 ];
      (match Client.insert c "usage" [ urow 3; urow 4; urow 1; urow 5 ] with
      | () -> Alcotest.fail "mid-batch duplicate accepted"
      | exception Client.Partial_insert (landed, msg) ->
          Alcotest.(check (list (pair string int)))
            "landed prefix named" [ ("usage", 2) ] landed;
          Alcotest.(check bool) "names the duplicate" true
            (Support.contains ~sub:"duplicate" msg));
      Alcotest.(check int) "prefix committed, remainder not" 5
        (List.length (Client.query_all c "usage" Query.all));
      (* The client resends only the remainder past the duplicate. *)
      Client.insert c "usage" [ urow 5 ];
      Alcotest.(check int) "remainder landed once" 6
        (List.length (Client.query_all c "usage" Query.all));
      (* An all-duplicate batch commits nothing: plain error. *)
      (match Client.insert c "usage" [ urow 0 ] with
      | () -> Alcotest.fail "duplicate accepted"
      | exception Client.Remote_error _ -> ());
      Client.close c)

(* A buffered flush hitting a mid-batch duplicate surfaces the same
   accounting and leaves the buffer empty — retries are the caller's,
   never implicit. *)
let test_buffered_flush_partial () =
  with_server (fun server ->
      let c =
        Client.connect ~batch_rows:1_000 ~batch_interval_ms:60_000
          ~port:(Server.port server) ()
      in
      Client.create_table c "usage" (Support.usage_schema ()) ~ttl:None;
      Client.insert c "usage" [ urow 1 ];
      Client.buffered_insert c "usage" [ urow 2; urow 3; urow 1; urow 4 ];
      (match Client.flush c with
      | () -> Alcotest.fail "flush over a duplicate must fail"
      | exception Client.Partial_insert (landed, _) ->
          Alcotest.(check (list (pair string int)))
            "landed prefix named" [ ("usage", 2) ] landed);
      Alcotest.(check int) "failed flush empties the buffer" 0
        (Client.pending c);
      Client.close c)

(* The reconnect-buffer regression (SIGKILL edition): rows buffered when
   the backend dies stay in the buffer — they were never written to a
   socket — and [reconnect] delivers them exactly once; nothing is
   silently dropped, nothing replayed. The backend is the real server
   executable in its own process, so a real SIGKILL takes it down with
   no graceful shutdown. (Unix.fork is unavailable here: the test
   runner has live domains from the parallel-scan suites.) *)
let test_buffered_rows_survive_sigkill_reconnect () =
  let dir = Filename.temp_file "lt_net_test" "" in
  Sys.remove dir;
  let pidfile = Filename.temp_file "lt_net_pid" "" in
  Fun.protect
    ~finally:(fun () ->
      (match int_of_string_opt (String.trim (In_channel.with_open_text pidfile In_channel.input_all)) with
      | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      | None | (exception Sys_error _) -> ());
      Sys.remove pidfile;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      (* Reserve an ephemeral port, then hand it to the child. *)
      let probe = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt probe Unix.SO_REUSEADDR true;
      Unix.bind probe (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      let port =
        match Unix.getsockname probe with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      Unix.close probe;
      let rc =
        Sys.command
          (Printf.sprintf
             "%s --dir %s --port %d --log-level quiet --query-domains 0 \
              >/dev/null 2>&1 & echo $! > %s"
             (Filename.quote "../bin/littletable_server.exe")
             (Filename.quote dir) port (Filename.quote pidfile))
      in
      Alcotest.(check int) "backend spawned" 0 rc;
      let pid =
        int_of_string
          (String.trim (In_channel.with_open_text pidfile In_channel.input_all))
      in
      let rec wait_up tries =
        match
          Client.connect ~batch_rows:1_000 ~batch_interval_ms:600_000 ~port ()
        with
        | c -> c
        | exception Client.Remote_error _ when tries > 0 ->
            Thread.delay 0.05;
            wait_up (tries - 1)
      in
      let c = wait_up 200 in
      Client.create_table c "usage" (Support.usage_schema ()) ~ttl:None;
      for i = 0 to 29 do
        Client.buffered_insert c "usage" [ urow i ]
      done;
      Alcotest.(check int) "all rows buffered, none sent" 30 (Client.pending c);
      Unix.kill pid Sys.sigkill;
      let rec wait_down tries =
        match Client.ping c with
        | () when tries > 0 ->
            Thread.delay 0.05;
            wait_down (tries - 1)
        | () -> Alcotest.fail "server survived SIGKILL"
        | exception Client.Disconnected -> ()
      in
      wait_down 200;
      Alcotest.(check int) "outage does not drop the buffer" 30
        (Client.pending c);
      (* Backend comes back on the same port with empty data (the
         SIGKILL flushed nothing; only the table descriptor reached
         disk). Reconnect must flush the pending rows exactly once.
         The client-visible disconnect can precede the kernel finishing
         teardown of the dead child's listen socket on a loaded host, so
         retry the rebind briefly instead of failing on EADDRINUSE. *)
      let db2 = Db.open_ ~dir () in
      let rec restart tries =
        match Server.start ~maintenance_period_s:0.0 ~db:db2 ~port () with
        | s -> s
        | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) when tries > 0 ->
            Thread.delay 0.05;
            restart (tries - 1)
      in
      let server2 = restart 200 in
      Client.reconnect c;
      Alcotest.(check int) "reconnect flushed the buffer" 0 (Client.pending c);
      let rows = Client.query_all c "usage" Query.all in
      Alcotest.(check int) "each row exactly once" 30 (List.length rows);
      Alcotest.(check bool) "no duplicates, no losses" true
        (List.map (fun r -> Support.int64_of_cell r.(1)) rows
        = List.init 30 Int64.of_int);
      Client.close c;
      Server.stop server2)

(* Fuzz: arbitrary bytes fed to the decoders either parse or raise a
   protocol/corruption error — never crash. *)
let prop_decoders_total =
  QCheck.Test.make ~name:"protocol decoders are total" ~count:2000
    QCheck.(string_gen_of_size Gen.(int_bound 100) Gen.char)
    (fun junk ->
      let ok f =
        match f (Lt_util.Binio.cursor junk) with
        | _ -> true
        | exception (Protocol.Protocol_error _ | Lt_util.Binio.Corrupt _) -> true
        | exception Littletable.Schema.Invalid _ -> true
      in
      ok Protocol.read_request && ok Protocol.read_response)

(* Regression: a varint overflowing to a negative count must be a
   protocol error, not Invalid_argument from Array.init/List.init. *)
let test_negative_count_rejected () =
  let junk = "\002a\128\128\128\128\128\128\128\128aaaaaa" in
  let ok f =
    match f (Lt_util.Binio.cursor junk) with
    | _ -> true
    | exception (Protocol.Protocol_error _ | Lt_util.Binio.Corrupt _) -> true
    | exception Littletable.Schema.Invalid _ -> true
  in
  Alcotest.(check bool) "negative schema column count" true
    (ok Protocol.read_request && ok Protocol.read_response)

let suite =
  [
    ("protocol request roundtrips", `Quick, test_protocol_requests);
    ("protocol response roundtrips", `Quick, test_protocol_responses);
    ("protocol rejects garbage", `Quick, test_protocol_rejects_garbage);
    ("trace ctx framing", `Quick, test_ctx_framing);
    ("server end-to-end", `Quick, test_server_end_to_end);
    ("query profile over the wire", `Quick, test_query_profile_over_wire);
    ("trace fetch over the wire", `Quick, test_trace_fetch_over_wire);
    ("sql over the wire", `Quick, test_server_sql_over_wire);
    ("multiple concurrent clients", `Quick, test_multiple_clients);
    ("reconnect after restart", `Quick, test_reconnect_after_server_restart);
    ("mixed-version hello rejected", `Quick, test_mixed_version_hello_rejected);
    ("single-node placement", `Quick, test_single_node_placement);
    ("buffered insert: flush on size", `Quick, test_buffered_insert_flush_on_size);
    ("buffered insert: flush on interval", `Quick, test_buffered_insert_flush_on_interval);
    ("partial insert reports landed rows", `Quick, test_partial_insert_reports_landed);
    ("buffered flush partial failure", `Quick, test_buffered_flush_partial);
    ( "buffered rows survive SIGKILL + reconnect",
      `Quick,
      test_buffered_rows_survive_sigkill_reconnect );
    ("negative decode counts rejected", `Quick, test_negative_count_rejected);
    Support.qcheck prop_decoders_total;
  ]
