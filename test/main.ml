let () =
  Alcotest.run "littletable"
    [
      ("util", Test_util.suite);
      ("lz", Test_lz.suite);
      ("bloom", Test_bloom.suite);
      ("hll", Test_hll.suite);
      ("vfs", Test_vfs.suite);
      ("codec", Test_codec.suite);
      ("avl", Test_avl.suite);
      ("period", Test_period.suite);
      ("merge-policy", Test_merge_policy.suite);
      ("flush-graph", Test_flush_graph.suite);
      ("tablet", Test_tablet.suite);
      ("cursor", Test_cursor.suite);
      ("table", Test_table.suite);
      ("cache", Test_cache.suite);
      ("crash", Test_crash.suite);
      ("torture", Test_torture.suite);
      ("delete", Test_delete.suite);
      ("sync", Test_sync.suite);
      ("db", Test_db.suite);
      ("sql", Test_sql.suite);
      ("net", Test_net.suite);
      ("cluster", Test_cluster.suite);
      ("obs", Test_obs.suite);
      ("apps", Test_apps.suite);
      ("shard", Test_shard.suite);
      ("exec", Test_exec.suite);
      ("columnar", Test_columnar.suite);
      ("model", Test_model.suite);
      ("lint", Test_lint.suite);
    ]
