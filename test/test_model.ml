(* Model-oracle randomized testing: a pure in-memory reference model
   (a key→row map with query-time TTL filtering) is driven through the
   same seeded op sequence as a real [Table], and every query result —
   rows, order, more_available, delete counts, duplicate-key outcomes —
   must match exactly. Each seed runs at query_domains = 0 and 2, so
   the parallel scan path is held to the same oracle as the sequential
   one. Failures print the (seed, domains, op) triple for replay. *)

open Littletable
module X = Lt_util.Xorshift
module Clock = Lt_util.Clock

let server_cap = 48

(* ---- Reference model ------------------------------------------------- *)

(* Encoded key → row. TTL is applied at query time only: physically
   present but expired rows are invisible, exactly like the engine's
   ts_min cutoff, so the model never needs to know when expiry ran. *)
type model = {
  rows : (string, Value.t array) Hashtbl.t;
  schema : Schema.t;
}

let model_create schema = { rows = Hashtbl.create 256; schema }

let model_insert m key row =
  if Hashtbl.mem m.rows key then `Duplicate
  else begin
    Hashtbl.replace m.rows key row;
    `Ok
  end

let model_delete_prefix m prefix_values =
  let p = Key_codec.encode_prefix m.schema prefix_values in
  let plen = String.length p in
  let victims =
    Hashtbl.fold
      (fun k _ acc ->
        if String.length k >= plen && String.sub k 0 plen = p then k :: acc
        else acc)
      m.rows []
  in
  List.iter (Hashtbl.remove m.rows) victims;
  List.length victims

type mq = {
  q_prefix : Value.t list;
  q_ts_min : int64 option;
  q_ts_max : int64 option;
  q_desc : bool;
  q_limit : int option;
}

let to_query mq =
  let q = match mq.q_prefix with [] -> Query.all | p -> Query.prefix p in
  let q = Query.between ?ts_min:mq.q_ts_min ?ts_max:mq.q_ts_max q in
  let q = if mq.q_desc then Query.with_direction Query.Desc q else q in
  match mq.q_limit with None -> q | Some l -> Query.with_limit l q

(* First [n] elements plus whether anything was left over. *)
let rec take n = function
  | [] -> ([], false)
  | _ :: _ when n = 0 -> ([], true)
  | x :: tl ->
      let front, more = take (n - 1) tl in
      (x :: front, more)

let model_query m ~cutoff mq =
  let p = Key_codec.encode_prefix m.schema mq.q_prefix in
  let plen = String.length p in
  let live =
    Hashtbl.fold
      (fun k row acc ->
        if String.length k >= plen && String.sub k 0 plen = p then begin
          let ts = Key_codec.ts_of_key k in
          let ok =
            (match cutoff with None -> true | Some c -> ts >= c)
            && (match mq.q_ts_min with None -> true | Some b -> ts >= b)
            && match mq.q_ts_max with None -> true | Some b -> ts <= b
          in
          if ok then (k, row) :: acc else acc
        end
        else acc)
      m.rows []
  in
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) live
  in
  let sorted = if mq.q_desc then List.rev sorted else sorted in
  let cap =
    match mq.q_limit with None -> server_cap | Some l -> min l server_cap
  in
  let rows, more = take cap sorted in
  let more_available =
    more
    && match mq.q_limit with None -> true | Some l -> l > server_cap
  in
  (List.map snd rows, more_available)

(* ---- Random op sequences --------------------------------------------- *)

let gen_prefix rng ~depth =
  let net = Value.Int64 (Int64.of_int (X.int rng 4)) in
  match depth with
  | 0 -> []
  | 1 -> [ net ]
  | _ -> [ net; Value.Int64 (Int64.of_int (X.int rng 5)) ]

let gen_query rng ~now =
  let q_prefix = gen_prefix rng ~depth:(X.int rng 3) in
  let span = Int64.mul 40L Clock.minute in
  let bound () =
    Int64.add (Int64.sub now span)
      (Int64.of_int (X.int rng (Int64.to_int span * 2)))
  in
  let q_ts_min = if X.int rng 3 = 0 then Some (bound ()) else None in
  let q_ts_max = if X.int rng 3 = 0 then Some (bound ()) else None in
  let q_limit =
    match X.int rng 5 with
    | 0 -> Some 1
    | 1 -> Some 5
    | 2 -> Some (server_cap * 2) (* above the server cap *)
    | _ -> None
  in
  { q_prefix; q_ts_min; q_ts_max; q_desc = X.bool rng; q_limit }

let check_query ~ctx ~clock ~ttl model tbl rng =
  let now = Clock.now clock in
  let cutoff = match ttl with None -> None | Some t -> Some (Int64.sub now t) in
  let mq = gen_query rng ~now in
  let want_rows, want_more = model_query model ~cutoff mq in
  let got = Table.query tbl (to_query mq) in
  Alcotest.(check int)
    (ctx ^ ": row count") (List.length want_rows)
    (List.length got.Table.rows);
  List.iteri
    (fun i (w, g) ->
      if not (w = g) then
        Alcotest.failf "%s: row %d differs (model vs table)" ctx i)
    (List.combine want_rows got.Table.rows);
  Alcotest.(check bool)
    (ctx ^ ": more_available") want_more got.Table.more_available

(* One seeded run: build a table (with the given query_domains), drive
   both it and the model through the same ops, checking queries along
   the way and with a final battery. *)
let run_case ~domains ~with_ttl seed =
  let config =
    Config.make ~query_domains:domains ~server_row_limit:server_cap ()
  in
  let db, clock, _vfs = Support.fresh_db ~config () in
  Fun.protect ~finally:(fun () -> Db.close db) @@ fun () ->
  let ttl = if with_ttl then Some Clock.hour else None in
  let schema = Support.usage_schema () in
  let tbl = Db.create_table db "usage" schema ~ttl in
  let model = model_create schema in
  let rng = X.create (Int64.of_int (0x5eed + (seed * 7919))) in
  let used = Hashtbl.create 256 in
  let n_ops = 140 in
  for op = 1 to n_ops do
    let ctx =
      Printf.sprintf "seed=%d domains=%d ttl=%b op=%d" seed domains with_ttl op
    in
    (match X.int rng 100 with
    | r when r < 45 ->
        (* Insert a batch of fresh rows with ts in [now - 30min, now]. *)
        for _ = 1 to 1 + X.int rng 6 do
          let now = Clock.now clock in
          let ts =
            Int64.sub now
              (Int64.of_int
                 (X.int rng (Int64.to_int (Int64.mul 30L Clock.minute))))
          in
          let row =
            Support.usage_row
              ~network:(Int64.of_int (X.int rng 4))
              ~device:(Int64.of_int (X.int rng 5))
              ~ts
              ~bytes:(Int64.of_int (X.int rng 1_000_000))
              ~rate:(float_of_int (X.int rng 1000) /. 8.)
          in
          let key = Key_codec.encode_key schema row in
          (* stored_size must be exact against the real encoders — the
             block builder trusts it to pre-declare value lengths. *)
          Alcotest.(check int)
            (ctx ^ ": stored_size exact")
            (String.length key
            + String.length (Row_codec.encode_value schema row))
            (Row_codec.stored_size schema row);
          if not (with_ttl && Hashtbl.mem used key) then begin
            Hashtbl.replace used key ();
            let want = model_insert model key row in
            match Table.insert_row tbl row with
            | () ->
                if want <> `Ok then
                  Alcotest.failf "%s: table accepted a duplicate key" ctx
            | exception Table.Duplicate_key _ ->
                if want <> `Duplicate then
                  Alcotest.failf "%s: spurious Duplicate_key" ctx
          end
        done
    | r when r < 55 ->
        (* Re-insert an existing live row: must raise Duplicate_key.
           Skipped under TTL where the row may have expired away. *)
        if not with_ttl then begin
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) model.rows [] in
          match keys with
          | [] -> ()
          | _ ->
              let k = List.nth keys (X.int rng (List.length keys)) in
              let row = Hashtbl.find model.rows k in
              (match Table.insert_row tbl row with
              | () -> Alcotest.failf "%s: duplicate re-insert accepted" ctx
              | exception Table.Duplicate_key _ -> ())
        end
    | r when r < 65 ->
        if not with_ttl then begin
          let prefix = gen_prefix rng ~depth:(1 + X.int rng 2) in
          let want = model_delete_prefix model prefix in
          Alcotest.(check int)
            (ctx ^ ": delete_prefix count") want
            (Table.delete_prefix tbl prefix)
        end
    | r when r < 75 -> Table.flush_all tbl
    | r when r < 82 -> ignore (Table.merge_step tbl)
    | r when r < 88 ->
        Table.maintenance tbl;
        if with_ttl then ignore (Table.expire tbl)
    | _ ->
        Clock.advance clock
          (Int64.of_int
             (1 + X.int rng (Int64.to_int (Int64.mul 10L Clock.minute)))));
    if op mod 7 = 0 then check_query ~ctx ~clock ~ttl model tbl rng
  done;
  Table.flush_all tbl;
  for k = 1 to 25 do
    let ctx =
      Printf.sprintf "seed=%d domains=%d ttl=%b final=%d" seed domains with_ttl
        k
    in
    check_query ~ctx ~clock ~ttl model tbl rng
  done

let oracle_cases ~with_ttl seeds () =
  List.iter
    (fun seed ->
      run_case ~domains:0 ~with_ttl seed;
      run_case ~domains:2 ~with_ttl seed)
    seeds

(* ---- Batched vs row-at-a-time equality -------------------------------- *)

(* Two tables driven through the same seeded stream of insert batches —
   one ingesting each batch atomically-up-to-the-duplicate via
   [insert_report], the other row by row stopping at the first
   duplicate (the same semantics §3.4.4 gives a batch) — must answer
   every query identically. Batches deliberately embed repeats of
   already-used keys, so mid-batch partial commits are exercised on
   every seed. *)
let run_batched_vs_rows ~domains seed =
  let config =
    Config.make ~query_domains:domains ~server_row_limit:server_cap ()
  in
  let db_b, clock_b, _ = Support.fresh_db ~config () in
  let db_r, clock_r, _ = Support.fresh_db ~config () in
  Fun.protect
    ~finally:(fun () ->
      Db.close db_b;
      Db.close db_r)
  @@ fun () ->
  let schema = Support.usage_schema () in
  let batched = Db.create_table db_b "usage" schema ~ttl:None in
  let rowwise = Db.create_table db_r "usage" schema ~ttl:None in
  let rng = X.create (Int64.of_int (0xba7c + (seed * 104729))) in
  let used = ref [] in
  let n_used = ref 0 in
  let gen_row () =
    (* ~1 in 5 rows repeats an already-inserted key: a duplicate that
       cuts the batch short on both sides. *)
    if !n_used > 0 && X.int rng 5 = 0 then
      List.nth !used (X.int rng !n_used)
    else begin
      let now = Clock.now clock_b in
      let row =
        Support.usage_row
          ~network:(Int64.of_int (X.int rng 4))
          ~device:(Int64.of_int (X.int rng 6))
          ~ts:(Int64.sub now (Int64.of_int (X.int rng 10_000)))
          ~bytes:(Int64.of_int (X.int rng 1_000_000))
          ~rate:(float_of_int (X.int rng 1000) /. 8.)
      in
      used := row :: !used;
      incr n_used;
      row
    end
  in
  let check ctx =
    let mq = gen_query rng ~now:(Clock.now clock_b) in
    let got_b = Table.query batched (to_query mq) in
    let got_r = Table.query rowwise (to_query mq) in
    Alcotest.(check int)
      (ctx ^ ": row counts equal")
      (List.length got_r.Table.rows)
      (List.length got_b.Table.rows);
    List.iteri
      (fun i (r, b) ->
        if not (r = b) then
          Alcotest.failf "%s: row %d differs (row-wise vs batched)" ctx i)
      (List.combine got_r.Table.rows got_b.Table.rows);
    Alcotest.(check bool)
      (ctx ^ ": more_available equal")
      got_r.Table.more_available got_b.Table.more_available
  in
  for op = 1 to 80 do
    let ctx = Printf.sprintf "batched-vs-rows seed=%d domains=%d op=%d" seed domains op in
    (match X.int rng 100 with
    | r when r < 60 ->
        let batch = List.init (1 + X.int rng 7) (fun _ -> gen_row ()) in
        (match Table.insert_report batched batch with
        | Ok () | Error _ -> ());
        (try List.iter (Table.insert_row rowwise) batch
         with Table.Duplicate_key _ -> ())
    | r when r < 75 ->
        Table.flush_all batched;
        Table.flush_all rowwise
    | r when r < 85 ->
        ignore (Table.merge_step batched);
        ignore (Table.merge_step rowwise)
    | _ ->
        let d = Int64.of_int (1 + X.int rng (Int64.to_int Clock.minute)) in
        Clock.advance clock_b d;
        Clock.advance clock_r d);
    if op mod 6 = 0 then check ctx
  done;
  Table.flush_all batched;
  Table.flush_all rowwise;
  for k = 1 to 20 do
    check (Printf.sprintf "batched-vs-rows seed=%d domains=%d final=%d" seed domains k)
  done

let batched_cases seeds () =
  List.iter
    (fun seed ->
      run_batched_vs_rows ~domains:0 seed;
      run_batched_vs_rows ~domains:2 seed)
    seeds

(* ---- Cross-layout equality -------------------------------------------- *)

(* Three tables driven through the same seeded op stream, differing only
   in [columnar_age]: 0 (every merge output column-major), max_int
   (columnar disabled, pure row-major — the reference), and 30 minutes
   (mixed: old tablets rewrite columnar, fresh ones stay row-major).
   Every query, aggregate, latest-row lookup, and query-observable stats
   counter must be identical across the three — the layout is a storage
   detail that may never leak into results. *)
let layout_ages =
  [ ("row", Int64.max_int); ("col", 0L); ("mixed", Int64.mul 30L Clock.minute) ]

let run_layout_sweep ~domains seed =
  let mk (_, age) =
    let config =
      Config.make ~query_domains:domains ~server_row_limit:server_cap
        ~columnar_age:age ()
    in
    Support.fresh_db ~config ()
  in
  let dbs = List.map mk layout_ages in
  Fun.protect ~finally:(fun () -> List.iter (fun (db, _, _) -> Db.close db) dbs)
  @@ fun () ->
  let schema = Support.usage_schema () in
  let tbls =
    List.map (fun (db, _, _) -> Db.create_table db "usage" schema ~ttl:None) dbs
  in
  let clocks = List.map (fun (_, clock, _) -> clock) dbs in
  let ref_tbl = List.hd tbls and ref_clock = List.hd clocks in
  let rng = X.create (Int64.of_int (0x1a70 + (seed * 6121))) in
  let each f = List.iter2 f (List.map fst layout_ages) tbls in
  let agg_specs =
    [|
      { Agg.a_fn = Agg.Count; a_col = None };
      { Agg.a_fn = Agg.Sum; a_col = Some 3 };
      { Agg.a_fn = Agg.Min; a_col = Some 3 };
      { Agg.a_fn = Agg.Max; a_col = Some 3 };
      { Agg.a_fn = Agg.Avg; a_col = Some 3 };
      { Agg.a_fn = Agg.Min; a_col = Some 4 };
      { Agg.a_fn = Agg.Max; a_col = Some 2 };
    |]
  in
  let check ctx =
    let now = Clock.now ref_clock in
    let mq = gen_query rng ~now in
    let want = Table.query ref_tbl (to_query mq) in
    each (fun name tbl ->
        if tbl != ref_tbl then begin
          let got = Table.query tbl (to_query mq) in
          Alcotest.(check int)
            (Printf.sprintf "%s: %s row count" ctx name)
            (List.length want.Table.rows)
            (List.length got.Table.rows);
          List.iteri
            (fun i (w, g) ->
              if not (w = g) then
                Alcotest.failf "%s: %s row %d differs from row-major" ctx name i)
            (List.combine want.Table.rows got.Table.rows);
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s more_available" ctx name)
            want.Table.more_available got.Table.more_available
        end);
    (* Whole-query aggregates: the footer-pushdown path must be
       bit-identical to streaming row-major evaluation. *)
    let aq =
      to_query { mq with q_desc = false; q_limit = None }
    in
    let want_aggs = fst (Table.query_agg ref_tbl aq ~specs:agg_specs) in
    each (fun name tbl ->
        if tbl != ref_tbl then
          let got = fst (Table.query_agg tbl aq ~specs:agg_specs) in
          Array.iteri
            (fun i w ->
              if not (w = got.(i)) then
                Alcotest.failf "%s: %s aggregate %d differs from row-major" ctx
                  name i)
            want_aggs);
    (* Latest-row searches walk tablets newest-first — layout-blind. *)
    let prefix = gen_prefix rng ~depth:(X.int rng 3) in
    let want_latest = Table.latest ref_tbl prefix in
    each (fun name tbl ->
        if tbl != ref_tbl then
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s latest row equal" ctx name)
            true
            (want_latest = Table.latest tbl prefix))
  in
  let n_ops = 120 in
  for op = 1 to n_ops do
    let ctx = Printf.sprintf "layout seed=%d domains=%d op=%d" seed domains op in
    (match X.int rng 100 with
    | r when r < 45 ->
        (* Insert identical batches; timestamps reach two hours back so
           the mixed table holds both layouts at once. *)
        for _ = 1 to 1 + X.int rng 6 do
          let now = Clock.now ref_clock in
          let ts =
            Int64.sub now
              (Int64.of_int
                 (X.int rng (Int64.to_int (Int64.mul 2L Clock.hour))))
          in
          let row =
            Support.usage_row
              ~network:(Int64.of_int (X.int rng 4))
              ~device:(Int64.of_int (X.int rng 5))
              ~ts
              ~bytes:(Int64.of_int (X.int rng 1_000_000))
              ~rate:(float_of_int (X.int rng 1000) /. 8.)
          in
          each (fun _ tbl ->
              try Table.insert_row tbl row
              with Table.Duplicate_key _ -> ())
        done
    | r when r < 60 -> each (fun _ tbl -> Table.flush_all tbl)
    | r when r < 75 ->
        (* Merge to fixpoint so stale-layout rewrites actually run on
           the columnar/mixed tables. *)
        each (fun _ tbl ->
            let fuel = ref 32 in
            while Table.merge_step tbl && !fuel > 0 do
              decr fuel
            done)
    | r when r < 82 -> each (fun _ tbl -> Table.maintenance tbl)
    | _ ->
        let d =
          Int64.of_int (1 + X.int rng (Int64.to_int (Int64.mul 20L Clock.minute)))
        in
        List.iter (fun clock -> Clock.advance clock d) clocks);
    if op mod 6 = 0 then check ctx
  done;
  each (fun _ tbl -> Table.flush_all tbl);
  for k = 1 to 20 do
    check (Printf.sprintf "layout seed=%d domains=%d final=%d" seed domains k)
  done;
  (* The mixed/columnar tables must have produced columnar tablets, or
     this sweep proved nothing. *)
  let columnar_count tbl =
    List.length
      (List.filter
         (fun (m : Descriptor.tablet_meta) -> m.Descriptor.columnar)
         (Table.tablets tbl))
  in
  each (fun name tbl ->
      if name <> "row" then
        Alcotest.(check bool)
          (Printf.sprintf "seed=%d domains=%d: %s table went columnar" seed
             domains name)
          true
          (columnar_count tbl > 0)
      else
        Alcotest.(check int)
          (Printf.sprintf "seed=%d domains=%d: row table stayed row-major" seed
             domains)
          0 (columnar_count tbl));
  (* Query-observable stats agree; layout-dependent counters (bytes,
     merges, pushdown) are exempt by design. *)
  let ref_stats = Table.stats ref_tbl in
  each (fun name tbl ->
      if tbl != ref_tbl then begin
        let s = Table.stats tbl in
        let eq what a b =
          Alcotest.(check int)
            (Printf.sprintf "seed=%d domains=%d: %s stats.%s" seed domains name
               what)
            a b
        in
        eq "rows_inserted" ref_stats.Stats.rows_inserted s.Stats.rows_inserted;
        eq "insert_batches" ref_stats.Stats.insert_batches
          s.Stats.insert_batches;
        eq "queries" ref_stats.Stats.queries s.Stats.queries;
        eq "rows_returned" ref_stats.Stats.rows_returned s.Stats.rows_returned
      end)

let layout_cases seeds () =
  List.iter
    (fun seed ->
      run_layout_sweep ~domains:0 seed;
      run_layout_sweep ~domains:2 seed)
    seeds

let suite =
  [
    Alcotest.test_case "oracle: ops + duplicates + delete_prefix" `Quick
      (oracle_cases ~with_ttl:false [ 1; 2; 3; 4; 5; 6 ]);
    Alcotest.test_case "oracle: TTL expiry" `Quick
      (oracle_cases ~with_ttl:true [ 7; 8; 9; 10 ]);
    Alcotest.test_case "oracle: batched = row-at-a-time" `Quick
      (batched_cases [ 11; 12; 13; 14 ]);
    Alcotest.test_case "cross-layout equality: row = columnar = mixed" `Quick
      (layout_cases [ 21; 22; 23 ]);
  ]
