(* Property tests for the columnar block format and footer pushdown.

   The footer contract under test: for any block, aggregates answered
   from the per-column min/max/sum footer stats are bit-identical to the
   values obtained by decoding every row and feeding it through the same
   accumulator. Generators deliberately cover all-default columns (the
   presence bitmap is all-clear and the section is empty), values whose
   int64 sum wraps, and TTL-expired rows that the query cutoff hides. *)

open Littletable
module Clock = Lt_util.Clock

let schema = Support.usage_schema ()

(* Every aggregate spec expressible over the usage schema. *)
let all_specs =
  { Agg.a_fn = Agg.Count; a_col = None }
  :: List.concat_map
       (fun fn ->
         List.init
           (Array.length (Schema.columns schema))
           (fun c -> { Agg.a_fn = fn; a_col = Some c }))
       [ Agg.Count; Agg.Sum; Agg.Min; Agg.Max; Agg.Avg ]

let feed_rows spec rows =
  let acc = Agg.fresh_acc () in
  List.iter
    (fun row ->
      Agg.feed acc
        (match spec.Agg.a_col with None -> None | Some c -> Some row.(c)))
    rows;
  Agg.result spec.Agg.a_fn acc

(* ---- Generators ------------------------------------------------------- *)

(* Three row populations: [`Dense] everyday values, [`All_default] rows
   whose non-key cells all equal the schema default (bitmap all-clear),
   [`Extreme] byte counts near the int64 limits so sums wrap. *)
let gen_rows =
  let open QCheck.Gen in
  oneofl [ `Dense; `All_default; `Extreme ] >>= fun mode ->
  let bytes_gen =
    match mode with
    | `All_default -> return 0L
    | `Extreme ->
        oneofl
          [
            Int64.max_int;
            Int64.min_int;
            Int64.sub Int64.max_int 5L;
            4_611_686_018_427_387_904L;
            0L;
          ]
    | `Dense -> map Int64.of_int (int_bound 1_000_000)
  in
  let rate_gen =
    match mode with
    | `All_default -> return 0.0
    | _ -> map (fun i -> float_of_int i /. 8.) (int_bound 10_000)
  in
  int_range 1 60 >>= fun n ->
  list_repeat n (pair (pair (int_bound 3) (int_bound 4)) (pair bytes_gen rate_gen))
  >|= fun cells ->
  List.mapi
    (fun i ((net, dev), (bytes, rate)) ->
      (* Strictly in the past, so [columnar_age = 0] ages every row. *)
      Support.usage_row ~network:(Int64.of_int net) ~device:(Int64.of_int dev)
        ~ts:(Int64.add (Int64.sub Support.ts0 1000L) (Int64.of_int i))
        ~bytes ~rate)
    cells

let print_rows rows =
  String.concat "\n"
    (List.map
       (fun row ->
         String.concat ", "
           (Array.to_list (Array.map Value.to_string row)))
       rows)

let arb_rows = QCheck.make ~print:print_rows gen_rows

(* Key-sort (and key-dedup) a generated population so it is a legal
   block: [col_add] requires strictly ascending keys. *)
let keyed rows =
  List.sort_uniq
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun r -> (Key_codec.encode_key schema r, r)) rows)

(* ---- Block-level property --------------------------------------------- *)

(* One property, three claims about any columnar block: decoding returns
   the rows that went in; the footer stats written by [col_finish] equal
   [Agg.stats_of_rows] over those rows; and every footer-answerable spec
   absorbed via [absorb_block] equals the row-fed reference. *)
let prop_block_roundtrip_and_footer =
  QCheck.Test.make ~name:"columnar block: roundtrip + footer = rows" ~count:300
    arb_rows (fun rows ->
      let kr = keyed rows in
      let b = Block.col_builder schema in
      List.iter (fun (k, r) -> Block.col_add b ~key:k r) kr;
      let bytes, stats = Block.col_finish b in
      let blk = Block.decode_columnar schema bytes in
      let decoded, _ = Block.columnar_rows blk schema () in
      let want = Array.of_list (List.map snd kr) in
      let stats_of c = if c < Array.length stats then Some stats.(c) else None in
      let ctype_of c = Some (Schema.columns schema).(c).Schema.ctype in
      decoded = want
      && stats = Agg.stats_of_rows schema want ~count:(Array.length want)
      && List.for_all
           (fun spec ->
             let specs = [| spec |] in
             if Agg.block_answerable ~specs ~stats_of ~ctype_of then begin
               let accs = [| Agg.fresh_acc () |] in
               Agg.absorb_block ~accs ~specs ~rows:(Array.length want)
                 ~stats_of;
               Agg.result spec.Agg.a_fn accs.(0)
               = feed_rows spec (Array.to_list want)
             end
             else true)
           all_specs)

(* Footer answerability is not vacuous: count/sum/min/max/avg over the
   integer [bytes] column must all be absorbable from stats alone. *)
let test_int_specs_answerable () =
  let rows =
    Array.init 8 (fun i ->
        Support.usage_row ~network:1L ~device:1L
          ~ts:(Int64.add Support.ts0 (Int64.of_int i))
          ~bytes:(Int64.of_int (i * 17)) ~rate:1.0)
  in
  let stats = Agg.stats_of_rows schema rows ~count:8 in
  let stats_of c = if c < Array.length stats then Some stats.(c) else None in
  let ctype_of c = Some (Schema.columns schema).(c).Schema.ctype in
  List.iter
    (fun fn ->
      Alcotest.(check bool)
        "int column answerable" true
        (Agg.block_answerable
           ~specs:[| { Agg.a_fn = fn; a_col = Some 3 } |]
           ~stats_of ~ctype_of))
    [ Agg.Count; Agg.Sum; Agg.Min; Agg.Max; Agg.Avg ];
  (* Float sums are never footer-answered: the footer only stores the
     associative wrapping integer sum. *)
  Alcotest.(check bool)
    "double sum not answerable" false
    (Agg.block_answerable
       ~specs:[| { Agg.a_fn = Agg.Sum; a_col = Some 4 } |]
       ~stats_of ~ctype_of)

(* ---- Table-level property --------------------------------------------- *)

let big_cap = 100_000

let agg_config =
  Config.make ~columnar_age:0L ~server_row_limit:big_cap ~flush_size:2048
    ~merge_delay:0L ~rollover_spread:0.0 ~enforce_unique:false ()

let merge_fixpoint tbl =
  let fuel = ref 64 in
  while Table.merge_step tbl && !fuel > 0 do
    decr fuel
  done

(* Reference: whatever the (layout-blind, already model-checked) scan
   path returns, aggregated row by row. *)
let check_agg_matches ~ctx tbl q =
  let rows = (Table.query tbl q).Table.rows in
  let specs = Array.of_list all_specs in
  let got = fst (Table.query_agg tbl q ~specs) in
  Array.iteri
    (fun i spec ->
      let want = feed_rows spec rows in
      if not (want = got.(i)) then
        Alcotest.failf "%s: spec %d: pushdown %s <> reference %s" ctx i
          (Value.to_string got.(i))
          (Value.to_string want))
    specs

(* Mixed residency on purpose: part of the data merged columnar, part
   still row-major or in the memtable, random key/ts bounds over it. *)
let prop_query_agg_matches_rows =
  QCheck.Test.make ~name:"query_agg = row-fed reference over mixed layouts"
    ~count:60
    QCheck.(pair arb_rows (pair (option (int_bound 3)) (int_bound 70)))
    (fun (rows, (net_filter, ts_off)) ->
      let db, _clock, _ = Support.fresh_db ~config:agg_config () in
      Fun.protect ~finally:(fun () -> Db.close db) @@ fun () ->
      let tbl = Db.create_table db "usage" schema ~ttl:None in
      let n = List.length rows in
      List.iteri
        (fun i row ->
          (try Table.insert_row tbl row with Table.Duplicate_key _ -> ());
          if i = n / 2 then begin
            Table.flush_all tbl;
            merge_fixpoint tbl
          end)
        rows;
      let q =
        match net_filter with
        | None -> Query.all
        | Some net -> Query.prefix [ Value.Int64 (Int64.of_int net) ]
      in
      let q =
        Query.between
          ~ts_min:(Int64.add Support.ts0 (Int64.of_int ts_off))
          q
      in
      check_agg_matches ~ctx:"mixed" tbl q;
      (* And again fully merged, where the whole table is columnar. *)
      Table.flush_all tbl;
      merge_fixpoint tbl;
      check_agg_matches ~ctx:"merged" tbl q;
      true)

(* ---- TTL-expired rows ------------------------------------------------- *)

(* Expired rows are invisible to the scan path via the ts cutoff; the
   footer pushdown must apply the same cutoff (expired-straddling blocks
   cannot be footer-answered, they must decode and filter). *)
let test_ttl_expired () =
  let db, clock, _ = Support.fresh_db ~config:agg_config () in
  Fun.protect ~finally:(fun () -> Db.close db) @@ fun () ->
  let tbl = Db.create_table db "usage" schema ~ttl:(Some Clock.hour) in
  let now = Clock.now clock in
  for i = 0 to 49 do
    (* Alternate between 30 minutes back (live under the 1 h TTL) and
       two hours back (expired); everything is past, so it all ages
       into the columnar layout. *)
    let back =
      if i mod 2 = 0 then Int64.mul 30L Clock.minute
      else Int64.mul 2L Clock.hour
    in
    Table.insert_row tbl
      (Support.usage_row ~network:1L ~device:(Int64.of_int i)
         ~ts:(Int64.add (Int64.sub now back) (Int64.of_int i))
         ~bytes:(Int64.of_int (i * 1000))
         ~rate:(float_of_int i))
  done;
  Table.flush_all tbl;
  merge_fixpoint tbl;
  check_agg_matches ~ctx:"half expired" tbl Query.all;
  (* Age everything out: the pushdown must agree that nothing is left. *)
  Clock.advance clock (Int64.mul 4L Clock.hour);
  check_agg_matches ~ctx:"all expired" tbl Query.all;
  let count =
    (fst
       (Table.query_agg tbl Query.all
          ~specs:[| { Agg.a_fn = Agg.Count; a_col = None } |])).(0)
  in
  Alcotest.(check bool) "all rows expired" true (count = Value.Int64 0L)

(* ---- Wrapping sums ---------------------------------------------------- *)

let test_overflow_sum_wraps () =
  let db, _clock, _ = Support.fresh_db ~config:agg_config () in
  Fun.protect ~finally:(fun () -> Db.close db) @@ fun () ->
  let tbl = Db.create_table db "usage" schema ~ttl:None in
  let near_max = Int64.sub Int64.max_int 3L in
  for i = 0 to 19 do
    Table.insert_row tbl
      (Support.usage_row ~network:1L ~device:1L
         ~ts:(Int64.add (Int64.sub Support.ts0 1000L) (Int64.of_int i))
         ~bytes:near_max ~rate:0.0)
  done;
  Table.flush_all tbl;
  merge_fixpoint tbl;
  let specs = [| { Agg.a_fn = Agg.Sum; a_col = Some 3 } |] in
  let got = (fst (Table.query_agg tbl Query.all ~specs)).(0) in
  let want = feed_rows specs.(0) (Table.query tbl Query.all).Table.rows in
  Alcotest.(check bool) "wrapped sums identical" true (got = want);
  (* 20 * near_max overflows int64 several times over; the footer sum
     wraps exactly like the row-fed modular sum. *)
  let expect =
    let s = ref 0L in
    for _ = 1 to 20 do
      s := Int64.add !s near_max
    done;
    Value.Int64 !s
  in
  Alcotest.(check bool) "matches modular arithmetic" true (got = expect)

(* ---- Footer answering reads nothing ----------------------------------- *)

let test_footer_answering_decodes_nothing () =
  let db, _clock, _ = Support.fresh_db ~config:agg_config () in
  Fun.protect ~finally:(fun () -> Db.close db) @@ fun () ->
  let tbl = Db.create_table db "usage" schema ~ttl:None in
  for i = 0 to 199 do
    Table.insert_row tbl
      (Support.usage_row ~network:1L ~device:1L
         ~ts:(Int64.add (Int64.sub Support.ts0 1000L) (Int64.of_int i))
         ~bytes:(Int64.of_int i) ~rate:0.0)
  done;
  Table.flush_all tbl;
  merge_fixpoint tbl;
  Alcotest.(check bool)
    "table is columnar" true
    (List.for_all
       (fun (m : Descriptor.tablet_meta) -> m.Descriptor.columnar)
       (Table.tablets tbl));
  let specs =
    [|
      { Agg.a_fn = Agg.Count; a_col = None };
      { Agg.a_fn = Agg.Sum; a_col = Some 3 };
      { Agg.a_fn = Agg.Min; a_col = Some 3 };
      { Agg.a_fn = Agg.Max; a_col = Some 3 };
      { Agg.a_fn = Agg.Avg; a_col = Some 3 };
    |]
  in
  let results, prof = Table.query_agg ~profile:true tbl Query.all ~specs in
  Alcotest.(check bool) "count" true (results.(0) = Value.Int64 200L);
  Alcotest.(check bool)
    "sum" true
    (results.(1) = Value.Int64 (Int64.of_int (199 * 200 / 2)));
  let p = Option.get prof in
  Alcotest.(check bool)
    "blocks answered from the footer" true
    (p.Lt_obs.Profile.p_blocks_footer_answered > 0);
  Alcotest.(check int) "zero column sections decoded" 0
    p.Lt_obs.Profile.p_columns_decoded;
  (* A projection-bearing row scan decodes only the referenced column:
     of the two non-key sections per block (bytes, rate), projecting
     [bytes] must decode exactly half of what a full scan decodes. *)
  let st0 = Table.stats tbl in
  let rows =
    (Table.query tbl (Query.with_projection [ 3 ] Query.all)).Table.rows
  in
  Alcotest.(check int) "projected scan row count" 200 (List.length rows);
  let st1 = Table.stats tbl in
  ignore (Table.query tbl Query.all);
  let st2 = Table.stats tbl in
  let proj_delta = st1.Stats.columns_decoded - st0.Stats.columns_decoded in
  let full_delta = st2.Stats.columns_decoded - st1.Stats.columns_decoded in
  Alcotest.(check bool) "projection decoded something" true (proj_delta > 0);
  Alcotest.(check int) "projection decoded half the sections" full_delta
    (2 * proj_delta)

let suite =
  [
    Support.qcheck prop_block_roundtrip_and_footer;
    ("integer specs are footer-answerable", `Quick, test_int_specs_answerable);
    Support.qcheck prop_query_agg_matches_rows;
    ("TTL-expired rows excluded from pushdown", `Quick, test_ttl_expired);
    ("overflowing int64 sums wrap identically", `Quick, test_overflow_sum_wraps);
    ("footer-answered aggregates decode nothing", `Quick,
     test_footer_answering_decodes_nothing);
  ]
