(* The observability layer (lib/obs): histogram bucketing and
   percentiles, label identity, the slow-op trace ring, Prometheus
   exposition (golden render), the Stats ratio fixes, and the layer
   end to end — a deterministic-clock slow query landing in [.slow]
   and the /metrics HTTP endpoint. *)

open Littletable
module Clock = Lt_util.Clock
module Metrics = Lt_obs.Metrics
module Trace = Lt_obs.Trace
module Obs = Lt_obs.Obs

let check_int = Support.check_int

let check_bool = Support.check_bool

let check_float msg a b =
  Alcotest.(check (float 1e-9)) msg a b

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- Histogram bucketing ---------------------------------------------- *)

let test_bucket_boundaries () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram r ~buckets:[| 0.1; 1.0 |] "h" in
  (* A value exactly on a bound lands in that bucket (le is inclusive). *)
  Metrics.Histogram.observe h 0.1;
  Metrics.Histogram.observe h 0.05;
  Metrics.Histogram.observe h 1.0;
  Metrics.Histogram.observe h 1.0000001;
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 1 |]
    (Metrics.Histogram.bucket_counts h);
  check_int "count" 4 (Metrics.Histogram.count h);
  check_float "max" 1.0000001 (Metrics.Histogram.max_value h);
  (* Default bounds: first and last bucket edges. *)
  let d = Metrics.histogram r "d" in
  Metrics.Histogram.observe_us d 1L;
  Metrics.Histogram.observe d 60.0;
  Metrics.Histogram.observe d 61.0;
  let counts = Metrics.Histogram.bucket_counts d in
  check_int "1us in first bucket" 1 counts.(0);
  check_int "60s in last finite bucket" 1
    counts.(Array.length counts - 2);
  check_int "61s in +Inf" 1 counts.(Array.length counts - 1)

let test_percentiles () =
  let r = Metrics.create_registry () in
  let empty = Metrics.histogram r "empty" in
  check_float "empty p50" 0.0 (Metrics.Histogram.p50 empty);
  check_float "empty p99" 0.0 (Metrics.Histogram.p99 empty);
  (* A single observation reports itself at every quantile (the
     interpolated mid-bucket value is clamped to the observed max). *)
  let one = Metrics.histogram r ~buckets:[| 0.1; 1.0 |] "one" in
  Metrics.Histogram.observe one 0.3;
  check_float "single p50" 0.3 (Metrics.Histogram.p50 one);
  check_float "single p99" 0.3 (Metrics.Histogram.p99 one);
  (* Two-mode distribution on the default bounds: 50 fast, 50 slow. *)
  let h = Metrics.histogram r "h" in
  for _ = 1 to 50 do Metrics.Histogram.observe h 0.001 done;
  for _ = 1 to 50 do Metrics.Histogram.observe h 0.1 done;
  check_float "p50 at the fast mode's bound" 0.001 (Metrics.Histogram.p50 h);
  check_float "p99 interpolates the slow bucket" 0.099
    (Metrics.Histogram.percentile h 0.99);
  check_float "sum" (50.0 *. 0.001 +. 50.0 *. 0.1) (Metrics.Histogram.sum h);
  (* Values beyond the last bound report max_value. *)
  let inf = Metrics.histogram r ~buckets:[| 0.1 |] "inf" in
  Metrics.Histogram.observe inf 7.5;
  check_float "+Inf bucket reports max" 7.5 (Metrics.Histogram.p50 inf)

let test_merge_into () =
  let r = Metrics.create_registry () in
  let a = Metrics.histogram r ~buckets:[| 0.1; 1.0 |] ~labels:[ ("i", "a") ] "m" in
  let b = Metrics.histogram r ~buckets:[| 0.1; 1.0 |] ~labels:[ ("i", "b") ] "m" in
  Metrics.Histogram.observe a 0.05;
  Metrics.Histogram.observe b 0.5;
  Metrics.Histogram.observe b 2.0;
  Metrics.Histogram.merge_into ~into:a b;
  check_int "merged count" 3 (Metrics.Histogram.count a);
  check_float "merged max" 2.0 (Metrics.Histogram.max_value a);
  Alcotest.(check (array int)) "merged buckets" [| 1; 1; 1 |]
    (Metrics.Histogram.bucket_counts a)

(* ---- Families, labels, identity --------------------------------------- *)

let test_label_identity () =
  let r = Metrics.create_registry () in
  (* Label order does not matter: both handles are the same series. *)
  let c1 = Metrics.counter r ~labels:[ ("a", "1"); ("b", "2") ] "c" in
  let c2 = Metrics.counter r ~labels:[ ("b", "2"); ("a", "1") ] "c" in
  Metrics.Counter.inc c1 2;
  Metrics.Counter.inc c2 3;
  check_int "shared series" 5 (Metrics.Counter.value c1);
  (* Distinct label values are distinct series. *)
  let c3 = Metrics.counter r ~labels:[ ("a", "1"); ("b", "9") ] "c" in
  check_int "distinct series" 0 (Metrics.Counter.value c3);
  (* Same name, different kind or buckets: rejected. *)
  (match Metrics.gauge r "c" with
  | (_ : Metrics.Gauge.t) -> Alcotest.fail "kind clash accepted"
  | exception Invalid_argument _ -> ());
  let _h = Metrics.histogram r ~buckets:[| 1.0 |] "h" in
  match Metrics.histogram r ~buckets:[| 2.0 |] "h" with
  | (_ : Metrics.Histogram.t) -> Alcotest.fail "bucket clash accepted"
  | exception Invalid_argument _ -> ()

let test_disabled_registry () =
  let r = Metrics.create_registry ~enabled:false () in
  let c = Metrics.counter r "c" in
  let h = Metrics.histogram r "h" in
  Metrics.Counter.inc c 5;
  Metrics.Histogram.observe h 1.0;
  check_int "disabled counter" 0 (Metrics.Counter.value c);
  check_int "disabled histogram" 0 (Metrics.Histogram.count h);
  Metrics.set_enabled r true;
  Metrics.Counter.inc c 5;
  check_int "re-enabled counter" 5 (Metrics.Counter.value c);
  check_bool "noop obs reads no clock" true (Obs.now_us Obs.noop = 0L)

(* ---- Prometheus exposition -------------------------------------------- *)

let test_golden_render () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter r ~help:"Total things." ~labels:[ ("table", "usage") ] "lt_test_total" in
  Metrics.Counter.inc c 3;
  let g = Metrics.gauge r ~help:"A gauge." "lt_test_gauge" in
  Metrics.Gauge.set g 2.5;
  let h = Metrics.histogram r ~help:"Latencies." ~buckets:[| 0.1; 1.0 |] "lt_test_seconds" in
  Metrics.Histogram.observe h 0.05;
  Metrics.Histogram.observe h 0.5;
  Metrics.Histogram.observe h 5.0;
  Metrics.register_collector r (fun () ->
      [ { Metrics.s_name = "lt_coll_total"; s_help = "From a collector.";
          s_kind = `Counter; s_labels = [ ("q", "a\"b\\c\nd") ]; s_value = 7.0 } ]);
  let expected =
    "# HELP lt_test_gauge A gauge.\n\
     # TYPE lt_test_gauge gauge\n\
     lt_test_gauge 2.5\n\
     # HELP lt_test_seconds Latencies.\n\
     # TYPE lt_test_seconds histogram\n\
     lt_test_seconds_bucket{le=\"0.1\"} 1\n\
     lt_test_seconds_bucket{le=\"1\"} 2\n\
     lt_test_seconds_bucket{le=\"+Inf\"} 3\n\
     lt_test_seconds_sum 5.55\n\
     lt_test_seconds_count 3\n\
     # HELP lt_test_total Total things.\n\
     # TYPE lt_test_total counter\n\
     lt_test_total{table=\"usage\"} 3\n\
     # HELP lt_coll_total From a collector.\n\
     # TYPE lt_coll_total counter\n\
     lt_coll_total{q=\"a\\\"b\\\\c\\nd\"} 7\n"
  in
  Support.check_string "golden exposition" expected (Metrics.render r)

(* ---- Trace ring -------------------------------------------------------- *)

let span ~op ~dur_us i =
  {
    Trace.sp_op = op;
    sp_table = "t";
    sp_start_us = Int64.of_int i;
    sp_duration_us = dur_us;
    sp_scanned = i;
    sp_returned = 0;
    sp_tablets = 1;
    sp_cache_hits = 0;
    sp_cache_misses = 0;
    sp_ctx = None;
  }

let test_ring_wraparound () =
  let t = Trace.create ~capacity:4 ~slow_us:700L () in
  for i = 0 to 9 do
    Trace.record t (span ~op:Trace.Query ~dur_us:(Int64.of_int (i * 100)) i)
  done;
  check_int "total recorded" 10 (Trace.recorded t);
  let recent = Trace.recent t in
  check_int "capacity bounds retention" 4 (List.length recent);
  Alcotest.(check (list int)) "newest first" [ 9; 8; 7; 6 ]
    (List.map (fun sp -> sp.Trace.sp_scanned) recent);
  Alcotest.(check (list int)) "slow filters by threshold" [ 9; 8; 7 ]
    (List.map (fun sp -> sp.Trace.sp_scanned) (Trace.slow t));
  check_int "slow respects n" 1 (List.length (Trace.slow ~n:1 t))

(* ---- Trace contexts ---------------------------------------------------- *)

let test_trace_ctx_ids () =
  (* Seeded ids are deterministic (replay) and never zero. *)
  Trace.seed_ids 42L;
  let a = Trace.new_root ~clock:Clock.system in
  Trace.seed_ids 42L;
  let b = Trace.new_root ~clock:Clock.system in
  check_bool "seeded roots repeat" true (a = b);
  check_bool "trace hi nonzero" true (a.Trace.cx_trace_hi <> 0L);
  check_bool "span nonzero" true (a.Trace.cx_span <> 0L);
  check_int "root has no parent" 0 (Int64.to_int a.Trace.cx_parent);
  let c = Trace.child_of a in
  check_bool "child keeps trace id" true
    (Trace.same_trace ~hi:a.Trace.cx_trace_hi ~lo:a.Trace.cx_trace_lo c);
  check_bool "child parented on span" true
    (c.Trace.cx_parent = a.Trace.cx_span);
  check_bool "child gets fresh span" true (c.Trace.cx_span <> a.Trace.cx_span);
  (* Hex id roundtrip, both full and short forms. *)
  let hex = Trace.trace_id_hex a in
  check_int "hex width" 32 (String.length hex);
  (match Trace.parse_trace_id hex with
  | Some (hi, lo) ->
      check_bool "parse roundtrip" true
        (hi = a.Trace.cx_trace_hi && lo = a.Trace.cx_trace_lo)
  | None -> Alcotest.fail "full hex id must parse");
  (match Trace.parse_trace_id "deadbeef" with
  | Some (hi, lo) ->
      check_bool "short id fills low word" true (hi = 0L && lo = 0xdeadbeefL)
  | None -> Alcotest.fail "short hex id must parse");
  check_bool "malformed id rejected" true (Trace.parse_trace_id "xyz" = None);
  check_bool "empty id rejected" true (Trace.parse_trace_id "" = None)

let test_ambient_ctx () =
  Trace.seed_ids 7L;
  check_bool "no ambient by default" true (Trace.current () = None);
  let root = Trace.new_root ~clock:Clock.system in
  let seen =
    Trace.with_ctx (Some root) (fun () ->
        let inner = Trace.current () in
        (* Nested scopes replace and restore. *)
        let child = Trace.child_of root in
        Trace.with_ctx (Some child) (fun () ->
            check_bool "nested scope wins" true (Trace.current () = Some child));
        check_bool "outer scope restored" true (Trace.current () = Some root);
        inner)
  in
  check_bool "ambient visible in scope" true (seen = Some root);
  check_bool "ambient cleared after scope" true (Trace.current () = None);
  (* [with_ctx None] is transparent. *)
  Trace.with_ctx None (fun () ->
      check_bool "none installs nothing" true (Trace.current () = None))

let test_trace_filters () =
  Trace.seed_ids 9L;
  let t = Trace.create ~capacity:16 ~slow_us:0L () in
  let ra = Trace.new_root ~clock:Clock.system in
  let rb = Trace.new_root ~clock:Clock.system in
  let mk ~tbl ~ctx i =
    { (span ~op:Trace.Query ~dur_us:10L i) with
      Trace.sp_table = tbl;
      sp_ctx = ctx }
  in
  Trace.record t (mk ~tbl:"usage" ~ctx:(Some ra) 0);
  Trace.record t (mk ~tbl:"events" ~ctx:(Some (Trace.child_of ra)) 1);
  Trace.record t (mk ~tbl:"usage" ~ctx:(Some rb) 2);
  Trace.record t (mk ~tbl:"usage" ~ctx:None 3);
  check_int "table filter (recent)" 3
    (List.length (Trace.recent ~table:"usage" t));
  check_int "table filter (slow)" 1
    (List.length (Trace.slow ~table:"events" t));
  let found =
    Trace.find_trace t ~hi:ra.Trace.cx_trace_hi ~lo:ra.Trace.cx_trace_lo
  in
  check_int "find_trace matches both spans" 2 (List.length found);
  Alcotest.(check (list int)) "find_trace is oldest first" [ 0; 1 ]
    (List.map (fun sp -> sp.Trace.sp_scanned) found);
  check_int "other trace isolated" 1
    (List.length
       (Trace.find_trace t ~hi:rb.Trace.cx_trace_hi ~lo:rb.Trace.cx_trace_lo))

(* record_op with no explicit ctx attaches a child of the ambient one. *)
let test_record_op_ambient () =
  Trace.seed_ids 11L;
  let clock = Clock.manual ~start:0L () in
  let obs = Obs.create ~clock () in
  let root = Trace.new_root ~clock in
  let h = Metrics.histogram (Obs.registry obs) "lt_test_seconds" in
  Trace.with_ctx (Some root) (fun () ->
      Obs.record_op obs ~hist:h ~op:Trace.Query ~table:"t" ~t0:0L ());
  (match Trace.recent (Obs.trace obs) with
  | [ sp ] -> (
      match sp.Trace.sp_ctx with
      | Some c ->
          check_bool "span joins ambient trace" true
            (Trace.same_trace ~hi:root.Trace.cx_trace_hi
               ~lo:root.Trace.cx_trace_lo c);
          check_bool "span is a child of ambient" true
            (c.Trace.cx_parent = root.Trace.cx_span)
      | None -> Alcotest.fail "span must carry a ctx")
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans));
  check_bool "trace_capacity knob is wired" true
    (Trace.capacity
       (Obs.trace
          (Obs.create ~trace_capacity:Config.default.Config.trace_capacity
             ~clock ()))
    = Config.default.Config.trace_capacity)

(* ---- Profiles ---------------------------------------------------------- *)

let test_profile_aggregate () =
  let module Profile = Lt_obs.Profile in
  let p1 =
    { Profile.empty with
      Profile.p_plan_us = 10L;
      p_scan_us = 100L;
      p_total_us = 120L;
      p_rows_scanned = 5;
      p_rows_returned = 2;
      p_cache_hits = 3;
      p_shards = [ ("shard0", { Profile.empty with Profile.p_scan_us = 100L }) ]
    }
  in
  let p2 =
    { Profile.empty with
      Profile.p_plan_us = 5L;
      p_scan_us = 50L;
      p_total_us = 60L;
      p_rows_scanned = 7;
      p_rows_returned = 1;
      p_cache_misses = 4;
      p_shards =
        [ ("shard0", { Profile.empty with Profile.p_scan_us = 50L });
          ("shard1", { Profile.empty with Profile.p_rows_scanned = 7 }) ]
    }
  in
  let a = Profile.aggregate [ p1; p2 ] in
  check_bool "plan sums" true (a.Profile.p_plan_us = 15L);
  check_bool "scan sums" true (a.Profile.p_scan_us = 150L);
  check_int "rows scanned sums" 12 a.Profile.p_rows_scanned;
  check_int "rows returned sums" 3 a.Profile.p_rows_returned;
  check_int "cache hits sum" 3 a.Profile.p_cache_hits;
  check_int "cache misses sum" 4 a.Profile.p_cache_misses;
  check_int "shards merged by label" 2 (List.length a.Profile.p_shards);
  (match List.assoc_opt "shard0" a.Profile.p_shards with
  | Some s -> check_bool "shard sub-profiles sum" true (s.Profile.p_scan_us = 150L)
  | None -> Alcotest.fail "shard0 must survive the merge");
  check_bool "aggregate of nothing is empty" true
    (Profile.aggregate [] = Profile.empty);
  (* The renderer mentions the shard breakdown. *)
  check_bool "pp shows shards" true
    (contains (Profile.to_string a) "shard1")

(* ---- Snapshots and federation ------------------------------------------ *)

let test_snapshot_federation () =
  let mk_source label n =
    let r = Metrics.create_registry () in
    let c = Metrics.counter r ~labels:[ ("table", "usage") ] "lt_rows_total" in
    Metrics.Counter.inc c n;
    let h = Metrics.histogram r ~buckets:[| 0.1; 1.0 |] "lt_q_seconds" in
    Metrics.Histogram.observe h 0.05;
    Metrics.Histogram.observe h (0.2 *. float_of_int n);
    (label, Metrics.snapshot r)
  in
  let sources = [ mk_source "0" 10; mk_source "1" 20 ] in
  let text = Metrics.render_federated sources in
  (* Aggregate first: counters sum across sources... *)
  check_bool "counter aggregate" true
    (contains text "lt_rows_total{table=\"usage\"} 30");
  (* ...then the per-shard breakdown, labeled. *)
  check_bool "shard 0 breakdown" true
    (contains text "lt_rows_total{table=\"usage\",shard=\"0\"} 10");
  check_bool "shard 1 breakdown" true
    (contains text "lt_rows_total{table=\"usage\",shard=\"1\"} 20");
  (* Histogram merge: the aggregate _count equals the sum of the
     per-shard _counts, bucket by bucket. *)
  check_bool "histogram aggregate count" true
    (contains text "lt_q_seconds_count 4");
  check_bool "histogram aggregate buckets" true
    (contains text "lt_q_seconds_bucket{le=\"0.1\"} 2");
  check_bool "histogram shard count" true
    (contains text "lt_q_seconds_count{shard=\"1\"} 2")

(* ---- Stats ratios ------------------------------------------------------ *)

let test_stats_ratios () =
  let s = Stats.create () in
  check_float "no queries" 0.0 (Stats.scan_ratio (Stats.read s));
  (* A pure-waste scan must not hide behind returned=0. *)
  Stats.note_query s ~scanned:40 ~returned:0;
  check_float "pure waste" 40.0 (Stats.scan_ratio (Stats.read s));
  Stats.note_query s ~scanned:60 ~returned:50;
  check_float "mixed" 2.0 (Stats.scan_ratio (Stats.read s));
  check_float "cold cache" 0.0 (Stats.cache_hit_ratio (Stats.read s));
  let cache =
    { Stats.no_cache with Stats.cache_hits = 3; cache_misses = 1 }
  in
  check_float "hit ratio" 0.75 (Stats.cache_hit_ratio (Stats.read ~cache s))

(* ---- End to end: a deterministically slow query ------------------------ *)

let test_slow_query_e2e () =
  let clock = Clock.manual ~start:Support.ts0 () in
  (* Every tablet-file pread stalls the manual clock by 60 ms — a
     disk that bad makes any uncached query slow, deterministically. *)
  let vfs =
    Lt_vfs.Vfs.faulty
      ~should_fail:(fun ~op ~path:_ ->
        if op = "pread" then Clock.advance clock (Clock.msec 60);
        false)
      (Lt_vfs.Vfs.memory ())
  in
  let config = Config.make ~cache_bytes:0 ~slow_op_micros:(Clock.msec 50) () in
  let db = Db.open_ ~config ~clock ~vfs ~dir:"obsroot" () in
  let table = Db.create_table db "usage" (Support.usage_schema ()) ~ttl:None in
  Table.insert table
    [ Support.usage_row ~network:1L ~device:1L ~ts:Support.ts0 ~bytes:1L ~rate:0.0 ];
  Table.flush_all table;
  let result = Table.query table Query.all in
  check_int "row survived" 1 (List.length result.Table.rows);
  let obs = Db.obs db in
  let slow = Trace.slow (Obs.trace obs) in
  let is_slow_query sp =
    sp.Trace.sp_op = Trace.Query
    && sp.Trace.sp_table = "usage"
    && sp.Trace.sp_duration_us >= Clock.msec 50
  in
  check_bool "slow query traced" true (List.exists is_slow_query slow);
  let text = Obs.render obs in
  check_bool "query histogram exposed" true
    (contains text "lt_query_duration_seconds_bucket");
  check_bool "insert histogram exposed" true
    (contains text "lt_insert_duration_seconds_bucket");
  check_bool "stats collector exposed" true
    (contains text "lt_rows_inserted_total{table=\"usage\"} 1");
  Db.close db

(* A disabled registry still renders collector-backed Stats series. *)
let test_disabled_db_renders_stats () =
  let clock = Clock.manual ~start:Support.ts0 () in
  let config = Config.make ~obs_enabled:false () in
  let db =
    Db.open_ ~config ~clock ~vfs:(Lt_vfs.Vfs.memory ()) ~dir:"obsroot" ()
  in
  let table = Db.create_table db "usage" (Support.usage_schema ()) ~ttl:None in
  Table.insert table
    [ Support.usage_row ~network:1L ~device:1L ~ts:Support.ts0 ~bytes:1L ~rate:0.0 ];
  let text = Obs.render (Db.obs db) in
  check_bool "collector runs when disabled" true
    (contains text "lt_rows_inserted_total{table=\"usage\"} 1");
  check_int "no spans when disabled" 0 (Trace.recorded (Obs.trace (Db.obs db)));
  Db.close db

(* ---- /metrics over HTTP ------------------------------------------------ *)

let http_get ~port ~path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec loop () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            loop ()
      in
      loop ();
      Buffer.contents buf)

let test_metrics_endpoint () =
  let dir = Filename.temp_file "lt_obs_test" "" in
  Sys.remove dir;
  let db = Db.open_ ~dir () in
  let server =
    Lt_net.Server.start ~maintenance_period_s:0.0 ~metrics_port:0 ~db ~port:0 ()
  in
  Fun.protect
    ~finally:(fun () ->
      Lt_net.Server.stop server;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let mport =
        match Lt_net.Server.metrics_port server with
        | Some p -> p
        | None -> Alcotest.fail "metrics listener not bound"
      in
      let c = Lt_net.Client.connect ~port:(Lt_net.Server.port server) () in
      let schema = Support.usage_schema () in
      Lt_net.Client.create_table c "usage" schema ~ttl:None;
      Lt_net.Client.insert c "usage"
        [ Support.usage_row ~network:1L ~device:1L ~ts:1L ~bytes:9L ~rate:0.0 ];
      let rows = Lt_net.Client.query_all c "usage" Query.all in
      check_int "roundtrip rows" 1 (List.length rows);
      (* The HTTP endpoint serves the exposition... *)
      let body = http_get ~port:mport ~path:"/metrics" in
      check_bool "200" true (contains body "200 OK");
      check_bool "content type" true
        (contains body "text/plain; version=0.0.4");
      check_bool "insert histogram over http" true
        (contains body "lt_insert_duration_seconds_bucket");
      check_bool "query histogram over http" true
        (contains body "lt_query_duration_seconds_bucket");
      check_bool "request histogram over http" true
        (contains body "lt_request_duration_seconds_bucket");
      check_bool "404 elsewhere" true
        (contains (http_get ~port:mport ~path:"/nope") "404");
      (* ...and the wire protocol serves the same document. *)
      let text = Lt_net.Client.metrics c in
      check_bool "wire exposition" true
        (contains text "lt_rows_inserted_total{table=\"usage\"} 1");
      let (_ : Trace.span list) = Lt_net.Client.slow_ops c in
      Lt_net.Client.close c)

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "histogram percentiles" `Quick test_percentiles;
    Alcotest.test_case "histogram merge" `Quick test_merge_into;
    Alcotest.test_case "label identity" `Quick test_label_identity;
    Alcotest.test_case "disabled registry" `Quick test_disabled_registry;
    Alcotest.test_case "golden prometheus render" `Quick test_golden_render;
    Alcotest.test_case "trace ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "trace context ids" `Quick test_trace_ctx_ids;
    Alcotest.test_case "ambient trace context" `Quick test_ambient_ctx;
    Alcotest.test_case "trace ring filters" `Quick test_trace_filters;
    Alcotest.test_case "record_op joins ambient trace" `Quick
      test_record_op_ambient;
    Alcotest.test_case "profile aggregation" `Quick test_profile_aggregate;
    Alcotest.test_case "snapshot federation" `Quick test_snapshot_federation;
    Alcotest.test_case "stats ratios" `Quick test_stats_ratios;
    Alcotest.test_case "slow query traced end to end" `Quick test_slow_query_e2e;
    Alcotest.test_case "disabled obs still renders stats" `Quick
      test_disabled_db_renders_stats;
    Alcotest.test_case "metrics http endpoint" `Quick test_metrics_endpoint;
  ]
