(* Shared helpers for the test suites. *)

open Littletable

let qcheck = QCheck_alcotest.to_alcotest

(* The usage-table schema of Figure 1 / §4.1: (network, device, ts). *)
let usage_schema () =
  Schema.create
    ~columns:
      [
        { Schema.name = "network"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "device"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
        { Schema.name = "bytes"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "rate"; ctype = Value.T_double; default = Value.Double 0.0 };
      ]
    ~pkey:[ "network"; "device"; "ts" ]

let usage_row ~network ~device ~ts ~bytes ~rate =
  [|
    Value.Int64 network;
    Value.Int64 device;
    Value.Timestamp ts;
    Value.Int64 bytes;
    Value.Double rate;
  |]

(* A schema with a string key column, for codec edge cases. *)
let event_schema () =
  Schema.create
    ~columns:
      [
        { Schema.name = "network"; ctype = Value.T_string; default = Value.String "" };
        { Schema.name = "device"; ctype = Value.T_string; default = Value.String "" };
        { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
        { Schema.name = "event_id"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "body"; ctype = Value.T_blob; default = Value.Blob "" };
      ]
    ~pkey:[ "network"; "device"; "ts" ]

(* A fresh in-memory database with a deterministic manual clock starting
   mid-2024 so period boundaries are unremarkable. *)
let fresh_db ?(config = Config.default) () =
  let clock = Lt_util.Clock.manual ~start:1_720_000_000_000_000L () in
  let vfs = Lt_vfs.Vfs.memory () in
  let db = Db.open_ ~config ~clock ~vfs ~dir:"dbroot" () in
  (db, clock, vfs)

let ts0 = 1_720_000_000_000_000L

let rows_of_result (r : Table.result) = r.Table.rows

let int64_of_cell = function
  | Value.Int64 v -> v
  | v -> Alcotest.failf "expected int64 cell, got %s" (Value.to_string v)

let ts_of_cell = function
  | Value.Timestamp v -> v
  | v -> Alcotest.failf "expected timestamp cell, got %s" (Value.to_string v)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

let check_int64 msg a b = Alcotest.(check int64) msg a b

(* Sorted list of (network, device, ts, bytes) tuples from usage rows. *)
let usage_tuples rows =
  List.map
    (fun row ->
      ( int64_of_cell row.(0),
        int64_of_cell row.(1),
        ts_of_cell row.(2),
        int64_of_cell row.(3) ))
    rows
