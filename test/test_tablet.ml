open Littletable
module Vfs = Lt_vfs.Vfs

(* ---- Block ----------------------------------------------------------- *)

let test_block_roundtrip () =
  let b = Block.builder () in
  let entries =
    List.init 100 (fun i -> (Printf.sprintf "key%04d" i, Printf.sprintf "val%d" i))
  in
  List.iter (fun (key, value) -> Block.add b ~key ~value) entries;
  Alcotest.(check int) "count" 100 (Block.entry_count b);
  Alcotest.(check bool) "first" true (Block.first_key b = Some "key0000");
  Alcotest.(check bool) "last" true (Block.last_key b = Some "key0099");
  let data = Block.finish b in
  let blk = Block.decode data in
  Alcotest.(check int) "decoded count" 100 (Block.count blk);
  List.iteri
    (fun i (key, value) ->
      let e = Block.entry blk i in
      Alcotest.(check string) "key" key e.Block.key;
      Alcotest.(check string) "value" value e.Block.value)
    entries;
  (* The builder reset: reusable. *)
  Alcotest.(check int) "reset" 0 (Block.entry_count b)

let test_block_ordering_enforced () =
  let b = Block.builder () in
  Block.add b ~key:"b" ~value:"";
  (match Block.add b ~key:"a" ~value:"" with
  | () -> Alcotest.fail "descending key accepted"
  | exception Invalid_argument _ -> ());
  match Block.add b ~key:"b" ~value:"" with
  | () -> Alcotest.fail "duplicate key accepted"
  | exception Invalid_argument _ -> ()

let test_block_search () =
  let b = Block.builder () in
  List.iter (fun k -> Block.add b ~key:k ~value:"") [ "b"; "d"; "f" ];
  let blk = Block.decode (Block.finish b) in
  Alcotest.(check int) "before first" 0 (Block.search_geq blk "a");
  Alcotest.(check int) "exact" 0 (Block.search_geq blk "b");
  Alcotest.(check int) "between" 1 (Block.search_geq blk "c");
  Alcotest.(check int) "last" 2 (Block.search_geq blk "f");
  Alcotest.(check int) "after all" 3 (Block.search_geq blk "z")

let test_block_raw_size_tracks () =
  let b = Block.builder () in
  let before = Block.raw_size b in
  Block.add b ~key:"kkkk" ~value:"vvvvvv";
  Alcotest.(check bool) "grows" true (Block.raw_size b > before);
  let data = Block.finish b in
  Alcotest.(check bool) "estimate >= actual" true
    (String.length data <= before + 4 + 4 + 6 + 2 + 5)

(* ---- Tablet ----------------------------------------------------------- *)

let schema = Support.usage_schema ()

let mk_row i =
  Support.usage_row ~network:(Int64.of_int (i / 100)) ~device:(Int64.of_int (i mod 100))
    ~ts:(Int64.of_int (1_000_000 + i)) ~bytes:(Int64.of_int (i * 10)) ~rate:(float_of_int i)

let write_tablet ?(bloom = 10) ?(block_size = 1024) vfs path rows =
  let w = Tablet.writer vfs ~path ~schema ~block_size ~bloom_bits_per_key:bloom () in
  List.iter
    (fun row ->
      let key, prefixes = Key_codec.encode_key_with_prefixes schema row in
      Tablet.add w ~key ~key_prefixes:prefixes ~ts:(Schema.row_ts schema row)
        ~value:(Row_codec.encode_value schema row))
    rows;
  Tablet.finish w

let sorted_rows n =
  (* mk_row generates rows already in key order (network, device, ts). *)
  List.init n mk_row

let drain it =
  let rec go acc = match it () with None -> List.rev acc | Some kv -> go (kv :: acc) in
  go []

let test_write_read_roundtrip () =
  let vfs = Vfs.memory () in
  let rows = sorted_rows 1000 in
  let s = write_tablet vfs "t.tab" rows in
  Alcotest.(check int) "rows" 1000 s.Tablet.row_count;
  Alcotest.(check int64) "min_ts" 1_000_000L s.Tablet.min_ts;
  Alcotest.(check int64) "max_ts" 1_000_999L s.Tablet.max_ts;
  let r = Tablet.open_reader vfs ~path:"t.tab" ~into:schema in
  Alcotest.(check bool) "multiple blocks" true (Tablet.block_count r > 3);
  Alcotest.(check int) "summary rows" 1000 (Tablet.summary r).Tablet.row_count;
  let got = List.map snd (drain (Tablet.iter r ~asc:true ())) in
  Alcotest.(check int) "all rows back" 1000 (List.length got);
  Alcotest.(check bool) "contents equal" true (got = rows);
  let back = List.map snd (drain (Tablet.iter r ~asc:false ())) in
  Alcotest.(check bool) "desc is reverse" true (back = List.rev rows);
  Tablet.close r

let test_iter_bounds () =
  let vfs = Vfs.memory () in
  let rows = sorted_rows 500 in
  ignore (write_tablet vfs "t.tab" rows);
  let r = Tablet.open_reader vfs ~path:"t.tab" ~into:schema in
  (* Keys for rows 100 (incl) to 150 (excl). *)
  let key_of i = Key_codec.encode_key schema (mk_row i) in
  let got = drain (Tablet.iter r ~asc:true ~lo:(key_of 100) ~hi:(key_of 150) ()) in
  Alcotest.(check int) "range size" 50 (List.length got);
  Alcotest.(check string) "first" (key_of 100) (fst (List.hd got));
  let got_desc = drain (Tablet.iter r ~asc:false ~lo:(key_of 100) ~hi:(key_of 150) ()) in
  Alcotest.(check bool) "desc same rows" true (got_desc = List.rev got);
  (* Bounds beyond the data. *)
  Alcotest.(check int) "empty high range" 0
    (List.length (drain (Tablet.iter r ~asc:true ~lo:(key_of 9999) ())));
  Alcotest.(check int) "full low range" 500
    (List.length (drain (Tablet.iter r ~asc:true ~lo:"" ())));
  Tablet.close r

let test_bloom_prefixes () =
  let vfs = Vfs.memory () in
  ignore (write_tablet vfs "t.tab" (sorted_rows 300));
  let r = Tablet.open_reader vfs ~path:"t.tab" ~into:schema in
  let p_present = Key_codec.encode_prefix schema [ Value.Int64 1L ] in
  let p_absent = Key_codec.encode_prefix schema [ Value.Int64 424242L ] in
  Alcotest.(check bool) "present prefix passes" true
    (Tablet.may_contain_prefix r p_present);
  Alcotest.(check bool) "absent prefix filtered" false
    (Tablet.may_contain_prefix r p_absent);
  (* Exact-key membership. *)
  Alcotest.(check bool) "mem hit" true
    (Tablet.mem r (Key_codec.encode_key schema (mk_row 5)));
  Alcotest.(check bool) "mem miss" false
    (Tablet.mem r (Key_codec.encode_key schema (mk_row 12345)));
  Tablet.close r

let test_no_bloom () =
  let vfs = Vfs.memory () in
  ignore (write_tablet ~bloom:0 vfs "t.tab" (sorted_rows 10));
  let r = Tablet.open_reader vfs ~path:"t.tab" ~into:schema in
  Alcotest.(check bool) "no filter: always maybe" true
    (Tablet.may_contain_prefix r "anything");
  Tablet.close r

let test_empty_tablet_rejected () =
  let vfs = Vfs.memory () in
  let w = Tablet.writer vfs ~path:"e.tab" ~schema ~block_size:1024 ~bloom_bits_per_key:0 () in
  match Tablet.finish w with
  | (_ : Tablet.summary) -> Alcotest.fail "empty tablet written"
  | exception Invalid_argument _ -> ()

let test_abandon () =
  let vfs = Vfs.memory () in
  let w = Tablet.writer vfs ~path:"a.tab" ~schema ~block_size:1024 ~bloom_bits_per_key:0 () in
  let row = mk_row 0 in
  let key, prefixes = Key_codec.encode_key_with_prefixes schema row in
  Tablet.add w ~key ~key_prefixes:prefixes ~ts:0L ~value:(Row_codec.encode_value schema row);
  Tablet.abandon w;
  Alcotest.(check bool) "file removed" false (Vfs.exists vfs "a.tab")

let test_schema_translation_on_read () =
  let vfs = Vfs.memory () in
  ignore (write_tablet vfs "t.tab" (sorted_rows 10));
  let s2 =
    Schema.add_column schema
      { Schema.name = "drops"; ctype = Value.T_int32; default = Value.Int32 7l }
  in
  let r = Tablet.open_reader vfs ~path:"t.tab" ~into:s2 in
  Alcotest.(check int) "stored schema version" 0 (Schema.version (Tablet.stored_schema r));
  (match drain (Tablet.iter r ~asc:true ()) with
  | (_, row) :: _ ->
      Alcotest.(check int) "translated arity" 6 (Array.length row);
      Alcotest.(check bool) "default injected" true (row.(5) = Value.Int32 7l)
  | [] -> Alcotest.fail "no rows");
  (* Retargeting on the fly. *)
  Tablet.set_target_schema r schema;
  (match drain (Tablet.iter r ~asc:true ()) with
  | (_, row) :: _ -> Alcotest.(check int) "original arity" 5 (Array.length row)
  | [] -> Alcotest.fail "no rows");
  Tablet.close r

let test_corruption_detected () =
  let vfs = Vfs.memory () in
  ignore (write_tablet vfs "t.tab" (sorted_rows 100));
  let data = Vfs.read_all vfs "t.tab" in
  let corrupt_at pos =
    let b = Bytes.of_string data in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
    let f = Vfs.create vfs "bad.tab" in
    Vfs.append vfs f (Bytes.to_string b);
    Vfs.close vfs f
  in
  (* Flip a byte in the middle of the first block. *)
  corrupt_at 50;
  (match
     let r = Tablet.open_reader vfs ~path:"bad.tab" ~into:schema in
     drain (Tablet.iter r ~asc:true ())
   with
  | (_ : (string * Value.t array) list) -> Alcotest.fail "block corruption missed"
  | exception Lt_util.Binio.Corrupt _ -> ());
  (* Flip a byte in the trailer magic. *)
  corrupt_at (String.length data - 1);
  (match Tablet.open_reader vfs ~path:"bad.tab" ~into:schema with
  | (_ : Tablet.reader) -> Alcotest.fail "trailer corruption missed"
  | exception Lt_util.Binio.Corrupt _ -> ());
  (* Truncated file. *)
  let f = Vfs.create vfs "short.tab" in
  Vfs.append vfs f (String.sub data 0 10);
  Vfs.close vfs f;
  match Tablet.open_reader vfs ~path:"short.tab" ~into:schema with
  | (_ : Tablet.reader) -> Alcotest.fail "truncation missed"
  | exception Lt_util.Binio.Corrupt _ -> ()

let test_large_values () =
  (* Values far larger than the block size (the paper's biggest values
     are 75 kB HLL sets, §5.2.2). *)
  let vfs = Vfs.memory () in
  let s = Support.event_schema () in
  let big = String.make 200_000 'h' in
  let row i =
    [| Value.String "n"; Value.String (Printf.sprintf "d%03d" i);
       Value.Timestamp (Int64.of_int i); Value.Int64 0L; Value.Blob big |]
  in
  let w = Tablet.writer vfs ~path:"big.tab" ~schema:s ~block_size:(64 * 1024)
            ~bloom_bits_per_key:10 () in
  for i = 0 to 4 do
    let key, prefixes = Key_codec.encode_key_with_prefixes s (row i) in
    Tablet.add w ~key ~key_prefixes:prefixes ~ts:(Int64.of_int i)
      ~value:(Row_codec.encode_value s (row i))
  done;
  let summary = Tablet.finish w in
  Alcotest.(check int) "rows" 5 summary.Tablet.row_count;
  let r = Tablet.open_reader vfs ~path:"big.tab" ~into:s in
  let rows = drain (Tablet.iter r ~asc:true ()) in
  Alcotest.(check int) "all back" 5 (List.length rows);
  (match rows with
  | (_, row) :: _ -> Alcotest.(check bool) "blob intact" true (row.(4) = Value.Blob big)
  | [] -> ());
  Tablet.close r

(* ---- Descriptor ------------------------------------------------------ *)

let meta id =
  Descriptor.
    {
      id;
      file = Descriptor.tablet_file id;
      min_ts = Int64.of_int (id * 100);
      max_ts = Int64.of_int ((id * 100) + 99);
      min_key = "a";
      max_key = "z";
      row_count = 42;
      size = 1000 + id;
      columnar = id mod 2 = 1;
    }

let test_descriptor_roundtrip () =
  let vfs = Vfs.memory () in
  Vfs.mkdir_p vfs "tbl";
  let d =
    Descriptor.
      { schema; ttl = Some 123L; next_id = 7; tablets = [ meta 3; meta 1; meta 2 ] }
  in
  Descriptor.save vfs ~dir:"tbl" d;
  Alcotest.(check bool) "exists" true (Descriptor.exists vfs ~dir:"tbl");
  let d' = Descriptor.load vfs ~dir:"tbl" in
  Alcotest.(check bool) "schema" true (Schema.equal schema d'.Descriptor.schema);
  Alcotest.(check bool) "ttl" true (d'.Descriptor.ttl = Some 123L);
  Alcotest.(check int) "next_id" 7 d'.Descriptor.next_id;
  Alcotest.(check (list int)) "normalized order" [ 1; 2; 3 ]
    (List.map (fun m -> m.Descriptor.id) d'.Descriptor.tablets)

let test_descriptor_atomic_replace () =
  let vfs = Vfs.memory () in
  Vfs.mkdir_p vfs "tbl";
  Descriptor.save vfs ~dir:"tbl" Descriptor.{ schema; ttl = None; next_id = 1; tablets = [] };
  Descriptor.save vfs ~dir:"tbl" Descriptor.{ schema; ttl = None; next_id = 9; tablets = [ meta 1 ] };
  let d = Descriptor.load vfs ~dir:"tbl" in
  Alcotest.(check int) "latest wins" 9 d.Descriptor.next_id;
  (* The temp file does not linger. *)
  Alcotest.(check (list string)) "only DESCRIPTOR" [ "DESCRIPTOR" ] (Vfs.readdir vfs "tbl")

let test_descriptor_corruption () =
  let vfs = Vfs.memory () in
  Vfs.mkdir_p vfs "tbl";
  Descriptor.save vfs ~dir:"tbl" Descriptor.{ schema; ttl = None; next_id = 1; tablets = [] };
  let raw = Vfs.read_all vfs "tbl/DESCRIPTOR" in
  let b = Bytes.of_string raw in
  Bytes.set b 20 '\xff';
  let f = Vfs.create vfs "tbl/DESCRIPTOR" in
  Vfs.append vfs f (Bytes.to_string b);
  Vfs.close vfs f;
  match Descriptor.load vfs ~dir:"tbl" with
  | (_ : Descriptor.t) -> Alcotest.fail "corruption missed"
  | exception Lt_util.Binio.Corrupt _ -> ()

let suite =
  [
    ("block roundtrip", `Quick, test_block_roundtrip);
    ("block ordering enforced", `Quick, test_block_ordering_enforced);
    ("block binary search", `Quick, test_block_search);
    ("block raw size tracking", `Quick, test_block_raw_size_tracks);
    ("tablet write/read roundtrip", `Quick, test_write_read_roundtrip);
    ("tablet iter bounds", `Quick, test_iter_bounds);
    ("tablet bloom prefixes", `Quick, test_bloom_prefixes);
    ("tablet without bloom", `Quick, test_no_bloom);
    ("empty tablet rejected", `Quick, test_empty_tablet_rejected);
    ("tablet abandon", `Quick, test_abandon);
    ("schema translation on read", `Quick, test_schema_translation_on_read);
    ("corruption detected", `Quick, test_corruption_detected);
    ("values larger than blocks", `Quick, test_large_values);
    ("descriptor roundtrip", `Quick, test_descriptor_roundtrip);
    ("descriptor atomic replace", `Quick, test_descriptor_atomic_replace);
    ("descriptor corruption", `Quick, test_descriptor_corruption);
  ]
