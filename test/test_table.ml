open Littletable
open Lt_util

let schema () = Support.usage_schema ()

(* A small config that flushes/merges eagerly at test scale. *)
let small_config =
  Config.make ~block_size:1024 ~flush_size:(8 * 1024) ~max_tablet_size:(64 * 1024)
    ~merge_delay:0L ~rollover_spread:0.0 ~server_row_limit:10_000 ()

let fresh ?(config = small_config) ?ttl () =
  let db, clock, vfs = Support.fresh_db ~config () in
  let t = Db.create_table db "usage" (schema ()) ~ttl in
  (db, clock, vfs, t)

let row ?(bytes = 0L) ?(rate = 0.0) net dev ts =
  Support.usage_row ~network:net ~device:dev ~ts ~bytes ~rate

let all_rows t = (Table.query t Query.all).Table.rows

let test_insert_query_memtable_only () =
  let _, _, _, t = fresh () in
  Table.insert t [ row 1L 1L 10L; row 1L 2L 20L; row 2L 1L 30L ];
  let rows = all_rows t in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  Alcotest.(check bool) "sorted by key" true
    (Support.usage_tuples rows
    = [ (1L, 1L, 10L, 0L); (1L, 2L, 20L, 0L); (2L, 1L, 30L, 0L) ]);
  Alcotest.(check int) "no disk tablets yet" 0 (Table.tablet_count t)

let test_flush_and_query () =
  let _, _, _, t = fresh () in
  Table.insert t (List.init 100 (fun i -> row 1L (Int64.of_int i) (Int64.of_int i)));
  Table.flush_all t;
  Alcotest.(check int) "memtables flushed" 0 (Table.memtable_count t);
  Alcotest.(check bool) "tablets on disk" true (Table.tablet_count t >= 1);
  Alcotest.(check int) "all rows" 100 (List.length (all_rows t))

let test_query_bounds () =
  let _, _, _, t = fresh () in
  List.iter
    (fun (net, dev, ts) -> Table.insert_row t (row net dev ts))
    [ (1L, 1L, 10L); (1L, 1L, 20L); (1L, 2L, 15L); (2L, 1L, 5L); (2L, 2L, 25L) ];
  Table.flush_all t;
  (* Key prefix: network 1. *)
  let r = Table.query t (Query.prefix [ Value.Int64 1L ]) in
  Alcotest.(check int) "network 1" 3 (List.length r.Table.rows);
  (* Key prefix + ts range. *)
  let r =
    Table.query t (Query.between ~ts_min:12L ~ts_max:20L (Query.prefix [ Value.Int64 1L ]))
  in
  Alcotest.(check bool) "bounding box" true
    (Support.usage_tuples r.Table.rows = [ (1L, 1L, 20L, 0L); (1L, 2L, 15L, 0L) ]);
  (* Exclusive key bound. *)
  let q =
    { Query.all with Query.key_low = Query.Excl [ Value.Int64 1L ] }
  in
  Alcotest.(check int) "after network 1" 2 (List.length (Table.query t q).Table.rows);
  (* Descending with limit. *)
  let r =
    Table.query t (Query.with_limit 2 (Query.with_direction Query.Desc Query.all))
  in
  Alcotest.(check bool) "desc limit" true
    (Support.usage_tuples r.Table.rows = [ (2L, 2L, 25L, 0L); (2L, 1L, 5L, 0L) ]);
  (* Full-key point query. *)
  let q = Query.prefix [ Value.Int64 1L; Value.Int64 1L; Value.Timestamp 20L ] in
  Alcotest.(check int) "point" 1 (List.length (Table.query t q).Table.rows)

let test_query_merges_memtable_and_disk () =
  let _, _, _, t = fresh () in
  Table.insert t [ row 1L 1L 10L; row 1L 3L 30L ];
  Table.flush_all t;
  Table.insert t [ row 1L 2L 20L ];
  let rows = Support.usage_tuples (all_rows t) in
  Alcotest.(check bool) "interleaved" true
    (rows = [ (1L, 1L, 10L, 0L); (1L, 2L, 20L, 0L); (1L, 3L, 30L, 0L) ])

let test_duplicate_key_rejected () =
  let _, _, _, t = fresh () in
  Table.insert_row t (row 1L 1L 10L);
  (* Duplicate against the memtable. *)
  (match Table.insert_row t (row ~bytes:9L 1L 1L 10L) with
  | () -> Alcotest.fail "memtable duplicate accepted"
  | exception Table.Duplicate_key _ -> ());
  Table.flush_all t;
  (* Duplicate against the on-disk tablet. *)
  (match Table.insert_row t (row ~bytes:9L 1L 1L 10L) with
  | () -> Alcotest.fail "disk duplicate accepted"
  | exception Table.Duplicate_key _ -> ());
  (* Distinct ts is fine. *)
  Table.insert_row t (row 1L 1L 11L);
  Alcotest.(check int) "still 2 rows" 2 (List.length (all_rows t))

let test_unique_fast_path_newer_ts () =
  (* Rows with strictly increasing ts never hit the slow path; verify via
     behaviour: inserts succeed and data is intact. *)
  let _, _, _, t = fresh () in
  for i = 1 to 200 do
    Table.insert_row t (row 1L 1L (Int64.of_int i))
  done;
  Alcotest.(check int) "200 rows" 200 (List.length (all_rows t));
  Alcotest.(check bool) "max_ts" true (Table.max_ts t = Some 200L)

let test_unique_disabled () =
  let config = Config.make ~enforce_unique:false ~server_row_limit:10_000 () in
  let _, _, _, t = fresh ~config () in
  Table.insert_row t (row ~bytes:1L 1L 1L 10L);
  Table.flush_all t;
  Table.insert_row t (row ~bytes:2L 1L 1L 10L);
  (* The newer (memtable) row shadows the older at query time. *)
  match Support.usage_tuples (all_rows t) with
  | [ (1L, 1L, 10L, b) ] -> Alcotest.(check int64) "newest wins" 2L b
  | other -> Alcotest.failf "unexpected rows (%d)" (List.length other)

let test_more_available () =
  let config = Config.make ~server_row_limit:10 ~flush_size:(1 lsl 20) () in
  let _, _, _, t = fresh ~config () in
  Table.insert t (List.init 25 (fun i -> row 1L (Int64.of_int i) 1L));
  let r = Table.query t Query.all in
  Alcotest.(check int) "capped" 10 (List.length r.Table.rows);
  Alcotest.(check bool) "more available" true r.Table.more_available;
  (* Resubmit from the last key, exclusive — the SQLite adaptor's loop. *)
  let resume last =
    {
      Query.all with
      Query.key_low =
        Query.Excl [ Value.Int64 1L; Value.Int64 last; Value.Timestamp 1L ];
    }
  in
  let r2 = Table.query t (resume 9L) in
  Alcotest.(check int) "next page" 10 (List.length r2.Table.rows);
  let r3 = Table.query t (resume 19L) in
  Alcotest.(check int) "final page" 5 (List.length r3.Table.rows);
  Alcotest.(check bool) "exhausted" false r3.Table.more_available;
  (* A client limit below the cap does not set the flag. *)
  let r4 = Table.query t (Query.with_limit 3 Query.all) in
  Alcotest.(check int) "client limit" 3 (List.length r4.Table.rows);
  Alcotest.(check bool) "flag off" false r4.Table.more_available

let test_query_iter_streams () =
  let _, _, _, t = fresh () in
  Table.insert t (List.init 50 (fun i -> row 1L (Int64.of_int i) 1L));
  Table.flush_all t;
  let src = Table.query_iter t Query.all in
  let n = ref 0 in
  let rec go () = match src () with Some _ -> incr n; go () | None -> () in
  go ();
  Alcotest.(check int) "streamed all" 50 !n;
  Alcotest.(check bool) "stays exhausted" true (src () = None)

let test_ttl_filtering_and_expiry () =
  let ttl = Clock.week in
  let db, clock, _, t = fresh ~ttl () in
  ignore db;
  let t0 = Clock.now clock in
  Table.insert t [ row 1L 1L t0; row 1L 2L (Int64.add t0 1L) ];
  Table.flush_all t;
  (* Two weeks later, insert fresh rows. *)
  Clock.advance clock (Int64.mul 2L Clock.week);
  let t1 = Clock.now clock in
  Table.insert t [ row 1L 3L t1 ];
  Table.flush_all t;
  (* Old rows are filtered from queries even before reclamation. *)
  let rows = Support.usage_tuples (all_rows t) in
  Alcotest.(check bool) "only fresh rows" true (rows = [ (1L, 3L, t1, 0L) ]);
  (* And the expired tablet is physically reclaimed. *)
  let reclaimed = Table.expire t in
  Alcotest.(check int) "one tablet reclaimed" 1 reclaimed;
  Alcotest.(check int) "one tablet left" 1 (Table.tablet_count t);
  Alcotest.(check int) "stats" 1 (Table.stats t).Stats.tablets_expired

let test_ttl_partial_tablet () =
  (* A tablet straddling the cutoff: expired rows are filtered but the
     tablet is not reclaimed. Both rows sit in the same old week, so they
     share one tablet; the TTL cutoff then lands between them. *)
  let ttl = Int64.mul 3L Clock.week in
  let _, clock, _, t = fresh ~ttl () in
  let t0 = Clock.now clock in
  let w0 =
    Int64.sub (Period.align t0 ~unit_len:Clock.week) (Int64.mul 2L Clock.week)
  in
  Table.insert t
    [ row 1L 1L (Int64.add w0 Clock.day);
      row 1L 2L (Int64.add w0 (Int64.mul 5L Clock.day)) ];
  Table.flush_all t;
  Alcotest.(check int) "one tablet" 1 (Table.tablet_count t);
  (* Advance so the cutoff (now - 3 weeks) is w0 + 2 days. *)
  Clock.set clock (Int64.add w0 (Int64.mul 23L Clock.day));
  Alcotest.(check int) "nothing reclaimed" 0 (Table.expire t);
  Alcotest.(check int) "tablet kept" 1 (Table.tablet_count t);
  let rows = Support.usage_tuples (all_rows t) in
  Alcotest.(check int) "old row filtered" 1 (List.length rows)

let test_merge_reduces_tablets () =
  let _, clock, _, t = fresh () in
  (* Many small flushes within one (old) week period. *)
  let base = Int64.sub (Clock.now clock) (Int64.mul 3L Clock.week) in
  for batch = 0 to 9 do
    Table.insert t
      (List.init 20 (fun i ->
           row 1L (Int64.of_int ((batch * 20) + i)) (Int64.add base (Int64.of_int ((batch * 20) + i)))));
    Table.flush_all t
  done;
  Alcotest.(check int) "ten tablets" 10 (Table.tablet_count t);
  let merged = ref 0 in
  while Table.merge_step t do incr merged done;
  Alcotest.(check bool) "merges happened" true (!merged > 0);
  Alcotest.(check bool) "tablet count shrank" true (Table.tablet_count t < 10);
  Alcotest.(check int) "no rows lost" 200 (List.length (all_rows t));
  let s = Table.stats t in
  Alcotest.(check bool) "merge stats" true (s.Stats.merges = !merged)

let test_merge_respects_periods () =
  let _, clock, _, t = fresh () in
  let now = Clock.now clock in
  (* One tablet three weeks ago, one two weeks ago. *)
  Table.insert_row t (row 1L 1L (Int64.sub now (Int64.mul 3L Clock.week)));
  Table.flush_all t;
  Table.insert_row t (row 1L 2L (Int64.sub now (Int64.mul 2L Clock.week)));
  Table.flush_all t;
  Alcotest.(check bool) "different weeks never merge" false (Table.merge_step t)

let test_merge_drops_expired_rows () =
  let ttl = Clock.week in
  let _, clock, _, t = fresh ~ttl () in
  let now = Clock.now clock in
  let old = Int64.sub now (Int64.mul 3L Clock.week) in
  (* Two tablets in the same old week; all rows already past TTL. *)
  Table.insert_row t (row 1L 1L old);
  Table.flush_all t;
  Table.insert_row t (row 1L 2L (Int64.add old 1L));
  Table.flush_all t;
  Alcotest.(check int) "two tablets" 2 (Table.tablet_count t);
  Alcotest.(check bool) "merge runs" true (Table.merge_step t);
  (* Everything expired: merged away to nothing. *)
  Alcotest.(check int) "no tablets remain" 0 (Table.tablet_count t)

let test_latest_full_prefix () =
  let _, _, _, t = fresh () in
  Table.insert t [ row ~bytes:1L 1L 1L 10L; row ~bytes:2L 1L 1L 20L; row ~bytes:3L 1L 2L 30L ];
  Table.flush_all t;
  Table.insert t [ row ~bytes:4L 1L 1L 15L ];
  (* Latest for (network=1, device=1) — all key columns but ts. *)
  (match Table.latest t [ Value.Int64 1L; Value.Int64 1L ] with
  | Some r -> Alcotest.(check int64) "ts 20 wins" 20L (Support.ts_of_cell r.(2))
  | None -> Alcotest.fail "no row");
  (* Shorter prefix: latest across the whole network. *)
  (match Table.latest t [ Value.Int64 1L ] with
  | Some r -> Alcotest.(check int64) "ts 30 wins" 30L (Support.ts_of_cell r.(2))
  | None -> Alcotest.fail "no row");
  (* Missing prefix. *)
  Alcotest.(check bool) "absent network" true
    (Table.latest t [ Value.Int64 99L ] = None)

let test_latest_respects_ttl () =
  let ttl = Clock.week in
  let _, clock, _, t = fresh ~ttl () in
  let now = Clock.now clock in
  Table.insert_row t (row 1L 1L (Int64.sub now (Int64.mul 2L Clock.week)));
  Table.flush_all t;
  Alcotest.(check bool) "expired row invisible" true
    (Table.latest t [ Value.Int64 1L; Value.Int64 1L ] = None)

let test_latest_searches_far_past () =
  let _, clock, _, t = fresh () in
  let now = Clock.now clock in
  (* Device 1's only row is months old; newer tablets hold other devices. *)
  Table.insert_row t (row ~bytes:7L 1L 1L (Int64.sub now (Int64.mul 10L Clock.week)));
  Table.flush_all t;
  Table.insert_row t (row 1L 2L (Int64.sub now Clock.day));
  Table.flush_all t;
  Table.insert_row t (row 1L 3L now);
  match Table.latest t [ Value.Int64 1L; Value.Int64 1L ] with
  | Some r -> Alcotest.(check int64) "found in old group" 7L (Support.int64_of_cell r.(3))
  | None -> Alcotest.fail "missed old row"

let test_schema_evolution_live () =
  let _, _, _, t = fresh () in
  Table.insert_row t (row ~bytes:5L 1L 1L 10L);
  Table.flush_all t;
  Table.insert_row t (row ~bytes:6L 1L 2L 20L);
  (* Add a column while data exists both on disk and in memory. *)
  Table.add_column t
    { Schema.name = "errs"; ctype = Value.T_int32; default = Value.Int32 (-1l) };
  let rows = all_rows t in
  Alcotest.(check int) "both rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "arity" 6 (Array.length r);
      Alcotest.(check bool) "default" true (r.(5) = Value.Int32 (-1l)))
    rows;
  (* Insert with the new schema, then widen. *)
  Table.insert_row t
    (Array.append (row ~bytes:7L 1L 3L 30L) [| Value.Int32 3l |]);
  Table.widen_column t "errs";
  let rows = all_rows t in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  let last = List.nth rows 2 in
  Alcotest.(check bool) "widened cell" true (last.(5) = Value.Int64 3L);
  (* Reopen-safe: descriptor carries the evolved schema. *)
  Alcotest.(check int) "version" 2 (Schema.version (Table.schema t))

let test_reopen_from_descriptor () =
  let db, clock, vfs, t = fresh () in
  ignore db;
  Table.insert t (List.init 10 (fun i -> row 1L (Int64.of_int i) (Int64.of_int i)));
  Table.flush_all t;
  Table.insert_row t (row 9L 9L 999L);
  (* Not flushed: lost on reopen. *)
  Table.close t;
  let t2 =
    Table.open_ vfs ~clock ~config:small_config ~dir:"dbroot/usage" ~name:"usage"
  in
  Alcotest.(check int) "flushed rows survive" 10 (List.length (all_rows t2));
  (* max_ts restored from tablet metadata. *)
  Alcotest.(check bool) "max_ts" true (Table.max_ts t2 = Some 9L);
  (* Inserts continue without id collisions. *)
  Table.insert_row t2 (row 10L 10L 100L);
  Table.flush_all t2;
  Alcotest.(check int) "new row visible" 11 (List.length (all_rows t2))

let test_flush_by_age () =
  let _, clock, _, t = fresh () in
  Table.insert_row t (row 1L 1L (Clock.now clock));
  Table.maintenance t;
  Alcotest.(check int) "young memtable kept" 1 (Table.memtable_count t);
  Clock.advance clock (Int64.mul 11L Clock.minute);
  Table.maintenance t;
  Alcotest.(check int) "aged memtable flushed" 0 (Table.memtable_count t);
  Alcotest.(check bool) "on disk" true (Table.tablet_count t >= 1)

let test_flush_before () =
  let _, clock, _, t = fresh ~config:(Config.make ~flush_size:(1 lsl 20) ()) () in
  let now = Clock.now clock in
  let old = Int64.sub now (Int64.mul 2L Clock.week) in
  Table.insert_row t (row 1L 1L old);
  Table.insert_row t (row 1L 2L now);
  Alcotest.(check int) "two memtables" 2 (Table.memtable_count t);
  Table.flush_before t ~ts:old;
  (* The old-period memtable flushed; but because the fresh memtable
     received a later insert, dependencies may pull it in — the paper
     only promises rows up to ts are durable. Verify durability of the
     old row via reopen semantics instead. *)
  Alcotest.(check bool) "old row on disk" true (Table.tablet_count t >= 1);
  let metas = Table.tablets t in
  Alcotest.(check bool) "covers old ts" true
    (List.exists (fun m -> m.Descriptor.min_ts <= old && old <= m.Descriptor.max_ts) metas)

(* Explicit durability is group-committed: a caller already covered by
   a completed round returns without flushing anything, and concurrent
   committers share one round's fsyncs instead of queueing identical
   rounds. Led/joined rounds are counted per table. *)
let test_group_commit () =
  let db, _, _, t = fresh () in
  let obs = Db.obs db in
  let commits mode =
    Lt_obs.Metrics.Counter.value
      (Lt_obs.Obs.group_commit obs ~table:"usage" ~mode)
  in
  Table.insert t (List.init 20 (fun i -> row 1L (Int64.of_int i) (Int64.of_int i)));
  Table.flush_all t;
  Alcotest.(check int) "first commit leads a round" 1 (commits "led");
  (* Nothing new since the round: covered callers flush nothing. *)
  Table.flush_all t;
  Table.flush_before t ~ts:5L;
  Table.flush_all t;
  Alcotest.(check int) "covered calls lead no round" 1 (commits "led");
  Alcotest.(check int) "covered calls join no round" 0 (commits "joined");
  let tablets_after_first = Table.tablet_count t in
  Alcotest.(check int) "covered calls write no tablets" tablets_after_first
    (Table.tablet_count t);
  (* New data un-covers the table; flush_before rides a fresh round. *)
  Table.insert_row t (row 9L 9L 99L);
  Table.flush_before t ~ts:99L;
  Alcotest.(check int) "new data leads a new round" 2 (commits "led");
  (* Concurrent committers: each call leads, joins an in-flight round,
     or rides a completed one; all rows are durable at the end. *)
  let n = 8 in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            Table.insert_row t (row 50L (Int64.of_int i) (Int64.of_int i));
            Table.flush_all t)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "everything durable" 0 (Table.memtable_count t);
  Alcotest.(check bool) "rounds bounded by callers" true
    (commits "led" + commits "joined" <= 2 + n);
  Alcotest.(check int) "no rows lost" (21 + n) (List.length (all_rows t))

let test_out_of_order_inserts_bin_correctly () =
  let _, clock, _, t = fresh ~config:(Config.make ~flush_size:(1 lsl 20) ()) () in
  let now = Clock.now clock in
  (* A device that was offline for a month delivers old events (§3.4.3). *)
  Table.insert t
    [
      row 1L 1L now;
      row 1L 1L (Int64.sub now (Int64.mul 30L Clock.day));
      row 1L 1L (Int64.sub now Clock.day);
      row 1L 1L (Int64.add now Clock.hour);
    ];
  (* Separate filling tablets per period: old week, yesterday, today(s). *)
  Alcotest.(check bool) "multiple bins" true (Table.memtable_count t >= 3);
  Table.flush_all t;
  (* Tablets have (mostly) disjoint timespans; verify sorted retrieval. *)
  Alcotest.(check int) "all rows" 4 (List.length (all_rows t));
  let metas = Table.tablets t in
  let rec disjoint = function
    | a :: (b :: _ as rest) ->
        a.Descriptor.max_ts < b.Descriptor.min_ts && disjoint rest
    | _ -> true
  in
  Alcotest.(check bool) "disjoint timespans" true (disjoint metas)

let test_drop_and_recreate_via_db () =
  let db, _, _, t = fresh () in
  Table.insert_row t (row 1L 1L 1L);
  Table.flush_all t;
  Db.drop_table db "usage";
  Alcotest.(check bool) "gone" true (Db.find_table db "usage" = None);
  let t2 = Db.create_table db "usage" (schema ()) ~ttl:None in
  Alcotest.(check int) "fresh table empty" 0 (List.length (all_rows t2))

let test_stats_scan_ratio () =
  let _, _, _, t = fresh () in
  (* Rows for one device across a wide ts range, all in one tablet. *)
  Table.insert t (List.init 100 (fun i -> row 1L 1L (Int64.of_int i)));
  Table.flush_all t;
  (* A narrow ts window must scan the key range but return few rows. *)
  let r = Table.query t (Query.between ~ts_min:10L ~ts_max:19L (Query.prefix [ Value.Int64 1L; Value.Int64 1L ])) in
  Alcotest.(check int) "returned" 10 (List.length r.Table.rows);
  Alcotest.(check bool) "scanned more than returned" true (r.Table.scanned >= 10)

(* ---- Concurrent readers vs maintenance -------------------------------- *)

(* N reader threads hammer queries while the main thread inserts,
   flushes, merges, expires, and advances the clock. Every result must
   be internally consistent: strictly ascending keys (the merge never
   interleaves wrongly) and self-checking row payloads (a torn read
   would break the bytes invariant), and Stats counters only grow. The
   parallel scan pool is active, so reader threads also share worker
   domains. *)

let stress_bytes net dev ts =
  Int64.add
    (Int64.add (Int64.mul net 1_000_000L) (Int64.mul dev 10_000L))
    (Int64.rem ts 10_000L)

let test_concurrent_readers () =
  let config =
    Config.make ~block_size:1024 ~flush_size:(8 * 1024)
      ~max_tablet_size:(64 * 1024) ~merge_delay:0L ~rollover_spread:0.0
      ~server_row_limit:10_000 ~query_domains:2 ()
  in
  let _, clock, _, t = fresh ~config ~ttl:Clock.hour () in
  let stop = Atomic.make false in
  let failure = ref None in
  let fail_mutex = Mutex.create () in
  let record_failure msg =
    Mutex.lock fail_mutex;
    if !failure = None then failure := Some msg;
    Mutex.unlock fail_mutex
  in
  let check_result rows =
    let tuples = Support.usage_tuples rows in
    let rec sorted = function
      | (a : int64 * int64 * int64 * int64) :: (b :: _ as tl) ->
          (let n0, d0, t0, _ = a and n1, d1, t1, _ = b in
           (n0, d0, t0) < (n1, d1, t1))
          && sorted tl
      | _ -> true
    in
    if not (sorted tuples) then record_failure "keys out of order";
    List.iter
      (fun (net, dev, ts, bytes) ->
        if bytes <> stress_bytes net dev ts then
          record_failure
            (Printf.sprintf "torn row: net=%Ld dev=%Ld ts=%Ld bytes=%Ld" net
               dev ts bytes))
      tuples
  in
  let reader () =
    let last_scanned = ref 0 and last_queries = ref 0 and last_returned = ref 0 in
    while not (Atomic.get stop) do
      check_result (all_rows t);
      check_result
        (Table.query t (Query.prefix [ Value.Int64 1L ])).Table.rows;
      let s = Table.stats t in
      if
        s.Stats.rows_scanned < !last_scanned
        || s.Stats.queries < !last_queries
        || s.Stats.rows_returned < !last_returned
      then record_failure "stats went backwards";
      last_scanned := s.Stats.rows_scanned;
      last_queries := s.Stats.queries;
      last_returned := s.Stats.rows_returned
    done
  in
  let readers = List.init 4 (fun _ -> Thread.create reader ()) in
  let ts_of i j = Int64.add Support.ts0 (Int64.of_int ((i * 100) + j)) in
  for i = 0 to 59 do
    Table.insert t
      (List.init 20 (fun j ->
           let net = Int64.of_int (i mod 4) and dev = Int64.of_int (j mod 5) in
           let ts = ts_of i j in
           row ~bytes:(stress_bytes net dev ts) net dev ts));
    (match i mod 6 with
    | 0 -> Table.flush_all t
    | 1 -> ignore (Table.merge_step t)
    | 2 ->
        Clock.advance clock Clock.minute;
        ignore (Table.expire t)
    | 3 -> Table.maintenance t
    | _ -> ());
    Thread.yield ()
  done;
  Atomic.set stop true;
  List.iter Thread.join readers;
  (match !failure with
  | Some msg -> Alcotest.fail msg
  | None -> ());
  (* Final sanity: everything inserted and unexpired is still there. *)
  check_result (all_rows t);
  Alcotest.(check int) "all rows present" (60 * 20)
    (List.length (all_rows t))

(* ---- Randomized comparison against a reference model ----------------- *)

let prop_matches_reference =
  QCheck.Test.make ~name:"table matches sorted-list reference" ~count:30
    QCheck.(
      list_of_size (Gen.int_range 1 120)
        (triple (int_bound 3) (int_bound 5) (int_bound 1000)))
    (fun ops ->
      let _, _, _, t = fresh () in
      let reference = Hashtbl.create 64 in
      List.iteri
        (fun i (net, dev, ts) ->
          let net = Int64.of_int net and dev = Int64.of_int dev in
          let ts = Int64.of_int ts in
          let key = (net, dev, ts) in
          (match Table.insert_row t (row ~bytes:(Int64.of_int i) net dev ts) with
          | () ->
              if Hashtbl.mem reference key then raise Exit;
              Hashtbl.replace reference key (Int64.of_int i)
          | exception Table.Duplicate_key _ ->
              if not (Hashtbl.mem reference key) then raise Exit);
          (* Periodically flush and merge to mix storage layers. *)
          if i mod 17 = 0 then Table.flush_all t;
          if i mod 41 = 0 then ignore (Table.merge_step t))
        ops;
      let expected =
        Hashtbl.fold (fun (n, d, ts) b acc -> (n, d, ts, b) :: acc) reference []
        |> List.sort compare
      in
      let got = Support.usage_tuples (all_rows t) in
      got = expected)

let suite =
  [
    ("insert + query (memtable only)", `Quick, test_insert_query_memtable_only);
    ("flush and query", `Quick, test_flush_and_query);
    ("query bounding boxes", `Quick, test_query_bounds);
    ("query merges memtable and disk", `Quick, test_query_merges_memtable_and_disk);
    ("duplicate key rejected", `Quick, test_duplicate_key_rejected);
    ("unique fast path (newer ts)", `Quick, test_unique_fast_path_newer_ts);
    ("uniqueness disabled: newest shadows", `Quick, test_unique_disabled);
    ("more_available paging", `Quick, test_more_available);
    ("query_iter streams", `Quick, test_query_iter_streams);
    ("ttl filtering and expiry", `Quick, test_ttl_filtering_and_expiry);
    ("ttl: straddling tablet kept", `Quick, test_ttl_partial_tablet);
    ("merge reduces tablets", `Quick, test_merge_reduces_tablets);
    ("merge respects periods", `Quick, test_merge_respects_periods);
    ("merge drops expired rows", `Quick, test_merge_drops_expired_rows);
    ("latest: full prefix", `Quick, test_latest_full_prefix);
    ("latest: respects ttl", `Quick, test_latest_respects_ttl);
    ("latest: searches far past", `Quick, test_latest_searches_far_past);
    ("schema evolution live", `Quick, test_schema_evolution_live);
    ("reopen from descriptor", `Quick, test_reopen_from_descriptor);
    ("flush by age", `Quick, test_flush_by_age);
    ("flush_before (proposed extension)", `Quick, test_flush_before);
    ("group commit shares flush rounds", `Quick, test_group_commit);
    ("out-of-order inserts bin correctly", `Quick, test_out_of_order_inserts_bin_correctly);
    ("drop and recreate", `Quick, test_drop_and_recreate_via_db);
    ("stats scan ratio", `Quick, test_stats_scan_ratio);
    ("concurrent readers vs maintenance", `Quick, test_concurrent_readers);
    Support.qcheck prop_matches_reference;
  ]
