(* Block-cache tests: SLRU mechanics in isolation, then the cache wired
   through the engine — invalidation on merge, crash-reopen equivalence
   with the cache on vs off, and scan resistance at table level. *)

open Littletable
open Lt_util
module Bcache = Lt_cache.Block_cache

(* ------------------------------------------------------------------ *)
(* Unit: SLRU mechanics (single shard for determinism)                 *)
(* ------------------------------------------------------------------ *)

let present c ~file ~block =
  (* Peeks via find; in these tests the recency side effect is intended
     or irrelevant. *)
  Bcache.find c ~file ~block <> None

let test_eviction_order () =
  let c = Bcache.create ~shards:1 ~capacity:30 () in
  let f = Bcache.file_id c in
  for b = 0 to 2 do
    Bcache.insert c ~file:f ~block:b ~bytes:10 b
  done;
  Alcotest.(check int) "fits exactly" 30 (Bcache.counters c).Bcache.resident_bytes;
  (* One more evicts the probation LRU: block 0, the coldest. *)
  Bcache.insert c ~file:f ~block:3 ~bytes:10 3;
  Alcotest.(check int) "one eviction" 1 (Bcache.counters c).Bcache.evictions;
  Alcotest.(check bool) "LRU gone" false (present c ~file:f ~block:0);
  (* Touch block 1: the hit promotes it to the protected segment. *)
  Alcotest.(check bool) "block 1 resident" true (present c ~file:f ~block:1);
  (* Two more one-touch inserts churn probation around it, evicting the
     probation LRUs 2 then 3, never the protected 1. *)
  Bcache.insert c ~file:f ~block:4 ~bytes:10 4;
  Bcache.insert c ~file:f ~block:5 ~bytes:10 5;
  Alcotest.(check bool) "cold 2 evicted" false (present c ~file:f ~block:2);
  Alcotest.(check bool) "cold 3 evicted" false (present c ~file:f ~block:3);
  Alcotest.(check bool) "promoted 1 survives" true (present c ~file:f ~block:1);
  Alcotest.(check bool) "fresh 4 resident" true (present c ~file:f ~block:4);
  Alcotest.(check bool) "fresh 5 resident" true (present c ~file:f ~block:5);
  Alcotest.(check int) "evictions: 0, 2, 3" 3 (Bcache.counters c).Bcache.evictions

let test_capacity_accounting () =
  let c = Bcache.create ~shards:1 ~capacity:100 () in
  let f = Bcache.file_id c in
  for b = 0 to 9 do
    Bcache.insert c ~file:f ~block:b ~bytes:17 b
  done;
  let k = Bcache.counters c in
  Alcotest.(check int) "insertions" 10 k.Bcache.insertions;
  Alcotest.(check int) "inserted bytes" 170 k.Bcache.inserted_bytes;
  Alcotest.(check bool) "bounded" true (k.Bcache.resident_bytes <= 100);
  Alcotest.(check int) "residents weigh 17"
    (k.Bcache.resident_entries * 17) k.Bcache.resident_bytes;
  Alcotest.(check int) "evicted the rest"
    (10 - k.Bcache.resident_entries) k.Bcache.evictions;
  (* Re-inserting a resident key counts nothing. *)
  Bcache.insert c ~file:f ~block:9 ~bytes:17 9;
  Alcotest.(check int) "no double count" 10 (Bcache.counters c).Bcache.insertions;
  Bcache.clear c;
  let k = Bcache.counters c in
  Alcotest.(check int) "clear empties" 0 k.Bcache.resident_bytes;
  Alcotest.(check int) "clear empties entries" 0 k.Bcache.resident_entries;
  Alcotest.(check int) "counters survive clear" 10 k.Bcache.insertions

let test_scan_resistance_unit () =
  let c = Bcache.create ~shards:1 ~capacity:100 () in
  let hot = Bcache.file_id c and scan = Bcache.file_id c in
  (* Establish a hot set: insert, then touch once to promote. *)
  Bcache.insert c ~file:hot ~block:0 ~bytes:20 0;
  Bcache.insert c ~file:hot ~block:1 ~bytes:20 1;
  Alcotest.(check bool) "hot 0" true (present c ~file:hot ~block:0);
  Alcotest.(check bool) "hot 1" true (present c ~file:hot ~block:1);
  (* A one-pass scan of 3x capacity: every block touched exactly once. *)
  for b = 0 to 14 do
    Bcache.insert c ~file:scan ~block:b ~bytes:20 b
  done;
  Alcotest.(check bool) "hot 0 survives scan" true (present c ~file:hot ~block:0);
  Alcotest.(check bool) "hot 1 survives scan" true (present c ~file:hot ~block:1);
  (* The scan churned only itself. *)
  let k = Bcache.counters c in
  Alcotest.(check bool) "scan evicted scan blocks" true (k.Bcache.evictions >= 12)

let test_invalidate_file () =
  let c = Bcache.create ~shards:4 ~capacity:10_000 () in
  let a = Bcache.file_id c and b = Bcache.file_id c in
  for blk = 0 to 4 do
    Bcache.insert c ~file:a ~block:blk ~bytes:10 blk;
    Bcache.insert c ~file:b ~block:blk ~bytes:10 (100 + blk)
  done;
  Bcache.invalidate_file c ~file:a;
  for blk = 0 to 4 do
    Alcotest.(check bool) "a gone" false (present c ~file:a ~block:blk);
    Alcotest.(check bool) "b stays" true (present c ~file:b ~block:blk)
  done;
  let k = Bcache.counters c in
  Alcotest.(check int) "five left" 5 k.Bcache.resident_entries;
  Alcotest.(check int) "bytes adjusted" 50 k.Bcache.resident_bytes;
  Alcotest.(check int) "not counted as evictions" 0 k.Bcache.evictions

let test_file_ids_fresh () =
  let c = Bcache.create ~capacity:100 () in
  let a = Bcache.file_id c and b = Bcache.file_id c and d = Bcache.file_id c in
  Alcotest.(check bool) "distinct" true (a <> b && b <> d && a <> d)

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)
(* ------------------------------------------------------------------ *)

let cached_config ?(cache_bytes = 4 * 1024 * 1024) () =
  Config.make ~block_size:1024 ~flush_size:(8 * 1024)
    ~max_tablet_size:(64 * 1024) ~merge_delay:0L ~rollover_spread:0.0
    ~server_row_limit:10_000 ~cache_bytes ()

let row net dev ts = Support.usage_row ~network:net ~device:dev ~ts ~bytes:ts ~rate:0.0

let all_rows t = (Table.query t Query.all).Table.rows

let test_invalidation_on_merge () =
  let db, _, _, t =
    let config = cached_config () in
    let db, clock, vfs = Support.fresh_db ~config () in
    (db, clock, vfs, Db.create_table db "usage" (Support.usage_schema ()) ~ttl:None)
  in
  let cache = Option.get (Db.block_cache db) in
  (* Several flushed tablets over the same period bin. *)
  for batch = 0 to 4 do
    Table.insert t
      (List.init 100 (fun i ->
           row 1L (Int64.of_int ((batch * 100) + i)) (Int64.of_int ((batch * 100) + i))));
    Table.flush_all t
  done;
  Alcotest.(check bool) "several tablets" true (Table.tablet_count t > 1);
  let before = all_rows t in
  Alcotest.(check bool) "cache populated" true
    ((Bcache.counters cache).Bcache.resident_entries > 0);
  while Table.merge_step t do () done;
  (* Merging read the sources through the cache, then deleted them; every
     cached block belonged to a deleted file, so the cache must be empty
     until the merged tablet is read. *)
  Alcotest.(check int) "stale blocks invalidated" 0
    (Bcache.counters cache).Bcache.resident_entries;
  Alcotest.(check int) "merged down" 1 (Table.tablet_count t);
  Alcotest.(check bool) "identical rows after merge" true (before = all_rows t);
  Alcotest.(check bool) "identical rows again (warm)" true (before = all_rows t)

let test_invalidation_on_expiry () =
  let config = cached_config () in
  let db, clock, _ = Support.fresh_db ~config () in
  let ttl = Clock.week in
  let t = Db.create_table db "usage" (Support.usage_schema ()) ~ttl:(Some ttl) in
  let now = Clock.now clock in
  Table.insert t (List.init 50 (fun i -> row 1L (Int64.of_int i) (Int64.add now (Int64.of_int i))));
  Table.flush_all t;
  ignore (all_rows t);
  let cache = Option.get (Db.block_cache db) in
  Alcotest.(check bool) "cache warm" true
    ((Bcache.counters cache).Bcache.resident_entries > 0);
  Clock.advance clock (Int64.mul 3L Clock.week);
  Alcotest.(check bool) "expired" true (Table.expire t > 0);
  Alcotest.(check int) "expired tablet's blocks invalidated" 0
    (Bcache.counters cache).Bcache.resident_entries;
  Alcotest.(check int) "no rows served" 0 (List.length (all_rows t))

(* The same workload, crash, and reopen must read back identically with
   the cache on and off. *)
let test_crash_reopen_equivalence () =
  let run ~cache_bytes =
    let config =
      Config.make ~block_size:1024 ~flush_size:(4 * 1024) ~merge_delay:0L
        ~rollover_spread:0.0 ~enforce_unique:false ~cache_bytes ()
    in
    let db, clock, vfs = Support.fresh_db ~config () in
    let t = Db.create_table db "usage" (Support.usage_schema ()) ~ttl:None in
    let now = Clock.now clock in
    for i = 0 to 99 do
      Table.insert_row t (row 1L (Int64.of_int i) (Int64.add now (Int64.of_int i)))
    done;
    Table.flush_all t;
    (* Warm the cache (a no-op when disabled), then more unflushed rows. *)
    ignore (all_rows t);
    for i = 100 to 120 do
      Table.insert_row t (row 1L (Int64.of_int i) (Int64.add now (Int64.of_int i)))
    done;
    Lt_vfs.Vfs.crash vfs;
    let db2 = Db.open_ ~config ~clock ~vfs ~dir:"dbroot" () in
    let t2 = Db.table db2 "usage" in
    (* Twice: once cold (populating the cache) and once warm (served from
       it) — both must agree. *)
    let cold = all_rows t2 in
    let warm = all_rows t2 in
    Db.close db2;
    (cold, warm)
  in
  let cached_cold, cached_warm = run ~cache_bytes:(1024 * 1024) in
  let plain_cold, plain_warm = run ~cache_bytes:0 in
  Alcotest.(check int) "flushed prefix survives" 100 (List.length plain_cold);
  Alcotest.(check bool) "cache-off deterministic" true (plain_cold = plain_warm);
  Alcotest.(check bool) "cold reads agree" true (cached_cold = plain_cold);
  Alcotest.(check bool) "warm reads agree" true (cached_warm = plain_cold)

(* A whole-tablet scan must not displace the established hot set: the
   hot block lives in the protected segment, the scan churns probation. *)
let test_table_scan_resistance () =
  let config =
    Config.make ~block_size:1024 ~flush_size:max_int ~merge_delay:0L
      ~rollover_spread:0.0 ~server_row_limit:100_000
      ~cache_bytes:(64 * 1024) ()
  in
  let db, _, _ = Support.fresh_db ~config () in
  let t = Db.create_table db "usage" (Support.usage_schema ()) ~ttl:None in
  (* ~8000 rows -> a few hundred KB of blocks, several times the 64 KB
     cache; the hot query touches only a block or two, which fit in the
     protected segments comfortably. *)
  Table.insert t (List.init 8000 (fun i -> row 1L (Int64.of_int i) (Int64.of_int i)));
  Table.flush_all t;
  Alcotest.(check int) "one tablet" 1 (Table.tablet_count t);
  let cache = Option.get (Db.block_cache db) in
  let hot = Query.prefix [ Value.Int64 1L; Value.Int64 999L ] in
  let run_hot () =
    Alcotest.(check int) "hot row found" 1 (List.length (Table.query t hot).Table.rows)
  in
  (* Twice: first loads the block into probation, second promotes it. *)
  run_hot ();
  run_hot ();
  (* One pass over the whole tablet, far larger than the cache. *)
  Alcotest.(check int) "full scan" 8000 (List.length (all_rows t));
  let before = Bcache.counters cache in
  Alcotest.(check bool) "scan overflowed the cache" true
    (before.Bcache.evictions > 0);
  run_hot ();
  let after = Bcache.counters cache in
  Alcotest.(check int) "hot block still resident: no new misses"
    before.Bcache.misses after.Bcache.misses;
  Alcotest.(check bool) "hot query served from cache" true
    (after.Bcache.hits > before.Bcache.hits)

(* Cache counters survive the stats wire protocol. *)
let test_stats_protocol_roundtrip () =
  let stats = Stats.create () in
  Stats.note_query stats ~scanned:7 ~returned:3;
  let cache =
    {
      Stats.cache_hits = 11;
      cache_misses = 5;
      cache_evictions = 2;
      cache_inserted_bytes = 123_456;
      cache_resident_bytes = 65_536;
    }
  in
  let snap = Stats.read ~cache stats in
  let b = Buffer.create 64 in
  Lt_net.Protocol.write_response b (Lt_net.Protocol.Stats_resp snap);
  let cur = Lt_util.Binio.cursor (Buffer.contents b) in
  (match Lt_net.Protocol.read_response cur with
  | Lt_net.Protocol.Stats_resp got ->
      Alcotest.(check bool) "roundtrips" true (got = snap);
      Alcotest.(check bool) "hit ratio" true
        (abs_float (Stats.cache_hit_ratio got -. 11.0 /. 16.0) < 1e-9)
  | _ -> Alcotest.fail "wrong response");
  Stats.reset stats;
  let zeroed = Stats.read stats in
  Alcotest.(check int) "reset zeroes queries" 0 zeroed.Stats.queries;
  Alcotest.(check bool) "reset leaves cache default" true
    (zeroed.Stats.cache = Stats.no_cache)

let suite =
  [
    Alcotest.test_case "slru: eviction order" `Quick test_eviction_order;
    Alcotest.test_case "slru: capacity accounting" `Quick test_capacity_accounting;
    Alcotest.test_case "slru: scan resistance" `Quick test_scan_resistance_unit;
    Alcotest.test_case "slru: invalidate file" `Quick test_invalidate_file;
    Alcotest.test_case "slru: fresh file ids" `Quick test_file_ids_fresh;
    Alcotest.test_case "engine: invalidation on merge" `Quick test_invalidation_on_merge;
    Alcotest.test_case "engine: invalidation on expiry" `Quick test_invalidation_on_expiry;
    Alcotest.test_case "engine: crash reopen equivalence" `Quick test_crash_reopen_equivalence;
    Alcotest.test_case "engine: scan resistance" `Quick test_table_scan_resistance;
    Alcotest.test_case "stats: protocol roundtrip + reset" `Quick test_stats_protocol_roundtrip;
  ]
