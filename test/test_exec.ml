(* Unit tests for the lib/exec worker pool and staged parallel scan,
   plus a sequential-vs-parallel byte-equality sweep over every query
   shape at the Table level. *)

open Littletable
module Pool = Lt_exec.Pool
module Pscan = Lt_exec.Pscan

exception Boom of int

(* ---- Pool ------------------------------------------------------------ *)

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_map_order () =
  with_pool ~domains:2 (fun pool ->
      let xs = List.init 200 Fun.id in
      Alcotest.(check (list int))
        "map returns results in submission order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let test_pool_exception () =
  with_pool ~domains:1 (fun pool ->
      let fut = Pool.submit pool (fun () -> raise (Boom 7)) in
      (match Pool.await fut with
      | _ -> Alcotest.fail "await should re-raise the task's exception"
      | exception Boom 7 -> ());
      (* A raising task must not kill its worker. *)
      Support.check_int "pool alive after exception" 3
        (Pool.await (Pool.submit pool (fun () -> 3))))

let test_pool_shutdown () =
  let pool = Pool.create ~domains:2 in
  let counter = Atomic.make 0 in
  for _ = 1 to 100 do
    Pool.submit_task pool (fun () -> Atomic.incr counter)
  done;
  Pool.shutdown pool;
  (* Shutdown drains the queue before joining the workers. *)
  Support.check_int "queued tasks drained by shutdown" 100 (Atomic.get counter);
  Pool.shutdown pool (* idempotent *);
  match Pool.submit_task pool (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_pool_reuse () =
  with_pool ~domains:2 (fun pool ->
      (* Many sequential batches through the same pool: the workers are
         long-lived, not per-batch. *)
      for round = 1 to 20 do
        let got = Pool.map pool (fun x -> x + round) [ 1; 2; 3; 4 ] in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          [ 1 + round; 2 + round; 3 + round; 4 + round ]
          got
      done)

let test_pool_shared () =
  let a = Pool.shared ~domains:2 in
  let b = Pool.shared ~domains:2 in
  Support.check_bool "same size yields the same pool" true (a == b);
  Support.check_int "shared pool has the requested size" 2 (Pool.size a);
  let c = Pool.shared ~domains:1 in
  Support.check_bool "different size is a different pool" true (not (a == c))

(* ---- Pscan ----------------------------------------------------------- *)

let drain src =
  let acc = ref [] in
  let rec go () =
    match src () with
    | Some v ->
        acc := v :: !acc;
        go ()
    | None -> ()
  in
  go ();
  List.rev !acc

let test_pscan_order () =
  with_pool ~domains:2 (fun pool ->
      let mk n =
        let i = ref 0 in
        ( n,
          fun () ->
            if !i >= 500 then None
            else begin
              incr i;
              Some ((n * 1000) + !i)
            end )
      in
      let staged, finish =
        Pscan.stage pool ~chunk_rows:7 ~depth:2 [ mk 1; mk 2; mk 3 ]
      in
      let got = List.map (fun (p, src) -> (p, drain src)) staged in
      finish ();
      Support.check_int "priorities preserved" 3 (List.length got);
      List.iter
        (fun (p, vs) ->
          Alcotest.(check (list int))
            (Printf.sprintf "source %d ordered and complete" p)
            (List.init 500 (fun i -> (p * 1000) + i + 1))
            vs)
        got)

let test_pscan_cancel () =
  with_pool ~domains:1 (fun pool ->
      let pulled = Atomic.make 0 in
      let src () =
        Atomic.incr pulled;
        Some (Atomic.get pulled)
      in
      (* An infinite source: only cancellation can stop its producer. *)
      let staged, finish =
        Pscan.stage pool ~chunk_rows:8 ~depth:2 [ (0, src) ]
      in
      let _, s = List.hd staged in
      for _ = 1 to 5 do
        ignore (s ())
      done;
      finish ();
      let after = Atomic.get pulled in
      (* Credit-based flow control bounds production to the buffered
         chunks plus one in-flight chunk. *)
      Support.check_bool
        (Printf.sprintf "production bounded by backpressure (pulled %d)" after)
        true
        (after <= 8 * 4);
      Thread.delay 0.05;
      Support.check_int "no production after finish returned" after
        (Atomic.get pulled))

let test_pscan_failure () =
  with_pool ~domains:2 (fun pool ->
      let i = ref 0 in
      let src () =
        incr i;
        if !i > 10 then raise (Boom !i) else Some !i
      in
      let staged, finish =
        Pscan.stage pool ~chunk_rows:4 ~depth:2 [ (0, src) ]
      in
      let _, s = List.hd staged in
      let seen = ref [] in
      (match
         let rec go () =
           match s () with
           | Some v ->
               seen := v :: !seen;
               go ()
           | None -> ()
         in
         go ()
       with
      | () -> Alcotest.fail "source failure should propagate to consumer"
      | exception Boom 11 -> ());
      finish ();
      Alcotest.(check (list int))
        "rows before the failure all delivered" (List.init 10 (fun i -> i + 1))
        (List.rev !seen))

let test_pscan_empty_sources () =
  with_pool ~domains:1 (fun pool ->
      let staged, finish =
        Pscan.stage pool [ (0, fun () -> None); (1, fun () -> None) ]
      in
      List.iter
        (fun (p, src) ->
          Support.check_int (Printf.sprintf "source %d empty" p) 0
            (List.length (drain src)))
        staged;
      finish ())

(* ---- Sequential vs parallel byte equality ---------------------------- *)

let sec_us s = Int64.of_int (s * 1_000_000)

(* Three insert waves with two flushes: two disk tablets plus a live
   memtable, so scans see three overlapping sources. *)
let build config =
  let db, _clock, _vfs = Support.fresh_db ~config () in
  let tbl = Db.create_table db "usage" (Support.usage_schema ()) ~ttl:None in
  for wave = 0 to 2 do
    for net = 0 to 3 do
      for dev = 0 to 4 do
        for i = 0 to 9 do
          let ts =
            Int64.add Support.ts0 (sec_us ((wave * 100) + (net * 17) + i))
          in
          Table.insert_row tbl
            (Support.usage_row ~network:(Int64.of_int net)
               ~device:(Int64.of_int dev) ~ts
               ~bytes:(Int64.of_int ((wave * 1000) + i))
               ~rate:(float_of_int i /. 7.))
        done
      done
    done;
    if wave < 2 then Table.flush_all tbl
  done;
  (db, tbl)

let query_shapes =
  let open Query in
  let net n = Value.Int64 (Int64.of_int n) in
  let t_lo = Int64.add Support.ts0 (sec_us 30) in
  let t_hi = Int64.add Support.ts0 (sec_us 150) in
  [
    ("all-asc", all);
    ("all-desc", with_direction Desc all);
    ("prefix-net", prefix [ net 2 ]);
    ("prefix-net-desc", with_direction Desc (prefix [ net 2 ]));
    ("prefix-net-dev", prefix [ net 1; Value.Int64 3L ]);
    ("prefix-net-dev-desc", with_direction Desc (prefix [ net 1; Value.Int64 3L ]));
    ("ts-window", between ~ts_min:t_lo ~ts_max:t_hi all);
    ("ts-window-desc", with_direction Desc (between ~ts_min:t_lo ~ts_max:t_hi all));
    ("ts-min-only", between ~ts_min:t_hi all);
    ("ts-max-only", between ~ts_max:t_lo all);
    ("limit-1", with_limit 1 all);
    ("limit-7", with_limit 7 all);
    ("limit-7-desc", with_limit 7 (with_direction Desc all));
    ("prefix-ts-limit", with_limit 5 (between ~ts_min:t_lo (prefix [ net 3 ])));
    ("empty-prefix", prefix [ net 99 ]);
    ("empty-ts", between ~ts_max:(Int64.sub Support.ts0 1L) all);
  ]

let drain_iter tbl q =
  let src = Table.query_iter tbl q in
  let acc = ref [] in
  let rec go () =
    match src () with
    | Some kv ->
        acc := kv :: !acc;
        go ()
    | None -> ()
  in
  go ();
  List.rev !acc

let test_seq_vs_parallel () =
  let db0, t0 = build (Config.make ~query_domains:0 ()) in
  let db2, t2 = build (Config.make ~query_domains:2 ()) in
  Support.check_bool "parallel db has a pool" true (Db.scan_pool db2 <> None);
  Support.check_bool "sequential db has no pool" true (Db.scan_pool db0 = None);
  List.iter
    (fun (name, q) ->
      let seq = drain_iter t0 q and par = drain_iter t2 q in
      Alcotest.(check int)
        (name ^ ": row count") (List.length seq) (List.length par);
      List.iter2
        (fun (k0, r0) (k1, r1) ->
          Support.check_string (name ^ ": encoded key bytes") k0 k1;
          Support.check_bool (name ^ ": row values") true (r0 = r1))
        seq par;
      let rs = Table.query t0 q and rp = Table.query t2 q in
      Support.check_bool (name ^ ": result rows") true (rs.Table.rows = rp.Table.rows);
      Support.check_bool (name ^ ": more_available") true
        (rs.Table.more_available = rp.Table.more_available);
      Support.check_int (name ^ ": scanned") rs.Table.scanned rp.Table.scanned)
    query_shapes;
  (* Latest-row searches cancel their workers on the first hit; results
     must still match the sequential path. *)
  for net = 0 to 4 do
    for dev = 0 to 5 do
      let p = [ Value.Int64 (Int64.of_int net); Value.Int64 (Int64.of_int dev) ] in
      Support.check_bool
        (Printf.sprintf "latest net=%d dev=%d" net dev)
        true
        (Table.latest t0 p = Table.latest t2 p)
    done;
    Support.check_bool
      (Printf.sprintf "latest net=%d (partial prefix)" net)
      true
      (Table.latest t0 [ Value.Int64 (Int64.of_int net) ]
      = Table.latest t2 [ Value.Int64 (Int64.of_int net) ])
  done;
  (* Consumer-side accounting is unchanged by staging. *)
  let s0 = Table.stats t0 and s2 = Table.stats t2 in
  Support.check_int "rows_scanned identical" s0.Stats.rows_scanned
    s2.Stats.rows_scanned;
  Support.check_int "rows_returned identical" s0.Stats.rows_returned
    s2.Stats.rows_returned;
  Support.check_int "queries identical" s0.Stats.queries s2.Stats.queries;
  Db.close db0;
  Db.close db2

let test_fanout_metric () =
  let db, tbl = build (Config.make ~query_domains:2 ()) in
  ignore (Table.query tbl Query.all);
  let rendered = Lt_obs.Obs.render (Db.obs db) in
  Support.check_bool "fanout histogram exported" true
    (let sub = "lt_parallel_scan_fanout" in
     let n = String.length sub and m = String.length rendered in
     let rec go i = i + n <= m && (String.sub rendered i n = sub || go (i + 1)) in
     go 0);
  Db.close db

let suite =
  [
    Alcotest.test_case "pool: map order" `Quick test_pool_map_order;
    Alcotest.test_case "pool: exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "pool: shutdown drains and joins" `Quick
      test_pool_shutdown;
    Alcotest.test_case "pool: reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "pool: shared registry" `Quick test_pool_shared;
    Alcotest.test_case "pscan: per-source order" `Quick test_pscan_order;
    Alcotest.test_case "pscan: cancellation bounds work" `Quick
      test_pscan_cancel;
    Alcotest.test_case "pscan: failure propagation" `Quick test_pscan_failure;
    Alcotest.test_case "pscan: empty sources" `Quick test_pscan_empty_sources;
    Alcotest.test_case "sequential vs parallel byte equality" `Quick
      test_seq_vs_parallel;
    Alcotest.test_case "fanout metric exported" `Quick test_fanout_metric;
  ]
