open Littletable
open Lt_cluster
module Client = Lt_net.Client
module Server = Lt_net.Server
module P = Lt_net.Protocol

(* ---- Placement units (pure) ------------------------------------------- *)

let test_hash_placement () =
  let p = Placement.create ~shards:4 ~policy:(Placement.Hash { vnodes = 64 }) in
  let p' = Placement.create ~shards:4 ~policy:(Placement.Hash { vnodes = 64 }) in
  let hits = Array.make 4 0 in
  for i = 0 to 999 do
    let v = Value.Int64 (Int64.of_int i) in
    let s = Placement.shard_of_value p v in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    Alcotest.(check int) "deterministic" s (Placement.shard_of_value p v);
    Alcotest.(check int) "same across instances" s (Placement.shard_of_value p' v);
    hits.(s) <- hits.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool) (Printf.sprintf "shard %d gets traffic" i) true (n > 0))
    hits;
  (* Key-pinned queries route to one shard; open scans fan out. *)
  Alcotest.(check int) "prefix pins one shard" 1
    (List.length (Placement.shards_of_query p (Query.prefix [ Value.Int64 7L ])));
  Alcotest.(check (list int)) "open scan fans out" [ 0; 1; 2; 3 ]
    (Placement.shards_of_query p Query.all)

let test_range_placement () =
  let p =
    Placement.create ~shards:3
      ~policy:(Placement.Range [ Value.Int64 3L; Value.Int64 5L ])
  in
  let owner v = Placement.shard_of_value p (Value.Int64 v) in
  Alcotest.(check (list int)) "split point ownership" [ 0; 0; 1; 1; 2; 2 ]
    (List.map owner [ 1L; 2L; 3L; 4L; 5L; 6L ]);
  Alcotest.(check (list int)) "pinned value" [ 1 ]
    (Placement.shards_of_query p (Query.prefix [ Value.Int64 4L ]));
  Alcotest.(check (list int)) "everything" [ 0; 1; 2 ]
    (Placement.shards_of_query p Query.all);
  (* A bounded leading-key range touches only the contiguous span. *)
  let bounded =
    { Query.all with
      Query.key_low = Query.Incl [ Value.Int64 2L ];
      key_high = Query.Incl [ Value.Int64 4L ] }
  in
  Alcotest.(check (list int)) "contiguous span" [ 0; 1 ]
    (Placement.shards_of_query p bounded);
  (* Validation. *)
  (match
     Placement.create ~shards:3
       ~policy:(Placement.Range [ Value.Int64 5L; Value.Int64 3L ])
   with
  | (_ : Placement.t) -> Alcotest.fail "descending split points accepted"
  | exception Invalid_argument _ -> ())

let test_placement_overrides () =
  let p = Placement.create ~shards:3 ~policy:(Placement.Hash { vnodes = 16 }) in
  let v = Value.Int64 42L in
  let home = Placement.shard_of_value p v in
  let target = (home + 1) mod 3 in
  let p2 = Placement.with_override p ~value:v ~shard:target in
  Alcotest.(check int) "epoch bumped" 1 (Placement.epoch p2);
  Alcotest.(check int) "override wins" target (Placement.shard_of_value p2 v);
  Alcotest.(check int) "original untouched" home (Placement.shard_of_value p v);
  Alcotest.(check (list int)) "prefix follows override" [ target ]
    (Placement.shards_of_prefix p2 [ v; Value.Int64 9L ]);
  (* Re-overriding the same value replaces, not stacks. *)
  let p3 = Placement.with_override p2 ~value:v ~shard:home in
  Alcotest.(check int) "second override wins" home (Placement.shard_of_value p3 v);
  Alcotest.(check int) "one override entry" 1 (List.length (Placement.overrides p3));
  Alcotest.(check int) "epoch bumps again" 2 (Placement.epoch p3)

(* ---- Multi-server fixtures -------------------------------------------- *)

let row_limit = 8

let node_config = Config.make ~server_row_limit:row_limit ()

type node = { n_dir : string; n_server : Server.t }

let temp_dir () =
  let dir = Filename.temp_file "lt_cluster" "" in
  Sys.remove dir;
  dir

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let start_node () =
  let dir = temp_dir () in
  let db = Db.open_ ~config:node_config ~dir () in
  let server = Server.start ~maintenance_period_s:0.0 ~db ~port:0 () in
  { n_dir = dir; n_server = server }

let stop_node n =
  (try Server.stop n.n_server with _ -> ());
  rm_rf n.n_dir

let endpoint_of n =
  { Cluster_client.host = "127.0.0.1"; port = Server.port n.n_server }

(* [with_cluster ~shards ~policy f] runs [f ~router ~rc ~sc ~nodes]: a
   router (served over TCP) in front of [shards] fresh backends, plus a
   single-node reference server; [rc]/[sc] are clients of each. The
   equality gate drives identical traffic through both and expects
   identical answers. *)
let with_cluster ~shards ~policy f =
  let nodes = List.init shards (fun _ -> start_node ()) in
  let reference = start_node () in
  let cleanup = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun g -> try g () with _ -> ()) !cleanup;
      List.iter stop_node (reference :: nodes))
    (fun () ->
      let cluster =
        Cluster_client.create ~backends:(List.map endpoint_of nodes) ()
      in
      let placement = Placement.create ~shards ~policy in
      let router = Router.create ~row_limit ~placement ~cluster () in
      let rserver = Server.start_custom ~backend:(Router.backend router) ~port:0 () in
      cleanup := (fun () -> Server.stop rserver) :: !cleanup;
      let rc = Client.connect ~port:(Server.port rserver) () in
      let sc = Client.connect ~port:(Server.port reference.n_server) () in
      cleanup := (fun () -> Client.close rc; Client.close sc) :: !cleanup;
      f ~router ~rc ~sc ~nodes)

(* Insert the standard dataset through both paths: 6 networks x 4
   devices x 5 timestamps, batched so each batch spans shards. *)
let load_dataset rc sc =
  let schema = Support.usage_schema () in
  Client.create_table rc "usage" schema ~ttl:None;
  Client.create_table sc "usage" schema ~ttl:None;
  for ts = 1 to 5 do
    let batch =
      List.concat_map
        (fun net ->
          List.map
            (fun dev ->
              Support.usage_row ~network:(Int64.of_int net)
                ~device:(Int64.of_int dev) ~ts:(Int64.of_int ts)
                ~bytes:(Int64.of_int ((net * 100) + (dev * 10) + ts))
                ~rate:0.5)
            [ 1; 2; 3; 4 ])
        [ 1; 2; 3; 4; 5; 6 ]
    in
    Client.insert rc "usage" batch;
    Client.insert sc "usage" batch
  done

(* The gate itself: one page and the fully-paged result must match the
   single node byte for byte (rows, order, more_available). *)
let check_query name ~rc ~sc q =
  let pr = Client.query_page rc "usage" q in
  let ps = Client.query_page sc "usage" q in
  Alcotest.(check bool) (name ^ ": page rows identical") true
    (pr.Client.rows = ps.Client.rows);
  Alcotest.(check bool) (name ^ ": more_available identical")
    ps.Client.more_available pr.Client.more_available;
  Alcotest.(check bool) (name ^ ": paged-through rows identical") true
    (Client.query_all rc "usage" q = Client.query_all sc "usage" q)

let query_shapes =
  let open Query in
  [ ("all", all);
    ("all desc", with_direction Desc all);
    ("limit 1", with_limit 1 all);
    ("limit 3 desc", with_limit 3 (with_direction Desc all));
    ("limit 8 (= page)", with_limit 8 all);
    ("limit 20 (> page)", with_limit 20 all);
    ("limit 200 (> total)", with_limit 200 all);
    ("prefix net", prefix [ Value.Int64 3L ]);
    ("prefix net desc", with_direction Desc (prefix [ Value.Int64 3L ]));
    ("prefix net+dev", prefix [ Value.Int64 3L; Value.Int64 2L ]);
    ("prefix missing net", prefix [ Value.Int64 99L ]);
    ("ts band", between ~ts_min:2L ~ts_max:4L all);
    ("ts band desc limit", with_limit 5 (with_direction Desc (between ~ts_min:2L ~ts_max:4L all)));
    ("prefix + ts band", between ~ts_min:3L (prefix [ Value.Int64 5L ]));
    ("key range", { all with key_low = Incl [ Value.Int64 2L ];
                    key_high = Excl [ Value.Int64 5L ] }) ]

let check_latest name ~rc ~sc prefix =
  Alcotest.(check bool) (name ^ ": latest identical") true
    (Client.latest rc "usage" prefix = Client.latest sc "usage" prefix)

let run_equality_gate ~router ~rc ~sc ~nodes:_ =
  load_dataset rc sc;
  List.iter (fun (name, q) -> check_query name ~rc ~sc q) query_shapes;
  (* latest: pinned prefixes and the full fan-out (max-ts ties across
     shards exercise the larger-key tie-break). *)
  check_latest "latest net" ~rc ~sc [ Value.Int64 4L ];
  check_latest "latest net+dev" ~rc ~sc [ Value.Int64 4L; Value.Int64 1L ];
  check_latest "latest missing" ~rc ~sc [ Value.Int64 99L ];
  check_latest "latest all (tie-break)" ~rc ~sc [];
  (* stats are summed across shards. *)
  let s = Client.stats rc "usage" in
  Alcotest.(check int) "summed rows_inserted" 120 s.Stats.rows_inserted;
  (* placement is visible over the wire. *)
  let pl = Client.placement rc in
  Alcotest.(check int) "backends listed"
    (Placement.shards (Router.placement router))
    (List.length pl.P.pl_backends);
  (* bulk delete routes to the owner(s) and agrees on the count. *)
  let dr = Client.delete_prefix rc "usage" [ Value.Int64 3L ] in
  let ds = Client.delete_prefix sc "usage" [ Value.Int64 3L ] in
  Alcotest.(check int) "delete count identical" ds dr;
  Alcotest.(check int) "deleted a network" 20 dr;
  check_query "post-delete all" ~rc ~sc Query.all;
  check_query "post-delete gap prefix" ~rc ~sc (Query.prefix [ Value.Int64 3L ])

let test_equality_hash () =
  with_cluster ~shards:3 ~policy:(Placement.Hash { vnodes = 64 }) run_equality_gate

let test_equality_range () =
  with_cluster ~shards:3
    ~policy:(Placement.Range [ Value.Int64 3L; Value.Int64 5L ])
    run_equality_gate

(* DDL fans out to every shard: schema evolution through the router
   matches the single node. *)
let test_ddl_fanout () =
  with_cluster ~shards:3 ~policy:(Placement.Hash { vnodes = 64 })
    (fun ~router:_ ~rc ~sc ~nodes ->
      load_dataset rc sc;
      let col =
        { Schema.name = "note"; ctype = Value.T_string;
          default = Value.String "-" }
      in
      Client.add_column rc "usage" col;
      Client.add_column sc "usage" col;
      let (sch_r, _), (sch_s, _) =
        (Client.table_info rc "usage", Client.table_info sc "usage")
      in
      Alcotest.(check bool) "schemas agree" true (Schema.equal sch_r sch_s);
      (* Every backend really got the new column. *)
      List.iter
        (fun n ->
          let c = Client.connect ~port:(Server.port n.n_server) () in
          let sch, _ = Client.table_info c "usage" in
          Alcotest.(check bool) "backend schema evolved" true
            (Schema.equal sch sch_r);
          Client.close c)
        nodes;
      check_query "post-ddl all" ~rc ~sc Query.all;
      Client.drop_table rc "usage";
      Client.drop_table sc "usage";
      Alcotest.(check (list string)) "dropped everywhere" [] (Client.list_tables rc))

(* Rebalance: move one network to another shard mid-flight; results stay
   identical, the epoch bumps, and new inserts land on the new owner. *)
let test_rebalance () =
  with_cluster ~shards:3 ~policy:(Placement.Hash { vnodes = 64 })
    (fun ~router ~rc ~sc ~nodes ->
      load_dataset rc sc;
      let v = Value.Int64 2L in
      let home = Placement.shard_of_value (Router.placement router) v in
      let target = (home + 1) mod 3 in
      let moved = Router.rebalance router ~value:v ~to_shard:target in
      Alcotest.(check int) "whole network moved" 20 moved;
      Alcotest.(check int) "epoch bumped" 1
        (Placement.epoch (Router.placement router));
      Alcotest.(check int) "idempotent: already home" 0
        (Router.rebalance router ~value:v ~to_shard:target);
      List.iter (fun (name, q) -> check_query name ~rc ~sc q) query_shapes;
      (* The rows now physically live on the target shard only. *)
      let on_shard i =
        let c = Client.connect ~port:(Server.port (List.nth nodes i).n_server) () in
        let rows = Client.query_all c "usage" (Query.prefix [ v ]) in
        Client.close c;
        List.length rows
      in
      Alcotest.(check int) "old owner emptied" 0 (on_shard home);
      Alcotest.(check int) "new owner holds the network" 20 (on_shard target);
      (* New inserts follow the override. *)
      let row =
        Support.usage_row ~network:2L ~device:9L ~ts:99L ~bytes:0L ~rate:0.0
      in
      Client.insert rc "usage" [ row ];
      Client.insert sc "usage" [ row ];
      Alcotest.(check int) "insert followed override" 21 (on_shard target);
      check_query "post-rebalance-insert" ~rc ~sc (Query.prefix [ v ]))

(* ---- Insert partial failure across shards ------------------------------ *)

(* Regression: the router used to answer [Insert_ok (List.length rows)]
   for any fan-out whose first shard succeeded, even when a later
   shard's sub-batch failed after earlier shards had already committed.
   Now a mid-batch duplicate on one shard must surface as
   [Partial_insert] naming per-shard landed counts, and retrying just
   the un-landed remainder must converge to the single-node state. *)
let test_router_partial_failure () =
  with_cluster ~shards:3 ~policy:(Placement.Hash { vnodes = 64 })
    (fun ~router ~rc ~sc ~nodes:_ ->
      let schema = Support.usage_schema () in
      Client.create_table rc "usage" schema ~ttl:None;
      Client.create_table sc "usage" schema ~ttl:None;
      (* Two networks owned by different shards, so the batch fans out. *)
      let shard_of net =
        Placement.shard_of_value (Router.placement router) (Value.Int64 net)
      in
      let net_a = 1L in
      let sa = shard_of net_a in
      let net_b =
        let rec find n =
          if shard_of n <> sa then n else find (Int64.add n 1L)
        in
        find 2L
      in
      let sb = shard_of net_b in
      let row net dev ts =
        Support.usage_row ~network:net ~device:dev ~ts ~bytes:0L ~rate:0.0
      in
      (* Pre-existing row on shard [sb]: the batch below collides with it. *)
      let dup = row net_b 1L 1L in
      Client.insert rc "usage" [ dup ];
      Client.insert sc "usage" [ dup ];
      (* Arrival order matters: the single node stops at the duplicate
         (index 3), the router commits each shard's prefix. *)
      let batch =
        [ row net_a 1L 1L; row net_a 2L 1L; row net_b 9L 5L; dup;
          row net_b 3L 2L; row net_a 3L 1L ]
      in
      let landed_r =
        match Client.insert rc "usage" batch with
        | () -> Alcotest.fail "router reported Insert_ok for a partial batch"
        | exception Client.Partial_insert (landed, msg) ->
            Alcotest.(check bool) "router names the duplicate" true
              (Support.contains ~sub:"duplicate" msg);
            landed
      in
      (* Per-shard accounting: all of shard A's sub-batch committed, and
         shard B's prefix before the duplicate. *)
      let label s = Printf.sprintf "shard%d/usage" s in
      Alcotest.(check int) "shard A rows all landed" 3
        (List.assoc (label sa) landed_r);
      Alcotest.(check int) "shard B landed its prefix" 1
        (List.assoc (label sb) landed_r);
      Alcotest.(check int) "no other shards reported" 2 (List.length landed_r);
      (* Single node: same batch stops at the duplicate. *)
      let landed_s =
        match Client.insert sc "usage" batch with
        | () -> Alcotest.fail "single node accepted a duplicate"
        | exception Client.Partial_insert (landed, _) -> landed
      in
      Alcotest.(check int) "single node landed the prefix" 3
        (List.assoc "usage" landed_s);
      (* Each side retries exactly its un-landed remainder (minus the
         duplicate itself); the two states must then be identical. *)
      Client.insert rc "usage" [ row net_b 3L 2L ];
      Client.insert sc "usage" [ row net_b 3L 2L; row net_a 3L 1L ];
      Alcotest.(check int) "converged row count" 6
        (List.length (Client.query_all rc "usage" Query.all));
      check_query "post-partial all" ~rc ~sc Query.all;
      check_query "post-partial net A" ~rc ~sc (Query.prefix [ Value.Int64 net_a ]);
      check_query "post-partial net B" ~rc ~sc (Query.prefix [ Value.Int64 net_b ]);
      (* An all-duplicate batch lands nothing anywhere: plain error, so
         the whole batch is safe to retry. *)
      (match Client.insert rc "usage" [ dup ] with
      | () -> Alcotest.fail "duplicate re-insert accepted"
      | exception Client.Remote_error msg ->
          Alcotest.(check bool) "zero-landed is a plain error" true
            (Support.contains ~sub:"duplicate" msg)))

(* Batched ingest through the router answers queries identically to
   row-at-a-time ingest on a single node: the client-side buffer plus
   [Insert_batch] fan-out change only the wire shape, never the data. *)
let test_router_batched_equality () =
  with_cluster ~shards:3 ~policy:(Placement.Hash { vnodes = 64 })
    (fun ~router:_ ~rc ~sc ~nodes:_ ->
      let schema = Support.usage_schema () in
      Client.create_table rc "usage" schema ~ttl:None;
      Client.create_table sc "usage" schema ~ttl:None;
      for ts = 1 to 5 do
        List.iter
          (fun net ->
            List.iter
              (fun dev ->
                let r =
                  Support.usage_row ~network:(Int64.of_int net)
                    ~device:(Int64.of_int dev) ~ts:(Int64.of_int ts)
                    ~bytes:(Int64.of_int ((net * 100) + (dev * 10) + ts))
                    ~rate:0.5
                in
                (* Routed side buffers; reference side goes row by row. *)
                Client.buffered_insert rc "usage" [ r ];
                Client.insert sc "usage" [ r ])
              [ 1; 2; 3; 4 ])
          [ 1; 2; 3; 4; 5; 6 ];
        (* Flush mid-stream on some rounds so batches of several sizes
           cross the wire, with a straggler buffer left for the end. *)
        if ts mod 2 = 0 then Client.flush rc
      done;
      Client.flush rc;
      Alcotest.(check int) "buffer drained" 0 (Client.pending rc);
      List.iter (fun (name, q) -> check_query name ~rc ~sc q) query_shapes;
      check_latest "latest net" ~rc ~sc [ Value.Int64 4L ];
      let s = Client.stats rc "usage" in
      Alcotest.(check int) "all rows inserted" 120 s.Stats.rows_inserted)

(* ---- Replica failover -------------------------------------------------- *)

(* Kill the only backend; reads fail over to its warm spare and lose
   exactly the rows that never reached durable storage before the last
   sync (§3.4.1's bounded loss). *)
let test_replica_failover () =
  let primary = start_node () in
  let spare_dir = temp_dir () in
  let cleanup = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun g -> try g () with _ -> ()) !cleanup;
      stop_node primary;
      rm_rf spare_dir)
    (fun () ->
      let pc = Client.connect ~port:(Server.port primary.n_server) () in
      Client.create_table pc "usage" (Support.usage_schema ()) ~ttl:None;
      let row i =
        Support.usage_row ~network:1L ~device:(Int64.of_int i)
          ~ts:(Int64.of_int i) ~bytes:0L ~rate:0.0
      in
      Client.insert pc "usage" (List.init 6 (fun i -> row (i + 1)));
      Client.flush_before pc "usage" ~ts:100L;
      (* Spare syncs the durable state... *)
      let replica =
        Replica.start ~config:node_config ~period_s:0.0
          ~vfs:(Lt_vfs.Vfs.real ()) ~primary_dir:primary.n_dir ~dir:spare_dir ()
      in
      cleanup := (fun () -> Replica.stop replica) :: !cleanup;
      Replica.sync_now replica;
      (* ...then the primary takes three more rows it never flushes. *)
      Client.insert pc "usage" (List.init 3 (fun i -> row (i + 7)));
      Client.close pc;
      let rspare = Server.start_custom ~backend:(Replica.backend replica) ~port:0 () in
      cleanup := (fun () -> Server.stop rspare) :: !cleanup;
      (* Probing a spare's placement is metadata, not data: it must not
         promote and end the sync loop. *)
      let probe = Client.connect ~port:(Server.port rspare) () in
      Alcotest.(check string) "spare answers placement probes" "spare"
        (Client.placement probe).P.pl_policy;
      Client.close probe;
      Alcotest.(check bool) "probe did not promote" false
        (Replica.promoted replica);
      let obs = Lt_obs.Obs.create ~clock:Lt_util.Clock.system () in
      let cluster =
        Cluster_client.create ~obs
          ~replicas:[ (0, { Cluster_client.host = "127.0.0.1";
                            port = Server.port rspare }) ]
          ~backends:[ endpoint_of primary ] ()
      in
      let placement =
        Placement.create ~shards:1 ~policy:(Placement.Hash { vnodes = 16 })
      in
      let router = Router.create ~obs ~row_limit ~placement ~cluster () in
      let rserver = Server.start_custom ~backend:(Router.backend router) ~port:0 () in
      cleanup := (fun () -> Server.stop rserver) :: !cleanup;
      let rc = Client.connect ~port:(Server.port rserver) () in
      cleanup := (fun () -> Client.close rc) :: !cleanup;
      Alcotest.(check int) "all rows before the crash" 9
        (List.length (Client.query_all rc "usage" Query.all));
      (* Primary dies. Server.stop flushes, but the spare never resyncs:
         it serves what the last completed sync captured. *)
      let primary_peer = Printf.sprintf "127.0.0.1:%d" (Server.port primary.n_server) in
      Server.stop primary.n_server;
      let rows = Client.query_all rc "usage" Query.all in
      Alcotest.(check int) "flushed+synced rows survive" 6 (List.length rows);
      Alcotest.(check bool) "only un-synced rows lost" true
        (List.map (fun r -> Support.int64_of_cell r.(1)) rows
        = List.init 6 (fun i -> Int64.of_int (i + 1)));
      Alcotest.(check bool) "shard marked over" true
        (Cluster_client.on_replica cluster 0);
      Alcotest.(check bool) "failover counted" true
        (Lt_obs.Metrics.Counter.value
           (Lt_obs.Obs.failovers obs ~backend:primary_peer)
        >= 1);
      Alcotest.(check bool) "spare promoted" true (Replica.promoted replica);
      (* Sticky: the next read goes straight to the replica. *)
      Alcotest.(check int) "reads keep working" 6
        (List.length (Client.query_all rc "usage" Query.all)))

(* ---- Distributed observability ----------------------------------------- *)

(* Sum every series value in a Prometheus text whose line starts with
   [prefix] (values here are integer counts). *)
let sum_series text ~prefix =
  let plen = String.length prefix in
  String.split_on_char '\n' text
  |> List.fold_left
       (fun acc line ->
         if String.length line > plen && String.sub line 0 plen = prefix then
           match String.rindex_opt line ' ' with
           | Some i ->
               acc
               + int_of_float
                   (float_of_string
                      (String.sub line (i + 1) (String.length line - i - 1)))
           | None -> acc
         else acc)
       0

(* An obs-enabled router + client over three obs-enabled backends: a
   fan-out query yields (a) one reassembled trace tree via Get_trace,
   (b) a profile whose per-shard breakdown sums to the totals, and (c)
   a federated /metrics document whose aggregate series equal the sum
   of the shard-labeled ones. *)
let test_distributed_observability () =
  let shards = 3 in
  let nodes = List.init shards (fun _ -> start_node ()) in
  let cleanup = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun g -> try g () with _ -> ()) !cleanup;
      List.iter stop_node nodes)
    (fun () ->
      let robs = Lt_obs.Obs.create ~clock:Lt_util.Clock.system () in
      let cluster =
        Cluster_client.create ~obs:robs
          ~backends:(List.map endpoint_of nodes) ()
      in
      let placement =
        Placement.create ~shards ~policy:(Placement.Hash { vnodes = 64 })
      in
      let router = Router.create ~obs:robs ~row_limit ~placement ~cluster () in
      let rserver =
        Server.start_custom ~backend:(Router.backend router) ~port:0 ()
      in
      cleanup := (fun () -> Server.stop rserver) :: !cleanup;
      let cobs = Lt_obs.Obs.create ~clock:Lt_util.Clock.system () in
      let rc = Client.connect ~obs:cobs ~port:(Server.port rserver) () in
      cleanup := (fun () -> Client.close rc) :: !cleanup;
      Client.create_table rc "usage" (Support.usage_schema ()) ~ttl:None;
      for ts = 1 to 5 do
        Client.insert rc "usage"
          (List.concat_map
             (fun net ->
               List.map
                 (fun dev ->
                   Support.usage_row ~network:(Int64.of_int net)
                     ~device:(Int64.of_int dev) ~ts:(Int64.of_int ts)
                     ~bytes:(Int64.of_int ((net * 100) + (dev * 10) + ts))
                     ~rate:0.5)
                 [ 1; 2; 3; 4 ])
             [ 1; 2; 3; 4; 5; 6 ])
      done;
      (* (b) Profiled fan-out query: the k-way merge pulls a first page
         from every shard, so the breakdown covers all of them. *)
      let page = Client.query_page ~profile:true rc "usage" Query.all in
      let module Profile = Lt_obs.Profile in
      (match page.Client.profile with
      | None -> Alcotest.fail "routed query must honour the profile flag"
      | Some p ->
          Alcotest.(check int) "profile covers every shard" shards
            (List.length p.Profile.p_shards);
          Alcotest.(check int) "profiled returned = page rows"
            (List.length page.Client.rows) p.Profile.p_rows_returned;
          Alcotest.(check int) "shard scans sum to the total"
            p.Profile.p_rows_scanned
            (List.fold_left
               (fun acc (_, s) -> acc + s.Profile.p_rows_scanned)
               0 p.Profile.p_shards);
          Alcotest.(check bool) "total spans the stages" true
            (p.Profile.p_total_us >= 0L
            && p.Profile.p_plan_us >= 0L
            && p.Profile.p_scan_us >= 0L));
      (* (a) The same request's trace, reassembled across processes into
         a single tree: exactly one root (the router's Request span —
         its parent, the client's root span, lives client-side), with
         Route, Backend, and the backends' Request spans beneath it. *)
      let module Trace = Lt_obs.Trace in
      (match Client.last_trace rc with
      | None -> Alcotest.fail "an obs-enabled client records its trace id"
      | Some (hi, lo) ->
          let spans = Client.trace rc (hi, lo) in
          Alcotest.(check bool) "every span belongs to the trace" true
            (spans <> []
            && List.for_all
                 (fun sp ->
                   match sp.Trace.sp_ctx with
                   | Some cx -> Trace.same_trace ~hi ~lo cx
                   | None -> false)
                 spans);
          let has op = List.exists (fun sp -> sp.Trace.sp_op = op) spans in
          Alcotest.(check bool) "router Route span present" true (has Trace.Route);
          Alcotest.(check bool) "backend round trips spanned" true
            (has Trace.Backend);
          let count op =
            List.length (List.filter (fun sp -> sp.Trace.sp_op = op) spans)
          in
          (* One Request span per backend round trip (each Backend span
             pairs with the backend's own Request span), plus the
             router's own; every shard was pulled at least once. *)
          Alcotest.(check int) "request spans: router + backend round trips"
            (count Trace.Backend + 1)
            (count Trace.Request);
          Alcotest.(check bool) "at least one round trip per shard" true
            (count Trace.Backend >= shards);
          let ids = Hashtbl.create 32 in
          List.iter
            (fun sp ->
              match sp.Trace.sp_ctx with
              | Some cx -> Hashtbl.replace ids cx.Trace.cx_span ()
              | None -> ())
            spans;
          let roots =
            List.filter
              (fun sp ->
                match sp.Trace.sp_ctx with
                | Some cx -> not (Hashtbl.mem ids cx.Trace.cx_parent)
                | None -> true)
              spans
          in
          (match roots with
          | [ root ] ->
              Alcotest.(check bool) "the tree's root is the router request"
                true
                (root.Trace.sp_op = Trace.Request)
          | _ ->
              Alcotest.failf "expected one trace root, got %d"
                (List.length roots)));
      (* (c) Federated metrics through the router: shard labels present,
         counters aggregate, and for histograms the merged _count equals
         the sum of the per-shard _counts. *)
      let text = Client.metrics rc in
      let contains sub = Support.contains ~sub text in
      List.iter
        (fun i ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d labeled" i)
            true
            (contains (Printf.sprintf "shard=\"%d\"" i)))
        (List.init shards Fun.id);
      Alcotest.(check bool) "router's own series labeled" true
        (contains "shard=\"router\"");
      Alcotest.(check int) "counter aggregate sums the fleet" 120
        (sum_series text ~prefix:"lt_rows_inserted_total{table=\"usage\"} ");
      let agg =
        sum_series text
          ~prefix:"lt_insert_duration_seconds_count{table=\"usage\"} "
      in
      let per_shard =
        sum_series text
          ~prefix:"lt_insert_duration_seconds_count{table=\"usage\",shard="
      in
      Alcotest.(check bool) "insert histograms observed" true (agg > 0);
      Alcotest.(check int) "federated histogram merge equals sum" agg per_shard)

(* ---- Client backoff ---------------------------------------------------- *)

let dead_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let test_client_backoff () =
  let port = dead_port () in
  let obs = Lt_obs.Obs.create ~clock:Lt_util.Clock.system () in
  let c = Client.create ~obs ~connect_timeout:1.0 ~port () in
  Alcotest.(check bool) "starts disconnected" false (Client.connected c);
  (match Client.ping c with
  | () -> Alcotest.fail "ping without a connection"
  | exception Client.Disconnected -> ());
  let clock = Lt_util.Clock.system in
  let t0 = Lt_util.Clock.now clock in
  (match Client.reconnect ~max_attempts:3 c with
  | () -> Alcotest.fail "connected to a dead port"
  | exception Client.Remote_error _ -> ());
  let elapsed_us = Int64.sub (Lt_util.Clock.now clock) t0 in
  Alcotest.(check bool)
    "backoff slept between attempts" true (elapsed_us >= 140_000L);
  Alcotest.(check int) "every attempt counted" 3
    (Lt_obs.Metrics.Counter.value
       (Lt_obs.Obs.client_reconnects obs ~peer:(Client.peer c)));
  Alcotest.(check bool) "still disconnected" false (Client.connected c)

let suite =
  [
    ("hash placement", `Quick, test_hash_placement);
    ("range placement", `Quick, test_range_placement);
    ("placement overrides", `Quick, test_placement_overrides);
    ("router equality gate (hash)", `Quick, test_equality_hash);
    ("router equality gate (range)", `Quick, test_equality_range);
    ("ddl fans out", `Quick, test_ddl_fanout);
    ("rebalance", `Quick, test_rebalance);
    ("router partial failure reports per-shard landed rows", `Quick,
      test_router_partial_failure);
    ("router batched ingest equality", `Quick, test_router_batched_equality);
    ("replica failover", `Quick, test_replica_failover);
    ("distributed observability", `Quick, test_distributed_observability);
    ("client reconnect backoff", `Quick, test_client_backoff);
  ]
