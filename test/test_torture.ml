(* Crash-point torture sweeps plus regression tests for the three
   durability bugs the harness flushed out: unsynced directory entries
   losing published files, a transient flush failure wedging the table,
   and a corrupt tablet making the whole table unopenable. *)

open Littletable
open Lt_util
module Torture = Lt_torture.Torture
module Vfs = Lt_vfs.Vfs

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)
(* ------------------------------------------------------------------ *)

let sweep_mode mode seed =
  List.iter
    (fun w ->
      let n = Torture.count_points ~seed w in
      Alcotest.(check bool)
        (Printf.sprintf "%s has durability points" (Torture.workload_name w))
        true (n > 0);
      for k = 0 to n - 1 do
        match Torture.execute ~inject:(mode, k) ~seed w with
        | Ok () -> ()
        | Error reason ->
            Alcotest.failf "%s/%s seed=%Ld k=%d: %s" (Torture.workload_name w)
              (Torture.mode_name mode) seed k reason
      done)
    Torture.all_workloads

(* Crash-equivalence property: for every durability point of every
   workload, crashing there and reopening yields a state equivalent to
   some flush-graph-consistent prefix of the acknowledged inserts. *)
let test_crash_sweep () = sweep_mode Torture.Crash 7L

(* Io_error sweep: a single transient fault at any durability point must
   leave the engine recoverable — a subsequent flush_all lands every
   attempted row durably. *)
let test_io_error_sweep () = sweep_mode Torture.Io_err 11L

let test_sweep_api () =
  let runs, failures = Torture.sweep ~seed:42L () in
  let expected =
    2
    * List.fold_left
        (fun acc w -> acc + Torture.count_points ~seed:42L w)
        0 Torture.all_workloads
  in
  Alcotest.(check int) "sweep covers every point in both modes" expected runs;
  List.iter
    (fun f -> Alcotest.failf "%s" (Format.asprintf "%a" Torture.pp_failure f))
    failures

let test_replay_is_deterministic () =
  (* count_points is stable, and replay produces the same verdict as the
     sweep's own execution of the same (seed, k). *)
  let w = Torture.Merge in
  let n = Torture.count_points ~seed:5L w in
  Alcotest.(check int) "stable point count" n (Torture.count_points ~seed:5L w);
  let k = n / 2 in
  let a = Torture.execute ~inject:(Torture.Crash, k) ~seed:5L w in
  let b = Torture.replay ~seed:5L w Torture.Crash k in
  Alcotest.(check bool) "replay matches execute" true (a = b)

(* ------------------------------------------------------------------ *)
(* Named bug 1: unsynced directory entries (descriptor/tablet publish)  *)
(* ------------------------------------------------------------------ *)

let schema = Support.usage_schema ()

let config =
  Config.make ~block_size:1024 ~flush_size:2048 ~merge_delay:0L
    ~rollover_spread:0.0 ~enforce_unique:false ()

let insert t clock i =
  Table.insert_row t
    (Support.usage_row ~network:1L ~device:(Int64.of_int i)
       ~ts:(Int64.add (Clock.now clock) (Int64.of_int i))
       ~bytes:(Int64.of_int i) ~rate:0.0)

let survivors vfs clock =
  let t =
    Table.open_ vfs ~clock ~config ~dir:"dbroot/usage" ~name:"usage"
  in
  let rows = (Table.query t Query.all).Table.rows in
  let st = Table.stats t in
  Table.close t;
  ( List.sort compare (List.map (fun r -> Support.int64_of_cell r.(3)) rows),
    st )

(* Before the fix, Descriptor.save renamed the new descriptor into place
   without fsyncing the directory, so a crash reverted the rename and
   the flushed rows vanished with it. The memory VFS models exactly
   that: directory entries only survive a crash after sync_dir. *)
let test_descriptor_publish_survives_crash () =
  let vfs = Vfs.memory () in
  let clock = Clock.manual ~start:Support.ts0 () in
  let t =
    Table.create vfs ~clock ~config ~dir:"dbroot/usage" ~name:"usage" schema
      ~ttl:None
  in
  for i = 0 to 9 do insert t clock i done;
  Table.flush_all t;
  Table.close t;
  Vfs.crash vfs;
  Alcotest.(check bool)
    "descriptor entry survived the crash" true
    (Descriptor.exists vfs ~dir:"dbroot/usage");
  let seqs, _ = survivors vfs clock in
  Alcotest.(check int) "all flushed rows survived" 10 (List.length seqs)

(* ------------------------------------------------------------------ *)
(* Named bug 2: transient flush failure must requeue, not wedge         *)
(* ------------------------------------------------------------------ *)

let test_flush_retry_requeues () =
  let armed = ref false in
  let base = Vfs.memory () in
  let vfs =
    Vfs.faulty ~should_fail:(fun ~op ~path:_ -> !armed && op = "create") base
  in
  let clock = Clock.manual ~start:Support.ts0 () in
  let t =
    Table.create vfs ~clock ~config ~dir:"dbroot/usage" ~name:"usage" schema
      ~ttl:None
  in
  armed := true;
  (* Enough inserts to roll the memtable over several times; every flush
     attempt from the insert path fails, yet no insert may raise. *)
  for i = 0 to 199 do insert t clock i done;
  let st = Table.stats t in
  Alcotest.(check bool) "a flush retry was recorded" true
    (st.Stats.flush_retries >= 1);
  Alcotest.(check int) "no flush completed while the fault held" 0
    st.Stats.flushes;
  (* Backoff is bounded: with the clock frozen, the failed attempt is
     not retried on every insert. *)
  let retries_frozen = st.Stats.flush_retries in
  for i = 200 to 219 do insert t clock i done;
  Alcotest.(check int) "backoff suppressed further attempts" retries_frozen
    (Table.stats t).Stats.flush_retries;
  Alcotest.(check int) "all rows still queryable from memory" 220
    (List.length (Table.query t Query.all).Table.rows);
  (* Fault clears; after the backoff window the backlog drains. *)
  armed := false;
  Clock.advance clock Clock.hour;
  Table.maintenance t;
  Alcotest.(check bool) "backlog flushed after recovery" true
    ((Table.stats t).Stats.flushes >= 1);
  Table.flush_all t;
  Table.close t;
  Vfs.crash base;
  let seqs, _ = survivors base clock in
  Alcotest.(check int) "every row became durable" 220 (List.length seqs)

(* ------------------------------------------------------------------ *)
(* Named bug 3: corrupt tablet quarantined at open                      *)
(* ------------------------------------------------------------------ *)

let test_corrupt_tablet_quarantined () =
  let vfs = Vfs.memory () in
  let clock = Clock.manual ~start:Support.ts0 () in
  let t =
    Table.create vfs ~clock ~config ~dir:"dbroot/usage" ~name:"usage" schema
      ~ttl:None
  in
  for i = 0 to 9 do insert t clock i done;
  Table.flush_all t;
  for i = 10 to 19 do insert t clock i done;
  Table.flush_all t;
  let tablets =
    List.map (fun m -> m.Descriptor.file) (Table.tablets t)
  in
  Alcotest.(check int) "two tablets on disk" 2 (List.length tablets);
  Table.close t;
  (* Smash the second tablet: truncate it to garbage. *)
  let victim = Filename.concat "dbroot/usage" (List.nth tablets 1) in
  Vfs.delete vfs victim;
  let f = Vfs.create vfs victim in
  Vfs.append vfs f "not a tablet";
  Vfs.fsync vfs f;
  Vfs.close vfs f;
  (* Before the fix this open raised Binio.Corrupt and the whole table
     (including the nine hundred healthy tablets it might have) was
     unreadable. Now the bad tablet is set aside and the rest serves. *)
  let seqs, st = survivors vfs clock in
  Alcotest.(check int) "one tablet quarantined" 1 st.Stats.tablets_quarantined;
  Alcotest.(check int) "healthy tablet still serves" 10 (List.length seqs);
  Alcotest.(check bool) "quarantine file kept for forensics" true
    (List.exists
       (fun e -> Filename.check_suffix e ".quarantine")
       (Vfs.readdir vfs "dbroot/usage"));
  (* The rewritten descriptor no longer references the bad tablet, so a
     second open is clean. *)
  let _, st2 = survivors vfs clock in
  Alcotest.(check int) "second open quarantines nothing" 0
    st2.Stats.tablets_quarantined

(* ------------------------------------------------------------------ *)
(* Named regression: a crash mid columnar rewrite must leave the old    *)
(* row-major tablets referenced and readable                            *)
(* ------------------------------------------------------------------ *)

(* Deterministic scenario: flush two row-major generations of old data
   under [columnar_age = 0], then merge — the merge rewrites them
   column-major. Run it fault-free once to locate the first operation
   of the merge phase, then replay with a crash right after the rewrite
   starts (blocks of the columnar output partially written, descriptor
   not yet swapped). Reopening must serve every flushed row from the
   original row tablets. *)
let test_columnar_rewrite_crash_keeps_row_tablets () =
  let cfg =
    Config.make ~block_size:1024 ~flush_size:2048 ~merge_delay:0L
      ~rollover_spread:0.0 ~enforce_unique:false ~cache_bytes:0
      ~obs_enabled:false ~columnar_age:0L ()
  in
  let start = 1_720_000_000_000_000L in
  let run inject =
    let base = Vfs.memory () in
    let counter, vfs = Vfs.counting ~inject base in
    let clock = Clock.manual ~start () in
    let t =
      Table.create vfs ~clock ~config:cfg ~dir:"dbroot/usage" ~name:"usage"
        schema ~ttl:None
    in
    let old_ts i = Int64.add (Int64.sub start Clock.day) (Int64.of_int i) in
    (try
       for i = 0 to 9 do
         Table.insert_row t
           (Support.usage_row ~network:1L ~device:(Int64.of_int i)
              ~ts:(old_ts i) ~bytes:(Int64.of_int i) ~rate:0.0)
       done;
       Table.flush_all t;
       for i = 10 to 19 do
         Table.insert_row t
           (Support.usage_row ~network:1L ~device:(Int64.of_int i)
              ~ts:(old_ts i) ~bytes:(Int64.of_int i) ~rate:0.0)
       done;
       Table.flush_all t
     with Vfs.Crash_point _ -> Alcotest.fail "crashed before the merge phase");
    let merge_starts_at = Vfs.op_count counter in
    let crashed =
      try
        while Table.merge_step t do
          ()
        done;
        false
      with Vfs.Crash_point _ -> true
    in
    (base, clock, merge_starts_at, crashed)
  in
  (* Fault-free probe: find where the merge phase begins and check the
     rewrite actually went columnar. *)
  let base0, clock0, merge_at, crashed0 = run Vfs.No_fault in
  Alcotest.(check bool) "probe run does not crash" false crashed0;
  let t0 =
    Table.open_ base0 ~clock:clock0 ~config:cfg ~dir:"dbroot/usage"
      ~name:"usage"
  in
  Alcotest.(check bool) "probe run rewrote column-major" true
    (List.exists
       (fun (m : Descriptor.tablet_meta) -> m.Descriptor.columnar)
       (Table.tablets t0));
  Table.close t0;
  (* Crash on the second operation of the rewrite: output block bytes
     are in flight, the descriptor still references the row tablets. *)
  let base, clock, _, crashed = run (Vfs.Crash_at (merge_at + 1)) in
  Alcotest.(check bool) "merge crashed mid-rewrite" true crashed;
  Vfs.crash base;
  let t =
    Table.open_ base ~clock ~config:cfg ~dir:"dbroot/usage" ~name:"usage"
  in
  let st = Table.stats t in
  Alcotest.(check int) "no tablet quarantined" 0 st.Stats.tablets_quarantined;
  Alcotest.(check bool) "old tablets still row-major" true
    (List.for_all
       (fun (m : Descriptor.tablet_meta) -> not m.Descriptor.columnar)
       (Table.tablets t));
  let rows = (Table.query t Query.all).Table.rows in
  Alcotest.(check int) "every flushed row survives in row tablets" 20
    (List.length rows);
  (* The table is not wedged: the interrupted rewrite retries cleanly. *)
  while Table.merge_step t do
    ()
  done;
  Alcotest.(check bool) "retried merge completes column-major" true
    (List.exists
       (fun (m : Descriptor.tablet_meta) -> m.Descriptor.columnar)
       (Table.tablets t));
  let rows' = (Table.query t Query.all).Table.rows in
  Alcotest.(check bool) "rows identical after the retried rewrite" true
    (rows = rows');
  Table.close t

let suite =
  [
    Alcotest.test_case "crash sweep over all workloads" `Quick test_crash_sweep;
    Alcotest.test_case "io-error sweep over all workloads" `Quick
      test_io_error_sweep;
    Alcotest.test_case "sweep api covers both modes" `Quick test_sweep_api;
    Alcotest.test_case "replay is deterministic" `Quick
      test_replay_is_deterministic;
    Alcotest.test_case "descriptor publish survives crash" `Quick
      test_descriptor_publish_survives_crash;
    Alcotest.test_case "transient flush failure requeues" `Quick
      test_flush_retry_requeues;
    Alcotest.test_case "crash mid columnar rewrite keeps row tablets" `Quick
      test_columnar_rewrite_crash_keeps_row_tablets;
    Alcotest.test_case "corrupt tablet quarantined at open" `Quick
      test_corrupt_tablet_quarantined;
  ]
