open Lt_vfs

let test_memory_basic () =
  let v = Vfs.memory () in
  let f = Vfs.create v "dir/a.txt" in
  Vfs.append v f "hello ";
  Vfs.append v f "world";
  Alcotest.(check int) "size" 11 (Vfs.file_size v f);
  Alcotest.(check string) "pread" "world" (Vfs.pread v f ~off:6 ~len:5);
  Alcotest.(check string) "read_all" "hello world" (Vfs.read_all v "dir/a.txt");
  Alcotest.(check bool) "exists" true (Vfs.exists v "dir/a.txt");
  Alcotest.(check bool) "missing" false (Vfs.exists v "dir/b.txt");
  Vfs.delete v "dir/a.txt";
  Alcotest.(check bool) "deleted" false (Vfs.exists v "dir/a.txt")

let test_memory_pread_bounds () =
  let v = Vfs.memory () in
  let f = Vfs.create v "x" in
  Vfs.append v f "abc";
  match Vfs.pread v f ~off:2 ~len:5 with
  | (_ : string) -> Alcotest.fail "expected Io_error"
  | exception Vfs.Io_error _ -> ()

let test_memory_readdir () =
  let v = Vfs.memory () in
  ignore (Vfs.create v "root/t1/DESCRIPTOR");
  ignore (Vfs.create v "root/t1/000001.tab");
  ignore (Vfs.create v "root/t2/DESCRIPTOR");
  ignore (Vfs.create v "root/top.txt");
  Alcotest.(check (list string)) "root entries" [ "t1"; "t2"; "top.txt" ]
    (Vfs.readdir v "root");
  Alcotest.(check (list string)) "table entries" [ "000001.tab"; "DESCRIPTOR" ]
    (Vfs.readdir v "root/t1")

let test_rename_replaces () =
  let v = Vfs.memory () in
  let f = Vfs.create v "a" in
  Vfs.append v f "new";
  let g = Vfs.create v "b" in
  Vfs.append v g "old";
  Vfs.rename v ~src:"a" ~dst:"b";
  Alcotest.(check string) "replaced" "new" (Vfs.read_all v "b");
  Alcotest.(check bool) "source gone" false (Vfs.exists v "a")

let test_crash_durability () =
  let v = Vfs.memory () in
  (* File 1: synced fully (content + directory entry) -> survives. *)
  let f1 = Vfs.create v "synced" in
  Vfs.append v f1 "durable";
  Vfs.fsync v f1;
  (* File 2: synced then appended more -> truncates to synced prefix. *)
  let f2 = Vfs.create v "partial" in
  Vfs.append v f2 "keep";
  Vfs.fsync v f2;
  Vfs.append v f2 "-lost";
  (* File 3: never synced -> disappears. *)
  let f3 = Vfs.create v "volatile" in
  Vfs.append v f3 "gone";
  (* File 4: published by rename + directory sync -> durable at
     rename-time content. *)
  let f4 = Vfs.create v "tmp" in
  Vfs.append v f4 "renamed";
  Vfs.rename v ~src:"tmp" ~dst:"published";
  Vfs.sync_dir v ".";
  Vfs.crash v;
  Alcotest.(check string) "synced survives" "durable" (Vfs.read_all v "synced");
  Alcotest.(check string) "partial truncated" "keep" (Vfs.read_all v "partial");
  Alcotest.(check bool) "unsynced gone" false (Vfs.exists v "volatile");
  Alcotest.(check string) "renamed survives" "renamed" (Vfs.read_all v "published")

let test_entry_durability () =
  let v = Vfs.memory () in
  (* fsync alone does not persist a directory entry in a never-synced
     directory... *)
  let f = Vfs.create v "d/no-entry" in
  Vfs.append v f "x";
  Vfs.fsync v f;
  (* ...whereas fsync + sync_dir does. *)
  let g = Vfs.create v "d/with-entry" in
  Vfs.append v g "y";
  Vfs.fsync v g;
  Vfs.sync_dir v "d";
  (* An entry created after the sync_dir is again not durable. *)
  let h = Vfs.create v "d/late" in
  Vfs.append v h "z";
  Vfs.fsync v h;
  Vfs.crash v;
  Alcotest.(check bool) "no-entry file survives (same-dir sync covers it)"
    true
    (Vfs.exists v "d/no-entry");
  Alcotest.(check string) "synced-entry survives" "y" (Vfs.read_all v "d/with-entry");
  Alcotest.(check bool) "late entry gone" false (Vfs.exists v "d/late")

let test_unsynced_delete_resurrects () =
  let v = Vfs.memory () in
  let f = Vfs.create v "d/a" in
  Vfs.append v f "alive";
  Vfs.fsync v f;
  Vfs.sync_dir v "d";
  (* Delete without syncing the directory: the removal is not durable,
     so a crash brings the file back. *)
  Vfs.delete v "d/a";
  Alcotest.(check bool) "gone before crash" false (Vfs.exists v "d/a");
  Vfs.crash v;
  Alcotest.(check string) "resurrected" "alive" (Vfs.read_all v "d/a");
  (* Delete + sync_dir: the removal sticks. *)
  Vfs.delete v "d/a";
  Vfs.sync_dir v "d";
  Vfs.crash v;
  Alcotest.(check bool) "durably deleted" false (Vfs.exists v "d/a")

let test_unsynced_rename_reverts () =
  let v = Vfs.memory () in
  let f = Vfs.create v "d/old" in
  Vfs.append v f "vOLD";
  Vfs.fsync v f;
  Vfs.sync_dir v "d";
  let g = Vfs.create v "d/tmp" in
  Vfs.append v g "vNEW";
  Vfs.fsync v g;
  (* Rename over the durable file without a directory sync: a crash
     rolls the swap back. *)
  Vfs.rename v ~src:"d/tmp" ~dst:"d/old";
  Alcotest.(check string) "new before crash" "vNEW" (Vfs.read_all v "d/old");
  Vfs.crash v;
  Alcotest.(check string) "reverted" "vOLD" (Vfs.read_all v "d/old");
  Alcotest.(check bool) "tmp not resurrected" false (Vfs.exists v "d/tmp")

let test_counting_crash_point () =
  let base = Vfs.memory () in
  let workload v =
    let f = Vfs.create v "w/a" in
    (* point 0: create *)
    Vfs.append v f "data";
    (* point 1: append *)
    Vfs.fsync v f;
    (* point 2: fsync *)
    Vfs.rename v ~src:"w/a" ~dst:"w/b";
    (* point 3: rename *)
    Vfs.sync_dir v "w"
    (* point 4: sync_dir *)
  in
  let c, v = Vfs.counting base in
  workload v;
  Alcotest.(check int) "5 durability points" 5 (Vfs.op_count c);
  Alcotest.(check (list (pair string string)))
    "op log"
    [ ("create", "w/a"); ("append", "w/a"); ("fsync", "w/a");
      ("rename", "w/a"); ("sync_dir", "w") ]
    (Vfs.op_log c);
  (* Crash at the rename: file a is durable but never renamed. *)
  let base2 = Vfs.memory () in
  let c2, v2 = Vfs.counting ~inject:(Vfs.Crash_at 3) base2 in
  (match workload v2 with
  | () -> Alcotest.fail "expected Crash_point"
  | exception Vfs.Crash_point k -> Alcotest.(check int) "crash point" 3 k);
  Alcotest.(check bool) "halted" true (Vfs.halted c2);
  (* Post-crash operations are suppressed, not executed. *)
  Vfs.delete v2 "w/a";
  Alcotest.(check bool) "delete suppressed" true (Vfs.exists base2 "w/a");
  (* Io_error at the append is transient: the workload fails but the
     filesystem stays alive. *)
  let base3 = Vfs.memory () in
  let _, v3 = Vfs.counting ~inject:(Vfs.Io_error_at 1) base3 in
  (match workload v3 with
  | () -> Alcotest.fail "expected Io_error"
  | exception Vfs.Io_error _ -> ());
  let f = Vfs.create v3 "w/retry" in
  Vfs.append v3 f "ok";
  Alcotest.(check string) "later ops succeed" "ok" (Vfs.read_all base3 "w/retry")

let test_faulty () =
  let armed = ref false in
  let v =
    Vfs.faulty
      ~should_fail:(fun ~op ~path:_ -> !armed && op = "append")
      (Vfs.memory ())
  in
  let f = Vfs.create v "x" in
  Vfs.append v f "ok";
  armed := true;
  (match Vfs.append v f "boom" with
  | () -> Alcotest.fail "expected Io_error"
  | exception Vfs.Io_error _ -> ());
  armed := false;
  Vfs.append v f "fine";
  Alcotest.(check string) "partial content" "okfine" (Vfs.read_all v "x")

let test_real_roundtrip () =
  let dir = Filename.temp_file "lt_vfs" "" in
  Sys.remove dir;
  let v = Vfs.real () in
  Vfs.mkdir_p v (Filename.concat dir "sub");
  let path = Filename.concat dir "sub/file.bin" in
  let f = Vfs.create v path in
  Vfs.append v f "0123456789";
  Vfs.fsync v f;
  Alcotest.(check string) "pread middle" "345" (Vfs.pread v f ~off:3 ~len:3);
  Vfs.close v f;
  Alcotest.(check string) "read_all" "0123456789" (Vfs.read_all v path);
  Vfs.rename v ~src:path ~dst:(Filename.concat dir "sub/renamed.bin");
  Alcotest.(check (list string)) "readdir" [ "renamed.bin" ]
    (Vfs.readdir v (Filename.concat dir "sub"));
  Vfs.delete v (Filename.concat dir "sub/renamed.bin");
  Unix.rmdir (Filename.concat dir "sub");
  Unix.rmdir dir

(* --- Disk model ------------------------------------------------------ *)

let model_vfs ?config () =
  let model = Disk_model.create ?config () in
  let v = Vfs.with_model model (Vfs.memory ()) in
  (model, v)

let test_model_sequential_write () =
  let model, v = model_vfs () in
  let f = Vfs.create v "seq" in
  (* 12 MB in 1 MB appends: head stays at end of file -> no seeks. *)
  let chunk = String.make (1 lsl 20) 'x' in
  for _ = 1 to 12 do
    Vfs.append v f chunk
  done;
  Alcotest.(check int) "no seeks" 0 (Disk_model.seeks model);
  let t = Disk_model.elapsed_s model in
  (* 12 MB at 120 MB/s = 0.1 s. *)
  if Float.abs (t -. 0.1) > 0.005 then Alcotest.failf "elapsed %.4f, want ~0.1" t

let test_model_seek_cost () =
  let model, v = model_vfs ~config:(Disk_model.config ~cache_bytes:0 ()) () in
  let f = Vfs.create v "f" in
  Vfs.append v f (String.make (1 lsl 20) 'y');
  Disk_model.reset model;
  (* Alternate between two far-apart offsets: every read seeks. *)
  for _ = 1 to 10 do
    ignore (Vfs.pread v f ~off:0 ~len:512);
    ignore (Vfs.pread v f ~off:900_000 ~len:512)
  done;
  Alcotest.(check int) "20 seeks" 20 (Disk_model.seeks model);
  let t = Disk_model.elapsed_s model in
  (* Dominated by 20 * 8 ms = 0.16 s. *)
  if t < 0.16 then Alcotest.failf "elapsed %.4f < seek floor" t

let test_model_readahead_serves_sequential () =
  let model, v = model_vfs () in
  let f = Vfs.create v "ra" in
  Vfs.append v f (String.make (1 lsl 20) 'z');
  Disk_model.reset model;
  Disk_model.clear_cache model;
  (* 64 KiB sequential reads within one 128 KiB readahead window: the
     second read of each pair is a cache hit. *)
  ignore (Vfs.pread v f ~off:0 ~len:65536);
  let seeks_after_first = Disk_model.seeks model in
  ignore (Vfs.pread v f ~off:65536 ~len:65536);
  Alcotest.(check int) "second read cached" seeks_after_first
    (Disk_model.seeks model);
  Alcotest.(check int) "bytes fetched = readahead" (128 * 1024)
    (Disk_model.bytes_read model)

let test_model_open_charges_inode_seek () =
  let model, v = model_vfs () in
  let f = Vfs.create v "file" in
  Vfs.append v f "data";
  Disk_model.reset model;
  ignore (Vfs.open_read v "file");
  Alcotest.(check int) "inode seek" 1 (Disk_model.seeks model)

let test_model_rename_keeps_extent () =
  let model, v = model_vfs () in
  let f = Vfs.create v "a" in
  Vfs.append v f (String.make 1024 'a');
  Vfs.rename v ~src:"a" ~dst:"b";
  Disk_model.reset model;
  Disk_model.clear_cache model;
  let g = Vfs.open_read v "b" in
  ignore (Vfs.pread v g ~off:0 ~len:1024);
  (* open (1 seek) + first read (1 seek): extent tracked under new name. *)
  Alcotest.(check int) "two seeks" 2 (Disk_model.seeks model)

let suite =
  [
    ("memory: basic ops", `Quick, test_memory_basic);
    ("memory: pread bounds", `Quick, test_memory_pread_bounds);
    ("memory: readdir", `Quick, test_memory_readdir);
    ("memory: rename replaces", `Quick, test_rename_replaces);
    ("memory: crash durability", `Quick, test_crash_durability);
    ("memory: entry durability needs sync_dir", `Quick, test_entry_durability);
    ("memory: unsynced delete resurrects", `Quick, test_unsynced_delete_resurrects);
    ("memory: unsynced rename reverts", `Quick, test_unsynced_rename_reverts);
    ("counting wrapper: crash/io-error points", `Quick, test_counting_crash_point);
    ("faulty wrapper", `Quick, test_faulty);
    ("real filesystem roundtrip", `Quick, test_real_roundtrip);
    ("model: sequential write", `Quick, test_model_sequential_write);
    ("model: seek cost", `Quick, test_model_seek_cost);
    ("model: readahead", `Quick, test_model_readahead_serves_sequential);
    ("model: open = inode seek", `Quick, test_model_open_charges_inode_seek);
    ("model: rename keeps extent", `Quick, test_model_rename_keeps_extent);
  ]
