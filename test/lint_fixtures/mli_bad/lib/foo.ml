let x = 1
