(* Inside lib/vfs the raw calls are the point. *)
let open_raw path = Unix.openfile path [ Unix.O_RDONLY ] 0
