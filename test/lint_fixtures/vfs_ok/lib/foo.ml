let delete vfs path = Vfs.delete vfs path
