let report x = Logs.info (fun m -> m "%s" x)
