(* print_* is fine in executables; the rule covers lib only. *)
let () = print_endline "ok"
