let report x =
  print_endline x;
  Printf.printf "%s\n" x
