let now () = Unix.gettimeofday ()

let jitter () = Random.int 100
