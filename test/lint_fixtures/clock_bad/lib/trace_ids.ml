(* Trace-id generation from ambient randomness: --replay can never
   reproduce these ids, so the rule must flag both draws. *)
let fresh_trace_id () =
  (Random.int64 Int64.max_int, Random.int64 Int64.max_int)
