(* A client-side insert buffer whose flush interval is timed off the
   ambient wall clock: tests cannot fake time to trip the deadline, so
   the rule must flag the draw. *)
let deadline interval_us = Unix.gettimeofday () +. interval_us
