let run pool task = Pool.submit pool task
