(* Inside lib/exec spawning domains is the point. *)
let spawn_worker body = Domain.spawn body

let join_worker d = Domain.join d
