(* Regression: mirrors the trace-ring threshold field that shipped with
   an unlocked setter beside a mutex-guarded reader (lib/obs/trace.ml,
   [slow_us]) — mixed lock discipline on one cell. *)
type t = { mutex : Mutex.t; mutable slow_us : int }

let set t v = t.slow_us <- v

let record t = Mutexes.with_lock t.mutex (fun () -> t.slow_us)
