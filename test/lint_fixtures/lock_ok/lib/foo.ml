let m = Mutex.create ()

let bump counter = Mutexes.with_lock m (fun () -> incr counter)
