(* Both paths take m1 before m2: consistent order, no cycle. *)
let f () = with_lock m1 (fun () -> with_lock m2 (fun () -> ()))

let g () = with_lock m1 (fun () -> with_lock m2 (fun () -> ()))
