let x = 1
