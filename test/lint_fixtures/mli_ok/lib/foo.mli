val x : int
