(* Non-socket Unix use in lib code is out of this rule's scope. *)
let pid () = Unix.getpid ()
