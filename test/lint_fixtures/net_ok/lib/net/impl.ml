(* lib/net is the one place allowed to touch sockets. *)
let listen port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  fd
