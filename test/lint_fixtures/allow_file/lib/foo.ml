[@@@lint.allow "no-stdout: fixture exercises whole-file suppression"]

let report x = print_endline x
