(* A plain ref bumped from a pool task and read outside: counters
   shared across domains must be Atomic.t. *)
let total = ref 0

let run () =
  Pool.submit (fun () -> incr total);
  !total
