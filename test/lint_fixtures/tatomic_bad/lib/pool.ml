let submit f = ignore (f ())
