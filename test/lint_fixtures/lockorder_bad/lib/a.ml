let back () = with_lock ma (fun () -> ())

let front () = with_lock ma (fun () -> B.take ())
