let take () = with_lock mb (fun () -> A.back ())
