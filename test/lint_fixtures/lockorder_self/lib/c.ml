let f () = with_lock m (fun () -> with_lock m (fun () -> ()))
