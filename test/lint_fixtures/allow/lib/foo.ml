(* The vfs call is suppressed; the clock call right next to it is not,
   and an allow naming the wrong rule must not hide it. *)
let cleanup path = (Sys.remove path [@lint.allow "vfs-discipline: fixture"])

let now () =
  (Unix.gettimeofday () [@lint.allow "vfs-discipline: names the wrong rule"])
