let delete path = Sys.remove path

let log_channel path = open_out path
