let m = Mutex.create ()

let bump counter =
  Mutex.lock m;
  incr counter;
  Mutex.unlock m
