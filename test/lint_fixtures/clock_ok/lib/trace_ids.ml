(* Trace ids from an injected, clock-seeded PRNG replay deterministically. *)
let fresh_trace_id rng = (Xorshift.next rng, Xorshift.next rng)

let seeded clock = Xorshift.create (Clock.now clock)
