let now clock = Clock.now clock
