(* The insert buffer's flush deadline comes from an injected clock, so
   a manual clock can trip (or hold back) the interval deterministically. *)
let deadline clock interval_us = Int64.add (Clock.now clock) interval_us
