(* The atomic version of tatomic_bad. *)
let total = Atomic.make 0

let run () =
  Pool.submit (fun () -> Atomic.incr total);
  Atomic.get total
