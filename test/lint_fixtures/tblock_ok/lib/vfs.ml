type t = unit

let fsync (_ : t) = ()
