(* The fsync hoisted out of the hot-lock region. *)
type t = { writer_lock : Mutex.t; mutable dirty : bool; vfs : Vfs.t }

let good t =
  Mutexes.with_lock t.writer_lock (fun () -> t.dirty <- false);
  Vfs.fsync t.vfs
