(* tdrace_bad with a justified suppression at the racy write. *)
type t = { mutable count : int }

let run t =
  Pool.submit (fun () ->
      (t.count <- t.count + 1)
      [@lint.allow
        "domain-race: the single producer task is joined before the \
         submitting domain reads the counter"]);
  t.count
