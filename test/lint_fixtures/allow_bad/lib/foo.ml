let a path = (Sys.remove path [@lint.allow "no-such-rule: whatever"])

let b path = (Sys.remove path [@lint.allow "vfs-discipline"])
