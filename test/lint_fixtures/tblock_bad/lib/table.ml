(* Blocking VFS work inside a hot-lock region. *)
type t = { writer_lock : Mutex.t; vfs : Vfs.t }

let bad t = Mutexes.with_lock t.writer_lock (fun () -> Vfs.fsync t.vfs)
