let scatter f xs =
  let ds = List.map (fun x -> Domain.spawn (fun () -> f x)) xs in
  List.map Domain.join ds
