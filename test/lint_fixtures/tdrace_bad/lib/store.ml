(* A field written from a pool task and read from the submitting
   domain, with no common lock: the canonical domain-race. *)
type t = { mutable count : int }

let run t =
  Pool.submit (fun () -> t.count <- t.count + 1);
  t.count
