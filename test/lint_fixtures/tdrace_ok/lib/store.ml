(* Same shape as tdrace_bad, but every access holds the same mutex. *)
type t = { m : Mutex.t; mutable count : int }

let run t =
  Pool.submit (fun () ->
      Mutexes.with_lock t.m (fun () -> t.count <- t.count + 1));
  Mutexes.with_lock t.m (fun () -> t.count)
