let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e
