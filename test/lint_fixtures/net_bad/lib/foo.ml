(* Raw socket traffic in generic lib code: both calls must be flagged. *)
let dial port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd
