(* Golden tests for the project-invariant analyzer, driven by the tiny
   source trees under lint_fixtures/. Each fixture only needs to parse:
   the linter never typechecks. *)

module Lint = Lt_lint.Lint

let run ?rules case =
  Lint.run ?rules
    ~roots:[ Lint.root (Filename.concat "lint_fixtures" case) ]
    ()

let rules_of findings = List.map (fun f -> f.Lint.f_rule) findings

let count rule findings =
  List.length (List.filter (fun f -> f.Lint.f_rule = rule) findings)

let check_clean name findings =
  Alcotest.(check (list string))
    name []
    (List.map Lint.to_plain findings)

let test_vfs () =
  let bad = run ~rules:[ "vfs-discipline" ] "vfs_bad" in
  Alcotest.(check int) "two raw fs calls flagged" 2 (count "vfs-discipline" bad);
  Alcotest.(check int) "nothing else" 2 (List.length bad);
  check_clean "vfs_ok clean (incl. lib/vfs exemption)"
    (run ~rules:[ "vfs-discipline" ] "vfs_ok")

let test_lock_safety () =
  let bad = run ~rules:[ "lock-safety" ] "lock_bad" in
  Alcotest.(check int) "lock and unlock flagged" 2 (count "lock-safety" bad);
  check_clean "with_lock combinator clean"
    (run ~rules:[ "lock-safety" ] "lock_ok")

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_lock_order_cycle () =
  let bad = run ~rules:[ "lock-order" ] "lockorder_bad" in
  Alcotest.(check bool) "cross-module cycle found" true (count "lock-order" bad > 0);
  let msgs = String.concat " " (List.map (fun f -> f.Lint.f_msg) bad) in
  let mentions s =
    Alcotest.(check bool) ("cycle names " ^ s) true (contains ~sub:s msgs)
  in
  mentions "a.ma";
  mentions "b.mb"

let test_lock_order_self () =
  let bad = run ~rules:[ "lock-order" ] "lockorder_self" in
  Alcotest.(check bool) "self-nesting flagged (non-reentrant)" true
    (count "lock-order" bad > 0)

let test_lock_order_consistent () =
  check_clean "consistent order clean" (run ~rules:[ "lock-order" ] "lockorder_ok")

let test_clock () =
  let bad = run ~rules:[ "clock-discipline" ] "clock_bad" in
  Alcotest.(check int)
    "gettimeofday, jitter, trace-id Randoms and buffer deadline flagged" 5
    (count "clock-discipline" bad);
  check_clean "clock_ok clean (incl. trace ids and buffer deadline)"
    (run ~rules:[ "clock-discipline" ] "clock_ok")

let test_stdout () =
  let bad = run ~rules:[ "no-stdout" ] "stdout_bad" in
  Alcotest.(check int) "print_endline and printf flagged" 2
    (count "no-stdout" bad);
  check_clean "Logs in lib + print in bin clean"
    (run ~rules:[ "no-stdout" ] "stdout_ok")

let test_domain_discipline () =
  let bad = run ~rules:[ "domain-discipline" ] "domain_bad" in
  Alcotest.(check int) "spawn and join flagged" 2
    (count "domain-discipline" bad);
  check_clean "lib/exec exemption clean"
    (run ~rules:[ "domain-discipline" ] "domain_ok")

let test_net_discipline () =
  let bad = run ~rules:[ "net-discipline" ] "net_bad" in
  Alcotest.(check int) "socket and connect flagged" 2
    (count "net-discipline" bad);
  check_clean "lib/net exemption + non-socket Unix clean"
    (run ~rules:[ "net-discipline" ] "net_ok")

let test_mli_coverage () =
  let bad = run ~rules:[ "mli-coverage" ] "mli_bad" in
  Alcotest.(check int) "missing interface flagged" 1 (count "mli-coverage" bad);
  check_clean "mli present clean" (run ~rules:[ "mli-coverage" ] "mli_ok")

let test_allow_scoped () =
  (* The vfs allow kills exactly the vfs finding; an allow naming the
     wrong rule does not hide the clock finding beside it. *)
  let fs = run ~rules:[ "vfs-discipline"; "clock-discipline" ] "allow" in
  Alcotest.(check (list string))
    "only the clock finding survives" [ "clock-discipline" ] (rules_of fs)

let test_allow_malformed () =
  let fs = run ~rules:[ "vfs-discipline" ] "allow_bad" in
  Alcotest.(check int) "unknown rule + missing justification reported" 2
    (count "lint-allow" fs);
  Alcotest.(check int) "invalid allows suppress nothing" 2
    (count "vfs-discipline" fs)

let test_allow_floating () =
  check_clean "[@@@lint.allow] covers the whole file"
    (run ~rules:[ "no-stdout" ] "allow_file")

let test_formats () =
  let f =
    { Lint.f_file = "lib/x/y.ml"; f_line = 12; f_col = 4;
      f_rule = "no-stdout"; f_msg = "boom" }
  in
  Alcotest.(check string) "plain" "lib/x/y.ml:12:4: [no-stdout] boom"
    (Lint.to_plain f);
  Alcotest.(check string) "github"
    "::error file=lib/x/y.ml,line=12,col=5::no-stdout: boom" (Lint.to_github f)

(* ---- typed rules --------------------------------------------------- *)
(* The cmt-based rules need typed trees: each fixture is compiled in
   place with ocamlc -bin-annot (dependency order matters), then the
   linter loads the cmts it finds under the fixture root. *)

let compiled : (string, unit) Hashtbl.t = Hashtbl.create 8

let compile_typed case files =
  if not (Hashtbl.mem compiled case) then begin
    let dir = Filename.concat (Filename.concat "lint_fixtures" case) "lib" in
    let cmd =
      Printf.sprintf "cd %s && ocamlc -bin-annot -c %s 2>/dev/null"
        (Filename.quote dir)
        (String.concat " " files)
    in
    Alcotest.(check int) ("compile fixture " ^ case) 0 (Sys.command cmd);
    Hashtbl.add compiled case ()
  end

let run_typed ?rules case files =
  compile_typed case files;
  Lint.run ?rules ~typed:true
    ~roots:[ Lint.root (Filename.concat "lint_fixtures" case) ]
    ()

let msgs_contain ~sub findings =
  List.exists (fun f -> contains ~sub f.Lint.f_msg) findings

let test_domain_race () =
  let bad =
    run_typed ~rules:[ "domain-race" ] "tdrace_bad" [ "pool.ml"; "store.ml" ]
  in
  Alcotest.(check int) "unlocked crossing write flagged" 1
    (count "domain-race" bad);
  Alcotest.(check int) "nothing else" 1 (List.length bad);
  Alcotest.(check bool) "names the cell" true
    (msgs_contain ~sub:"store.t.count" bad);
  check_clean "same lock on both sides clean"
    (run_typed ~rules:[ "domain-race" ] "tdrace_ok"
       [ "mutexes.ml"; "pool.ml"; "store.ml" ]);
  check_clean "justified [@lint.allow] suppresses"
    (run_typed ~rules:[ "domain-race" ] "tdrace_allow" [ "pool.ml"; "store.ml" ])

let test_atomic_discipline () =
  let bad =
    run_typed
      ~rules:[ "atomic-discipline" ]
      "tatomic_bad" [ "pool.ml"; "counter.ml" ]
  in
  Alcotest.(check int) "plain ref counter across domains flagged" 1
    (count "atomic-discipline" bad);
  Alcotest.(check bool) "suggests Atomic.t" true
    (msgs_contain ~sub:"Atomic.t" bad);
  check_clean "Atomic.t version clean"
    (run_typed
       ~rules:[ "atomic-discipline" ]
       "tatomic_ok" [ "pool.ml"; "counter.ml" ])

let test_blocking_under_lock () =
  let bad =
    run_typed
      ~rules:[ "blocking-under-lock" ]
      "tblock_bad"
      [ "mutexes.ml"; "vfs.ml"; "table.ml" ]
  in
  Alcotest.(check int) "fsync under writer_lock flagged" 1
    (count "blocking-under-lock" bad);
  Alcotest.(check bool) "names op and hot lock" true
    (msgs_contain ~sub:"Vfs.fsync" bad
    && msgs_contain ~sub:"table.t.writer_lock" bad);
  check_clean "fsync hoisted out of the region clean"
    (run_typed
       ~rules:[ "blocking-under-lock" ]
       "tblock_ok"
       [ "mutexes.ml"; "vfs.ml"; "table.ml" ])

(* Regression: the shape of the real finding the typed pass caught in
   lib/obs/trace.ml — an unlocked setter beside a mutex-guarded reader
   of the same field (mixed lock discipline). *)
let test_typed_regression_ring () =
  let bad =
    run_typed ~rules:[ "domain-race" ] "tregress_ring"
      [ "mutexes.ml"; "ring.ml" ]
  in
  Alcotest.(check int) "mixed discipline on the threshold field" 1
    (count "domain-race" bad);
  Alcotest.(check bool) "names the cell and the discipline" true
    (msgs_contain ~sub:"ring.t.slow_us" bad
    && msgs_contain ~sub:"mixed lock discipline" bad)

(* CI diffs findings textually, so the typed pass must be a pure
   function of the cmts: two runs over the same tree are byte-equal. *)
let test_typed_deterministic () =
  let go () =
    List.map Lint.to_plain (run_typed "tdrace_bad" [ "pool.ml"; "store.ml" ])
  in
  Alcotest.(check (list string)) "two runs byte-identical" (go ()) (go ())

let test_rule_catalogue () =
  Alcotest.(check int) "eleven rules" 11 (List.length Lint.rule_names);
  List.iter
    (fun r ->
      Alcotest.(check bool) ("doc for " ^ r) true
        (String.length (Lint.rule_doc r) > 10))
    Lint.rule_names

let suite =
  [
    Alcotest.test_case "vfs-discipline" `Quick test_vfs;
    Alcotest.test_case "lock-safety" `Quick test_lock_safety;
    Alcotest.test_case "lock-order cycle" `Quick test_lock_order_cycle;
    Alcotest.test_case "lock-order self" `Quick test_lock_order_self;
    Alcotest.test_case "lock-order consistent" `Quick test_lock_order_consistent;
    Alcotest.test_case "clock-discipline" `Quick test_clock;
    Alcotest.test_case "no-stdout" `Quick test_stdout;
    Alcotest.test_case "domain-discipline" `Quick test_domain_discipline;
    Alcotest.test_case "mli-coverage" `Quick test_mli_coverage;
    Alcotest.test_case "net-discipline" `Quick test_net_discipline;
    Alcotest.test_case "domain-race (typed)" `Quick test_domain_race;
    Alcotest.test_case "atomic-discipline (typed)" `Quick test_atomic_discipline;
    Alcotest.test_case "blocking-under-lock (typed)" `Quick
      test_blocking_under_lock;
    Alcotest.test_case "typed regression: trace ring" `Quick
      test_typed_regression_ring;
    Alcotest.test_case "typed pass deterministic" `Quick
      test_typed_deterministic;
    Alcotest.test_case "allow is rule-scoped" `Quick test_allow_scoped;
    Alcotest.test_case "allow malformed" `Quick test_allow_malformed;
    Alcotest.test_case "allow floating" `Quick test_allow_floating;
    Alcotest.test_case "output formats" `Quick test_formats;
    Alcotest.test_case "rule catalogue" `Quick test_rule_catalogue;
  ]
