(** Staged parallel scan: fan a set of pull sources out over a
    {!Pool}, keeping each source's output in its original order.

    [stage pool sources] wraps each [(priority, next)] source in a
    bounded chunk buffer fed by a producer task on the pool and returns
    replacement sources (same priorities, same order, same elements) that
    serve from the buffers. Feeding the staged sources to the same
    ordered merge the sequential path uses therefore yields byte-identical
    results — parallelism only changes {e when} rows are pulled from the
    underlying tablets, never {e what} the merge sees.

    Flow control is credit-based and non-blocking on the producer side: a
    producer that gets [depth] chunks ahead of its consumer parks instead
    of blocking, and the consumer restarts it on the next pop. Producers
    therefore always run to completion, so a pool smaller than the source
    count cannot deadlock.

    The returned [finish] function must be called exactly once, before
    releasing whatever the sources read from (tablet references): it sets
    the scan's {!Cancel} token — in-flight producers observe it between
    rows and stop early — and blocks until no producer task remains.
    Early-terminating queries ([limit], latest-row) rely on this to
    cancel workers they no longer need. *)

(** [stage pool ?chunk_rows ?depth ?now_us ?on_worker ?on_stall sources]
    returns the staged sources and the [finish] function.

    - [chunk_rows] rows are pulled per producer round (default [128]).
    - [depth] bounds buffered chunks per source (default [4]).
    - [now_us] supplies monotonic microseconds for the timing callbacks
      (default: constant [0L], disabling them).
    - [on_worker ~busy_us ~rows] fires exactly once per source when it
      retires, with its total producer-side scan time and row count.
    - [on_stall dur_us] fires (outside any lock) each time the consumer
      had to wait [dur_us] > 0 for a producer mid-round — a merge stall.

    Callbacks run on whichever domain triggers them and must not raise.
    @raise Invalid_argument when [chunk_rows < 1] or [depth < 1]. *)
val stage :
  Pool.t ->
  ?chunk_rows:int ->
  ?depth:int ->
  ?now_us:(unit -> int64) ->
  ?on_worker:(busy_us:int64 -> rows:int -> unit) ->
  ?on_stall:(int64 -> unit) ->
  (int * (unit -> 'a option)) list ->
  (int * (unit -> 'a option)) list * (unit -> unit)
