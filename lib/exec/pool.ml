module Mutexes = Lt_util.Mutexes

type task = unit -> unit

type t = {
  mutex : Mutex.t;
  has_work : Condition.t;
  tasks : task Queue.t;
  mutable workers : unit Domain.t array;
  mutable stopping : bool;
  size : int;
}

let size t = t.size

let default_domains () = max 1 (Domain.recommended_domain_count () - 2)

(* Workers pull tasks until shutdown; a stopping pool still drains the
   queue so outstanding producer tasks always reach their completion
   bookkeeping. A raising task never kills its worker: task authors
   (futures, Pscan producers) capture exceptions themselves, so anything
   escaping here has nowhere better to go than the floor. *)
let rec worker t =
  let task =
    Mutexes.with_lock t.mutex (fun () ->
        while Queue.is_empty t.tasks && not t.stopping do
          Condition.wait t.has_work t.mutex
        done;
        if Queue.is_empty t.tasks then None else Some (Queue.pop t.tasks))
  in
  match task with
  | None -> ()
  | Some task ->
      (try task () with _ -> ());
      worker t

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      has_work = Condition.create ();
      tasks = Queue.create ();
      workers = [||];
      stopping = false;
      size = domains;
    }
  in
  t.workers <- Array.init domains (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit_task t task =
  Mutexes.with_lock t.mutex (fun () ->
      if t.stopping then invalid_arg "Pool.submit: pool is shut down";
      Queue.push task t.tasks;
      Condition.signal t.has_work)

type 'a fstate =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a fstate;
}

let submit t f =
  let fut =
    { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending }
  in
  submit_task t (fun () ->
      let r =
        match f () with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutexes.with_lock fut.f_mutex (fun () ->
          fut.f_state <- r;
          Condition.broadcast fut.f_cond));
  fut

let await fut =
  Mutexes.with_lock fut.f_mutex (fun () ->
      let rec wait () =
        match fut.f_state with
        | Pending ->
            Condition.wait fut.f_cond fut.f_mutex;
            wait ()
        | Done v -> v
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      in
      wait ())

let map t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map await futs

let shutdown t =
  let workers =
    Mutexes.with_lock t.mutex (fun () ->
        if t.stopping then [||]
        else begin
          t.stopping <- true;
          Condition.broadcast t.has_work;
          let w = t.workers in
          t.workers <- [||];
          w
        end)
  in
  Array.iter Domain.join workers

(* Process-wide pools, one per requested size, never shut down. Sharing
   by size keeps the total domain count bounded by the sum of distinct
   sizes ever requested (OCaml caps live domains well below what
   per-[Db] pools would burn through in a test suite), while the server
   — one [Db], one config — still gets exactly one pool sized once at
   startup. *)
let shared_mutex = Mutex.create ()

let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~domains =
  if domains < 1 then invalid_arg "Pool.shared: domains must be >= 1";
  Mutexes.with_lock shared_mutex (fun () ->
      match Hashtbl.find_opt shared_pools domains with
      | Some p -> p
      | None ->
          let p = create ~domains in
          Hashtbl.add shared_pools domains p;
          p)
