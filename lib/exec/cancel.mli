(** Early-termination tokens.

    A query that stops before draining its sources (a [limit], a
    latest-row search that found its answer, a client that walked away)
    sets its token; in-flight {!Pscan} producer tasks observe it between
    rows and stop producing, so the pool is free for other queries and
    tablet references can be released promptly. Setting is idempotent
    and never blocks. *)

type t

val create : unit -> t

(** Request cancellation. Idempotent; safe from any domain. *)
val set : t -> unit

val is_set : t -> bool
