module Mutexes = Lt_util.Mutexes

type 'a state =
  | Running
  | Idle
  | Exhausted
  | Failed of exn * Printexc.raw_backtrace

type 'a buf = {
  b_mutex : Mutex.t;
  b_cond : Condition.t;
  chunks : 'a array Queue.t;
  mutable st : 'a state;
  src : unit -> 'a option;
  (* Accumulators are written by the (single, self-rescheduling) producer
     task and read by the consumer only after the terminal transition, so
     they need no lock of their own. *)
  mutable busy_us : int64;
  mutable rows : int;
  mutable reported : bool;
}

type 'a t = {
  pool : Pool.t;
  cancel : Cancel.t;
  chunk_rows : int;
  depth : int;
  now_us : unit -> int64;
  on_worker : busy_us:int64 -> rows:int -> unit;
  on_stall : int64 -> unit;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  (* Number of sources in [Running] state, i.e. with a producer task
     queued or executing. [finish] waits for this to reach zero before
     the caller releases the tablets the sources read from. *)
  mutable inflight : int;
  bufs : 'a buf list;
}

let dec_inflight t =
  Mutexes.with_lock t.done_mutex (fun () ->
      t.inflight <- t.inflight - 1;
      if t.inflight = 0 then Condition.broadcast t.done_cond)

let inc_inflight t = Mutexes.with_lock t.done_mutex (fun () -> t.inflight <- t.inflight + 1)

let report t b =
  let fire =
    Mutexes.with_lock b.b_mutex (fun () ->
        if b.reported then false
        else begin
          b.reported <- true;
          true
        end)
  in
  if fire then t.on_worker ~busy_us:b.busy_us ~rows:b.rows

(* One producer round: pull up to [chunk_rows] rows (checking the cancel
   token between rows), publish the chunk, then either reschedule itself,
   pause ([Idle], when the consumer is [depth] chunks behind), or retire
   ([Exhausted]/[Failed]). Pool submissions happen outside the buffer
   mutex so producers never hold a lock across a lock acquisition in the
   pool. *)
let rec producer t b =
  let t0 = t.now_us () in
  let out = ref [] in
  let n = ref 0 in
  let outcome =
    try
      let rec pull () =
        if !n >= t.chunk_rows then `More
        else if Cancel.is_set t.cancel then `Drained
        else
          match b.src () with
          | Some v ->
              out := v :: !out;
              incr n;
              pull ()
          | None -> `Drained
      in
      pull ()
    with e -> `Failed (e, Printexc.get_raw_backtrace ())
  in
  (b.busy_us <- Int64.add b.busy_us (Int64.sub (t.now_us ()) t0))
  [@lint.allow
    "domain-race: only the single self-rescheduling producer task writes \
     the accumulators, and the consumer reads them in [report] strictly \
     after the terminal [reported] transition under [b_mutex], which \
     orders every write before the read"];
  (b.rows <- b.rows + !n)
  [@lint.allow
    "domain-race: only the single self-rescheduling producer task writes \
     the accumulators, and the consumer reads them in [report] strictly \
     after the terminal [reported] transition under [b_mutex], which \
     orders every write before the read"];
  let chunk = if !n = 0 then [||] else Array.of_list (List.rev !out) in
  let action =
    Mutexes.with_lock b.b_mutex (fun () ->
        if Array.length chunk > 0 then Queue.push chunk b.chunks;
        let action =
          match outcome with
          | `Failed (e, bt) ->
              b.st <- Failed (e, bt);
              `Retire_terminal
          | `Drained ->
              b.st <- Exhausted;
              `Retire_terminal
          | `More ->
              if Queue.length b.chunks >= t.depth then begin
                b.st <- Idle;
                `Retire_idle
              end
              else begin
                b.st <- Running;
                `Resubmit
              end
        in
        Condition.signal b.b_cond;
        action)
  in
  match action with
  | `Resubmit -> Pool.submit_task t.pool (fun () -> producer t b)
  | `Retire_idle -> dec_inflight t
  | `Retire_terminal ->
      report t b;
      dec_inflight t

(* Pop the next chunk for the consumer, restarting a paused producer and
   blocking (with stall accounting) while one is mid-round. [Idle] with an
   empty queue is unreachable — [Idle] is only entered with >= depth >= 1
   chunks buffered and every pop from [Idle] flips back to [Running] —
   but the recovery is the same resubmit either way. *)
let refill t b =
  let resume = ref false in
  let stall = ref 0L in
  let res =
    Mutexes.with_lock b.b_mutex (fun () ->
        let rec loop () =
          if not (Queue.is_empty b.chunks) then begin
            let arr = Queue.pop b.chunks in
            (match b.st with
            | Idle ->
                b.st <- Running;
                resume := true
            | Running | Exhausted | Failed _ -> ());
            Some arr
          end
          else
            match b.st with
            | Exhausted -> None
            | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
            | Idle ->
                b.st <- Running;
                resume := true;
                wait ()
            | Running -> wait ()
        and wait () =
          let t0 = t.now_us () in
          Condition.wait b.b_cond b.b_mutex;
          stall := Int64.add !stall (Int64.sub (t.now_us ()) t0);
          loop ()
        in
        loop ())
  in
  if !resume then begin
    inc_inflight t;
    Pool.submit_task t.pool (fun () -> producer t b)
  end;
  if Int64.compare !stall 0L > 0 then t.on_stall !stall;
  res

let staged_source t b =
  let chunk = ref [||] in
  let pos = ref 0 in
  let rec next () =
    if !pos < Array.length !chunk then begin
      let v = !chunk.(!pos) in
      incr pos;
      Some v
    end
    else
      match refill t b with
      | Some arr ->
          chunk := arr;
          pos := 0;
          next ()
      | None -> None
  in
  next

let finish t () =
  Cancel.set t.cancel;
  Mutexes.with_lock t.done_mutex (fun () ->
      while t.inflight > 0 do
        Condition.wait t.done_cond t.done_mutex
      done);
  (* Sources parked in [Idle] never hit a terminal transition; flush
     their accumulators so every source reports exactly once. *)
  List.iter (fun b -> report t b) t.bufs

let stage pool ?(chunk_rows = 128) ?(depth = 4) ?(now_us = fun () -> 0L)
    ?(on_worker = fun ~busy_us:_ ~rows:_ -> ()) ?(on_stall = fun _ -> ()) sources =
  if chunk_rows < 1 then invalid_arg "Pscan.stage: chunk_rows must be >= 1";
  if depth < 1 then invalid_arg "Pscan.stage: depth must be >= 1";
  let bufs =
    List.map
      (fun (_prio, src) ->
        {
          b_mutex = Mutex.create ();
          b_cond = Condition.create ();
          chunks = Queue.create ();
          st = Running;
          src;
          busy_us = 0L;
          rows = 0;
          reported = false;
        })
      sources
  in
  let t =
    {
      pool;
      cancel = Cancel.create ();
      chunk_rows;
      depth;
      now_us;
      on_worker;
      on_stall;
      done_mutex = Mutex.create ();
      done_cond = Condition.create ();
      inflight = List.length bufs;
      bufs;
    }
  in
  List.iter (fun b -> Pool.submit_task pool (fun () -> producer t b)) bufs;
  let staged = List.map2 (fun (prio, _) b -> (prio, staged_source t b)) sources bufs in
  (staged, finish t)
