(** Fixed-size domain worker pool.

    The one place in the tree that spawns domains (the [domain-discipline]
    lint rule flags [Domain.spawn]/[Domain.join] anywhere else), so worker
    counts, shutdown, and queue behaviour stay centralized. Tasks are run
    FIFO by [domains] long-lived worker domains; {!submit} wraps a task in
    a future whose {!await} re-raises the task's exception (with its
    backtrace) in the caller.

    Tasks must never block on other pool tasks: every consumer-side wait
    in the engine ({!Pscan}) is designed so producer tasks always run to
    completion without waiting themselves, which makes pool starvation
    deadlocks impossible by construction. *)

type t

type task = unit -> unit

(** [create ~domains] spawns [domains] (>= 1) worker domains.
    @raise Invalid_argument when [domains < 1]. *)
val create : domains:int -> t

val size : t -> int

(** The default worker count for {!Lt_util} engines:
    [max 1 (recommended_domain_count () - 2)], leaving headroom for the
    caller's domain and the server's accept/maintenance threads. *)
val default_domains : unit -> int

(** Fire-and-forget submission. Tasks run FIFO; a raising task is
    swallowed (use {!submit} when the caller needs the outcome).
    @raise Invalid_argument after {!shutdown}. *)
val submit_task : t -> task -> unit

type 'a future

(** @raise Invalid_argument after {!shutdown}. *)
val submit : t -> (unit -> 'a) -> 'a future

(** Block until the task completes; returns its value or re-raises its
    exception with the worker-side backtrace. *)
val await : 'a future -> 'a

(** [map t f xs] runs [f] over [xs] on the pool and awaits the results
    in order. The first exception (in list order) re-raises after every
    task has been submitted. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Stop accepting work, drain queued tasks, and join every worker
    domain. Idempotent; safe to call from any thread that is not a
    worker. *)
val shutdown : t -> unit

(** [shared ~domains] is the process-wide pool of exactly that size,
    created on first request and never shut down — [Db.open_] uses it so
    any number of databases (test suites open hundreds) share a bounded
    set of domains, and a server's single [Db] still sizes its pool once
    at startup from [Config.query_domains]. *)
val shared : domains:int -> t
