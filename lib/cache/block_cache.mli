(** A shared, scan-resistant block cache.

    The paper leans on the OS page cache for hot tablet blocks (§3.2,
    §3.5); this is the process-owned equivalent: a byte-capacity-bounded
    cache keyed by [(file id, block index)] that the tablet read path
    consults before decompressing a block frame from the {!Lt_vfs.Vfs}.

    Eviction is segmented LRU (SLRU). New blocks enter a {e probation}
    segment; a block touched again while on probation is promoted to a
    {e protected} segment holding roughly 80% of the capacity. Capacity
    evictions always take the probation LRU first, so a single large
    range scan — whose blocks are each touched once — churns only
    probation and cannot displace the established hot set.

    The cache is sharded by key hash; each shard has its own mutex,
    hash table, and intrusive LRU lists, so lookups are O(1) and
    concurrent readers on the multi-threaded server rarely contend.

    Values are polymorphic ('v is {!Littletable.Block.t} in the engine)
    and weighed by a caller-supplied byte size — the raw (decompressed)
    frame size, so capacity bounds approximate resident memory. *)

type 'v t

(** Aggregated counters across all shards. [hits]/[misses]/[evictions]/
    [insertions]/[inserted_bytes] are monotonic; [resident_bytes] and
    [resident_entries] are the current footprint. File invalidations do
    not count as evictions. *)
type counters = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  inserted_bytes : int;
  resident_bytes : int;
  resident_entries : int;
}

(** [create ~capacity ()] makes a cache bounded at [capacity] bytes
    total. [shards] (default 8, rounded up to a power of two) splits the
    capacity evenly; keys are distributed by hash.
    @raise Invalid_argument if [capacity <= 0] or [shards <= 0]. *)
val create : ?shards:int -> capacity:int -> unit -> 'v t

val capacity : 'v t -> int

(** Allocate a fresh file id. Ids are never reused, so blocks cached
    under a dead file's id can never be served to a reincarnation of the
    same path. *)
val file_id : 'v t -> int

(** O(1) lookup. A probation hit promotes the block to the protected
    segment; a protected hit refreshes its recency. *)
val find : 'v t -> file:int -> block:int -> 'v option

(** Insert a block of [bytes] weight into the probation segment, then
    evict from the probation (then protected) LRU until the shard is
    within capacity. Inserting a key that is already present refreshes
    the resident entry and is not counted as an insertion. *)
val insert : 'v t -> file:int -> block:int -> bytes:int -> 'v -> unit

(** Drop every cached block of [file] — called when a merge, TTL expiry,
    or bulk delete removes the tablet file, so stale blocks can never be
    served. *)
val invalidate_file : 'v t -> file:int -> unit

(** Drop everything (counters keep accumulating). *)
val clear : 'v t -> unit

val counters : 'v t -> counters

(** Zero the monotonic counters (resident state is untouched) — for
    benchmarks measuring a phase in isolation. *)
val reset_counters : 'v t -> unit
