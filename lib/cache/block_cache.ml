module Mutexes = Lt_util.Mutexes

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  inserted_bytes : int;
  resident_bytes : int;
  resident_entries : int;
}

type segment = Probation | Protected

type 'v node = {
  file : int;
  block : int;
  value : 'v;
  weight : int;
  mutable seg : segment;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

(* Intrusive doubly-linked list, head = MRU, tail = LRU. *)
type 'v lru = {
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable bytes : int;
}

let lru_create () = { head = None; tail = None; bytes = 0 }

let lru_push_front l n =
  n.prev <- None;
  n.next <- l.head;
  (match l.head with Some h -> h.prev <- Some n | None -> l.tail <- Some n);
  l.head <- Some n;
  l.bytes <- l.bytes + n.weight

let lru_unlink l n =
  (match n.prev with Some p -> p.next <- n.next | None -> l.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> l.tail <- n.prev);
  n.prev <- None;
  n.next <- None;
  l.bytes <- l.bytes - n.weight

type 'v shard = {
  mutex : Mutex.t;
  table : (int * int, 'v node) Hashtbl.t;
  probation : 'v lru;
  protected : 'v lru;
  cap : int;  (** shard byte capacity *)
  prot_cap : int;  (** protected-segment byte target, ~80% of [cap] *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
  mutable inserted_bytes : int;
}

type 'v t = {
  shards : 'v shard array;
  mask : int;
  capacity : int;
  next_file : int Atomic.t;
}

let rec pow2_geq n p = if p >= n then p else pow2_geq n (p * 2)

let create ?(shards = 8) ~capacity () =
  if capacity <= 0 then invalid_arg "Block_cache.create: capacity <= 0";
  if shards <= 0 then invalid_arg "Block_cache.create: shards <= 0";
  let n = pow2_geq shards 1 in
  let cap = max 1 (capacity / n) in
  let shard _ =
    {
      mutex = Mutex.create ();
      table = Hashtbl.create 256;
      probation = lru_create ();
      protected = lru_create ();
      cap;
      prot_cap = cap * 4 / 5;
      hits = 0;
      misses = 0;
      evictions = 0;
      insertions = 0;
      inserted_bytes = 0;
    }
  in
  {
    shards = Array.init n shard;
    mask = n - 1;
    capacity;
    next_file = Atomic.make 0;
  }

let capacity t = t.capacity

let file_id t = Atomic.fetch_and_add t.next_file 1

let shard_of t ~file ~block =
  (* Fibonacci-ish mix so consecutive block indexes spread over shards. *)
  let h = ((file * 0x9E3779B1) lxor (block * 0x85EBCA77)) land max_int in
  t.shards.((h lsr 7) lxor h land t.mask)

let seg_list s = function Probation -> s.probation | Protected -> s.protected

(* Keep the protected segment at its byte target by demoting its LRU
   back to the probation MRU (standard SLRU: demoted blocks get one more
   chance before capacity eviction reaches them). *)
let rec rebalance_protected s =
  if s.protected.bytes > s.prot_cap then begin
    match s.protected.tail with
    | None -> ()
    | Some n ->
        lru_unlink s.protected n;
        n.seg <- Probation;
        lru_push_front s.probation n;
        rebalance_protected s
  end

(* Evict from the probation LRU (protected only once probation is empty)
   until the shard fits. *)
let rec evict_to_cap s =
  if s.probation.bytes + s.protected.bytes > s.cap then begin
    let victim =
      match s.probation.tail with
      | Some _ as v -> v
      | None -> s.protected.tail
    in
    match victim with
    | None -> ()
    | Some n ->
        lru_unlink (seg_list s n.seg) n;
        Hashtbl.remove s.table (n.file, n.block);
        s.evictions <- s.evictions + 1;
        evict_to_cap s
  end

let find t ~file ~block =
  let s = shard_of t ~file ~block in
  Mutexes.with_lock s.mutex (fun () ->
      match Hashtbl.find_opt s.table (file, block) with
      | None ->
          s.misses <- s.misses + 1;
          None
      | Some n ->
          s.hits <- s.hits + 1;
          (match n.seg with
          | Protected ->
              lru_unlink s.protected n;
              lru_push_front s.protected n
          | Probation ->
              lru_unlink s.probation n;
              n.seg <- Protected;
              lru_push_front s.protected n;
              rebalance_protected s);
          Some n.value)

let insert t ~file ~block ~bytes v =
  let s = shard_of t ~file ~block in
  Mutexes.with_lock s.mutex (fun () ->
      match Hashtbl.find_opt s.table (file, block) with
      | Some n ->
          (* Raced with another reader loading the same block: refresh
             recency, keep the resident value. *)
          let l = seg_list s n.seg in
          lru_unlink l n;
          lru_push_front l n
      | None ->
          let n =
            {
              file;
              block;
              value = v;
              weight = max 1 bytes;
              seg = Probation;
              prev = None;
              next = None;
            }
          in
          Hashtbl.replace s.table (file, block) n;
          lru_push_front s.probation n;
          s.insertions <- s.insertions + 1;
          s.inserted_bytes <- s.inserted_bytes + n.weight;
          evict_to_cap s)

let invalidate_file t ~file =
  Array.iter
    (fun s ->
      Mutexes.with_lock s.mutex (fun () ->
          let victims =
            Hashtbl.fold
              (fun _ n acc -> if n.file = file then n :: acc else acc)
              s.table []
          in
          List.iter
            (fun n ->
              lru_unlink (seg_list s n.seg) n;
              Hashtbl.remove s.table (n.file, n.block))
            victims))
    t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutexes.with_lock s.mutex (fun () ->
          Hashtbl.reset s.table;
          s.probation.head <- None;
          s.probation.tail <- None;
          s.probation.bytes <- 0;
          s.protected.head <- None;
          s.protected.tail <- None;
          s.protected.bytes <- 0))
    t.shards

let counters t =
  Array.fold_left
    (fun (acc : counters) s ->
      Mutexes.with_lock s.mutex (fun () ->
          {
            hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            evictions = acc.evictions + s.evictions;
            insertions = acc.insertions + s.insertions;
            inserted_bytes = acc.inserted_bytes + s.inserted_bytes;
            resident_bytes =
              acc.resident_bytes + s.probation.bytes + s.protected.bytes;
            resident_entries = acc.resident_entries + Hashtbl.length s.table;
          }))
    {
      hits = 0;
      misses = 0;
      evictions = 0;
      insertions = 0;
      inserted_bytes = 0;
      resident_bytes = 0;
      resident_entries = 0;
    }
    t.shards

let reset_counters t =
  Array.iter
    (fun s ->
      Mutexes.with_lock s.mutex (fun () ->
          s.hits <- 0;
          s.misses <- 0;
          s.evictions <- 0;
          s.insertions <- 0;
          s.inserted_bytes <- 0))
    t.shards
