(** Client adaptor for the LittleTable server.

    The equivalent of the paper's SQLite virtual-table adaptor (§3.1):
    it keeps one persistent TCP connection (whose loss is how clients
    detect a server crash, §3.1), caches table schemas, turns big scans
    into a sequence of capped queries driven by the server's
    [more_available] flag (§3.5), and exposes an {!Lt_sql.Executor}
    backend so applications can speak SQL over the wire.

    All calls are synchronous and raise {!Remote_error} when the server
    reports an error and {!Disconnected} when the connection drops —
    after which the application re-runs its recovery logic (§4.1) and
    {!reconnect}s. *)

open Littletable

exception Remote_error of string

exception Disconnected

(** An insert landed some rows and then failed. The payload is the
    server's accounting: per group label, how many leading rows are
    committed — resend only the rest. Raised by {!insert},
    {!buffered_insert} and {!flush}. *)
exception Partial_insert of (string * int) list * string

type t

(** [create ?obs ?connect_timeout ?host ~port ()] builds a client
    handle without touching the network — requests raise
    {!Disconnected} until {!reconnect} succeeds. [obs] receives a
    [lt_client_reconnects_total{peer="host:port"}] count of every
    connection attempt; [connect_timeout] (seconds) bounds each TCP
    connect instead of waiting out the kernel's timeout.

    [batch_rows] (default 256) and [batch_interval_ms] (default 50) are
    the {!buffered_insert} flush thresholds; [clock] times the interval
    (tests pass a manual clock). *)
val create :
  ?obs:Lt_obs.Obs.t -> ?connect_timeout:float -> ?clock:Lt_util.Clock.t ->
  ?batch_rows:int -> ?batch_interval_ms:int -> ?host:string -> port:int ->
  unit -> t

(** Connect and exchange hellos ({!create} + one {!reconnect} attempt). *)
val connect :
  ?obs:Lt_obs.Obs.t -> ?connect_timeout:float -> ?clock:Lt_util.Clock.t ->
  ?batch_rows:int -> ?batch_interval_ms:int -> ?host:string -> port:int ->
  unit -> t

val close : t -> unit

(** (Re-)establish the TCP connection and exchange hellos, retrying
    with exponential backoff (50 ms doubling, capped at 2 s) up to
    [max_attempts] times (default 5). Raises {!Remote_error} once the
    attempts are exhausted. Each attempt increments
    [lt_client_reconnects_total].

    Rows still buffered by {!buffered_insert} are flushed once the new
    connection is up — flush-or-fail, deterministically: the buffer only
    ever holds rows that were never written to a socket, so the flush
    cannot replay anything, and a flush failure propagates rather than
    dropping rows silently. *)
val reconnect : ?max_attempts:int -> t -> unit

(** Whether a connection is currently established. *)
val connected : t -> bool

(** ["host:port"], for labeling metrics and error messages. *)
val peer : t -> string

(** One raw protocol round trip — no unwrapping, [Error] responses are
    returned as values. The cluster router forwards requests with this. *)
val request : t -> Protocol.request -> Protocol.response

val ping : t -> unit

(** {1 Tables} *)

val list_tables : t -> string list

(** Schema and TTL, cached after the first fetch (the paper's adaptor
    loads the schema at initialization, §3.1). *)
val table_info : t -> string -> Schema.t * int64 option

val create_table : t -> string -> Schema.t -> ttl:int64 option -> unit

val drop_table : t -> string -> unit

(** {1 Data} *)

(** Immediate (unbuffered) insert: one round trip.
    @raise Partial_insert when a mid-batch uniqueness violation left a
    prefix of the rows committed. *)
val insert : t -> string -> Value.t array list -> unit

(** {2 Buffered inserts — the batched hot path}

    [buffered_insert t table rows] appends to a client-side buffer
    instead of performing a round trip; the buffer is sent as one
    [Insert_batch] frame when it reaches [batch_rows] rows or the
    oldest buffered row is [batch_interval_ms] old (checked on each
    call against the client's [clock]). Rows for several tables may be
    buffered together; arrival order is preserved. *)
val buffered_insert : t -> string -> Value.t array list -> unit

(** Send every buffered row now. No-op on an empty buffer.
    @raise Partial_insert naming what landed when the batch failed
    part-way; @raise Remote_error when nothing landed. Either way the
    buffer is left empty — the caller owns retries, so nothing is ever
    resent implicitly. *)
val flush : t -> unit

(** Rows currently buffered. *)
val pending : t -> int

type page = {
  rows : Value.t array list;
  more_available : bool;
  scanned : int;
  profile : Lt_obs.Profile.t option;
}

(** One server round trip; at most the server's row cap. [?profile]
    overrides the sticky {!set_profiling} flag for this page (explicit
    profiles are returned but not accumulated for {!take_profiles} —
    the router's mode). *)
val query_page : ?profile:bool -> t -> string -> Query.t -> page

(** Whole result set: pages through [more_available] by advancing the
    key bound past the last row received, exactly like the paper's
    adaptor (§3.5). Respects the query's own limit. *)
val query_all : t -> string -> Query.t -> Value.t array list

(** Streaming variant of {!query_all}; fetches pages lazily. *)
val query_iter : t -> string -> Query.t -> (unit -> Value.t array option)

(** [advance_past schema q last_row] is the §3.5 resubmission step: the
    query whose key bound excludes [last_row]'s full primary key, in
    [q]'s direction. Exposed for the router's per-shard paging. *)
val advance_past : Schema.t -> Query.t -> Value.t array -> Query.t

val latest : t -> string -> Value.t list -> Value.t array option

(** The §4.1.2 flush command: returns once every row with a timestamp
    [<= ts] is durable. *)
val flush_before : t -> string -> ts:int64 -> unit

(** The §7 bulk delete: remove every row whose key starts with the
    prefix; returns rows deleted. *)
val delete_prefix : t -> string -> Value.t list -> int

(** {1 Schema evolution} (§3.5) *)

val add_column : t -> string -> Schema.column -> unit

val widen_column : t -> string -> column:string -> unit

val set_ttl : t -> string -> ttl:int64 option -> unit

val stats : t -> string -> Stats.snapshot

(** The server's Prometheus text exposition — the same document its
    [/metrics] HTTP endpoint serves. *)
val metrics : t -> string

(** The server's most recent slow-op spans, newest first; [n] caps the
    count (default 20). *)
val slow_ops : ?n:int -> t -> Lt_obs.Trace.span list

(** How the peer places data: a single-node server answers
    [policy = "single"]; a router describes its shard set. *)
val placement : t -> Protocol.placement_info

(** {1 Distributed observability} *)

(** When on, every query page asks the server for a per-stage
    {!Lt_obs.Profile.t}; profiles come back with the result pages and
    are retained until {!take_profiles}. Off by default. *)
val set_profiling : t -> bool -> unit

val profiling : t -> bool

(** Profiles accumulated since the last call, oldest first (one per
    page; aggregate with {!Lt_obs.Profile.aggregate}). *)
val take_profiles : t -> Lt_obs.Profile.t list

(** Trace id of the most recent traced request, if this client's [obs]
    is enabled — what the shell's [.trace last] resolves to. *)
val last_trace : t -> (int64 * int64) option

(** All spans the peer retains for one trace, oldest first; a router
    answers with its own spans plus every backend's. *)
val trace : t -> int64 * int64 -> Lt_obs.Trace.span list

(** The peer's metrics registry as mergeable plain data. *)
val metrics_snapshot : t -> Lt_obs.Metrics.snapshot

(** {1 SQL} *)

(** An {!Lt_sql.Executor} backend speaking this connection. *)
val sql_backend : t -> Lt_sql.Executor.backend

(** Convenience: parse and execute one statement remotely. *)
val sql : t -> string -> Lt_sql.Executor.result
