open Littletable
module Obs = Lt_obs.Obs
module Metrics = Lt_obs.Metrics
module Trace = Lt_obs.Trace

let log = Logs.Src.create "lt.server" ~doc:"LittleTable server"

module Log = (val Logs.src_log log)

(* What the connection loops need from whatever is behind them — a local
   [Db.t] or a cluster router. Keeping the socket plumbing generic means
   the router front-end is wire-identical to a single-node server. *)
type backend = {
  b_handle : Protocol.request -> Protocol.response;
  b_obs : Obs.t;
  b_render : unit -> string;  (** Prometheus exposition for the HTTP port *)
  b_maintenance : (unit -> unit) option;
  b_on_stop : unit -> unit;  (** final flush/teardown, runs once in [stop] *)
}

type t = {
  backend : backend;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics_fd : Unix.file_descr option;
  metrics_bound_port : int option;
  running : bool Atomic.t;
  mutable threads : (Thread.t * Unix.file_descr) list;
  accept_thread : Thread.t option ref;
  maint_thread : Thread.t option ref;
  metrics_thread : Thread.t option ref;
  mutex : Mutex.t;
  stopped : Condition.t;
}

let port t = t.bound_port

let metrics_port t = t.metrics_bound_port

let handle db req =
  let open Protocol in
  match req with
  | Hello v ->
      if v <> Protocol.version then
        Error (Printf.sprintf "unsupported protocol version %d" v)
      else Hello_ok Protocol.version
  | Ping -> Pong
  | List_tables -> Tables (Db.table_names db)
  | Get_table name -> (
      match Db.find_table db name with
      | Some tbl -> Table_info { schema = Table.schema tbl; ttl = Table.ttl tbl }
      | None -> Error (Printf.sprintf "no such table %S" name))
  | Create_table { table; schema; ttl } -> (
      match Db.create_table db table schema ~ttl with
      | (_ : Table.t) -> Ok
      | exception Invalid_argument msg -> Error msg)
  | Drop_table name -> (
      match Db.drop_table db name with
      | () -> Ok
      | exception Not_found -> Error (Printf.sprintf "no such table %S" name))
  | Insert { table; rows } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.insert_report tbl rows with
          | Result.Ok () -> Insert_ok (List.length rows)
          | Result.Error (0, key) ->
              Error (Printf.sprintf "duplicate key (%s)" key)
          | Result.Error (landed, key) ->
              (* Rows before the duplicate are committed and stay; the
                 old [Error]-only answer left clients unable to tell, so
                 a retry double-sent the prefix. *)
              Insert_partial
                {
                  landed = [ (table, landed) ];
                  message = Printf.sprintf "duplicate key (%s)" key;
                }
          | exception Schema.Invalid msg -> Error msg))
  | Insert_batch { groups = payload } -> (
      (* Groups run in order; on a failure the answer names how many
         rows of every attempted group are in, so the client resends
         only the remainder. The payload arrives raw (undecoded) from
         the frame reader; a malformed one surfaces here. *)
      match Protocol.groups_of_payload payload with
      | exception Protocol.Protocol_error msg -> Error msg
      | exception Lt_util.Binio.Corrupt msg -> Error msg
      | groups -> (
      let landed = ref [] in
      let failure = ref None in
      (try
         List.iter
           (fun (table, rows) ->
             match Db.find_table db table with
             | None ->
                 failure := Some (Printf.sprintf "no such table %S" table);
                 raise Exit
             | Some tbl -> (
                 match Table.insert_report tbl rows with
                 | Result.Ok () ->
                     landed := (table, List.length rows) :: !landed
                 | Result.Error (n, key) ->
                     landed := (table, n) :: !landed;
                     failure :=
                       Some (Printf.sprintf "duplicate key (%s)" key);
                     raise Exit
                 | exception Schema.Invalid msg ->
                     landed := (table, 0) :: !landed;
                     failure := Some msg;
                     raise Exit))
           groups
       with Exit -> ());
      match !failure with
      | None ->
          Insert_ok (List.fold_left (fun acc (_, n) -> acc + n) 0 !landed)
      | Some msg ->
          if List.for_all (fun (_, n) -> n = 0) !landed then Error msg
          else Insert_partial { landed = List.rev !landed; message = msg }))
  | Query { table; query; profile } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl ->
          let r = Table.query ~profile tbl query in
          Row_batch
            {
              rows = r.Table.rows;
              more_available = r.Table.more_available;
              scanned = r.Table.scanned;
              profile = r.Table.profile;
            })
  | Latest { table; prefix } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.latest tbl prefix with
          | row -> Latest_row row
          | exception Schema.Invalid msg -> Error msg))
  | Flush_before { table; ts } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl ->
          Table.flush_before tbl ~ts;
          Ok)
  | Get_stats table -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> Stats_resp (Table.stats tbl))
  | Delete_prefix { table; prefix } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.delete_prefix tbl prefix with
          | n -> Deleted n
          | exception Schema.Invalid msg -> Error msg))
  | Add_column { table; column } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.add_column tbl column with
          | () -> Ok
          | exception Schema.Invalid msg -> Error msg))
  | Widen_column { table; column } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl -> (
          match Table.widen_column tbl column with
          | () -> Ok
          | exception Schema.Invalid msg -> Error msg))
  | Set_ttl { table; ttl } -> (
      match Db.find_table db table with
      | None -> Error (Printf.sprintf "no such table %S" table)
      | Some tbl ->
          Table.set_ttl tbl ttl;
          Ok)
  | Get_metrics -> Metrics_text (Obs.render (Db.obs db))
  | Get_slow_ops n ->
      Slow_ops (Trace.slow ~n:(max 0 n) (Obs.trace (Db.obs db)))
  | Get_placement ->
      Placement_info { pl_epoch = 0; pl_policy = "single"; pl_backends = [] }
  | Get_trace (hi, lo) ->
      Trace_spans (Trace.find_trace (Obs.trace (Db.obs db)) ~hi ~lo)
  | Get_metrics_snapshot ->
      Metrics_snapshot (Metrics.snapshot (Obs.registry (Db.obs db)))

let db_backend db =
  {
    b_handle = handle db;
    b_obs = Db.obs db;
    b_render = (fun () -> Obs.render (Db.obs db));
    b_maintenance = Some (fun () -> Db.maintenance db);
    b_on_stop = (fun () -> Db.flush_all db);
  }

let client_loop t fd =
  let obs = t.backend.b_obs in
  let finished = ref false in
  while Atomic.get t.running && not !finished do
    match Protocol.recv_request fd with
    | incoming_ctx, req ->
        let t0 = Obs.now_us obs in
        (* The request span: child of the caller's context when one came
           over the wire, a fresh root otherwise. Handler-side engine
           spans attach under it via the thread's ambient context. *)
        let ctx =
          if Obs.enabled obs then
            Some
              (match incoming_ctx with
              | Some c -> Trace.child_of c
              | None -> Trace.new_root ~clock:(Obs.clock obs))
          else None
        in
        let resp =
          Trace.with_ctx ctx (fun () ->
              try t.backend.b_handle req with
              | Protocol.Protocol_error msg | Lt_util.Binio.Corrupt msg ->
                  Protocol.Error msg
              | Lt_vfs.Vfs.Io_error msg -> Protocol.Error ("io error: " ^ msg)
              | Invalid_argument msg -> Protocol.Error msg)
        in
        (match ctx with
        | Some c ->
            Obs.record_op obs
              ~hist:(Obs.request_hist obs ~kind:(Protocol.request_kind req))
              ~op:Trace.Request
              ~table:(Protocol.request_kind req)
              ~t0 ~ctx:c ()
        | None -> ());
        (try Protocol.send_response fd resp
         with Unix.Unix_error _ -> finished := true)
    | exception (End_of_file | Unix.Unix_error _) -> finished := true
    | exception Protocol.Protocol_error msg ->
        Log.warn (fun m -> m "malformed frame: %s" msg);
        finished := true
  done;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  (* Poll with a timeout rather than blocking in accept: a thread stuck
     in accept(2) is not reliably woken when another thread closes the
     listening socket, so [stop] could hang on the join. *)
  while Atomic.get t.running do
    match Unix.select [ t.listen_fd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ ->
            (* Mirror of the client side: responses are single gathered
               writes, so Nagle only adds latency. *)
            Unix.setsockopt fd Unix.TCP_NODELAY true;
            Lt_util.Mutexes.with_lock t.mutex (fun () ->
                t.threads <- (Thread.create (client_loop t) fd, fd) :: t.threads)
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---- Metrics HTTP listener ------------------------------------------- *)

let write_string fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  try
    while !off < len do
      let n = Unix.write fd b !off (len - !off) in
      off := !off + n
    done
  with Unix.Unix_error _ -> ()

(* One short-lived connection per scrape: read the request head, serve
   /metrics, close. Handled inline on the listener thread — a metrics
   scrape every few seconds does not need concurrency. *)
let handle_metrics_conn t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let buf = Bytes.create 4096 in
      let n = try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0 in
      if n > 0 then begin
        let head = Bytes.sub_string buf 0 n in
        let first_line =
          match String.index_opt head '\r' with
          | Some i -> String.sub head 0 i
          | None -> head
        in
        let path =
          match String.split_on_char ' ' first_line with
          | _meth :: path :: _ -> path
          | _ -> ""
        in
        let status, body =
          match path with
          | "/metrics" | "/" -> ("200 OK", t.backend.b_render ())
          | _ -> ("404 Not Found", "not found\n")
        in
        write_string fd
          (Printf.sprintf
             "HTTP/1.1 %s\r\n\
              Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
              Content-Length: %d\r\n\
              Connection: close\r\n\
              \r\n\
              %s"
             status (String.length body) body)
      end)

let metrics_loop t fd =
  (* Same select-with-timeout pattern as [accept_loop], for the same
     reason: [stop] must be able to join this thread. *)
  while Atomic.get t.running do
    match Unix.select [ fd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept fd with
        | conn, _ -> handle_metrics_conn t conn
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let maintenance_loop t period maintenance =
  while Atomic.get t.running do
    (* Sleep in small slices so [stop] is prompt. *)
    let slept = ref 0.0 in
    while Atomic.get t.running && !slept < period do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done;
    if Atomic.get t.running then
      try maintenance ()
      with exn ->
        Log.err (fun m -> m "maintenance failed: %s" (Printexc.to_string exn))
  done

let listen_on port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  (fd, bound)

let start_custom ?(maintenance_period_s = 1.0) ?metrics_port ~backend ~port ()
    =
  let fd, bound_port = listen_on port in
  let metrics =
    match metrics_port with
    | None -> None
    | Some p -> (
        match listen_on p with
        | pair -> Some pair
        | exception e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e)
  in
  let t =
    {
      backend;
      listen_fd = fd;
      bound_port;
      metrics_fd = Option.map fst metrics;
      metrics_bound_port = Option.map snd metrics;
      running = Atomic.make true;
      threads = [];
      accept_thread = ref None;
      maint_thread = ref None;
      metrics_thread = ref None;
      mutex = Mutex.create ();
      stopped = Condition.create ();
    }
  in
  t.accept_thread := Some (Thread.create accept_loop t);
  (match backend.b_maintenance with
  | Some m when maintenance_period_s > 0.0 ->
      t.maint_thread :=
        Some (Thread.create (fun () -> maintenance_loop t maintenance_period_s m) ())
  | _ -> ());
  (match t.metrics_fd with
  | Some mfd -> t.metrics_thread := Some (Thread.create (metrics_loop t) mfd)
  | None -> ());
  Log.info (fun m -> m "listening on 127.0.0.1:%d" bound_port);
  (match t.metrics_bound_port with
  | Some p -> Log.info (fun m -> m "metrics on http://127.0.0.1:%d/metrics" p)
  | None -> ());
  t

let start ?maintenance_period_s ?metrics_port ~db ~port () =
  let t =
    start_custom ?maintenance_period_s ?metrics_port ~backend:(db_backend db)
      ~port ()
  in
  (match Db.scan_pool db with
  | Some pool ->
      Log.info (fun m ->
          m "parallel scans over %d worker domain%s (shared across clients)"
            (Lt_exec.Pool.size pool)
            (if Lt_exec.Pool.size pool = 1 then "" else "s"))
  | None -> Log.info (fun m -> m "parallel scans disabled (query_domains=0)"));
  t

(* [stop] may run inside one of the server's own threads: OCaml signal
   handlers execute on whichever thread next reaches a safepoint, and the
   select-with-timeout loops make the accept/metrics threads the likely
   candidates. Joining the current thread would deadlock forever. *)
let join_unless_self th =
  if Thread.id th <> Thread.id (Thread.self ()) then Thread.join th

let stop t =
  if Atomic.get t.running then begin
    Atomic.set t.running false;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.metrics_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    (match !(t.accept_thread) with Some th -> join_unless_self th | None -> ());
    (match !(t.maint_thread) with Some th -> join_unless_self th | None -> ());
    (match !(t.metrics_thread) with Some th -> join_unless_self th | None -> ());
    let threads =
      Lt_util.Mutexes.with_lock t.mutex (fun () ->
          let ths = t.threads in
          t.threads <- [];
          ths)
    in
    (* Unblock handlers waiting in recv, then join them. *)
    List.iter
      (fun (_, fd) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      threads;
    List.iter (fun (th, _) -> join_unless_self th) threads;
    t.backend.b_on_stop ();
    Lt_util.Mutexes.with_lock t.mutex (fun () -> Condition.broadcast t.stopped)
  end

let wait t =
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      while Atomic.get t.running do
        Condition.wait t.stopped t.mutex
      done)
