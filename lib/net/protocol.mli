(** Wire protocol between the LittleTable server and its client adaptor.

    "Internally, the adaptor communicates with the server over TCP to get
    a list of available tables, determine the schema and sort order of
    each table, and perform inserts or queries" (§3.1). Our protocol is a
    synchronous request/response exchange of length-framed binary
    messages: a [u32] little-endian frame length followed by a one-byte
    tag and a {!Lt_util.Binio}-encoded body.

    Values travel with a type tag so row encoding is schema-independent.
    A query produces one [Row_batch] capped at the server's row limit,
    with the §3.5 [more_available] flag telling the adaptor to advance
    its key bound and resubmit. *)

open Littletable

exception Protocol_error of string

(** A batch's groups, either structured (the sender holds rows in hand)
    or raw: the undecoded wire bytes of the groups section, as captured
    by {!read_request}. Both spellings share one wire format. Raw is
    the zero-copy half — a router can scan the payload for each row's
    leading key and forward the row's byte span verbatim, never boxing
    the other columns; {!groups_of_payload} decodes when a receiver
    finally needs the rows. *)
type batch_payload =
  | Groups of (string * Value.t array list) list
  | Raw of string

type request =
  | Hello of int  (** protocol version *)
  | List_tables
  | Get_table of string  (** schema + ttl *)
  | Create_table of { table : string; schema : Schema.t; ttl : int64 option }
  | Drop_table of string
  | Insert of { table : string; rows : Value.t array list }
  | Query of { table : string; query : Query.t; profile : bool }
      (** [profile] asks for a per-stage {!Lt_obs.Profile.t} with the
          batch — EXPLAIN ANALYZE, off by default *)
  | Latest of { table : string; prefix : Value.t list }
  | Flush_before of { table : string; ts : int64 }
      (** the §4.1.2 proposed flush command *)
  | Get_stats of string
  | Ping
  | Delete_prefix of { table : string; prefix : Value.t list }
      (** the §7 bulk-delete feature *)
  | Add_column of { table : string; column : Schema.column }
  | Widen_column of { table : string; column : string }
  | Set_ttl of { table : string; ttl : int64 option }
  | Get_metrics  (** Prometheus exposition of the server's registry *)
  | Get_slow_ops of int  (** at most this many slow spans, newest first *)
  | Get_placement
      (** ask how the serving process maps keys to backends; a plain
          single-node server answers with policy ["single"] and no
          backends, a router describes its shard set *)
  | Get_trace of (int64 * int64)
      (** all retained spans of the trace [(hi, lo)]; a router also
          pulls each backend's matching spans, so the answer is the
          whole cross-process tree *)
  | Get_metrics_snapshot
      (** the registry as mergeable plain data ({!Lt_obs.Metrics.snapshot});
          how a router federates backend metrics *)
  | Insert_batch of { groups : batch_payload }
      (** client-buffered inserts, possibly for several tables, in one
          frame — the batched hot path. Groups execute in order; the
          answer is [Insert_ok total] or [Insert_partial] naming how
          many rows of each group landed before a failure *)

(** How the answering process places data, exposed for the shell's
    [.cluster] command and cluster-aware clients. *)
type placement_info = {
  pl_epoch : int;  (** bumped by every rebalance *)
  pl_policy : string;  (** e.g. ["single"], ["hash(vnodes=64)"] *)
  pl_backends : (string * int) list;  (** shard order = shard index *)
}

type response =
  | Hello_ok of int
  | Tables of string list
  | Table_info of { schema : Schema.t; ttl : int64 option }
  | Ok
  | Insert_ok of int
  | Row_batch of {
      rows : Value.t array list;
      more_available : bool;
      scanned : int;
      profile : Lt_obs.Profile.t option;  (** present iff requested *)
    }
  | Latest_row of Value.t array option
  | Stats_resp of Stats.snapshot
  | Error of string
  | Pong
  | Deleted of int
  | Metrics_text of string
  | Slow_ops of Lt_obs.Trace.span list
  | Placement_info of placement_info
  | Trace_spans of Lt_obs.Trace.span list  (** oldest first *)
  | Metrics_snapshot of Lt_obs.Metrics.snapshot
  | Insert_partial of { landed : (string * int) list; message : string }
      (** an insert failed after some rows had already committed.
          [landed] names, per group label (a table name on a
          single-node answer, a ["shard<i>/<table>"] label on a routed
          one), how many leading rows of that group are in — so a
          client retries only the remainder instead of double-sending *)

val version : int

(** Stable short name of a request's constructor, used as the [kind]
    label on request-duration metrics. *)
val request_kind : request -> string

(** {1 Batch payloads} *)

(** Decode a payload's groups (a no-op on [Groups]).
    @raise Protocol_error or {!Lt_util.Binio.Corrupt} on malformed raw
    bytes — deferred from {!read_request}, which no longer validates
    the groups section it captures. *)
val groups_of_payload : batch_payload -> (string * Value.t array list) list

(** Read one tagged value / step over one without constructing it — the
    primitives of a raw-payload span scan. *)

val get_value : Lt_util.Binio.cursor -> Value.t
val skip_value : Lt_util.Binio.cursor -> unit

(** Append one row (arity varint, then each value tagged) — what a
    buffering client uses to encode rows as they arrive, so its flush
    is a concatenation rather than a re-walk of the rows. *)
val put_row : Buffer.t -> Value.t array -> unit

(** {1 Framing} *)

val write_request : Buffer.t -> request -> unit
val read_request : Lt_util.Binio.cursor -> request
val write_response : Buffer.t -> response -> unit
val read_response : Lt_util.Binio.cursor -> response

(** Trace-context codec (exposed for protocol tests). On the wire a
    request frame is: one presence byte, four i64s when present, then
    the tagged request body. *)

val put_ctx : Buffer.t -> Lt_obs.Trace.ctx -> unit
val get_ctx : Lt_util.Binio.cursor -> Lt_obs.Trace.ctx
val put_opt_ctx : Buffer.t -> Lt_obs.Trace.ctx option -> unit
val get_opt_ctx : Lt_util.Binio.cursor -> Lt_obs.Trace.ctx option

(** {1 Socket helpers} (blocking, thread-safe per direction)

    Frames go out writev-style: the length header and the message body
    are gathered into one buffer (the length patched over four reserved
    bytes) and leave in a single write, so a batch costs one syscall
    rather than per-message header writes. *)

val send_frame : Unix.file_descr -> string -> unit

(** @raise End_of_file on a closed peer,
    {!Protocol_error} on oversized or malformed frames. *)
val recv_frame : Unix.file_descr -> string

(** [send_request ?ctx fd req] prefixes the frame with the trace
    context, if any. *)
val send_request : ?ctx:Lt_obs.Trace.ctx -> Unix.file_descr -> request -> unit

(** The incoming context (if the peer sent one) plus the request. *)
val recv_request : Unix.file_descr -> Lt_obs.Trace.ctx option * request
val send_response : Unix.file_descr -> response -> unit
val recv_response : Unix.file_descr -> response
