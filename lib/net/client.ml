open Littletable
module Obs = Lt_obs.Obs
module Metrics = Lt_obs.Metrics

exception Remote_error of string

exception Disconnected

exception Partial_insert of (string * int) list * string

type t = {
  host : string;
  port : int;
  peer : string;
  obs : Obs.t;
  connect_timeout : float option;
  clock : Lt_util.Clock.t;  (** times the buffer's flush interval *)
  batch_rows : int;
  batch_interval_us : int64;
  mutable fd : Unix.file_descr option;
  schemas : (string, Schema.t * int64 option) Hashtbl.t;
  mutex : Mutex.t;  (** one outstanding request per connection *)
  mutable profiling : bool;  (** ask for per-query profiles by default *)
  mutable profiles : Lt_obs.Profile.t list;  (** newest first; see [take_profiles] *)
  mutable last_trace : (int64 * int64) option;  (** newest wire trace id *)
  mutable buf_groups : (string * int ref * Buffer.t) list;
      (** pending buffered inserts, per table, newest group first, each
          already in wire encoding — [buffered_insert] encodes rows as
          they arrive, so [flush] assembles the frame by concatenation
          instead of re-walking the rows. Every row here is
          not-yet-sent — [flush] removes rows from the buffer before
          the wire write, so nothing is ever replayed *)
  mutable buf_count : int;
  mutable buf_deadline : int64;  (** flush due once [Clock.now >= this] *)
}

let peer t = t.peer

let connect_error host port e =
  Remote_error
    (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))

(* Plain blocking connect, or — when a timeout is set — a non-blocking
   connect raced against select(2) so a black-holed backend cannot stall
   the router for the kernel's full TCP timeout. *)
let connect_fd ?timeout host port =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    (match timeout with
    | None -> Unix.connect fd addr
    | Some tmo ->
        Unix.set_nonblock fd;
        (try Unix.connect fd addr
         with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
           match Unix.select [] [ fd ] [] tmo with
           | _, _ :: _, _ -> (
               match Unix.getsockopt_error fd with
               | None -> ()
               | Some e -> raise (Unix.Unix_error (e, "connect", "")))
           | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))));
        Unix.clear_nonblock fd);
    (* The protocol is strict request/response and frames leave in one
       write; Nagle would hold each frame's final partial segment until
       the peer ACKs, adding a round trip of idle latency per message. *)
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (connect_error host port e)

let drop_connection t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None

(* Every outbound request carries a trace context when this client's
   observability is on: a child of the calling thread's ambient context
   (one statement = one trace, even across resubmitted pages) or a fresh
   root. The round trip is recorded as a [Backend] span in this
   process's own ring — span only, no histogram, so the router's
   backend-latency series (owned by [Cluster_client]) is not double
   counted. *)
let roundtrip t req =
  let ctx =
    if Obs.enabled t.obs then
      Some
        (match Lt_obs.Trace.current () with
        | Some c -> Lt_obs.Trace.child_of c
        | None -> Lt_obs.Trace.new_root ~clock:(Obs.clock t.obs))
    else None
  in
  let t0 = Obs.now_us t.obs in
  let resp =
    Lt_util.Mutexes.with_lock t.mutex
      (fun () ->
        match t.fd with
        | None -> raise Disconnected
        | Some fd -> (
            match
              Protocol.send_request ?ctx fd req;
              Protocol.recv_response fd
            with
            | resp -> resp
            | exception (End_of_file | Unix.Unix_error _) ->
                drop_connection t;
                raise Disconnected))
  in
  (match ctx with
  | Some c ->
      Lt_util.Mutexes.with_lock t.mutex (fun () ->
          t.last_trace <- Some (c.Lt_obs.Trace.cx_trace_hi, c.cx_trace_lo));
      Lt_obs.Trace.record (Obs.trace t.obs)
        { Lt_obs.Trace.sp_op = Lt_obs.Trace.Backend;
          sp_table = t.peer;
          sp_start_us = t0;
          sp_duration_us = Int64.max 0L (Int64.sub (Obs.now_us t.obs) t0);
          sp_scanned = 0;
          sp_returned = 0;
          sp_tablets = 0;
          sp_cache_hits = 0;
          sp_cache_misses = 0;
          sp_ctx = Some c }
  | None -> ());
  resp

let request = roundtrip

let expect_ok = function
  | Protocol.Ok -> ()
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "unexpected response")

let hello t =
  match roundtrip t (Protocol.Hello Protocol.version) with
  | Protocol.Hello_ok _ -> ()
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad hello response")

(* Take every pending buffered row out, oldest first. Removing rows
   [before] the wire write is the no-replay guarantee: whatever happens
   to the send, the buffer never holds a row the server might already
   have, so a later flush or reconnect cannot double-insert. *)
(* Assemble the pending groups into a finished [Insert_batch] payload
   (the groups section in wire order) and empty the buffer, in one
   locked step. Returns [None] when nothing is pending. *)
let take_pending t =
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      match t.buf_groups with
      | [] -> None
      | newest_first ->
          let groups = List.rev newest_first in
          let b = Buffer.create 4096 in
          Lt_util.Binio.put_varint b (List.length groups);
          List.iter
            (fun (tbl, count, rows) ->
              Lt_util.Binio.put_string b tbl;
              Lt_util.Binio.put_varint b !count;
              Buffer.add_buffer b rows)
            groups;
          t.buf_groups <- [];
          t.buf_count <- 0;
          t.buf_deadline <- Int64.max_int;
          Some (Buffer.contents b))

let flush t =
  match take_pending t with
  | None -> ()
  | Some payload -> (
      match
        roundtrip t (Protocol.Insert_batch { groups = Protocol.Raw payload })
      with
      | Protocol.Insert_ok _ -> ()
      | Protocol.Insert_partial { landed; message } ->
          raise (Partial_insert (landed, message))
      | Protocol.Error msg -> raise (Remote_error msg)
      | _ -> raise (Remote_error "bad insert response"))

let buffered_insert t table rows =
  if rows <> [] then begin
    let due =
      Lt_util.Mutexes.with_lock t.mutex (fun () ->
          let was_empty = t.buf_count = 0 in
          let count, gbuf =
            match t.buf_groups with
            | (tbl, count, gbuf) :: _ when String.equal tbl table ->
                (count, gbuf)
            | _ ->
                let count = ref 0 and gbuf = Buffer.create 1024 in
                t.buf_groups <- (table, count, gbuf) :: t.buf_groups;
                (count, gbuf)
          in
          List.iter
            (fun row ->
              Protocol.put_row gbuf row;
              incr count;
              t.buf_count <- t.buf_count + 1)
            rows;
          if was_empty then
            t.buf_deadline <-
              Int64.add (Lt_util.Clock.now t.clock) t.batch_interval_us;
          t.buf_count >= t.batch_rows
          || Lt_util.Clock.now t.clock >= t.buf_deadline)
    in
    if due then flush t
  end

let pending t = Lt_util.Mutexes.with_lock t.mutex (fun () -> t.buf_count)

let create ?(obs = Obs.noop) ?connect_timeout ?(clock = Lt_util.Clock.system)
    ?(batch_rows = 256) ?(batch_interval_ms = 50) ?(host = "127.0.0.1") ~port
    () =
  if batch_rows < 1 then invalid_arg "Client.create: batch_rows < 1";
  if batch_interval_ms < 0 then
    invalid_arg "Client.create: batch_interval_ms < 0";
  {
    host;
    port;
    peer = Printf.sprintf "%s:%d" host port;
    obs;
    connect_timeout;
    clock;
    batch_rows;
    batch_interval_us = Lt_util.Clock.msec batch_interval_ms;
    fd = None;
    schemas = Hashtbl.create 8;
    mutex = Mutex.create ();
    profiling = false;
    profiles = [];
    last_trace = None;
    buf_groups = [];
    buf_count = 0;
    buf_deadline = Int64.max_int;
  }

let connected t =
  Lt_util.Mutexes.with_lock t.mutex (fun () -> t.fd <> None)

(* Exponential backoff between attempts: 50 ms doubling to a 2 s cap.
   The first attempt is immediate; with the default 5 attempts a dead
   peer costs ~750 ms of sleep before [Remote_error] propagates. *)
let backoff_delay k = Float.min 2.0 (0.05 *. Float.of_int (1 lsl k))

let reconnect ?(max_attempts = 5) t =
  if max_attempts < 1 then invalid_arg "Client.reconnect: max_attempts < 1";
  let rec attempt k =
    Lt_util.Mutexes.with_lock t.mutex (fun () -> drop_connection t);
    Metrics.Counter.inc (Obs.client_reconnects t.obs ~peer:t.peer) 1;
    match connect_fd ?timeout:t.connect_timeout t.host t.port with
    | fd ->
        Lt_util.Mutexes.with_lock t.mutex (fun () ->
            t.fd <- Some fd;
            Hashtbl.reset t.schemas);
        hello t;
        (* Deliver rows buffered across the outage — they were never
           sent (flush empties the buffer before each wire write), so
           this is flush-or-fail, never a replay and never a silent
           drop. A failure here propagates to the caller. *)
        flush t
    | exception (Remote_error _ as e) ->
        if k + 1 >= max_attempts then raise e
        else begin
          Thread.delay (backoff_delay k);
          attempt (k + 1)
        end
  in
  attempt 0

let connect ?obs ?connect_timeout ?clock ?batch_rows ?batch_interval_ms ?host
    ~port () =
  let t =
    create ?obs ?connect_timeout ?clock ?batch_rows ?batch_interval_ms ?host
      ~port ()
  in
  reconnect ~max_attempts:1 t;
  t

let close t = Lt_util.Mutexes.with_lock t.mutex (fun () -> drop_connection t)

let ping t =
  match roundtrip t Protocol.Ping with
  | Protocol.Pong -> ()
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad ping response")

let list_tables t =
  match roundtrip t Protocol.List_tables with
  | Protocol.Tables names -> names
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad tables response")

let table_info t name =
  let cached =
    Lt_util.Mutexes.with_lock t.mutex (fun () ->
        Hashtbl.find_opt t.schemas name)
  in
  match cached with
  | Some info -> info
  | None -> (
      (* The roundtrip stays outside the mutex: it blocks on the wire,
         and a concurrent miss merely repeats an idempotent fetch. *)
      match roundtrip t (Protocol.Get_table name) with
      | Protocol.Table_info { schema; ttl } ->
          Lt_util.Mutexes.with_lock t.mutex (fun () ->
              Hashtbl.replace t.schemas name (schema, ttl));
          (schema, ttl)
      | Protocol.Error msg -> raise (Remote_error msg)
      | _ -> raise (Remote_error "bad table info response"))

let create_table t name schema ~ttl =
  expect_ok (roundtrip t (Protocol.Create_table { table = name; schema; ttl }))

let drop_table t name =
  Lt_util.Mutexes.with_lock t.mutex (fun () -> Hashtbl.remove t.schemas name);
  expect_ok (roundtrip t (Protocol.Drop_table name))

let insert t table rows =
  match roundtrip t (Protocol.Insert { table; rows }) with
  | Protocol.Insert_ok _ -> ()
  | Protocol.Insert_partial { landed; message } ->
      raise (Partial_insert (landed, message))
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad insert response")

type page = {
  rows : Value.t array list;
  more_available : bool;
  scanned : int;
  profile : Lt_obs.Profile.t option;
}

let set_profiling t b = t.profiling <- b

let profiling t = t.profiling

let take_profiles t =
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      let ps = t.profiles in
      t.profiles <- [];
      List.rev ps)

let last_trace t = Lt_util.Mutexes.with_lock t.mutex (fun () -> t.last_trace)

let query_page ?profile t table query =
  (* Explicit [?profile] (the router) bypasses the sticky flag and the
     accumulator — only implicit (shell-style) profiles are retained for
     [take_profiles], so a router never accumulates unboundedly. *)
  let implicit = profile = None in
  let profile = Option.value profile ~default:t.profiling in
  match roundtrip t (Protocol.Query { table; query; profile }) with
  | Protocol.Row_batch { rows; more_available; scanned; profile = p } ->
      (match p with
      | Some prof when implicit ->
          Lt_util.Mutexes.with_lock t.mutex (fun () ->
              t.profiles <- prof :: t.profiles)
      | _ -> ());
      { rows; more_available; scanned; profile = p }
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad query response")

(* Advance the query past [last_row]: the new lower (ascending) or upper
   (descending) bound excludes the full primary key of the last row
   received — the adaptor's resubmission step (§3.5). *)
let advance_past schema (q : Query.t) last_row =
  let key_values =
    Array.to_list (Array.map (fun i -> last_row.(i)) (Schema.pkey schema))
  in
  match q.Query.direction with
  | Query.Asc -> { q with Query.key_low = Query.Excl key_values }
  | Query.Desc -> { q with Query.key_high = Query.Excl key_values }

let query_iter t table query =
  let schema, _ = table_info t table in
  let remaining = ref query.Query.limit in
  let current = ref query in
  let batch = ref [] in
  let more = ref true in
  let rec next () =
    match !batch with
    | row :: rest ->
        batch := rest;
        (match !remaining with
        | Some 0 -> None
        | Some n ->
            remaining := Some (n - 1);
            Some row
        | None -> Some row)
    | [] ->
        if not !more then None
        else begin
          (match !remaining with
          | Some 0 ->
              more := false
          | _ ->
              let page = query_page t table !current in
              batch := page.rows;
              more := page.more_available;
              (match List.rev page.rows with
              | last :: _ -> current := advance_past schema !current last
              | [] -> more := false));
          if !batch = [] && not !more then None else next ()
        end
  in
  next

let query_all t table query =
  let it = query_iter t table query in
  let rec go acc =
    match it () with None -> List.rev acc | Some row -> go (row :: acc)
  in
  go []

let latest t table prefix =
  match roundtrip t (Protocol.Latest { table; prefix }) with
  | Protocol.Latest_row row -> row
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad latest response")

let flush_before t table ~ts =
  expect_ok (roundtrip t (Protocol.Flush_before { table; ts }))

let delete_prefix t table prefix =
  match roundtrip t (Protocol.Delete_prefix { table; prefix }) with
  | Protocol.Deleted n -> n
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad delete response")

let invalidate_schema t table =
  Lt_util.Mutexes.with_lock t.mutex (fun () -> Hashtbl.remove t.schemas table)

let add_column t table column =
  invalidate_schema t table;
  expect_ok (roundtrip t (Protocol.Add_column { table; column }))

let widen_column t table ~column =
  invalidate_schema t table;
  expect_ok (roundtrip t (Protocol.Widen_column { table; column }))

let set_ttl t table ~ttl =
  invalidate_schema t table;
  expect_ok (roundtrip t (Protocol.Set_ttl { table; ttl }))

let stats t table =
  match roundtrip t (Protocol.Get_stats table) with
  | Protocol.Stats_resp s -> s
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad stats response")

let metrics t =
  match roundtrip t Protocol.Get_metrics with
  | Protocol.Metrics_text text -> text
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad metrics response")

let slow_ops ?(n = 20) t =
  match roundtrip t (Protocol.Get_slow_ops n) with
  | Protocol.Slow_ops spans -> spans
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad slow ops response")

let placement t =
  match roundtrip t Protocol.Get_placement with
  | Protocol.Placement_info info -> info
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad placement response")

let trace t (hi, lo) =
  match roundtrip t (Protocol.Get_trace (hi, lo)) with
  | Protocol.Trace_spans spans -> spans
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad trace response")

let metrics_snapshot t =
  match roundtrip t Protocol.Get_metrics_snapshot with
  | Protocol.Metrics_snapshot snap -> snap
  | Protocol.Error msg -> raise (Remote_error msg)
  | _ -> raise (Remote_error "bad metrics snapshot response")

let sql_backend t =
  {
    Lt_sql.Executor.b_schema =
      (fun name ->
        match table_info t name with
        | schema, _ -> Some schema
        | exception Remote_error _ -> None);
    b_query =
      (fun name q ->
        let it = query_iter t name q in
        fun () -> Option.map (fun row -> ("", row)) (it ()));
    (* No wire aggregation: the client streams rows and aggregates
       locally. Projection pushdown still rides [b_query]'s Query.t. *)
    b_query_agg = None;
    b_insert = (fun name rows ->
        try insert t name rows
        with Remote_error msg -> raise (Lt_sql.Executor.Exec_error msg));
    b_create = (fun name schema ~ttl ->
        try create_table t name schema ~ttl
        with Remote_error msg -> raise (Lt_sql.Executor.Exec_error msg));
    b_drop = (fun name ->
        try drop_table t name
        with Remote_error msg -> raise (Lt_sql.Executor.Exec_error msg));
    b_tables = (fun () -> list_tables t);
    b_now = (fun () -> Lt_util.Clock.now Lt_util.Clock.system);
    b_delete_prefix =
      (fun name prefix ->
        try delete_prefix t name prefix
        with Remote_error msg -> raise (Lt_sql.Executor.Exec_error msg));
    b_add_column =
      (fun name col ->
        try add_column t name col
        with Remote_error msg -> raise (Lt_sql.Executor.Exec_error msg));
    b_widen_column =
      (fun name cname ->
        try widen_column t name ~column:cname
        with Remote_error msg -> raise (Lt_sql.Executor.Exec_error msg));
    b_set_ttl =
      (fun name ttl ->
        try set_ttl t name ~ttl
        with Remote_error msg -> raise (Lt_sql.Executor.Exec_error msg));
  }

let sql t input = Lt_sql.Executor.execute (sql_backend t) input
