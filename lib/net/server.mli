(** The LittleTable server process.

    "LittleTable is a relational database, run as an independent server
    process" (§3.1). This module serves the {!Protocol} over TCP: one
    thread per client connection against a shared {!Littletable.Db.t},
    plus a background maintenance thread that flushes aged memtables,
    merges tablets, and reclaims expired ones.

    Query responses are capped at the engine's server row limit and
    carry the [more_available] flag (§3.5); the client adaptor pages
    through by advancing its key bound.

    The socket plumbing is generic over a {!backend}: the same accept /
    per-connection / metrics / maintenance loops serve either a local
    database ({!start}) or any other request handler such as the cluster
    router ({!start_custom}). *)

type t

(** What the connection loops need from whatever answers requests. *)
type backend = {
  b_handle : Protocol.request -> Protocol.response;
      (** pure request dispatch; exceptions are turned into [Error] *)
  b_obs : Lt_obs.Obs.t;  (** request-duration histograms land here *)
  b_render : unit -> string;  (** Prometheus exposition for the HTTP port *)
  b_maintenance : (unit -> unit) option;
      (** periodic background work; [None] = no maintenance thread *)
  b_on_stop : unit -> unit;  (** final flush/teardown, runs once in [stop] *)
}

(** The single-node request handler, exposed so in-process callers (the
    warm-spare replica, tests) can dispatch without a socket. Handles
    every request including [Get_placement] (answered with policy
    ["single"]). *)
val handle : Littletable.Db.t -> Protocol.request -> Protocol.response

(** A {!backend} serving a local database. *)
val db_backend : Littletable.Db.t -> backend

(** [start ?maintenance_period_s ?metrics_port ~db ~port ()] binds
    [127.0.0.1:port] ([port = 0] picks an ephemeral port) and starts
    accepting. [maintenance_period_s <= 0.] disables the maintenance
    thread (useful under a manual clock). [metrics_port], when given,
    additionally serves the database's Prometheus metrics over HTTP at
    [http://127.0.0.1:<metrics_port>/metrics] ([0] again picks an
    ephemeral port); omitted = no metrics listener. *)
val start :
  ?maintenance_period_s:float ->
  ?metrics_port:int ->
  db:Littletable.Db.t ->
  port:int ->
  unit ->
  t

(** Like {!start} but serving an arbitrary {!backend} — the cluster
    router and replica front-ends use this. *)
val start_custom :
  ?maintenance_period_s:float ->
  ?metrics_port:int ->
  backend:backend ->
  port:int ->
  unit ->
  t

(** The port actually bound. *)
val port : t -> int

(** The metrics HTTP port actually bound, when the listener is on. *)
val metrics_port : t -> int option

(** Stop accepting, close client connections, join threads, and run the
    backend's [b_on_stop] (for a database backend: flush all tables). *)
val stop : t -> unit

(** Serve until [stop] is called from another thread (blocks). *)
val wait : t -> unit
