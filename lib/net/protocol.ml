open Littletable
open Lt_util

exception Protocol_error of string

let error fmt = Format.kasprintf (fun s -> raise (Protocol_error s)) fmt

let version = 4

let max_frame = 64 * 1024 * 1024

(* A batch's groups travel either structured (the sender has rows in
   hand) or raw (the receiver captured the wire bytes without decoding
   them). Both spellings share one wire format; [read_request] always
   returns [Raw] so a router can forward row spans without boxing a
   single value, and [groups_of_payload] decodes on first need. *)
type batch_payload =
  | Groups of (string * Value.t array list) list
  | Raw of string

type request =
  | Hello of int
  | List_tables
  | Get_table of string
  | Create_table of { table : string; schema : Schema.t; ttl : int64 option }
  | Drop_table of string
  | Insert of { table : string; rows : Value.t array list }
  | Query of { table : string; query : Query.t; profile : bool }
  | Latest of { table : string; prefix : Value.t list }
  | Flush_before of { table : string; ts : int64 }
  | Get_stats of string
  | Ping
  | Delete_prefix of { table : string; prefix : Value.t list }
  | Add_column of { table : string; column : Schema.column }
  | Widen_column of { table : string; column : string }
  | Set_ttl of { table : string; ttl : int64 option }
  | Get_metrics
  | Get_slow_ops of int  (** at most this many spans, newest first *)
  | Get_placement
  | Get_trace of (int64 * int64)  (** all retained spans of one trace *)
  | Get_metrics_snapshot  (** mergeable registry image for federation *)
  | Insert_batch of { groups : batch_payload }
      (** buffered inserts, possibly for several tables, in one frame *)

type placement_info = {
  pl_epoch : int;
  pl_policy : string;
  pl_backends : (string * int) list;
}

type response =
  | Hello_ok of int
  | Tables of string list
  | Table_info of { schema : Schema.t; ttl : int64 option }
  | Ok
  | Insert_ok of int
  | Row_batch of {
      rows : Value.t array list;
      more_available : bool;
      scanned : int;
      profile : Lt_obs.Profile.t option;
    }
  | Latest_row of Value.t array option
  | Stats_resp of Stats.snapshot
  | Error of string
  | Pong
  | Deleted of int
  | Metrics_text of string  (** Prometheus exposition *)
  | Slow_ops of Lt_obs.Trace.span list
  | Placement_info of placement_info
  | Trace_spans of Lt_obs.Trace.span list
  | Metrics_snapshot of Lt_obs.Metrics.snapshot
  | Insert_partial of { landed : (string * int) list; message : string }
      (** some rows committed before a failure; [landed] names, per
          group label (table or shard), how many rows are in *)

let request_kind = function
  | Hello _ -> "hello"
  | List_tables -> "list_tables"
  | Get_table _ -> "get_table"
  | Create_table _ -> "create_table"
  | Drop_table _ -> "drop_table"
  | Insert _ -> "insert"
  | Query _ -> "query"
  | Latest _ -> "latest"
  | Flush_before _ -> "flush_before"
  | Get_stats _ -> "get_stats"
  | Ping -> "ping"
  | Delete_prefix _ -> "delete_prefix"
  | Add_column _ -> "add_column"
  | Widen_column _ -> "widen_column"
  | Set_ttl _ -> "set_ttl"
  | Get_metrics -> "get_metrics"
  | Get_slow_ops _ -> "get_slow_ops"
  | Get_placement -> "get_placement"
  | Get_trace _ -> "get_trace"
  | Get_metrics_snapshot -> "get_metrics_snapshot"
  | Insert_batch _ -> "insert_batch"

(* ---- Tagged values ---------------------------------------------------- *)

let value_tag = function
  | Value.Int32 _ -> 0
  | Value.Int64 _ -> 1
  | Value.Double _ -> 2
  | Value.Timestamp _ -> 3
  | Value.String _ -> 4
  | Value.Blob _ -> 5

let put_value b v =
  Binio.put_u8 b (value_tag v);
  Value.encode b v

let get_value cur =
  let tag = Binio.get_u8 cur in
  let ctype =
    match tag with
    | 0 -> Value.T_int32
    | 1 -> Value.T_int64
    | 2 -> Value.T_double
    | 3 -> Value.T_timestamp
    | 4 -> Value.T_string
    | 5 -> Value.T_blob
    | n -> error "bad value tag %d" n
  in
  Value.decode ctype cur

let put_row b row =
  Binio.put_varint b (Array.length row);
  Array.iter (put_value b) row

let get_row cur =
  let n = Binio.get_varint cur in
  if n < 0 || n > 65536 then error "implausible row arity %d" n;
  Array.init n (fun _ -> get_value cur)

let put_rows b rows =
  Binio.put_varint b (List.length rows);
  List.iter (put_row b) rows

let get_rows cur =
  let n = Binio.get_varint cur in
  if n < 0 then error "implausible row count %d" n;
  List.init n (fun _ -> get_row cur)

(* Step over one tagged value without constructing it: the zero-copy
   side of {!get_value}, used by span scans that only need offsets. *)
let skip_value cur =
  match Binio.get_u8 cur with
  | 0 -> Binio.skip cur 4
  | 1 | 2 | 3 -> Binio.skip cur 8
  | 4 | 5 -> Binio.skip cur (Binio.get_varint cur)
  | n -> error "bad value tag %d" n

let put_groups b groups =
  Binio.put_varint b (List.length groups);
  List.iter
    (fun (table, rows) ->
      Binio.put_string b table;
      put_rows b rows)
    groups

let decode_groups payload =
  let cur = Binio.cursor payload in
  let n = Binio.get_varint cur in
  if n < 0 || n > 65536 then error "implausible group count %d" n;
  let groups =
    List.init n (fun _ ->
        let table = Binio.get_string cur in
        let rows = get_rows cur in
        (table, rows))
  in
  Binio.expect_end cur;
  groups

let groups_of_payload = function
  | Groups gs -> gs
  | Raw payload -> decode_groups payload

let put_opt_i64 b = function
  | None -> Binio.put_u8 b 0
  | Some v ->
      Binio.put_u8 b 1;
      Binio.put_i64 b v

let get_opt_i64 cur =
  match Binio.get_u8 cur with
  | 0 -> None
  | 1 -> Some (Binio.get_i64 cur)
  | n -> error "bad option tag %d" n

(* ---- Query ------------------------------------------------------------- *)

let put_key_bound b = function
  | Query.Unbounded -> Binio.put_u8 b 0
  | Query.Incl vs ->
      Binio.put_u8 b 1;
      Binio.put_varint b (List.length vs);
      List.iter (put_value b) vs
  | Query.Excl vs ->
      Binio.put_u8 b 2;
      Binio.put_varint b (List.length vs);
      List.iter (put_value b) vs

let get_key_bound cur =
  match Binio.get_u8 cur with
  | 0 -> Query.Unbounded
  | 1 ->
      let n = Binio.get_varint cur in
      Query.Incl (List.init n (fun _ -> get_value cur))
  | 2 ->
      let n = Binio.get_varint cur in
      Query.Excl (List.init n (fun _ -> get_value cur))
  | n -> error "bad key bound tag %d" n

let put_query b (q : Query.t) =
  put_key_bound b q.Query.key_low;
  put_key_bound b q.Query.key_high;
  put_opt_i64 b q.Query.ts_min;
  put_opt_i64 b q.Query.ts_max;
  Binio.put_u8 b (match q.Query.direction with Query.Asc -> 0 | Query.Desc -> 1);
  (match q.Query.limit with
  | None -> Binio.put_u8 b 0
  | Some n ->
      Binio.put_u8 b 1;
      Binio.put_varint b n);
  match q.Query.projection with
  | None -> Binio.put_u8 b 0
  | Some cols ->
      Binio.put_u8 b 1;
      Binio.put_varint b (List.length cols);
      List.iter (Binio.put_varint b) cols

let get_query cur =
  let key_low = get_key_bound cur in
  let key_high = get_key_bound cur in
  let ts_min = get_opt_i64 cur in
  let ts_max = get_opt_i64 cur in
  let direction =
    match Binio.get_u8 cur with
    | 0 -> Query.Asc
    | 1 -> Query.Desc
    | n -> error "bad direction %d" n
  in
  let limit =
    match Binio.get_u8 cur with
    | 0 -> None
    | 1 -> Some (Binio.get_varint cur)
    | n -> error "bad limit tag %d" n
  in
  let projection =
    match Binio.get_u8 cur with
    | 0 -> None
    | 1 ->
        let n = Binio.get_varint cur in
        if n < 0 || n > 4096 then error "implausible projection width %d" n;
        Some (List.init n (fun _ -> Binio.get_varint cur))
    | n -> error "bad projection tag %d" n
  in
  { Query.key_low; key_high; ts_min; ts_max; direction; limit; projection }

(* ---- Requests ----------------------------------------------------------- *)

let write_request b = function
  | Hello v ->
      Binio.put_u8 b 0;
      Binio.put_varint b v
  | List_tables -> Binio.put_u8 b 1
  | Get_table t ->
      Binio.put_u8 b 2;
      Binio.put_string b t
  | Create_table { table; schema; ttl } ->
      Binio.put_u8 b 3;
      Binio.put_string b table;
      Schema.encode b schema;
      put_opt_i64 b ttl
  | Drop_table t ->
      Binio.put_u8 b 4;
      Binio.put_string b t
  | Insert { table; rows } ->
      Binio.put_u8 b 5;
      Binio.put_string b table;
      put_rows b rows
  | Query { table; query; profile } ->
      Binio.put_u8 b 6;
      Binio.put_string b table;
      put_query b query;
      Binio.put_u8 b (if profile then 1 else 0)
  | Latest { table; prefix } ->
      Binio.put_u8 b 7;
      Binio.put_string b table;
      Binio.put_varint b (List.length prefix);
      List.iter (put_value b) prefix
  | Flush_before { table; ts } ->
      Binio.put_u8 b 8;
      Binio.put_string b table;
      Binio.put_i64 b ts
  | Get_stats t ->
      Binio.put_u8 b 9;
      Binio.put_string b t
  | Ping -> Binio.put_u8 b 10
  | Delete_prefix { table; prefix } ->
      Binio.put_u8 b 11;
      Binio.put_string b table;
      Binio.put_varint b (List.length prefix);
      List.iter (put_value b) prefix
  | Add_column { table; column } ->
      Binio.put_u8 b 12;
      Binio.put_string b table;
      Schema.encode_column b column
  | Widen_column { table; column } ->
      Binio.put_u8 b 13;
      Binio.put_string b table;
      Binio.put_string b column
  | Set_ttl { table; ttl } ->
      Binio.put_u8 b 14;
      Binio.put_string b table;
      put_opt_i64 b ttl
  | Get_metrics -> Binio.put_u8 b 15
  | Get_slow_ops n ->
      Binio.put_u8 b 16;
      Binio.put_varint b n
  | Get_placement -> Binio.put_u8 b 17
  | Get_trace (hi, lo) ->
      Binio.put_u8 b 18;
      Binio.put_i64 b hi;
      Binio.put_i64 b lo
  | Get_metrics_snapshot -> Binio.put_u8 b 19
  | Insert_batch { groups } -> (
      Binio.put_u8 b 20;
      match groups with
      | Groups gs -> put_groups b gs
      | Raw payload -> Buffer.add_string b payload)

let read_request cur =
  match Binio.get_u8 cur with
  | 0 -> Hello (Binio.get_varint cur)
  | 1 -> List_tables
  | 2 -> Get_table (Binio.get_string cur)
  | 3 ->
      let table = Binio.get_string cur in
      let schema = Schema.decode cur in
      let ttl = get_opt_i64 cur in
      Create_table { table; schema; ttl }
  | 4 -> Drop_table (Binio.get_string cur)
  | 5 ->
      let table = Binio.get_string cur in
      let rows = get_rows cur in
      Insert { table; rows }
  | 6 ->
      let table = Binio.get_string cur in
      let query = get_query cur in
      let profile =
        match Binio.get_u8 cur with
        | 0 -> false
        | 1 -> true
        | n -> error "bad profile flag %d" n
      in
      Query { table; query; profile }
  | 7 ->
      let table = Binio.get_string cur in
      let n = Binio.get_varint cur in
      Latest { table; prefix = List.init n (fun _ -> get_value cur) }
  | 8 ->
      let table = Binio.get_string cur in
      let ts = Binio.get_i64 cur in
      Flush_before { table; ts }
  | 9 -> Get_stats (Binio.get_string cur)
  | 10 -> Ping
  | 11 ->
      let table = Binio.get_string cur in
      let n = Binio.get_varint cur in
      Delete_prefix { table; prefix = List.init n (fun _ -> get_value cur) }
  | 12 ->
      let table = Binio.get_string cur in
      let column = Schema.decode_column cur in
      Add_column { table; column }
  | 13 ->
      let table = Binio.get_string cur in
      let column = Binio.get_string cur in
      Widen_column { table; column }
  | 14 ->
      let table = Binio.get_string cur in
      let ttl = get_opt_i64 cur in
      Set_ttl { table; ttl }
  | 15 -> Get_metrics
  | 16 -> Get_slow_ops (Binio.get_varint cur)
  | 17 -> Get_placement
  | 18 ->
      let hi = Binio.get_i64 cur in
      let lo = Binio.get_i64 cur in
      Get_trace (hi, lo)
  | 19 -> Get_metrics_snapshot
  | 20 ->
      (* Captured undecoded: the single-node server decodes once via
         [groups_of_payload]; the router never decodes forwarded
         columns at all (it scans spans, see Router.split_raw). *)
      Insert_batch { groups = Raw (Binio.rest cur) }
  | n -> error "bad request tag %d" n

(* ---- Responses ------------------------------------------------------------ *)

let put_stats b (s : Stats.snapshot) =
  List.iter (Binio.put_varint b)
    [
      s.Stats.rows_inserted; s.Stats.insert_batches; s.Stats.rows_returned;
      s.Stats.rows_scanned; s.Stats.queries; s.Stats.flushes;
      s.Stats.flushed_bytes; s.Stats.merges; s.Stats.merged_bytes_in;
      s.Stats.merged_bytes_out; s.Stats.tablets_expired; s.Stats.flush_retries;
      s.Stats.tablets_quarantined; s.Stats.blocks_footer_answered;
      s.Stats.columns_decoded; s.Stats.bytes_written;
      s.Stats.cache.Stats.cache_hits; s.Stats.cache.Stats.cache_misses;
      s.Stats.cache.Stats.cache_evictions;
      s.Stats.cache.Stats.cache_inserted_bytes;
      s.Stats.cache.Stats.cache_resident_bytes;
    ]

let get_stats cur =
  let v () = Binio.get_varint cur in
  let rows_inserted = v () in
  let insert_batches = v () in
  let rows_returned = v () in
  let rows_scanned = v () in
  let queries = v () in
  let flushes = v () in
  let flushed_bytes = v () in
  let merges = v () in
  let merged_bytes_in = v () in
  let merged_bytes_out = v () in
  let tablets_expired = v () in
  let flush_retries = v () in
  let tablets_quarantined = v () in
  let blocks_footer_answered = v () in
  let columns_decoded = v () in
  let bytes_written = v () in
  let cache_hits = v () in
  let cache_misses = v () in
  let cache_evictions = v () in
  let cache_inserted_bytes = v () in
  let cache_resident_bytes = v () in
  {
    Stats.rows_inserted; insert_batches; rows_returned; rows_scanned; queries;
    flushes; flushed_bytes; merges; merged_bytes_in; merged_bytes_out;
    tablets_expired; flush_retries; tablets_quarantined;
    blocks_footer_answered; columns_decoded; bytes_written;
    cache =
      {
        Stats.cache_hits; cache_misses; cache_evictions; cache_inserted_bytes;
        cache_resident_bytes;
      };
  }

let span_op_tag = function
  | Lt_obs.Trace.Insert -> 0
  | Lt_obs.Trace.Query -> 1
  | Lt_obs.Trace.Latest -> 2
  | Lt_obs.Trace.Flush -> 3
  | Lt_obs.Trace.Merge -> 4
  | Lt_obs.Trace.Stall -> 5
  | Lt_obs.Trace.Request -> 6
  | Lt_obs.Trace.Route -> 7
  | Lt_obs.Trace.Backend -> 8
  | Lt_obs.Trace.Failover -> 9

let span_op_of_tag = function
  | 0 -> Lt_obs.Trace.Insert
  | 1 -> Lt_obs.Trace.Query
  | 2 -> Lt_obs.Trace.Latest
  | 3 -> Lt_obs.Trace.Flush
  | 4 -> Lt_obs.Trace.Merge
  | 5 -> Lt_obs.Trace.Stall
  | 6 -> Lt_obs.Trace.Request
  | 7 -> Lt_obs.Trace.Route
  | 8 -> Lt_obs.Trace.Backend
  | 9 -> Lt_obs.Trace.Failover
  | n -> error "bad span op tag %d" n

let put_ctx b (c : Lt_obs.Trace.ctx) =
  Binio.put_i64 b c.Lt_obs.Trace.cx_trace_hi;
  Binio.put_i64 b c.cx_trace_lo;
  Binio.put_i64 b c.cx_span;
  Binio.put_i64 b c.cx_parent

let get_ctx cur =
  let cx_trace_hi = Binio.get_i64 cur in
  let cx_trace_lo = Binio.get_i64 cur in
  let cx_span = Binio.get_i64 cur in
  let cx_parent = Binio.get_i64 cur in
  { Lt_obs.Trace.cx_trace_hi; cx_trace_lo; cx_span; cx_parent }

let put_opt_ctx b = function
  | None -> Binio.put_u8 b 0
  | Some c ->
      Binio.put_u8 b 1;
      put_ctx b c

let get_opt_ctx cur =
  match Binio.get_u8 cur with
  | 0 -> None
  | 1 -> Some (get_ctx cur)
  | n -> error "bad ctx tag %d" n

let put_span b (sp : Lt_obs.Trace.span) =
  Binio.put_u8 b (span_op_tag sp.Lt_obs.Trace.sp_op);
  Binio.put_string b sp.sp_table;
  Binio.put_i64 b sp.sp_start_us;
  Binio.put_i64 b sp.sp_duration_us;
  List.iter (Binio.put_varint b)
    [ sp.sp_scanned; sp.sp_returned; sp.sp_tablets; sp.sp_cache_hits;
      sp.sp_cache_misses ];
  put_opt_ctx b sp.sp_ctx

let get_span cur =
  let sp_op = span_op_of_tag (Binio.get_u8 cur) in
  let sp_table = Binio.get_string cur in
  let sp_start_us = Binio.get_i64 cur in
  let sp_duration_us = Binio.get_i64 cur in
  let v () = Binio.get_varint cur in
  let sp_scanned = v () in
  let sp_returned = v () in
  let sp_tablets = v () in
  let sp_cache_hits = v () in
  let sp_cache_misses = v () in
  let sp_ctx = get_opt_ctx cur in
  { Lt_obs.Trace.sp_op; sp_table; sp_start_us; sp_duration_us; sp_scanned;
    sp_returned; sp_tablets; sp_cache_hits; sp_cache_misses; sp_ctx }

(* ---- Query profiles ---------------------------------------------------- *)

(* Shard sub-profiles recurse; a decoder bound keeps hostile input from
   stack-diving (real nesting is router -> backend, depth 2). *)
let max_profile_depth = 4

let rec put_profile b (p : Lt_obs.Profile.t) =
  Binio.put_i64 b p.Lt_obs.Profile.p_plan_us;
  Binio.put_i64 b p.p_scan_us;
  Binio.put_i64 b p.p_stall_us;
  Binio.put_i64 b p.p_total_us;
  List.iter (Binio.put_varint b)
    [ p.p_rows_scanned; p.p_rows_returned; p.p_tablets; p.p_tablets_pruned;
      p.p_bloom_skips; p.p_cache_hits; p.p_cache_misses;
      p.p_blocks_footer_answered; p.p_columns_decoded ];
  Binio.put_varint b (List.length p.p_shards);
  List.iter
    (fun (label, sub) ->
      Binio.put_string b label;
      put_profile b sub)
    p.p_shards

let rec get_profile ?(depth = 0) cur =
  if depth > max_profile_depth then error "profile nesting too deep";
  let p_plan_us = Binio.get_i64 cur in
  let p_scan_us = Binio.get_i64 cur in
  let p_stall_us = Binio.get_i64 cur in
  let p_total_us = Binio.get_i64 cur in
  let v () = Binio.get_varint cur in
  let p_rows_scanned = v () in
  let p_rows_returned = v () in
  let p_tablets = v () in
  let p_tablets_pruned = v () in
  let p_bloom_skips = v () in
  let p_cache_hits = v () in
  let p_cache_misses = v () in
  let p_blocks_footer_answered = v () in
  let p_columns_decoded = v () in
  let n = Binio.get_varint cur in
  if n < 0 || n > 4096 then error "implausible shard profile count %d" n;
  let p_shards =
    List.init n (fun _ ->
        let label = Binio.get_string cur in
        let sub = get_profile ~depth:(depth + 1) cur in
        (label, sub))
  in
  { Lt_obs.Profile.p_plan_us; p_scan_us; p_stall_us; p_total_us;
    p_rows_scanned; p_rows_returned; p_tablets; p_tablets_pruned;
    p_bloom_skips; p_cache_hits; p_cache_misses; p_blocks_footer_answered;
    p_columns_decoded; p_shards }

let put_opt_profile b = function
  | None -> Binio.put_u8 b 0
  | Some p ->
      Binio.put_u8 b 1;
      put_profile b p

let get_opt_profile cur =
  match Binio.get_u8 cur with
  | 0 -> None
  | 1 -> Some (get_profile cur)
  | n -> error "bad profile tag %d" n

(* ---- Metrics snapshots ------------------------------------------------- *)

let snap_kind_tag = function
  | Lt_obs.Metrics.K_counter -> 0
  | Lt_obs.Metrics.K_gauge -> 1
  | Lt_obs.Metrics.K_histogram -> 2

let snap_kind_of_tag = function
  | 0 -> Lt_obs.Metrics.K_counter
  | 1 -> Lt_obs.Metrics.K_gauge
  | 2 -> Lt_obs.Metrics.K_histogram
  | n -> error "bad metric kind tag %d" n

let put_snapshot b (snap : Lt_obs.Metrics.snapshot) =
  Binio.put_varint b (List.length snap);
  List.iter
    (fun (f : Lt_obs.Metrics.snap_family) ->
      Binio.put_string b f.Lt_obs.Metrics.sn_name;
      Binio.put_string b f.sn_help;
      Binio.put_u8 b (snap_kind_tag f.sn_kind);
      Binio.put_varint b (Array.length f.sn_bounds);
      Array.iter (Binio.put_double b) f.sn_bounds;
      Binio.put_varint b (List.length f.sn_children);
      List.iter
        (fun (c : Lt_obs.Metrics.snap_child) ->
          Binio.put_varint b (List.length c.Lt_obs.Metrics.sn_labels);
          List.iter
            (fun (k, v) ->
              Binio.put_string b k;
              Binio.put_string b v)
            c.sn_labels;
          Binio.put_varint b c.sn_count;
          Binio.put_double b c.sn_fval;
          Binio.put_double b c.sn_max;
          Binio.put_varint b (Array.length c.sn_buckets);
          Array.iter (Binio.put_varint b) c.sn_buckets)
        f.sn_children)
    snap

let get_snapshot cur =
  let nfam = Binio.get_varint cur in
  if nfam < 0 || nfam > 65536 then error "implausible family count %d" nfam;
  List.init nfam (fun _ ->
      let sn_name = Binio.get_string cur in
      let sn_help = Binio.get_string cur in
      let sn_kind = snap_kind_of_tag (Binio.get_u8 cur) in
      let nbounds = Binio.get_varint cur in
      if nbounds < 0 || nbounds > 1024 then
        error "implausible bound count %d" nbounds;
      let sn_bounds = Array.init nbounds (fun _ -> Binio.get_double cur) in
      let nchildren = Binio.get_varint cur in
      if nchildren < 0 || nchildren > 1_000_000 then
        error "implausible child count %d" nchildren;
      let sn_children =
        List.init nchildren (fun _ ->
            let nlabels = Binio.get_varint cur in
            if nlabels < 0 || nlabels > 64 then
              error "implausible label count %d" nlabels;
            let sn_labels =
              List.init nlabels (fun _ ->
                  let k = Binio.get_string cur in
                  let v = Binio.get_string cur in
                  (k, v))
            in
            let sn_count = Binio.get_varint cur in
            let sn_fval = Binio.get_double cur in
            let sn_max = Binio.get_double cur in
            let nbuckets = Binio.get_varint cur in
            if nbuckets < 0 || nbuckets > 1025 then
              error "implausible bucket count %d" nbuckets;
            let sn_buckets = Array.init nbuckets (fun _ -> Binio.get_varint cur) in
            { Lt_obs.Metrics.sn_labels; sn_count; sn_fval; sn_max; sn_buckets })
      in
      { Lt_obs.Metrics.sn_name; sn_help; sn_kind; sn_bounds; sn_children })

let write_response b = function
  | Hello_ok v ->
      Binio.put_u8 b 0;
      Binio.put_varint b v
  | Tables names ->
      Binio.put_u8 b 1;
      Binio.put_varint b (List.length names);
      List.iter (Binio.put_string b) names
  | Table_info { schema; ttl } ->
      Binio.put_u8 b 2;
      Schema.encode b schema;
      put_opt_i64 b ttl
  | Ok -> Binio.put_u8 b 3
  | Insert_ok n ->
      Binio.put_u8 b 4;
      Binio.put_varint b n
  | Row_batch { rows; more_available; scanned; profile } ->
      Binio.put_u8 b 5;
      put_rows b rows;
      Binio.put_u8 b (if more_available then 1 else 0);
      Binio.put_varint b scanned;
      put_opt_profile b profile
  | Latest_row None ->
      Binio.put_u8 b 6;
      Binio.put_u8 b 0
  | Latest_row (Some row) ->
      Binio.put_u8 b 6;
      Binio.put_u8 b 1;
      put_row b row
  | Stats_resp s ->
      Binio.put_u8 b 7;
      put_stats b s
  | Error msg ->
      Binio.put_u8 b 8;
      Binio.put_string b msg
  | Pong -> Binio.put_u8 b 9
  | Deleted n ->
      Binio.put_u8 b 10;
      Binio.put_varint b n
  | Metrics_text text ->
      Binio.put_u8 b 11;
      Binio.put_string b text
  | Slow_ops spans ->
      Binio.put_u8 b 12;
      Binio.put_varint b (List.length spans);
      List.iter (put_span b) spans
  | Placement_info { pl_epoch; pl_policy; pl_backends } ->
      Binio.put_u8 b 13;
      Binio.put_varint b pl_epoch;
      Binio.put_string b pl_policy;
      Binio.put_varint b (List.length pl_backends);
      List.iter
        (fun (host, port) ->
          Binio.put_string b host;
          Binio.put_varint b port)
        pl_backends
  | Trace_spans spans ->
      Binio.put_u8 b 14;
      Binio.put_varint b (List.length spans);
      List.iter (put_span b) spans
  | Metrics_snapshot snap ->
      Binio.put_u8 b 15;
      put_snapshot b snap
  | Insert_partial { landed; message } ->
      Binio.put_u8 b 16;
      Binio.put_varint b (List.length landed);
      List.iter
        (fun (label, n) ->
          Binio.put_string b label;
          Binio.put_varint b n)
        landed;
      Binio.put_string b message

let read_response cur =
  match Binio.get_u8 cur with
  | 0 -> Hello_ok (Binio.get_varint cur)
  | 1 ->
      let n = Binio.get_varint cur in
      Tables (List.init n (fun _ -> Binio.get_string cur))
  | 2 ->
      let schema = Schema.decode cur in
      let ttl = get_opt_i64 cur in
      Table_info { schema; ttl }
  | 3 -> Ok
  | 4 -> Insert_ok (Binio.get_varint cur)
  | 5 ->
      let rows = get_rows cur in
      let more_available = Binio.get_u8 cur = 1 in
      let scanned = Binio.get_varint cur in
      let profile = get_opt_profile cur in
      Row_batch { rows; more_available; scanned; profile }
  | 6 -> (
      match Binio.get_u8 cur with
      | 0 -> Latest_row None
      | 1 -> Latest_row (Some (get_row cur))
      | n -> error "bad latest tag %d" n)
  | 7 -> Stats_resp (get_stats cur)
  | 8 -> Error (Binio.get_string cur)
  | 9 -> Pong
  | 10 -> Deleted (Binio.get_varint cur)
  | 11 -> Metrics_text (Binio.get_string cur)
  | 12 ->
      let n = Binio.get_varint cur in
      Slow_ops (List.init n (fun _ -> get_span cur))
  | 13 ->
      let pl_epoch = Binio.get_varint cur in
      let pl_policy = Binio.get_string cur in
      let n = Binio.get_varint cur in
      if n < 0 || n > 65536 then error "implausible backend count %d" n;
      let pl_backends =
        List.init n (fun _ ->
            let host = Binio.get_string cur in
            let port = Binio.get_varint cur in
            (host, port))
      in
      Placement_info { pl_epoch; pl_policy; pl_backends }
  | 14 ->
      let n = Binio.get_varint cur in
      if n < 0 || n > 1_000_000 then error "implausible span count %d" n;
      Trace_spans (List.init n (fun _ -> get_span cur))
  | 15 -> Metrics_snapshot (get_snapshot cur)
  | 16 ->
      let n = Binio.get_varint cur in
      if n < 0 || n > 65536 then error "implausible landed count %d" n;
      let landed =
        List.init n (fun _ ->
            let label = Binio.get_string cur in
            let count = Binio.get_varint cur in
            (label, count))
      in
      let message = Binio.get_string cur in
      Insert_partial { landed; message }
  | n -> error "bad response tag %d" n

(* ---- Socket framing ------------------------------------------------------ *)

let write_all_bytes fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd b !off (len - !off) in
    off := !off + n
  done

let read_exact fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let got = Unix.read fd b !off (n - !off) in
    if got = 0 then raise End_of_file;
    off := !off + got
  done;
  Bytes.unsafe_to_string b

(* Writev-style gathered output: a message is encoded directly after
   four reserved length bytes, the length is patched in place, and the
   whole frame leaves in one [Unix.write] — so a batch of N rows costs
   one syscall and one buffer-to-bytes copy, not a header write plus a
   header^payload concatenation per message. *)
let frame_buffer () =
  let b = Buffer.create 256 in
  Binio.put_u32 b 0;
  b

let send_buffer fd b =
  let len = Buffer.length b - 4 in
  if len > max_frame then error "frame of %d bytes exceeds limit" len;
  let bytes = Buffer.to_bytes b in
  Bytes.set_int32_le bytes 0 (Int32.of_int len);
  write_all_bytes fd bytes

let send_frame fd payload =
  let b = frame_buffer () in
  Buffer.add_string b payload;
  send_buffer fd b

let recv_frame fd =
  let hdr = read_exact fd 4 in
  let len = Binio.get_u32 (Binio.cursor hdr) in
  if len > max_frame then error "frame of %d bytes exceeds limit" len;
  read_exact fd len

(* Requests carry an optional trace context as a frame-level prefix —
   one flag byte plus four i64s when present — so propagation needs no
   per-request-tag changes and costs one byte when tracing is off. *)
let send_request ?ctx fd req =
  let b = frame_buffer () in
  put_opt_ctx b ctx;
  write_request b req;
  send_buffer fd b

let recv_request fd =
  let cur = Binio.cursor (recv_frame fd) in
  let ctx = get_opt_ctx cur in
  let req = read_request cur in
  Binio.expect_end cur;
  (ctx, req)

let send_response fd resp =
  let b = frame_buffer () in
  write_response b resp;
  send_buffer fd b

let recv_response fd =
  let cur = Binio.cursor (recv_frame fd) in
  let resp = read_response cur in
  Binio.expect_end cur;
  resp
