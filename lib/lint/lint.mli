(** Project-invariant static analyzer.

    Two passes. The parse pass reads every [.ml]/[.mli] under the given
    roots with compiler-libs and enforces the eight LittleTable
    invariants the type checker cannot see (see DESIGN.md "Static
    analysis"):

    - [vfs-discipline]: no raw [Unix]/[Sys]/[Stdlib] filesystem calls
      outside [lib/vfs] — everything durability-relevant must flow
      through {!Vfs} so the crash-point torture harness sees it.
    - [lock-safety]: no bare [Mutex.lock]/[Mutex.unlock] outside
      [lib/util/mutexes.ml] — critical sections must use the
      exception-safe [Mutexes.with_lock].
    - [lock-order]: builds a static lock-acquisition graph from nested
      [with_lock] regions (interprocedural, across modules) and flags
      any cycle.
    - [clock-discipline]: no [Unix.gettimeofday]/[Unix.time]/[Sys.time]
      or [Random] outside [lib/util/clock.ml] — time and randomness
      must be injectable for [--replay] determinism.
    - [no-stdout]: lib code logs via [Logs], never [print_*]/[printf].
    - [domain-discipline]: [Domain.spawn]/[Domain.join] only inside
      [lib/exec] — worker domains come from the shared [Lt_exec.Pool].
    - [mli-coverage]: every module under [lib/] keeps an interface.
    - [net-discipline]: raw [Unix] socket calls ([socket], [connect],
      [bind], [accept], ...) only inside [lib/net] — every wire
      interaction goes through [Protocol]/[Client]/[Server] so framing,
      versioning, and reconnect policy stay in one place.

    The typed pass ([?typed:true]) loads the [.cmt] files dune emitted
    for the same sources ({!Cmt_load}), collects domain-escape and
    lock-region facts per function ({!Escape}), infers per-cell
    protection contracts ({!Lockset}), and adds three rules:

    - [domain-race]: a mutable cell ([mutable] field, [ref], [Hashtbl],
      [Queue], [Buffer], [Bytes]) reachable from a closure that crosses
      a domain boundary must have one common [with_lock] class across
      every access, or be [Atomic.t]; mixed lock discipline (a locked
      site and an unlocked write) is flagged even without a crossing.
    - [blocking-under-lock]: no VFS I/O, sleeps, socket ops, or
      cross-module lock acquisition while a hot-path mutex
      ([Table.state], [Table.writer_lock], cache shard locks) is held,
      lexically or ambiently (held by every caller).
    - [atomic-discipline]: plain [ref] counters updated across domains
      must be [Atomic.t].

    A finding is suppressed only by an explicit
    [[@lint.allow "<rule>: <justification>"]] attribute on the
    enclosing expression, binding, or item ([[@@@lint.allow ...]] for a
    whole file). A malformed or unknown suppression is itself reported
    (rule [lint-allow]). *)

type finding = {
  f_file : string;  (** path as given (relative to the scan cwd) *)
  f_line : int;  (** 1-based *)
  f_col : int;  (** 0-based, matching compiler convention *)
  f_rule : string;
  f_msg : string;
}

val rule_names : string list
(** The enforceable rules, in reporting order. *)

val rules_with_doc : (string * string) list
(** Rule name plus its one-paragraph rationale, in reporting order. *)

val typed_rules : string list
(** The rules that need the cmt-based pass ([?typed:true]). *)

val rule_doc : string -> string
(** One-line rationale for a rule name (for [--rules] listings). *)

val rule_example : string -> (string * string) option
(** [(bad, good)] minimal example pair for [--explain]. *)

type root = { root_path : string; root_rules : string list option }
(** A scan root, optionally restricted to a rule subset — e.g. [test/]
    is linted for [clock-discipline] and [no-stdout] only. *)

val root : ?only:string list -> string -> root

val run :
  ?rules:string list ->
  ?typed:bool ->
  ?cmt_roots:string list ->
  roots:root list ->
  unit ->
  finding list
(** [run ~roots ()] scans every [.ml]/[.mli] under [roots]
    (directories or single files; [_build] and dot-directories are
    skipped) and returns the surviving findings sorted by file, line,
    column, and rule. [?rules] restricts checking to the named subset;
    a root's own [root_rules] restriction applies on top, per file.
    With [?typed:true] the cmt-based rules run too, over the [.cmt]
    files found under [?cmt_roots] (default: the root paths, falling
    back to [_build/default/<root>]). Unreadable or syntactically
    invalid files yield [parse] findings. *)

val to_plain : finding -> string
(** ["file:line: \[rule\] message"]. *)

val to_github : finding -> string
(** GitHub Actions workflow-command annotation for the finding. *)
