(** Loading [.cmt] files for the type-aware lint pass.

    The parse-only pass reads sources; the typed rules ([domain-race],
    [blocking-under-lock], [atomic-discipline]) need the [Typedtree],
    which the compiler saves next to each object file when [-bin-annot]
    is set (dune always sets it). This module finds those [.cmt] files
    under a set of roots — descending into dune's dot-directories
    ([.objs], [.eobjs]) that the source walker skips — reads them with
    [Cmt_format], and pairs each typedtree with the source path the
    compiler recorded, rebased onto the scanned source list so findings,
    suppression ranges, and path-based rule applicability all speak the
    same paths. *)

type unit_ = {
  u_source : string;  (** rebased source path, e.g. [lib/exec/pool.ml] *)
  u_structure : Typedtree.structure;
}

val find_cmts : string list -> string list
(** Every [*.cmt] under the given roots (files or directories), sorted.
    Unlike the source walker this descends into dot-directories, so it
    sees dune's [.objs]/[.eobjs] layout. For each root that contains no
    [.cmt] at all, [_build/default/<root>] is tried as a fallback, so
    the linter works both from inside the build tree (the [@lint] rule)
    and from a source checkout after [dune build @check]. *)

val load : sources:string list -> string list -> unit_ list
(** [load ~sources cmts] reads each [.cmt], keeps only implementation
    units whose recorded source path suffix-matches one of [sources]
    (dropping alias stubs, [.ml-gen] files, and stale cmts for deleted
    sources), rebases the path onto the matching source entry, dedupes
    by source path, and returns the units sorted by source path.
    Unreadable or version-mismatched cmts are skipped. *)
