(* See escape.mli. One Tast_iterator pass per compilation unit. *)

open Typedtree

type site = { s_file : string; s_line : int; s_col : int; s_cnum : int }

type kind = Read | Write

type sort = Field | Ref | Container

type access = {
  ac_cell : string;
  ac_sort : sort;
  ac_kind : kind;
  ac_counter : bool;
  ac_locks : string list;
  ac_crossing : bool;
  ac_owned : bool;
  ac_site : site;
}

type callee = { ce_base : string; ce_name : string; ce_line : int; ce_col : int }

type call = {
  cl_callee : callee;
  cl_locks : string list;
  cl_crossing : bool;
  cl_value : bool;
}

type acquire = {
  aq_class : string;
  aq_base : string;
  aq_locks : string list;
  aq_site : site;
}

type block_op = { bo_what : string; bo_locks : string list; bo_site : site }

type fn_info = {
  fn_key : string;
  fn_file : string;
  fn_base : string;
  mutable fn_root_crossing : bool;
  mutable fn_accesses : access list;
  mutable fn_calls : call list;
  mutable fn_acquires : acquire list;
  mutable fn_blocking : block_op list;
}

type facts = {
  fa_file : string;
  fa_fns : fn_info list;
  fa_defs : (int * int, string) Hashtbl.t;
}

let base_of file = Filename.remove_extension (Filename.basename file)

(* ------------------------------------------------------------------ *)
(* Recognizer tables (decl-file base * value name)                     *)
(* ------------------------------------------------------------------ *)

(* Calls whose function arguments run on another domain (or a thread
   that outlives the call). *)
let crossing_prims =
  [
    ("pool", [ "submit"; "submit_task"; "map"; "run" ]);
    ("pscan", [ "stage" ]);
    ("domain", [ "spawn" ]);
    ("thread", [ "create" ]);
  ]

let is_crossing_prim dbase name =
  match List.assoc_opt dbase crossing_prims with
  | Some names -> List.mem name names
  | None -> false

(* Potentially blocking operations for [blocking-under-lock]: VFS I/O,
   sleeps, socket ops, joins on other workers. [Condition.wait] is
   deliberately absent — it releases the mutex it waits on. *)
let blocking_ops =
  [
    ( "vfs",
      [ "open_read"; "create"; "pread"; "append"; "fsync"; "close"; "rename";
        "delete"; "exists"; "readdir"; "mkdir_p"; "sync_dir"; "read_all";
        "file_size" ],
      "Vfs" );
    ( "unix",
      [ "sleep"; "sleepf"; "select"; "connect"; "accept"; "recv"; "recvfrom";
        "send"; "sendto"; "read"; "write"; "waitpid" ],
      "Unix" );
    ("thread", [ "delay"; "join" ], "Thread");
    ("domain", [ "join" ], "Domain");
    ("pool", [ "await" ], "Pool");
  ]

let blocking_op dbase name =
  List.find_map
    (fun (b, names, label) ->
      if b = dbase && List.mem name names then Some (label ^ "." ^ name)
      else None)
    blocking_ops

(* Mutating / reading operations on shared mutable containers:
   (decl base, op) -> (argument index of the container, access kind). *)
let container_ops =
  [
    (("hashtbl", "add"), (0, Write)); (("hashtbl", "replace"), (0, Write));
    (("hashtbl", "remove"), (0, Write)); (("hashtbl", "reset"), (0, Write));
    (("hashtbl", "clear"), (0, Write)); (("hashtbl", "find"), (0, Read));
    (("hashtbl", "find_opt"), (0, Read)); (("hashtbl", "find_all"), (0, Read));
    (("hashtbl", "mem"), (0, Read)); (("hashtbl", "iter"), (1, Read));
    (("hashtbl", "fold"), (1, Read)); (("hashtbl", "length"), (0, Read));
    (("queue", "push"), (1, Write)); (("queue", "add"), (1, Write));
    (("queue", "pop"), (0, Write)); (("queue", "take"), (0, Write));
    (("queue", "take_opt"), (0, Write)); (("queue", "peek"), (0, Read));
    (("queue", "peek_opt"), (0, Read)); (("queue", "clear"), (0, Write));
    (("queue", "is_empty"), (0, Read)); (("queue", "length"), (0, Read));
    (("buffer", "add_string"), (0, Write)); (("buffer", "add_char"), (0, Write));
    (("buffer", "add_bytes"), (0, Write));
    (("buffer", "add_subbytes"), (0, Write));
    (("buffer", "add_substring"), (0, Write));
    (("buffer", "add_buffer"), (0, Write)); (("buffer", "clear"), (0, Write));
    (("buffer", "reset"), (0, Write)); (("buffer", "contents"), (0, Read));
    (("buffer", "length"), (0, Read)); (("buffer", "to_bytes"), (0, Read));
    (("buffer", "sub"), (0, Read));
    (("bytes", "set"), (0, Write)); (("bytes", "unsafe_set"), (0, Write));
    (("bytes", "fill"), (0, Write)); (("bytes", "blit"), (2, Write));
    (("bytes", "blit_string"), (2, Write)); (("bytes", "get"), (0, Read));
    (("bytes", "unsafe_get"), (0, Read));
    (("array", "set"), (0, Write)); (("array", "unsafe_set"), (0, Write));
    (("array", "fill"), (0, Write)); (("array", "blit"), (2, Write));
    (("array", "get"), (0, Read)); (("array", "unsafe_get"), (0, Read));
  ]

(* Allocation heads: a local [let x = <alloc> in ...] makes [x] owned by
   the current function until it escapes into a crossing closure. *)
let alloc_fns =
  [
    ("stdlib", "ref"); ("hashtbl", "create"); ("queue", "create");
    ("buffer", "create"); ("bytes", "create"); ("bytes", "make");
    ("bytes", "of_string"); ("array", "make"); ("array", "init");
    ("array", "copy"); ("array", "of_list"); ("mutex", "create");
    ("condition", "create"); ("atomic", "make");
  ]

(* ------------------------------------------------------------------ *)
(* Pass                                                                *)
(* ------------------------------------------------------------------ *)

let collect ~path str =
  let base = base_of path in
  let defs : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
  let fns : (string, fn_info) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let get_fn key =
    match Hashtbl.find_opt fns key with
    | Some f -> f
    | None ->
        let f =
          { fn_key = key; fn_file = path; fn_base = base;
            fn_root_crossing = false; fn_accesses = []; fn_calls = [];
            fn_acquires = []; fn_blocking = [] }
        in
        Hashtbl.add fns key f;
        order := key :: !order;
        f
  in
  let cur = ref (get_fn (base ^ ".<init>")) in
  let held : string list ref = ref [] in
  let crossing = ref false in
  let fresh : (string, unit) Hashtbl.t ref = ref (Hashtbl.create 8) in
  let toplevel = ref true in
  let site (loc : Location.t) =
    { s_file = path;
      s_line = loc.loc_start.pos_lnum;
      s_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
      s_cnum = loc.loc_start.pos_cnum }
  in
  let pos_of (loc : Location.t) =
    (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
  in
  let decl_of (vd : Types.value_description) =
    let loc = vd.Types.val_loc in
    let l, c = pos_of loc in
    (loc.Location.loc_start.pos_fname, l, c)
  in
  (* The canonical key of a value referenced by [path]: same-file
     declarations resolve through [defs] (so locals and params keep
     their [@line] suffix), everything else is [<declbase>.<name>]. *)
  let ident_key (p : Path.t) (vd : Types.value_description) =
    let file, l, c = decl_of vd in
    let name = Path.last p in
    if file = "" || file = "_none_" then ("anon." ^ name, "anon")
    else
      let b = base_of file in
      if file = path then
        match Hashtbl.find_opt defs (l, c) with
        | Some key -> (key, b)
        | None -> (b ^ "." ^ name ^ Printf.sprintf "@%d" l, b)
      else (b ^ "." ^ name, b)
  in
  let field_cell (ld : Types.label_description) =
    let file = ld.Types.lbl_loc.Location.loc_start.pos_fname in
    let b = if file = "" || file = "_none_" then "anon" else base_of file in
    let tname =
      match Types.get_desc ld.Types.lbl_res with
      | Types.Tconstr (p, _, _) -> Path.last p
      | _ -> "_"
    in
    (b ^ "." ^ tname ^ "." ^ ld.Types.lbl_name, b)
  in
  let is_fresh_ident e =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        Hashtbl.mem !fresh (Ident.unique_name id)
    | _ -> false
  in
  (* Identity of a ref/container/mutex expression. *)
  let cell_of e =
    match e.exp_desc with
    | Texp_ident (p, _, vd) -> ident_key p vd
    | Texp_field (_, _, ld) -> field_cell ld
    | _ ->
        let l, c = pos_of e.exp_loc in
        (Printf.sprintf "anon.%s:%d:%d" base l c, "anon")
  in
  let add_access ?(counter = false) ~sort ~kind ~owned cell loc =
    let f = !cur in
    f.fn_accesses <-
      { ac_cell = cell; ac_sort = sort; ac_kind = kind; ac_counter = counter;
        ac_locks = List.sort_uniq compare !held; ac_crossing = !crossing;
        ac_owned = owned; ac_site = site loc }
      :: f.fn_accesses
  in
  let add_call ?(value = false) (p : Path.t) (vd : Types.value_description)
      ~locks =
    let file, l, c = decl_of vd in
    if file <> "" && file <> "_none_" then begin
      let f = !cur in
      f.fn_calls <-
        { cl_callee =
            { ce_base = base_of file; ce_name = Path.last p; ce_line = l;
              ce_col = c };
          cl_locks = List.sort_uniq compare locks;
          cl_crossing = !crossing;
          cl_value = value }
        :: f.fn_calls
    end
  in
  let is_arrow (vd : Types.value_description) =
    match Types.get_desc vd.Types.val_type with
    | Types.Tarrow _ -> true
    | Types.Tpoly (ty, _) -> (
        match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false)
    | _ -> false
  in
  let head_ident e =
    match e.exp_desc with
    | Texp_ident (p, _, vd) -> Some (p, vd)
    | _ -> None
  in
  let is_alloc e =
    match e.exp_desc with
    | Texp_record { extended_expression = None; _ } | Texp_array _ -> true
    | Texp_apply (f, _) -> (
        match head_ident f with
        | Some (p, vd) ->
            let file, _, _ = decl_of vd in
            List.mem (base_of file, Path.last p) alloc_fns
        | None -> false)
    | _ -> false
  in
  let super = Tast_iterator.default_iterator in
  let rec walk_expr sub (e : expression) =
    match e.exp_desc with
    | Texp_field (b, _, ld) ->
        (if ld.Types.lbl_name = "contents" then begin
           (* [r.contents] is a ref read under another spelling. *)
           let cell, _ = cell_of b in
           add_access ~sort:Ref ~kind:Read ~owned:(is_fresh_ident b) cell
             e.exp_loc
         end
         else if ld.Types.lbl_mut = Asttypes.Mutable then
           let cell, _ = field_cell ld in
           add_access ~sort:Field ~kind:Read ~owned:(is_fresh_ident b) cell
             e.exp_loc);
        sub.Tast_iterator.expr sub b
    | Texp_setfield (b, _, ld, v) ->
        (if ld.Types.lbl_name = "contents" then begin
           let cell, _ = cell_of b in
           add_access ~sort:Ref ~kind:Write ~owned:(is_fresh_ident b) cell
             e.exp_loc
         end
         else
           let cell, _ = field_cell ld in
           add_access ~sort:Field ~kind:Write ~owned:(is_fresh_ident b) cell
             e.exp_loc);
        sub.Tast_iterator.expr sub b;
        sub.Tast_iterator.expr sub v
    | Texp_apply (f, args) -> walk_apply sub e f args
    | Texp_ident (p, _, vd) when is_arrow vd ->
        (* A function mentioned outside call position escapes as a
           value: it may be called from anywhere later, so the ambient
           must-lockset analysis gives it no locks. *)
        add_call ~value:true p vd ~locks:[]
    | _ -> super.expr sub e
  and walk_args sub args =
    List.iter
      (fun (_, a) -> match a with Some a -> sub.Tast_iterator.expr sub a | None -> ())
      args
  and nolabel_args args =
    List.filter_map
      (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  (* Does [e] read [cell] via [!]/[.contents]? Used to classify
     [x := !x + 1]-shaped counter updates. *)
  and reads_cell cell e =
    let found = ref false in
    let expr sub (e : expression) =
      (match e.exp_desc with
       | Texp_apply (f, args) -> (
           match (head_ident f, nolabel_args args) with
           | Some (p, _), a :: _ when Path.last p = "!" ->
               if fst (cell_of a) = cell then found := true
           | _ -> ())
       | Texp_field (b, _, ld) when ld.Types.lbl_name = "contents" ->
           if fst (cell_of b) = cell then found := true
       | _ -> ());
      super.expr sub e
    in
    let it = { super with expr } in
    it.expr it e;
    !found
  and walk_crossing sub e =
    let saved_cross = !crossing and saved_held = !held in
    let saved_fresh = !fresh in
    crossing := true;
    held := [];
    fresh := Hashtbl.create 8;
    sub.Tast_iterator.expr sub e;
    crossing := saved_cross;
    held := saved_held;
    fresh := saved_fresh
  and walk_apply sub e f args =
    match head_ident f with
    | None ->
        sub.Tast_iterator.expr sub f;
        walk_args sub args
    | Some (p, vd) -> (
        let name = Path.last p in
        let dfile, _, _ = decl_of vd in
        let dbase = base_of dfile in
        if name = "with_lock" then begin
          match nolabel_args args with
          | m :: body :: rest ->
              let cls, cbase = cell_of m in
              !cur.fn_acquires <-
                { aq_class = cls; aq_base = cbase;
                  aq_locks = List.sort_uniq compare !held; aq_site = site e.exp_loc }
                :: !cur.fn_acquires;
              sub.Tast_iterator.expr sub m;
              (match body.exp_desc with
              | Texp_function { cases = [ c ]; _ } ->
                  held := cls :: !held;
                  sub.Tast_iterator.expr sub c.c_rhs;
                  held := List.tl !held
              | Texp_ident (bp, _, bvd) -> add_call bp bvd ~locks:(cls :: !held)
              | _ ->
                  held := cls :: !held;
                  sub.Tast_iterator.expr sub body;
                  held := List.tl !held);
              List.iter (fun a -> sub.Tast_iterator.expr sub a) rest
          | _ ->
              sub.Tast_iterator.expr sub f;
              walk_args sub args
        end
        else if is_crossing_prim dbase name then begin
          add_call p vd ~locks:!held;
          (* Everything passed to a crossing primitive runs (or may run)
             on another domain: closures lose held locks and ownership;
             functions passed by name become crossing roots via a
             crossing call edge. *)
          List.iter
            (fun (_, a) ->
              match a with
              | Some a -> (
                  match head_ident a with
                  | Some (ap, avd) when is_arrow avd ->
                      let saved = !crossing in
                      crossing := true;
                      add_call ap avd ~locks:[];
                      crossing := saved
                  | _ -> walk_crossing sub a)
              | None -> ())
            args
        end
        else begin
          (match blocking_op dbase name with
          | Some what ->
              !cur.fn_blocking <-
                { bo_what = what; bo_locks = List.sort_uniq compare !held;
                  bo_site = site e.exp_loc }
                :: !cur.fn_blocking
          | None -> ());
          (match (dbase, name, nolabel_args args) with
          | "stdlib", "!", r :: _ ->
              let cell, _ = cell_of r in
              add_access ~sort:Ref ~kind:Read ~owned:(is_fresh_ident r) cell
                e.exp_loc
          | "stdlib", ":=", r :: v :: _ ->
              let cell, _ = cell_of r in
              add_access
                ~counter:(reads_cell cell v)
                ~sort:Ref ~kind:Write ~owned:(is_fresh_ident r) cell e.exp_loc
          | "stdlib", ("incr" | "decr"), r :: _ ->
              let cell, _ = cell_of r in
              add_access ~counter:true ~sort:Ref ~kind:Write
                ~owned:(is_fresh_ident r) cell e.exp_loc
          | _, _, nargs -> (
              if dbase <> "atomic" then
                match List.assoc_opt (dbase, name) container_ops with
                | Some (idx, kind) when List.length nargs > idx ->
                    let arg = List.nth nargs idx in
                    let cell, _ = cell_of arg in
                    add_access ~sort:Container ~kind ~owned:(is_fresh_ident arg)
                      cell e.exp_loc
                | _ -> ()));
          add_call p vd ~locks:!held;
          (* A function passed by name to an ordinary call (List.map,
             with_lock-free HOFs, ...) is treated like a lambda literal:
             assumed applied under the locks held here. Only bare
             references outside any application (record fields, returned
             values) escape lock-free. *)
          List.iter
            (fun (_, a) ->
              match a with
              | Some a -> (
                  match a.exp_desc with
                  | Texp_ident (ap, _, avd) when is_arrow avd ->
                      add_call ap avd ~locks:!held
                  | _ -> sub.Tast_iterator.expr sub a)
              | None -> ())
            args
        end)
  in
  let value_binding sub (vb : value_binding) =
    let was_top = !toplevel in
    toplevel := false;
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) ->
        let name = Ident.name id in
        let l, c = pos_of vb.vb_pat.pat_loc in
        let key =
          if was_top then base ^ "." ^ name
          else Printf.sprintf "%s.%s@%d" base name l
        in
        Hashtbl.replace defs (l, c) key;
        let is_fn =
          match vb.vb_expr.exp_desc with Texp_function _ -> true | _ -> false
        in
        if is_fn || was_top then begin
          let saved_cur = !cur and saved_held = !held in
          let saved_cross = !crossing and saved_fresh = !fresh in
          cur := get_fn key;
          held := [];
          crossing := false;
          (* A nested named function closes over the enclosing
             invocation's locals and (unless it escapes by name, which
             the crossing propagation catches) runs on the same domain:
             it keeps the parent's ownership view.  Toplevel bindings
             start clean. *)
          if was_top then fresh := Hashtbl.create 8;
          sub.Tast_iterator.expr sub vb.vb_expr;
          cur := saved_cur;
          held := saved_held;
          crossing := saved_cross;
          fresh := saved_fresh
        end
        else begin
          if is_alloc vb.vb_expr then
            Hashtbl.replace !fresh (Ident.unique_name id) ();
          sub.Tast_iterator.expr sub vb.vb_expr
        end
    | _ ->
        sub.Tast_iterator.pat sub vb.vb_pat;
        sub.Tast_iterator.expr sub vb.vb_expr);
    toplevel := was_top
  in
  (* Register every pattern variable (function params, match bindings)
     as a local definition so same-named module-level cells are not
     conflated with them. The binding variable of a [let] is registered
     first by [value_binding] and wins. *)
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
    | Tpat_var (id, _) ->
        let l, c = pos_of p.pat_loc in
        if not (Hashtbl.mem defs (l, c)) then
          Hashtbl.replace defs (l, c)
            (Printf.sprintf "%s.%s@%d" base (Ident.name id) l)
    | _ -> ());
    super.pat sub p
  in
  let structure_item sub (si : structure_item) =
    toplevel := true;
    super.structure_item sub si;
    toplevel := true
  in
  let iter =
    { super with expr = walk_expr; value_binding; structure_item; pat }
  in
  iter.structure iter str;
  { fa_file = path;
    fa_fns =
      List.rev_map (fun k -> Hashtbl.find fns k) !order
      |> List.filter (fun f ->
             f.fn_accesses <> [] || f.fn_calls <> [] || f.fn_acquires <> []
             || f.fn_blocking <> []);
    fa_defs = defs }
