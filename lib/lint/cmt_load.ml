[@@@lint.allow
  "vfs-discipline: the linter is a build-time tool that walks _build for \
   the cmt files dune emitted; it never touches database state, so the \
   torture harness has nothing to intercept here"]

(* See cmt_load.mli. *)

type unit_ = {
  u_source : string;
  u_structure : Typedtree.structure;
}

let find_cmts roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if entry <> "_build" then walk (Filename.concat path entry))
        (Sys.readdir path)
    else if Filename.extension path = ".cmt" then acc := path :: !acc
  in
  List.iter
    (fun root ->
      let before = List.length !acc in
      if Sys.file_exists root then walk root;
      if List.length !acc = before then begin
        (* Source checkout: the cmts live under _build/default. *)
        let built = Filename.concat (Filename.concat "_build" "default") root in
        if Sys.file_exists built then walk built
      end)
    roots;
  List.sort compare !acc

(* [suffix_matches ~path s]: do the trailing path components of [path]
   equal the components of [s]?  "lint_fixtures/x/lib/foo.ml" matches
   "lib/foo.ml" but not "b/foo.ml". *)
let suffix_matches ~path s =
  let split p = String.split_on_char '/' p in
  let rec ends_with rev_p rev_s =
    match (rev_p, rev_s) with
    | _, [] -> true
    | [], _ -> false
    | p :: ps, q :: qs -> p = q && ends_with ps qs
  in
  ends_with (List.rev (split path)) (List.rev (split s))

let load ~sources cmts =
  let rebase recorded =
    (* Exact scanned path first, then unique suffix match. *)
    if List.mem recorded sources then Some recorded
    else
      match List.filter (fun p -> suffix_matches ~path:p recorded) sources with
      | [ p ] -> Some p
      | _ -> None
  in
  let seen = Hashtbl.create 32 in
  let units =
    List.filter_map
      (fun cmt ->
        match Cmt_format.read_cmt cmt with
        | exception _ -> None
        | infos -> (
            match (infos.Cmt_format.cmt_sourcefile, infos.Cmt_format.cmt_annots)
            with
            | Some src, Cmt_format.Implementation str
              when Filename.extension src = ".ml" -> (
                match rebase src with
                | Some source when not (Hashtbl.mem seen source) ->
                    Hashtbl.add seen source ();
                    Some { u_source = source; u_structure = str }
                | _ -> None)
            | _ -> None))
      cmts
  in
  List.sort (fun a b -> compare a.u_source b.u_source) units
