[@@@lint.allow
  "vfs-discipline: the linter is a build-time tool that reads source files \
   directly; it never touches database state, so the torture harness has \
   nothing to intercept here"]

(* Static analyzer for the project invariants the type checker cannot
   see. One parse per file (compiler-libs), one Ast_iterator pass per
   .ml collecting banned-identifier findings, [@lint.allow] suppression
   ranges, and the raw material of the lock-acquisition graph; then a
   whole-tree pass (mli coverage, lock-order cycles) and a suppression
   filter. See lint.mli for the rule catalogue. *)

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_msg : string;
}

(* Internal finding: carries the start offset so suppression ranges can
   be applied after collection. *)
type ifinding = { i_f : finding; i_cnum : int }

let rules_with_doc =
  [
    ( "vfs-discipline",
      "durability-relevant filesystem calls must flow through Vfs \
       (lib/vfs), or the crash-point torture harness has blind spots" );
    ( "lock-safety",
      "critical sections must use the exception-safe \
       Util.Mutexes.with_lock; a bare Mutex.lock leaks the lock when the \
       body raises" );
    ( "lock-order",
      "the static lock-acquisition graph (nested with_lock regions, \
       followed through calls across modules) must stay acyclic" );
    ( "clock-discipline",
      "clock and randomness reads must flow through Util.Clock / \
       injected PRNGs (lib/util/clock.ml), or --replay determinism \
       silently breaks" );
    ( "no-stdout",
      "lib code logs via Logs, never print_*/printf: stdout belongs to \
       the shell and bench output formats" );
    ( "domain-discipline",
      "Domain.spawn/Domain.join only inside lib/exec: every worker \
       domain must come from the shared Pool so worker counts, shutdown \
       joins, and queue behaviour stay centralized" );
    ( "mli-coverage",
      "every module under lib/ keeps an interface so the public surface \
       is deliberate" );
    ( "net-discipline",
      "raw Unix socket calls only inside lib/net: every wire interaction \
       goes through Protocol/Client/Server so framing, versioning, and \
       reconnect policy stay in one place" );
    ( "domain-race",
      "[typed] every mutable cell (record field, ref, Hashtbl, Buffer, \
       Bytes) reachable from a domain-crossing closure must be protected \
       by one statically-resolved with_lock region at every access, or \
       be Atomic.t; inferred per-cell, RacerD-style, from .cmt files" );
    ( "blocking-under-lock",
      "[typed] no VFS I/O, sleeps, socket ops, or cross-module lock \
       acquisition while holding a hot-path mutex (Table.state, \
       Table.writer_lock, cache shard locks): a blocked writer stalls \
       the whole batched ingest path" );
    ( "atomic-discipline",
      "[typed] plain refs used as counters from multiple domains lose \
       increments; make them Atomic.t (catches metric/stat counters \
       that dodge the registry)" );
  ]

let rule_names = List.map fst rules_with_doc

let rule_doc name =
  match List.assoc_opt name rules_with_doc with
  | Some doc -> doc
  | None -> "unknown rule"

let typed_rules = [ "domain-race"; "blocking-under-lock"; "atomic-discipline" ]

(* Minimal bad/good example pairs for [--explain]. *)
let rule_example name =
  match name with
  | "vfs-discipline" ->
      Some
        ( "let fd = Unix.openfile path [ Unix.O_RDONLY ] 0",
          "let h = Vfs.open_read vfs path" )
  | "lock-safety" ->
      Some
        ( "Mutex.lock t.state; work t; Mutex.unlock t.state",
          "Mutexes.with_lock t.state (fun () -> work t)" )
  | "lock-order" ->
      Some
        ( "(* a.ml *) with_lock a (fun () -> B.f ())  where B.f takes b\n\
           (* b.ml *) with_lock b (fun () -> A.g ())  where A.g takes a",
          "order the classes: both paths take a before b" )
  | "clock-discipline" ->
      Some
        ( "let now = Unix.gettimeofday ()",
          "let now = Util.Clock.now clock  (* injected *)" )
  | "no-stdout" ->
      Some
        ( "print_endline (\"flushed \" ^ string_of_int n)",
          "Logs.info (fun m -> m \"flushed %d\" n)" )
  | "domain-discipline" ->
      Some
        ( "let d = Domain.spawn (fun () -> compact t)",
          "Pool.submit pool (fun () -> compact t)" )
  | "mli-coverage" ->
      Some ("lib/core/foo.ml with no lib/core/foo.mli", "write the interface")
  | "net-discipline" ->
      Some
        ( "let s = Unix.socket PF_INET SOCK_STREAM 0",
          "let conn = Lt_net.Client.connect ~host ~port" )
  | "domain-race" ->
      Some
        ( "let t = { mutable hits : int; mutex : Mutex.t }\n\
           Pool.submit pool (fun () -> t.hits <- t.hits + 1)  (* no lock *)\n\
           ... with_lock t.mutex (fun () -> t.hits)           (* locked *)",
          "Pool.submit pool (fun () ->\n\
          \  Mutexes.with_lock t.mutex (fun () -> t.hits <- t.hits + 1))" )
  | "blocking-under-lock" ->
      Some
        ( "with_lock t.writer_lock (fun () -> Vfs.fsync vfs wal)",
          "let job = with_lock t.writer_lock (fun () -> seal t) in\n\
           Vfs.fsync vfs job  (* I/O outside the region *)" )
  | "atomic-discipline" ->
      Some
        ( "let served = ref 0\n\
           Pool.submit pool (fun () -> incr served)",
          "let served = Atomic.make 0\n\
           Pool.submit pool (fun () -> Atomic.incr served)" )
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

(* Where a file sits in the project layout, from the *last* lib/bin/
   bench/test segment of its path — so fixture trees like
   test/lint_fixtures/case/lib/foo.ml classify as lib code too. *)
type ctx = Lib of string list | Bin | Bench | Test | Other

let context path =
  let rec go acc = function
    | [] -> acc
    | "lib" :: rest -> go (Lib rest) rest
    | "bin" :: rest -> go Bin rest
    | "bench" :: rest -> go Bench rest
    | "test" :: rest -> go Test rest
    | _ :: rest -> go acc rest
  in
  go Other (String.split_on_char '/' path)

let module_base path = Filename.remove_extension (Filename.basename path)

(* ------------------------------------------------------------------ *)
(* Rule applicability                                                  *)
(* ------------------------------------------------------------------ *)

let vfs_applies path =
  match context path with
  | Lib ("vfs" :: _) -> false
  | Lib _ | Bin | Bench -> true
  | Test | Other -> false

let lock_safety_applies path =
  match context path with
  | Lib [ "util"; "mutexes.ml" ] -> false
  | Lib _ | Bin | Bench -> true
  | Test | Other -> false

let clock_applies path =
  match context path with
  | Lib [ "util"; "clock.ml" ] -> false
  | Lib _ | Bin | Bench | Test -> true
  | Other -> false

let stdout_applies path =
  match context path with
  | Lib _ | Test -> true
  | Bin | Bench | Other -> false

let domain_applies path =
  match context path with
  | Lib ("exec" :: _) -> false
  | Lib _ | Bin | Bench -> true
  | Test | Other -> false

let net_applies path =
  match context path with
  | Lib ("net" :: _) -> false
  | Lib _ | Bin | Bench -> true
  | Test | Other -> false

let scanned path =
  match context path with
  | Lib _ | Bin | Bench -> true
  | Test | Other -> false

(* ------------------------------------------------------------------ *)
(* Banned identifiers                                                  *)
(* ------------------------------------------------------------------ *)

let drop_stdlib = function "Stdlib" :: rest -> rest | p -> p

let vfs_unix =
  [ "openfile"; "mkdir"; "rmdir"; "rename"; "unlink"; "link"; "symlink";
    "fsync"; "truncate"; "ftruncate"; "opendir"; "readdir"; "closedir";
    "stat"; "lstat"; "fstat"; "chmod"; "chown"; "utimes"; "access";
    "realpath" ]

let vfs_sys =
  [ "file_exists"; "is_directory"; "is_regular_file"; "remove"; "rename";
    "readdir"; "mkdir"; "rmdir"; "getcwd"; "chdir"; "command" ]

let vfs_stdlib =
  [ "open_out"; "open_out_bin"; "open_out_gen"; "open_in"; "open_in_bin";
    "open_in_gen" ]

let vfs_channel =
  [ "open_bin"; "open_text"; "open_gen"; "with_open_bin"; "with_open_text";
    "with_open_gen" ]

let net_unix =
  [ "socket"; "socketpair"; "connect"; "bind"; "listen"; "accept";
    "setsockopt"; "getsockopt"; "getsockname"; "getpeername"; "shutdown";
    "recv"; "recvfrom"; "send"; "sendto"; "getaddrinfo"; "gethostbyname" ]

let stdout_plain =
  [ "print_string"; "print_bytes"; "print_int"; "print_float"; "print_char";
    "print_endline"; "print_newline"; "prerr_string"; "prerr_bytes";
    "prerr_int"; "prerr_float"; "prerr_char"; "prerr_endline";
    "prerr_newline"; "stdout"; "stderr" ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* [rule, message] for a banned identifier path, or None. *)
let banned_ident path_parts =
  let mem = List.mem in
  match drop_stdlib path_parts with
  | [ "Unix"; f ] when mem f vfs_unix ->
      Some
        ( "vfs-discipline",
          Printf.sprintf "raw filesystem call Unix.%s; route it through Vfs" f
        )
  | [ "Sys"; f ] when mem f vfs_sys ->
      Some
        ( "vfs-discipline",
          Printf.sprintf "raw filesystem call Sys.%s; route it through Vfs" f )
  | [ f ] when mem f vfs_stdlib ->
      Some
        ( "vfs-discipline",
          Printf.sprintf "raw channel open %s; route it through Vfs" f )
  | [ ("In_channel" | "Out_channel"); f ] when mem f vfs_channel ->
      Some ("vfs-discipline", "raw channel open; route it through Vfs")
  | [ "Filename"; ("temp_file" | "open_temp_file") ] ->
      Some ("vfs-discipline", "temp-file creation; route it through Vfs")
  | [ "Domain"; ("spawn" | "join") as f ] ->
      Some
        ( "domain-discipline",
          Printf.sprintf
            "Domain.%s outside lib/exec; spawn workers through the shared \
             Lt_exec.Pool"
            f )
  | [ "Mutex"; ("lock" | "unlock" | "try_lock") as f ] ->
      Some
        ( "lock-safety",
          Printf.sprintf
            "bare Mutex.%s; use the exception-safe Util.Mutexes.with_lock" f )
  | [ "Unix"; f ] when mem f net_unix ->
      Some
        ( "net-discipline",
          Printf.sprintf
            "raw socket call Unix.%s outside lib/net; speak the wire \
             through Lt_net.Client/Server"
            f )
  | [ "Unix"; ("gettimeofday" | "time") as f ] ->
      Some
        ( "clock-discipline",
          Printf.sprintf "direct clock read Unix.%s; use Util.Clock" f )
  | [ "Sys"; "time" ] ->
      Some ("clock-discipline", "direct clock read Sys.time; use Util.Clock")
  | "Random" :: _ ->
      Some
        ( "clock-discipline",
          "ambient randomness from Random; use an injected Util.Xorshift \
           PRNG so runs replay deterministically" )
  | [ f ] when mem f stdout_plain ->
      Some
        ( "no-stdout",
          Printf.sprintf "%s in lib code; log via Logs instead" f )
  | [ "Printf"; ("printf" | "eprintf") as f ] ->
      Some
        ( "no-stdout",
          Printf.sprintf "Printf.%s in lib code; log via Logs instead" f )
  | [ "Format"; f ]
    when f = "printf" || f = "eprintf" || f = "std_formatter"
         || f = "err_formatter"
         || starts_with ~prefix:"print_" f ->
      Some
        ( "no-stdout",
          Printf.sprintf "Format.%s in lib code; log via Logs instead" f )
  | _ -> None

let rule_applies rule path =
  match rule with
  | "vfs-discipline" -> vfs_applies path
  | "lock-safety" -> lock_safety_applies path
  | "clock-discipline" -> clock_applies path
  | "no-stdout" -> stdout_applies path
  | "domain-discipline" -> domain_applies path
  | "net-discipline" -> net_applies path
  | "lock-order" | "mli-coverage" -> scanned path
  | "domain-race" | "blocking-under-lock" | "atomic-discipline" ->
      scanned path
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

type allow = { a_rule : string; a_start : int; a_end : int }

let whole_file = { a_rule = ""; a_start = 0; a_end = max_int }

(* Parse an attribute payload of the form "rule: justification". *)
let parse_allow_payload (attr : Parsetree.attribute) =
  let open Parsetree in
  match attr.attr_payload with
  | PStr
      [ { pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _ } ] -> (
      match String.index_opt s ':' with
      | None -> Error (Printf.sprintf "missing justification in %S" s)
      | Some i ->
          let rule = String.trim (String.sub s 0 i) in
          let just =
            String.trim (String.sub s (i + 1) (String.length s - i - 1))
          in
          if not (List.mem rule rule_names) then
            Error (Printf.sprintf "unknown rule %S" rule)
          else if just = "" then
            Error (Printf.sprintf "empty justification for rule %S" rule)
          else Ok rule)
  | _ -> Error "payload must be a string literal \"rule: justification\""

(* ------------------------------------------------------------------ *)
(* Lock-order graph raw material                                       *)
(* ------------------------------------------------------------------ *)

type loc_info = { l_file : string; l_line : int; l_col : int; l_cnum : int }

(* A call site is kept as a list of candidate function keys, innermost
   scope first; resolution picks the first candidate that names a
   function the scan actually saw. *)
type lock_acc = {
  (* function key -> lock classes it acquires directly *)
  direct : (string, (string * loc_info) list ref) Hashtbl.t;
  (* function key -> call sites (candidate keys) it applies *)
  fcalls : (string, string list list ref) Hashtbl.t;
  (* held lock class -> callee applied inside the region *)
  pending : (string * string list * loc_info) list ref;
  (* held lock class -> lock class acquired inside the region *)
  nested : (string * string * loc_info) list ref;
}

let lock_acc_create () =
  { direct = Hashtbl.create 64;
    fcalls = Hashtbl.create 64;
    pending = ref [];
    nested = ref [] }

let tbl_push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add tbl key (ref [ v ])

(* ------------------------------------------------------------------ *)
(* Per-file AST pass                                                   *)
(* ------------------------------------------------------------------ *)

let loc_info path (loc : Location.t) =
  { l_file = path;
    l_line = loc.loc_start.pos_lnum;
    l_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    l_cnum = loc.loc_start.pos_cnum }

let mk_finding li rule msg =
  { i_f =
      { f_file = li.l_file;
        f_line = li.l_line;
        f_col = li.l_col;
        f_rule = rule;
        f_msg = msg };
    i_cnum = li.l_cnum }

(* The trailing identifier of a mutex expression — [t.state],
   [s.mutex], [mutex] — names the lock; prefixed with the module it
   lives in, it is the lock class of the region. *)
let lock_ident (e : Parsetree.expression) =
  let open Parsetree in
  match e.pexp_desc with
  | Pexp_field (_, { txt = lid; _ }) | Pexp_ident { txt = lid; _ } ->
      Longident.last lid
  | _ -> "anon"

let last_module_of = function
  | Longident.Lident _ -> None
  | Longident.Ldot (prefix, _) -> (
      match Longident.flatten prefix with
      | [] -> None
      | parts -> Some (List.nth parts (List.length parts - 1)))
  | Longident.Lapply _ -> None

type file_pass = {
  p_findings : ifinding list ref;
  p_allows : allow list ref;
}

let scan_structure ~path ~locks structure pass =
  let open Parsetree in
  let base = module_base path in
  let aliases : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let resolve_module m =
    match Hashtbl.find_opt aliases m with Some real -> real | None -> m
  in
  (* [prefix] is the scope path of the binding the walker is inside
     ("table", then "table.change_schema", ...), so same-named local
     helpers in different functions stay distinct lock-graph nodes.
     [fn_keys] is where direct acquisitions/calls register: the scope
     key, plus a local-module key for toplevel bindings so [Module.f]
     call sites from other files resolve here too. *)
  let prefix = ref base in
  let fn_keys = ref [ base ^ ".<toplevel>" ] in
  let mod_stack = ref [] in
  let held = ref [] in
  let add_allow rule (loc : Location.t) =
    pass.p_allows :=
      { a_rule = rule;
        a_start = loc.loc_start.pos_cnum;
        a_end = loc.loc_end.pos_cnum }
      :: !(pass.p_allows)
  in
  let report li rule msg =
    if rule_applies rule path then
      pass.p_findings := mk_finding li rule msg :: !(pass.p_findings)
  in
  let handle_attrs attrs (range : Location.t) =
    List.iter
      (fun (attr : attribute) ->
        if attr.attr_name.txt = "lint.allow" then
          match parse_allow_payload attr with
          | Ok rule -> add_allow rule range
          | Error msg ->
              let li = loc_info path attr.attr_loc in
              pass.p_findings :=
                mk_finding li "lint-allow"
                  (Printf.sprintf "invalid [@lint.allow]: %s" msg)
                :: !(pass.p_findings))
      attrs
  in
  let keys_of_name name =
    let scope_key = !prefix ^ "." ^ name in
    if !prefix <> base then [ scope_key ]
    else
      match !mod_stack with
      | [] -> [ scope_key ]
      | m :: _ -> [ scope_key; String.uncapitalize_ascii m ^ "." ^ name ]
  in
  (* Candidate keys for an unqualified call to [name]: each enclosing
     scope in turn, innermost first. *)
  let candidates_of_lident name =
    let rec ancestors p acc =
      let acc = (p ^ "." ^ name) :: acc in
      match String.rindex_opt p '.' with
      | Some i -> ancestors (String.sub p 0 i) acc
      | None -> List.rev acc
    in
    ancestors !prefix []
  in
  let record_acquire cls li =
    List.iter (fun k -> tbl_push locks.direct k (cls, li)) !fn_keys
  in
  let record_call cands li =
    List.iter (fun k -> tbl_push locks.fcalls k cands) !fn_keys;
    List.iter
      (fun h -> locks.pending := (h, cands, li) :: !(locks.pending))
      !held
  in
  let check_ident lid (loc : Location.t) =
    match banned_ident (Longident.flatten lid) with
    | Some (rule, msg) -> report (loc_info path loc) rule msg
    | None -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr it (e : expression) =
    handle_attrs e.pexp_attributes e.pexp_loc;
    match e.pexp_desc with
    | Pexp_ident { txt = lid; loc } -> check_ident lid loc
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = head; _ }; _ }, args)
      when Longident.last head = "with_lock" -> (
        match List.filter (fun (l, _) -> l = Asttypes.Nolabel) args with
        | (_, mutex_arg) :: rest ->
            let cls = base ^ "." ^ lock_ident mutex_arg in
            let li = loc_info path e.pexp_loc in
            List.iter
              (fun h -> locks.nested := (h, cls, li) :: !(locks.nested))
              !held;
            record_acquire cls li;
            it.Ast_iterator.expr it mutex_arg;
            held := cls :: !held;
            List.iter (fun (_, a) -> it.Ast_iterator.expr it a) rest;
            held := List.tl !held
        | [] -> super.expr it e)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = head; _ }; _ }, _) ->
        (let li = loc_info path e.pexp_loc in
         match head with
         | Longident.Lident f -> record_call (candidates_of_lident f) li
         | Longident.Ldot (_, f) -> (
             match last_module_of head with
             | Some m ->
                 let m = resolve_module m in
                 record_call [ String.uncapitalize_ascii m ^ "." ^ f ] li
             | None -> ())
         | Longident.Lapply _ -> ());
        super.expr it e
    | _ -> super.expr it e
  in
  let value_binding it (vb : value_binding) =
    handle_attrs vb.pvb_attributes vb.pvb_loc;
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = name; _ } ->
        let saved_keys = !fn_keys and saved_prefix = !prefix in
        fn_keys := keys_of_name name;
        prefix := saved_prefix ^ "." ^ name;
        it.Ast_iterator.pat it vb.pvb_pat;
        it.Ast_iterator.expr it vb.pvb_expr;
        fn_keys := saved_keys;
        prefix := saved_prefix
    | _ -> super.value_binding it vb
  in
  let module_binding it (mb : module_binding) =
    (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
    | Some name, Pmod_ident { txt = lid; _ } -> (
        (* [module X = A.B] makes X another name for B in call paths. *)
        match List.rev (Longident.flatten lid) with
        | real :: _ -> Hashtbl.replace aliases name real
        | [] -> ())
    | Some name, _ ->
        let saved = !mod_stack in
        mod_stack := name :: saved;
        super.module_binding it mb;
        mod_stack := saved
    | None, _ -> super.module_binding it mb)
  in
  let structure_item it (si : structure_item) =
    (match si.pstr_desc with
    | Pstr_attribute attr when attr.attr_name.txt = "lint.allow" -> (
        match parse_allow_payload attr with
        | Ok rule -> pass.p_allows := { whole_file with a_rule = rule } :: !(pass.p_allows)
        | Error msg ->
            let li = loc_info path attr.attr_loc in
            pass.p_findings :=
              mk_finding li "lint-allow"
                (Printf.sprintf "invalid [@@@lint.allow]: %s" msg)
              :: !(pass.p_findings))
    | Pstr_eval (_, attrs) -> handle_attrs attrs si.pstr_loc
    | _ -> ());
    super.structure_item it si
  in
  let iterator =
    { super with expr; value_binding; module_binding; structure_item }
  in
  iterator.structure iterator structure

(* ------------------------------------------------------------------ *)
(* Lock-order cycle detection                                          *)
(* ------------------------------------------------------------------ *)

let transitive_acquires locks =
  let known key =
    Hashtbl.mem locks.direct key || Hashtbl.mem locks.fcalls key
  in
  (* A call site resolves to its innermost candidate that names a
     scanned function; external calls resolve to nothing. *)
  let resolve cands = List.find_opt known cands in
  let memo : (string, (string * loc_info) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let rec go visiting key =
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
        if List.mem key visiting then []
        else begin
          let direct =
            match Hashtbl.find_opt locks.direct key with
            | Some r -> !r
            | None -> []
          in
          let callees =
            match Hashtbl.find_opt locks.fcalls key with
            | Some r -> !r
            | None -> []
          in
          let all =
            List.fold_left
              (fun acc cands ->
                match resolve cands with
                | Some callee -> go (key :: visiting) callee @ acc
                | None -> acc)
              direct callees
          in
          (* Dedupe by class, keep the first location seen. *)
          let seen = Hashtbl.create 8 in
          let all =
            List.filter
              (fun (cls, _) ->
                if Hashtbl.mem seen cls then false
                else begin
                  Hashtbl.add seen cls ();
                  true
                end)
              all
          in
          if visiting = [] then Hashtbl.replace memo key all;
          all
        end
  in
  fun cands -> match resolve cands with Some key -> go [] key | None -> []

let lock_order_findings locks =
  let acquires = transitive_acquires locks in
  (* Edge set: held -> acquired, from direct nesting plus calls made
     while holding a lock. *)
  let edges : (string * string, loc_info) Hashtbl.t = Hashtbl.create 32 in
  let add_edge src dst li =
    match Hashtbl.find_opt edges (src, dst) with
    | Some prev
      when (prev.l_file, prev.l_line, prev.l_col)
           <= (li.l_file, li.l_line, li.l_col) -> ()
    | _ -> Hashtbl.replace edges (src, dst) li
  in
  List.iter (fun (src, dst, li) -> add_edge src dst li) !(locks.nested);
  List.iter
    (fun (src, cands, li) ->
      List.iter (fun (dst, _) -> add_edge src dst li) (acquires cands))
    !(locks.pending);
  let succs n =
    Hashtbl.fold
      (fun (a, b) _ acc -> if a = n then b :: acc else acc)
      edges []
    |> List.sort compare
  in
  (* Shortest path from [src] to [dst] over the edge set, as a node
     list including both ends; BFS keeps the report minimal. *)
  let path_between src dst =
    let parent = Hashtbl.create 16 in
    let queue = Queue.create () in
    Queue.add src queue;
    Hashtbl.replace parent src src;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      List.iter
        (fun s ->
          if not (Hashtbl.mem parent s) then begin
            Hashtbl.replace parent s n;
            if s = dst then found := true else Queue.add s queue
          end)
        (succs n)
    done;
    if not (Hashtbl.mem parent dst) then None
    else begin
      let rec build acc n =
        if n = src then n :: acc else build (n :: acc) (Hashtbl.find parent n)
      in
      Some (build [] dst)
    end
  in
  (* An edge a->b is part of a cycle iff b reaches a. *)
  Hashtbl.fold
    (fun (a, b) li acc ->
      let back =
        if a = b then Some [ b ] else path_between b a
      in
      match back with
      | None -> acc
      | Some path ->
          let cycle = a :: path @ [ b ] in
          let msg =
            Printf.sprintf
              "acquiring %s while holding %s closes a lock cycle: %s" b a
              (String.concat " -> " cycle)
          in
          mk_finding li "lock-order" msg :: acc)
    edges []

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type root = { root_path : string; root_rules : string list option }

let root ?only root_path = { root_path; root_rules = only }

let list_files roots =
  let acc = ref [] in
  let rec walk rules path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          (* [lint_fixtures] holds deliberately-bad corpora for the
             linter's own tests; it is only scanned when a root points
             inside it explicitly (as the golden tests do). *)
          if
            entry <> "_build" && entry <> "lint_fixtures"
            && not (String.length entry > 0 && entry.[0] = '.')
          then walk rules (Filename.concat path entry))
        (Sys.readdir path)
    else
      match Filename.extension path with
      | ".ml" | ".mli" -> acc := (path, rules) :: !acc
      | _ -> ()
  in
  List.iter
    (fun r -> if Sys.file_exists r.root_path then walk r.root_rules r.root_path)
    roots;
  (* First root wins when roots overlap. *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (p, _) ->
      if Hashtbl.mem seen p then false
      else begin
        Hashtbl.add seen p ();
        true
      end)
    (List.rev !acc)
  |> List.sort compare

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let parse_findings path msg =
  { i_f = { f_file = path; f_line = 1; f_col = 0; f_rule = "parse"; f_msg = msg };
    i_cnum = 0 }

let run ?rules ?(typed = false) ?cmt_roots ~roots () =
  let files = list_files roots in
  let root_rules : (string, string list option) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter (fun (p, rs) -> Hashtbl.replace root_rules p rs) files;
  let files = List.map fst files in
  let locks = lock_acc_create () in
  let findings = ref [] in
  let allows : (string, allow list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun path ->
      let pass = { p_findings = ref []; p_allows = ref [] } in
      (match read_file path with
      | exception Sys_error msg ->
          pass.p_findings := [ parse_findings path msg ]
      | content -> (
          let lexbuf = Lexing.from_string content in
          Lexing.set_filename lexbuf path;
          try
            if Filename.extension path = ".ml" then
              scan_structure ~path ~locks (Parse.implementation lexbuf) pass
            else ignore (Parse.interface lexbuf)
          with exn ->
            let msg =
              match Location.error_of_exn exn with
              | Some (`Ok err) ->
                  Format.asprintf "%a" Location.print_report err
              | _ -> Printexc.to_string exn
            in
            pass.p_findings :=
              [ parse_findings path ("syntax error: " ^ msg) ]))
      ;
      findings := !(pass.p_findings) @ !findings;
      Hashtbl.replace allows path !(pass.p_allows))
    files;
  (* mli-coverage: every lib .ml needs its sibling .mli in the scan. *)
  let file_set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace file_set f ()) files;
  List.iter
    (fun path ->
      match context path with
      | Lib _
        when Filename.extension path = ".ml"
             && not (Hashtbl.mem file_set (path ^ "i")) ->
          findings :=
            { i_f =
                { f_file = path;
                  f_line = 1;
                  f_col = 0;
                  f_rule = "mli-coverage";
                  f_msg =
                    Printf.sprintf "lib module %s has no interface (%s)"
                      (module_base path)
                      (Filename.basename path ^ "i") };
              i_cnum = 0 }
            :: !findings
      | _ -> ())
    files;
  (* lock-order over the whole tree. *)
  findings :=
    List.filter_map
      (fun f ->
        if rule_applies "lock-order" f.i_f.f_file then Some f else None)
      (lock_order_findings locks)
    @ !findings;
  (* Typed pass: load the cmts dune emitted for the scanned sources,
     collect escape/lock facts, infer protection contracts. *)
  if typed then begin
    let sources =
      List.filter (fun p -> Filename.extension p = ".ml") files
    in
    let croots =
      match cmt_roots with
      | Some r -> r
      | None -> List.map (fun r -> r.root_path) roots
    in
    let units = Cmt_load.load ~sources (Cmt_load.find_cmts croots) in
    (* Bench and test drivers are single-threaded harnesses: letting
       their raw, lock-free calls into lib feed the must-lockset
       intersection would dissolve every protection contract they
       exercise. Only lib and bin code witnesses concurrency. *)
    let units =
      List.filter
        (fun u ->
          match context u.Cmt_load.u_source with
          | Lib _ | Bin -> true
          | Bench | Test | Other -> false)
        units
    in
    let facts =
      List.map
        (fun u -> Escape.collect ~path:u.Cmt_load.u_source u.Cmt_load.u_structure)
        units
    in
    List.iter
      (fun (tf : Lockset.finding) ->
        let s = tf.Lockset.f_site in
        if rule_applies tf.Lockset.f_rule s.Escape.s_file then
          findings :=
            { i_f =
                { f_file = s.Escape.s_file;
                  f_line = s.Escape.s_line;
                  f_col = s.Escape.s_col;
                  f_rule = tf.Lockset.f_rule;
                  f_msg = tf.Lockset.f_msg };
              i_cnum = s.Escape.s_cnum }
            :: !findings)
      (Lockset.analyze facts)
  end;
  (* Restrict to the requested rules (lint-allow/parse always report),
     then to each file's root restriction. *)
  let findings =
    match rules with
    | None -> !findings
    | Some keep ->
        List.filter
          (fun f ->
            List.mem f.i_f.f_rule keep
            || f.i_f.f_rule = "lint-allow"
            || f.i_f.f_rule = "parse")
          !findings
  in
  let findings =
    List.filter
      (fun f ->
        match Hashtbl.find_opt root_rules f.i_f.f_file with
        | Some (Some keep) ->
            List.mem f.i_f.f_rule keep
            || f.i_f.f_rule = "lint-allow"
            || f.i_f.f_rule = "parse"
        | Some None | None -> true)
      findings
  in
  (* Suppression: a finding dies only under an allow range for its own
     rule in its own file. *)
  let suppressed f =
    match Hashtbl.find_opt allows f.i_f.f_file with
    | None -> false
    | Some ranges ->
        List.exists
          (fun a ->
            a.a_rule = f.i_f.f_rule
            && a.a_start <= f.i_cnum
            && f.i_cnum <= a.a_end)
          ranges
  in
  List.filter (fun f -> not (suppressed f)) findings
  |> List.map (fun f -> f.i_f)
  |> List.sort_uniq compare

let to_plain f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.f_file f.f_line f.f_col f.f_rule f.f_msg

let to_github f =
  (* Workflow-command annotation; the message must stay single-line. *)
  let msg =
    String.map (function '\n' | '\r' -> ' ' | c -> c) (f.f_rule ^ ": " ^ f.f_msg)
  in
  Printf.sprintf "::error file=%s,line=%d,col=%d::%s" f.f_file f.f_line
    (f.f_col + 1) msg
