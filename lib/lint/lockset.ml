(* See lockset.mli. *)

open Escape

type finding = {
  f_rule : string;
  f_site : Escape.site;
  f_other : Escape.site option;
  f_msg : string;
}

let hot_locks = [ "table.t.state"; "table.t.writer_lock"; "block_cache.shard.mutex" ]

let union a b = List.sort_uniq compare (a @ b)

let inter a b = List.filter (fun x -> List.mem x b) a

let site_cmp a b =
  compare (a.s_file, a.s_line, a.s_col) (b.s_file, b.s_line, b.s_col)

let module_of_class cls =
  match String.index_opt cls '.' with
  | Some i -> String.sub cls 0 i
  | None -> cls

(* An access with function-level context folded in. *)
type eff = {
  e_kind : kind;
  e_sort : sort;
  e_counter : bool;
  e_locks : string list;
  e_crossing : bool;
  e_owned : bool;
  e_site : site;
}

let analyze facts_list =
  (* ---- global tables ------------------------------------------------ *)
  let fns : (string, fn_info) Hashtbl.t = Hashtbl.create 256 in
  let defs : (string * int * int, string) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun fa ->
      let b = Filename.remove_extension (Filename.basename fa.fa_file) in
      Hashtbl.iter
        (fun (l, c) key ->
          if not (Hashtbl.mem defs (b, l, c)) then Hashtbl.add defs (b, l, c) key)
        fa.fa_defs;
      List.iter
        (fun f ->
          if not (Hashtbl.mem fns f.fn_key) then Hashtbl.add fns f.fn_key f)
        fa.fa_fns)
    facts_list;
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) fns [] |> List.sort compare
  in
  let resolve ce =
    match Hashtbl.find_opt defs (ce.ce_base, ce.ce_line, ce.ce_col) with
    | Some k -> k
    | None -> ce.ce_base ^ "." ^ ce.ce_name
  in
  (* In-edges per callee: (caller key, locks at site, crossing, value
     escape). *)
  let in_edges : (string, string * string list * bool * bool) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun key ->
      let f = Hashtbl.find fns key in
      List.iter
        (fun cl ->
          Hashtbl.add in_edges (resolve cl.cl_callee)
            (key, cl.cl_locks, cl.cl_crossing, cl.cl_value))
        f.fn_calls)
    keys;
  (* ---- crossing fixpoint (module-local propagation) ----------------- *)
  let crossing : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let mark k = if not (Hashtbl.mem crossing k) then (Hashtbl.add crossing k (); true) else false in
  List.iter
    (fun key ->
      let f = Hashtbl.find fns key in
      if f.fn_root_crossing then ignore (mark key);
      List.iter
        (fun cl -> if cl.cl_crossing then ignore (mark (resolve cl.cl_callee)))
        f.fn_calls)
    keys;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun key ->
        if Hashtbl.mem crossing key then
          let f = Hashtbl.find fns key in
          List.iter
            (fun cl ->
              let callee = resolve cl.cl_callee in
              if cl.cl_callee.ce_base = f.fn_base && Hashtbl.mem fns callee
              then if mark callee then changed := true)
            f.fn_calls)
      keys
  done;
  let is_crossing k = Hashtbl.mem crossing k in
  (* ---- ambient must-locksets ---------------------------------------- *)
  (* None = top (no call site seen yet on this iteration path). *)
  let must : (string, string list option) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun key ->
      Hashtbl.replace must key
        (if Hashtbl.mem in_edges key then None else Some []))
    keys;
  let pinned : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let iterate () =
    let rounds = ref 0 in
    let changed = ref true in
    while !changed && !rounds < 50 do
      changed := false;
      incr rounds;
      List.iter
        (fun key ->
          if Hashtbl.mem in_edges key && not (Hashtbl.mem pinned key) then begin
            let edges = Hashtbl.find_all in_edges key in
            let next =
              List.fold_left
                (fun acc (caller, locks, crossing, value) ->
                  let contrib =
                    (* A value escape means unknown future call sites:
                       no ambient locks at all.  A crossing edge runs
                       the callee on another domain: the caller's
                       ambient locks do not hold there. *)
                    if value then Some []
                    else if crossing then Some locks
                    else
                      match Hashtbl.find_opt must caller with
                      | Some (Some m) -> Some (union m locks)
                      | Some None | None -> None
                  in
                  match (acc, contrib) with
                  | None, c -> c
                  | a, None -> a
                  | Some a, Some c -> Some (inter a c))
                None edges
            in
            if next <> Hashtbl.find must key then begin
              Hashtbl.replace must key next;
              changed := true
            end
          end)
        keys
    done
  in
  iterate ();
  (* Functions still at top after the fixpoint are only reachable from
     top — recursive closures returned as values, entry points of
     escaping call cycles. Their real call sites are unknown, so ground
     them at "no ambient locks" and let the rest re-shrink. *)
  let residual =
    List.filter (fun k -> Hashtbl.find_opt must k = Some None) keys
  in
  if residual <> [] then begin
    List.iter
      (fun k ->
        Hashtbl.replace must k (Some []);
        Hashtbl.replace pinned k ())
      residual;
    iterate ()
  end;
  let must_of key =
    match Hashtbl.find_opt must key with Some (Some m) -> m | _ -> []
  in
  (* ---- per-cell effective accesses ---------------------------------- *)
  let cells : (string, eff) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun key ->
      let f = Hashtbl.find fns key in
      let fcross = is_crossing key in
      let amb = must_of key in
      List.iter
        (fun ac ->
          if not (String.length ac.ac_cell >= 5 && String.sub ac.ac_cell 0 5 = "anon.")
          then
            Hashtbl.add cells ac.ac_cell
              { e_kind = ac.ac_kind;
                e_sort = ac.ac_sort;
                e_counter = ac.ac_counter;
                e_locks =
                  (if ac.ac_crossing then ac.ac_locks
                   else union ac.ac_locks amb);
                e_crossing = ac.ac_crossing || fcross;
                e_owned = ac.ac_owned;
                e_site = ac.ac_site })
        f.fn_accesses)
    keys;
  let cell_keys =
    Hashtbl.fold (fun k _ acc -> if List.mem k acc then acc else k :: acc) cells []
    |> List.sort compare
  in
  let findings = ref [] in
  let emit rule site other msg =
    findings := { f_rule = rule; f_site = site; f_other = other; f_msg = msg } :: !findings
  in
  let show_locks = function
    | [] -> "no lock"
    | ls -> "locks {" ^ String.concat ", " ls ^ "}"
  in
  let show_kind = function Read -> "read" | Write -> "write" in
  let pp_site s = Printf.sprintf "%s:%d" s.s_file s.s_line in
  List.iter
    (fun cell ->
      let all =
        Hashtbl.find_all cells cell
        |> List.sort (fun a b -> site_cmp a.e_site b.e_site)
      in
      (* Constructor initialization of owned values is not an access.
         Owned refs/containers come back when the cell is accessed from
         both sides of a domain boundary — the local-allocated ref that
         escaped into a crossing closure.  A cell whose accesses are
         all inside one crossing function is per-task state, not
         shared. *)
      let non_owned = List.filter (fun e -> not e.e_owned) all in
      let owned_rc =
        List.filter (fun e -> e.e_owned && e.e_sort <> Field) all
      in
      let both_sides es =
        List.exists (fun e -> e.e_crossing) es
        && List.exists (fun e -> not e.e_crossing) es
      in
      let crossing_any =
        List.exists (fun e -> e.e_crossing) (non_owned @ owned_rc)
      in
      let acc =
        if both_sides (non_owned @ owned_rc) then non_owned @ owned_rc
        else non_owned
      in
      let acc = List.sort (fun a b -> site_cmp a.e_site b.e_site) acc in
      let writes = List.filter (fun e -> e.e_kind = Write) acc in
      if writes <> [] && List.length acc >= 2 then begin
        let common =
          match acc with
          | [] -> []
          | e :: tl -> List.fold_left (fun m e -> inter m e.e_locks) e.e_locks tl
        in
        if crossing_any && common = [] then begin
          (* Primary: a write with the fewest locks; secondary: an access
             on the other side of the domain boundary if one exists. *)
          let w =
            List.fold_left
              (fun best e ->
                if List.length e.e_locks < List.length best.e_locks then e
                else best)
              (List.hd writes) writes
          in
          let other =
            let opposite =
              List.filter
                (fun e -> e.e_crossing <> w.e_crossing && e.e_site <> w.e_site)
                acc
            in
            match (opposite, List.filter (fun e -> e.e_site <> w.e_site) acc) with
            | o :: _, _ -> Some o
            | [], o :: _ -> Some o
            | [], [] -> None
          in
          let counter_only =
            w.e_sort = Ref && List.for_all (fun e -> e.e_counter) writes
          in
          let rule = if counter_only then "atomic-discipline" else "domain-race" in
          let msg =
            match other with
            | Some o ->
                if counter_only then
                  Printf.sprintf
                    "counter `%s` is a plain ref updated across domains (%s \
                     here with %s; %s at %s with %s): make it Atomic.t"
                    cell (show_kind w.e_kind) (show_locks w.e_locks)
                    (show_kind o.e_kind) (pp_site o.e_site) (show_locks o.e_locks)
                else
                  Printf.sprintf
                    "possible data race on `%s`: %s here (%s%s) conflicts \
                     with %s at %s (%s%s); no common lock protects every \
                     access — hold one with_lock region at all sites or make \
                     the cell Atomic.t"
                    cell (show_kind w.e_kind) (show_locks w.e_locks)
                    (if w.e_crossing then ", crossing" else "")
                    (show_kind o.e_kind) (pp_site o.e_site)
                    (show_locks o.e_locks)
                    (if o.e_crossing then ", crossing" else "")
            | None ->
                Printf.sprintf
                  "possible data race on `%s`: %s from a domain-crossing \
                   closure with %s and no common lock across accesses"
                  cell (show_kind w.e_kind) (show_locks w.e_locks)
          in
          emit rule w.e_site (Option.map (fun o -> o.e_site) other) msg
        end
        else if (not crossing_any) && common = [] then begin
          (* Mixed discipline: some accesses take a lock, a write does
             not — the lock evidence says the cell is meant to be
             guarded.  Contracts are inferred module-by-module: only
             sites in the cell's own defining module count as evidence,
             so a caller that happens to hold an unrelated lock while
             poking a Binio cursor does not indict every other cursor
             user. *)
          let home = module_of_class cell in
          let local e =
            Filename.remove_extension (Filename.basename e.e_site.s_file)
            = home
          in
          let unlocked_w =
            List.filter (fun e -> e.e_locks = [] && local e) writes
          in
          let locked = List.filter (fun e -> e.e_locks <> [] && local e) acc in
          match (unlocked_w, locked) with
          | w :: _, l :: _ ->
              emit "domain-race" w.e_site (Some l.e_site)
                (Printf.sprintf
                   "mixed lock discipline on `%s`: unlocked %s here but %s at \
                    %s holds %s — either every access takes the lock or none \
                    needs it"
                   cell (show_kind w.e_kind) (show_kind l.e_kind)
                   (pp_site l.e_site) (show_locks l.e_locks))
          | _ -> ()
        end
      end)
    cell_keys;
  (* ---- blocking-under-lock ------------------------------------------ *)
  (* A lock class is a {e leaf} when the analysis never observes
     blocking work or a further lock acquisition under it. Taking a
     leaf lock from another module is benign — the wait is bounded and
     no ordering cycle can form through it — so the cross-module arm
     below only fires for non-leaf ("risky") locks. *)
  let risky : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun key ->
      let f = Hashtbl.find fns key in
      let amb = must_of key in
      List.iter
        (fun bo ->
          List.iter
            (fun c -> Hashtbl.replace risky c ())
            (union bo.bo_locks amb))
        f.fn_blocking;
      List.iter
        (fun aq ->
          List.iter
            (fun c -> if c <> aq.aq_class then Hashtbl.replace risky c ())
            (union aq.aq_locks amb))
        f.fn_acquires)
    keys;
  List.iter
    (fun key ->
      let f = Hashtbl.find fns key in
      let amb = must_of key in
      List.iter
        (fun bo ->
          let eff = union bo.bo_locks amb in
          match List.filter (fun h -> List.mem h eff) hot_locks with
          | [] -> ()
          | h :: _ ->
              emit "blocking-under-lock" bo.bo_site None
                (Printf.sprintf
                   "%s while holding hot lock `%s`%s: hoist the blocking call \
                    out of the with_lock region"
                   bo.bo_what h
                   (if List.mem h bo.bo_locks then ""
                    else " (held by every caller)")))
        f.fn_blocking;
      List.iter
        (fun aq ->
          if aq.aq_base <> "anon" && Hashtbl.mem risky aq.aq_class then
            let eff = union aq.aq_locks amb in
            match
              List.filter
                (fun h ->
                  List.mem h eff && h <> aq.aq_class
                  && module_of_class h <> aq.aq_base)
                hot_locks
            with
            | [] -> ()
            | h :: _ ->
                emit "blocking-under-lock" aq.aq_site None
                  (Printf.sprintf
                     "acquiring lock `%s` while holding hot lock `%s` crosses \
                      a module boundary — release the hot lock before taking \
                      locks of another subsystem"
                     aq.aq_class h))
        f.fn_acquires)
    keys;
  List.sort
    (fun a b ->
      compare
        (a.f_site.s_file, a.f_site.s_line, a.f_site.s_col, a.f_rule, a.f_msg)
        (b.f_site.s_file, b.f_site.s_line, b.f_site.s_col, b.f_rule, b.f_msg))
    !findings
