(** Domain-escape and lock-region fact collection over a [Typedtree].

    One pass per compilation unit producing per-function summaries —
    the raw material {!Lockset} turns into [domain-race],
    [blocking-under-lock], and [atomic-discipline] findings:

    - which closures {e cross a domain boundary} (arguments to
      [Exec.Pool.submit]/[submit_task]/[map], [Pscan.stage],
      [Domain.spawn], [Thread.create]), and which let-bound functions
      escape into such a call by name;
    - every read/write of a {e mutable cell} — [mutable] record field,
      [ref], [Hashtbl], [Queue], [Buffer], [Bytes] — with the set of
      [with_lock] regions lexically held at the site;
    - every lock acquisition and potentially blocking call (VFS I/O,
      [Unix.sleep*], [Thread.delay], socket ops) with held locks.

    Identity is canonical by {e declaration site}: a function is
    [<declfile>.<name>] (nested bindings get [@<line>]), a record field
    is [<declfile-of-type>.<type>.<field>], so the same cell or callee
    referenced from different modules (via [.ml] or [.mli]) resolves to
    one key.

    Approximations, shared with the RacerD lineage: locks are tracked
    lexically and persist into non-escaping lambdas (a closure built
    under a lock but run later is assumed run under it — fine for the
    immediately-applied HOF callbacks that dominate this codebase);
    values freshly allocated in a function are {e owned} and their
    field writes are not accesses (constructor initialization), unless
    the cell also escapes into a crossing closure. *)

type site = { s_file : string; s_line : int; s_col : int; s_cnum : int }

type kind = Read | Write

(** How a cell is referenced, for rule selection and messages. *)
type sort = Field | Ref | Container

type access = {
  ac_cell : string;
  ac_sort : sort;
  ac_kind : kind;
  ac_counter : bool;  (** [incr]/[decr]/[x := !x + _]-shaped write *)
  ac_locks : string list;  (** lock classes held lexically, sorted *)
  ac_crossing : bool;  (** inside a domain-crossing closure literal *)
  ac_owned : bool;  (** base value freshly allocated in this function *)
  ac_site : site;
}

(** An unresolved call site: declaration file base + name + exact
    declaration position, resolved against the global definition map by
    {!Lockset}. *)
type callee = {
  ce_base : string;  (** basename (no ext) of the callee's decl file *)
  ce_name : string;
  ce_line : int;
  ce_col : int;
}

type call = {
  cl_callee : callee;
  cl_locks : string list;
  cl_crossing : bool;
  cl_value : bool;
      (** bare reference outside call position — the function escapes
          as a value, so its future call sites are unknown and it gets
          no ambient locks *)
}

type acquire = {
  aq_class : string;  (** lock class acquired *)
  aq_base : string;  (** decl-file base of the acquired mutex *)
  aq_locks : string list;  (** locks already held at the site *)
  aq_site : site;
}

type block_op = {
  bo_what : string;  (** e.g. ["Vfs.fsync"], ["Thread.delay"] *)
  bo_locks : string list;
  bo_site : site;
}

type fn_info = {
  fn_key : string;
  fn_file : string;
  fn_base : string;  (** module base, e.g. ["pool"] *)
  mutable fn_root_crossing : bool;
      (** body passed by name to a crossing primitive *)
  mutable fn_accesses : access list;
  mutable fn_calls : call list;
  mutable fn_acquires : acquire list;
  mutable fn_blocking : block_op list;
}

type facts = {
  fa_file : string;
  fa_fns : fn_info list;
  fa_defs : (int * int, string) Hashtbl.t;
      (** (line, col) of a value binding in this file -> canonical key *)
}

val collect : path:string -> Typedtree.structure -> facts
