(** Protection-contract inference over {!Escape} facts.

    Consumes the per-function summaries of every compilation unit and
    produces typed findings:

    - {b crossing closure fixpoint}: a function is {e crossing} if its
      body is a closure literal passed to a crossing primitive, if it
      escapes into one by name, or (module-locally) if a crossing
      function of the same file calls it;
    - {b ambient must-locksets}: [must(f)] is the intersection over all
      call sites of [f] of the locks held there (plus the caller's own
      must-set) — so [Stats.note_insert], always called under
      [Table.state], inherits that protection even though it takes no
      lock itself;
    - {b per-cell contracts}: for each mutable cell, the intersection
      of effective locks over all non-owned accesses.  A cell reachable
      from a crossing closure with an empty intersection is a
      [domain-race] (or [atomic-discipline] when it is a plain [ref]
      counter); a cell with no crossing access but an unlocked write
      {e and} locked accesses elsewhere is a mixed-discipline
      [domain-race];
    - {b blocking-under-lock}: blocking operations and cross-module
      lock acquisitions whose effective (lexical ∪ ambient) lockset
      contains a hot-path lock class.

    All output is sorted; two runs over the same facts are
    byte-identical. *)

type finding = {
  f_rule : string;
      (** [domain-race], [blocking-under-lock], or [atomic-discipline] *)
  f_site : Escape.site;  (** primary site — anchors suppression *)
  f_other : Escape.site option;  (** second conflicting site, if any *)
  f_msg : string;
}

val hot_locks : string list
(** Lock classes treated as hot-path for [blocking-under-lock]:
    [table.t.state], [table.t.writer_lock], [block_cache.shard.mutex]. *)

val analyze : Escape.facts list -> finding list
