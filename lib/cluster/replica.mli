(** Warm-spare shard replica: the §3.5 continuous-archival loop wrapped
    in a promotable server process.

    In spare mode the replica repeatedly {!Lt_vfs.Sync.until_stable}s
    the primary's directory tree into its own — it does NOT open the
    database, so each sync pass sees a self-consistent tablet set
    without racing a live engine's table discovery.

    {!promote} stops syncing and opens the copy as a real
    {!Littletable.Db.t}. It is triggered implicitly by the first data
    request reaching {!handler} — the router only contacts a spare
    after its primary failed. There is deliberately no final sync pass
    at promotion: the primary is presumed dead, and the spare serves
    what the last completed sync captured; anything newer is the
    bounded data loss of §3.4.1 (un-flushed memtables never reach the
    spare at all, since syncing copies only durable files). *)

open Littletable

type t

(** [start ?config ?clock ?period_s ~vfs ~primary_dir ~dir ()] begins
    syncing [primary_dir] into [dir] every [period_s] seconds (default
    10; [<= 0.] disables the background thread — tests then drive
    {!sync_now} manually). [config]/[clock] are used when the spare is
    promoted and opens its database. *)
val start :
  ?config:Config.t ->
  ?clock:Lt_util.Clock.t ->
  ?period_s:float ->
  vfs:Lt_vfs.Vfs.t ->
  primary_dir:string ->
  dir:string ->
  unit ->
  t

(** Run one sync pass now (serialized with the background loop); no-op
    once promoted. Errors (primary mid-write or gone) are logged and
    swallowed — the next pass retries. *)
val sync_now : t -> unit

(** Stop syncing and open the spare's copy as a live database.
    Idempotent; returns the (cached) database. *)
val promote : t -> Db.t

val promoted : t -> bool

(** The live database once promoted. *)
val db : t -> Db.t option

(** Wire-protocol dispatch: [Hello]/[Ping]/[Get_placement]/[Get_metrics]
    answer in spare mode (so probes and monitoring never trigger
    promotion — a spare reports [policy = "spare"]); any data request
    promotes first. *)
val handler : t -> Lt_net.Protocol.request -> Lt_net.Protocol.response

(** A {!Lt_net.Server.backend} serving {!handler}, for
    [littletable-server --spare-of]. *)
val backend : t -> Lt_net.Server.backend

(** Stop the sync thread; if promoted, flush all tables. *)
val stop : t -> unit
