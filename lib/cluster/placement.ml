open Littletable

type policy = Hash of { vnodes : int } | Range of Value.t list

type t = {
  p_shards : int;
  p_policy : policy;
  p_overrides : (string * (Value.t * int)) list;
      (** encoded leading value -> (value, owner); newest first *)
  p_epoch : int;
  p_ring : (int64 * int) array;  (** Hash only: sorted (point, shard) *)
  p_points : string array;  (** Range only: encoded split points *)
}

let encoded v =
  let b = Buffer.create 16 in
  Key_codec.encode_value b v;
  Buffer.contents b

(* FNV-1a 64 with a murmur-style finalizer. Deterministic across
   processes and OCaml versions, unlike [Hashtbl.hash] — the router and
   any future cluster-aware client must agree on placement
   byte-for-byte. The finalizer matters: bare FNV-1a barely moves the
   high bits for short inputs that differ only in their last bytes
   (consecutive int64 keys, vnode indices), which collapses the ring. *)
let fmix64 h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  fmix64 !h

let build_ring ~shards ~vnodes =
  let ring = Array.make (shards * vnodes) (0L, 0) in
  for s = 0 to shards - 1 do
    for v = 0 to vnodes - 1 do
      ring.((s * vnodes) + v) <- (fnv1a (Printf.sprintf "shard-%d-vnode-%d" s v), s)
    done
  done;
  Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) ring;
  ring

let create ~shards ~policy =
  if shards < 1 then invalid_arg "Placement.create: shards < 1";
  let ring, points =
    match policy with
    | Hash { vnodes } ->
        if vnodes < 1 then invalid_arg "Placement.create: vnodes < 1";
        (build_ring ~shards ~vnodes, [||])
    | Range points ->
        if List.length points <> shards - 1 then
          invalid_arg
            (Printf.sprintf
               "Placement.create: range policy over %d shards needs %d split \
                points, got %d"
               shards (shards - 1) (List.length points));
        let encs = Array.of_list (List.map encoded points) in
        Array.iteri
          (fun i e ->
            if i > 0 && String.compare encs.(i - 1) e >= 0 then
              invalid_arg "Placement.create: split points not strictly ascending")
          encs;
        ([||], encs)
  in
  { p_shards = shards; p_policy = policy; p_overrides = []; p_epoch = 0;
    p_ring = ring; p_points = points }

let shards t = t.p_shards
let epoch t = t.p_epoch
let policy t = t.p_policy
let overrides t = List.map snd t.p_overrides

let describe t =
  match t.p_policy with
  | Hash { vnodes } -> Printf.sprintf "hash(vnodes=%d)" vnodes
  | Range points -> Printf.sprintf "range(points=%d)" (List.length points)

(* First ring point at or after [h], wrapping to the start. *)
let ring_lookup ring h =
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst ring.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  snd ring.(if !lo = n then 0 else !lo)

(* Shard of an encoded value under the base policy (overrides excluded):
   range shard [i] owns [p_{i-1} <= v < p_i]. *)
let base_shard t enc =
  match t.p_policy with
  | Hash _ -> ring_lookup t.p_ring (fnv1a enc)
  | Range _ ->
      let n = Array.length t.p_points in
      let i = ref 0 in
      while !i < n && String.compare t.p_points.(!i) enc <= 0 do
        incr i
      done;
      !i

let shard_of_value t v =
  let enc = encoded v in
  match List.assoc_opt enc t.p_overrides with
  | Some (_, shard) -> shard
  | None -> base_shard t enc

let shard_of_row t schema row =
  shard_of_value t row.((Schema.pkey schema).(0))

let with_override t ~value ~shard =
  if shard < 0 || shard >= t.p_shards then
    invalid_arg "Placement.with_override: shard out of range";
  let enc = encoded value in
  let rest = List.remove_assoc enc t.p_overrides in
  { t with
    p_overrides = (enc, (value, shard)) :: rest;
    p_epoch = t.p_epoch + 1 }

let all_shards t = List.init t.p_shards Fun.id

let sort_dedup shards =
  List.sort_uniq compare shards

let shards_of_prefix t = function
  | [] -> all_shards t
  | v :: _ -> [ shard_of_value t v ]

let leading = function
  | Query.Unbounded | Query.Incl [] | Query.Excl [] -> None
  | Query.Incl (v :: _) | Query.Excl (v :: _) -> Some v

(* Owning shards of a query's bounding box. Over-inclusion is always
   safe — shards hold disjoint key sets (transient rebalance copies are
   deduplicated by the router's merge), so a shard with no matching rows
   simply contributes nothing. *)
let shards_of_query t (q : Query.t) =
  match (leading q.Query.key_low, leading q.Query.key_high) with
  | Some lo, Some hi when String.equal (encoded lo) (encoded hi) ->
      (* Both bounds pin the same leading value: one shard owns every
         matching row. *)
      [ shard_of_value t lo ]
  | lo, hi -> (
      match t.p_policy with
      | Hash _ -> all_shards t
      | Range _ ->
          let lo_idx =
            match lo with None -> 0 | Some v -> base_shard t (encoded v)
          in
          let hi_idx =
            match hi with
            | None -> t.p_shards - 1
            | Some v -> base_shard t (encoded v)
          in
          let span = List.init (hi_idx - lo_idx + 1) (fun i -> lo_idx + i) in
          (* Overridden values may live off their range shard; include
             their owners rather than re-deriving bound membership. *)
          sort_dedup (span @ List.map (fun (_, (_, s)) -> s) t.p_overrides))
