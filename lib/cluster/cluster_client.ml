module Obs = Lt_obs.Obs
module Metrics = Lt_obs.Metrics
module Trace = Lt_obs.Trace
module Client = Lt_net.Client
module Protocol = Lt_net.Protocol

let log = Logs.Src.create "lt.cluster" ~doc:"LittleTable cluster client"

module Log = (val Logs.src_log log)

exception Unavailable of string

type endpoint = { host : string; port : int }

type shard = {
  sh_primary : Client.t;
  sh_replica : Client.t option;
  mutable sh_on_replica : bool;
}

type t = {
  shards : shard array;
  eps : endpoint list;
  obs : Obs.t;
}

let create ?(obs = Obs.noop) ?connect_timeout ?(replicas = []) ~backends () =
  if backends = [] then invalid_arg "Cluster_client.create: no backends";
  let n = List.length backends in
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= n then
        invalid_arg "Cluster_client.create: replica shard index out of range")
    replicas;
  let client ep =
    Client.create ~obs ?connect_timeout ~host:ep.host ~port:ep.port ()
  in
  let shards =
    Array.of_list
      (List.mapi
         (fun i ep ->
           {
             sh_primary = client ep;
             sh_replica = Option.map client (List.assoc_opt i replicas);
             sh_on_replica = false;
           })
         backends)
  in
  { shards; eps = backends; obs }

let shard_count t = Array.length t.shards

let endpoints t = List.map (fun ep -> (ep.host, ep.port)) t.eps

let on_replica t i = t.shards.(i).sh_on_replica

(* One instrumented round trip on an established (or establishable)
   connection; a peer that stays down through the reconnect backoff is
   reported as [Unavailable]. *)
let attempt t c req =
  let timed () =
    let t0 = Obs.now_us t.obs in
    let resp = Client.request c req in
    if Obs.enabled t.obs then
      Metrics.Histogram.observe_us
        (Obs.backend_hist t.obs ~backend:(Client.peer c))
        (Int64.sub (Obs.now_us t.obs) t0);
    Metrics.Counter.inc
      (Obs.backend_requests t.obs ~backend:(Client.peer c)
         ~kind:(Protocol.request_kind req))
      1;
    resp
  in
  try timed () with
  | Client.Disconnected -> (
      match Client.reconnect ~max_attempts:3 c with
      | () -> (
          try timed ()
          with Client.Disconnected -> raise (Unavailable (Client.peer c)))
      | exception Client.Remote_error msg -> raise (Unavailable msg)
      | exception Client.Disconnected -> raise (Unavailable (Client.peer c)))

(* Writes go to the primary only: the replica is an archival spare, not
   a second writer — fanning inserts to it would fork history. *)
let request_write t i req = attempt t t.shards.(i).sh_primary req

(* Reads prefer the primary and fail over to the replica, stickily: once
   a primary has been seen dead, later reads go straight to the spare
   instead of re-paying the reconnect backoff per request. *)
let request_read t i req =
  let sh = t.shards.(i) in
  match sh.sh_replica with
  | Some r when sh.sh_on_replica -> attempt t r req
  | None -> attempt t sh.sh_primary req
  | Some r -> (
      try attempt t sh.sh_primary req
      with Unavailable _ ->
        let t0 = Obs.now_us t.obs in
        let resp = attempt t r req in
        sh.sh_on_replica <- true;
        Metrics.Counter.inc
          (Obs.failovers t.obs ~backend:(Client.peer sh.sh_primary))
          1;
        (* Mark the redirect in the trace so a reassembled tree shows
           where a read left the primary for the spare. *)
        if Obs.enabled t.obs then
          Trace.record (Obs.trace t.obs)
            { Trace.sp_op = Trace.Failover;
              sp_table = Client.peer sh.sh_primary;
              sp_start_us = t0;
              sp_duration_us = Int64.max 0L (Int64.sub (Obs.now_us t.obs) t0);
              sp_scanned = 0;
              sp_returned = 0;
              sp_tablets = 0;
              sp_cache_hits = 0;
              sp_cache_misses = 0;
              sp_ctx = Option.map Trace.child_of (Trace.current ()) };
        Log.warn (fun m ->
            m "shard %d primary %s unreachable; reading from replica %s" i
              (Client.peer sh.sh_primary) (Client.peer r));
        resp)

let close t =
  Array.iter
    (fun sh ->
      Client.close sh.sh_primary;
      Option.iter Client.close sh.sh_replica)
    t.shards
