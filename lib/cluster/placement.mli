(** Deterministic data placement for the sharded cluster.

    The paper scales Dashboard by running many independent LittleTable
    shards (§2.2). Placement maps a table's {e leading primary-key
    column} (e.g. [network]) to one of N backend shards, so every row of
    one entity lives on one shard and a query pinned to that entity
    touches one backend.

    Two base policies:
    - {!Hash}: consistent hashing (FNV-1a 64 over the order-preserving
      value encoding) on a ring of [shards * vnodes] virtual nodes;
    - {!Range}: [shards - 1] sorted split points partition the leading
      column's value order into contiguous runs — the natural choice
      for prefix-partitioned tables, and the only policy under which an
      open-ended key range maps to a contiguous subset of shards.

    On top of either, per-value {e overrides} record rebalance
    decisions (the §2.2 shard split): an override pins one leading
    value to an explicit owner. Every override bumps the placement
    {!epoch}, which the router reports via [Get_placement].

    A placement is immutable; rebalancing installs a new one. *)

open Littletable

type policy =
  | Hash of { vnodes : int }
  | Range of Value.t list  (** [shards - 1] split points, strictly ascending *)

type t

(** @raise Invalid_argument on [shards < 1], [vnodes < 1], or a split
    point list that is mis-sized or not strictly ascending in value
    order. *)
val create : shards:int -> policy:policy -> t

val shards : t -> int

(** Bumped by every {!with_override}; 0 at creation. *)
val epoch : t -> int

val policy : t -> policy

(** Current overrides, newest first. *)
val overrides : t -> (Value.t * int) list

(** Human-readable policy, e.g. ["hash(vnodes=64)"] — the
    [Get_placement] policy string. *)
val describe : t -> string

(** Owner of a leading-column value (overrides considered). *)
val shard_of_value : t -> Value.t -> int

(** Owner of a validated row: {!shard_of_value} of its leading
    primary-key column. *)
val shard_of_row : t -> Schema.t -> Value.t array -> int

(** Pin [value] to [shard], superseding any previous override for it;
    bumps the epoch.
    @raise Invalid_argument if [shard] is out of range. *)
val with_override : t -> value:Value.t -> shard:int -> t

(** Owners of a key prefix: the empty prefix means every shard, a
    non-empty one pins the leading value to its single owner. *)
val shards_of_prefix : t -> Value.t list -> int list

(** Owners of a query's bounding box, ascending, possibly
    over-inclusive (never under-inclusive): a query whose key bounds
    pin one leading value maps to that value's owner; otherwise Hash
    fans out to every shard and Range to the contiguous span between
    the bounds' base shards plus any override owners. *)
val shards_of_query : t -> Query.t -> int list
