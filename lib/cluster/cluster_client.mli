(** The router's view of the backend fleet: one {!Lt_net.Client} per
    shard primary, plus an optional warm-spare replica per shard.

    Connections are lazy — a handle is built without touching the
    network, and each request (re-)establishes its connection on demand
    through {!Lt_net.Client.reconnect}'s bounded backoff. A peer that
    stays down through the backoff raises {!Unavailable}.

    Reads fail over: when a shard's primary is unreachable and the
    shard has a replica, the read is answered by the replica and the
    shard is marked over, stickily, so later reads skip the dead
    primary's backoff ([lt_router_failovers_total] counts the flips).
    Writes never fail over — the spare is §3.5 continuous archival, not
    a second writer; writing to it would fork history. *)

exception Unavailable of string

type endpoint = { host : string; port : int }

type t

(** [create ?obs ?connect_timeout ?replicas ~backends ()] — [backends]
    in shard order; [replicas] maps shard index to its spare's
    endpoint. No network I/O happens here.
    @raise Invalid_argument on an empty backend list or an out-of-range
    replica index. *)
val create :
  ?obs:Lt_obs.Obs.t ->
  ?connect_timeout:float ->
  ?replicas:(int * endpoint) list ->
  backends:endpoint list ->
  unit ->
  t

val shard_count : t -> int

(** [(host, port)] per shard, in shard order. *)
val endpoints : t -> (string * int) list

(** Whether reads of shard [i] have failed over to its replica. *)
val on_replica : t -> int -> bool

(** One round trip to shard [i]'s primary.
    @raise Unavailable when the primary stays down through the
    reconnect backoff. *)
val request_write : t -> int -> Lt_net.Protocol.request -> Lt_net.Protocol.response

(** One round trip to shard [i]'s primary, failing over to its replica
    (if any) when the primary is unreachable.
    @raise Unavailable when no live peer remains. *)
val request_read : t -> int -> Lt_net.Protocol.request -> Lt_net.Protocol.response

val close : t -> unit
