open Littletable
module Server = Lt_net.Server
module Protocol = Lt_net.Protocol
module Sync = Lt_vfs.Sync

let log = Logs.Src.create "lt.replica" ~doc:"LittleTable warm-spare replica"

module Log = (val Logs.src_log log)

type t = {
  vfs : Lt_vfs.Vfs.t;
  primary_dir : string;
  dir : string;
  config : Config.t option;
  clock : Lt_util.Clock.t option;
  period_s : float;
  running : bool Atomic.t;
  db : Db.t option Atomic.t;
  mutable thread : Thread.t option;
  mutex : Mutex.t;  (** guards promotion *)
  sync_mutex : Mutex.t;  (** serializes sync passes *)
}

let promoted t = Atomic.get t.db <> None

let db t = Atomic.get t.db

(* One rsync-until-stable of the primary's directory tree (§3.5). The
   primary may be mid-write or already dead: a failed pass is logged and
   retried on the next period, never fatal. *)
let sync_now t =
  Lt_util.Mutexes.with_lock t.sync_mutex (fun () ->
      if not (promoted t) then
        match
          Sync.until_stable ~src:t.vfs ~src_dir:t.primary_dir ~dst:t.vfs
            ~dst_dir:t.dir ()
        with
        | (_ : Sync.stats * bool) -> ()
        | exception Lt_vfs.Vfs.Io_error msg ->
            Log.warn (fun m -> m "sync pass failed: %s" msg))

let sync_loop t =
  while Atomic.get t.running do
    sync_now t;
    (* Sleep in small slices so promotion and stop are prompt. *)
    let slept = ref 0.0 in
    while Atomic.get t.running && !slept < t.period_s do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done
  done

let join_unless_self th =
  if Thread.id th <> Thread.id (Thread.self ()) then Thread.join th

(* Stop the sync loop and open the spare's copy as a live database.
   Deliberately NO final sync pass: promotion happens because the
   primary is presumed dead, so the spare serves exactly what the last
   completed sync made durable — rows newer than that are the bounded
   data loss of §3.4.1. Idempotent. *)
let promote t =
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      match Atomic.get t.db with
      | Some db -> db
      | None ->
          Atomic.set t.running false;
          (match t.thread with
          | Some th ->
              join_unless_self th;
              t.thread <- None
          | None -> ());
          Log.info (fun m ->
              m "promoting spare %s (last synced from %s)" t.dir t.primary_dir);
          let db =
            Db.open_ ?config:t.config ?clock:t.clock ~vfs:t.vfs ~dir:t.dir ()
          in
          Atomic.set t.db (Some db);
          db)

let start ?config ?clock ?(period_s = 10.0) ~vfs ~primary_dir ~dir () =
  let t =
    {
      vfs;
      primary_dir;
      dir;
      config;
      clock;
      period_s;
      running = Atomic.make true;
      db = Atomic.make None;
      thread = None;
      mutex = Mutex.create ();
      sync_mutex = Mutex.create ();
    }
  in
  if period_s > 0.0 then t.thread <- Some (Thread.create sync_loop t);
  t

let stop t =
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      Atomic.set t.running false;
      (match t.thread with
      | Some th ->
          join_unless_self th;
          t.thread <- None
      | None -> ());
      match Atomic.get t.db with Some db -> Db.flush_all db | None -> ())

(* Serve the wire protocol: handshakes work in spare mode, but the first
   data request promotes — the router only ever contacts the spare after
   its primary failed, and by then the spare must answer as a real
   single-node server. *)
let handler t req =
  match req with
  | Protocol.Hello v ->
      if v <> Protocol.version then
        Protocol.Error (Printf.sprintf "unsupported protocol version %d" v)
      else Protocol.Hello_ok Protocol.version
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Get_placement when not (promoted t) ->
      (* Metadata, not data: answering must not promote, or a monitoring
         probe would silently end the sync loop. *)
      Protocol.Placement_info
        { pl_epoch = 0; pl_policy = "spare"; pl_backends = [] }
  | Protocol.Get_metrics when not (promoted t) ->
      Protocol.Metrics_text "# spare: not promoted\n"
  | Protocol.Get_metrics_snapshot when not (promoted t) ->
      (* Observability probes, like metadata, must not promote. *)
      Protocol.Metrics_snapshot []
  | Protocol.Get_trace _ when not (promoted t) -> Protocol.Trace_spans []
  | req -> Server.handle (promote t) req

let backend t =
  {
    Server.b_handle = handler t;
    b_obs = (match Atomic.get t.db with Some db -> Db.obs db | None -> Lt_obs.Obs.noop);
    b_render =
      (fun () ->
        match Atomic.get t.db with
        | Some db -> Lt_obs.Obs.render (Db.obs db)
        | None -> "# spare: not promoted\n");
    b_maintenance =
      Some
        (fun () ->
          match Atomic.get t.db with Some db -> Db.maintenance db | None -> ());
    b_on_stop = (fun () -> stop t);
  }
