(** The sharding router: a front-end that speaks the unmodified
    {!Lt_net.Protocol} to clients while spreading data and work over N
    backend LittleTable servers (§2.2's many-shards deployment, made
    transparent).

    Routing by request:
    - inserts are grouped by {!Placement.shard_of_row} and sub-batched
      to each owner;
    - queries fan out to {!Placement.shards_of_query} and the shards'
      ordered page streams are recombined with the engine's own
      {!Littletable.Cursor.merge}, then re-capped — rows, order, and
      [more_available] are byte-identical to a single node holding all
      the rows (provided [row_limit] equals the backends'
      [server_row_limit]); [scanned] and stats are summed across the
      backend pages actually fetched;
    - [Latest] goes to the prefix's owner (or fans out for the empty
      prefix, keeping max-timestamp/larger-key, the single-node
      winner);
    - DDL, [Flush_before], and [Get_stats] fan out to every shard
      (stats snapshots are summed with {!Littletable.Stats.add});
    - [Get_placement] describes the shard set, policy, and epoch.

    Reads fail over per shard to warm-spare replicas (see
    {!Cluster_client}); writes do not.

    Consistency note: inserts and rebalance serialize on one router
    mutex — the insert path is single-file through the router. Queries
    take no lock; during a rebalance copy they may see a key on two
    shards, which the merge deduplicates. *)

open Littletable

(** Raised by {!rebalance} when a backend fails mid-operation. The
    placement is only flipped after the copy phase completes, so an
    aborted rebalance never loses rows (it can leave a partial copy on
    the destination, which the next attempt clears). *)
exception Rebalance_error of string

type t

(** [create ?obs ?row_limit ~placement ~cluster ()]. [row_limit] is the
    router's own page cap, defaulting to
    {!Config.default}'s [server_row_limit]; for byte-identical paging it
    must equal the backends' configured limit.
    @raise Invalid_argument when the placement and cluster disagree on
    the shard count, or [row_limit < 1]. *)
val create :
  ?obs:Lt_obs.Obs.t ->
  ?row_limit:int ->
  placement:Placement.t ->
  cluster:Cluster_client.t ->
  unit ->
  t

(** Dispatch one request. Never raises: backend failures surface as
    [Error] responses ("backend unavailable: ..." once a shard has no
    live peer). *)
val handle : t -> Lt_net.Protocol.request -> Lt_net.Protocol.response

(** Current placement (epoch bumps on every {!rebalance}). *)
val placement : t -> Placement.t

val cluster : t -> Cluster_client.t

(** [rebalance t ~value ~to_shard] moves every row whose leading key
    column equals [value] — across all tables — to [to_shard]:
    copy (paged queries + inserts), flip the placement override, then
    bulk {!Littletable.Table.delete_prefix} on the old owner (§2.2,
    §7). Holds the router mutex throughout, so concurrent inserts
    queue rather than race the move. Returns rows moved (0 when
    [value] already lives on [to_shard]).
    @raise Rebalance_error on backend failure mid-operation. *)
val rebalance : t -> value:Value.t -> to_shard:int -> int

(** A {!Lt_net.Server.backend} serving {!handle}, for
    [littletable-server --router]. *)
val backend : t -> Lt_net.Server.backend
