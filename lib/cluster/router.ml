open Littletable
module Obs = Lt_obs.Obs
module Metrics = Lt_obs.Metrics
module Trace = Lt_obs.Trace
module Profile = Lt_obs.Profile
module Client = Lt_net.Client
module Protocol = Lt_net.Protocol
module Server = Lt_net.Server

exception Rebalance_error of string

(* Internal early exit carrying the error response to send. *)
exception Routed of Protocol.response

let err fmt =
  Printf.ksprintf (fun msg -> raise (Routed (Protocol.Error msg))) fmt

type t = {
  cc : Cluster_client.t;
  obs : Obs.t;
  row_limit : int;
  mutable placement : Placement.t;
  schemas : (string, Schema.t) Hashtbl.t;
  mutex : Mutex.t;
      (** serializes placement changes against the writes they route:
          inserts and prefix deletes read the placement under this lock,
          and {!rebalance} holds it for the whole copy-flip-delete, so a
          row can never land on a shard the flip just disowned *)
}

let create ?(obs = Obs.noop) ?row_limit ~placement ~cluster () =
  if Placement.shards placement <> Cluster_client.shard_count cluster then
    invalid_arg "Router.create: placement and cluster shard counts differ";
  let row_limit =
    match row_limit with
    | Some n ->
        if n < 1 then invalid_arg "Router.create: row_limit < 1";
        n
    | None -> Config.default.Config.server_row_limit
  in
  {
    cc = cluster;
    obs;
    row_limit;
    placement;
    schemas = Hashtbl.create 8;
    mutex = Mutex.create ();
  }

let placement t = t.placement

let cluster t = t.cc

let observe_fanout t n =
  if Obs.enabled t.obs then
    Metrics.Histogram.observe (Obs.router_fanout_hist t.obs) (float_of_int n)

let schema_of t table =
  match Hashtbl.find_opt t.schemas table with
  | Some s -> s
  | None -> (
      match Cluster_client.request_read t.cc 0 (Protocol.Get_table table) with
      | Protocol.Table_info { schema; _ } ->
          Hashtbl.replace t.schemas table schema;
          schema
      | Protocol.Error msg -> err "%s" msg
      | _ -> err "bad table info response")

let is_error = function Protocol.Error _ -> true | _ -> false

(* Fan a request to every shard; DDL and flushes must reach primaries
   even during a failover, so they go through the write path. *)
let fanout_all t ~write req =
  let n = Cluster_client.shard_count t.cc in
  observe_fanout t n;
  let send = if write then Cluster_client.request_write else Cluster_client.request_read in
  List.init n (fun i -> send t.cc i req)

let first_error_else resps ok =
  match List.find_opt is_error resps with Some e -> e | None -> ok

(* ---- Inserts ----------------------------------------------------------- *)

(* Split every group's rows by owning shard (stable within a group), so
   each shard receives one [Insert_batch] holding its slice of every
   group. Returns the slices in shard order. *)
let split_by_shard t groups =
  let per_shard = Hashtbl.create 8 in
  List.iter
    (fun (table, rows) ->
      let schema = schema_of t table in
      let lead = (Schema.pkey schema).(0) in
      let buckets = Hashtbl.create 4 in
      let order = ref [] in
      List.iter
        (fun row ->
          if Array.length row <= lead then
            err "row arity %d lacks the leading key column" (Array.length row);
          let s = Placement.shard_of_value t.placement row.(lead) in
          match Hashtbl.find_opt buckets s with
          | Some r -> r := row :: !r
          | None ->
              Hashtbl.add buckets s (ref [ row ]);
              order := s :: !order)
        rows;
      List.iter
        (fun s ->
          let sub = List.rev !(Hashtbl.find buckets s) in
          match Hashtbl.find_opt per_shard s with
          | Some r -> r := (table, sub) :: !r
          | None -> Hashtbl.add per_shard s (ref [ (table, sub) ]))
        (List.rev !order))
    groups;
  Hashtbl.fold (fun s r acc -> (s, List.rev !r) :: acc) per_shard []
  |> List.sort compare

(* Zero-copy variant of {!split_by_shard} over a still-undecoded
   [Insert_batch] payload: one scan that decodes only each row's
   leading key value (for placement) and blits the row's wire bytes
   straight into its owner's outgoing sub-payload. Forwarded columns
   are never boxed or re-encoded — the per-row router cost is a hash
   and a memcpy. Returns, per owning shard, the sub-payload (already in
   wire format) and its per-table expected row counts. *)
let split_raw t payload =
  let module B = Lt_util.Binio in
  let cur = B.cursor payload in
  let ngroups = B.get_varint cur in
  if ngroups < 0 || ngroups > 65536 then
    err "implausible group count %d" ngroups;
  (* Per shard: groups in arrival order, each (table, count, row bytes). *)
  let per_shard : (int, (string * int ref * Buffer.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  for _ = 1 to ngroups do
    let table = B.get_string cur in
    let schema = schema_of t table in
    let lead = (Schema.pkey schema).(0) in
    let nrows = B.get_varint cur in
    if nrows < 0 then err "implausible row count %d" nrows;
    (* This group's slice on each shard, created on first row. *)
    let slices = Hashtbl.create 4 in
    for _ = 1 to nrows do
      let start = cur.B.pos in
      let arity = B.get_varint cur in
      if arity < 0 || arity > 65536 then err "implausible row arity %d" arity;
      if arity <= lead then
        err "row arity %d lacks the leading key column" arity;
      let lead_v = ref (Value.Int64 0L) in
      for i = 0 to arity - 1 do
        if i = lead then lead_v := Protocol.get_value cur
        else Protocol.skip_value cur
      done;
      let stop = cur.B.pos in
      let s = Placement.shard_of_value t.placement !lead_v in
      let count, buf =
        match Hashtbl.find_opt slices s with
        | Some cb -> cb
        | None ->
            let cb = (ref 0, Buffer.create 512) in
            Hashtbl.add slices s cb;
            let count, buf = cb in
            (match Hashtbl.find_opt per_shard s with
            | Some r -> r := (table, count, buf) :: !r
            | None -> Hashtbl.add per_shard s (ref [ (table, count, buf) ]));
            cb
      in
      incr count;
      Buffer.add_substring buf payload start (stop - start)
    done
  done;
  Hashtbl.fold
    (fun s r acc ->
      let module B = Lt_util.Binio in
      let groups = List.rev !r in
      let b = Buffer.create 1024 in
      B.put_varint b (List.length groups);
      List.iter
        (fun (table, count, rows) ->
          B.put_string b table;
          B.put_varint b !count;
          Buffer.add_buffer b rows)
        groups;
      ( s,
        List.map (fun (tbl, count, _) -> (tbl, !count)) groups,
        Buffer.contents b )
      :: acc)
    per_shard []
  |> List.sort compare

(* One outcome per shard: which rows of its sub-batch landed, and the
   failure message if not all of them did. A shard that answers a plain
   [Error] committed nothing (the server only does that when zero rows
   landed); an unreachable shard is reported the same way. *)
type shard_insert = { si_landed : (string * int) list; si_fail : string option }

(* [expected] is the sub-batch's per-table row counts — what "all
   landed" means for this shard. *)
let send_shard_batch t s ~expected req =
  let none = List.map (fun (tbl, _) -> (tbl, 0)) expected in
  match Cluster_client.request_write t.cc s req with
  | Protocol.Insert_ok _ -> { si_landed = expected; si_fail = None }
  | Protocol.Insert_partial { landed; message } ->
      { si_landed = landed; si_fail = Some message }
  | Protocol.Error msg -> { si_landed = none; si_fail = Some msg }
  | _ -> { si_landed = none; si_fail = Some "bad insert response" }
  | exception Cluster_client.Unavailable msg ->
      { si_landed = none; si_fail = Some ("backend unavailable: " ^ msg) }
  | exception Client.Remote_error msg ->
      { si_landed = none; si_fail = Some msg }

(* Batched per-shard forwarding, shared by [Insert] and [Insert_batch].
   Sub-batches go to their shards concurrently (each shard has its own
   connection); per-shard outcomes are then folded into one answer.

   The old code answered [Insert_ok (length rows)] even when a later
   shard failed after earlier shards had committed — the client then
   believed everything was in, or (on the error path) nothing was. Now
   any failure yields [Insert_partial] naming, per ["shard<i>/<table>"]
   label, exactly how many rows are in on each shard.

   [plan] is one (shard, expected counts, request) triple per owning
   shard, from either split. *)
(* Shard sends run sequentially in shard-index order, unlike the query
   fan-out's thread-per-shard: a batch send is short and bounded (no
   scan to wait out), per-flush thread churn costs more than it hides,
   and ordered commits make the partial-failure report deterministic —
   when shard [i] fails, every shard's landed count is a prefix of its
   own sub-batch and lower-indexed shards have already answered. *)
let route_insert_plan t plan =
  observe_fanout t (max 1 (List.length plan));
  let results =
    Array.make (List.length plan) { si_landed = []; si_fail = None }
  in
  List.iteri
    (fun i (s, expected, req) ->
      results.(i) <- send_shard_batch t s ~expected req)
    plan;
  let failed = Array.to_list results |> List.filter_map (fun r -> r.si_fail) in
  match failed with
  | [] ->
      Protocol.Insert_ok
        (Array.to_list results
        |> List.concat_map (fun r -> r.si_landed)
        |> List.fold_left (fun acc (_, n) -> acc + n) 0)
  | msg :: _ ->
      let landed =
        List.map2
          (fun (s, _, _) r ->
            List.map
              (fun (tbl, n) -> (Printf.sprintf "shard%d/%s" s tbl, n))
              r.si_landed)
          plan
          (Array.to_list results)
        |> List.concat
      in
      if List.for_all (fun (_, n) -> n = 0) landed then Protocol.Error msg
      else Protocol.Insert_partial { landed; message = msg }

let route_insert_batch t groups =
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      let plan =
        List.map
          (fun (s, sub) ->
            ( s,
              List.map (fun (tbl, rows) -> (tbl, List.length rows)) sub,
              Protocol.Insert_batch { groups = Protocol.Groups sub } ))
          (split_by_shard t groups)
      in
      route_insert_plan t plan)

let route_insert_raw t payload =
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      let plan =
        List.map
          (fun (s, expected, sub) ->
            ( s,
              expected,
              Protocol.Insert_batch { groups = Protocol.Raw sub } ))
          (split_raw t payload)
      in
      route_insert_plan t plan)

(* ---- Queries ----------------------------------------------------------- *)

(* A pull source over one shard's slice of the bounding box: pages
   through capped [Row_batch]es with the adaptor's §3.5 resubmission
   step, lazily — the merge pulls the next page only when needed. When
   profiling, each page's backend profile is pushed onto [profs] under
   this shard's index; [route_query] folds them per shard afterwards. *)
let shard_source t shard table schema q ~profile ~profs scanned =
  let q = { q with Query.limit = None } in
  let next_q = ref (Some q) in
  let buf = ref [] in
  let rec pull () =
    match !buf with
    | row :: rest ->
        buf := rest;
        Some (Key_codec.encode_key schema row, row)
    | [] -> (
        match !next_q with
        | None -> None
        | Some q -> (
            match
              Cluster_client.request_read t.cc shard
                (Protocol.Query { table; query = q; profile })
            with
            | Protocol.Row_batch { rows; more_available; scanned = s; profile = p }
              ->
                scanned := !scanned + s;
                (match p with
                | Some p ->
                    let prev =
                      Option.value ~default:[] (Hashtbl.find_opt profs shard)
                    in
                    Hashtbl.replace profs shard (p :: prev)
                | None -> ());
                buf := rows;
                next_q :=
                  (if more_available then
                     match List.rev rows with
                     | last :: _ -> Some (Client.advance_past schema q last)
                     | [] -> None
                   else None);
                if rows = [] && !next_q = None then None else pull ()
            | Protocol.Error msg -> err "%s" msg
            | _ -> err "bad query response"))
  in
  pull

(* Recombine the owning shards' ordered streams with the same k-way
   merge the engine uses for tablets, then re-apply the single-node row
   cap: [cap = min(limit, row_limit)] rows, one extra pull to learn
   whether more rows exist, and [more_available] only when the client's
   own limit did not bind first — byte-identical to
   [Table.query] on a single node holding all the rows, provided
   [row_limit] equals that node's [server_row_limit]. *)
let route_query t table q ~profile =
  (* Profiling is an explicit per-query opt-in measured with the obs
     clock directly, so it works even on a [noop] (disabled) obs. *)
  let clock = Obs.clock t.obs in
  let pt0 = if profile then Lt_util.Clock.now clock else 0L in
  (* The fan-out runs under a fresh Route span so each backend round
     trip's Backend span (recorded by the client adaptor) nests under
     it rather than directly under the Request span. *)
  let ctx =
    if Obs.enabled t.obs then Option.map Trace.child_of (Trace.current ())
    else None
  in
  let t0 = Obs.now_us t.obs in
  let rows, more_available, scanned, prof =
    Trace.with_ctx ctx (fun () ->
        let schema = schema_of t table in
        let shards = Placement.shards_of_query t.placement q in
        observe_fanout t (List.length shards);
        let scanned = ref 0 in
        let profs = Hashtbl.create 8 in
        let plan_done = if profile then Lt_util.Clock.now clock else 0L in
        let sources =
          List.map
            (fun s ->
              (s, shard_source t s table schema q ~profile ~profs scanned))
            shards
        in
        let merged = Cursor.merge ~asc:(q.Query.direction = Query.Asc) sources in
        let cap =
          match q.Query.limit with
          | None -> t.row_limit
          | Some l -> min l t.row_limit
        in
        let rec collect acc n =
          if n = 0 then (List.rev acc, merged () <> None)
          else
            match merged () with
            | None -> (List.rev acc, false)
            | Some (_, row) -> collect (row :: acc) (n - 1)
        in
        let rows, more = collect [] cap in
        let more_available =
          more
          && (match q.Query.limit with None -> true | Some l -> l > t.row_limit)
        in
        let prof =
          if not profile then None
          else begin
            (* Per-shard sub-profiles in shard order; the top level
               aggregates their counts but reports the router's own wall
               times (plan = placement + source setup; total = whole
               routed query). *)
            let shard_profs =
              List.filter_map
                (fun s ->
                  match Hashtbl.find_opt profs s with
                  | Some ps ->
                      Some
                        ( "shard" ^ string_of_int s,
                          Profile.aggregate (List.rev ps) )
                  | None -> None)
                shards
            in
            let agg = Profile.aggregate (List.map snd shard_profs) in
            Some
              { agg with
                Profile.p_plan_us = Int64.sub plan_done pt0;
                p_total_us = Int64.sub (Lt_util.Clock.now clock) pt0;
                p_rows_returned = List.length rows;
                p_shards = shard_profs }
          end
        in
        (rows, more_available, !scanned, prof))
  in
  (match ctx with
  | Some c ->
      let now = Obs.now_us t.obs in
      Trace.record (Obs.trace t.obs)
        { Trace.sp_op = Trace.Route;
          sp_table = table;
          sp_start_us = t0;
          sp_duration_us = Int64.max 0L (Int64.sub now t0);
          sp_scanned = scanned;
          sp_returned = List.length rows;
          sp_tablets = 0;
          sp_cache_hits = 0;
          sp_cache_misses = 0;
          sp_ctx = Some c }
  | None -> ());
  Protocol.Row_batch { rows; more_available; scanned; profile = prof }

(* ---- Latest ------------------------------------------------------------ *)

(* A non-empty prefix pins one owner; the empty prefix asks every shard
   and keeps the single-node winner: max timestamp, ties to the larger
   encoded key (the order [Table.latest]'s descending scan sees first). *)
let route_latest t table prefix =
  let schema = schema_of t table in
  let shards = Placement.shards_of_prefix t.placement prefix in
  observe_fanout t (List.length shards);
  let best = ref None in
  List.iter
    (fun s ->
      match
        Cluster_client.request_read t.cc s (Protocol.Latest { table; prefix })
      with
      | Protocol.Latest_row None -> ()
      | Protocol.Latest_row (Some row) ->
          let key = Key_codec.encode_key schema row in
          let ts = Key_codec.ts_of_key key in
          (match !best with
          | Some (bts, bkey, _)
            when bts > ts || (bts = ts && String.compare bkey key >= 0) ->
              ()
          | _ -> best := Some (ts, key, row))
      | Protocol.Error msg -> err "%s" msg
      | _ -> err "bad latest response")
    shards;
  Protocol.Latest_row (Option.map (fun (_, _, row) -> row) !best)

(* ---- Stats ------------------------------------------------------------- *)

let route_stats t table =
  let resps = fanout_all t ~write:false (Protocol.Get_stats table) in
  match List.find_opt is_error resps with
  | Some e -> e
  | None -> (
      let snaps =
        List.map
          (function
            | Protocol.Stats_resp s -> s | _ -> err "bad stats response")
          resps
      in
      match snaps with
      | [] -> err "no shards"
      | s :: rest -> Protocol.Stats_resp (List.fold_left Stats.add s rest))

(* ---- Distributed observability ----------------------------------------- *)

(* Cross-process trace reassembly: the router's own ring plus every
   backend's matching spans, best effort — a dead shard loses its spans
   but never fails the fetch. *)
let route_trace t ~hi ~lo =
  let own = Trace.find_trace (Obs.trace t.obs) ~hi ~lo in
  let n = Cluster_client.shard_count t.cc in
  let remote =
    List.concat_map
      (fun i ->
        match
          Cluster_client.request_read t.cc i (Protocol.Get_trace (hi, lo))
        with
        | Protocol.Trace_spans spans -> spans
        | _ -> []
        | exception Cluster_client.Unavailable _ -> []
        | exception Client.Remote_error _ -> [])
      (List.init n Fun.id)
  in
  Protocol.Trace_spans (own @ remote)

(* Metrics federation: scrape one snapshot per backend, merge with the
   router's own registry. Aggregate series first, then every source's
   children again with a [shard] label; an unreachable shard degrades
   to a comment rather than failing the scrape. *)
let render_federated t =
  let n = Cluster_client.shard_count t.cc in
  let scraped =
    List.map
      (fun i ->
        let label = string_of_int i in
        match
          Cluster_client.request_read t.cc i Protocol.Get_metrics_snapshot
        with
        | Protocol.Metrics_snapshot s -> (label, Ok s)
        | Protocol.Error msg -> (label, Error msg)
        | _ -> (label, Error "bad metrics snapshot response")
        | exception Cluster_client.Unavailable msg ->
            (label, Error ("unavailable: " ^ msg))
        | exception Client.Remote_error msg -> (label, Error msg))
      (List.init n Fun.id)
  in
  let ok =
    List.filter_map
      (fun (l, r) -> match r with Ok s -> Some (l, s) | Error _ -> None)
      scraped
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (l, r) ->
      match r with
      | Error e ->
          Buffer.add_string buf
            (Printf.sprintf "# shard %s unavailable: %s\n" l e)
      | Ok _ -> ())
    scraped;
  Buffer.add_string buf
    (Metrics.render_federated
       (("router", Metrics.snapshot (Obs.registry t.obs)) :: ok));
  Buffer.contents buf

(* ---- Dispatch ---------------------------------------------------------- *)

let invalidate t table = Hashtbl.remove t.schemas table

let handle_inner t req =
  match req with
  | Protocol.Hello v ->
      if v <> Protocol.version then
        Protocol.Error (Printf.sprintf "unsupported protocol version %d" v)
      else Protocol.Hello_ok Protocol.version
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Get_placement ->
      Protocol.Placement_info
        {
          pl_epoch = Placement.epoch t.placement;
          pl_policy = Placement.describe t.placement;
          pl_backends = Cluster_client.endpoints t.cc;
        }
  | Protocol.List_tables -> Cluster_client.request_read t.cc 0 Protocol.List_tables
  | Protocol.Get_table name -> (
      match Cluster_client.request_read t.cc 0 (Protocol.Get_table name) with
      | Protocol.Table_info { schema; _ } as resp ->
          Hashtbl.replace t.schemas name schema;
          resp
      | resp -> resp)
  | Protocol.Create_table { table; _ } ->
      invalidate t table;
      first_error_else (fanout_all t ~write:true req) Protocol.Ok
  | Protocol.Drop_table table ->
      invalidate t table;
      first_error_else (fanout_all t ~write:true req) Protocol.Ok
  | Protocol.Add_column { table; _ } | Protocol.Widen_column { table; _ }
  | Protocol.Set_ttl { table; _ } ->
      invalidate t table;
      first_error_else (fanout_all t ~write:true req) Protocol.Ok
  | Protocol.Flush_before _ ->
      first_error_else (fanout_all t ~write:true req) Protocol.Ok
  | Protocol.Insert { table; rows } -> route_insert_batch t [ (table, rows) ]
  | Protocol.Insert_batch { groups = Protocol.Groups gs } ->
      route_insert_batch t gs
  | Protocol.Insert_batch { groups = Protocol.Raw payload } ->
      route_insert_raw t payload
  | Protocol.Query { table; query; profile } -> route_query t table query ~profile
  | Protocol.Latest { table; prefix } -> route_latest t table prefix
  | Protocol.Get_stats table -> route_stats t table
  | Protocol.Delete_prefix { table = _; prefix } ->
      Lt_util.Mutexes.with_lock t.mutex (fun () ->
          let shards = Placement.shards_of_prefix t.placement prefix in
          observe_fanout t (List.length shards);
          let total = ref 0 in
          List.iter
            (fun s ->
              match Cluster_client.request_write t.cc s req with
              | Protocol.Deleted n -> total := !total + n
              | Protocol.Error msg -> err "%s" msg
              | _ -> err "bad delete response")
            shards;
          Protocol.Deleted !total)
  | Protocol.Get_metrics -> Protocol.Metrics_text (render_federated t)
  | Protocol.Get_metrics_snapshot ->
      Protocol.Metrics_snapshot (Metrics.snapshot (Obs.registry t.obs))
  | Protocol.Get_trace (hi, lo) -> route_trace t ~hi ~lo
  | Protocol.Get_slow_ops n ->
      Protocol.Slow_ops (Trace.slow ~n:(max 0 n) (Obs.trace t.obs))

let handle t req =
  try handle_inner t req with
  | Routed resp -> resp
  | Cluster_client.Unavailable msg ->
      Protocol.Error ("backend unavailable: " ^ msg)
  | Client.Remote_error msg -> Protocol.Error msg
  | Schema.Invalid msg -> Protocol.Error msg
  | Invalid_argument msg -> Protocol.Error msg
  (* A malformed raw batch payload surfaces during the span scan, not
     at frame decode. *)
  | Protocol.Protocol_error msg -> Protocol.Error msg
  | Lt_util.Binio.Corrupt msg -> Protocol.Error msg

(* ---- Rebalance (the §2.2 shard split) ---------------------------------- *)

let reb fmt = Printf.ksprintf (fun msg -> raise (Rebalance_error msg)) fmt

let rebalance t ~value ~to_shard =
  if to_shard < 0 || to_shard >= Cluster_client.shard_count t.cc then
    invalid_arg "Router.rebalance: shard out of range";
  Lt_util.Mutexes.with_lock t.mutex (fun () ->
      let from_shard = Placement.shard_of_value t.placement value in
      if from_shard = to_shard then 0
      else begin
        let tables =
          match Cluster_client.request_read t.cc from_shard Protocol.List_tables with
          | Protocol.Tables names -> names
          | Protocol.Error msg -> reb "%s" msg
          | _ -> reb "bad tables response"
        in
        let moved = ref 0 in
        (* Phase 1: copy. Queries keep running — a key transiently on
           both shards is deduplicated by the query merge. Inserts wait
           on the mutex we hold, so the copy cannot miss rows. *)
        List.iter
          (fun table ->
            let schema =
              match
                Cluster_client.request_read t.cc from_shard
                  (Protocol.Get_table table)
              with
              | Protocol.Table_info { schema; _ } -> schema
              | Protocol.Error msg -> reb "%s" msg
              | _ -> reb "bad table info response"
            in
            (* Rows for [value] on the destination can only be debris of
               an earlier aborted rebalance; clear them so re-inserting
               the copy cannot hit duplicate-key errors. *)
            (match
               Cluster_client.request_write t.cc to_shard
                 (Protocol.Delete_prefix { table; prefix = [ value ] })
             with
            | Protocol.Deleted _ -> ()
            | Protocol.Error msg -> reb "%s" msg
            | _ -> reb "bad delete response");
            let q = ref (Query.prefix [ value ]) in
            let continue_ = ref true in
            while !continue_ do
              match
                Cluster_client.request_read t.cc from_shard
                  (Protocol.Query { table; query = !q; profile = false })
              with
              | Protocol.Row_batch { rows; more_available; _ } ->
                  (if rows <> [] then
                     match
                       Cluster_client.request_write t.cc to_shard
                         (Protocol.Insert { table; rows })
                     with
                     | Protocol.Insert_ok n -> moved := !moved + n
                     | Protocol.Insert_partial { message; _ } ->
                         reb "%s" message
                     | Protocol.Error msg -> reb "%s" msg
                     | _ -> reb "bad insert response");
                  if more_available then
                    match List.rev rows with
                    | last :: _ -> q := Client.advance_past schema !q last
                    | [] -> continue_ := false
                  else continue_ := false
              | Protocol.Error msg -> reb "%s" msg
              | _ -> reb "bad query response"
            done)
          tables;
        (* Phase 2: flip ownership. From here new inserts for [value]
           land on [to_shard]. *)
        t.placement <- Placement.with_override t.placement ~value ~shard:to_shard;
        (* Phase 3: bulk-delete the moved rows from the old owner (§7).
           A failure here leaves harmless duplicates that queries dedup
           and the next rebalance attempt clears. *)
        List.iter
          (fun table ->
            match
              Cluster_client.request_write t.cc from_shard
                (Protocol.Delete_prefix { table; prefix = [ value ] })
            with
            | Protocol.Deleted _ -> ()
            | Protocol.Error msg -> reb "%s" msg
            | _ -> reb "bad delete response")
          tables;
        !moved
      end)

let backend t =
  {
    Server.b_handle = handle t;
    b_obs = t.obs;
    b_render = (fun () -> render_federated t);
    b_maintenance = None;
    b_on_stop = (fun () -> Cluster_client.close t.cc);
  }
