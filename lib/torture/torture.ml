open Littletable
open Lt_util
module Vfs = Lt_vfs.Vfs
module Sync = Lt_vfs.Sync

type workload =
  | Insert_flush
  | Merge
  | Columnar_merge
  | Ttl_expiry
  | Schema_change
  | Set_ttl
  | Sync_spare

let all_workloads =
  [ Insert_flush; Merge; Columnar_merge; Ttl_expiry; Schema_change; Set_ttl;
    Sync_spare ]

let workload_name = function
  | Insert_flush -> "insert-flush"
  | Merge -> "merge"
  | Columnar_merge -> "columnar-merge"
  | Ttl_expiry -> "ttl-expiry"
  | Schema_change -> "schema-change"
  | Set_ttl -> "set-ttl"
  | Sync_spare -> "sync-spare"

type mode = Crash | Io_err

let mode_name = function Crash -> "crash" | Io_err -> "io-error"

type failure = {
  f_workload : workload;
  f_mode : mode;
  f_seed : int64;
  f_point : int;
  f_reason : string;
}

let pp_failure ppf f =
  Format.fprintf ppf "%s/%s seed=%Ld k=%d: %s" (workload_name f.f_workload)
    (mode_name f.f_mode) f.f_seed f.f_point f.f_reason

(* ------------------------------------------------------------------ *)
(* Fixed environment                                                   *)
(* ------------------------------------------------------------------ *)

let ts0 = 1_720_000_000_000_000L

let dir = "dbroot/usage"

let spare_dir = "spare/usage"

let tname = "usage"

(* Deterministic, observability off, tiny blocks, eager merges. *)
let base_config =
  Config.make ~block_size:1024 ~flush_size:(16 * 1024) ~merge_delay:0L
    ~rollover_spread:0.0 ~enforce_unique:false ~cache_bytes:0
    ~obs_enabled:false ()

(* [Columnar_merge] sets [columnar_age = 0]: every merge whose newest
   row is not in the future rewrites column-major, so the fault sweep
   covers every point of the columnar rewrite path (block build, column
   sections, footer stats, descriptor swap). *)
let config_of = function
  | Columnar_merge -> { base_config with Config.columnar_age = 0L }
  | _ -> base_config

(* network, device, ts key; [bytes] carries the insertion sequence
   number; [flags] is int32 so Schema_change can widen it. *)
let mk_schema () =
  Schema.create
    ~columns:
      [
        { Schema.name = "network"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "device"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "ts"; ctype = Value.T_timestamp; default = Value.Timestamp 0L };
        { Schema.name = "bytes"; ctype = Value.T_int64; default = Value.Int64 0L };
        { Schema.name = "flags"; ctype = Value.T_int32; default = Value.Int32 0l };
      ]
    ~pkey:[ "network"; "device"; "ts" ]

let ttl_of = function
  | Ttl_expiry -> Some (Int64.mul 8L Clock.day)
  | _ -> None

(* Timestamp offsets spreading inserts across period bins, exercising
   the flush-dependency closure (§3.4.3): now, yesterday, last week, a
   month back, an hour ahead. *)
let offsets =
  [|
    0L;
    Int64.neg Clock.day;
    Int64.neg Clock.week;
    Int64.neg (Int64.mul 30L Clock.day);
    Clock.hour;
  |]

type ctx = {
  base : Vfs.t;  (** the memory filesystem underneath the counter *)
  vfs : Vfs.t;  (** counting / fault-injecting wrapper *)
  clock : Clock.t;
  rng : Xorshift.t;
  table : Table.t;
  mutable issued : (int * int64) list;  (** (seq, ts), newest first *)
  mutable next_seq : int;
  mutable floor : int;
      (** attempts known durable: set after each successful flush_all *)
  mutable extra_cols : int;
  mutable widened : bool;
}

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let mk_row ctx ~seq ~ts =
  let flags = if ctx.widened then Value.Int64 0L else Value.Int32 0l in
  let base =
    [
      Value.Int64 1L;
      Value.Int64 (Int64.of_int seq);
      Value.Timestamp ts;
      Value.Int64 (Int64.of_int seq);
      flags;
    ]
  in
  let extras = List.init ctx.extra_cols (fun _ -> Value.String "") in
  Array.of_list (base @ extras)

(* Record the attempt before issuing it: a row the crash interrupts
   mid-insert may legitimately survive (it can ride an earlier closure's
   flush) even though the caller never saw an ack. *)
let insert_rows ctx n =
  for _ = 1 to n do
    let seq = ctx.next_seq in
    let off = offsets.(Xorshift.int ctx.rng (Array.length offsets)) in
    let ts =
      Int64.add (Int64.add (Clock.now ctx.clock) off) (Int64.of_int seq)
    in
    ctx.next_seq <- seq + 1;
    ctx.issued <- (seq, ts) :: ctx.issued;
    Table.insert_row ctx.table (mk_row ctx ~seq ~ts)
  done

(* flush_all is strict: when it returns, every attempt so far is in a
   descriptor-referenced tablet, directory entry and all. *)
let flush_note ctx =
  Table.flush_all ctx.table;
  ctx.floor <- List.length ctx.issued

let run ctx = function
  | Insert_flush ->
      insert_rows ctx 12;
      flush_note ctx;
      insert_rows ctx 8;
      flush_note ctx;
      (* Deliberately unflushed suffix: a crash may drop it. *)
      insert_rows ctx 5
  | Merge ->
      insert_rows ctx 6;
      flush_note ctx;
      insert_rows ctx 6;
      flush_note ctx;
      insert_rows ctx 6;
      flush_note ctx;
      while Table.merge_step ctx.table do
        ()
      done
  | Columnar_merge ->
      (* Same shape as [Merge] but under [columnar_age = 0], plus a
         second generation of flushes and merges so row-major tablets
         merge with already-columnar output (the mixed-layout rewrite). *)
      insert_rows ctx 6;
      flush_note ctx;
      insert_rows ctx 6;
      flush_note ctx;
      while Table.merge_step ctx.table do
        ()
      done;
      insert_rows ctx 6;
      flush_note ctx;
      while Table.merge_step ctx.table do
        ()
      done
  | Ttl_expiry ->
      insert_rows ctx 10;
      flush_note ctx;
      Clock.advance ctx.clock Clock.day;
      ignore (Table.expire ctx.table);
      insert_rows ctx 6;
      flush_note ctx
  | Schema_change ->
      insert_rows ctx 6;
      flush_note ctx;
      Table.add_column ctx.table
        { Schema.name = "note"; ctype = Value.T_string; default = Value.String "" };
      ctx.extra_cols <- ctx.extra_cols + 1;
      insert_rows ctx 5;
      Table.widen_column ctx.table "flags";
      ctx.widened <- true;
      insert_rows ctx 5;
      flush_note ctx
  | Set_ttl ->
      insert_rows ctx 8;
      flush_note ctx;
      Table.set_ttl ctx.table (Some (Int64.mul 30L Clock.day));
      insert_rows ctx 4;
      flush_note ctx;
      Table.set_ttl ctx.table (Some (Int64.mul 8L Clock.day));
      insert_rows ctx 4;
      flush_note ctx
  | Sync_spare ->
      insert_rows ctx 8;
      flush_note ctx;
      ignore
        (Sync.until_stable ~src:ctx.vfs ~src_dir:dir ~dst:ctx.vfs
           ~dst_dir:spare_dir ());
      insert_rows ctx 6;
      flush_note ctx;
      ignore
        (Sync.until_stable ~src:ctx.vfs ~src_dir:dir ~dst:ctx.vfs
           ~dst_dir:spare_dir ())

(* ------------------------------------------------------------------ *)
(* Invariant                                                           *)
(* ------------------------------------------------------------------ *)

(* [Fun.protect] wraps an exception raised by a cleanup handler; the
   injected fault underneath is what matters for classification. *)
let rec unwrap = function Fun.Finally_raised e -> unwrap e | e -> e

let seq_of_row r =
  match r.(3) with
  | Value.Int64 v -> Int64.to_int v
  | _ -> invalid_arg "torture: bytes column is not int64"

(* Check one reopened table against the attempt history. [floor] is the
   number of attempts that must have survived (0 for the spare, whose
   sync completion was never acknowledged). *)
let check_table ctx ~floor ~label t =
  let fail fmt = Format.kasprintf (fun s -> Error (label ^ s)) fmt in
  let st = Table.stats t in
  if st.Stats.tablets_quarantined > 0 then
    fail "a referenced tablet was corrupt after the crash (quarantined)"
  else begin
    let rows = (Table.query t Query.all).Table.rows in
    let seqs = List.map seq_of_row rows in
    let sorted = List.sort_uniq compare seqs in
    if List.length sorted <> List.length seqs then fail "duplicate rows survived"
    else begin
      let ts_of =
        let tbl = Hashtbl.create 64 in
        List.iter (fun (s, ts) -> Hashtbl.replace tbl s ts) ctx.issued;
        fun s -> Hashtbl.find_opt tbl s
      in
      let cutoff =
        match Table.ttl t with
        | None -> None
        | Some ttl -> Some (Int64.sub (Clock.now ctx.clock) ttl)
      in
      let visible s =
        match (ts_of s, cutoff) with
        | None, _ -> false
        | Some _, None -> true
        | Some ts, Some c -> ts >= c
      in
      match List.find_opt (fun s -> s < 0 || s >= ctx.next_seq) sorted with
      | Some s -> fail "phantom row %d survived (never attempted)" s
      | None -> (
          let survived = Hashtbl.create 64 in
          List.iter (fun s -> Hashtbl.replace survived s ()) sorted;
          let m =
            List.fold_left (fun acc s -> max acc (s + 1)) floor sorted
          in
          let missing = ref None in
          for s = 0 to m - 1 do
            if !missing = None && visible s && not (Hashtbl.mem survived s)
            then missing := Some s
          done;
          match !missing with
          | Some s ->
              fail "row %d lost below the durable prefix (prefix height %d, \
                    floor %d)"
                s m floor
          | None ->
              (* Hygiene: only the descriptor, referenced tablets, and
                 quarantined files may remain after the open sweep. *)
              let referenced =
                Descriptor.file_name
                :: List.map
                     (fun (meta : Descriptor.tablet_meta) -> meta.Descriptor.file)
                     (Table.tablets t)
              in
              let stray =
                List.find_opt
                  (fun e ->
                    (not (List.mem e referenced))
                    && not (Filename.check_suffix e ".quarantine"))
                  (Vfs.readdir ctx.base (Table.dir t))
              in
              (match stray with
              | Some e -> fail "stray file %s survived the hygiene sweep" e
              | None -> Ok ()))
    end
  end

let check ctx w =
  Vfs.crash ctx.base;
  let config = config_of w in
  let open_and_check ~floor ~label d =
    match Table.open_ ctx.base ~clock:ctx.clock ~config ~dir:d ~name:tname with
    | exception e ->
        Error
          (Printf.sprintf "%sreopen failed: %s" label (Printexc.to_string e))
    | t ->
        Fun.protect
          ~finally:(fun () -> Table.close t)
          (fun () -> check_table ctx ~floor ~label t)
  in
  let primary =
    if Descriptor.exists ctx.base ~dir then
      open_and_check ~floor:ctx.floor ~label:"" dir
    else if ctx.floor = 0 then Ok ()
    else Error "descriptor lost after an acknowledged flush"
  in
  match (primary, w) with
  | Error _, _ -> primary
  | Ok (), Sync_spare when Descriptor.exists ctx.base ~dir:spare_dir ->
      (* Whatever state the spare reached must itself open to a
         consistent prefix — a torn copy is a failure even though the
         sync never completed. *)
      open_and_check ~floor:0 ~label:"spare: " spare_dir
  | Ok (), _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run_once ~inject ~seed w =
  let config = config_of w in
  let base = Vfs.memory () in
  let vfs_inject =
    match inject with
    | None -> Vfs.No_fault
    | Some (Crash, k) -> Vfs.Crash_at k
    | Some (Io_err, k) -> Vfs.Io_error_at k
  in
  let counter, vfs = Vfs.counting ~inject:vfs_inject base in
  let clock = Clock.manual ~start:ts0 () in
  let schema = mk_schema () in
  let create () =
    Table.create vfs ~clock ~config ~dir ~name:tname schema ~ttl:(ttl_of w)
  in
  let setup () =
    try Ok (create ())
    with e -> (
      match unwrap e with
      | Vfs.Io_error _ -> (
          (* A transient fault mid-create: recover by opening whatever
             the interrupted save left behind, else create again. *)
          try
            Ok
              (if Descriptor.exists vfs ~dir then
                 Table.open_ vfs ~clock ~config ~dir ~name:tname
               else create ())
          with e -> Error (unwrap e))
      | e -> Error e)
  in
  match setup () with
  | Error (Vfs.Crash_point _) ->
      (* Died during setup: nothing was ever acknowledged; the only
         requirement is that whatever descriptor survived loads. *)
      Vfs.crash base;
      let r =
        if not (Descriptor.exists base ~dir) then Ok ()
        else
          match
            Table.open_ base ~clock ~config ~dir ~name:tname
          with
          | t ->
              Table.close t;
              Ok ()
          | exception e ->
              Error ("reopen after setup crash failed: " ^ Printexc.to_string e)
      in
      (counter, r)
  | Error e -> (counter, Error ("setup failed: " ^ Printexc.to_string e))
  | Ok table -> (
      let ctx =
        {
          base;
          vfs;
          clock;
          rng = Xorshift.create seed;
          table;
          issued = [];
          next_seq = 0;
          floor = 0;
          extra_cols = 0;
          widened = false;
        }
      in
      let outcome =
        try
          run ctx w;
          (match inject with
          | Some (Crash, k) when not (Vfs.halted counter) ->
              `Bad_point k  (* the sweep enumerated a point never reached *)
          | _ -> `Check)
        with e -> (
          match unwrap e with
          | Vfs.Crash_point _ -> `Check
          | Vfs.Io_error _ -> (
              (* Transient fault: the engine must still be usable — flush
                 everything attempted and require it all durable. *)
              match Table.flush_all ctx.table with
              | () ->
                  ctx.floor <- List.length ctx.issued;
                  `Check
              | exception e -> `Wedged e)
          | e -> `Died e)
      in
      match outcome with
      | `Check -> (counter, check ctx w)
      | `Bad_point k ->
          ( counter,
            Error
              (Printf.sprintf
                 "crash point %d was enumerated but never reached" k) )
      | `Wedged e ->
          ( counter,
            Error
              ("table wedged after a single transient I/O error: "
              ^ Printexc.to_string e) )
      | `Died e ->
          (counter, Error ("workload raised: " ^ Printexc.to_string e)))

let count_points ~seed w =
  let counter, result = run_once ~inject:None ~seed w in
  match result with
  | Ok () -> Vfs.op_count counter
  | Error reason ->
      invalid_arg
        (Printf.sprintf "torture: fault-free %s run is inconsistent: %s"
           (workload_name w) reason)

let execute ?inject ~seed w = snd (run_once ~inject ~seed w)

let replay ~seed w mode k = execute ~inject:(mode, k) ~seed w

let sweep ?(workloads = all_workloads) ~seed () =
  let runs = ref 0 in
  let failures =
    List.concat_map
      (fun w ->
        let n = count_points ~seed w in
        List.concat_map
          (fun mode ->
            List.filter_map
              (fun k ->
                incr runs;
                match execute ~inject:(mode, k) ~seed w with
                | Ok () -> None
                | Error reason ->
                    Some
                      {
                        f_workload = w;
                        f_mode = mode;
                        f_seed = seed;
                        f_point = k;
                        f_reason = reason;
                      })
              (List.init n Fun.id))
          [ Crash; Io_err ])
      workloads
  in
  (!runs, failures)
