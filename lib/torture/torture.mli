(** Deterministic crash-point torture harness.

    Validates the paper's prefix-durability contract (§3.1) the hard
    way: a workload first runs over a {!Lt_vfs.Vfs.counting} wrapper to
    enumerate its durability-relevant operations, then replays once per
    operation index [k] with either a simulated machine crash
    ([Crash_at k]: the op raises and every later mutation is suppressed)
    or a transient I/O fault ([Io_error_at k]: the op fails once, the
    workload recovers and finishes). After each replay the in-memory
    filesystem {!Lt_vfs.Vfs.crash}es, the table reopens from durable
    state alone, and the invariant is checked:

    - survivors are a flush-graph-consistent prefix of the attempted
      inserts (modulo TTL visibility), with no phantoms or duplicates;
    - every row acknowledged as flushed before the fault survives;
    - the descriptor loads cleanly and no referenced tablet is corrupt;
    - after the [Table.open_] hygiene sweep the directory holds only the
      descriptor, referenced tablets, and [*.quarantine] files.

    Workloads are seeded ({!Lt_util.Xorshift}), so any failure replays
    exactly from its [(seed, point)] pair via {!replay}. *)

type workload =
  | Insert_flush  (** inserts across period bins, explicit flushes *)
  | Merge  (** several flushed generations, then merges to fixpoint *)
  | Columnar_merge
      (** [Merge] under [columnar_age = 0]: every merge rewrites aged
          tablets column-major, covering the columnar rewrite path *)
  | Ttl_expiry  (** TTL'd table: insert, expire, insert again *)
  | Schema_change  (** add a column and widen an int32 mid-stream *)
  | Set_ttl  (** descriptor-only updates between flushes *)
  | Sync_spare  (** {!Lt_vfs.Sync.until_stable} onto a warm spare *)

val all_workloads : workload list
val workload_name : workload -> string

type mode = Crash | Io_err

val mode_name : mode -> string

type failure = {
  f_workload : workload;
  f_mode : mode;
  f_seed : int64;
  f_point : int;
  f_reason : string;
}

val pp_failure : Format.formatter -> failure -> unit

(** Durability points the fault-free run of a workload performs. *)
val count_points : seed:int64 -> workload -> int

(** Run one workload once. [inject] arms a fault at one durability
    point; omitted = fault-free. Returns [Error reason] if the
    post-crash invariant fails. *)
val execute : ?inject:mode * int -> seed:int64 -> workload -> (unit, string) result

(** [replay ~seed w mode k] re-runs one failing point — the debugging
    entry for a recorded [(seed, k)]. *)
val replay : seed:int64 -> workload -> mode -> int -> (unit, string) result

(** Sweep every durability point of every workload in both modes.
    Returns (runs executed, failures). *)
val sweep :
  ?workloads:workload list -> seed:int64 -> unit -> int * failure list
