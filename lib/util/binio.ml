exception Corrupt of string

type cursor = { data : string; mutable pos : int; limit : int }

let cursor ?(pos = 0) ?len data =
  let limit =
    match len with None -> String.length data | Some n -> pos + n
  in
  if limit > String.length data then
    invalid_arg "Binio.cursor: window past end of data";
  { data; pos; limit }

let remaining c = c.limit - c.pos

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let need c n =
  if remaining c < n then
    corrupt "unexpected end of input: need %d bytes at offset %d, have %d" n
      c.pos (remaining c)

let skip c n =
  if n < 0 then corrupt "skip: negative count %d" n;
  need c n;
  c.pos <- c.pos + n

let rest c =
  let s = String.sub c.data c.pos (remaining c) in
  (c.pos <- c.limit)
  [@lint.allow
    "domain-race: a cursor is call-local decode state that never \
     outlives the decoding call that allocated it, so every access \
     happens-before the next on the same thread; any lock a caller \
     happens to hold at one site is incidental, not a contract"];
  s

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b v;
  put_u8 b (v lsr 8)

let put_i32 b v = Buffer.add_int32_le b v

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then corrupt "put_u32: %d out of range" v;
  Buffer.add_int32_le b (Int32.of_int v)

let put_i64 b v = Buffer.add_int64_le b v

let put_double b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  let lo = get_u8 c in
  let hi = get_u8 c in
  lo lor (hi lsl 8)

let get_i32 c =
  need c 4;
  let v = String.get_int32_le c.data c.pos in
  c.pos <- c.pos + 4;
  v

let get_u32 c = Int32.to_int (get_i32 c) land 0xffff_ffff

let get_i64 c =
  need c 8;
  let v = String.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  v

let get_double c = Int64.float_of_bits (get_i64 c)

let put_varint b v =
  if v < 0 then corrupt "put_varint: negative %d" v;
  let rec go v =
    if v < 0x80 then put_u8 b v
    else begin
      put_u8 b (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go v

let varint_size v =
  if v < 0 then corrupt "varint_size: negative %d" v;
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

let get_varint c =
  let rec go shift acc =
    if shift > 62 then corrupt "varint too long at offset %d" c.pos;
    let byte = get_u8 c in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

let get_bytes c n =
  if n < 0 then corrupt "negative byte count %d" n;
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_string c =
  let n = get_varint c in
  get_bytes c n

let expect_end c =
  if remaining c <> 0 then corrupt "%d trailing bytes at offset %d" (remaining c) c.pos
