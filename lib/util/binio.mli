(** Binary encoding and decoding helpers.

    All multi-byte integers are little-endian unless the function name says
    otherwise. Encoders append to a [Buffer.t]; decoders read from a
    [string] at an explicit cursor so that callers can stream through a
    buffer without copies. Decoders raise {!Corrupt} on any malformed
    input rather than returning partial results. *)

exception Corrupt of string

(** A read cursor over an immutable string, bounded by [limit] so a
    decoder can be confined to a slice of a larger buffer (a block
    payload, a frame) without copying the slice out first. *)
type cursor = { data : string; mutable pos : int; limit : int }

(** [cursor ?pos ?len data] reads [data] from [pos] (default 0) for
    [len] bytes (default: to the end). {!expect_end} and {!remaining}
    are relative to the window, so slice decoders keep the same
    trailing-garbage checks as whole-string decoders. *)
val cursor : ?pos:int -> ?len:int -> string -> cursor

val remaining : cursor -> int

(** [skip c n] advances past [n] bytes without decoding them — the
    zero-copy scan primitive: a reader that only needs a row's byte
    span steps over the values it does not care about. *)
val skip : cursor -> int -> unit

(** [rest c] returns everything from the cursor to its limit and leaves
    the cursor at the limit. One copy of the window, no per-item cost:
    how a frame's undecoded tail is captured for later (or remote)
    decoding. *)
val rest : cursor -> string

(** {1 Fixed-width encoders} *)

val put_u8 : Buffer.t -> int -> unit
val put_u16 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_i32 : Buffer.t -> int32 -> unit
val put_i64 : Buffer.t -> int64 -> unit
val put_double : Buffer.t -> float -> unit

(** {1 Fixed-width decoders} *)

val get_u8 : cursor -> int
val get_u16 : cursor -> int
val get_u32 : cursor -> int
val get_i32 : cursor -> int32
val get_i64 : cursor -> int64
val get_double : cursor -> float

(** {1 Variable-width integers}

    LEB128 unsigned varints; used for lengths and counts. *)

val put_varint : Buffer.t -> int -> unit
val get_varint : cursor -> int

(** Bytes {!put_varint} would emit — for allocation-free size math. *)
val varint_size : int -> int

(** {1 Length-prefixed byte strings} *)

val put_string : Buffer.t -> string -> unit
val get_string : cursor -> string

(** [get_bytes c n] reads exactly [n] bytes. *)
val get_bytes : cursor -> int -> string

val expect_end : cursor -> unit
(** Raise {!Corrupt} unless the cursor consumed its whole input. *)
