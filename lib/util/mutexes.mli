(** Exception-safe mutex combinators.

    This is the only module in the tree allowed to call [Mutex.lock] /
    [Mutex.unlock] directly: the [lock-safety] lint rule (see
    [lib/lint]) flags bare lock calls anywhere else. Routing every
    critical section through {!with_lock} guarantees a raise inside the
    section cannot leak the lock and wedge the engine. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f ()] with [m] held and releases [m] on both
    normal return and exception (via [Fun.protect]). Not reentrant:
    [m] must not already be held by the calling thread. *)
